#pragma once

/// \file forwarding.hpp
/// Utility-based multi-copy forwarding primitives (spray + compare-and-hand).
///
/// Queries, replies, and pull requests are routed store-carry-forward with
/// the standard DTN recipe the paper's substrate assumes:
///   - a message starts with a copy budget C (spray);
///   - on contact, a carrier hands half its remaining copies (binary spray)
///     to a peer whose estimated contact rate to the destination is higher
///     than its own by `improvementFactor` (compare-and-forward / focus);
///   - a single-copy message migrates instead of splitting.
/// Meeting the destination always delivers.

#include <cstdint>

#include "net/message.hpp"
#include "sim/time.hpp"
#include "trace/estimator.hpp"

namespace dtncache::net {

struct ForwardingConfig {
  /// Initial copy budget for sprayed messages.
  std::uint32_t initialCopies = 4;
  /// A relay must beat the carrier's utility by this factor to get a copy.
  double improvementFactor = 1.2;
  /// Hop cap as a safety valve against pathological ping-ponging.
  std::uint32_t maxHops = 16;
};

/// Is `candidate` a strictly better carrier than `carrier` for reaching
/// `dst`, under the shared rate estimate?
inline bool betterCarrier(const trace::ContactRateEstimator& estimator, NodeId carrier,
                          NodeId candidate, NodeId dst, sim::SimTime now,
                          double improvementFactor) {
  if (candidate == dst) return true;
  if (carrier == dst) return false;
  const double mine = estimator.rate(carrier, dst, now);
  const double theirs = estimator.rate(candidate, dst, now);
  return theirs > mine * improvementFactor && theirs > 0.0;
}

/// Copies handed to the relay under binary spray; the carrier keeps the
/// rest. With 1 copy left the message migrates (carrier keeps 0).
inline std::uint32_t sprayShare(std::uint32_t copiesLeft) {
  if (copiesLeft <= 1) return copiesLeft;
  return copiesLeft - copiesLeft / 2;  // ceil(copies/2) to the relay
}

}  // namespace dtncache::net
