#pragma once

/// \file network.hpp
/// The opportunistic network: replays a contact trace on the simulator and
/// hands each contact to the protocol stack, with per-contact bandwidth
/// budgets and global transfer accounting.
///
/// A contact of duration d gives the pair a byte budget bandwidth·d (plus a
/// free allowance for the metadata handshake — version vectors are tiny and
/// the paper's schemes all assume summary exchange fits in any contact).
/// The protocol draws on that budget through the ContactChannel; transfers
/// that exceed it fail, which is how short contacts truncate large pushes.

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "trace/contact.hpp"

namespace dtncache::net {

/// Transfer categories for overhead accounting (experiment F6).
enum class Traffic : std::uint8_t {
  kControl = 0,   ///< metadata handshakes (version vectors, rate gossip)
  kRefresh,       ///< refresh pushes of new versions to caching nodes
  kPlacement,     ///< initial cache placement copies
  kQuery,         ///< query forwarding
  kReply,         ///< reply forwarding
  kPull,          ///< pull-request forwarding
  kCategoryCount,
};

constexpr const char* trafficName(Traffic t) {
  switch (t) {
    case Traffic::kControl: return "control";
    case Traffic::kRefresh: return "refresh";
    case Traffic::kPlacement: return "placement";
    case Traffic::kQuery: return "query";
    case Traffic::kReply: return "reply";
    case Traffic::kPull: return "pull";
    default: return "?";
  }
}

struct TrafficCounters {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Network-lifetime transfer totals, by category and by sending node.
/// Per-node counters underpin the load-balance analysis (experiment F10):
/// the hierarchical scheme's fanout bound caps each node's refresh duty,
/// where epidemic/flooding concentrate work on the most mobile nodes.
class TransferLog {
 public:
  TransferLog() = default;
  explicit TransferLog(std::size_t nodeCount)
      : perNodeBytes_(nodeCount, 0), perNodeRefreshBytes_(nodeCount, 0) {}

  void record(Traffic category, std::uint64_t bytes, NodeId sender = kNoNode) {
    auto& c = counters_[static_cast<std::size_t>(category)];
    ++c.messages;
    c.bytes += bytes;
    if (sender != kNoNode && sender < perNodeBytes_.size()) {
      perNodeBytes_[sender] += bytes;
      if (category == Traffic::kRefresh) perNodeRefreshBytes_[sender] += bytes;
    }
  }

  const TrafficCounters& of(Traffic category) const {
    return counters_[static_cast<std::size_t>(category)];
  }

  TrafficCounters total() const {
    TrafficCounters t;
    for (const auto& c : counters_) {
      t.messages += c.messages;
      t.bytes += c.bytes;
    }
    return t;
  }

  /// Bytes sent per node (empty when per-node tracking was not enabled).
  const std::vector<std::uint64_t>& perNodeBytes() const { return perNodeBytes_; }
  const std::vector<std::uint64_t>& perNodeRefreshBytes() const {
    return perNodeRefreshBytes_;
  }

  /// Fold another log's totals into this one (integer sums — order-free).
  /// The sharded kernel records into per-context logs and merges them back.
  void merge(const TransferLog& other) {
    for (std::size_t k = 0; k < counters_.size(); ++k) {
      counters_[k].messages += other.counters_[k].messages;
      counters_[k].bytes += other.counters_[k].bytes;
    }
    for (std::size_t i = 0; i < perNodeBytes_.size() && i < other.perNodeBytes_.size(); ++i) {
      perNodeBytes_[i] += other.perNodeBytes_[i];
      perNodeRefreshBytes_[i] += other.perNodeRefreshBytes_[i];
    }
  }

 private:
  std::array<TrafficCounters, static_cast<std::size_t>(Traffic::kCategoryCount)> counters_{};
  std::vector<std::uint64_t> perNodeBytes_;
  std::vector<std::uint64_t> perNodeRefreshBytes_;
};

class EnergyModel;

/// Byte budget of one live contact. Handed to the protocol for the duration
/// of the onContact callback only.
class ContactChannel {
 public:
  ContactChannel(std::uint64_t budgetBytes, TransferLog& log, NodeId a = kNoNode,
                 NodeId b = kNoNode, EnergyModel* energy = nullptr)
      : remaining_(budgetBytes), log_(log), a_(a), b_(b), energy_(energy) {}

  /// Attempt to transfer `bytes` in category `cat`; returns false (and
  /// transfers nothing) if the contact's budget is exhausted. `sender`
  /// attributes the bytes for per-node load accounting and energy charging
  /// (the receiver is the other contact endpoint).
  bool transfer(Traffic category, std::uint64_t bytes, NodeId sender = kNoNode);

  std::uint64_t remainingBytes() const { return remaining_; }

 private:
  std::uint64_t remaining_;
  TransferLog& log_;
  NodeId a_;
  NodeId b_;
  EnergyModel* energy_;
};

/// Protocol-side view of a contact.
using ContactFn =
    std::function<void(NodeId a, NodeId b, sim::SimTime start, sim::SimTime duration,
                       ContactChannel& channel)>;

struct NetworkConfig {
  /// Link bandwidth in bytes/second (Bluetooth 2.x EDR effective ≈ 200 KB/s).
  double bandwidthBytesPerSec = 200.0 * 1024;
  /// Budget floor so zero-duration trace artifacts still pass metadata.
  std::uint64_t minContactBudgetBytes = 4 * 1024;
  /// Probability an entire contact is unusable (interference, failed
  /// pairing — the dominant Bluetooth failure mode loses the whole
  /// encounter, not individual packets). A failed pairing is never even
  /// observed, so lost contacts are dropped before the protocol layer —
  /// they neither move data nor feed the rate estimator.
  double contactLossRate = 0.0;
  std::uint64_t lossSeed = 12345;
};

class Network {
 public:
  Network(sim::Simulator& simulator, const trace::ContactTrace& trace,
          NetworkConfig config = {});

  /// Install the protocol callback and start streaming the trace: a single
  /// self-rescheduling cursor event walks the time-sorted contact vector,
  /// so the pending-event set holds one contact at a time instead of the
  /// whole trace (O(active timers), not O(#contacts)). FIFO ranks for all
  /// contacts are reserved upfront, so delivery interleaves with
  /// simultaneous events exactly as the eager per-contact fan-out did.
  /// Must be called exactly once, before the simulator runs.
  void start(ContactFn onContact);

  /// Gate contacts (churn: a powered-off endpoint suppresses the contact).
  /// Evaluated at the contact's start time. May be set before or after
  /// start().
  using ContactFilter = std::function<bool(NodeId a, NodeId b, sim::SimTime t)>;
  void setContactFilter(ContactFilter filter) { filter_ = std::move(filter); }

  /// Attach an energy model (not owned): idle drain advances at each
  /// contact, discovery is charged per delivered contact, and every
  /// ContactChannel transfer charges tx/rx. Combine with a contact filter
  /// on EnergyModel::depleted to make dead nodes disappear.
  void setEnergyModel(EnergyModel* energy) { energy_ = energy; }

  /// Attach the observability layer (neither owned; both may be null).
  /// Contact admission emits `contact` / `contact_suppressed` /
  /// `contact_lost` events — the `contact` event carries the byte budget
  /// and, since it is emitted after the protocol ran, the bytes spent.
  /// Counters: net.contact.{delivered,suppressed,lost}.
  void setObservability(obs::Tracer* tracer, obs::Registry* registry);

  const TransferLog& transfers() const { return log_; }
  std::size_t nodeCount() const { return trace_.nodeCount(); }
  std::size_t contactsDelivered() const { return contactsDelivered_; }
  std::size_t contactsSuppressed() const { return contactsSuppressed_; }
  std::size_t contactsLost() const { return contactsLost_; }

  // ---- sharded delivery (runner/shard_driver) -----------------------------

  /// Route contacts through the sharded kernel: start() still computes the
  /// warm-up skip and reserves every contact's FIFO rank (identical sequence
  /// evolution), but schedules no cursor event — the driver pulls contacts
  /// by index via deliverSharded(). The one pending cursor slot plain mode
  /// would occupy is accounted through the simulator's pending bias so the
  /// peak-pending statistic stays byte-identical. Call before start().
  void setShardedDelivery(bool on);

  /// Per-context transfer logs and admission counts, entered with worker
  /// threads not yet running. Also pre-draws the per-contact loss decisions
  /// for [firstContactIndex(), trace end) in index order from the same RNG
  /// stream plain delivery consumes, so outcomes match contact for contact.
  void enterShardMode(std::size_t contexts);

  /// Deliver contact `index` on the calling context (sim::tlsShard selects
  /// the transfer log and tracer sink). Same admission pipeline as plain
  /// delivery minus the cursor walk; requires enterShardMode and no energy
  /// model (the driver falls back to plain delivery for energy runs).
  void deliverSharded(std::size_t index);

  /// Fold per-context logs and counts back; call after workers joined.
  void exitShardMode();

  std::size_t firstContactIndex() const { return firstContact_; }
  sim::EventQueue::Sequence sequenceBase() const { return seqBase_; }
  const trace::ContactTrace& trace() const { return trace_; }

 private:
  void scheduleNextContact();
  void deliverContact(sim::SimTime t);

  sim::Simulator& simulator_;
  const trace::ContactTrace& trace_;
  NetworkConfig config_;
  ContactFn onContact_;
  ContactFilter filter_;
  EnergyModel* energy_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* ctrDelivered_ = nullptr;
  obs::Counter* ctrSuppressed_ = nullptr;
  obs::Counter* ctrLost_ = nullptr;
  TransferLog log_;
  sim::Rng lossRng_;
  std::size_t contactsDelivered_ = 0;
  std::size_t contactsSuppressed_ = 0;
  std::size_t contactsLost_ = 0;
  bool started_ = false;
  std::size_t nextContact_ = 0;   ///< cursor into the sorted contact vector
  std::size_t firstContact_ = 0;  ///< first non-warm-up contact at start()
  sim::EventQueue::Sequence seqBase_ = 0;  ///< FIFO rank of firstContact_

  /// Sharded delivery: per-context admission state (tlsShard-selected).
  struct ShardCtx {
    TransferLog log;
    std::size_t delivered = 0;
    std::size_t suppressed = 0;
    std::size_t lost = 0;
  };
  bool sharded_ = false;
  std::vector<ShardCtx> shardCtxs_;
  /// Pre-drawn loss outcomes for contacts [firstContact_, end), index order.
  std::vector<char> lossLost_;
};

}  // namespace dtncache::net
