#include "net/energy.hpp"

#include <algorithm>

namespace dtncache::net {

EnergyModel::EnergyModel(std::size_t nodeCount, const EnergyConfig& config,
                         sim::SimTime start)
    : config_(config),
      remaining_(nodeCount, config.batteryJoules),
      lastIdleUpdate_(start),
      now_(start) {
  DTNCACHE_CHECK(config.batteryJoules > 0.0);
  DTNCACHE_CHECK(config.txJoulesPerMB >= 0.0 && config.rxJoulesPerMB >= 0.0);
  DTNCACHE_CHECK(config.scanJoulesPerContact >= 0.0 && config.idleJoulesPerHour >= 0.0);
}

void EnergyModel::drain(NodeId n, double joules) {
  if (remaining_[n] <= 0.0) return;  // already dead; don't go further negative
  remaining_[n] -= joules;
  if (remaining_[n] <= 0.0) {
    remaining_[n] = 0.0;
    firstDepletion_ = std::min(firstDepletion_, now_);
  }
}

void EnergyModel::advanceTo(sim::SimTime t) {
  if (t <= lastIdleUpdate_) return;
  now_ = std::max(now_, t);
  const double hours = sim::toHours(t - lastIdleUpdate_);
  const double idle = hours * config_.idleJoulesPerHour;
  lastIdleUpdate_ = t;
  if (idle <= 0.0) return;
  for (NodeId n = 0; n < remaining_.size(); ++n) drain(n, idle);
}

void EnergyModel::onTransfer(NodeId sender, NodeId receiver, std::uint64_t bytes) {
  const double mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
  if (sender != kNoNode && sender < remaining_.size())
    drain(sender, mb * config_.txJoulesPerMB);
  if (receiver != kNoNode && receiver < remaining_.size())
    drain(receiver, mb * config_.rxJoulesPerMB);
}

void EnergyModel::onContact(NodeId a, NodeId b) {
  drain(a, config_.scanJoulesPerContact);
  drain(b, config_.scanJoulesPerContact);
}

double EnergyModel::remaining(NodeId n) const {
  DTNCACHE_CHECK(n < remaining_.size());
  return remaining_[n];
}

double EnergyModel::remainingFraction(NodeId n) const {
  return remaining(n) / config_.batteryJoules;
}

std::size_t EnergyModel::depletedCount() const {
  std::size_t dead = 0;
  for (double r : remaining_)
    if (r <= 0.0) ++dead;
  return dead;
}

double EnergyModel::meanRemainingFraction() const {
  double sum = 0.0;
  for (double r : remaining_) sum += r;
  return sum / (config_.batteryJoules * static_cast<double>(remaining_.size()));
}

double EnergyModel::minRemainingFraction() const {
  double mn = config_.batteryJoules;
  for (double r : remaining_) mn = std::min(mn, r);
  return mn / config_.batteryJoules;
}

}  // namespace dtncache::net
