#include "net/churn.hpp"

#include "sim/assert.hpp"

namespace dtncache::net {

ChurnProcess::ChurnProcess(sim::Simulator& simulator, std::size_t nodeCount,
                           const ChurnConfig& config, sim::SimTime horizon,
                           std::vector<NodeId> protectedNodes)
    : up_(nodeCount, true), protected_(nodeCount, false) {
  DTNCACHE_CHECK(config.meanUptime > 0.0);
  DTNCACHE_CHECK(config.meanDowntime > 0.0);
  for (NodeId n : protectedNodes) {
    DTNCACHE_CHECK(n < nodeCount);
    protected_[n] = true;
  }

  sim::Rng root(config.seed);
  for (NodeId n = 0; n < nodeCount; ++n) {
    if (protected_[n]) continue;
    sim::Rng rng = root.fork(n);
    // Pre-generate this node's alternating schedule for the whole run.
    sim::SimTime t = simulator.now() + rng.exponential(1.0 / config.meanUptime);
    bool nextStateUp = false;
    while (t < horizon) {
      const bool stateAfter = nextStateUp;
      simulator.scheduleAt(t, [this, n](sim::SimTime when) { flip(n, when); });
      t += rng.exponential(stateAfter ? 1.0 / config.meanUptime
                                      : 1.0 / config.meanDowntime);
      nextStateUp = !nextStateUp;
    }
  }
}

void ChurnProcess::flip(NodeId n, sim::SimTime t) {
  up_[n] = !up_[n];
  ++transitions_;
  for (const auto& listener : listeners_) listener(n, up_[n], t);
}

bool ChurnProcess::isUp(NodeId n) const {
  DTNCACHE_CHECK(n < up_.size());
  return up_[n];
}

double ChurnProcess::upFraction() const {
  std::size_t up = 0;
  for (bool u : up_)
    if (u) ++up;
  return static_cast<double>(up) / static_cast<double>(up_.size());
}

}  // namespace dtncache::net
