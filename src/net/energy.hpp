#pragma once

/// \file energy.hpp
/// Per-node energy accounting and battery depletion.
///
/// Opportunistic networks run on phones; a refresh scheme that wins on
/// freshness by burning the hubs' batteries has not won. The model charges
/// each node for transmission and reception (per byte), neighbor discovery
/// (per contact), and a baseline idle/scanning drain (per hour). A node
/// whose battery reaches zero is dead for the rest of the run: its
/// contacts are suppressed (the runner folds `depleted` into the contact
/// filter) and it issues no queries.
///
/// Defaults are Bluetooth-classic-era magnitudes (the paper's hardware):
/// ~100 mW radio ⇒ ~0.5 J/MB at 200 KB/s effective... rounded to whole
/// numbers; what matters for the experiments is the *ratio* between
/// schemes, not absolute joules.

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/assert.hpp"
#include "sim/time.hpp"
#include "trace/contact.hpp"

namespace dtncache::net {

struct EnergyConfig {
  double batteryJoules = 3000.0;       ///< budget the owner grants the DTN app
  double txJoulesPerMB = 20.0;
  double rxJoulesPerMB = 15.0;
  double scanJoulesPerContact = 0.02;  ///< neighbor discovery handshake
  double idleJoulesPerHour = 2.0;      ///< periodic Bluetooth inquiry scans
};

class EnergyModel {
 public:
  EnergyModel(std::size_t nodeCount, const EnergyConfig& config, sim::SimTime start = 0.0);

  /// Apply idle drain up to `t` (monotone; lazy callers may skip around).
  void advanceTo(sim::SimTime t);

  /// Charge a transfer: tx to the sender, rx to the receiver.
  void onTransfer(NodeId sender, NodeId receiver, std::uint64_t bytes);

  /// Charge neighbor discovery for one contact.
  void onContact(NodeId a, NodeId b);

  double remaining(NodeId n) const;
  double remainingFraction(NodeId n) const;
  bool depleted(NodeId n) const { return remaining(n) <= 0.0; }

  std::size_t depletedCount() const;
  /// Time the first node died; +inf while everyone lives.
  sim::SimTime firstDepletionTime() const { return firstDepletion_; }
  double meanRemainingFraction() const;
  double minRemainingFraction() const;

  const EnergyConfig& config() const { return config_; }

 private:
  void drain(NodeId n, double joules);

  EnergyConfig config_;
  std::vector<double> remaining_;
  sim::SimTime lastIdleUpdate_;
  sim::SimTime firstDepletion_ = std::numeric_limits<double>::infinity();
  sim::SimTime now_ = 0.0;
};

}  // namespace dtncache::net
