#pragma once

/// \file churn.hpp
/// Node churn: devices leave (powered off, out of area, battery-dead) and
/// return. Opportunistic networks are defined by this; the paper's
/// *distributed maintenance* claim is exactly that the refresh structure
/// survives members coming and going, repaired locally.
///
/// Model: each node alternates exponentially-distributed up and down
/// periods. While a node is down, its contacts do not happen (the Network
/// suppresses them through the contact filter) and it issues no queries;
/// its cache persists (flash storage survives a power cycle) and simply
/// ages. Sources can be protected (a dead source would orphan its items —
/// a different experiment than cache maintenance).

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "trace/contact.hpp"

namespace dtncache::net {

struct ChurnConfig {
  sim::SimTime meanUptime = sim::days(2);
  sim::SimTime meanDowntime = sim::hours(12);
  /// Nodes listed as protected (typically item sources) never go down.
  std::uint64_t seed = 99;
};

/// Called on every state flip.
using ChurnListener = std::function<void(NodeId node, bool up, sim::SimTime t)>;

class ChurnProcess {
 public:
  /// Pre-schedules all flips on [now, horizon). All nodes start up.
  ChurnProcess(sim::Simulator& simulator, std::size_t nodeCount, const ChurnConfig& config,
               sim::SimTime horizon, std::vector<NodeId> protectedNodes = {});

  bool isUp(NodeId n) const;
  std::size_t transitions() const { return transitions_; }
  std::size_t nodeCount() const { return up_.size(); }

  /// Fraction of nodes currently up.
  double upFraction() const;

  void addListener(ChurnListener listener) { listeners_.push_back(std::move(listener)); }

  /// Contact filter for Network::setContactFilter: both endpoints must be up.
  bool contactAllowed(NodeId a, NodeId b) const { return isUp(a) && isUp(b); }

 private:
  void flip(NodeId n, sim::SimTime t);

  std::vector<bool> up_;
  std::vector<bool> protected_;
  std::size_t transitions_ = 0;
  std::vector<ChurnListener> listeners_;
};

}  // namespace dtncache::net
