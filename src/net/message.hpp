#pragma once

/// \file message.hpp
/// Store-carry-forward messages.
///
/// One concrete Message type covers the four message kinds the protocols
/// exchange; a simulator gains nothing from a class hierarchy here, and a
/// flat struct keeps buffers copyable and inspectable in tests.

#include <cstdint>

#include "data/item.hpp"
#include "data/workload.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"
#include "trace/contact.hpp"

namespace dtncache::net {

using MessageId = std::uint64_t;

enum class MessageKind : std::uint8_t {
  kDataCopy,  ///< a (possibly new) version of an item being pushed/placed
  kQuery,     ///< a data request being routed toward caching nodes
  kReply,     ///< a data copy answering a query, routed back to the requester
  kPull,      ///< a refresh request routed toward an item's source (pull baseline)
};

/// Wire-size model: every message carries a fixed header; data-bearing kinds
/// add the item payload. Sizes only matter through bandwidth budgets and
/// overhead accounting, so a simple additive model suffices.
inline constexpr std::uint32_t kHeaderBytes = 64;

struct Message {
  MessageId id = 0;
  MessageKind kind = MessageKind::kDataCopy;

  data::ItemId item = 0;
  data::Version version = 0;

  /// Unicast destination (kNoNode for anycast kinds like kQuery).
  NodeId dst = kNoNode;
  NodeId origin = 0;
  sim::SimTime createdAt = 0.0;

  /// Query context (kQuery and kReply).
  data::QueryId queryId = 0;
  NodeId requester = kNoNode;
  sim::SimTime deadline = 0.0;

  /// Remaining copy budget for spray-style multi-copy forwarding. A carrier
  /// may hand ⌈copies/2⌉ to a relay, keeping the rest (binary spray).
  std::uint32_t copiesLeft = 1;
  std::uint32_t hopCount = 0;

  /// Payload size excluding the header (0 for queries/pulls).
  std::uint32_t payloadBytes = 0;

  /// Overhead-accounting category for data-bearing messages: kPlacement for
  /// initial dissemination, kRefresh for relayed refresh copies and pull
  /// responses. Queries/replies/pulls are categorized by kind instead.
  Traffic category = Traffic::kPlacement;

  std::uint32_t wireBytes() const { return kHeaderBytes + payloadBytes; }
};

}  // namespace dtncache::net
