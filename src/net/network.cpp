#include "net/network.hpp"

#include <algorithm>
#include <cmath>

#include "net/energy.hpp"
#include "sim/assert.hpp"
#include "sim/shard_context.hpp"

namespace dtncache::net {

bool ContactChannel::transfer(Traffic category, std::uint64_t bytes, NodeId sender) {
  if (bytes > remaining_) return false;
  remaining_ -= bytes;
  log_.record(category, bytes, sender);
  if (energy_ != nullptr && sender != kNoNode) {
    const NodeId receiver = sender == a_ ? b_ : a_;
    energy_->onTransfer(sender, receiver, bytes);
  }
  return true;
}

Network::Network(sim::Simulator& simulator, const trace::ContactTrace& trace,
                 NetworkConfig config)
    : simulator_(simulator),
      trace_(trace),
      config_(config),
      log_(trace.nodeCount()),
      lossRng_(config.lossSeed) {
  DTNCACHE_CHECK(config_.bandwidthBytesPerSec > 0.0);
  DTNCACHE_CHECK(config_.contactLossRate >= 0.0 && config_.contactLossRate <= 1.0);
}

void Network::setObservability(obs::Tracer* tracer, obs::Registry* registry) {
  tracer_ = tracer;
  if (registry != nullptr) {
    ctrDelivered_ = &registry->counter("net.contact.delivered");
    ctrSuppressed_ = &registry->counter("net.contact.suppressed");
    ctrLost_ = &registry->counter("net.contact.lost");
  } else {
    ctrDelivered_ = ctrSuppressed_ = ctrLost_ = nullptr;
  }
}

void Network::start(ContactFn onContact) {
  DTNCACHE_CHECK_MSG(!started_, "Network::start called twice");
  started_ = true;
  onContact_ = std::move(onContact);
  const auto& contacts = trace_.contacts();
  // Contacts already in the past (e.g. a truncated warm-up) are skipped;
  // the trace is start-sorted, so they form a prefix.
  const sim::SimTime now = simulator_.now();
  firstContact_ = static_cast<std::size_t>(
      std::lower_bound(contacts.begin(), contacts.end(), now,
                       [](const trace::Contact& c, sim::SimTime t) { return c.start < t; }) -
      contacts.begin());
  nextContact_ = firstContact_;
  if (nextContact_ == contacts.size()) return;
  // One FIFO rank per remaining contact, claimed here: the cursor event for
  // contact i fires with rank seqBase_ + (i - firstContact_), i.e. exactly
  // where the old eager fan-out would have placed it, while keeping a
  // single event pending instead of the whole trace.
  seqBase_ = simulator_.reserveSequences(contacts.size() - nextContact_);
  if (sharded_) {
    // No cursor event: the shard driver pulls contacts by index. Plain mode
    // would schedule the cursor exactly here — the pending bias takes its
    // place so peak-pending tracking stays byte-identical (the driver drops
    // the bias when the last contact is processed, where plain mode's final
    // cursor pop would occur).
    simulator_.setPendingBias(1);
    return;
  }
  scheduleNextContact();
}

void Network::setShardedDelivery(bool on) {
  DTNCACHE_CHECK_MSG(!started_, "setShardedDelivery must precede start()");
  sharded_ = on;
}

void Network::enterShardMode(std::size_t contexts) {
  DTNCACHE_CHECK(sharded_ && started_ && shardCtxs_.empty());
  DTNCACHE_CHECK_MSG(energy_ == nullptr, "sharded delivery excludes energy runs");
  shardCtxs_.resize(contexts);
  for (ShardCtx& ctx : shardCtxs_) ctx.log = TransferLog(trace_.nodeCount());
  // Plain delivery draws one bernoulli per delivered contact, in index
  // order. Drawing the whole suffix here consumes the identical stream
  // (lossRng_ serves nothing else), so outcome i matches plain outcome i;
  // draws past the horizon are simply never read.
  if (config_.contactLossRate > 0.0) {
    const auto& contacts = trace_.contacts();
    lossLost_.resize(contacts.size() - firstContact_);
    for (std::size_t i = 0; i < lossLost_.size(); ++i)
      lossLost_[i] = lossRng_.bernoulli(config_.contactLossRate) ? 1 : 0;
  }
}

void Network::deliverSharded(std::size_t index) {
  const trace::Contact& c = trace_.contacts()[index];
  const sim::SimTime t = c.start;
  ShardCtx& ctx = shardCtxs_[sim::tlsShard.ctx];
  if (config_.contactLossRate > 0.0 && lossLost_[index - firstContact_] != 0) {
    ++ctx.lost;
    if (ctrLost_ != nullptr) ctrLost_->add();
    DTNCACHE_EVENT(tracer_, obs::EventKind::kContactLost, t, {"a", c.a}, {"b", c.b});
    return;
  }
  if (filter_ && !filter_(c.a, c.b, t)) {
    ++ctx.suppressed;
    if (ctrSuppressed_ != nullptr) ctrSuppressed_->add();
    DTNCACHE_EVENT(tracer_, obs::EventKind::kContactSuppressed, t, {"a", c.a},
                   {"b", c.b});
    return;
  }
  ++ctx.delivered;
  if (ctrDelivered_ != nullptr) ctrDelivered_->add();
  const auto budget = std::max<std::uint64_t>(
      config_.minContactBudgetBytes,
      static_cast<std::uint64_t>(std::llround(c.duration * config_.bandwidthBytesPerSec)));
  ContactChannel channel(budget, ctx.log, c.a, c.b, nullptr);
  onContact_(c.a, c.b, t, c.duration, channel);
  DTNCACHE_EVENT(tracer_, obs::EventKind::kContact, t, {"a", c.a}, {"b", c.b},
                 {"dur", c.duration}, {"budget", budget},
                 {"spent", budget - channel.remainingBytes()});
}

void Network::exitShardMode() {
  for (const ShardCtx& ctx : shardCtxs_) {
    log_.merge(ctx.log);
    contactsDelivered_ += ctx.delivered;
    contactsSuppressed_ += ctx.suppressed;
    contactsLost_ += ctx.lost;
  }
  shardCtxs_.clear();
  lossLost_.clear();
}

void Network::scheduleNextContact() {
  const trace::Contact& c = trace_.contacts()[nextContact_];
  simulator_.scheduleAtSequence(c.start, seqBase_ + (nextContact_ - firstContact_),
                                [this](sim::SimTime t) { deliverContact(t); });
}

void Network::deliverContact(sim::SimTime t) {
  const trace::Contact& c = trace_.contacts()[nextContact_];
  ++nextContact_;
  if (nextContact_ < trace_.contacts().size()) scheduleNextContact();
  if (energy_ != nullptr) energy_->advanceTo(t);
  if (config_.contactLossRate > 0.0 && lossRng_.bernoulli(config_.contactLossRate)) {
    ++contactsLost_;
    if (ctrLost_ != nullptr) ctrLost_->add();
    DTNCACHE_EVENT(tracer_, obs::EventKind::kContactLost, t, {"a", c.a}, {"b", c.b});
    return;
  }
  if (filter_ && !filter_(c.a, c.b, t)) {
    ++contactsSuppressed_;
    if (ctrSuppressed_ != nullptr) ctrSuppressed_->add();
    DTNCACHE_EVENT(tracer_, obs::EventKind::kContactSuppressed, t, {"a", c.a},
                   {"b", c.b});
    return;
  }
  ++contactsDelivered_;
  if (ctrDelivered_ != nullptr) ctrDelivered_->add();
  if (energy_ != nullptr) energy_->onContact(c.a, c.b);
  const auto budget = std::max<std::uint64_t>(
      config_.minContactBudgetBytes,
      static_cast<std::uint64_t>(std::llround(c.duration * config_.bandwidthBytesPerSec)));
  ContactChannel channel(budget, log_, c.a, c.b, energy_);
  onContact_(c.a, c.b, t, c.duration, channel);
  // Emitted after the protocol ran so the event can report the spend;
  // same sim time as the pushes/forwards the contact carried.
  DTNCACHE_EVENT(tracer_, obs::EventKind::kContact, t, {"a", c.a}, {"b", c.b},
                 {"dur", c.duration}, {"budget", budget},
                 {"spent", budget - channel.remainingBytes()});
}

}  // namespace dtncache::net
