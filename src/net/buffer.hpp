#pragma once

/// \file buffer.hpp
/// Per-node store-carry-forward message buffer.
///
/// Bounded in bytes; when full, the oldest message is dropped (drop-head —
/// the standard DTN buffer policy: old messages have had their chance to
/// spread). Expired messages (past their deadline) are purged lazily.
///
/// Messages live in a pooled slot vector (freed slots are recycled through
/// a free list), FIFO order is an intrusive doubly-linked list threaded
/// through the slots, and an open-addressing index maps message id to slot.
/// A warmed buffer adds, drops, and dedups with zero heap traffic, and
/// `contains` — called for every forwarding candidate at every contact — is
/// one probe instead of a scan. Forwarding logic walks the list with slot
/// cursors (`firstSlot`/`nextSlot`/`at`), which stay valid while *other*
/// buffers are mutated; removal during a walk is deferred by the caller and
/// applied by id afterwards.

#include <cstddef>
#include <vector>

#include "core/slot_index.hpp"
#include "net/message.hpp"
#include "sim/assert.hpp"

namespace dtncache::net {

class MessageBuffer {
 public:
  /// Cursor sentinel: end of the FIFO list.
  static constexpr std::uint32_t kNil = static_cast<std::uint32_t>(-1);

  explicit MessageBuffer(std::size_t capacityBytes = 5 * 1024 * 1024)
      : capacityBytes_(capacityBytes) {}

  /// Insert a message; drops oldest entries to make room. Returns false if
  /// the message alone exceeds capacity (never inserted) or is a duplicate.
  bool add(const Message& m, sim::SimTime now) {
    purgeExpired(now);
    if (m.wireBytes() > capacityBytes_) return false;
    if (contains(m.id)) return false;
    while (usedBytes_ + m.wireBytes() > capacityBytes_) dropOldest();
    const std::uint32_t slot = allocSlot();
    slots_[slot].msg = m;
    linkTail(slot);
    index_.insert(m.id, slot);
    usedBytes_ += m.wireBytes();
    return true;
  }

  bool contains(MessageId id) const { return index_.find(id) != core::SlotIndex::kNoSlot; }

  /// Remove the message with `id`, if buffered. O(1).
  void removeById(MessageId id) {
    const std::uint32_t slot = index_.erase(id);
    if (slot == core::SlotIndex::kNoSlot) return;
    usedBytes_ -= slots_[slot].msg.wireBytes();
    unlink(slot);
    releaseSlot(slot);
  }

  /// Remove every message for which `pred` holds, in FIFO order.
  template <typename Pred>
  void removeIf(Pred&& pred) {
    for (std::uint32_t s = head_; s != kNil;) {
      const std::uint32_t next = slots_[s].next;
      if (pred(slots_[s].msg)) {
        usedBytes_ -= slots_[s].msg.wireBytes();
        index_.erase(slots_[s].msg.id);
        unlink(s);
        releaseSlot(s);
      }
      s = next;
    }
  }

  /// Drop messages whose deadline has passed (deadline 0 = no deadline).
  void purgeExpired(sim::SimTime now) {
    removeIf([now](const Message& m) { return m.deadline > 0.0 && now > m.deadline; });
  }

  /// FIFO cursor walk: oldest message first. Cursors are invalidated by any
  /// removal from *this* buffer, not by additions to other buffers.
  std::uint32_t firstSlot() const { return head_; }
  std::uint32_t nextSlot(std::uint32_t slot) const { return slots_[slot].next; }
  Message& at(std::uint32_t slot) { return slots_[slot].msg; }
  const Message& at(std::uint32_t slot) const { return slots_[slot].msg; }

  /// Oldest buffered message.
  const Message& front() const {
    DTNCACHE_CHECK(head_ != kNil);
    return slots_[head_].msg;
  }

  /// Visit every message, oldest first.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) fn(slots_[s].msg);
  }

  std::size_t usedBytes() const { return usedBytes_; }
  std::size_t capacityBytes() const { return capacityBytes_; }
  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

 private:
  struct Slot {
    Message msg;
    std::uint32_t prev = kNil;  ///< toward the oldest message
    std::uint32_t next = kNil;  ///< toward the newest message
  };

  std::uint32_t allocSlot() {
    if (!freeSlots_.empty()) {
      const std::uint32_t slot = freeSlots_.back();
      freeSlots_.pop_back();
      return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void releaseSlot(std::uint32_t slot) { freeSlots_.push_back(slot); }

  void linkTail(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.prev = tail_;
    s.next = kNil;
    if (tail_ != kNil) slots_[tail_].next = slot;
    tail_ = slot;
    if (head_ == kNil) head_ = slot;
  }

  void unlink(std::uint32_t slot) {
    Slot& s = slots_[slot];
    if (s.prev != kNil) slots_[s.prev].next = s.next;
    else head_ = s.next;
    if (s.next != kNil) slots_[s.next].prev = s.prev;
    else tail_ = s.prev;
    s.prev = s.next = kNil;
  }

  void dropOldest() {
    DTNCACHE_CHECK(head_ != kNil);
    const std::uint32_t slot = head_;
    usedBytes_ -= slots_[slot].msg.wireBytes();
    index_.erase(slots_[slot].msg.id);
    unlink(slot);
    releaseSlot(slot);
  }

  std::size_t capacityBytes_;
  std::size_t usedBytes_ = 0;
  core::SlotIndex index_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> freeSlots_;
  std::uint32_t head_ = kNil;  ///< oldest
  std::uint32_t tail_ = kNil;  ///< newest
};

}  // namespace dtncache::net
