#pragma once

/// \file buffer.hpp
/// Per-node store-carry-forward message buffer.
///
/// Bounded in bytes; when full, the oldest message is dropped (drop-head —
/// the standard DTN buffer policy: old messages have had their chance to
/// spread). Expired messages (at or past their deadline) are purged lazily,
/// but the buffer maintains exact deadline watermarks so "does this node
/// hold anything still alive?" (`hasLive`) is answerable in O(1) without
/// purging — the sharded kernel's activity fence asks that question for
/// every contact and must not mutate state while doing so.
///
/// Messages live in a pooled slot vector (freed slots are recycled through
/// a free list), FIFO order is an intrusive doubly-linked list threaded
/// through the slots, and an open-addressing index maps message id to slot.
/// A warmed buffer adds, drops, and dedups with zero heap traffic, and
/// `contains` — called for every forwarding candidate at every contact — is
/// one probe instead of a scan. Forwarding logic walks the list with slot
/// cursors (`firstSlot`/`nextSlot`/`at`), which stay valid while *other*
/// buffers are mutated; removal during a walk is deferred by the caller and
/// applied by id afterwards.

#include <cstddef>
#include <limits>
#include <vector>

#include "core/slot_index.hpp"
#include "net/message.hpp"
#include "sim/assert.hpp"

namespace dtncache::net {

/// The one expiry convention, everywhere: a message is expired *at* its
/// deadline instant (`now >= deadline`) — a reply arriving exactly at the
/// deadline could never be counted as answered, so keeping such a message
/// would only inflate buffers and the activity fence. Deadline 0 means "no
/// deadline" (placements live forever).
inline bool messageExpired(const Message& m, sim::SimTime now) {
  return m.deadline > 0.0 && now >= m.deadline;
}

class MessageBuffer {
 public:
  /// Cursor sentinel: end of the FIFO list.
  static constexpr std::uint32_t kNil = static_cast<std::uint32_t>(-1);

  explicit MessageBuffer(std::size_t capacityBytes = 5 * 1024 * 1024)
      : capacityBytes_(capacityBytes) {}

  /// Insert a message; drops oldest entries to make room. Returns false if
  /// the message alone exceeds capacity (never inserted) or is a duplicate.
  bool add(const Message& m, sim::SimTime now) {
    purgeExpired(now);
    if (m.wireBytes() > capacityBytes_) return false;
    if (contains(m.id)) return false;
    while (usedBytes_ + m.wireBytes() > capacityBytes_) dropOldest();
    const std::uint32_t slot = allocSlot();
    slots_[slot].msg = m;
    linkTail(slot);
    index_.insert(m.id, slot);
    usedBytes_ += m.wireBytes();
    noteAdded(m);
    settleDeadlineBounds();
    return true;
  }

  bool contains(MessageId id) const { return index_.find(id) != core::SlotIndex::kNoSlot; }

  /// Remove the message with `id`, if buffered. O(1).
  void removeById(MessageId id) {
    const std::uint32_t slot = index_.erase(id);
    if (slot == core::SlotIndex::kNoSlot) return;
    usedBytes_ -= slots_[slot].msg.wireBytes();
    noteRemoved(slots_[slot].msg);
    unlink(slot);
    releaseSlot(slot);
    settleDeadlineBounds();
  }

  /// Remove every message for which `pred` holds, in FIFO order.
  template <typename Pred>
  void removeIf(Pred&& pred) {
    for (std::uint32_t s = head_; s != kNil;) {
      const std::uint32_t next = slots_[s].next;
      if (pred(slots_[s].msg)) {
        usedBytes_ -= slots_[s].msg.wireBytes();
        noteRemoved(slots_[s].msg);
        index_.erase(slots_[s].msg.id);
        unlink(s);
        releaseSlot(s);
      }
      s = next;
    }
    settleDeadlineBounds();
  }

  /// Drop messages at or past their deadline (see messageExpired). The
  /// watermark makes the no-op case — nothing can have expired yet — free,
  /// which is nearly every call on placement-only buffers.
  void purgeExpired(sim::SimTime now) {
    if (deadlineCount_ == 0 || now < earliestDeadline_) return;
    removeIf([now](const Message& m) { return messageExpired(m, now); });
  }

  /// True iff at least one buffered message is still unexpired at `now`.
  /// O(1), no mutation: safe to call from sharded-kernel worker threads and
  /// the coordinator's activity fence. Exact, not conservative — equals
  /// "would a full scan find a live message" (asserted by the randomized
  /// watermark tests).
  bool hasLive(sim::SimTime now) const {
    return foreverCount_ > 0 || (deadlineCount_ > 0 && now < latestDeadline_);
  }

  /// FIFO cursor walk: oldest message first. Cursors are invalidated by any
  /// removal from *this* buffer, not by additions to other buffers.
  std::uint32_t firstSlot() const { return head_; }
  std::uint32_t nextSlot(std::uint32_t slot) const { return slots_[slot].next; }
  Message& at(std::uint32_t slot) { return slots_[slot].msg; }
  const Message& at(std::uint32_t slot) const { return slots_[slot].msg; }

  /// Oldest buffered message.
  const Message& front() const {
    DTNCACHE_CHECK(head_ != kNil);
    return slots_[head_].msg;
  }

  /// Visit every message, oldest first.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) fn(slots_[s].msg);
  }

  std::size_t usedBytes() const { return usedBytes_; }
  std::size_t capacityBytes() const { return capacityBytes_; }
  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

 private:
  struct Slot {
    Message msg;
    std::uint32_t prev = kNil;  ///< toward the oldest message
    std::uint32_t next = kNil;  ///< toward the newest message
  };

  std::uint32_t allocSlot() {
    if (!freeSlots_.empty()) {
      const std::uint32_t slot = freeSlots_.back();
      freeSlots_.pop_back();
      return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void releaseSlot(std::uint32_t slot) { freeSlots_.push_back(slot); }

  void linkTail(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.prev = tail_;
    s.next = kNil;
    if (tail_ != kNil) slots_[tail_].next = slot;
    tail_ = slot;
    if (head_ == kNil) head_ = slot;
  }

  void unlink(std::uint32_t slot) {
    Slot& s = slots_[slot];
    if (s.prev != kNil) slots_[s.prev].next = s.next;
    else head_ = s.next;
    if (s.next != kNil) slots_[s.next].prev = s.prev;
    else tail_ = s.prev;
    s.prev = s.next = kNil;
  }

  void dropOldest() {
    DTNCACHE_CHECK(head_ != kNil);
    const std::uint32_t slot = head_;
    usedBytes_ -= slots_[slot].msg.wireBytes();
    noteRemoved(slots_[slot].msg);
    index_.erase(slots_[slot].msg.id);
    unlink(slot);
    releaseSlot(slot);
  }

  // --- deadline watermarks -------------------------------------------------
  // Counts split forever (deadline 0) from deadline-carrying messages;
  // earliest/latest bound the finite deadlines. All four are exact at every
  // public-method boundary: removals that hit an extremum mark the bounds
  // dirty and the enclosing public mutator rescans once before returning
  // (O(size), amortized away by how rarely extremes are removed).

  void noteAdded(const Message& m) {
    if (m.deadline <= 0.0) {
      ++foreverCount_;
      return;
    }
    ++deadlineCount_;
    if (m.deadline < earliestDeadline_) earliestDeadline_ = m.deadline;
    if (m.deadline > latestDeadline_) latestDeadline_ = m.deadline;
  }

  void noteRemoved(const Message& m) {
    if (m.deadline <= 0.0) {
      --foreverCount_;
      return;
    }
    --deadlineCount_;
    if (m.deadline == earliestDeadline_ || m.deadline == latestDeadline_)
      boundsDirty_ = true;
  }

  void settleDeadlineBounds() {
    if (!boundsDirty_) return;
    boundsDirty_ = false;
    earliestDeadline_ = std::numeric_limits<sim::SimTime>::infinity();
    latestDeadline_ = -std::numeric_limits<sim::SimTime>::infinity();
    if (deadlineCount_ == 0) return;
    for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
      const sim::SimTime d = slots_[s].msg.deadline;
      if (d <= 0.0) continue;
      if (d < earliestDeadline_) earliestDeadline_ = d;
      if (d > latestDeadline_) latestDeadline_ = d;
    }
  }

  std::size_t capacityBytes_;
  std::size_t usedBytes_ = 0;
  std::size_t foreverCount_ = 0;   ///< messages with deadline 0 (never expire)
  std::size_t deadlineCount_ = 0;  ///< messages with a finite deadline
  sim::SimTime earliestDeadline_ = std::numeric_limits<sim::SimTime>::infinity();
  sim::SimTime latestDeadline_ = -std::numeric_limits<sim::SimTime>::infinity();
  bool boundsDirty_ = false;
  core::SlotIndex index_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> freeSlots_;
  std::uint32_t head_ = kNil;  ///< oldest
  std::uint32_t tail_ = kNil;  ///< newest
};

}  // namespace dtncache::net
