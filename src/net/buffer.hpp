#pragma once

/// \file buffer.hpp
/// Per-node store-carry-forward message buffer.
///
/// Bounded in bytes; when full, the oldest message is dropped (drop-head —
/// the standard DTN buffer policy: old messages have had their chance to
/// spread). Expired messages (past their deadline) are purged lazily.

#include <cstddef>
#include <deque>
#include <functional>

#include "net/message.hpp"
#include "sim/assert.hpp"

namespace dtncache::net {

class MessageBuffer {
 public:
  explicit MessageBuffer(std::size_t capacityBytes = 5 * 1024 * 1024)
      : capacityBytes_(capacityBytes) {}

  /// Insert a message; drops oldest entries to make room. Returns false if
  /// the message alone exceeds capacity (never inserted) or is a duplicate.
  bool add(const Message& m, sim::SimTime now) {
    purgeExpired(now);
    if (m.wireBytes() > capacityBytes_) return false;
    if (contains(m.id)) return false;
    while (usedBytes_ + m.wireBytes() > capacityBytes_) dropOldest();
    messages_.push_back(m);
    usedBytes_ += m.wireBytes();
    return true;
  }

  bool contains(MessageId id) const {
    for (const auto& m : messages_)
      if (m.id == id) return true;
    return false;
  }

  /// Remove every message for which `pred` holds.
  void removeIf(const std::function<bool(const Message&)>& pred) {
    for (auto it = messages_.begin(); it != messages_.end();) {
      if (pred(*it)) {
        usedBytes_ -= it->wireBytes();
        it = messages_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Drop messages whose deadline has passed (deadline 0 = no deadline).
  void purgeExpired(sim::SimTime now) {
    removeIf([now](const Message& m) { return m.deadline > 0.0 && now > m.deadline; });
  }

  /// Mutable access for forwarding logic (copy-count updates in place).
  std::deque<Message>& messages() { return messages_; }
  const std::deque<Message>& messages() const { return messages_; }

  std::size_t usedBytes() const { return usedBytes_; }
  std::size_t capacityBytes() const { return capacityBytes_; }
  std::size_t size() const { return messages_.size(); }
  bool empty() const { return messages_.empty(); }

 private:
  void dropOldest() {
    DTNCACHE_CHECK(!messages_.empty());
    usedBytes_ -= messages_.front().wireBytes();
    messages_.pop_front();
  }

  std::size_t capacityBytes_;
  std::size_t usedBytes_ = 0;
  std::deque<Message> messages_;
};

}  // namespace dtncache::net
