#pragma once

/// \file fragment_store.hpp
/// Content-addressed, CRC-guarded result fragments — the sweep checkpoint.
///
/// Every completed work unit becomes one fragment: the job's rendered
/// JSONL line, CSV header + row, and optional trace slice, framed with the
/// same guard discipline as peer::DiskStore's log (core/crc32.hpp): a
/// fixed header carrying the job index and the sweep/config fingerprints,
/// then `bodyLen | bodyCrc | body`. A torn write, a truncated file, or a
/// flipped bit fails the CRC (or the header sanity checks) and the
/// fragment simply does not count — resume re-queues the unit.
///
/// Fragments live in `<store>/frags/job-<index>-<bodycrc>.frag` and are
/// written via temp-file + rename, so a reader never sees a half fragment
/// under its final name. Because job output is deterministic, two workers
/// racing on the same unit produce byte-identical fragments with the same
/// name — duplicate completion is idempotent by construction.
///
/// The store root also holds `manifest.txt` (the sweep's identity, see
/// work_unit.hpp), `status.jsonl` (a counters line the trace tooling can
/// read), and `lease-<index>` marker files used by the connectionless
/// spool mode (O_EXCL creation = lease acquisition; age = staleness).

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dtncache::sweep {

/// One decoded fragment.
struct Fragment {
  std::uint64_t jobIndex = 0;
  std::uint64_t sweepFp = 0;   ///< sweepFingerprint of the owning sweep
  std::uint64_t configFp = 0;  ///< configFingerprintU64 of the job's config
  std::string jsonl;           ///< rendered JSONL record, trailing newline
  std::string csvHeader;       ///< rendered CSV header line
  std::string csvRow;          ///< rendered CSV row
  std::string trace;           ///< merged-trace slice ("" when tracing is off)
};

/// Serialize with header + CRC guard. Deterministic: same fragment, same
/// bytes.
std::vector<std::uint8_t> encodeFragment(const Fragment& fragment);

/// Strict parse: header sanity, exact length, CRC. Returns false (without
/// touching `out`) on any corruption — torn tails and bit flips included.
bool decodeFragment(const std::uint8_t* data, std::size_t size, Fragment* out);

class FragmentStore {
 public:
  /// Opens (creating if needed) `dir` and `dir`/frags. Throws on failure.
  explicit FragmentStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Atomically write `text` to `<dir>/<name>` (temp + rename).
  void writeFile(const std::string& name, const std::string& text) const;

  /// Contents of `<dir>/<name>`, or nullopt if absent/unreadable.
  std::optional<std::string> readFile(const std::string& name) const;

  /// Write a fragment (temp + rename). Returns the final path.
  std::string put(const Fragment& fragment) const;

  /// Validate raw fragment bytes against the expected sweep and store them.
  /// Returns false (nothing written) if the bytes do not decode or belong
  /// to a different sweep.
  bool putBytes(const std::vector<std::uint8_t>& bytes, std::uint64_t sweepFp,
                Fragment* decoded = nullptr) const;

  struct ScanResult {
    /// Valid fragments of this sweep: job index -> file path. With
    /// duplicates (same index twice), the lexicographically first path wins.
    std::map<std::uint64_t, std::string> valid;
    std::size_t invalid = 0;  ///< corrupt/foreign files seen (and dropped)
  };

  /// Walk the fragment directory, fully validating every `*.frag` file.
  /// Corrupt or foreign-sweep files are counted and, with `dropInvalid`,
  /// unlinked so a re-run rewrites them cleanly.
  ScanResult scan(std::uint64_t sweepFp, bool dropInvalid) const;

  /// Re-read and decode one fragment file. nullopt if it fails validation.
  std::optional<Fragment> read(const std::string& path) const;

  /// Any `job-<index>-*.frag` file present (no validation — existence only).
  /// Spool workers re-check this after acquiring a lease: a writer releases
  /// its lease only after the fragment rename, so lease-then-check cannot
  /// miss a completed unit, making duplicate runs impossible rather than
  /// merely idempotent.
  bool hasFragment(std::uint64_t index) const;

  // -- spool-mode leases ------------------------------------------------------

  /// O_EXCL-create `<dir>/lease-<index>`. True if this process now holds
  /// the lease.
  bool tryLease(std::uint64_t index) const;

  /// Age of the lease file in seconds (mtime-based); nullopt if absent.
  std::optional<double> leaseAge(std::uint64_t index) const;

  /// Remove the lease marker (idempotent).
  void releaseLease(std::uint64_t index) const;

 private:
  std::string fragDir() const { return dir_ + "/frags"; }
  std::string leasePath(std::uint64_t index) const;

  std::string dir_;
};

/// Assemble a complete fragment set into final outputs, strictly in
/// job-index order: JSONL lines concatenated, the CSV header (verified
/// identical across fragments) followed by rows, trace slices concatenated.
/// `units` comes from the locally expanded manifest; every unit must have a
/// valid fragment whose config fingerprint matches, or the merge throws
/// with the missing/mismatched indices. Null streams skip that output.
struct WorkUnit;
void mergeFragments(const FragmentStore& store, std::uint64_t sweepFp,
                    const std::vector<WorkUnit>& units, std::ostream* jsonl,
                    std::ostream* csv, std::ostream* trace);

}  // namespace dtncache::sweep
