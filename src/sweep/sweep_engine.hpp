#pragma once

/// \file sweep_engine.hpp
/// Parameter-grid expansion and thread-pooled experiment execution.
///
/// A SweepGrid is a base ExperimentConfig plus three kinds of axes: the
/// scheme, the master seed, and any number of config knobs addressed by
/// their config_io dotted key ("catalog.itemCount", "hierarchical.
/// replication.theta", ...). expandGrid() flattens the cartesian product
/// into an indexed job list — knob axes outermost (declaration order, last
/// axis fastest), then scheme, then seed innermost, so replications of one
/// cell are adjacent.
///
/// Determinism contract: every job owns its full random state via the
/// master-seed design (no shared mutable state crosses jobs), and the
/// engine hands results to sinks in job-index order regardless of worker
/// count or completion order. A sweep at --jobs 8 is therefore
/// bit-identical to --jobs 1 everywhere except wall-clock fields.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/event.hpp"
#include "runner/experiment.hpp"

namespace dtncache::sweep {

/// One knob axis: a config_io key and the scalar values to sweep it over.
/// Values are kept as raw text ("0.9", "epidemic", "true"); jsonScalar()
/// turns each into a JSON literal when the override is applied.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

struct SweepGrid {
  runner::ExperimentConfig base;
  std::vector<runner::SchemeKind> schemes;  ///< empty → just base.scheme
  std::vector<std::uint64_t> seeds;         ///< empty → just base.seed
  std::vector<SweepAxis> axes;              ///< knob overrides, cartesian
};

/// One fully resolved run of the grid.
struct SweepJob {
  std::size_t index = 0;  ///< position in deterministic grid order
  runner::ExperimentConfig config;
  /// The knob-axis assignment that produced this job (key → raw value),
  /// carried through to the result sinks as labeling columns.
  std::vector<std::pair<std::string, std::string>> overrides;
};

/// Flatten the grid. Throws InvariantViolation on unknown keys or empty
/// axes, so a typo'd axis fails before any simulation runs.
std::vector<SweepJob> expandGrid(const SweepGrid& grid);

/// Raw axis value → JSON scalar literal (numbers and booleans pass
/// through, anything else is quoted).
std::string jsonScalar(const std::string& raw);

/// FNV-1a 64 of arbitrary text — the hash behind config and sweep
/// fingerprints (work_unit.hpp).
std::uint64_t fnv1a64(const std::string& text);

/// 16-hex-digit FNV-1a of the full dumped config — the archival identity
/// of a run. Two jobs with the same fingerprint ran the same experiment.
std::string configFingerprint(const runner::ExperimentConfig& config);

/// Same identity as a raw 64-bit value (what wire frames and fragment
/// headers carry; configFingerprint is this rendered as 16 hex digits).
std::uint64_t configFingerprintU64(const runner::ExperimentConfig& config);

struct JobResult {
  SweepJob job;
  runner::ExperimentOutput output;
  double wallSeconds = 0.0;  ///< this job only, on its worker thread
};

/// Receives results strictly in job-index order (see determinism contract).
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void begin(const std::vector<SweepJob>& jobs) { (void)jobs; }
  virtual void write(const JobResult& result) = 0;
  virtual void finish() {}
};

struct SweepOptions {
  std::size_t jobs = 0;   ///< worker threads; 0 → ThreadPool::defaultWorkers()
  bool progress = false;  ///< live progress/ETA lines on stderr
  /// Structured event tracing: when set, every job runs with a private
  /// per-job tracer (run label = the job's config fingerprint) and the
  /// buffers are flushed here in job-index order — so the merged JSONL is
  /// byte-identical at any `jobs` count, like the result sinks. Null
  /// disables tracing entirely (zero hot-path cost beyond a pointer test).
  std::ostream* traceOut = nullptr;
  /// Event-kind mask applied to every job tracer (see obs::parseKindFilter).
  obs::KindMask traceFilter = obs::kAllKinds;
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepOptions options = {}) : options_(options) {}

  /// Expand and run the grid; sinks stream results in job-index order.
  /// The returned vector is in the same order. A job whose simulation
  /// throws aborts the sweep with that exception (propagated from the
  /// worker via its future).
  std::vector<JobResult> run(const SweepGrid& grid,
                             const std::vector<ResultSink*>& sinks = {});

  /// Run an explicit pre-expanded job list (run() above is this after
  /// expandGrid()).
  std::vector<JobResult> runJobs(std::vector<SweepJob> jobs,
                                 const std::vector<ResultSink*>& sinks = {});

 private:
  SweepOptions options_;
};

/// Bench-facing convenience: run `configs` on `jobs` workers (0 →
/// hardware), outputs in input order. No sinks, no progress — the benches
/// format their own tables.
std::vector<runner::ExperimentOutput> runParallel(
    const std::vector<runner::ExperimentConfig>& configs, std::size_t jobs = 0);

}  // namespace dtncache::sweep
