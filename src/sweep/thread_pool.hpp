#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool behind the sweep engine.
///
/// Deliberately minimal: a locked deque of type-erased tasks, N workers,
/// futures for results. Exceptions thrown by a task are captured by its
/// packaged_task and rethrown from the corresponding future's get() — a
/// failing simulation surfaces at the aggregation site, not in a worker.
/// shutdown() (and the destructor) is graceful: already-queued work is
/// drained before the workers join, so no accepted job is silently dropped.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "sim/assert.hpp"

namespace dtncache::sweep {

class ThreadPool {
 public:
  /// Spawns `workers` threads immediately. workers must be >= 1.
  explicit ThreadPool(std::size_t workers);

  /// Drains and joins (see shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workerCount() const { return workers_.size(); }

  /// Queue a task; the future delivers its result or rethrows its
  /// exception. Throws InvariantViolation after shutdown().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      DTNCACHE_CHECK_MSG(!stopping_, "submit() on a shut-down ThreadPool");
      queue_.emplace_back([task] { (*task)(); });
    }
    available_.notify_one();
    return task->get_future();
  }

  /// Stop accepting work, run everything already queued, join the workers.
  /// Idempotent; called by the destructor if not called explicitly.
  void shutdown();

  /// Default parallelism: hardware_concurrency, with a floor of 1 (the
  /// standard permits returning 0 when the hardware can't be queried).
  static std::size_t defaultWorkers();

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable available_;
  bool stopping_ = false;
};

}  // namespace dtncache::sweep
