#include "sweep/distributed.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "core/crc32.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "peer/event_loop.hpp"
#include "runner/config_io.hpp"
#include "sim/assert.hpp"
#include "sweep/result_sink.hpp"

namespace dtncache::sweep {
namespace {

using core::putU32;
using core::putU64;
using core::readU32;
using core::readU64;

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

std::string fpHex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace

// ---- wire -------------------------------------------------------------------

SweepFrameType sweepFrameTypeOf(const SweepFrame& frame) {
  return std::visit(
      Overloaded{[](const WireHello&) { return SweepFrameType::kHello; },
                 [](const WireHelloAck&) { return SweepFrameType::kHelloAck; },
                 [](const WireLeaseRequest&) { return SweepFrameType::kLeaseRequest; },
                 [](const WireLeaseGrant&) { return SweepFrameType::kLeaseGrant; },
                 [](const WireNoWork&) { return SweepFrameType::kNoWork; },
                 [](const WireResult&) { return SweepFrameType::kResult; },
                 [](const WireResultAck&) { return SweepFrameType::kResultAck; },
                 [](const WireBye&) { return SweepFrameType::kBye; }},
      frame);
}

std::vector<std::uint8_t> encodeSweepFrame(const SweepFrame& frame) {
  std::vector<std::uint8_t> payload;
  std::visit(
      Overloaded{
          [&](const WireHello& f) { putU64(payload, f.sweepFp); },
          [&](const WireHelloAck& f) {
            payload.push_back(f.ok);
            putU64(payload, f.sweepFp);
            putU64(payload, f.jobsTotal);
            putU32(payload, static_cast<std::uint32_t>(f.manifest.size()));
            payload.insert(payload.end(), f.manifest.begin(), f.manifest.end());
          },
          [&](const WireLeaseRequest&) {},
          [&](const WireLeaseGrant& f) {
            putU64(payload, f.unit.index);
            putU64(payload, f.unit.configFp);
            putU64(payload, f.unit.seed);
          },
          [&](const WireNoWork& f) {
            payload.push_back(f.done);
            putU32(payload, f.retryMs);
          },
          [&](const WireResult& f) {
            putU32(payload, static_cast<std::uint32_t>(f.fragment.size()));
            payload.insert(payload.end(), f.fragment.begin(), f.fragment.end());
          },
          [&](const WireResultAck& f) {
            putU64(payload, f.index);
            payload.push_back(f.duplicate);
          },
          [&](const WireBye&) {}},
      frame);
  DTNCACHE_CHECK_MSG(payload.size() <= kSweepMaxPayloadBytes,
                     "sweep frame payload too large");

  std::vector<std::uint8_t> out;
  out.reserve(kSweepFrameHeaderBytes + payload.size());
  putU32(out, kSweepWireMagic);
  out.push_back(kSweepWireVersion);
  out.push_back(static_cast<std::uint8_t>(sweepFrameTypeOf(frame)));
  out.push_back(0);
  out.push_back(0);
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

namespace {

SweepDecodeResult reject(const char* why) {
  SweepDecodeResult r;
  r.status = SweepDecodeStatus::kReject;
  r.error = why;
  return r;
}

/// Bounded cursor over one frame's payload: every read checks remaining
/// bytes, so a lying length field cannot cause an out-of-bounds read.
struct PayloadReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t offset = 0;

  bool u8(std::uint8_t* out) {
    if (size - offset < 1) return false;
    *out = data[offset++];
    return true;
  }
  bool u32(std::uint32_t* out) {
    if (size - offset < 4) return false;
    *out = readU32(data + offset);
    offset += 4;
    return true;
  }
  bool u64(std::uint64_t* out) {
    if (size - offset < 8) return false;
    *out = readU64(data + offset);
    offset += 8;
    return true;
  }
  bool bytes(std::size_t n, const std::uint8_t** out) {
    if (size - offset < n) return false;
    *out = data + offset;
    offset += n;
    return true;
  }
  bool done() const { return offset == size; }
};

}  // namespace

SweepDecodeResult decodeSweepFrame(const std::uint8_t* data, std::size_t size) {
  SweepDecodeResult result;
  if (size < kSweepFrameHeaderBytes) return result;  // kNeedMore
  if (readU32(data) != kSweepWireMagic) return reject("bad magic");
  if (data[4] != kSweepWireVersion) return reject("unsupported version");
  if (data[6] != 0 || data[7] != 0) return reject("reserved bytes set");
  const std::uint32_t length = readU32(data + 8);
  if (length > kSweepMaxPayloadBytes) return reject("payload too large");
  if (size < kSweepFrameHeaderBytes + length) return result;  // kNeedMore

  PayloadReader in{data + kSweepFrameHeaderBytes, length};
  SweepFrame frame;
  switch (data[5]) {
    case static_cast<std::uint8_t>(SweepFrameType::kHello): {
      WireHello f;
      if (!in.u64(&f.sweepFp)) return reject("truncated hello");
      frame = f;
      break;
    }
    case static_cast<std::uint8_t>(SweepFrameType::kHelloAck): {
      WireHelloAck f;
      std::uint32_t manifestLen = 0;
      const std::uint8_t* text = nullptr;
      if (!in.u8(&f.ok) || !in.u64(&f.sweepFp) || !in.u64(&f.jobsTotal) ||
          !in.u32(&manifestLen) || !in.bytes(manifestLen, &text))
        return reject("truncated hello-ack");
      f.manifest.assign(reinterpret_cast<const char*>(text), manifestLen);
      frame = std::move(f);
      break;
    }
    case static_cast<std::uint8_t>(SweepFrameType::kLeaseRequest):
      frame = WireLeaseRequest{};
      break;
    case static_cast<std::uint8_t>(SweepFrameType::kLeaseGrant): {
      WireLeaseGrant f;
      if (!in.u64(&f.unit.index) || !in.u64(&f.unit.configFp) || !in.u64(&f.unit.seed))
        return reject("truncated lease-grant");
      frame = f;
      break;
    }
    case static_cast<std::uint8_t>(SweepFrameType::kNoWork): {
      WireNoWork f;
      if (!in.u8(&f.done) || !in.u32(&f.retryMs)) return reject("truncated no-work");
      frame = f;
      break;
    }
    case static_cast<std::uint8_t>(SweepFrameType::kResult): {
      WireResult f;
      std::uint32_t fragmentLen = 0;
      const std::uint8_t* bytes = nullptr;
      if (!in.u32(&fragmentLen) || !in.bytes(fragmentLen, &bytes))
        return reject("truncated result");
      f.fragment.assign(bytes, bytes + fragmentLen);
      frame = std::move(f);
      break;
    }
    case static_cast<std::uint8_t>(SweepFrameType::kResultAck): {
      WireResultAck f;
      if (!in.u64(&f.index) || !in.u8(&f.duplicate)) return reject("truncated result-ack");
      frame = f;
      break;
    }
    case static_cast<std::uint8_t>(SweepFrameType::kBye):
      frame = WireBye{};
      break;
    default:
      return reject("unknown frame type");
  }
  if (!in.done()) return reject("trailing payload bytes");

  result.status = SweepDecodeStatus::kFrame;
  result.consumed = kSweepFrameHeaderBytes + length;
  result.frame = std::move(frame);
  return result;
}

// ---- work-unit execution ----------------------------------------------------

Fragment runWorkUnitFragment(const SweepManifest& manifest, std::uint64_t sweepFp,
                             const SweepJob& jobIn) {
  SweepJob job = jobIn;
  std::unique_ptr<obs::Tracer> tracer;
  std::ostringstream traceOut;
  if (manifest.traceEnabled) {
    tracer = std::make_unique<obs::Tracer>(configFingerprint(job.config),
                                           manifest.traceFilter);
    job.config.tracer = tracer.get();
  } else {
    job.config.tracer = nullptr;
  }
  // Exactly the events SweepEngine::runJobs emits around a job, so a
  // fragment's trace slice is byte-equal to the single-process trace.
  DTNCACHE_EVENT(job.config.tracer, obs::EventKind::kJobStart, 0.0,
                 {"job", job.index},
                 {"scheme", runner::schemeName(job.config.scheme)},
                 {"seed", job.config.seed});
  const auto start = std::chrono::steady_clock::now();
  auto output = runner::runExperiment(job.config);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  DTNCACHE_EVENT(job.config.tracer, obs::EventKind::kJobDone,
                 output.traceStats.duration, {"job", job.index});
  if (tracer != nullptr) tracer->flushTo(traceOut);

  JobResult result{std::move(job), std::move(output), wall};
  const auto fields = recordFields(result, manifest.wallClock);
  Fragment fragment;
  fragment.jobIndex = static_cast<std::uint64_t>(result.job.index);
  fragment.sweepFp = sweepFp;
  fragment.configFp = configFingerprintU64(result.job.config);
  fragment.jsonl = renderJsonlLine(fields);
  fragment.csvHeader = renderCsvHeader(fields);
  fragment.csvRow = renderCsvRow(fields);
  fragment.trace = traceOut.str();
  return fragment;
}

// ---- status file ------------------------------------------------------------

namespace {

/// One peerd-style `"kind": "counters"` line, so trace_summarize.py's
/// counters readout works unchanged on a sweep store.
void writeStatusFile(const FragmentStore& store, std::uint64_t sweepFp,
                     const obs::Registry& registry) {
  std::ostringstream line;
  line << "{\"run\": \"sweep-" << fpHex(sweepFp) << "\", \"kind\": \"counters\"";
  for (const auto& [name, value] : registry.counterSnapshot())
    line << ", \"ctr." << name << "\": " << value;
  line << "}\n";
  store.writeFile("status.jsonl", line.str());
}

/// The full progress counter set, pre-registered so status lines always
/// carry the same columns.
struct SweepCounters {
  obs::Counter& total;
  obs::Counter& completed;
  obs::Counter& resumed;
  obs::Counter& released;
  obs::Counter& duplicates;
  obs::Counter& invalid;

  explicit SweepCounters(obs::Registry& registry)
      : total(registry.counter("sweep.jobs_total")),
        completed(registry.counter("sweep.jobs_completed")),
        resumed(registry.counter("sweep.jobs_resumed")),
        released(registry.counter("sweep.jobs_released")),
        duplicates(registry.counter("sweep.results_duplicate")),
        invalid(registry.counter("sweep.fragments_invalid")) {}
};

int setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags < 0 ? -1 : ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void setNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

// ---- coordinator ------------------------------------------------------------

CoordinatorReport runCoordinator(const SweepManifest& manifest,
                                 const CoordinatorOptions& options) {
  const std::string manifestText = encodeManifest(manifest);
  const std::uint64_t sweepFp = sweepFingerprint(manifestText);
  FragmentStore store(options.storeDir);
  if (const auto existing = store.readFile("manifest.txt")) {
    DTNCACHE_CHECK_MSG(*existing == manifestText,
                       "store " << options.storeDir
                                << " holds a different sweep (manifest mismatch); "
                                   "use a fresh --store or the original flags");
  } else {
    store.writeFile("manifest.txt", manifestText);
  }

  const auto jobs = expandGrid(manifest.grid);
  const auto units = workUnits(jobs);
  CoordinatorReport report;
  report.jobsTotal = units.size();

  obs::Registry registry;
  SweepCounters ctr(registry);
  ctr.total.add(units.size());

  // Job states: 0 = pending, 1 = leased, 2 = done. The resume scan fully
  // validates every fragment (CRC + fingerprints), so a torn or bit-flipped
  // checkpoint is dropped here and its unit re-queued.
  std::vector<std::uint8_t> state(units.size(), 0);
  std::set<std::uint64_t> pending;
  {
    const auto scanned = store.scan(sweepFp, /*dropInvalid=*/true);
    report.invalidDropped = scanned.invalid;
    ctr.invalid.add(scanned.invalid);
    DTNCACHE_CHECK_MSG(scanned.valid.empty() || options.resume,
                       "store " << options.storeDir << " already holds "
                                << scanned.valid.size()
                                << " fragment(s) for this sweep; pass --resume "
                                   "to continue it");
    for (const auto& [index, path] : scanned.valid) {
      if (index < units.size() && state[index] == 0) {
        state[index] = 2;
        ++report.resumed;
      }
    }
    ctr.resumed.add(report.resumed);
  }
  std::size_t doneCount = report.resumed;
  for (std::uint64_t i = 0; i < units.size(); ++i)
    if (state[i] == 0) pending.insert(i);

  // Listen socket first, so the advertised port is live before any worker
  // reads coordinator.port.
  const int listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  DTNCACHE_CHECK_MSG(listenFd >= 0, "socket: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options.port);
  DTNCACHE_CHECK_MSG(::bind(listenFd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof addr) == 0 && ::listen(listenFd, 64) == 0,
                     "cannot listen on port " << options.port << ": "
                                              << std::strerror(errno));
  socklen_t addrLen = sizeof addr;
  ::getsockname(listenFd, reinterpret_cast<sockaddr*>(&addr), &addrLen);
  report.port = ntohs(addr.sin_port);
  setNonBlocking(listenFd);
  store.writeFile("coordinator.port", std::to_string(report.port) + "\n");
  writeStatusFile(store, sweepFp, registry);

  if (doneCount == units.size()) {
    // Nothing to serve (empty grid, or a resume of a finished store).
    ::close(listenFd);
    if (!options.quiet)
      std::fprintf(stderr, "coordinator: store already complete (%zu job(s))\n",
                   units.size());
    return report;
  }

  peer::EventLoop loop;

  struct Conn {
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    std::size_t outOff = 0;
    std::set<std::uint64_t> leases;
  };
  std::map<int, Conn> conns;
  std::map<std::uint64_t, std::pair<int, double>> leased;  // index -> (fd, since)
  bool finishScheduled = false;
  double lastStatus = 0.0;

  const auto updateStatus = [&](bool force) {
    if (!force && loop.now() - lastStatus < 1.0) return;
    lastStatus = loop.now();
    writeStatusFile(store, sweepFp, registry);
    if (!options.quiet)
      std::fprintf(stderr,
                   "coordinator: %zu/%zu done (%zu resumed, %zu released), "
                   "%zu worker(s)\n",
                   doneCount, units.size(), report.resumed, report.released,
                   conns.size());
  };

  const auto releaseLeaseOf = [&](std::uint64_t index) {
    leased.erase(index);
    if (state[index] == 1) {
      state[index] = 0;
      pending.insert(index);
      ++report.released;
      ctr.released.add(1);
    }
  };

  std::function<void(int)> closeConn;
  const auto maybeFinish = [&] {
    if (doneCount != units.size()) return;
    if (conns.empty()) {
      loop.stop();
      return;
    }
    if (finishScheduled) return;
    finishScheduled = true;
    // Idle workers learn the sweep is done on their next lease request;
    // after a short grace, drop whoever is left (e.g. a timed-out worker
    // still grinding a duplicate) and return.
    loop.runAfter(1.5, [&] {
      std::vector<int> fds;
      fds.reserve(conns.size());
      for (const auto& [fd, conn] : conns) fds.push_back(fd);
      for (const int fd : fds) closeConn(fd);
      loop.stop();
    });
  };

  closeConn = [&](int fd) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    for (const std::uint64_t index : it->second.leases) {
      const auto lit = leased.find(index);
      if (lit != leased.end() && lit->second.first == fd) releaseLeaseOf(index);
    }
    loop.removeFd(fd);
    ::close(fd);
    conns.erase(it);
    maybeFinish();
  };

  // Returns false on a send failure; the caller closes the connection.
  const auto flushOut = [&](int fd, Conn& conn) {
    while (conn.outOff < conn.out.size()) {
      const ssize_t n = ::send(fd, conn.out.data() + conn.outOff,
                               conn.out.size() - conn.outOff, MSG_NOSIGNAL);
      if (n > 0) {
        conn.outOff += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      return false;
    }
    if (conn.outOff == conn.out.size()) {
      conn.out.clear();
      conn.outOff = 0;
      loop.setInterest(fd, peer::kReadable);
    } else {
      loop.setInterest(fd, peer::kReadable | peer::kWritable);
    }
    return true;
  };

  const auto sendFrame = [&](int fd, Conn& conn, const SweepFrame& frame) {
    const auto bytes = encodeSweepFrame(frame);
    conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
    return flushOut(fd, conn);
  };

  // Returns false when the connection should close (protocol violation or
  // graceful bye). Never closes the connection itself.
  const auto handleFrame = [&](int fd, Conn& conn, const SweepFrame& frame) {
    if (const auto* hello = std::get_if<WireHello>(&frame)) {
      const bool ok = hello->sweepFp == 0 || hello->sweepFp == sweepFp;
      WireHelloAck ack;
      ack.ok = ok ? 1 : 0;
      ack.sweepFp = sweepFp;
      ack.jobsTotal = units.size();
      if (ok) ack.manifest = manifestText;
      if (!sendFrame(fd, conn, std::move(ack))) return false;
      return ok;
    }
    if (std::get_if<WireLeaseRequest>(&frame) != nullptr) {
      if (doneCount == units.size())
        return sendFrame(fd, conn, WireNoWork{1, 0});
      if (pending.empty())
        return sendFrame(fd, conn, WireNoWork{0, 200});
      const std::uint64_t index = *pending.begin();
      pending.erase(pending.begin());
      state[index] = 1;
      leased[index] = {fd, loop.now()};
      conn.leases.insert(index);
      return sendFrame(fd, conn, WireLeaseGrant{units[index]});
    }
    if (const auto* result = std::get_if<WireResult>(&frame)) {
      Fragment fragment;
      if (!decodeFragment(result->fragment.data(), result->fragment.size(),
                          &fragment) ||
          fragment.sweepFp != sweepFp || fragment.jobIndex >= units.size() ||
          fragment.configFp != units[fragment.jobIndex].configFp) {
        // TCP already guards transit; a bad fragment here means version
        // skew or a hostile client. Re-queue whatever this conn leased.
        ctr.invalid.add(1);
        return false;
      }
      const std::uint64_t index = fragment.jobIndex;
      conn.leases.erase(index);
      if (state[index] == 2) {
        ++report.duplicates;
        ctr.duplicates.add(1);
        return sendFrame(fd, conn, WireResultAck{index, 1});
      }
      store.put(fragment);
      state[index] = 2;
      pending.erase(index);
      const auto lit = leased.find(index);
      if (lit != leased.end()) {
        // The lease may have timed out and been re-granted elsewhere; the
        // current holder's record is cleared either way — the job is done.
        const auto owner = conns.find(lit->second.first);
        if (owner != conns.end()) owner->second.leases.erase(index);
        leased.erase(lit);
      }
      ++doneCount;
      ++report.completed;
      ctr.completed.add(1);
      if (!sendFrame(fd, conn, WireResultAck{index, 0})) return false;
      updateStatus(false);
      maybeFinish();
      return true;
    }
    if (std::get_if<WireBye>(&frame) != nullptr) return false;
    return false;  // a worker must never send coordinator->worker frames
  };

  std::function<void(int, std::uint32_t)> onConnEvent = [&](int fd,
                                                            std::uint32_t events) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    Conn& conn = it->second;
    if ((events & peer::kError) != 0) {
      closeConn(fd);
      return;
    }
    if ((events & peer::kWritable) != 0 && !flushOut(fd, conn)) {
      closeConn(fd);
      return;
    }
    if ((events & peer::kReadable) == 0) return;
    for (;;) {
      std::uint8_t buf[65536];
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n > 0) {
        conn.in.insert(conn.in.end(), buf, buf + n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      closeConn(fd);  // EOF or hard error
      return;
    }
    std::size_t offset = 0;
    for (;;) {
      const auto decoded =
          decodeSweepFrame(conn.in.data() + offset, conn.in.size() - offset);
      if (decoded.status == SweepDecodeStatus::kNeedMore) break;
      if (decoded.status == SweepDecodeStatus::kReject ||
          !handleFrame(fd, conn, *decoded.frame)) {
        closeConn(fd);
        return;
      }
      offset += decoded.consumed;
      if (loop.stopped()) break;
    }
    if (offset > 0) conn.in.erase(conn.in.begin(), conn.in.begin() + offset);
  };

  loop.addFd(listenFd, peer::kReadable, [&](std::uint32_t) {
    for (;;) {
      const int fd = ::accept(listenFd, nullptr, nullptr);
      if (fd < 0) break;
      setNonBlocking(fd);
      setNoDelay(fd);
      conns.emplace(fd, Conn{});
      loop.addFd(fd, peer::kReadable,
                 [&onConnEvent, fd](std::uint32_t events) { onConnEvent(fd, events); });
    }
  });

  // Lease-timeout backstop: a connection that vanishes releases its leases
  // instantly (closeConn); this sweep catches the pathological case of a
  // worker that is connected but silent.
  std::function<void()> leaseTick = [&] {
    if (loop.stopped()) return;
    const double now = loop.now();
    std::vector<std::uint64_t> expired;
    for (const auto& [index, info] : leased)
      if (now - info.second > options.leaseTimeout) expired.push_back(index);
    for (const std::uint64_t index : expired) {
      const auto lit = leased.find(index);
      if (lit == leased.end()) continue;
      const auto owner = conns.find(lit->second.first);
      if (owner != conns.end()) owner->second.leases.erase(index);
      releaseLeaseOf(index);
    }
    updateStatus(false);
    loop.runAfter(std::max(0.25, options.leaseTimeout / 4.0), leaseTick);
  };
  loop.runAfter(std::max(0.25, options.leaseTimeout / 4.0), leaseTick);

  loop.run();

  for (const auto& [fd, conn] : conns) ::close(fd);
  conns.clear();
  ::close(listenFd);
  writeStatusFile(store, sweepFp, registry);
  if (!options.quiet)
    std::fprintf(stderr,
                 "coordinator: sweep complete — %zu job(s): %zu run, %zu resumed "
                 "(%zu lease(s) re-queued, %zu duplicate result(s), %zu corrupt "
                 "fragment(s) dropped)\n",
                 units.size(), report.completed, report.resumed, report.released,
                 report.duplicates, report.invalidDropped);
  return report;
}

// ---- TCP worker -------------------------------------------------------------

namespace {

/// Blocking framed connection for the worker side: the worker's state
/// machine is strictly send-then-wait, so a reactor buys nothing.
class BlockingConn {
 public:
  ~BlockingConn() { close(); }

  bool connectTo(const std::string& host, std::uint16_t port, double timeoutSeconds) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::duration<double>(timeoutSeconds);
    for (;;) {
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd_ >= 0) {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1 &&
            ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
          setNoDelay(fd_);
          return true;
        }
        close();
      }
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }

  bool sendFrame(const SweepFrame& frame) {
    const auto bytes = encodeSweepFrame(frame);
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + done, bytes.size() - done, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      done += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Next frame, or nullopt on EOF/error/reject (connection unusable).
  std::optional<SweepFrame> recvFrame() {
    for (;;) {
      const auto decoded = decodeSweepFrame(in_.data(), in_.size());
      if (decoded.status == SweepDecodeStatus::kReject) return std::nullopt;
      if (decoded.status == SweepDecodeStatus::kFrame) {
        in_.erase(in_.begin(), in_.begin() + static_cast<long>(decoded.consumed));
        return decoded.frame;
      }
      std::uint8_t buf[65536];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;
      in_.insert(in_.end(), buf, buf + n);
    }
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> in_;
};

}  // namespace

WorkerReport runWorkerClient(const WorkerOptions& options) {
  WorkerReport report;
  BlockingConn conn;
  DTNCACHE_CHECK_MSG(conn.connectTo(options.host, options.port, options.connectTimeout),
                     "cannot connect to coordinator " << options.host << ":"
                                                      << options.port);
  if (!conn.sendFrame(WireHello{0})) return report;
  const auto ackFrame = conn.recvFrame();
  if (!ackFrame.has_value()) return report;  // coordinator already gone
  const auto* ack = std::get_if<WireHelloAck>(&*ackFrame);
  DTNCACHE_CHECK_MSG(ack != nullptr, "protocol error: expected hello-ack");
  DTNCACHE_CHECK_MSG(ack->ok != 0, "coordinator rejected hello (different sweep)");
  DTNCACHE_CHECK_MSG(sweepFingerprint(ack->manifest) == ack->sweepFp,
                     "manifest does not hash to the advertised sweep fingerprint");

  const SweepManifest manifest = decodeManifest(ack->manifest);
  const auto jobs = expandGrid(manifest.grid);
  DTNCACHE_CHECK_MSG(jobs.size() == ack->jobsTotal,
                     "grid expands to " << jobs.size() << " jobs here but "
                                        << ack->jobsTotal
                                        << " at the coordinator (version skew)");

  for (;;) {
    if (!conn.sendFrame(WireLeaseRequest{})) return report;
    const auto response = conn.recvFrame();
    if (!response.has_value()) return report;
    if (const auto* grant = std::get_if<WireLeaseGrant>(&*response)) {
      DTNCACHE_CHECK_MSG(grant->unit.index < jobs.size(),
                         "lease for job " << grant->unit.index
                                          << " outside the expanded grid");
      const SweepJob& job = jobs[grant->unit.index];
      DTNCACHE_CHECK_MSG(
          configFingerprintU64(job.config) == grant->unit.configFp,
          "job " << grant->unit.index
                 << " config fingerprint mismatch — worker and coordinator "
                    "expanded different grids (version skew)");
      const Fragment fragment =
          runWorkUnitFragment(manifest, ack->sweepFp, job);
      if (!conn.sendFrame(WireResult{encodeFragment(fragment)})) return report;
      const auto resultAck = conn.recvFrame();
      if (!resultAck.has_value()) return report;
      const auto* acked = std::get_if<WireResultAck>(&*resultAck);
      DTNCACHE_CHECK_MSG(acked != nullptr && acked->index == grant->unit.index,
                         "protocol error: expected result-ack for job "
                             << grant->unit.index);
      ++report.completed;
      if (!options.quiet)
        std::fprintf(stderr, "worker: job %llu done%s\n",
                     static_cast<unsigned long long>(grant->unit.index),
                     acked->duplicate != 0 ? " (duplicate, discarded)" : "");
    } else if (const auto* noWork = std::get_if<WireNoWork>(&*response)) {
      if (noWork->done != 0) {
        conn.sendFrame(WireBye{});
        report.sweepDone = true;
        return report;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          noWork->retryMs == 0 ? 200 : noWork->retryMs));
    } else {
      DTNCACHE_CHECK_MSG(false, "protocol error: unexpected frame from coordinator");
    }
  }
}

// ---- spool worker -----------------------------------------------------------

std::size_t spoolInit(const SweepManifest& manifest, const std::string& storeDir) {
  FragmentStore store(storeDir);
  const std::string manifestText = encodeManifest(manifest);
  if (const auto existing = store.readFile("manifest.txt")) {
    DTNCACHE_CHECK_MSG(*existing == manifestText,
                       "store " << storeDir
                                << " holds a different sweep (manifest mismatch)");
  } else {
    store.writeFile("manifest.txt", manifestText);
  }
  const auto jobs = expandGrid(manifest.grid);
  obs::Registry registry;
  SweepCounters ctr(registry);
  ctr.total.add(jobs.size());
  writeStatusFile(store, sweepFingerprint(manifestText), registry);
  return jobs.size();
}

SpoolReport runSpoolWorker(const SpoolWorkerOptions& options) {
  FragmentStore store(options.storeDir);
  const auto manifestText = store.readFile("manifest.txt");
  DTNCACHE_CHECK_MSG(manifestText.has_value(),
                     "no manifest.txt in " << options.storeDir
                                           << " — run --spool-init first");
  const std::uint64_t sweepFp = sweepFingerprint(*manifestText);
  const SweepManifest manifest = decodeManifest(*manifestText);
  const auto jobs = expandGrid(manifest.grid);
  const auto units = workUnits(jobs);

  SpoolReport report;
  for (;;) {
    // Re-scan each pass: other workers complete units concurrently, and the
    // scan also drops any torn fragment a killed worker left behind.
    const auto scanned = store.scan(sweepFp, /*dropInvalid=*/true);
    if (scanned.valid.size() >= units.size()) {
      report.allDone = true;
      return report;
    }
    bool progressed = false;
    for (const auto& unit : units) {
      if (scanned.valid.count(unit.index) != 0) continue;
      if (const auto age = store.leaseAge(unit.index)) {
        if (*age < options.leaseTimeout) continue;  // someone is (probably) on it
        store.releaseLease(unit.index);             // stale: the holder died
      }
      if (!store.tryLease(unit.index)) continue;  // lost the race
      if (store.hasFragment(unit.index)) {
        // Completed by another worker between our scan and the lease. A
        // writer releases its lease only after the fragment rename, so this
        // post-lease check makes duplicate runs impossible, not merely
        // idempotent.
        store.releaseLease(unit.index);
        continue;
      }
      if (options.crashAfter > 0 && report.completed >= options.crashAfter)
        return report;  // simulated kill -9: lease held, no fragment written
      const Fragment fragment =
          runWorkUnitFragment(manifest, sweepFp, jobs[unit.index]);
      store.put(fragment);
      store.releaseLease(unit.index);
      ++report.completed;
      progressed = true;
      if (!options.quiet)
        std::fprintf(stderr, "spool-worker: job %llu done\n",
                     static_cast<unsigned long long>(unit.index));
    }
    if (!progressed)  // every incomplete unit is leased elsewhere; wait a beat
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

}  // namespace dtncache::sweep
