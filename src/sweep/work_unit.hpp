#pragma once

/// \file work_unit.hpp
/// Self-describing work units: the serialized identity of a sweep.
///
/// A distributed sweep must guarantee that every participating process —
/// coordinator, TCP workers, spool-dir workers, the merge pass — expands
/// the *same* grid to the *same* job list, whatever host or binary invoked
/// it. The SweepManifest is that contract: a canonical text rendering of
/// the grid (base config via runner::dumpConfig, scheme/seed/axis lists)
/// plus the output-shaping switches that affect result bytes (wall-clock
/// fields, tracing, trace filter). Its FNV-1a hash — the sweep fingerprint
/// — names the sweep; every wire hello, fragment header, and resume scan
/// checks it, so a worker from a different grid (or a stale store) is
/// rejected before it can contribute a byte.
///
/// Work units themselves are (job index, config fingerprint, seed)
/// triples derived from the expanded grid. The config fingerprint pins the
/// exact experiment a lease refers to: a worker that expands to a
/// different config at the same index (version skew, axis drift) detects
/// the mismatch and aborts instead of producing a plausible-looking but
/// wrong fragment.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "sweep/sweep_engine.hpp"

namespace dtncache::sweep {

/// Everything a process needs to reproduce the sweep: the grid plus the
/// switches that shape result bytes.
struct SweepManifest {
  SweepGrid grid;
  bool wallClock = true;       ///< render wall_ms / timer.* columns
  bool traceEnabled = false;   ///< run per-job tracers, keep trace slices
  obs::KindMask traceFilter = obs::kAllKinds;
};

/// Canonical line-oriented text form. Deterministic: the same manifest
/// always encodes to the same bytes (the config is rendered through
/// dumpConfig, lists in declaration order).
std::string encodeManifest(const SweepManifest& manifest);

/// Parse encodeManifest() output. Throws sim::InvariantViolation (via
/// DTNCACHE_CHECK) on malformed text, unknown schemes, or a version this
/// binary does not speak.
SweepManifest decodeManifest(const std::string& text);

/// FNV-1a 64 over the manifest text: the identity of the whole sweep.
std::uint64_t sweepFingerprint(const std::string& manifestText);

/// One leaseable unit of work, as referenced on the wire and in fragment
/// headers.
struct WorkUnit {
  std::uint64_t index = 0;     ///< position in the expanded grid
  std::uint64_t configFp = 0;  ///< configFingerprintU64 of the job's config
  std::uint64_t seed = 0;
};

/// The expanded grid's units, in job-index order.
std::vector<WorkUnit> workUnits(const std::vector<SweepJob>& jobs);

}  // namespace dtncache::sweep
