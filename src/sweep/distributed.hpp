#pragma once

/// \file distributed.hpp
/// The distributed sweep: coordinator/worker fan-out over TCP, plus a
/// connectionless shared-directory spool mode. Both feed the same
/// FragmentStore, so however the jobs ran — one process, many processes,
/// many hosts, crashed and resumed — the merge pass produces bytes
/// identical to a single-process `--jobs N` sweep.
///
/// Wire protocol (little-endian, peer::wire-style framing with its own
/// magic so a misdirected peerd stream is rejected at the first header):
///
///     magic   u32  0x574E5444 ("DTNW")
///     version u8   kSweepWireVersion
///     type    u8   SweepFrameType
///     reserved u16 must be zero
///     length  u32  payload bytes (<= kSweepMaxPayloadBytes)
///
/// Conversation (strict request/response, worker drives):
///
///     worker                      coordinator
///     Hello{sweepFp?}         ->
///                             <-  HelloAck{ok, sweepFp, jobsTotal, manifest}
///     LeaseRequest            ->
///                             <-  LeaseGrant{unit} | NoWork{done, retryMs}
///     Result{fragment bytes}  ->
///                             <-  ResultAck{index, duplicate}
///     Bye                     ->   (worker closes)
///
/// The manifest travels in the HelloAck, so a worker needs nothing but the
/// coordinator address: it re-expands the grid locally and cross-checks
/// every leased unit's config fingerprint before running it. Leases return
/// to the pending queue the moment a connection drops (and, as a backstop,
/// after `leaseTimeout` without a result), so `kill -9` on a worker loses
/// at most its in-flight job. Results are idempotent: a duplicate (from a
/// timed-out-but-alive worker) is acked and discarded — deterministic
/// output means the bytes match what the store already holds.
///
/// decodeSweepFrame is fuzz-friendly by the same contract as
/// peer::decodeFrame: any byte sequence yields kNeedMore, a frame, or
/// kReject — never a throw or an out-of-bounds read.

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "sweep/fragment_store.hpp"
#include "sweep/work_unit.hpp"

namespace dtncache::sweep {

inline constexpr std::uint32_t kSweepWireMagic = 0x574E5444u;  // "DTNW"
inline constexpr std::uint8_t kSweepWireVersion = 1;
inline constexpr std::size_t kSweepFrameHeaderBytes = 12;
/// Fragments carry rendered rows plus an optional trace slice; cap frames
/// well above any real slice but low enough that a corrupt length prefix
/// cannot drive allocation.
inline constexpr std::uint32_t kSweepMaxPayloadBytes = 256u * 1024 * 1024;

enum class SweepFrameType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kLeaseRequest = 3,
  kLeaseGrant = 4,
  kNoWork = 5,
  kResult = 6,
  kResultAck = 7,
  kBye = 8,
};

/// Worker -> coordinator greeting. `sweepFp` 0 = unknown (manifest comes
/// back in the ack); nonzero = must match or the ack carries ok = 0.
struct WireHello {
  std::uint64_t sweepFp = 0;
};

struct WireHelloAck {
  std::uint8_t ok = 0;  ///< 0 = fingerprint mismatch, close the session
  std::uint64_t sweepFp = 0;
  std::uint64_t jobsTotal = 0;
  std::string manifest;  ///< canonical manifest text (empty when !ok)
};

struct WireLeaseRequest {};

struct WireLeaseGrant {
  WorkUnit unit;
};

struct WireNoWork {
  std::uint8_t done = 0;      ///< 1 = sweep complete, send Bye and exit
  std::uint32_t retryMs = 0;  ///< done == 0: everything leased, ask again
};

struct WireResult {
  std::vector<std::uint8_t> fragment;  ///< encodeFragment bytes
};

struct WireResultAck {
  std::uint64_t index = 0;
  std::uint8_t duplicate = 0;  ///< job was already complete; bytes discarded
};

struct WireBye {};

using SweepFrame = std::variant<WireHello, WireHelloAck, WireLeaseRequest,
                                WireLeaseGrant, WireNoWork, WireResult,
                                WireResultAck, WireBye>;

SweepFrameType sweepFrameTypeOf(const SweepFrame& frame);

std::vector<std::uint8_t> encodeSweepFrame(const SweepFrame& frame);

enum class SweepDecodeStatus : std::uint8_t { kNeedMore, kFrame, kReject };

struct SweepDecodeResult {
  SweepDecodeStatus status = SweepDecodeStatus::kNeedMore;
  std::size_t consumed = 0;
  std::optional<SweepFrame> frame;
  const char* error = nullptr;  ///< kReject only (static string)
};

SweepDecodeResult decodeSweepFrame(const std::uint8_t* data, std::size_t size);

/// Run one work unit exactly as SweepEngine would — same tracer labeling,
/// same job start/done events, same field rendering — and package the
/// result as a fragment. The cornerstone of the byte-identity guarantee:
/// a fragment's sections are the very strings the single-process sinks
/// would have streamed for this job.
Fragment runWorkUnitFragment(const SweepManifest& manifest, std::uint64_t sweepFp,
                             const SweepJob& job);

// ---- coordinator ------------------------------------------------------------

struct CoordinatorOptions {
  std::uint16_t port = 0;  ///< 0 = kernel-assigned; see coordinator.port file
  std::string storeDir;
  bool resume = false;       ///< accept pre-existing fragments as completed
  double leaseTimeout = 600.0;  ///< seconds before a silent lease re-queues
  bool quiet = false;
};

struct CoordinatorReport {
  std::uint16_t port = 0;
  std::size_t jobsTotal = 0;
  std::size_t completed = 0;  ///< fragments written this run
  std::size_t resumed = 0;    ///< valid fragments found by the resume scan
  std::size_t released = 0;   ///< leases re-queued (disconnect or timeout)
  std::size_t duplicates = 0;
  std::size_t invalidDropped = 0;  ///< corrupt fragments deleted on scan
};

/// Serve the sweep until every work unit has a fragment. Writes
/// `manifest.txt`, `coordinator.port`, and periodic `status.jsonl` into the
/// store; returns once the store is complete. Does not merge — call
/// mergeFragments (the CLI does both).
CoordinatorReport runCoordinator(const SweepManifest& manifest,
                                 const CoordinatorOptions& options);

// ---- TCP worker -------------------------------------------------------------

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double connectTimeout = 20.0;  ///< seconds of connect retries before giving up
  bool quiet = false;
};

struct WorkerReport {
  std::size_t completed = 0;
  /// True when the coordinator said the sweep is complete. False means the
  /// connection was lost — normally the coordinator finishing while this
  /// worker idled, but the caller cannot distinguish a crash, so scripts
  /// should trust the coordinator's exit status, not the workers'.
  bool sweepDone = false;
};

WorkerReport runWorkerClient(const WorkerOptions& options);

// ---- spool worker (shared directory, no connectivity) -----------------------

struct SpoolWorkerOptions {
  std::string storeDir;
  double leaseTimeout = 600.0;  ///< age at which a lease file is broken
  bool quiet = false;
  /// Test hook simulating `kill -9`: after this many completions the worker
  /// acquires one more lease and returns without running or releasing it
  /// (0 = run to completion).
  std::size_t crashAfter = 0;
};

struct SpoolReport {
  std::size_t completed = 0;
  bool allDone = false;  ///< every unit had a fragment when we left
};

/// Lease-loop over `<store>/lease-*` files: pick an unleased incomplete
/// unit, run it, write the fragment, release. Stale leases (older than
/// leaseTimeout) are broken. Returns when the store is complete (or the
/// crash hook fired).
SpoolReport runSpoolWorker(const SpoolWorkerOptions& options);

/// Initialize a spool store: write the manifest + an initial status line so
/// workers and the progress tooling can start. Returns the job count.
std::size_t spoolInit(const SweepManifest& manifest, const std::string& storeDir);

}  // namespace dtncache::sweep
