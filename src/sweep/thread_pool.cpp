#include "sweep/thread_pool.hpp"

#include <algorithm>

namespace dtncache::sweep {

ThreadPool::ThreadPool(std::size_t workers) {
  DTNCACHE_CHECK_MSG(workers >= 1, "ThreadPool needs at least one worker");
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;  // second call: already joined
    stopping_ = true;
  }
  available_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's promise, never here
  }
}

std::size_t ThreadPool::defaultWorkers() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace dtncache::sweep
