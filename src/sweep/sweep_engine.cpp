#include "sweep/sweep_engine.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <iostream>
#include <memory>
#include <utility>

#include "obs/tracer.hpp"
#include "runner/config_io.hpp"
#include "sim/assert.hpp"
#include "sweep/thread_pool.hpp"

namespace dtncache::sweep {
namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void printProgress(std::size_t emitted, std::size_t completed, std::size_t total,
                   double elapsed) {
  const double eta =
      completed == 0 ? 0.0
                     : elapsed / static_cast<double>(completed) *
                           static_cast<double>(total - completed);
  std::fprintf(stderr, "sweep: %zu/%zu done, %zu emitted, elapsed %.1fs, eta %.1fs\n",
               completed, total, emitted, elapsed, eta);
}

}  // namespace

std::string jsonScalar(const std::string& raw) {
  if (raw == "true" || raw == "false") return raw;
  if (!raw.empty()) {
    char* end = nullptr;
    std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() + raw.size()) return raw;  // whole string is a number
  }
  std::string quoted = "\"";
  for (const char c : raw) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t configFingerprintU64(const runner::ExperimentConfig& config) {
  return fnv1a64(runner::dumpConfig(config));
}

std::string configFingerprint(const runner::ExperimentConfig& config) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(configFingerprintU64(config)));
  return buf;
}

std::vector<SweepJob> expandGrid(const SweepGrid& grid) {
  const std::vector<runner::SchemeKind> schemes =
      grid.schemes.empty() ? std::vector<runner::SchemeKind>{grid.base.scheme}
                           : grid.schemes;
  const std::vector<std::uint64_t> seeds =
      grid.seeds.empty() ? std::vector<std::uint64_t>{grid.base.seed} : grid.seeds;
  for (const auto& axis : grid.axes)
    DTNCACHE_CHECK_MSG(!axis.values.empty(),
                       "sweep axis '" << axis.key << "' has no values");

  std::vector<SweepJob> jobs;
  std::vector<std::size_t> odometer(grid.axes.size(), 0);
  for (;;) {
    runner::ExperimentConfig cell = grid.base;
    std::vector<std::pair<std::string, std::string>> overrides;
    overrides.reserve(grid.axes.size());
    for (std::size_t a = 0; a < grid.axes.size(); ++a) {
      const std::string& raw = grid.axes[a].values[odometer[a]];
      // Unknown keys and type mismatches fail here, before anything runs.
      runner::applyConfigJson(
          cell, "{\"" + grid.axes[a].key + "\": " + jsonScalar(raw) + "}");
      overrides.emplace_back(grid.axes[a].key, raw);
    }
    for (const auto scheme : schemes) {
      for (const auto seed : seeds) {
        SweepJob job;
        job.index = jobs.size();
        job.config = cell;
        job.config.scheme = scheme;
        job.config.seed = seed;
        job.overrides = overrides;
        jobs.push_back(std::move(job));
      }
    }
    // Odometer over the axes, last axis fastest.
    std::size_t a = grid.axes.size();
    while (a > 0) {
      --a;
      if (++odometer[a] < grid.axes[a].values.size()) break;
      odometer[a] = 0;
      if (a == 0) return jobs;
    }
    if (grid.axes.empty()) return jobs;
  }
}

std::vector<JobResult> SweepEngine::run(const SweepGrid& grid,
                                        const std::vector<ResultSink*>& sinks) {
  return runJobs(expandGrid(grid), sinks);
}

std::vector<JobResult> SweepEngine::runJobs(std::vector<SweepJob> jobs,
                                            const std::vector<ResultSink*>& sinks) {
  for (ResultSink* sink : sinks) sink->begin(jobs);

  // Tracing: one thread-confined tracer per job, labeled with the job's
  // config fingerprint. Buffers are flushed in job-index order below, which
  // extends the jobs-count-independence contract to the merged trace.
  std::vector<std::unique_ptr<obs::Tracer>> tracers;
  if (options_.traceOut != nullptr) {
    tracers.reserve(jobs.size());
    for (SweepJob& job : jobs) {
      tracers.push_back(
          std::make_unique<obs::Tracer>(configFingerprint(job.config), options_.traceFilter));
      job.config.tracer = tracers.back().get();
    }
  }

  std::vector<JobResult> results;
  results.reserve(jobs.size());
  if (!jobs.empty()) {
    std::size_t workers = options_.jobs != 0 ? options_.jobs : ThreadPool::defaultWorkers();
    workers = std::min(workers, jobs.size());

    std::atomic<std::size_t> completed{0};
    const auto start = Clock::now();
    ThreadPool pool(workers);
    std::vector<std::future<std::pair<runner::ExperimentOutput, double>>> futures;
    futures.reserve(jobs.size());
    for (const SweepJob& job : jobs) {  // stable storage: jobs is not resized below
      futures.push_back(pool.submit([&job, &completed] {
        DTNCACHE_EVENT(job.config.tracer, obs::EventKind::kJobStart, 0.0,
                       {"job", job.index},
                       {"scheme", runner::schemeName(job.config.scheme)},
                       {"seed", job.config.seed});
        const auto jobStart = Clock::now();
        auto output = runner::runExperiment(job.config);
        const double wall = secondsSince(jobStart);
        DTNCACHE_EVENT(job.config.tracer, obs::EventKind::kJobDone,
                       output.traceStats.duration, {"job", job.index});
        completed.fetch_add(1, std::memory_order_relaxed);
        return std::pair{std::move(output), wall};
      }));
    }

    // Aggregation: strictly job-index order, whatever order workers finish
    // in — this is what makes the output independent of the jobs count.
    for (std::size_t i = 0; i < futures.size(); ++i) {
      auto [output, wall] = futures[i].get();
      if (options_.traceOut != nullptr) tracers[i]->flushTo(*options_.traceOut);
      JobResult result{std::move(jobs[i]), std::move(output), wall};
      for (ResultSink* sink : sinks) sink->write(result);
      results.push_back(std::move(result));
      if (options_.progress)
        printProgress(i + 1, completed.load(std::memory_order_relaxed),
                      futures.size(), secondsSince(start));
    }
  }
  if (options_.traceOut != nullptr) options_.traceOut->flush();
  for (ResultSink* sink : sinks) sink->finish();
  return results;
}

std::vector<runner::ExperimentOutput> runParallel(
    const std::vector<runner::ExperimentConfig>& configs, std::size_t jobs) {
  std::vector<SweepJob> list;
  list.reserve(configs.size());
  for (const auto& config : configs) {
    SweepJob job;
    job.index = list.size();
    job.config = config;
    list.push_back(std::move(job));
  }
  SweepEngine engine(SweepOptions{jobs, /*progress=*/false});
  auto results = engine.runJobs(std::move(list));
  std::vector<runner::ExperimentOutput> outputs;
  outputs.reserve(results.size());
  for (auto& r : results) outputs.push_back(std::move(r.output));
  return outputs;
}

}  // namespace dtncache::sweep
