#include "sweep/work_unit.hpp"

#include <iterator>
#include <sstream>

#include "runner/config_io.hpp"
#include "sim/assert.hpp"

namespace dtncache::sweep {
namespace {

constexpr const char* kMagicLine = "dtncache-sweep-manifest 1";

runner::SchemeKind schemeByName(const std::string& name) {
  for (const auto kind : runner::allSchemes())
    if (name == runner::schemeName(kind)) return kind;
  DTNCACHE_CHECK_MSG(false, "manifest names unknown scheme '" << name << "'");
  return runner::SchemeKind::kHierarchical;  // unreachable
}

std::vector<std::string> splitList(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream in(text);
  std::string part;
  while (std::getline(in, part, sep))
    if (!part.empty()) parts.push_back(part);
  return parts;
}

std::uint64_t parseU64(const std::string& text, const char* what) {
  DTNCACHE_CHECK_MSG(!text.empty(), "manifest " << what << " is empty");
  std::uint64_t v = 0;
  for (const char c : text) {
    DTNCACHE_CHECK_MSG(c >= '0' && c <= '9',
                       "manifest " << what << " '" << text << "' is not a number");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

std::string encodeManifest(const SweepManifest& manifest) {
  std::ostringstream out;
  out << kMagicLine << '\n';
  out << "wall " << (manifest.wallClock ? 1 : 0) << '\n';
  out << "trace " << (manifest.traceEnabled ? 1 : 0) << '\n';
  out << "trace-filter " << manifest.traceFilter << '\n';
  if (!manifest.grid.schemes.empty()) {
    out << "schemes ";
    for (std::size_t i = 0; i < manifest.grid.schemes.size(); ++i)
      out << (i == 0 ? "" : ",") << runner::schemeName(manifest.grid.schemes[i]);
    out << '\n';
  }
  if (!manifest.grid.seeds.empty()) {
    out << "seeds ";
    for (std::size_t i = 0; i < manifest.grid.seeds.size(); ++i)
      out << (i == 0 ? "" : ",") << manifest.grid.seeds[i];
    out << '\n';
  }
  for (const auto& axis : manifest.grid.axes) {
    DTNCACHE_CHECK_MSG(axis.key.find('=') == std::string::npos &&
                           axis.key.find('\n') == std::string::npos,
                       "axis key '" << axis.key << "' cannot be serialized");
    out << "axis " << axis.key << '=';
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      DTNCACHE_CHECK_MSG(axis.values[i].find(',') == std::string::npos &&
                             axis.values[i].find('\n') == std::string::npos,
                         "axis value '" << axis.values[i] << "' cannot be serialized");
      out << (i == 0 ? "" : ",") << axis.values[i];
    }
    out << '\n';
  }
  // The base config closes the manifest: everything from here to EOF is the
  // dumpConfig JSON (multi-line), so no escaping is needed.
  out << "config\n" << runner::dumpConfig(manifest.grid.base);
  return out.str();
}

SweepManifest decodeManifest(const std::string& text) {
  SweepManifest manifest;
  std::istringstream in(text);
  std::string line;
  DTNCACHE_CHECK_MSG(std::getline(in, line) && line == kMagicLine,
                     "not a dtncache sweep manifest (or unsupported version)");
  bool sawConfig = false;
  while (std::getline(in, line)) {
    if (line == "config") {
      sawConfig = true;
      break;
    }
    const auto space = line.find(' ');
    DTNCACHE_CHECK_MSG(space != std::string::npos && space > 0,
                       "malformed manifest line '" << line << "'");
    const std::string key = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    if (key == "wall") {
      manifest.wallClock = parseU64(value, "wall flag") != 0;
    } else if (key == "trace") {
      manifest.traceEnabled = parseU64(value, "trace flag") != 0;
    } else if (key == "trace-filter") {
      manifest.traceFilter = parseU64(value, "trace filter");
    } else if (key == "schemes") {
      for (const auto& name : splitList(value, ','))
        manifest.grid.schemes.push_back(schemeByName(name));
    } else if (key == "seeds") {
      for (const auto& seed : splitList(value, ','))
        manifest.grid.seeds.push_back(parseU64(seed, "seed"));
    } else if (key == "axis") {
      const auto eq = value.find('=');
      DTNCACHE_CHECK_MSG(eq != std::string::npos && eq > 0,
                         "malformed manifest axis '" << value << "'");
      SweepAxis axis;
      axis.key = value.substr(0, eq);
      axis.values = splitList(value.substr(eq + 1), ',');
      DTNCACHE_CHECK_MSG(!axis.values.empty(),
                         "manifest axis '" << axis.key << "' has no values");
      manifest.grid.axes.push_back(std::move(axis));
    } else {
      DTNCACHE_CHECK_MSG(false, "unknown manifest key '" << key << "'");
    }
  }
  DTNCACHE_CHECK_MSG(sawConfig, "manifest has no config section");
  std::string configJson((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  manifest.grid.base = runner::loadConfig(configJson);
  return manifest;
}

std::uint64_t sweepFingerprint(const std::string& manifestText) {
  return fnv1a64(manifestText);
}

std::vector<WorkUnit> workUnits(const std::vector<SweepJob>& jobs) {
  std::vector<WorkUnit> units;
  units.reserve(jobs.size());
  for (const auto& job : jobs)
    units.push_back(WorkUnit{static_cast<std::uint64_t>(job.index),
                             configFingerprintU64(job.config),
                             static_cast<std::uint64_t>(job.config.seed)});
  return units;
}

}  // namespace dtncache::sweep
