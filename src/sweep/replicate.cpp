/// \file replicate.cpp
/// runner::runReplicated on the sweep engine: the seed axis fans out over
/// the thread pool; accumulation stays in seed order, so mean±sd (and the
/// `last` output, from the highest seed) match the old serial loop exactly.

#include "runner/replicate.hpp"

#include "metrics/report.hpp"
#include "sim/assert.hpp"
#include "sweep/sweep_engine.hpp"

namespace dtncache::runner {

ReplicatedResults runReplicated(ExperimentConfig config, std::size_t runs,
                                std::size_t jobs) {
  DTNCACHE_CHECK(runs >= 1);
  const std::uint64_t baseSeed = config.seed;
  std::vector<ExperimentConfig> configs(runs, config);
  for (std::size_t i = 0; i < runs; ++i) configs[i].seed = baseSeed + i;
  auto outputs = sweep::runParallel(configs, jobs);

  ReplicatedResults agg;
  agg.runs = runs;
  for (auto& out : outputs) {
    const auto& r = out.results;
    agg.meanFresh.add(r.meanFreshFraction);
    agg.meanValid.add(r.meanValidFraction);
    agg.refreshWithinTau.add(r.refreshWithinPeriodRatio);
    agg.validAnswerRatio.add(r.queries.successRatio());
    agg.answeredRatio.add(r.queries.answeredRatio());
    agg.meanDelaySeconds.add(r.queries.delay.mean());
    agg.refreshMegabytes.add(
        static_cast<double>(r.transfers.of(net::Traffic::kRefresh).bytes) / (1024.0 * 1024.0));
    agg.predictedProbability.add(out.meanPredictedProbability);
  }
  agg.last = std::move(outputs.back());
  return agg;
}

std::string formatMeanSd(const sim::Accumulator& a, int precision) {
  if (a.count() <= 1) return metrics::fmt(a.mean(), precision);
  return metrics::fmt(a.mean(), precision) + "±" + metrics::fmt(a.stddev(), precision);
}

}  // namespace dtncache::runner
