#pragma once

/// \file result_sink.hpp
/// Structured sweep output: one JSONL record per run plus a CSV summary.
///
/// Both sinks render the same flat field list (see recordFields): job
/// identity (index, config fingerprint, scheme, seed, axis overrides),
/// trace shape, every scalar of RunResults/ExperimentOutput, per-category
/// transfer bytes, the observability-counter snapshot (`ctr.*` columns,
/// identical set on every row), and the job's wall-clock (`wall_ms` plus
/// the registry's `timer.*_ms` columns). Numbers are printed with a fixed
/// 17-significant-digit formatter, so records are byte-stable across
/// worker counts; wall-clock fields are the only nondeterministic content
/// and can be suppressed (the determinism test runs with them off).
///
/// Ratio cells all go through sim::ratio — a sweep with zero queries
/// yields 0-valued ratio columns, never `nan`. The one non-finite metric
/// (firstDepletionTime, +inf while every node lives) maps to JSON null and
/// an empty CSV cell.

#include <ostream>
#include <string>
#include <vector>

#include "sweep/sweep_engine.hpp"

namespace dtncache::sweep {

/// One rendered cell of a result record. `json` is a valid JSON scalar
/// ("0.5", "\"epidemic\"", "null"); `csv` is the bare cell text.
struct RecordField {
  std::string key;
  std::string json;
  std::string csv;
};

/// Flatten a result into the shared field list (fixed key order; axis
/// override columns appear in grid declaration order).
std::vector<RecordField> recordFields(const JobResult& result, bool wallClock);

/// Shared text renderers — the sinks below and the distributed fragment
/// writer both go through these, so a merged fragment store is byte-equal
/// to a single-process sink stream by construction. Each returned string
/// includes its trailing newline.
std::string renderJsonlLine(const std::vector<RecordField>& fields);
std::string renderCsvHeader(const std::vector<RecordField>& fields);
std::string renderCsvRow(const std::vector<RecordField>& fields);

/// One JSON object per line, keys in recordFields order.
class JsonlSink : public ResultSink {
 public:
  explicit JsonlSink(std::ostream& out, bool wallClock = true)
      : out_(out), wallClock_(wallClock) {}

  void write(const JobResult& result) override;

 private:
  std::ostream& out_;
  bool wallClock_;
};

/// Header + one row per run, same fields as the JSONL records.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::ostream& out, bool wallClock = true)
      : out_(out), wallClock_(wallClock) {}

  void write(const JobResult& result) override;

 private:
  std::ostream& out_;
  bool wallClock_;
  bool headerWritten_ = false;
};

}  // namespace dtncache::sweep
