#include "sweep/result_sink.hpp"

#include <cmath>
#include <sstream>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace dtncache::sweep {
namespace {

/// Deterministic double rendering: 17 significant digits round-trips any
/// double, and one fixed formatter keeps --jobs 1 and --jobs N byte-equal.
std::string num(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

std::string num(std::uint64_t v) { return std::to_string(v); }

struct FieldList {
  std::vector<RecordField> fields;

  void number(const std::string& key, const std::string& rendered) {
    fields.push_back({key, rendered, rendered});
  }
  void text(const std::string& key, const std::string& value) {
    fields.push_back({key, '"' + value + '"', value});
  }
  /// Non-finite doubles are not JSON; render as null / empty cell.
  void maybe(const std::string& key, double v) {
    if (std::isfinite(v)) {
      number(key, num(v));
    } else {
      fields.push_back({key, "null", ""});
    }
  }
};

}  // namespace

std::vector<RecordField> recordFields(const JobResult& result, bool wallClock) {
  const auto& out = result.output;
  const auto& r = out.results;
  FieldList f;

  // -- identity ---------------------------------------------------------------
  f.number("job", num(result.job.index));
  f.text("fingerprint", configFingerprint(result.job.config));
  f.text("scheme", out.scheme);
  f.number("seed", num(static_cast<std::uint64_t>(result.job.config.seed)));
  for (const auto& [key, raw] : result.job.overrides) {
    if (jsonScalar(raw) == raw)
      f.number(key, raw);  // numeric / boolean axis value
    else
      f.text(key, raw);
  }

  // -- trace shape ------------------------------------------------------------
  f.number("trace.nodes", num(out.traceStats.nodeCount));
  f.number("trace.contacts", num(out.traceStats.contactCount));
  f.number("trace.duration_days", num(sim::toDays(out.traceStats.duration)));

  // -- headline freshness metrics --------------------------------------------
  f.number("mean_fresh", num(r.meanFreshFraction));
  f.number("final_fresh", num(r.finalFreshFraction));
  f.number("mean_valid", num(r.meanValidFraction));
  f.number("within_tau", num(r.refreshWithinPeriodRatio));
  f.number("copies_tracked", num(r.copiesTracked));
  f.number("refresh_pushes", num(r.refreshPushes));
  f.number("sim_days", num(sim::toDays(r.simulatedTime)));

  // -- queries ----------------------------------------------------------------
  f.number("queries_issued", num(r.queries.issued));
  f.number("queries_answered", num(r.queries.answered));
  f.number("queries_answered_valid", num(r.queries.answeredValid));
  f.number("queries_answered_fresh", num(r.queries.answeredFresh));
  f.number("queries_local_hits", num(r.queries.localHits));
  f.number("answered_ratio", num(r.queries.answeredRatio()));
  f.number("valid_ratio", num(r.queries.successRatio()));
  f.number("fresh_answer_ratio", num(r.queries.freshAnswerRatio()));
  f.number("mean_delay_s", num(r.queries.delay.mean()));

  // -- traffic, per category --------------------------------------------------
  for (std::size_t c = 0; c < static_cast<std::size_t>(net::Traffic::kCategoryCount); ++c) {
    const auto category = static_cast<net::Traffic>(c);
    f.number(std::string("bytes_") + net::trafficName(category),
             num(r.transfers.of(category).bytes));
  }
  f.number("bytes_total", num(r.transfers.total().bytes));
  f.number("messages_total", num(r.transfers.total().messages));
  f.number("refresh_load_per_node",
           num(sim::ratio(static_cast<double>(r.transfers.of(net::Traffic::kRefresh).bytes),
                          static_cast<double>(out.traceStats.nodeCount))));

  // -- scheme internals -------------------------------------------------------
  f.number("helpers", num(out.replicationAssignments));
  f.number("predicted_p_mean", num(out.meanPredictedProbability));
  f.number("predicted_p_min", num(out.minPredictedProbability));
  f.number("unmet_nodes", num(out.unmetNodes));
  f.number("max_depth", num(out.maxHierarchyDepth));
  f.number("reparents", num(out.reparentCount));
  f.number("pulls_issued", num(out.pullsIssued));
  f.number("churn_transitions", num(out.churnTransitions));
  f.number("churn_repairs", num(out.churnRepairs));
  f.number("contacts_suppressed", num(out.contactsSuppressed));

  // -- energy -----------------------------------------------------------------
  f.number("depleted_nodes", num(out.depletedNodes));
  f.maybe("first_depletion_days", sim::toDays(out.firstDepletionTime));
  f.number("battery_mean", num(out.meanRemainingBattery));
  f.number("battery_min", num(out.minRemainingBattery));

  // -- observability counters -------------------------------------------------
  // The runner pre-registers the full standard set, so every row carries the
  // same `ctr.*` columns in the same (name-sorted) order.
  for (const auto& [name, value] : out.counters)
    f.number("ctr." + name, num(value));

  if (wallClock) {
    f.number("wall_ms", num(result.wallSeconds * 1000.0));
    // Registry timers are wall-clock too — deterministic runs omit them.
    for (const auto& timer : out.timers)
      f.number("timer." + timer.name + "_ms", num(timer.seconds * 1000.0));
  }
  return f.fields;
}

std::string renderJsonlLine(const std::vector<RecordField>& fields) {
  std::string line = "{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) line += ", ";
    line += '"';
    line += fields[i].key;
    line += "\": ";
    line += fields[i].json;
  }
  line += "}\n";
  return line;
}

std::string renderCsvHeader(const std::vector<RecordField>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) line += ',';
    line += fields[i].key;
  }
  line += '\n';
  return line;
}

std::string renderCsvRow(const std::vector<RecordField>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) line += ',';
    line += fields[i].csv;
  }
  line += '\n';
  return line;
}

void JsonlSink::write(const JobResult& result) {
  out_ << renderJsonlLine(recordFields(result, wallClock_));
}

void CsvSink::write(const JobResult& result) {
  const auto fields = recordFields(result, wallClock_);
  if (!headerWritten_) {
    out_ << renderCsvHeader(fields);
    headerWritten_ = true;
  }
  out_ << renderCsvRow(fields);
}

}  // namespace dtncache::sweep
