#include "sweep/fragment_store.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <ostream>
#include <sstream>

#include "core/crc32.hpp"
#include "sim/assert.hpp"
#include "sweep/work_unit.hpp"

namespace dtncache::sweep {
namespace {

using core::crc32;
using core::putU32;
using core::putU64;
using core::readU32;
using core::readU64;

// 'DTNG' little-endian: fraGment. Distinct from the peer wire magic so a
// misdirected file is rejected at the first header check.
constexpr std::uint32_t kFragmentMagic = 0x474E5444u;
constexpr std::uint8_t kFragmentVersion = 1;
// magic u32 | version u8 | pad u8 u16 | jobIndex u64 | sweepFp u64 |
// configFp u64 | bodyLen u32 | bodyCrc u32
constexpr std::size_t kHeaderBytes = 4 + 1 + 1 + 2 + 8 + 8 + 8 + 4 + 4;
// Fragments hold a few rendered text lines plus an optional trace slice;
// anything bigger than this is corruption, not data.
constexpr std::size_t kMaxBodyBytes = 256u << 20;

void putSection(std::vector<std::uint8_t>& out, const std::string& text) {
  putU32(out, static_cast<std::uint32_t>(text.size()));
  out.insert(out.end(), text.begin(), text.end());
}

bool readSection(const std::uint8_t* body, std::size_t size, std::size_t& offset,
                 std::string* out) {
  if (size - offset < 4) return false;
  const std::uint32_t len = readU32(body + offset);
  offset += 4;
  if (size - offset < len) return false;
  out->assign(reinterpret_cast<const char*>(body + offset), len);
  offset += len;
  return true;
}

bool writeAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Write bytes to `path` atomically: a same-directory temp file (unique per
/// pid) fsync'd and renamed into place. rename(2) makes racing writers of
/// identical content idempotent — last rename wins, same bytes either way.
void atomicWrite(const std::string& path, const std::uint8_t* data, std::size_t size) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  DTNCACHE_CHECK_MSG(fd >= 0, "cannot create " << tmp << ": " << std::strerror(errno));
  const bool ok = writeAll(fd, data, size) && ::fsync(fd) == 0;
  ::close(fd);
  if (!ok || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    DTNCACHE_CHECK_MSG(false, "cannot write " << path << ": " << std::strerror(errno));
  }
}

void ensureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
  DTNCACHE_CHECK_MSG(false, "cannot create directory " << path << ": "
                                                       << std::strerror(errno));
}

}  // namespace

std::vector<std::uint8_t> encodeFragment(const Fragment& fragment) {
  std::vector<std::uint8_t> body;
  body.reserve(16 + fragment.jsonl.size() + fragment.csvHeader.size() +
               fragment.csvRow.size() + fragment.trace.size());
  putSection(body, fragment.jsonl);
  putSection(body, fragment.csvHeader);
  putSection(body, fragment.csvRow);
  putSection(body, fragment.trace);

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + body.size());
  putU32(out, kFragmentMagic);
  out.push_back(kFragmentVersion);
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  putU64(out, fragment.jobIndex);
  putU64(out, fragment.sweepFp);
  putU64(out, fragment.configFp);
  putU32(out, static_cast<std::uint32_t>(body.size()));
  putU32(out, crc32(body.data(), body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

bool decodeFragment(const std::uint8_t* data, std::size_t size, Fragment* out) {
  if (size < kHeaderBytes) return false;
  if (readU32(data) != kFragmentMagic) return false;
  if (data[4] != kFragmentVersion) return false;
  const std::uint64_t jobIndex = readU64(data + 8);
  const std::uint64_t sweepFp = readU64(data + 16);
  const std::uint64_t configFp = readU64(data + 24);
  const std::uint32_t bodyLen = readU32(data + 32);
  const std::uint32_t bodyCrc = readU32(data + 36);
  if (bodyLen > kMaxBodyBytes) return false;
  if (size != kHeaderBytes + bodyLen) return false;  // torn or padded
  const std::uint8_t* body = data + kHeaderBytes;
  if (crc32(body, bodyLen) != bodyCrc) return false;  // bit flip / torn tail

  Fragment decoded;
  decoded.jobIndex = jobIndex;
  decoded.sweepFp = sweepFp;
  decoded.configFp = configFp;
  std::size_t offset = 0;
  if (!readSection(body, bodyLen, offset, &decoded.jsonl)) return false;
  if (!readSection(body, bodyLen, offset, &decoded.csvHeader)) return false;
  if (!readSection(body, bodyLen, offset, &decoded.csvRow)) return false;
  if (!readSection(body, bodyLen, offset, &decoded.trace)) return false;
  if (offset != bodyLen) return false;  // trailing junk
  *out = std::move(decoded);
  return true;
}

FragmentStore::FragmentStore(std::string dir) : dir_(std::move(dir)) {
  DTNCACHE_CHECK_MSG(!dir_.empty(), "fragment store needs a directory");
  ensureDir(dir_);
  ensureDir(fragDir());
}

void FragmentStore::writeFile(const std::string& name, const std::string& text) const {
  atomicWrite(dir_ + "/" + name, reinterpret_cast<const std::uint8_t*>(text.data()),
              text.size());
}

std::optional<std::string> FragmentStore::readFile(const std::string& name) const {
  std::ifstream in(dir_ + "/" + name, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string FragmentStore::put(const Fragment& fragment) const {
  const auto bytes = encodeFragment(fragment);
  // Content-addressed name: index for ordering + the body CRC already in
  // the header, so identical results collide onto one file name.
  const std::uint32_t bodyCrc = readU32(bytes.data() + 36);
  char name[64];
  std::snprintf(name, sizeof name, "job-%010llu-%08x.frag",
                static_cast<unsigned long long>(fragment.jobIndex), bodyCrc);
  const std::string path = fragDir() + "/" + name;
  atomicWrite(path, bytes.data(), bytes.size());
  return path;
}

bool FragmentStore::putBytes(const std::vector<std::uint8_t>& bytes,
                             std::uint64_t sweepFp, Fragment* decoded) const {
  Fragment fragment;
  if (!decodeFragment(bytes.data(), bytes.size(), &fragment)) return false;
  if (fragment.sweepFp != sweepFp) return false;
  put(fragment);
  if (decoded != nullptr) *decoded = std::move(fragment);
  return true;
}

FragmentStore::ScanResult FragmentStore::scan(std::uint64_t sweepFp,
                                              bool dropInvalid) const {
  ScanResult result;
  DIR* d = ::opendir(fragDir().c_str());
  if (d == nullptr) return result;
  std::vector<std::string> names;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".frag") == 0)
      names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());  // deterministic duplicate choice
  for (const auto& name : names) {
    const std::string path = fragDir() + "/" + name;
    const auto fragment = read(path);
    if (fragment.has_value() && fragment->sweepFp == sweepFp) {
      result.valid.emplace(fragment->jobIndex, path);  // first path wins
    } else {
      ++result.invalid;
      if (dropInvalid) ::unlink(path.c_str());
    }
  }
  return result;
}

std::optional<Fragment> FragmentStore::read(const std::string& path) const {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  Fragment fragment;
  if (!decodeFragment(bytes.data(), bytes.size(), &fragment)) return std::nullopt;
  return fragment;
}

bool FragmentStore::hasFragment(std::uint64_t index) const {
  char prefix[32];
  std::snprintf(prefix, sizeof prefix, "job-%010llu-",
                static_cast<unsigned long long>(index));
  DIR* d = ::opendir(fragDir().c_str());
  if (d == nullptr) return false;
  bool found = false;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind(prefix, 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".frag") == 0) {
      found = true;
      break;
    }
  }
  ::closedir(d);
  return found;
}

std::string FragmentStore::leasePath(std::uint64_t index) const {
  return dir_ + "/lease-" + std::to_string(index);
}

bool FragmentStore::tryLease(std::uint64_t index) const {
  const int fd = ::open(leasePath(index).c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

std::optional<double> FragmentStore::leaseAge(std::uint64_t index) const {
  struct stat st{};
  if (::stat(leasePath(index).c_str(), &st) != 0) return std::nullopt;
  struct timeval now{};
  ::gettimeofday(&now, nullptr);
  const double mtime = static_cast<double>(st.st_mtime);
  return std::max(0.0, static_cast<double>(now.tv_sec) - mtime);
}

void FragmentStore::releaseLease(std::uint64_t index) const {
  ::unlink(leasePath(index).c_str());
}

void mergeFragments(const FragmentStore& store, std::uint64_t sweepFp,
                    const std::vector<WorkUnit>& units, std::ostream* jsonl,
                    std::ostream* csv, std::ostream* trace) {
  const auto scanned = store.scan(sweepFp, /*dropInvalid=*/false);
  std::ostringstream missing;
  std::size_t missingCount = 0;
  for (const auto& unit : units) {
    if (scanned.valid.count(unit.index) != 0) continue;
    if (++missingCount <= 8) missing << ' ' << unit.index;
  }
  DTNCACHE_CHECK_MSG(missingCount == 0,
                     "merge: " << missingCount << " of " << units.size()
                               << " work units have no valid fragment (indices:"
                               << missing.str()
                               << (missingCount > 8 ? " ..." : "") << ")");

  std::string csvHeader;
  for (const auto& unit : units) {
    const auto fragment = store.read(scanned.valid.at(unit.index));
    DTNCACHE_CHECK_MSG(fragment.has_value(),
                       "merge: fragment for job " << unit.index
                                                  << " vanished mid-merge");
    DTNCACHE_CHECK_MSG(fragment->configFp == unit.configFp,
                       "merge: fragment for job "
                           << unit.index
                           << " was produced by a different config (grid skew)");
    if (jsonl != nullptr) *jsonl << fragment->jsonl;
    if (csv != nullptr) {
      if (csvHeader.empty()) {
        csvHeader = fragment->csvHeader;
        *csv << csvHeader;
      } else {
        DTNCACHE_CHECK_MSG(fragment->csvHeader == csvHeader,
                           "merge: job " << unit.index
                                         << " rendered a different CSV header");
      }
    }
    if (csv != nullptr) *csv << fragment->csvRow;
    if (trace != nullptr) *trace << fragment->trace;
  }
  if (jsonl != nullptr) jsonl->flush();
  if (csv != nullptr) csv->flush();
  if (trace != nullptr) trace->flush();
}

}  // namespace dtncache::sweep
