#pragma once

/// \file dense_bitset.hpp
/// Growable word-packed bitset for dense ids.
///
/// The hot-path replacement for `unordered_set<uint64_t>` membership when
/// keys are dense (packed (query, node) ids, query ids): test and set are
/// one shift-and-mask against a flat word array, and growth is geometric so
/// a warmed set never allocates again in steady state.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dtncache::core {

class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(std::size_t bits) : words_((bits + 63) / 64, 0) {}

  bool test(std::uint64_t bit) const {
    const std::size_t w = bit >> 6;
    if (w >= words_.size()) return false;
    return (words_[w] >> (bit & 63)) & 1u;
  }

  /// Set `bit`, growing the word array geometrically if needed. Returns
  /// true if the bit was newly set (it was clear before).
  bool set(std::uint64_t bit) {
    const std::size_t w = bit >> 6;
    if (w >= words_.size()) {
      std::size_t n = words_.empty() ? 16 : words_.size();
      while (n <= w) n <<= 1;
      words_.resize(n, 0);
    }
    const std::uint64_t mask = 1ull << (bit & 63);
    const bool fresh = (words_[w] & mask) == 0;
    words_[w] |= mask;
    return fresh;
  }

  /// Clear `bit` without growing; clearing past the end is a no-op.
  void reset(std::uint64_t bit) {
    const std::size_t w = bit >> 6;
    if (w < words_.size()) words_[w] &= ~(1ull << (bit & 63));
  }

  void clear() { words_.assign(words_.size(), 0); }

  /// Words currently allocated (capacity introspection for tests).
  std::size_t wordCount() const { return words_.size(); }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace dtncache::core
