#pragma once

/// \file hierarchy.hpp
/// The refresh hierarchy: who is responsible for refreshing whom.
///
/// Per data item, the caching nodes form a tree rooted at the source. Each
/// node is responsible for refreshing exactly its children, so (a) the
/// per-node workload is bounded by the fanout bound — the "each caching
/// node is only responsible for refreshing a specific set of caching
/// nodes" of the abstract — and (b) the source does O(fanout) work rather
/// than O(R).
///
/// Construction is greedy (Prim-flavored): grow the tree from the root,
/// always attaching the (parent-with-free-slot, candidate) pair that gives
/// the candidate the best refresh quality. Two quality models:
///   - depth-aware (default): the candidate's end-to-end probability of
///     receiving a version within one period, P(chain delay ≤ τ) through
///     the prospective parent — a deep parent receives versions late, so
///     its children are penalized automatically;
///   - naive (ablation F8): just the single-hop probability 1 − e^{−λ·τ}.
///
/// The structure also supports the local repair operations a distributed
/// deployment performs: re-parenting, member join, member leave.

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/time.hpp"
#include "trace/contact.hpp"

namespace dtncache::core {

/// Pairwise rate oracle used at planning time (true matrix or estimator).
using RateFn = std::function<double(NodeId, NodeId)>;

struct HierarchyConfig {
  /// Maximum children per node (responsibility-set bound).
  std::size_t fanoutBound = 3;
  /// Attach by end-to-end refresh probability (true) or single-hop (false).
  bool depthAware = true;
};

class RefreshHierarchy {
 public:
  RefreshHierarchy() = default;

  /// Greedily build a tree over {root} ∪ members. Members must not contain
  /// the root or duplicates. Fails only if fanout capacity < member count.
  static RefreshHierarchy build(NodeId root, const std::vector<NodeId>& members,
                                const RateFn& rate, sim::SimTime tau,
                                const HierarchyConfig& config);

  NodeId root() const { return root_; }
  bool isMember(NodeId n) const { return n < infos_.size() && infos_[n].member; }
  std::size_t memberCount() const { return memberCount_; }  ///< includes root

  /// kNoNode for the root (and for non-members).
  NodeId parentOf(NodeId n) const;
  const std::vector<NodeId>& childrenOf(NodeId n) const;
  std::size_t depthOf(NodeId n) const;  ///< root = 0
  std::size_t maxDepth() const;

  /// Is `refresher` responsible for refreshing `target` (tree edge)?
  bool isResponsible(NodeId refresher, NodeId target) const {
    return parentOf(target) == refresher;
  }

  /// Contact rates along the path root → n (planning-time analysis input).
  std::vector<double> chainRates(NodeId n, const RateFn& rate) const;

  /// All nodes except the root, in breadth-first (level) order with each
  /// level's siblings sorted by id. Computed lazily and cached until the
  /// next structural mutation — schemes walk this list on every contact, so
  /// rebuilding the BFS each call dominated their planning cost. The
  /// reference stays valid across reads; a mutation only marks the cache
  /// stale (it is rebuilt on the *next* call), so a loop over the returned
  /// list that ends in a repair operation is safe.
  const std::vector<NodeId>& membersBelowRoot() const;

  /// True if `ancestor` lies on the path root → n (strictly above n).
  bool isAncestor(NodeId ancestor, NodeId n) const;

  // ---- local repair -------------------------------------------------------

  /// Move `child` under `newParent`. Rejects cycles (newParent inside
  /// child's subtree) and full parents via invariant checks.
  void reparent(NodeId child, NodeId newParent, std::size_t fanoutBound);

  /// Attach a new member under `parent`.
  void addMember(NodeId n, NodeId parent, std::size_t fanoutBound);

  /// Remove a member; its children are adopted by its parent (the paper's
  /// local leave-repair). The root cannot be removed. The adopter may
  /// temporarily exceed the fanout bound; the next maintenance pass
  /// rebalances — mirroring a real deployment, where departure is not the
  /// moment to run an optimization.
  void removeMember(NodeId n);

  /// Full structural validation: single root, acyclic, consistent
  /// parent/child links, correct depths. Throws InvariantViolation.
  void checkInvariants() const;

 private:
  /// Node records live in a vector indexed directly by NodeId — ids are
  /// dense and small (they index the trace's node table), so membership is
  /// a flag test and parent/children lookups are one indexed load. The
  /// schemes call parentOf/childrenOf per item per contact; the old
  /// hash-map storage made those lookups the hottest code in planning.
  struct NodeInfo {
    NodeId parent = kNoNode;
    std::vector<NodeId> children;
    std::size_t depth = 0;
    bool member = false;
  };

  void recomputeDepths(NodeId from);
  void addNode(NodeId n, NodeId parent, std::size_t depth);
  NodeInfo& info(NodeId n);
  const NodeInfo& info(NodeId n) const;

  NodeId root_ = kNoNode;
  std::vector<NodeInfo> infos_;           ///< indexed by NodeId
  std::vector<NodeId> memberIds_;         ///< insertion order, root first
  std::size_t memberCount_ = 0;
  mutable std::vector<NodeId> bfsCache_;  ///< membersBelowRoot result
  mutable bool bfsDirty_ = true;
};

}  // namespace dtncache::core
