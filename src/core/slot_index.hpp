#pragma once

/// \file slot_index.hpp
/// Open-addressing index from 64-bit keys to 32-bit slot numbers.
///
/// The flat-store pattern used across the hot data path: values live in a
/// dense slot vector owned by the caller (cache entries, estimator pair
/// states, hierarchy node infos); this index maps a key to its slot in one
/// cache line most of the time. Linear probing over a power-of-two table,
/// backshift deletion (no tombstones), geometric growth at 70% load. No
/// iteration order is exposed — callers that need deterministic order
/// iterate their own slot vector or sort their keys.
///
/// Keys are arbitrary except the all-ones sentinel (which no packed id
/// pair or small dense id produces).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/assert.hpp"

namespace dtncache::core {

class SlotIndex {
 public:
  static constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);

  explicit SlotIndex(std::size_t expected = 0) {
    std::size_t cap = 16;
    while (cap * 7 < expected * 10) cap <<= 1;
    table_.assign(cap, Entry{});
    setCapacity(cap);
  }

  /// Slot stored under `key`, or kNoSlot.
  std::uint32_t find(std::uint64_t key) const {
    for (std::size_t i = bucketOf(key);; i = (i + 1) & mask_) {
      const Entry& e = table_[i];
      if (e.slot == kNoSlot) return kNoSlot;
      if (e.key == key) return e.slot;
    }
  }

  /// Insert `key -> slot`. The key must not be present.
  void insert(std::uint64_t key, std::uint32_t slot) {
    DTNCACHE_CHECK(key != kEmptyKey && slot != kNoSlot);
    if ((size_ + 1) * 10 > (mask_ + 1) * 7) grow();
    insertNoGrow(key, slot);
    ++size_;
  }

  /// Re-point an existing key at a new slot (slot-vector compaction).
  void update(std::uint64_t key, std::uint32_t slot) {
    for (std::size_t i = bucketOf(key);; i = (i + 1) & mask_) {
      Entry& e = table_[i];
      DTNCACHE_CHECK_MSG(e.slot != kNoSlot, "SlotIndex::update: key not present");
      if (e.key == key) {
        e.slot = slot;
        return;
      }
    }
  }

  /// Remove `key`; returns the slot it mapped to, or kNoSlot if absent.
  std::uint32_t erase(std::uint64_t key) {
    std::size_t i = bucketOf(key);
    for (;; i = (i + 1) & mask_) {
      const Entry& e = table_[i];
      if (e.slot == kNoSlot) return kNoSlot;
      if (e.key == key) break;
    }
    const std::uint32_t slot = table_[i].slot;
    // Backshift: close the gap so probe chains stay unbroken.
    std::size_t hole = i;
    for (std::size_t j = (i + 1) & mask_;; j = (j + 1) & mask_) {
      const Entry& e = table_[j];
      if (e.slot == kNoSlot) break;
      const std::size_t home = bucketOf(e.key);
      // e may move into the hole only if the hole lies on e's probe path.
      const bool cyclic = ((j - home) & mask_) >= ((j - hole) & mask_);
      if (cyclic) {
        table_[hole] = e;
        hole = j;
      }
    }
    table_[hole] = Entry{};
    --size_;
    return slot;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    table_.assign(table_.size(), Entry{});
    size_ = 0;
  }

 private:
  static constexpr std::uint64_t kEmptyKey = static_cast<std::uint64_t>(-1);

  struct Entry {
    std::uint64_t key = kEmptyKey;
    std::uint32_t slot = kNoSlot;
  };

  // Fibonacci hashing: one multiply, take the top bits. The golden-ratio
  // constant spreads dense sequential ids (item ids, message ids, packed
  // pairs) across the table, and the single-multiply dependency chain keeps
  // a hit to ~10 cycles — this index sits under every cache find and every
  // buffer dedup, so hash latency is the whole game.
  std::size_t bucketOf(std::uint64_t key) const {
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> shift_) & mask_;
  }

  void insertNoGrow(std::uint64_t key, std::uint32_t slot) {
    for (std::size_t i = bucketOf(key);; i = (i + 1) & mask_) {
      Entry& e = table_[i];
      if (e.slot == kNoSlot) {
        e.key = key;
        e.slot = slot;
        return;
      }
      DTNCACHE_CHECK_MSG(e.key != key, "SlotIndex::insert: duplicate key");
    }
  }

  void setCapacity(std::size_t cap) {
    mask_ = cap - 1;
    shift_ = 64;
    while (cap > 1) {
      cap >>= 1;
      --shift_;
    }
  }

  void grow() {
    std::vector<Entry> old = std::move(table_);
    table_.assign((mask_ + 1) * 2, Entry{});
    setCapacity(table_.size());
    for (const Entry& e : old)
      if (e.slot != kNoSlot) insertNoGrow(e.key, e.slot);
  }

  std::vector<Entry> table_;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
  std::size_t size_ = 0;
};

}  // namespace dtncache::core
