#include "core/hierarchy.hpp"

#include <algorithm>

#include "core/freshness.hpp"
#include "sim/assert.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::core {

RefreshHierarchy RefreshHierarchy::build(NodeId root, const std::vector<NodeId>& members,
                                         const RateFn& rate, sim::SimTime tau,
                                         const HierarchyConfig& config) {
  DTNCACHE_CHECK(config.fanoutBound >= 1);
  DTNCACHE_CHECK(tau > 0.0);

  RefreshHierarchy h;
  h.root_ = root;
  h.nodes_[root] = NodeInfo{};

  std::vector<NodeId> remaining = members;
  for (NodeId m : remaining) {
    DTNCACHE_CHECK_MSG(m != root, "root listed among members");
    DTNCACHE_CHECK_MSG(h.nodes_.count(m) == 0, "duplicate member " << m);
  }

  // Track chain rates per tree node so candidate scores are O(depth).
  std::unordered_map<NodeId, std::vector<double>> chains;
  chains[root] = {};

  while (!remaining.empty()) {
    NodeId bestChild = kNoNode;
    NodeId bestParent = kNoNode;
    double bestScore = -1.0;
    for (const auto& [p, infoP] : h.nodes_) {
      if (infoP.children.size() >= config.fanoutBound) continue;
      for (NodeId c : remaining) {
        const double lambda = rate(p, c);
        double score = 0.0;
        if (config.depthAware) {
          auto chain = chains[p];
          chain.push_back(lambda);
          score = chainRefreshProbability(chain, tau);
        } else {
          score = trace::contactProbability(lambda, tau);
        }
        // Deterministic tie-breaks: higher score, then shallower parent,
        // then smaller ids.
        const bool better =
            score > bestScore ||
            (score == bestScore &&
             (bestParent == kNoNode || infoP.depth < h.info(bestParent).depth ||
              (infoP.depth == h.info(bestParent).depth &&
               (p < bestParent || (p == bestParent && c < bestChild)))));
        if (better) {
          bestScore = score;
          bestChild = c;
          bestParent = p;
        }
      }
    }
    DTNCACHE_CHECK_MSG(bestChild != kNoNode,
                       "fanout capacity exhausted: bound " << config.fanoutBound
                                                           << " cannot host all members");
    NodeInfo child;
    child.parent = bestParent;
    child.depth = h.info(bestParent).depth + 1;
    h.nodes_[bestChild] = child;
    h.info(bestParent).children.push_back(bestChild);
    auto chain = chains[bestParent];
    chain.push_back(rate(bestParent, bestChild));
    chains[bestChild] = std::move(chain);
    remaining.erase(std::find(remaining.begin(), remaining.end(), bestChild));
  }
  return h;
}

RefreshHierarchy::NodeInfo& RefreshHierarchy::info(NodeId n) {
  const auto it = nodes_.find(n);
  DTNCACHE_CHECK_MSG(it != nodes_.end(), "node " << n << " not in hierarchy");
  return it->second;
}

const RefreshHierarchy::NodeInfo& RefreshHierarchy::info(NodeId n) const {
  const auto it = nodes_.find(n);
  DTNCACHE_CHECK_MSG(it != nodes_.end(), "node " << n << " not in hierarchy");
  return it->second;
}

NodeId RefreshHierarchy::parentOf(NodeId n) const {
  const auto it = nodes_.find(n);
  return it == nodes_.end() ? kNoNode : it->second.parent;
}

const std::vector<NodeId>& RefreshHierarchy::childrenOf(NodeId n) const {
  return info(n).children;
}

std::size_t RefreshHierarchy::depthOf(NodeId n) const { return info(n).depth; }

std::size_t RefreshHierarchy::maxDepth() const {
  std::size_t d = 0;
  for (const auto& [id, node] : nodes_) d = std::max(d, node.depth);
  return d;
}

std::vector<double> RefreshHierarchy::chainRates(NodeId n, const RateFn& rate) const {
  std::vector<double> rates;
  NodeId cur = n;
  while (cur != root_) {
    const NodeId p = parentOf(cur);
    DTNCACHE_CHECK(p != kNoNode);
    rates.push_back(rate(p, cur));
    cur = p;
  }
  std::reverse(rates.begin(), rates.end());
  return rates;
}

std::vector<NodeId> RefreshHierarchy::membersBelowRoot() const {
  std::vector<NodeId> out;
  std::vector<NodeId> frontier{root_};
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId n : frontier) {
      auto children = info(n).children;
      std::sort(children.begin(), children.end());
      for (NodeId c : children) {
        out.push_back(c);
        next.push_back(c);
      }
    }
    frontier = std::move(next);
  }
  return out;
}

bool RefreshHierarchy::isAncestor(NodeId ancestor, NodeId n) const {
  NodeId cur = parentOf(n);
  while (cur != kNoNode) {
    if (cur == ancestor) return true;
    cur = parentOf(cur);
  }
  return false;
}

void RefreshHierarchy::recomputeDepths(NodeId from) {
  NodeInfo& f = info(from);
  f.depth = from == root_ ? 0 : info(f.parent).depth + 1;
  for (NodeId c : f.children) recomputeDepths(c);
}

void RefreshHierarchy::reparent(NodeId child, NodeId newParent, std::size_t fanoutBound) {
  DTNCACHE_CHECK_MSG(child != root_, "cannot reparent the root");
  DTNCACHE_CHECK_MSG(isMember(newParent), "new parent not in hierarchy");
  DTNCACHE_CHECK_MSG(newParent != child && !isAncestor(child, newParent),
                     "reparent would create a cycle");
  NodeInfo& c = info(child);
  if (c.parent == newParent) return;
  DTNCACHE_CHECK_MSG(info(newParent).children.size() < fanoutBound,
                     "new parent " << newParent << " is at fanout capacity");
  auto& oldSiblings = info(c.parent).children;
  oldSiblings.erase(std::find(oldSiblings.begin(), oldSiblings.end(), child));
  c.parent = newParent;
  info(newParent).children.push_back(child);
  recomputeDepths(child);
}

void RefreshHierarchy::addMember(NodeId n, NodeId parent, std::size_t fanoutBound) {
  DTNCACHE_CHECK_MSG(!isMember(n), "node " << n << " already a member");
  DTNCACHE_CHECK_MSG(isMember(parent), "parent not in hierarchy");
  DTNCACHE_CHECK_MSG(info(parent).children.size() < fanoutBound,
                     "parent " << parent << " is at fanout capacity");
  NodeInfo node;
  node.parent = parent;
  node.depth = info(parent).depth + 1;
  nodes_[n] = node;
  info(parent).children.push_back(n);
}

void RefreshHierarchy::removeMember(NodeId n) {
  DTNCACHE_CHECK_MSG(n != root_, "cannot remove the root");
  const NodeInfo node = info(n);
  auto& siblings = info(node.parent).children;
  siblings.erase(std::find(siblings.begin(), siblings.end(), n));
  for (NodeId c : node.children) {
    info(c).parent = node.parent;
    siblings.push_back(c);
  }
  nodes_.erase(n);
  for (NodeId c : node.children) recomputeDepths(c);
}

void RefreshHierarchy::checkInvariants() const {
  DTNCACHE_CHECK(root_ != kNoNode);
  DTNCACHE_CHECK(info(root_).parent == kNoNode);
  DTNCACHE_CHECK(info(root_).depth == 0);
  std::size_t reachable = 0;
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    ++reachable;
    DTNCACHE_CHECK_MSG(reachable <= nodes_.size(), "cycle detected in hierarchy");
    const NodeInfo& in = info(n);
    for (NodeId c : in.children) {
      const NodeInfo& ci = info(c);
      DTNCACHE_CHECK_MSG(ci.parent == n, "child " << c << " disowns parent " << n);
      DTNCACHE_CHECK_MSG(ci.depth == in.depth + 1, "bad depth at node " << c);
      stack.push_back(c);
    }
  }
  DTNCACHE_CHECK_MSG(reachable == nodes_.size(), "hierarchy is disconnected");
}

}  // namespace dtncache::core
