#include "core/hierarchy.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/freshness.hpp"
#include "sim/assert.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::core {

RefreshHierarchy RefreshHierarchy::build(NodeId root, const std::vector<NodeId>& members,
                                         const RateFn& rate, sim::SimTime tau,
                                         const HierarchyConfig& config) {
  DTNCACHE_CHECK(config.fanoutBound >= 1);
  DTNCACHE_CHECK(tau > 0.0);

  RefreshHierarchy h;
  h.root_ = root;
  h.addNode(root, kNoNode, 0);

  std::vector<NodeId> remaining = members;
  for (NodeId m : remaining) {
    DTNCACHE_CHECK_MSG(m != root, "root listed among members");
    DTNCACHE_CHECK_MSG(!h.isMember(m), "duplicate member " << m);
  }

  // Track chain rates per tree node so candidate scores are O(depth).
  std::unordered_map<NodeId, std::vector<double>> chains;
  chains[root] = {};

  while (!remaining.empty()) {
    NodeId bestChild = kNoNode;
    NodeId bestParent = kNoNode;
    double bestScore = -1.0;
    for (NodeId p : h.memberIds_) {
      const NodeInfo& infoP = h.info(p);
      if (infoP.children.size() >= config.fanoutBound) continue;
      for (NodeId c : remaining) {
        const double lambda = rate(p, c);
        double score = 0.0;
        if (config.depthAware) {
          auto chain = chains[p];
          chain.push_back(lambda);
          score = chainRefreshProbability(chain, tau);
        } else {
          score = trace::contactProbability(lambda, tau);
        }
        // Deterministic tie-breaks: higher score, then shallower parent,
        // then smaller ids.
        const bool better =
            score > bestScore ||
            (score == bestScore &&
             (bestParent == kNoNode || infoP.depth < h.info(bestParent).depth ||
              (infoP.depth == h.info(bestParent).depth &&
               (p < bestParent || (p == bestParent && c < bestChild)))));
        if (better) {
          bestScore = score;
          bestChild = c;
          bestParent = p;
        }
      }
    }
    DTNCACHE_CHECK_MSG(bestChild != kNoNode,
                       "fanout capacity exhausted: bound " << config.fanoutBound
                                                           << " cannot host all members");
    h.addNode(bestChild, bestParent, h.info(bestParent).depth + 1);
    h.info(bestParent).children.push_back(bestChild);
    auto chain = chains[bestParent];
    chain.push_back(rate(bestParent, bestChild));
    chains[bestChild] = std::move(chain);
    remaining.erase(std::find(remaining.begin(), remaining.end(), bestChild));
  }
  return h;
}

void RefreshHierarchy::addNode(NodeId n, NodeId parent, std::size_t depth) {
  if (n >= infos_.size()) infos_.resize(n + 1);
  NodeInfo& in = infos_[n];
  in.parent = parent;
  in.children.clear();
  in.depth = depth;
  in.member = true;
  memberIds_.push_back(n);
  ++memberCount_;
  bfsDirty_ = true;
}

RefreshHierarchy::NodeInfo& RefreshHierarchy::info(NodeId n) {
  DTNCACHE_CHECK_MSG(isMember(n), "node " << n << " not in hierarchy");
  return infos_[n];
}

const RefreshHierarchy::NodeInfo& RefreshHierarchy::info(NodeId n) const {
  DTNCACHE_CHECK_MSG(isMember(n), "node " << n << " not in hierarchy");
  return infos_[n];
}

NodeId RefreshHierarchy::parentOf(NodeId n) const {
  return isMember(n) ? infos_[n].parent : kNoNode;
}

const std::vector<NodeId>& RefreshHierarchy::childrenOf(NodeId n) const {
  return info(n).children;
}

std::size_t RefreshHierarchy::depthOf(NodeId n) const { return info(n).depth; }

std::size_t RefreshHierarchy::maxDepth() const {
  std::size_t d = 0;
  for (NodeId n : memberIds_) d = std::max(d, infos_[n].depth);
  return d;
}

std::vector<double> RefreshHierarchy::chainRates(NodeId n, const RateFn& rate) const {
  std::vector<double> rates;
  NodeId cur = n;
  while (cur != root_) {
    const NodeId p = parentOf(cur);
    DTNCACHE_CHECK(p != kNoNode);
    rates.push_back(rate(p, cur));
    cur = p;
  }
  std::reverse(rates.begin(), rates.end());
  return rates;
}

const std::vector<NodeId>& RefreshHierarchy::membersBelowRoot() const {
  if (!bfsDirty_) return bfsCache_;
  bfsCache_.clear();
  std::vector<NodeId> frontier{root_};
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    next.clear();
    for (NodeId n : frontier) {
      auto children = info(n).children;
      std::sort(children.begin(), children.end());
      for (NodeId c : children) {
        bfsCache_.push_back(c);
        next.push_back(c);
      }
    }
    frontier.swap(next);
  }
  bfsDirty_ = false;
  return bfsCache_;
}

bool RefreshHierarchy::isAncestor(NodeId ancestor, NodeId n) const {
  NodeId cur = parentOf(n);
  while (cur != kNoNode) {
    if (cur == ancestor) return true;
    cur = parentOf(cur);
  }
  return false;
}

void RefreshHierarchy::recomputeDepths(NodeId from) {
  NodeInfo& f = info(from);
  f.depth = from == root_ ? 0 : info(f.parent).depth + 1;
  for (NodeId c : f.children) recomputeDepths(c);
}

void RefreshHierarchy::reparent(NodeId child, NodeId newParent, std::size_t fanoutBound) {
  DTNCACHE_CHECK_MSG(child != root_, "cannot reparent the root");
  DTNCACHE_CHECK_MSG(isMember(newParent), "new parent not in hierarchy");
  DTNCACHE_CHECK_MSG(newParent != child && !isAncestor(child, newParent),
                     "reparent would create a cycle");
  NodeInfo& c = info(child);
  if (c.parent == newParent) return;
  DTNCACHE_CHECK_MSG(info(newParent).children.size() < fanoutBound,
                     "new parent " << newParent << " is at fanout capacity");
  auto& oldSiblings = info(c.parent).children;
  oldSiblings.erase(std::find(oldSiblings.begin(), oldSiblings.end(), child));
  c.parent = newParent;
  info(newParent).children.push_back(child);
  recomputeDepths(child);
  bfsDirty_ = true;
}

void RefreshHierarchy::addMember(NodeId n, NodeId parent, std::size_t fanoutBound) {
  DTNCACHE_CHECK_MSG(!isMember(n), "node " << n << " already a member");
  DTNCACHE_CHECK_MSG(isMember(parent), "parent not in hierarchy");
  DTNCACHE_CHECK_MSG(info(parent).children.size() < fanoutBound,
                     "parent " << parent << " is at fanout capacity");
  addNode(n, parent, info(parent).depth + 1);
  info(parent).children.push_back(n);
}

void RefreshHierarchy::removeMember(NodeId n) {
  DTNCACHE_CHECK_MSG(n != root_, "cannot remove the root");
  const NodeInfo node = info(n);
  auto& siblings = info(node.parent).children;
  siblings.erase(std::find(siblings.begin(), siblings.end(), n));
  for (NodeId c : node.children) {
    info(c).parent = node.parent;
    siblings.push_back(c);
  }
  infos_[n] = NodeInfo{};
  memberIds_.erase(std::find(memberIds_.begin(), memberIds_.end(), n));
  --memberCount_;
  bfsDirty_ = true;
  for (NodeId c : node.children) recomputeDepths(c);
}

void RefreshHierarchy::checkInvariants() const {
  DTNCACHE_CHECK(root_ != kNoNode);
  DTNCACHE_CHECK(info(root_).parent == kNoNode);
  DTNCACHE_CHECK(info(root_).depth == 0);
  std::size_t reachable = 0;
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    ++reachable;
    DTNCACHE_CHECK_MSG(reachable <= memberCount_, "cycle detected in hierarchy");
    const NodeInfo& in = info(n);
    for (NodeId c : in.children) {
      const NodeInfo& ci = info(c);
      DTNCACHE_CHECK_MSG(ci.parent == n, "child " << c << " disowns parent " << n);
      DTNCACHE_CHECK_MSG(ci.depth == in.depth + 1, "bad depth at node " << c);
      stack.push_back(c);
    }
  }
  DTNCACHE_CHECK_MSG(reachable == memberCount_, "hierarchy is disconnected");
}

}  // namespace dtncache::core
