#include "core/hierarchy_dot.hpp"

#include <iomanip>
#include <sstream>

#include "trace/rate_matrix.hpp"

namespace dtncache::core {

std::string toDot(const RefreshHierarchy& hierarchy, const ReplicationPlan* plan,
                  const RateFn& rate, sim::SimTime tau, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph " << options.graphName << " {\n"
     << "  rankdir=TB;\n"
     << "  node [shape=circle, fontsize=10];\n";
  os << "  n" << hierarchy.root()
     << " [shape=doublecircle, label=\"src\\n" << hierarchy.root() << "\"];\n";

  for (NodeId n : hierarchy.membersBelowRoot()) {
    os << "  n" << n << " [label=\"" << n << "\"];\n";
  }
  for (NodeId n : hierarchy.membersBelowRoot()) {
    const NodeId p = hierarchy.parentOf(n);
    os << "  n" << p << " -> n" << n;
    if (options.edgeLabels) {
      const double prob = trace::contactProbability(rate(p, n), tau);
      os << " [label=\"" << std::fixed << std::setprecision(2) << prob << "\"]";
    }
    os << ";\n";
  }
  if (plan != nullptr) {
    for (NodeId n : hierarchy.membersBelowRoot()) {
      for (NodeId helper : plan->helpersOf(n)) {
        os << "  n" << helper << " -> n" << n << " [style=dashed, color=gray";
        if (options.edgeLabels) {
          const double prob = trace::contactProbability(rate(helper, n), tau);
          os << ", label=\"" << std::fixed << std::setprecision(2) << prob << "\"";
        }
        os << "];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace dtncache::core
