#pragma once

/// \file freshness.hpp
/// The analytical machinery behind the paper's freshness guarantees.
///
/// Under the pairwise-Poisson contact model, the delay for a new version to
/// travel down a refresh chain root → n1 → ... → nk is a sum of independent
/// exponentials — a hypoexponential random variable. Everything the scheme
/// needs is a function of that distribution:
///
///   - chainRefreshProbability: P(chain delay ≤ τ) — the probability a node
///     receives each version while it is still current. This is the
///     quantity the freshness requirement θ constrains, and what
///     probabilistic replication boosts.
///   - expectedFreshFraction: long-run fraction of time the node's copy is
///     fresh, (τ − E[min(D, τ)]) / τ for refresh delay D — the analytical
///     curve plotted against simulation in experiment F5.
///
/// Numerics: the textbook hypoexponential CDF formula
///     F(t) = 1 − Σ_i w_i e^{−r_i t},   w_i = Π_{j≠i} r_j / (r_j − r_i)
/// blows up when rates coincide; rates closer than a relative epsilon are
/// nudged apart, which changes results by O(epsilon) while keeping the
/// closed form (tree depths are small, so cancellation stays benign).

#include <vector>

#include "sim/time.hpp"

namespace dtncache::core {

/// Prepared hypoexponential distribution for one refresh chain.
///
/// Construction pays the O(k²) work once — separating coinciding rates and
/// forming the survival weights w_i = Π_{j≠i} r_j / (r_j − r_i) (the
/// partial products of the closed form) — after which each evaluation
/// costs one exp() per stage. Replication planning prepares one per node
/// chain and evaluates it at τ and τ/2 for every candidate pairing instead
/// of redoing the products per pairing. Results are bit-for-bit identical
/// to the one-shot free functions below (which now delegate here).
class HypoexpCdf {
 public:
  /// Empty chain: delay 0, cdf ≡ 1. Mostly useful as an assign() target.
  HypoexpCdf() = default;

  explicit HypoexpCdf(std::vector<double> rates);

  /// Re-prepare in place for a new chain, reusing the weight buffer's
  /// capacity. The one-shot free functions below route every call through a
  /// thread-local scratch instance via this, so repeated evaluations stop
  /// paying a weights allocation per call.
  void assign(std::vector<double> rates);

  /// P(Exp(r_1) + ... + Exp(r_k) ≤ t). Empty chain ⇒ delay 0 ⇒ 1.
  /// Any zero rate makes the sum infinite ⇒ 0.
  double cdf(double t) const;

  /// E[min(D, horizon)] — the mean staleness a periodic observer
  /// accumulates per period of length `horizon`.
  double truncatedMean(double horizon) const;

  std::size_t stages() const { return rates_.size(); }

 private:
  std::vector<double> rates_;    ///< sorted, coinciding rates nudged apart
  std::vector<double> weights_;  ///< survival coefficients w_i
  bool dead_ = false;            ///< some rate is 0: the chain never delivers
};

/// P(Exp(r_1) + ... + Exp(r_k) ≤ t). Empty chain ⇒ delay 0 ⇒ returns 1.
/// Any zero rate makes the sum infinite ⇒ returns 0.
double hypoexponentialCdf(std::vector<double> rates, double t);

/// E[min(D, horizon)] for D the hypoexponential sum — the mean staleness a
/// periodic observer accumulates per period of length `horizon`.
double expectedDelayTruncated(std::vector<double> rates, double horizon);

/// P(a node at the end of `chainRates` gets each version within one period).
inline double chainRefreshProbability(const std::vector<double>& chainRates,
                                      sim::SimTime tau) {
  return hypoexponentialCdf(chainRates, tau);
}

/// Long-run fraction of time the node's copy is the current version:
/// (τ − E[min(D, τ)]) / τ.
double expectedFreshFraction(const std::vector<double>& chainRates, sim::SimTime tau);

/// Combined refresh probability of a node with a parent chain and a set of
/// helper contributions h_k (each the probability that helper k alone
/// delivers in time): 1 − (1 − p_chain)·Π_k (1 − h_k). Assumes independence
/// across refreshers — the union-bound-flavored model replication planning
/// uses (documented in DESIGN.md).
double combinedRefreshProbability(double chainProbability,
                                  const std::vector<double>& helperContributions);

/// Contribution of one helper: it must itself be refreshed within the first
/// half-period (its own chain, evaluated at τ/2), then meet the target in
/// the second half: q_k(τ/2) · (1 − e^{−λ·τ/2}).
double helperContribution(const std::vector<double>& helperChainRates, double rateToTarget,
                          sim::SimTime tau);

/// Same, with the helper's chain already prepared (the planning hot path:
/// one helper is evaluated against every under-θ target).
double helperContribution(const HypoexpCdf& helperChain, double rateToTarget,
                          sim::SimTime tau);

}  // namespace dtncache::core
