#include "core/hierarchical_scheme.hpp"

#include <algorithm>

#include "core/freshness.hpp"
#include "sim/assert.hpp"

namespace dtncache::core {

HierarchicalRefreshScheme::HierarchicalRefreshScheme(HierarchicalConfig config,
                                                     const trace::RateMatrix* oracleRates)
    : config_(config), oracleRates_(oracleRates) {
  DTNCACHE_CHECK_MSG(!config_.useOracleRates || oracleRates_ != nullptr,
                     "useOracleRates requires an oracle rate matrix");
}

void HierarchicalRefreshScheme::setObservability(obs::Tracer* tracer,
                                                 obs::Registry* registry) {
  tracer_ = tracer;
  if (registry == nullptr) {
    ctrMaintenanceRuns_ = nullptr;
    ctrReparents_ = nullptr;
    ctrRelayInjected_ = nullptr;
    ctrChurnRepairs_ = nullptr;
    ctrPlanHelpers_ = nullptr;
    ctrPlanUnmet_ = nullptr;
    maintenanceTimer_ = nullptr;
    return;
  }
  ctrMaintenanceRuns_ = &registry->counter("core.maintenance.runs");
  ctrReparents_ = &registry->counter("core.reparent.count");
  ctrRelayInjected_ = &registry->counter("core.relay.injected");
  ctrChurnRepairs_ = &registry->counter("core.churn.repairs");
  ctrPlanHelpers_ = &registry->counter("core.plan.helpers");
  ctrPlanUnmet_ = &registry->counter("core.plan.unmet");
  maintenanceTimer_ = &registry->timer("core.maintenance");
}

void HierarchicalRefreshScheme::replan(cache::CooperativeCache& cache, data::ItemId item,
                                       sim::SimTime t, const RateFn& rate) {
  const sim::SimTime tau = cache.catalog().spec(item).refreshPeriod;
  plans_[item] = planReplication(hierarchies_[item], rate, tau, config_.replication,
                                 PlanTrace{tracer_, item, t});
  const ReplicationPlan& plan = plans_[item];
  if (ctrPlanHelpers_ != nullptr) ctrPlanHelpers_->add(plan.totalAssignments());
  if (ctrPlanUnmet_ != nullptr) ctrPlanUnmet_->add(plan.unmetNodes().size());
  DTNCACHE_EVENT(tracer_, obs::EventKind::kPlan, t, {"item", item},
                 {"helpers", plan.totalAssignments()}, {"unmet", plan.unmetNodes().size()});
}

RateFn HierarchicalRefreshScheme::makeRateFn(cache::CooperativeCache& cache,
                                             sim::SimTime t) const {
  if (config_.useOracleRates) {
    const trace::RateMatrix* m = oracleRates_;
    return [m](NodeId i, NodeId j) { return m->rate(i, j); };
  }
  trace::ContactRateEstimator* est = &cache.estimator();
  return [est, t](NodeId i, NodeId j) { return est->rate(i, j, t); };
}

void HierarchicalRefreshScheme::rebuildItem(cache::CooperativeCache& cache,
                                            data::ItemId item, sim::SimTime t) {
  const auto rate = makeRateFn(cache, t);
  const sim::SimTime tau = cache.catalog().spec(item).refreshPeriod;
  std::vector<NodeId> members;
  for (NodeId n : cache.cachingNodesOf(item))
    if (!live_ || live_(n)) members.push_back(n);
  hierarchies_[item] =
      RefreshHierarchy::build(cache.sourceOf(item), members, rate, tau, config_.hierarchy);
  replan(cache, item, t, rate);
}

void HierarchicalRefreshScheme::localRepairItem(cache::CooperativeCache& cache,
                                                data::ItemId item, sim::SimTime t) {
  const auto rate = makeRateFn(cache, t);
  const sim::SimTime tau = cache.catalog().spec(item).refreshPeriod;
  RefreshHierarchy& h = hierarchies_[item];

  // Each member independently evaluates its own parent edge — the only
  // structural knowledge a node needs is the candidate parents' chains,
  // which the metadata handshake carries in a deployment. Snapshot the
  // member order: repairs re-parent mid-loop, which invalidates the
  // hierarchy's cached BFS list.
  const std::vector<NodeId> members = h.membersBelowRoot();
  for (NodeId n : members) {
    const double current = chainRefreshProbability(h.chainRates(n, rate), tau);
    NodeId bestParent = kNoNode;
    double bestScore = current;
    auto considerParent = [&](NodeId p) {
      if (p == n || p == h.parentOf(n)) return;
      if (h.isAncestor(n, p)) return;  // would create a cycle
      if (h.childrenOf(p).size() >= config_.hierarchy.fanoutBound) return;
      auto chain = h.chainRates(p, rate);
      chain.push_back(rate(p, n));
      const double score = chainRefreshProbability(chain, tau);
      if (score > bestScore) {
        bestScore = score;
        bestParent = p;
      }
    };
    considerParent(h.root());
    for (NodeId p : h.membersBelowRoot()) considerParent(p);

    if (bestParent != kNoNode &&
        bestScore >= current * (1.0 + config_.repairImprovement)) {
      h.reparent(n, bestParent, config_.hierarchy.fanoutBound);
      ++reparentCount_;
      if (ctrReparents_ != nullptr) ctrReparents_->add();
      DTNCACHE_EVENT(tracer_, obs::EventKind::kReparent, t, {"item", item}, {"node", n},
                     {"parent", bestParent});
    }
  }
  replan(cache, item, t, rate);
}

void HierarchicalRefreshScheme::runMaintenance(cache::CooperativeCache& cache,
                                               sim::SimTime t) {
  ++maintenanceRuns_;
  if (ctrMaintenanceRuns_ != nullptr) ctrMaintenanceRuns_->add();
  obs::ScopedTimer timed(maintenanceTimer_);
  const std::size_t reparentsBefore = reparentCount_;
  for (data::ItemId item = 0; item < cache.catalog().size(); ++item) {
    switch (config_.maintenance) {
      case MaintenanceMode::kRebuild:
        rebuildItem(cache, item, t);
        break;
      case MaintenanceMode::kLocalRepair:
        localRepairItem(cache, item, t);
        break;
      case MaintenanceMode::kStatic:
        break;
    }
    hierarchies_[item].checkInvariants();
  }
  DTNCACHE_EVENT(tracer_, obs::EventKind::kMaintenance, t,
                 {"items", cache.catalog().size()},
                 {"reparented", reparentCount_ - reparentsBefore});
}

void HierarchicalRefreshScheme::onStart(cache::CooperativeCache& cache) {
  const sim::SimTime now = cache.simulator().now();
  hierarchies_.resize(cache.catalog().size());
  plans_.resize(cache.catalog().size());
  for (data::ItemId item = 0; item < cache.catalog().size(); ++item)
    rebuildItem(cache, item, now);

  if (config_.maintenance != MaintenanceMode::kStatic) {
    cache.simulator().schedulePeriodic(
        config_.maintenancePeriod,
        [this, &cache](sim::SimTime t) { runMaintenance(cache, t); },
        config_.maintenancePeriod);
  }
}

bool HierarchicalRefreshScheme::responsible(data::ItemId item, NodeId refresher,
                                            NodeId target) const {
  const RefreshHierarchy& h = hierarchies_[item];
  if (!h.isMember(refresher) || !h.isMember(target)) return false;
  return h.isResponsible(refresher, target) || plans_[item].isHelper(refresher, target);
}

void HierarchicalRefreshScheme::onContact(cache::CooperativeCache& cache, NodeId a, NodeId b,
                                          sim::SimTime t, net::ContactChannel& channel) {
  const std::size_t items = cache.catalog().size();
  for (data::ItemId item = 0; item < items; ++item) {
    const auto va = cache.heldVersion(a, item, t);
    const auto vb = cache.heldVersion(b, item, t);
    if (va && (!vb || *va > *vb) && responsible(item, a, b))
      cache.pushVersion(a, b, item, t, channel, net::Traffic::kRefresh);
    else if (vb && (!va || *vb > *va) && responsible(item, b, a))
      cache.pushVersion(b, a, item, t, channel, net::Traffic::kRefresh);
  }
  if (config_.relayAssisted) {
    injectRelays(cache, a, b, t, channel);
    injectRelays(cache, b, a, t, channel);
  }
}

void HierarchicalRefreshScheme::targetsOf(data::ItemId item, NodeId refresher,
                                          std::vector<NodeId>& out) const {
  out.clear();
  const RefreshHierarchy& h = hierarchies_[item];
  if (!h.isMember(refresher)) return;
  const auto& children = h.childrenOf(refresher);
  out.insert(out.end(), children.begin(), children.end());
  for (NodeId n : h.membersBelowRoot())
    if (plans_[item].isHelper(refresher, n)) out.push_back(n);
}

void HierarchicalRefreshScheme::injectRelays(cache::CooperativeCache& cache, NodeId holder,
                                             NodeId carrier, sim::SimTime t,
                                             net::ContactChannel& channel) {
  // Energy-aware: a nearly-drained carrier is not volunteered for relay
  // duty (it would pay rx now and tx at delivery).
  if (nodeWeight_ && nodeWeight_(carrier) < config_.minRelayCarrierBattery) return;
  const auto& fwd = cache.config().forwarding;
  const std::size_t items = cache.catalog().size();
  for (data::ItemId item = 0; item < items; ++item) {
    const auto held = cache.heldVersion(holder, item, t);
    if (!held) continue;
    const sim::SimTime tau = cache.catalog().spec(item).refreshPeriod;
    targetsOf(item, holder, targetsScratch_);
    for (NodeId target : targetsScratch_) {
      if (target == carrier) continue;  // direct push already handled
      const auto targetHeld = cache.heldVersion(target, item, t);
      if (targetHeld && *targetHeld >= *held) continue;

      // Strong direct edges need no relay help — save the bandwidth.
      const double mine = cache.estimator().rate(holder, target, t);
      if (trace::contactProbability(mine, tau) >= config_.relayWhenDirectBelow) continue;

      // Only hand to a strictly better carrier toward the target.
      const double theirs = cache.estimator().rate(carrier, target, t);
      if (!(theirs > mine * fwd.improvementFactor && theirs > 0.0)) continue;

      const std::uint64_t key = (static_cast<std::uint64_t>(item) << 44) ^
                                (static_cast<std::uint64_t>(target) << 32) ^
                                (*held & 0xffffffffull);
      std::uint32_t& used = relayBudgetSlot(key);
      if (used >= config_.relayCopiesPerVersion) continue;

      // Skip if the carrier already holds an equivalent copy in its buffer.
      bool duplicate = false;
      const net::MessageBuffer& carrierBuf = cache.bufferOf(carrier);
      for (std::uint32_t s = carrierBuf.firstSlot(); s != net::MessageBuffer::kNil;
           s = carrierBuf.nextSlot(s)) {
        const net::Message& m = carrierBuf.at(s);
        if (m.kind == net::MessageKind::kDataCopy && m.item == item && m.dst == target &&
            m.version >= *held) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;

      net::Message m;
      m.kind = net::MessageKind::kDataCopy;
      m.item = item;
      m.version = *held;
      m.dst = target;
      m.origin = holder;
      m.createdAt = t;
      m.deadline = t + config_.relayTtlFactor * tau;
      m.copiesLeft = 1;  // the bounded-replication budget is `used`, not spray
      m.payloadBytes = cache.catalog().spec(item).sizeBytes;
      m.category = net::Traffic::kRefresh;
      if (!channel.transfer(net::Traffic::kRefresh, m.wireBytes(), holder)) return;
      cache.injectMessage(carrier, m, t);
      ++used;
      ++relayInjections_;
      if (ctrRelayInjected_ != nullptr) ctrRelayInjected_->add();
      DTNCACHE_EVENT(tracer_, obs::EventKind::kRelayInject, t, {"item", item},
                     {"holder", holder}, {"carrier", carrier}, {"target", target},
                     {"version", *held});
    }
  }
}

void HierarchicalRefreshScheme::onNodeStateChanged(cache::CooperativeCache& cache,
                                                   NodeId node, bool up, sim::SimTime t) {
  const auto rate = makeRateFn(cache, t);
  for (data::ItemId item = 0; item < cache.catalog().size(); ++item) {
    if (!cache.isCachingNode(node, item)) continue;
    RefreshHierarchy& h = hierarchies_[item];
    const sim::SimTime tau = cache.catalog().spec(item).refreshPeriod;

    if (!up) {
      if (!h.isMember(node)) continue;
      h.removeMember(node);  // children adopted by the grandparent
      ++churnRepairs_;
      if (ctrChurnRepairs_ != nullptr) ctrChurnRepairs_->add();
      DTNCACHE_EVENT(tracer_, obs::EventKind::kChurnRepair, t, {"item", item},
                     {"node", node}, {"up", false});
    } else {
      if (h.isMember(node)) continue;
      // Re-attach under the live parent with a free slot that maximizes the
      // end-to-end refresh probability. A tree always has a free slot.
      NodeId bestParent = kNoNode;
      double bestScore = -1.0;
      auto consider = [&](NodeId p) {
        if (h.childrenOf(p).size() >= config_.hierarchy.fanoutBound) return;
        auto chain = h.chainRates(p, rate);
        chain.push_back(rate(p, node));
        const double score = chainRefreshProbability(chain, tau);
        if (score > bestScore || (score == bestScore && p < bestParent)) {
          bestScore = score;
          bestParent = p;
        }
      };
      consider(h.root());
      for (NodeId p : h.membersBelowRoot()) consider(p);
      DTNCACHE_CHECK_MSG(bestParent != kNoNode, "no free slot to re-attach node");
      h.addMember(node, bestParent, config_.hierarchy.fanoutBound);
      ++churnRepairs_;
      if (ctrChurnRepairs_ != nullptr) ctrChurnRepairs_->add();
      DTNCACHE_EVENT(tracer_, obs::EventKind::kChurnRepair, t, {"item", item},
                     {"node", node}, {"up", true});
    }
    replan(cache, item, t, rate);
    h.checkInvariants();
  }
}

const RefreshHierarchy& HierarchicalRefreshScheme::hierarchyOf(data::ItemId item) const {
  DTNCACHE_CHECK(item < hierarchies_.size());
  return hierarchies_[item];
}

const ReplicationPlan& HierarchicalRefreshScheme::planOf(data::ItemId item) const {
  DTNCACHE_CHECK(item < plans_.size());
  return plans_[item];
}

}  // namespace dtncache::core
