#include "core/hierarchical_scheme.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/freshness.hpp"
#include "sim/assert.hpp"

namespace dtncache::core {

namespace {

/// Structural equality of two hierarchies: same root, same node set (BFS
/// order compares it canonically) and same parent/children links including
/// child order. Used by rebuilds to keep the old object — and its revision —
/// when a reconstruction lands on the identical tree, so plan keys and event
/// streams do not churn on no-op rebuilds.
bool sameStructure(const RefreshHierarchy& a, const RefreshHierarchy& b) {
  if (a.root() != b.root() || a.memberCount() != b.memberCount()) return false;
  const auto& below = a.membersBelowRoot();
  if (below != b.membersBelowRoot()) return false;
  if (a.childrenOf(a.root()) != b.childrenOf(b.root())) return false;
  for (const NodeId n : below)
    if (a.parentOf(n) != b.parentOf(n) || a.childrenOf(n) != b.childrenOf(n))
      return false;
  return true;
}

}  // namespace

HierarchicalRefreshScheme::HierarchicalRefreshScheme(HierarchicalConfig config,
                                                     const trace::RateMatrix* oracleRates)
    : config_(config), oracleRates_(oracleRates) {
  DTNCACHE_CHECK_MSG(!config_.useOracleRates || oracleRates_ != nullptr,
                     "useOracleRates requires an oracle rate matrix");
  fullMaintenance_ = config_.fullMaintenance;
  if (const char* env = std::getenv("DTNCACHE_FULL_MAINTENANCE");
      env != nullptr && env[0] != '\0')
    fullMaintenance_ = true;
}

void HierarchicalRefreshScheme::setObservability(obs::Tracer* tracer,
                                                 obs::Registry* registry) {
  tracer_ = tracer;
  if (registry == nullptr) {
    ctrMaintenanceRuns_ = nullptr;
    ctrReparents_ = nullptr;
    ctrRelayInjected_ = nullptr;
    ctrChurnRepairs_ = nullptr;
    ctrPlanHelpers_ = nullptr;
    ctrPlanUnmet_ = nullptr;
    ctrDirtyPairs_ = nullptr;
    ctrSkipped_ = nullptr;
    ctrPlanCacheHits_ = nullptr;
    maintenanceTimer_ = nullptr;
    return;
  }
  ctrMaintenanceRuns_ = &registry->counter("core.maintenance.runs");
  ctrReparents_ = &registry->counter("core.reparent.count");
  ctrRelayInjected_ = &registry->counter("core.relay.injected");
  ctrChurnRepairs_ = &registry->counter("core.churn.repairs");
  ctrPlanHelpers_ = &registry->counter("core.plan.helpers");
  ctrPlanUnmet_ = &registry->counter("core.plan.unmet");
  ctrDirtyPairs_ = &registry->counter("core.maintenance.dirty_pairs");
  ctrSkipped_ = &registry->counter("core.maintenance.skipped");
  ctrPlanCacheHits_ = &registry->counter("core.plan.cache_hits");
  maintenanceTimer_ = &registry->timer("core.maintenance");
}

void HierarchicalRefreshScheme::emitPlanOutcome(data::ItemId item, sim::SimTime t,
                                                const ReplicationPlan& plan) {
  if (ctrPlanHelpers_ != nullptr) ctrPlanHelpers_->add(plan.totalAssignments());
  if (ctrPlanUnmet_ != nullptr) ctrPlanUnmet_->add(plan.unmetNodes().size());
  DTNCACHE_EVENT(tracer_, obs::EventKind::kPlan, t, {"item", item},
                 {"helpers", plan.totalAssignments()}, {"unmet", plan.unmetNodes().size()});
}

void HierarchicalRefreshScheme::replayPlan(data::ItemId item, sim::SimTime t,
                                           const ReplicationPlan& plan) {
  for (const ReplicationPlan::Assignment& a : plan.assignmentLog())
    DTNCACHE_EVENT(tracer_, obs::EventKind::kHelperAssign, t, {"item", item},
                   {"target", a.target}, {"helper", a.helper},
                   {"p", a.probabilityAfter});
  emitPlanOutcome(item, t, plan);
}

void HierarchicalRefreshScheme::replan(cache::CooperativeCache& cache, data::ItemId item,
                                       sim::SimTime t, const RateFn& rate,
                                       bool cacheable) {
  const sim::SimTime tau = cache.catalog().spec(item).refreshPeriod;
  ReplicationPlan plan = planReplication(hierarchies_[item], rate, tau,
                                         config_.replication, PlanTrace{tracer_, item, t});
  const ReplicationPlan& stored =
      cacheable && planCacheEnabled()
          ? planCache_.store(item,
                             PlanCache::Key{depVersion(item), hierarchyRev_[item], tau},
                             std::move(plan))
          : planCache_.storeUncached(item, std::move(plan));
  emitPlanOutcome(item, t, stored);
}

RateFn HierarchicalRefreshScheme::planningRateFn() const {
  if (config_.useOracleRates) {
    const trace::RateMatrix* m = oracleRates_;
    return [m](NodeId i, NodeId j) { return m->rate(i, j); };
  }
  const trace::RateMatrix* m = &rateSnapshot_;
  return [m](NodeId i, NodeId j) { return i == j ? 0.0 : m->rate(i, j); };
}

RateFn HierarchicalRefreshScheme::liveRateFn(cache::CooperativeCache& cache,
                                             sim::SimTime t) const {
  if (config_.useOracleRates) {
    const trace::RateMatrix* m = oracleRates_;
    return [m](NodeId i, NodeId j) { return m->rate(i, j); };
  }
  trace::ContactRateEstimator* est = &cache.estimator();
  return [est, t](NodeId i, NodeId j) { return est->rate(i, j, t); };
}

std::uint64_t HierarchicalRefreshScheme::depVersion(data::ItemId item) const {
  if (config_.useOracleRates) return 0;  // oracle rates never move
  std::uint64_t v = 0;
  for (const NodeId n : itemDeps_[item]) v = std::max(v, rowVersion_[n]);
  return v;
}

void HierarchicalRefreshScheme::touchHierarchy(data::ItemId item) {
  ++hierarchyRev_[item];
  repairSettled_[item] = 0;
}

void HierarchicalRefreshScheme::refreshRateState(cache::CooperativeCache& cache,
                                                 sim::SimTime t, bool* nclChanged,
                                                 trace::SnapshotStats* stats) {
  *nclChanged = false;
  *stats = trace::SnapshotStats{};
  if (config_.useOracleRates) {
    planningLive_ = false;  // the oracle matrix is the planning source
    return;                 // constant inputs: nothing to version
  }
  trace::ContactRateEstimator& est = cache.estimator();
  const std::size_t n = cache.nodeCount();
  // Incremental bookkeeping only pays for itself when skips are possible.
  // A cumulative-mode estimator moves every seen pair's rate every tick
  // (rate = count / elapsed), so every item's dependency version changes
  // anyway — don't materialize the matrix or re-select NCLs at all: plan
  // straight from the live estimator exactly as the pre-incremental scheme
  // did, and pessimistically version every row (over-approximating change
  // can only suppress skips, never corrupt one). Plan reuse being disabled
  // (energy weights) degenerates the same way. The branch depends only on
  // the estimator's configuration, so the full-maintenance path takes it
  // identically and outputs cannot differ.
  if (est.config().mode == trace::EstimatorMode::kCumulative || !planCacheEnabled()) {
    stats->dirtyPairs = est.dirtyPairCount() + est.timeVaryingPairCount();
    ++rateVersion_;
    for (auto& v : rowVersion_) v = rateVersion_;
    planningLive_ = true;
    centrality_.invalidate();
    *nclChanged = true;
    return;
  }
  planningLive_ = false;
  // Under the escape hatch, force the full matrix rewrite: values, stats
  // and changed-row reporting are identical by construction, so the
  // sweep-identity CI diff cross-checks the estimator's incremental path.
  *stats = est.snapshotInto(rateSnapshot_, t, &changedNodes_,
                            /*force=*/fullMaintenance_);
  if (stats->changedPairs > 0) {
    ++rateVersion_;
    for (const NodeId nd : changedNodes_) rowVersion_[nd] = rateVersion_;
  }
  // NCL tracking has the same economics post-snapshot: a mostly-changed
  // row set (e.g. the priming snapshot) would refresh nearly every
  // capability, and reporting "changed" merely disables skips this tick.
  if (changedNodes_.size() * 2 >= n) {
    centrality_.invalidate();
    *nclChanged = true;
    return;
  }
  *nclChanged = cache::selectNcls(centrality_, rateSnapshot_,
                                  cache.config().centralityWindow, nclCount_,
                                  changedNodes_);
}

void HierarchicalRefreshScheme::rebuildItem(cache::CooperativeCache& cache,
                                            data::ItemId item, sim::SimTime t) {
  const auto rate = planningLive_ ? liveRateFn(cache, t) : planningRateFn();
  const sim::SimTime tau = cache.catalog().spec(item).refreshPeriod;
  std::vector<NodeId> members;
  for (NodeId n : cache.cachingNodesOf(item))
    if (!live_ || live_(n)) members.push_back(n);
  RefreshHierarchy rebuilt =
      RefreshHierarchy::build(cache.sourceOf(item), members, rate, tau, config_.hierarchy);
  if (!sameStructure(rebuilt, hierarchies_[item])) {
    hierarchies_[item] = std::move(rebuilt);
    touchHierarchy(item);
  }
  replan(cache, item, t, rate, /*cacheable=*/true);
}

void HierarchicalRefreshScheme::localRepairItem(cache::CooperativeCache& cache,
                                                data::ItemId item, sim::SimTime t) {
  const auto rate = planningLive_ ? liveRateFn(cache, t) : planningRateFn();
  const sim::SimTime tau = cache.catalog().spec(item).refreshPeriod;
  RefreshHierarchy& h = hierarchies_[item];

  // Each member independently evaluates its own parent edge — the only
  // structural knowledge a node needs is the candidate parents' chains,
  // which the metadata handshake carries in a deployment. Snapshot the
  // member order: repairs re-parent mid-loop, which invalidates the
  // hierarchy's cached BFS list.
  const std::vector<NodeId> members = h.membersBelowRoot();
  const std::size_t reparentsBefore = reparentCount_;
  for (NodeId n : members) {
    const double current = chainRefreshProbability(h.chainRates(n, rate), tau);
    NodeId bestParent = kNoNode;
    double bestScore = current;
    auto considerParent = [&](NodeId p) {
      if (p == n || p == h.parentOf(n)) return;
      if (h.isAncestor(n, p)) return;  // would create a cycle
      if (h.childrenOf(p).size() >= config_.hierarchy.fanoutBound) return;
      auto chain = h.chainRates(p, rate);
      chain.push_back(rate(p, n));
      const double score = chainRefreshProbability(chain, tau);
      if (score > bestScore) {
        bestScore = score;
        bestParent = p;
      }
    };
    considerParent(h.root());
    for (NodeId p : h.membersBelowRoot()) considerParent(p);

    if (bestParent != kNoNode &&
        bestScore >= current * (1.0 + config_.repairImprovement)) {
      h.reparent(n, bestParent, config_.hierarchy.fanoutBound);
      touchHierarchy(item);
      ++reparentCount_;
      if (ctrReparents_ != nullptr) ctrReparents_->add();
      DTNCACHE_EVENT(tracer_, obs::EventKind::kReparent, t, {"item", item}, {"node", n},
                     {"parent", bestParent});
    }
  }
  // A pass that moved nothing is a fixed point of this (structure, rates)
  // input: until either moves again, repeating the pass is provably a no-op
  // and the maintenance tick may skip it.
  repairSettled_[item] = reparentsBefore == reparentCount_ ? 1 : 0;
  replan(cache, item, t, rate, /*cacheable=*/true);
}

void HierarchicalRefreshScheme::maintainItem(cache::CooperativeCache& cache,
                                             data::ItemId item, sim::SimTime t,
                                             bool allowSkip, std::size_t& skipped) {
  const std::uint64_t dep = depVersion(item);
  const sim::SimTime tau = cache.catalog().spec(item).refreshPeriod;
  // Reuse is sound only when every maintenance input is provably unchanged
  // since this item's last evaluation: its dependency rows (dep version),
  // its tree (revision — churn repairs bump it), the NCL set (allowSkip),
  // and — for local repair — the pass being at a fixed point already.
  const bool mayReuse =
      allowSkip && planCacheEnabled() && haveMaintState_[item] != 0 &&
      dep == lastMaintDep_[item] && hierarchyRev_[item] == lastMaintRev_[item] &&
      (config_.maintenance != MaintenanceMode::kLocalRepair || repairSettled_[item] != 0);
  const ReplicationPlan* hit =
      mayReuse ? planCache_.find(item, PlanCache::Key{dep, hierarchyRev_[item], tau})
               : nullptr;
  if (hit != nullptr) {
    ++planCacheHits_;
    if (ctrPlanCacheHits_ != nullptr) ctrPlanCacheHits_->add();
    ++skipped;
    if (!fullMaintenance_) {
      // Incremental fast path: the tree is untouched and the cached plan is
      // replayed — events and counters exactly as a recompute would emit.
      replayPlan(item, t, *hit);
      return;
    }
  }

  // Recompute: an incremental miss, or the full-maintenance escape hatch
  // (which recomputes even on a hit, then verifies the cache was right).
  ReplicationPlan cachedCopy;
  const bool verify = fullMaintenance_ && hit != nullptr;
  if (verify) cachedCopy = *hit;  // `hit` dangles once replan restores
  switch (config_.maintenance) {
    case MaintenanceMode::kRebuild:
      rebuildItem(cache, item, t);
      break;
    case MaintenanceMode::kLocalRepair:
      localRepairItem(cache, item, t);
      break;
    case MaintenanceMode::kStatic:
      break;  // unreachable: kStatic schedules no maintenance
  }
  hierarchies_[item].checkInvariants();
  lastMaintDep_[item] = dep;
  lastMaintRev_[item] = hierarchyRev_[item];
  haveMaintState_[item] = 1;
  if (verify)
    DTNCACHE_CHECK_MSG(planCache_.planOf(item).sameAs(cachedCopy),
                       "full-maintenance check: cached plan diverged for item " << item);
}

void HierarchicalRefreshScheme::runMaintenance(cache::CooperativeCache& cache,
                                               sim::SimTime t) {
  ++maintenanceRuns_;
  if (ctrMaintenanceRuns_ != nullptr) ctrMaintenanceRuns_->add();
  obs::ScopedTimer timed(maintenanceTimer_);
  const std::size_t reparentsBefore = reparentCount_;

  bool nclChanged = false;
  trace::SnapshotStats stats;
  refreshRateState(cache, t, &nclChanged, &stats);
  if (ctrDirtyPairs_ != nullptr) ctrDirtyPairs_->add(stats.dirtyPairs);

  // An NCL-set move is a global invalidation: caching sets were derived
  // from it, so no item may reuse state across it. (The caching sets
  // themselves are fixed per run; this mirrors a deployment re-checking its
  // placement inputs before trusting incremental state.)
  const bool allowSkip = !nclChanged;
  std::size_t skipped = 0;
  for (data::ItemId item = 0; item < cache.catalog().size(); ++item)
    maintainItem(cache, item, t, allowSkip, skipped);
  skippedItems_ += skipped;
  if (ctrSkipped_ != nullptr) ctrSkipped_->add(skipped);

  DTNCACHE_EVENT(tracer_, obs::EventKind::kMaintenance, t,
                 {"items", cache.catalog().size()},
                 {"reparented", reparentCount_ - reparentsBefore});
}

void HierarchicalRefreshScheme::onStart(cache::CooperativeCache& cache) {
  const sim::SimTime now = cache.simulator().now();
  const std::size_t items = cache.catalog().size();
  hierarchies_.clear();
  hierarchies_.resize(items);
  planCache_.resize(items);
  hierarchyRev_.assign(items, 0);
  repairSettled_.assign(items, 0);
  lastMaintDep_.assign(items, 0);
  lastMaintRev_.assign(items, 0);
  haveMaintState_.assign(items, 0);
  rowVersion_.assign(cache.nodeCount(), 0);
  rateVersion_ = 0;
  centrality_.setNeighborCap(config_.centralityNeighborCap);
  centrality_.invalidate();

  // Dependency rows per item: the caching set plus the source. Fixed for
  // the run (the cooperative cache pins caching sets at start), so equal
  // row versions across these nodes prove an item's planning inputs —
  // member rates and every chain/candidate rate between them — unchanged.
  itemDeps_.assign(items, {});
  const cache::CoopCacheConfig& ccfg = cache.config();
  std::size_t maxSetSize = 0;
  for (data::ItemId item = 0; item < items; ++item) {
    auto& deps = itemDeps_[item];
    const auto& cachingNodes = cache.cachingNodesOf(item);
    deps.assign(cachingNodes.begin(), cachingNodes.end());
    const NodeId source = cache.sourceOf(item);
    if (std::find(deps.begin(), deps.end(), source) == deps.end())
      deps.push_back(source);
    maxSetSize = std::max(maxSetSize, ccfg.cachingNodesPerItemOverride.empty()
                                          ? ccfg.cachingNodesPerItem
                                          : ccfg.cachingNodesPerItemOverride[item]);
  }
  // NCL change detection watches the same selection the cooperative cache
  // derived the caching sets from at construction.
  nclCount_ = std::min(cache.nodeCount(), maxSetSize + 1);

  bool nclChanged = false;
  trace::SnapshotStats stats;
  refreshRateState(cache, now, &nclChanged, &stats);
  for (data::ItemId item = 0; item < items; ++item) {
    rebuildItem(cache, item, now);
    lastMaintDep_[item] = depVersion(item);
    lastMaintRev_[item] = hierarchyRev_[item];
    haveMaintState_[item] = config_.maintenance == MaintenanceMode::kRebuild ? 1 : 0;
  }

  if (config_.maintenance != MaintenanceMode::kStatic) {
    cache.simulator().schedulePeriodic(
        config_.maintenancePeriod,
        [this, &cache](sim::SimTime t) { runMaintenance(cache, t); },
        config_.maintenancePeriod, timerScope(cache::TimerKind::kMaintenance));
  }
}

bool HierarchicalRefreshScheme::responsible(data::ItemId item, NodeId refresher,
                                            NodeId target) const {
  const RefreshHierarchy& h = hierarchies_[item];
  if (!h.isMember(refresher) || !h.isMember(target)) return false;
  return h.isResponsible(refresher, target) ||
         planCache_.planOf(item).isHelper(refresher, target);
}

void HierarchicalRefreshScheme::onContact(cache::CooperativeCache& cache, NodeId a, NodeId b,
                                          sim::SimTime t, net::ContactChannel& channel) {
  const std::size_t items = cache.catalog().size();
  for (data::ItemId item = 0; item < items; ++item) {
    const auto va = cache.heldVersion(a, item, t);
    const auto vb = cache.heldVersion(b, item, t);
    if (va && (!vb || *va > *vb) && responsible(item, a, b))
      cache.pushVersion(a, b, item, t, channel, net::Traffic::kRefresh);
    else if (vb && (!va || *vb > *va) && responsible(item, b, a))
      cache.pushVersion(b, a, item, t, channel, net::Traffic::kRefresh);
  }
  if (config_.relayAssisted) {
    injectRelays(cache, a, b, t, channel);
    injectRelays(cache, b, a, t, channel);
  }
}

void HierarchicalRefreshScheme::targetsOf(data::ItemId item, NodeId refresher,
                                          std::vector<NodeId>& out) const {
  out.clear();
  const RefreshHierarchy& h = hierarchies_[item];
  if (!h.isMember(refresher)) return;
  const auto& children = h.childrenOf(refresher);
  out.insert(out.end(), children.begin(), children.end());
  const ReplicationPlan& plan = planCache_.planOf(item);
  for (NodeId n : h.membersBelowRoot())
    if (plan.isHelper(refresher, n)) out.push_back(n);
}

void HierarchicalRefreshScheme::injectRelays(cache::CooperativeCache& cache, NodeId holder,
                                             NodeId carrier, sim::SimTime t,
                                             net::ContactChannel& channel) {
  // Energy-aware: a nearly-drained carrier is not volunteered for relay
  // duty (it would pay rx now and tx at delivery).
  if (nodeWeight_ && nodeWeight_(carrier) < config_.minRelayCarrierBattery) return;
  const auto& fwd = cache.config().forwarding;
  const std::size_t items = cache.catalog().size();
  for (data::ItemId item = 0; item < items; ++item) {
    const auto held = cache.heldVersion(holder, item, t);
    if (!held) continue;
    const sim::SimTime tau = cache.catalog().spec(item).refreshPeriod;
    targetsOf(item, holder, targetsScratch_);
    for (NodeId target : targetsScratch_) {
      if (target == carrier) continue;  // direct push already handled
      const auto targetHeld = cache.heldVersion(target, item, t);
      if (targetHeld && *targetHeld >= *held) continue;

      // Strong direct edges need no relay help — save the bandwidth.
      const double mine = cache.estimator().rate(holder, target, t);
      if (trace::contactProbability(mine, tau) >= config_.relayWhenDirectBelow) continue;

      // Only hand to a strictly better carrier toward the target.
      const double theirs = cache.estimator().rate(carrier, target, t);
      if (!(theirs > mine * fwd.improvementFactor && theirs > 0.0)) continue;

      const std::uint64_t key = (static_cast<std::uint64_t>(item) << 44) ^
                                (static_cast<std::uint64_t>(target) << 32) ^
                                (*held & 0xffffffffull);
      std::uint32_t& used = relayBudgetSlot(key);
      if (used >= config_.relayCopiesPerVersion) continue;

      // Skip if the carrier already holds an equivalent copy in its buffer.
      bool duplicate = false;
      const net::MessageBuffer& carrierBuf = cache.bufferOf(carrier);
      for (std::uint32_t s = carrierBuf.firstSlot(); s != net::MessageBuffer::kNil;
           s = carrierBuf.nextSlot(s)) {
        const net::Message& m = carrierBuf.at(s);
        if (m.kind == net::MessageKind::kDataCopy && m.item == item && m.dst == target &&
            m.version >= *held) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;

      net::Message m;
      m.kind = net::MessageKind::kDataCopy;
      m.item = item;
      m.version = *held;
      m.dst = target;
      m.origin = holder;
      m.createdAt = t;
      m.deadline = t + config_.relayTtlFactor * tau;
      m.copiesLeft = 1;  // the bounded-replication budget is `used`, not spray
      m.payloadBytes = cache.catalog().spec(item).sizeBytes;
      m.category = net::Traffic::kRefresh;
      if (!channel.transfer(net::Traffic::kRefresh, m.wireBytes(), holder)) return;
      cache.injectMessage(carrier, m, t);
      ++used;
      ++relayInjections_;
      if (ctrRelayInjected_ != nullptr) ctrRelayInjected_->add();
      DTNCACHE_EVENT(tracer_, obs::EventKind::kRelayInject, t, {"item", item},
                     {"holder", holder}, {"carrier", carrier}, {"target", target},
                     {"version", *held});
    }
  }
}

void HierarchicalRefreshScheme::onNodeStateChanged(cache::CooperativeCache& cache,
                                                   NodeId node, bool up, sim::SimTime t) {
  // Event-driven repairs run between ticks, so they plan from the live
  // estimator (not the tick snapshot) exactly as before incremental
  // maintenance; the revision bump forces the next tick to re-evaluate.
  const auto rate = liveRateFn(cache, t);
  for (data::ItemId item = 0; item < cache.catalog().size(); ++item) {
    if (!cache.isCachingNode(node, item)) continue;
    RefreshHierarchy& h = hierarchies_[item];
    const sim::SimTime tau = cache.catalog().spec(item).refreshPeriod;

    if (!up) {
      if (!h.isMember(node)) continue;
      h.removeMember(node);  // children adopted by the grandparent
      touchHierarchy(item);
      ++churnRepairs_;
      if (ctrChurnRepairs_ != nullptr) ctrChurnRepairs_->add();
      DTNCACHE_EVENT(tracer_, obs::EventKind::kChurnRepair, t, {"item", item},
                     {"node", node}, {"up", false});
    } else {
      if (h.isMember(node)) continue;
      // Re-attach under the live parent with a free slot that maximizes the
      // end-to-end refresh probability. A tree always has a free slot.
      NodeId bestParent = kNoNode;
      double bestScore = -1.0;
      auto consider = [&](NodeId p) {
        if (h.childrenOf(p).size() >= config_.hierarchy.fanoutBound) return;
        auto chain = h.chainRates(p, rate);
        chain.push_back(rate(p, node));
        const double score = chainRefreshProbability(chain, tau);
        if (score > bestScore || (score == bestScore && p < bestParent)) {
          bestScore = score;
          bestParent = p;
        }
      };
      consider(h.root());
      for (NodeId p : h.membersBelowRoot()) consider(p);
      DTNCACHE_CHECK_MSG(bestParent != kNoNode, "no free slot to re-attach node");
      h.addMember(node, bestParent, config_.hierarchy.fanoutBound);
      touchHierarchy(item);
      ++churnRepairs_;
      if (ctrChurnRepairs_ != nullptr) ctrChurnRepairs_->add();
      DTNCACHE_EVENT(tracer_, obs::EventKind::kChurnRepair, t, {"item", item},
                     {"node", node}, {"up", true});
    }
    replan(cache, item, t, rate, /*cacheable=*/false);
    h.checkInvariants();
  }
}

const RefreshHierarchy& HierarchicalRefreshScheme::hierarchyOf(data::ItemId item) const {
  DTNCACHE_CHECK(item < hierarchies_.size());
  return hierarchies_[item];
}

const ReplicationPlan& HierarchicalRefreshScheme::planOf(data::ItemId item) const {
  return planCache_.planOf(item);
}

}  // namespace dtncache::core
