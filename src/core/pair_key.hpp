#pragma once

/// \file pair_key.hpp
/// Packed 64-bit pair keys: the one-word encoding of an (a, b) id pair that
/// hashes in a single op and sorts exactly like the tuple (a, b).
///
/// Three layers key sparse per-pair state this way — trace analysis drains
/// per-pair statistics in sorted-key order (deterministic FP accumulation),
/// the contact-rate estimator indexes its pair table, and the cooperative
/// cache dedups (query, node) reply pairs — so the helper lives here, at
/// the bottom of the include graph (header-only, no dependencies), instead
/// of being re-derived at each site.

#include <cstdint>

namespace dtncache::core {

/// Ordered pack: `hi` in the high word. Sorts like the tuple (hi, lo).
inline constexpr std::uint64_t packPair(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

/// Symmetric pack: min(a, b) in the high word, so (a, b) and (b, a) map to
/// the same key and keys sort like the normalized (min, max) tuple.
inline constexpr std::uint64_t packSymmetricPair(std::uint32_t a, std::uint32_t b) {
  return a < b ? packPair(a, b) : packPair(b, a);
}

inline constexpr std::uint32_t pairHigh(std::uint64_t key) {
  return static_cast<std::uint32_t>(key >> 32);
}

inline constexpr std::uint32_t pairLow(std::uint64_t key) {
  return static_cast<std::uint32_t>(key);
}

}  // namespace dtncache::core
