#include "core/freshness.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::core {
namespace {

/// Nudge coinciding rates apart so the distinct-rate closed form applies.
void separateRates(std::vector<double>& rates) {
  std::sort(rates.begin(), rates.end());
  constexpr double kRelGap = 1e-7;
  for (std::size_t i = 1; i < rates.size(); ++i) {
    const double minNext = rates[i - 1] * (1.0 + kRelGap);
    if (rates[i] < minNext) rates[i] = minNext;
  }
}

/// Coefficients w_i = Π_{j≠i} r_j / (r_j − r_i) of the hypoexponential
/// survival function S(t) = Σ_i w_i e^{−r_i t}.
std::vector<double> survivalWeights(const std::vector<double>& rates) {
  std::vector<double> w(rates.size(), 1.0);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    for (std::size_t j = 0; j < rates.size(); ++j) {
      if (j == i) continue;
      w[i] *= rates[j] / (rates[j] - rates[i]);
    }
  }
  return w;
}

}  // namespace

HypoexpCdf::HypoexpCdf(std::vector<double> rates) : rates_(std::move(rates)) {
  for (double r : rates_) {
    DTNCACHE_CHECK(r >= 0.0);
    if (r == 0.0) dead_ = true;  // a dead link never delivers
  }
  if (!dead_ && rates_.size() >= 2) {
    separateRates(rates_);
    weights_ = survivalWeights(rates_);
  }
}

double HypoexpCdf::cdf(double t) const {
  DTNCACHE_CHECK(t >= 0.0);
  if (rates_.empty()) return 1.0;
  if (dead_) return 0.0;
  if (rates_.size() == 1) return 1.0 - std::exp(-rates_[0] * t);

  double survival = 0.0;
  for (std::size_t i = 0; i < rates_.size(); ++i)
    survival += weights_[i] * std::exp(-rates_[i] * t);
  return std::clamp(1.0 - survival, 0.0, 1.0);
}

double HypoexpCdf::truncatedMean(double horizon) const {
  DTNCACHE_CHECK(horizon >= 0.0);
  if (rates_.empty()) return 0.0;
  if (dead_) return horizon;  // never arrives: full staleness
  // E[min(D, H)] = ∫₀ᴴ S(t) dt with S(t) = Σ_i w_i e^{−r_i t}
  //              = Σ_i (w_i / r_i)(1 − e^{−r_i H}).
  if (rates_.size() == 1) {
    const double r = rates_[0];
    return (1.0 - std::exp(-r * horizon)) / r;
  }
  double integral = 0.0;
  for (std::size_t i = 0; i < rates_.size(); ++i)
    integral += (weights_[i] / rates_[i]) * (1.0 - std::exp(-rates_[i] * horizon));
  return std::clamp(integral, 0.0, horizon);
}

double hypoexponentialCdf(std::vector<double> rates, double t) {
  return HypoexpCdf(std::move(rates)).cdf(t);
}

double expectedDelayTruncated(std::vector<double> rates, double horizon) {
  return HypoexpCdf(std::move(rates)).truncatedMean(horizon);
}

double expectedFreshFraction(const std::vector<double>& chainRates, sim::SimTime tau) {
  DTNCACHE_CHECK(tau > 0.0);
  const double meanStale = expectedDelayTruncated(chainRates, tau);
  return (tau - meanStale) / tau;
}

double combinedRefreshProbability(double chainProbability,
                                  const std::vector<double>& helperContributions) {
  DTNCACHE_CHECK(chainProbability >= 0.0 && chainProbability <= 1.0);
  double notRefreshed = 1.0 - chainProbability;
  for (double h : helperContributions) {
    DTNCACHE_CHECK(h >= 0.0 && h <= 1.0);
    notRefreshed *= 1.0 - h;
  }
  return 1.0 - notRefreshed;
}

double helperContribution(const std::vector<double>& helperChainRates, double rateToTarget,
                          sim::SimTime tau) {
  return helperContribution(HypoexpCdf(helperChainRates), rateToTarget, tau);
}

double helperContribution(const HypoexpCdf& helperChain, double rateToTarget,
                          sim::SimTime tau) {
  DTNCACHE_CHECK(rateToTarget >= 0.0);
  DTNCACHE_CHECK(tau > 0.0);
  const double helperFreshInTime = helperChain.cdf(tau / 2.0);
  const double reachesTarget = trace::contactProbability(rateToTarget, tau / 2.0);
  return helperFreshInTime * reachesTarget;
}

}  // namespace dtncache::core
