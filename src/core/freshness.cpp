#include "core/freshness.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::core {
namespace {

/// Nudge coinciding rates apart so the distinct-rate closed form applies.
void separateRates(std::vector<double>& rates) {
  std::sort(rates.begin(), rates.end());
  constexpr double kRelGap = 1e-7;
  for (std::size_t i = 1; i < rates.size(); ++i) {
    const double minNext = rates[i - 1] * (1.0 + kRelGap);
    if (rates[i] < minNext) rates[i] = minNext;
  }
}

/// Coefficients w_i = Π_{j≠i} r_j / (r_j − r_i) of the hypoexponential
/// survival function S(t) = Σ_i w_i e^{−r_i t}, written into `w` (capacity
/// reused across calls). The j≠i loop is split into its j<i and j>i halves:
/// same ascending-j multiplication order as the skip-one loop, so every
/// weight is bit-identical, but the inner loops are branch-free and the
/// product accumulates in a register instead of through w[i].
void survivalWeightsInto(const std::vector<double>& rates, std::vector<double>& w) {
  const std::size_t n = rates.size();
  w.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ri = rates[i];
    double wi = 1.0;
    for (std::size_t j = 0; j < i; ++j) wi *= rates[j] / (rates[j] - ri);
    for (std::size_t j = i + 1; j < n; ++j) wi *= rates[j] / (rates[j] - ri);
    w[i] = wi;
  }
}

}  // namespace

HypoexpCdf::HypoexpCdf(std::vector<double> rates) { assign(std::move(rates)); }

void HypoexpCdf::assign(std::vector<double> rates) {
  rates_ = std::move(rates);
  weights_.clear();
  dead_ = false;
  for (double r : rates_) {
    DTNCACHE_CHECK(r >= 0.0);
    if (r == 0.0) dead_ = true;  // a dead link never delivers
  }
  if (!dead_ && rates_.size() >= 2) {
    separateRates(rates_);
    survivalWeightsInto(rates_, weights_);
  }
}

double HypoexpCdf::cdf(double t) const {
  DTNCACHE_CHECK(t >= 0.0);
  if (rates_.empty()) return 1.0;
  if (dead_) return 0.0;
  if (rates_.size() == 1) return 1.0 - std::exp(-rates_[0] * t);

  double survival = 0.0;
  for (std::size_t i = 0; i < rates_.size(); ++i)
    survival += weights_[i] * std::exp(-rates_[i] * t);
  return std::clamp(1.0 - survival, 0.0, 1.0);
}

double HypoexpCdf::truncatedMean(double horizon) const {
  DTNCACHE_CHECK(horizon >= 0.0);
  if (rates_.empty()) return 0.0;
  if (dead_) return horizon;  // never arrives: full staleness
  // E[min(D, H)] = ∫₀ᴴ S(t) dt with S(t) = Σ_i w_i e^{−r_i t}
  //              = Σ_i (w_i / r_i)(1 − e^{−r_i H}).
  if (rates_.size() == 1) {
    const double r = rates_[0];
    return (1.0 - std::exp(-r * horizon)) / r;
  }
  double integral = 0.0;
  for (std::size_t i = 0; i < rates_.size(); ++i)
    integral += (weights_[i] / rates_[i]) * (1.0 - std::exp(-rates_[i] * horizon));
  return std::clamp(integral, 0.0, horizon);
}

namespace {

/// Per-thread prepared-distribution scratch for the one-shot free
/// functions: assign() reuses the weight buffer, so a planning loop that
/// calls them in bulk allocates only its own rate vectors.
HypoexpCdf& scratchCdf(std::vector<double>&& rates) {
  thread_local HypoexpCdf scratch;
  scratch.assign(std::move(rates));
  return scratch;
}

}  // namespace

double hypoexponentialCdf(std::vector<double> rates, double t) {
  return scratchCdf(std::move(rates)).cdf(t);
}

double expectedDelayTruncated(std::vector<double> rates, double horizon) {
  return scratchCdf(std::move(rates)).truncatedMean(horizon);
}

double expectedFreshFraction(const std::vector<double>& chainRates, sim::SimTime tau) {
  DTNCACHE_CHECK(tau > 0.0);
  const double meanStale = expectedDelayTruncated(chainRates, tau);
  return (tau - meanStale) / tau;
}

double combinedRefreshProbability(double chainProbability,
                                  const std::vector<double>& helperContributions) {
  DTNCACHE_CHECK(chainProbability >= 0.0 && chainProbability <= 1.0);
  double notRefreshed = 1.0 - chainProbability;
  for (double h : helperContributions) {
    DTNCACHE_CHECK(h >= 0.0 && h <= 1.0);
    notRefreshed *= 1.0 - h;
  }
  return 1.0 - notRefreshed;
}

double helperContribution(const std::vector<double>& helperChainRates, double rateToTarget,
                          sim::SimTime tau) {
  return helperContribution(HypoexpCdf(helperChainRates), rateToTarget, tau);
}

double helperContribution(const HypoexpCdf& helperChain, double rateToTarget,
                          sim::SimTime tau) {
  DTNCACHE_CHECK(rateToTarget >= 0.0);
  DTNCACHE_CHECK(tau > 0.0);
  const double helperFreshInTime = helperChain.cdf(tau / 2.0);
  const double reachesTarget = trace::contactProbability(rateToTarget, tau / 2.0);
  return helperFreshInTime * reachesTarget;
}

}  // namespace dtncache::core
