#pragma once

/// \file crc32.hpp
/// CRC-32 (IEEE 802.3 polynomial, reflected) plus little-endian integer
/// put/read helpers — the record-guarding primitives shared by every
/// append-only/checkpoint format in the tree. `peer::DiskStore`'s log and
/// the sweep engine's result fragments both frame records as
/// `length | crc | body` with these exact routines, so a torn or bit-flipped
/// record is detected identically everywhere. Table built once at first use;
/// no zlib dependency so the formats work in any build configuration.

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace dtncache::core {

inline const std::array<std::uint32_t, 256>& crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

inline std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  const auto& table = crc32Table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

inline void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::uint32_t readU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t readU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace dtncache::core
