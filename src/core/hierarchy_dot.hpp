#pragma once

/// \file hierarchy_dot.hpp
/// Graphviz export of a refresh hierarchy (and its replication plan).
///
/// Tree edges are solid and labeled with the single-hop refresh probability
/// 1 − e^{−λτ}; helper assignments are dashed. Render with
/// `dot -Tpng hierarchy.dot -o hierarchy.png`.

#include <string>

#include "core/hierarchy.hpp"
#include "core/replication.hpp"

namespace dtncache::core {

struct DotOptions {
  /// Label edges with refresh probabilities (needs rate + tau).
  bool edgeLabels = true;
  std::string graphName = "refresh_hierarchy";
};

/// `plan` may be null (tree only). `rate` is used for edge labels.
std::string toDot(const RefreshHierarchy& hierarchy, const ReplicationPlan* plan,
                  const RateFn& rate, sim::SimTime tau, const DotOptions& options = {});

}  // namespace dtncache::core
