#pragma once

/// \file plan_cache.hpp
/// Keyed per-item cache of replication plans.
///
/// Maintenance recomputes an item's ReplicationPlan only when something it
/// depends on moved: the rate state of the item's member rows (captured as
/// the versioned-rate `rateVersion`), the structure of its hierarchy
/// (`hierarchyRev`), or the item's freshness period τ. This cache stores the
/// current plan of every item in a dense pooled slot (one plan per item —
/// the per-contact hot path reads `planOf(item)` as a single indexed load,
/// exactly like the plans vector it replaces) plus a SlotIndex from a packed
/// (item, key-hash) word to the slot, following the PR 4 flat-store pattern.
/// A probe is one hash lookup plus a full-key validation in the slot, so a
/// maintenance tick whose dependencies are unchanged costs a lookup instead
/// of a replan; hash collisions in the mixed low word can only cause a miss
/// (the full key is re-checked), never a false hit.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "core/pair_key.hpp"
#include "core/replication.hpp"
#include "core/slot_index.hpp"
#include "sim/assert.hpp"
#include "sim/time.hpp"

namespace dtncache::core {

class PlanCache {
 public:
  /// Everything a stored plan depends on. Two equal keys for one item imply
  /// the recomputed plan would be identical (same member rates, same tree,
  /// same τ), so the cached plan can be replayed verbatim.
  struct Key {
    std::uint64_t rateVersion = 0;   ///< max row version over the item's dep set
    std::uint64_t hierarchyRev = 0;  ///< structural revision of the item's tree
    sim::SimTime tau = 0.0;          ///< item freshness period

    bool operator==(const Key& o) const {
      return rateVersion == o.rateVersion && hierarchyRev == o.hierarchyRev &&
             tau == o.tau;
    }
  };

  /// Size the slot pool (one slot per item) and drop any existing entries.
  void resize(std::size_t items) {
    slots_.assign(items, Slot{});
    index_.clear();
  }

  std::size_t itemCount() const { return slots_.size(); }

  /// The cached plan for `item` under `key`, or nullptr on a miss (no keyed
  /// entry, or the dependencies moved since it was stored). Allocation-free.
  const ReplicationPlan* find(std::uint32_t item, const Key& key) const {
    if (item >= slots_.size()) return nullptr;
    const std::uint32_t slot = index_.find(packedKey(item, key));
    if (slot == SlotIndex::kNoSlot) return nullptr;
    DTNCACHE_CHECK(slot == item);  // item occupies the high word of the key
    const Slot& s = slots_[slot];
    return s.keyed && s.key == key ? &s.plan : nullptr;
  }

  /// Store `plan` as the current plan of `item`, keyed for later lookup.
  /// Replaces (and unindexes) whatever the slot held. Returns the stored
  /// plan (stable address until the next store to this item).
  ReplicationPlan& store(std::uint32_t item, const Key& key, ReplicationPlan&& plan) {
    Slot& s = slotOf(item);
    s.plan = std::move(plan);
    s.key = key;
    s.packedKey = packedKey(item, key);
    index_.insert(s.packedKey, item);
    s.keyed = true;
    return s.plan;
  }

  /// Store `plan` without a key — used for plans produced outside the
  /// versioned maintenance path (churn repairs), which must not be reused
  /// until the next full evaluation re-keys the item.
  ReplicationPlan& storeUncached(std::uint32_t item, ReplicationPlan&& plan) {
    Slot& s = slotOf(item);
    s.plan = std::move(plan);
    return s.plan;
  }

  /// The item's current plan, keyed or not — the per-contact read path.
  const ReplicationPlan& planOf(std::uint32_t item) const {
    DTNCACHE_CHECK(item < slots_.size());
    return slots_[item].plan;
  }

  /// Whether the item's current plan is keyed (reusable on a key match).
  bool isKeyed(std::uint32_t item) const {
    return item < slots_.size() && slots_[item].keyed;
  }

 private:
  struct Slot {
    bool keyed = false;
    std::uint64_t packedKey = 0;
    Key key;
    ReplicationPlan plan;
  };

  Slot& slotOf(std::uint32_t item) {
    DTNCACHE_CHECK(item < slots_.size());
    Slot& s = slots_[item];
    if (s.keyed) {
      index_.erase(s.packedKey);
      s.keyed = false;
    }
    return s;
  }

  /// Item id in the high word (items can never collide with each other), a
  /// mixed hash of the key fields in the low word. The SlotIndex reserves
  /// the all-ones word as its empty sentinel, so steer clear of it.
  static std::uint64_t packedKey(std::uint32_t item, const Key& k) {
    std::uint64_t h = k.rateVersion * 0x9e3779b97f4a7c15ULL;
    h ^= (k.hierarchyRev + 0x9e3779b9ULL) * 0xbf58476d1ce4e5b9ULL;
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t tauBits = 0;
    std::memcpy(&tauBits, &k.tau, sizeof(tauBits));
    h ^= tauBits * 0x94d049bb133111ebULL;
    h ^= h >> 32;
    std::uint64_t packed = packPair(item, static_cast<std::uint32_t>(h));
    if (packed == static_cast<std::uint64_t>(-1)) --packed;
    return packed;
  }

  SlotIndex index_;
  std::vector<Slot> slots_;
};

}  // namespace dtncache::core
