#include "core/replication.hpp"

#include <algorithm>
#include <optional>

#include "core/freshness.hpp"
#include "sim/assert.hpp"

namespace dtncache::core {

const std::vector<NodeId> ReplicationPlan::kEmpty{};

double ReplicationPlan::predictedProbability(NodeId target) const {
  DTNCACHE_CHECK_MSG(target < predicted_.size() && predicted_[target] >= 0.0,
                     "no prediction for node " << target);
  return predicted_[target];
}

bool ReplicationPlan::sameAs(const ReplicationPlan& other) const {
  if (helpers_ != other.helpers_ || predicted_ != other.predicted_ ||
      unmet_ != other.unmet_ || totalAssignments_ != other.totalAssignments_ ||
      log_.size() != other.log_.size())
    return false;
  for (std::size_t i = 0; i < log_.size(); ++i) {
    const Assignment& a = log_[i];
    const Assignment& b = other.log_[i];
    if (a.target != b.target || a.helper != b.helper ||
        a.probabilityAfter != b.probabilityAfter)
      return false;
  }
  return true;
}

ReplicationPlan planReplication(const RefreshHierarchy& hierarchy, const RateFn& rate,
                                sim::SimTime tau, const ReplicationConfig& config,
                                const PlanTrace& trace) {
  DTNCACHE_CHECK(config.theta >= 0.0 && config.theta <= 1.0);
  DTNCACHE_CHECK(tau > 0.0);

  ReplicationPlan plan;
  const auto& members = hierarchy.membersBelowRoot();

  // One prepared CDF per distinct chain: every node below θ evaluates every
  // other member as a helper candidate, so without this cache the O(k²)
  // survival-weight products behind hypoexponentialCdf are recomputed for
  // each (target, candidate) pairing. Prepared once per node, the τ and τ/2
  // evaluations reuse the partial products. Bit-identical to the uncached
  // closed form (HypoexpCdf performs the exact same operations). Node ids
  // are dense (they index the trace's node table), so a flat vector beats
  // the hash map this used to be: one indexed load per chain lookup.
  NodeId maxId = hierarchy.root();
  for (NodeId m : members) maxId = std::max(maxId, m);
  std::vector<std::optional<HypoexpCdf>> chainCdf(static_cast<std::size_t>(maxId) + 1);
  const auto chainOf = [&](NodeId n) -> const HypoexpCdf& {
    auto& slot = chainCdf[n];
    if (!slot) slot.emplace(hierarchy.chainRates(n, rate));
    return *slot;
  };

  for (NodeId target : members) {
    const double chainP = chainOf(target).cdf(tau);
    double combined = chainP;
    std::vector<NodeId>& assigned = plan.helperSlot(target);

    if (config.enabled && chainP < config.theta) {
      // Candidates: every member (root included) except the target, its
      // parent (already the primary refresher), and the target's own
      // descendants (they get fresh *through* the target — circular).
      struct Candidate {
        NodeId node;
        double contribution;
        double rateToTarget;
      };
      std::vector<Candidate> candidates;
      auto consider = [&](NodeId k) {
        if (k == target || k == hierarchy.parentOf(target)) return;
        if (hierarchy.isAncestor(target, k)) return;
        const double r = rate(k, target);
        if (r <= 0.0) return;
        const double h = helperContribution(chainOf(k), r, tau);
        if (h <= 0.0) return;
        candidates.push_back({k, h, r});
      };
      consider(hierarchy.root());
      for (NodeId k : members) consider(k);

      auto rankingKey = [&config](const Candidate& c) {
        double key = config.order == HelperOrder::kBestContribution ? c.contribution
                                                                    : c.rateToTarget;
        if (config.helperWeight) key *= config.helperWeight(c.node);
        return key;
      };
      std::sort(candidates.begin(), candidates.end(),
                [&rankingKey](const Candidate& a, const Candidate& b) {
                  const double ka = rankingKey(a);
                  const double kb = rankingKey(b);
                  if (ka != kb) return ka > kb;
                  return a.node < b.node;  // deterministic
                });

      std::vector<double> contributions;
      for (const Candidate& c : candidates) {
        if (assigned.size() >= config.maxHelpersPerNode) break;
        if (combined >= config.theta) break;
        assigned.push_back(c.node);
        contributions.push_back(c.contribution);
        combined = combinedRefreshProbability(chainP, contributions);
        plan.log_.push_back({target, c.node, combined});
        DTNCACHE_EVENT(trace.tracer, obs::EventKind::kHelperAssign, trace.now,
                       {"item", trace.item}, {"target", target}, {"helper", c.node},
                       {"p", combined});
      }
      plan.totalAssignments_ += assigned.size();
    }

    if (target >= plan.predicted_.size()) plan.predicted_.resize(target + 1, -1.0);
    plan.predicted_[target] = combined;
    if (combined < config.theta) plan.unmet_.push_back(target);
  }
  std::sort(plan.unmet_.begin(), plan.unmet_.end());
  return plan;
}

}  // namespace dtncache::core
