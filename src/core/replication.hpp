#pragma once

/// \file replication.hpp
/// Probabilistic replication of refresh responsibility.
///
/// A refresh hierarchy alone gives each node one refresher (its parent);
/// for weakly-connected nodes, P(refresh within τ) through the parent chain
/// can fall below the freshness requirement θ. Replication assigns extra
/// *helpers*: tree members who add the node to their responsibility set.
///
/// The combined probability model (independence across refreshers, helpers
/// decomposed into "helper is fresh by τ/2" × "helper meets target in the
/// remaining τ/2") is in core/freshness.hpp. Helper selection is greedy:
/// candidates are ranked and added until the bound reaches θ, the per-node
/// helper cap is hit, or candidates run out. Ranking order is an ablation
/// knob (F5/F6): by marginal contribution (default) or by raw contact rate
/// to the target.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/hierarchy.hpp"
#include "obs/tracer.hpp"
#include "sim/time.hpp"

namespace dtncache::core {

/// Optional observability context for planReplication: when `tracer` is
/// set, every helper placement is emitted as a `helper_assign` event
/// labeled with the item and the (sim-)time the plan was computed at.
struct PlanTrace {
  obs::Tracer* tracer = nullptr;
  std::uint32_t item = 0;
  sim::SimTime now = 0.0;
};

enum class HelperOrder {
  kBestContribution,  ///< greedy on h_k (freshness-weighted reach)
  kHighestRate,       ///< greedy on λ_k,target alone (ignores helper staleness)
};

struct ReplicationConfig {
  bool enabled = true;
  /// Freshness requirement: every member should be refreshed within one
  /// period with probability ≥ θ.
  double theta = 0.9;
  std::size_t maxHelpersPerNode = 4;
  HelperOrder order = HelperOrder::kBestContribution;
  /// Optional multiplicative weight on each candidate's ranking key —
  /// e.g. remaining battery fraction, so drained nodes are not volunteered
  /// for extra duty. Affects only the greedy order, never the predicted
  /// probability (a weighted-down helper still refreshes as well if
  /// chosen).
  std::function<double(NodeId)> helperWeight;
};

/// The planned helper assignments for one item's hierarchy.
///
/// Storage is dense by NodeId (node ids index the trace's node table, so
/// the vectors are small): helper lists and predictions are one indexed
/// load, and isHelper — which the schemes evaluate for every (member,
/// member) pair at every contact — is an indexed load plus a scan of at
/// most maxHelpersPerNode entries, with no hashing.
class ReplicationPlan {
 public:
  /// One greedy helper placement, in assignment order. The log lets a
  /// cached plan be *replayed*: re-emitting the same `helper_assign` events
  /// (with the combined probability as it stood after each add) without
  /// recomputing the plan.
  struct Assignment {
    NodeId target = kNoNode;
    NodeId helper = kNoNode;
    double probabilityAfter = 0.0;  ///< combined P(refresh ≤ τ) after this add
  };

  /// True if `refresher` must push fresh versions to `target` (helper edge;
  /// tree edges live in the hierarchy itself).
  bool isHelper(NodeId refresher, NodeId target) const {
    if (target >= helpers_.size()) return false;
    for (NodeId h : helpers_[target])
      if (h == refresher) return true;
    return false;
  }

  const std::vector<NodeId>& helpersOf(NodeId target) const {
    return target < helpers_.size() ? helpers_[target] : kEmpty;
  }

  /// Predicted P(refresh within τ) after replication (chain + helpers).
  double predictedProbability(NodeId target) const;

  std::size_t totalAssignments() const { return totalAssignments_; }
  /// Nodes whose predicted probability still misses θ (rate-starved nodes
  /// no helper set can fix); empty when the requirement is met everywhere.
  const std::vector<NodeId>& unmetNodes() const { return unmet_; }

  /// Every helper placement in the order the greedy pass made it.
  const std::vector<Assignment>& assignmentLog() const { return log_; }

  /// Deep equality over every observable field (helpers, predictions,
  /// unmet set, assignment log) — the oracle check the full-maintenance
  /// escape hatch runs against a cached plan.
  bool sameAs(const ReplicationPlan& other) const;

 private:
  friend ReplicationPlan planReplication(const RefreshHierarchy&, const RateFn&,
                                         sim::SimTime, const ReplicationConfig&,
                                         const PlanTrace&);
  std::vector<NodeId>& helperSlot(NodeId target) {
    if (target >= helpers_.size()) helpers_.resize(target + 1);
    return helpers_[target];
  }
  std::vector<std::vector<NodeId>> helpers_;  ///< indexed by target NodeId
  std::vector<double> predicted_;             ///< indexed by target; -1 = none
  std::vector<NodeId> unmet_;
  std::vector<Assignment> log_;
  std::size_t totalAssignments_ = 0;
  static const std::vector<NodeId> kEmpty;
};

/// Compute helper assignments for every below-root member of `hierarchy`.
/// `trace` labels and emits each copy placement when tracing is wired.
ReplicationPlan planReplication(const RefreshHierarchy& hierarchy, const RateFn& rate,
                                sim::SimTime tau, const ReplicationConfig& config,
                                const PlanTrace& trace = {});

}  // namespace dtncache::core
