#pragma once

/// \file hierarchical_scheme.hpp
/// The paper's scheme: distributed hierarchical freshness maintenance with
/// probabilistic replication.
///
/// Per item, the caching nodes are arranged in a RefreshHierarchy rooted at
/// the source, plus the helper assignments of a ReplicationPlan. On every
/// contact, a node pushes its version of an item to the peer iff
///   (a) the peer is in its responsibility set (tree child or helper
///       target), and
///   (b) the metadata handshake showed the peer's version is older.
/// Hierarchies are built from contact-rate knowledge — either the shared
/// online estimator (default; imperfect, improves over time) or an oracle
/// rate matrix (ablation F9) — and maintained periodically:
///   - kRebuild: reconstruct tree + plan from current estimates (the
///     centralized upper bound for maintenance quality);
///   - kLocalRepair: every node re-evaluates only its own parent edge and
///     re-parents when a better parent improves its end-to-end refresh
///     probability materially — the distributed operation the paper's
///     title refers to;
///   - kStatic: never touched after construction (ablation).

#include <functional>
#include <memory>
#include <vector>

#include "cache/coop_cache.hpp"
#include "cache/refresh_scheme.hpp"
#include "core/hierarchy.hpp"
#include "core/replication.hpp"
#include "core/slot_index.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::core {

enum class MaintenanceMode { kRebuild, kLocalRepair, kStatic };

struct HierarchicalConfig {
  HierarchyConfig hierarchy;
  ReplicationConfig replication;
  MaintenanceMode maintenance = MaintenanceMode::kLocalRepair;
  sim::SimTime maintenancePeriod = sim::hours(12);
  /// Relative improvement in end-to-end refresh probability required before
  /// a local repair re-parents (hysteresis against estimate noise).
  double repairImprovement = 0.10;
  /// Plan from the true rate matrix instead of the estimator (F9 oracle arm).
  bool useOracleRates = false;

  /// Relay-assisted delivery: a responsible node that meets a better
  /// carrier toward its (absent) target hands it a bounded number of
  /// refresh copies, which travel store-carry-forward like any DTN message.
  /// This is the opportunistic multi-hop delivery the paper's substrate
  /// assumes; turning it off makes every responsibility edge contact-direct
  /// (ablation arm in F8).
  bool relayAssisted = true;
  /// Max relay copies injected per (item, target, version).
  std::uint32_t relayCopiesPerVersion = 2;
  /// Only spend relay bandwidth on weak edges: inject relays for a target
  /// only when the direct responsible edge alone delivers within τ with
  /// probability below this threshold (strong edges need no help).
  double relayWhenDirectBelow = 0.9;
  /// Relay-copy TTL as a multiple of the item's refresh period (after one
  /// period a newer version exists, so stale relay copies self-purge).
  double relayTtlFactor = 1.0;
  /// With an energy weight installed, carriers below this remaining-battery
  /// fraction are not handed relay copies.
  double minRelayCarrierBattery = 0.15;
};

class HierarchicalRefreshScheme : public cache::RefreshScheme {
 public:
  /// `oracleRates` is required iff config.useOracleRates; not owned.
  explicit HierarchicalRefreshScheme(HierarchicalConfig config,
                                     const trace::RateMatrix* oracleRates = nullptr);

  std::string name() const override { return "Hierarchical"; }
  void onStart(cache::CooperativeCache& cache) override;
  void onContact(cache::CooperativeCache& cache, NodeId a, NodeId b, sim::SimTime t,
                 net::ContactChannel& channel) override;

  /// Churn hook: a caching member left (its children are adopted locally)
  /// or returned (it re-attaches under the best live parent with a free
  /// slot). Replication plans for affected items are recomputed. Wire this
  /// to ChurnProcess::addListener.
  void onNodeStateChanged(cache::CooperativeCache& cache, NodeId node, bool up,
                          sim::SimTime t);
  std::size_t churnRepairs() const { return churnRepairs_; }

  /// Under churn, periodic rebuilds must not re-admit down members; install
  /// the liveness predicate (ChurnProcess::isUp) before onStart.
  void setLivenessPredicate(std::function<bool(NodeId)> live) { live_ = std::move(live); }

  /// Energy-aware planning: weight nodes by remaining battery fraction.
  /// Helper selection ranks candidates by contribution × weight, and relay
  /// copies are not handed to carriers below `minRelayCarrierBattery` —
  /// the two places the scheme decides who spends energy for whom.
  /// Install before onStart to cover the initial plan.
  void setEnergyWeight(std::function<double(NodeId)> weight) {
    nodeWeight_ = weight;
    config_.replication.helperWeight = std::move(weight);
  }

  /// Attach the observability layer (neither owned; both may be null).
  /// Events: plan / helper_assign on every (re)plan, reparent on local
  /// repair, relay_inject per relay handoff, churn_repair on membership
  /// flips, maintenance per periodic pass. Counters under core.*; the
  /// `core.maintenance` timer accumulates planning wall-clock.
  void setObservability(obs::Tracer* tracer, obs::Registry* registry);

  /// Planning-state inspection (tests, benches, examples).
  const RefreshHierarchy& hierarchyOf(data::ItemId item) const;
  const ReplicationPlan& planOf(data::ItemId item) const;
  const HierarchicalConfig& config() const { return config_; }
  std::size_t maintenanceRuns() const { return maintenanceRuns_; }
  std::size_t reparentCount() const { return reparentCount_; }
  std::size_t relayInjections() const { return relayInjections_; }

 private:
  RateFn makeRateFn(cache::CooperativeCache& cache, sim::SimTime t) const;
  void rebuildItem(cache::CooperativeCache& cache, data::ItemId item, sim::SimTime t);
  void localRepairItem(cache::CooperativeCache& cache, data::ItemId item, sim::SimTime t);
  void runMaintenance(cache::CooperativeCache& cache, sim::SimTime t);
  /// Is `refresher` responsible for pushing to `target` for this item?
  bool responsible(data::ItemId item, NodeId refresher, NodeId target) const;
  /// All targets `refresher` is responsible for (children + helper
  /// targets), appended to `out` (cleared first). Out-parameter so the
  /// per-contact relay pass can reuse one scratch vector instead of
  /// allocating a result per (item, holder) evaluation.
  void targetsOf(data::ItemId item, NodeId refresher, std::vector<NodeId>& out) const;
  /// Hand bounded refresh copies for absent targets to a better carrier.
  void injectRelays(cache::CooperativeCache& cache, NodeId holder, NodeId carrier,
                    sim::SimTime t, net::ContactChannel& channel);

  /// Recompute (and trace) the item's replication plan.
  void replan(cache::CooperativeCache& cache, data::ItemId item, sim::SimTime t,
              const RateFn& rate);

  HierarchicalConfig config_;
  const trace::RateMatrix* oracleRates_;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* ctrMaintenanceRuns_ = nullptr;
  obs::Counter* ctrReparents_ = nullptr;
  obs::Counter* ctrRelayInjected_ = nullptr;
  obs::Counter* ctrChurnRepairs_ = nullptr;
  obs::Counter* ctrPlanHelpers_ = nullptr;
  obs::Counter* ctrPlanUnmet_ = nullptr;
  obs::Timer* maintenanceTimer_ = nullptr;
  std::vector<RefreshHierarchy> hierarchies_;  ///< per item
  std::vector<ReplicationPlan> plans_;         ///< per item
  std::size_t maintenanceRuns_ = 0;
  std::size_t reparentCount_ = 0;
  std::size_t relayInjections_ = 0;
  std::size_t churnRepairs_ = 0;
  std::function<bool(NodeId)> live_;
  std::function<double(NodeId)> nodeWeight_;
  /// (item, target, version) → relay copies already injected. Flat-store
  /// pattern: the packed key indexes a dense count vector through the
  /// open-addressing index (one probe per relay evaluation, no hash-map
  /// node allocations).
  std::uint32_t& relayBudgetSlot(std::uint64_t key) {
    std::uint32_t slot = relayBudgetIndex_.find(key);
    if (slot == core::SlotIndex::kNoSlot) {
      slot = static_cast<std::uint32_t>(relayBudgetCounts_.size());
      relayBudgetCounts_.push_back(0);
      relayBudgetIndex_.insert(key, slot);
    }
    return relayBudgetCounts_[slot];
  }
  core::SlotIndex relayBudgetIndex_;
  std::vector<std::uint32_t> relayBudgetCounts_;
  /// Scratch for injectRelays' per-(item, holder) target list.
  mutable std::vector<NodeId> targetsScratch_;
};

}  // namespace dtncache::core
