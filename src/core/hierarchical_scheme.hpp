#pragma once

/// \file hierarchical_scheme.hpp
/// The paper's scheme: distributed hierarchical freshness maintenance with
/// probabilistic replication.
///
/// Per item, the caching nodes are arranged in a RefreshHierarchy rooted at
/// the source, plus the helper assignments of a ReplicationPlan. On every
/// contact, a node pushes its version of an item to the peer iff
///   (a) the peer is in its responsibility set (tree child or helper
///       target), and
///   (b) the metadata handshake showed the peer's version is older.
/// Hierarchies are built from contact-rate knowledge — either the shared
/// online estimator (default; imperfect, improves over time) or an oracle
/// rate matrix (ablation F9) — and maintained periodically:
///   - kRebuild: reconstruct tree + plan from current estimates (the
///     centralized upper bound for maintenance quality);
///   - kLocalRepair: every node re-evaluates only its own parent edge and
///     re-parents when a better parent improves its end-to-end refresh
///     probability materially — the distributed operation the paper's
///     title refers to;
///   - kStatic: never touched after construction (ablation).

#include <functional>
#include <memory>
#include <vector>

#include "cache/centrality.hpp"
#include "cache/coop_cache.hpp"
#include "cache/refresh_scheme.hpp"
#include "core/hierarchy.hpp"
#include "core/plan_cache.hpp"
#include "core/replication.hpp"
#include "core/slot_index.hpp"
#include "trace/estimator.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::core {

enum class MaintenanceMode { kRebuild, kLocalRepair, kStatic };

struct HierarchicalConfig {
  HierarchyConfig hierarchy;
  ReplicationConfig replication;
  MaintenanceMode maintenance = MaintenanceMode::kLocalRepair;
  sim::SimTime maintenancePeriod = sim::hours(12);
  /// Relative improvement in end-to-end refresh probability required before
  /// a local repair re-parents (hysteresis against estimate noise).
  double repairImprovement = 0.10;
  /// Plan from the true rate matrix instead of the estimator (F9 oracle arm).
  bool useOracleRates = false;

  /// Large-N approximation knob, forwarded to
  /// cache::CentralityState::setNeighborCap: when nonzero, capability sums
  /// over a sparse rate snapshot truncate to each node's `cap` highest
  /// meeting probabilities. 0 (default) = exact sums (and byte-identical
  /// outputs across pair-state backends).
  std::size_t centralityNeighborCap = 0;

  /// Relay-assisted delivery: a responsible node that meets a better
  /// carrier toward its (absent) target hands it a bounded number of
  /// refresh copies, which travel store-carry-forward like any DTN message.
  /// This is the opportunistic multi-hop delivery the paper's substrate
  /// assumes; turning it off makes every responsibility edge contact-direct
  /// (ablation arm in F8).
  bool relayAssisted = true;
  /// Max relay copies injected per (item, target, version).
  std::uint32_t relayCopiesPerVersion = 2;
  /// Only spend relay bandwidth on weak edges: inject relays for a target
  /// only when the direct responsible edge alone delivers within τ with
  /// probability below this threshold (strong edges need no help).
  double relayWhenDirectBelow = 0.9;
  /// Relay-copy TTL as a multiple of the item's refresh period (after one
  /// period a newer version exists, so stale relay copies self-purge).
  double relayTtlFactor = 1.0;
  /// With an energy weight installed, carriers below this remaining-battery
  /// fraction are not handed relay copies.
  double minRelayCarrierBattery = 0.15;

  /// Escape hatch: disable the incremental-maintenance fast paths and run
  /// the full recompute (every tick re-snapshots, rebuilds, and replans
  /// every item) while keeping the incremental bookkeeping — dirty-pair
  /// stats, skip decisions, and cache probes are still evaluated, and when
  /// a tick *would* have been skipped the recomputed result is checked
  /// against the cached one, so the two paths stay byte-identical in every
  /// output and counter and CI can diff them. Also enabled by setting the
  /// DTNCACHE_FULL_MAINTENANCE environment variable to any non-empty value.
  /// Deliberately not a config_io key: fingerprints must match across paths.
  bool fullMaintenance = false;
};

class HierarchicalRefreshScheme : public cache::RefreshScheme {
 public:
  /// `oracleRates` is required iff config.useOracleRates; not owned.
  explicit HierarchicalRefreshScheme(HierarchicalConfig config,
                                     const trace::RateMatrix* oracleRates = nullptr);

  std::string name() const override { return "Hierarchical"; }
  void onStart(cache::CooperativeCache& cache) override;
  void onContact(cache::CooperativeCache& cache, NodeId a, NodeId b, sim::SimTime t,
                 net::ContactChannel& channel) override;

  /// In oracle-rates mode the maintenance tick commutes with worker-run
  /// boring contacts: refreshRateState returns before touching the
  /// estimator (planning reads the const oracle matrix, depVersion is
  /// constant 0), and maintainItem/rebuildItem/localRepairItem only mutate
  /// scheme-owned planning state (hierarchies, plan cache, counters, tracer)
  /// — never stores, buffers, or anything the activity fence reads. So the
  /// sharded driver may run it without a barrier. Live-estimator mode reads
  /// snapshotInto (worker-written pair state) and stays a fence.
  sim::EventScope timerScope(cache::TimerKind kind) const override {
    if (kind == cache::TimerKind::kMaintenance && config_.useOracleRates)
      return sim::EventScope::kShardLocal;
    return RefreshScheme::timerScope(kind);
  }

  /// Churn hook: a caching member left (its children are adopted locally)
  /// or returned (it re-attaches under the best live parent with a free
  /// slot). Replication plans for affected items are recomputed. Wire this
  /// to ChurnProcess::addListener.
  void onNodeStateChanged(cache::CooperativeCache& cache, NodeId node, bool up,
                          sim::SimTime t);
  std::size_t churnRepairs() const { return churnRepairs_; }

  /// Under churn, periodic rebuilds must not re-admit down members; install
  /// the liveness predicate (ChurnProcess::isUp) before onStart.
  void setLivenessPredicate(std::function<bool(NodeId)> live) { live_ = std::move(live); }

  /// Energy-aware planning: weight nodes by remaining battery fraction.
  /// Helper selection ranks candidates by contribution × weight, and relay
  /// copies are not handed to carriers below `minRelayCarrierBattery` —
  /// the two places the scheme decides who spends energy for whom.
  /// Install before onStart to cover the initial plan.
  void setEnergyWeight(std::function<double(NodeId)> weight) {
    nodeWeight_ = weight;
    config_.replication.helperWeight = std::move(weight);
  }

  /// Attach the observability layer (neither owned; both may be null).
  /// Events: plan / helper_assign on every (re)plan, reparent on local
  /// repair, relay_inject per relay handoff, churn_repair on membership
  /// flips, maintenance per periodic pass. Counters under core.*; the
  /// `core.maintenance` timer accumulates planning wall-clock.
  void setObservability(obs::Tracer* tracer, obs::Registry* registry);

  /// Planning-state inspection (tests, benches, examples).
  const RefreshHierarchy& hierarchyOf(data::ItemId item) const;
  const ReplicationPlan& planOf(data::ItemId item) const;
  const HierarchicalConfig& config() const { return config_; }
  std::size_t maintenanceRuns() const { return maintenanceRuns_; }
  std::size_t reparentCount() const { return reparentCount_; }
  std::size_t relayInjections() const { return relayInjections_; }

  /// Incremental-maintenance state inspection (tests, benches).
  /// Global rate-state version: bumped on every maintenance snapshot that
  /// changed at least one pair estimate.
  std::uint64_t rateVersion() const { return rateVersion_; }
  /// Maintenance evaluations answered from the plan cache.
  std::size_t planCacheHits() const { return planCacheHits_; }
  /// (item, tick) maintenance evaluations skipped outright.
  std::size_t itemsSkipped() const { return skippedItems_; }
  /// Whether the full-recompute escape hatch is active (config or env var).
  bool fullMaintenanceActive() const { return fullMaintenance_; }

 private:
  /// Rate function for periodic planning: reads the maintained snapshot
  /// matrix (or the oracle), which at tick times holds exactly the live
  /// estimator's values — so snapshot-backed planning is bit-identical to
  /// the live closure it replaces, while making plan reuse sound (the
  /// inputs are versioned).
  RateFn planningRateFn() const;
  /// Rate function for event-driven (churn) repairs between ticks: the live
  /// estimator at time `t`, exactly as before incremental maintenance.
  RateFn liveRateFn(cache::CooperativeCache& cache, sim::SimTime t) const;
  /// Refresh the snapshot matrix + centrality state from the estimator;
  /// bumps rate/row versions for changed rows and reports whether the NCL
  /// set moved.
  void refreshRateState(cache::CooperativeCache& cache, sim::SimTime t,
                        bool* nclChanged, trace::SnapshotStats* stats);
  /// Max row version over the item's dependency rows (members + source).
  std::uint64_t depVersion(data::ItemId item) const;
  /// Record a structural change to the item's tree: bump its revision and
  /// clear the repair-settled flag.
  void touchHierarchy(data::ItemId item);
  /// One item's share of a maintenance tick: skip, replay from cache, or
  /// recompute (and, under the escape hatch, verify cache hits).
  void maintainItem(cache::CooperativeCache& cache, data::ItemId item, sim::SimTime t,
                    bool allowSkip, std::size_t& skipped);
  void rebuildItem(cache::CooperativeCache& cache, data::ItemId item, sim::SimTime t);
  void localRepairItem(cache::CooperativeCache& cache, data::ItemId item, sim::SimTime t);
  void runMaintenance(cache::CooperativeCache& cache, sim::SimTime t);
  /// Is `refresher` responsible for pushing to `target` for this item?
  bool responsible(data::ItemId item, NodeId refresher, NodeId target) const;
  /// All targets `refresher` is responsible for (children + helper
  /// targets), appended to `out` (cleared first). Out-parameter so the
  /// per-contact relay pass can reuse one scratch vector instead of
  /// allocating a result per (item, holder) evaluation.
  void targetsOf(data::ItemId item, NodeId refresher, std::vector<NodeId>& out) const;
  /// Hand bounded refresh copies for absent targets to a better carrier.
  void injectRelays(cache::CooperativeCache& cache, NodeId holder, NodeId carrier,
                    sim::SimTime t, net::ContactChannel& channel);

  /// Recompute (and trace) the item's replication plan, storing it in the
  /// plan cache — keyed on the current (dep version, hierarchy revision, τ)
  /// when `cacheable` (periodic maintenance), unkeyed for event-driven
  /// repairs whose inputs are not tick-versioned.
  void replan(cache::CooperativeCache& cache, data::ItemId item, sim::SimTime t,
              const RateFn& rate, bool cacheable);
  /// Counter adds + `plan` event for a freshly computed or replayed plan.
  void emitPlanOutcome(data::ItemId item, sim::SimTime t, const ReplicationPlan& plan);
  /// Re-emit a cached plan's helper_assign/plan events and counter adds —
  /// byte-identical to recomputing it.
  void replayPlan(data::ItemId item, sim::SimTime t, const ReplicationPlan& plan);
  /// Plan reuse is disabled while an energy weight is installed: battery
  /// fractions drain outside the versioned rate state, so no two ticks are
  /// provably equivalent and every tick replans (the pre-incremental cost).
  bool planCacheEnabled() const { return !config_.replication.helperWeight; }

  HierarchicalConfig config_;
  const trace::RateMatrix* oracleRates_;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* ctrMaintenanceRuns_ = nullptr;
  obs::Counter* ctrReparents_ = nullptr;
  obs::Counter* ctrRelayInjected_ = nullptr;
  obs::Counter* ctrChurnRepairs_ = nullptr;
  obs::Counter* ctrPlanHelpers_ = nullptr;
  obs::Counter* ctrPlanUnmet_ = nullptr;
  obs::Counter* ctrDirtyPairs_ = nullptr;
  obs::Counter* ctrSkipped_ = nullptr;
  obs::Counter* ctrPlanCacheHits_ = nullptr;
  obs::Timer* maintenanceTimer_ = nullptr;
  std::vector<RefreshHierarchy> hierarchies_;  ///< per item
  PlanCache planCache_;                        ///< per item current plan + keyed reuse
  std::size_t maintenanceRuns_ = 0;
  std::size_t reparentCount_ = 0;
  std::size_t relayInjections_ = 0;
  std::size_t churnRepairs_ = 0;
  std::size_t planCacheHits_ = 0;
  std::size_t skippedItems_ = 0;
  std::function<bool(NodeId)> live_;
  std::function<double(NodeId)> nodeWeight_;

  /// Versioned rate state. The snapshot matrix is refreshed in place at
  /// every maintenance tick (dirty pairs only); rowVersion_[n] records the
  /// global rateVersion_ at which node n's row last changed, so an item's
  /// dependency version is the max over its member rows — equal versions
  /// between two ticks prove the item's planning inputs are unchanged.
  trace::RateMatrix rateSnapshot_;
  /// True when the current tick declined to materialize the snapshot (dense
  /// change or plan reuse disabled): periodic planning then reads the live
  /// estimator — identical values, since the snapshot, when taken, holds
  /// exactly the live estimator's rates at tick time.
  bool planningLive_ = true;
  std::uint64_t rateVersion_ = 0;
  std::vector<std::uint64_t> rowVersion_;
  std::vector<NodeId> changedNodes_;  ///< per-tick scratch from snapshotInto
  cache::CentralityState centrality_;
  std::size_t nclCount_ = 0;  ///< k used for NCL change detection
  /// Per-item dependency rows (caching set ∪ source; fixed per run) and
  /// incremental bookkeeping: structural revision, repair fixed-point flag,
  /// and the (dep version, revision) the item was last maintained at.
  std::vector<std::vector<NodeId>> itemDeps_;
  std::vector<std::uint64_t> hierarchyRev_;
  std::vector<char> repairSettled_;
  std::vector<std::uint64_t> lastMaintDep_;
  std::vector<std::uint64_t> lastMaintRev_;
  std::vector<char> haveMaintState_;
  bool fullMaintenance_ = false;
  /// (item, target, version) → relay copies already injected. Flat-store
  /// pattern: the packed key indexes a dense count vector through the
  /// open-addressing index (one probe per relay evaluation, no hash-map
  /// node allocations).
  std::uint32_t& relayBudgetSlot(std::uint64_t key) {
    std::uint32_t slot = relayBudgetIndex_.find(key);
    if (slot == core::SlotIndex::kNoSlot) {
      slot = static_cast<std::uint32_t>(relayBudgetCounts_.size());
      relayBudgetCounts_.push_back(0);
      relayBudgetIndex_.insert(key, slot);
    }
    return relayBudgetCounts_[slot];
  }
  core::SlotIndex relayBudgetIndex_;
  std::vector<std::uint32_t> relayBudgetCounts_;
  /// Scratch for injectRelays' per-(item, holder) target list.
  mutable std::vector<NodeId> targetsScratch_;
};

}  // namespace dtncache::core
