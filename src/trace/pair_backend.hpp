#pragma once

/// \file pair_backend.hpp
/// Backend selection for pairwise (per node pair) state.
///
/// Every pairwise structure in the reproduction — the rate matrix, the
/// contact-rate estimator's pair table, the centrality probability cache —
/// can be stored two ways:
///  - kDense: an n(n-1)/2 upper-triangular array. One indexed load per
///    lookup; the right choice for the few-hundred-node paper scenarios
///    where the triangle is smaller than any hash table.
///  - kSparse: keyed by observed pairs only (open-addressing SlotIndex over
///    packed pair keys + per-node sorted adjacency). Memory and iteration
///    cost scale with pairs that actually met, which is what makes 10^5-10^6
///    node scenarios representable at all — in opportunistic traces almost
///    all of the n^2/2 pairs never meet.
///
/// kAuto picks dense below densePairNodeThreshold() nodes and sparse above,
/// so existing small-N experiments keep their exact dense code path (and
/// byte-identical output) while large-N scenarios never allocate a
/// triangle. The DTNCACHE_SPARSE_PAIRS environment variable overrides the
/// choice process-wide ("0" or "dense" forces dense, any other non-empty
/// value forces sparse); CI uses it to assert that forced-sparse small-N
/// sweeps are byte-identical to the default dense run, the same discipline
/// as the jobs=1-vs-4 and DTNCACHE_FULL_MAINTENANCE checks. Deliberately
/// not a config key: run fingerprints must match across backends.
///
/// Equivalence contract (enforced by tests/trace/sparse_equivalence_test):
/// with a default (never-met) rate of exactly 0.0 every derived quantity —
/// rates, meeting probabilities, capability sums, NCL selection, hypoexp
/// plan inputs — is bit-identical across backends, because skipping a 0.0
/// term of a non-negative sum cannot change the accumulation. With a
/// nonzero default rate the sparse backend folds the default contribution
/// in closed form ((n-1-degree) * default), which is mathematically equal
/// but associates differently; nothing in the sweep surface sets a nonzero
/// prior, so all committed outputs stay byte-stable.

#include <cstddef>
#include <cstdlib>

namespace dtncache::trace {

enum class PairBackend { kAuto, kDense, kSparse };

/// Node count at and below which kAuto chooses the dense triangle.
inline constexpr std::size_t kDensePairNodeThreshold = 1024;

/// Process-wide override from DTNCACHE_SPARSE_PAIRS (unset -> kAuto).
inline PairBackend pairBackendOverride() {
  static const PairBackend value = [] {
    const char* env = std::getenv("DTNCACHE_SPARSE_PAIRS");
    if (env == nullptr || env[0] == '\0') return PairBackend::kAuto;
    if ((env[0] == '0' && env[1] == '\0') ||
        (env[0] == 'd' || env[0] == 'D'))
      return PairBackend::kDense;
    return PairBackend::kSparse;
  }();
  return value;
}

/// Resolve a requested backend for an n-node structure: explicit request
/// wins, then the environment override, then the size threshold.
inline bool useSparsePairs(std::size_t nodeCount, PairBackend requested) {
  if (requested != PairBackend::kAuto) return requested == PairBackend::kSparse;
  const PairBackend env = pairBackendOverride();
  if (env != PairBackend::kAuto) return env == PairBackend::kSparse;
  return nodeCount > kDensePairNodeThreshold;
}

}  // namespace dtncache::trace
