#pragma once

/// \file trace_cache.hpp
/// Process-wide memoization of synthetic-trace generation.
///
/// `generate()` is deterministic in its config, and the workloads that
/// dominate wall-clock reuse the same config many times over: a sweep grid
/// enumerates scheme × seed, so every scheme arm replays the exact trace the
/// previous arm generated, and benchmark reps re-run one config back to
/// back. Generation is RNG-bound (hundreds of thousands of exponential
/// draws), so replaying a cached trace instead is a large constant saving
/// with byte-identical results — callers receive the same contacts, rates
/// and community vectors a fresh generate() would produce.
///
/// The cache is a small LRU keyed by the full config (every field, not just
/// the seed) and is safe to call from concurrent sweep workers.

#include <cstddef>
#include <memory>

#include "trace/generators.hpp"

namespace dtncache::trace {

/// Like generate(), but memoized: returns a shared immutable trace, reusing
/// a previous generation when one with an identical config is still cached.
std::shared_ptr<const SyntheticTrace> generateShared(const SyntheticTraceConfig& config);

struct TraceCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;
};

/// Counters since process start (or the last clearTraceCache()).
TraceCacheStats traceCacheStats();

/// Drop all cached traces and reset the stats (tests).
void clearTraceCache();

/// Memoized adoption of a caller-owned external (replayed) trace: copies
/// the trace and fits its MLE rate matrix once, then reuses the result for
/// subsequent calls over the same trace. The external-trace experiment path
/// bypasses generateShared(), so without this every job of a sweep arm
/// re-copied the contact list and refit the full O(N² + contacts) rate
/// matrix even though all jobs replay one loaded trace. Keyed by the
/// trace's address plus a content fingerprint (node count, contact count,
/// duration bits, and a strided sample of contact records), so a reloaded
/// or mutated trace at a recycled address misses and is refit. Thread-safe;
/// results are byte-identical to an unmemoized fit.
std::shared_ptr<const SyntheticTrace> externalShared(const ContactTrace& trace);

/// Counters for the external-trace memo (shared clock with the generator
/// cache but tracked separately).
TraceCacheStats externalTraceCacheStats();

/// Drop all adopted external traces and reset the stats (tests).
void clearExternalTraceCache();

}  // namespace dtncache::trace
