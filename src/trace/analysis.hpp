#pragma once

/// \file analysis.hpp
/// Statistical analysis of contact traces.
///
/// The scheme's analytics rest on the exponential pairwise inter-contact
/// model; this module quantifies how well a trace (synthetic or imported)
/// fits it — MLE rate, coefficient of variation (1 for exponential), and
/// the Kolmogorov–Smirnov distance to the fitted exponential — plus the
/// per-node activity profile (degree skew) that motivates NCL caching.

#include <cstddef>
#include <utility>
#include <vector>

#include "trace/contact.hpp"

namespace dtncache::trace {

/// Gaps between consecutive contact starts of one pair (time-ordered).
std::vector<double> interContactTimes(const ContactTrace& trace, NodeId i, NodeId j);

/// Pooled gaps over every pair with at least `minContactsPerPair` contacts.
std::vector<double> allInterContactTimes(const ContactTrace& trace,
                                         std::size_t minContactsPerPair = 2);

struct ExponentialFit {
  double rate = 0.0;         ///< MLE: 1 / mean gap
  double meanGap = 0.0;
  double cv = 0.0;           ///< stddev / mean; 1.0 for a true exponential
  double ksDistance = 1.0;   ///< sup_t |F_emp(t) − (1 − e^{−rate·t})|
  std::size_t samples = 0;
};

/// Fit an exponential to the samples (all must be positive). Returns a
/// default (rate 0, KS 1) fit when fewer than 2 samples exist.
ExponentialFit fitExponential(std::vector<double> samples);

struct NodeActivity {
  NodeId node = 0;
  std::size_t contacts = 0;
  std::size_t distinctPeers = 0;
  double contactsPerDay = 0.0;
};

/// Per-node contact activity, sorted by contact count descending.
std::vector<NodeActivity> nodeActivity(const ContactTrace& trace);

/// (value, P(X > value)) points of the empirical CCDF, at `points` evenly
/// spaced quantiles — compact plotting data for heavy-tail inspection.
std::vector<std::pair<double, double>> ccdf(std::vector<double> samples,
                                            std::size_t points = 20);

}  // namespace dtncache::trace
