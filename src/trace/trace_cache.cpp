#include "trace/trace_cache.hpp"

#include <cstdint>
#include <mutex>
#include <vector>

namespace dtncache::trace {

namespace {

bool sameConfig(const SyntheticTraceConfig& a, const SyntheticTraceConfig& b) {
  return a.nodeCount == b.nodeCount && a.duration == b.duration && a.model == b.model &&
         a.meanContactsPerPairPerDay == b.meanContactsPerPairPerDay &&
         a.paretoShape == b.paretoShape && a.rateSpread == b.rateSpread &&
         a.communities == b.communities && a.intraCommunityBoost == b.intraCommunityBoost &&
         a.diurnal == b.diurnal && a.nightActivity == b.nightActivity &&
         a.meanContactDuration == b.meanContactDuration && a.seed == b.seed;
}

struct Entry {
  SyntheticTraceConfig config;
  std::shared_ptr<const SyntheticTrace> trace;
  std::uint64_t lastUse = 0;
};

struct Cache {
  std::mutex mu;
  std::vector<Entry> entries;
  std::uint64_t clock = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

Cache& cache() {
  static Cache c;
  return c;
}

/// A sweep holds at most (world + warm-up) traces per live seed; eight seeds
/// of headroom covers the distance between one scheme arm's use of a seed
/// and the next arm's reuse for typical grids, while bounding memory.
constexpr std::size_t kMaxEntries = 16;

}  // namespace

std::shared_ptr<const SyntheticTrace> generateShared(const SyntheticTraceConfig& config) {
  Cache& c = cache();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    for (Entry& e : c.entries) {
      if (sameConfig(e.config, config)) {
        e.lastUse = ++c.clock;
        ++c.hits;
        return e.trace;
      }
    }
    ++c.misses;
  }

  // Generate outside the lock so concurrent sweep workers are not
  // serialized behind one another's generation. Two workers racing on the
  // same config may both generate; the results are identical, so the
  // duplicate insert below is harmless (the loser's copy is dropped).
  auto fresh = std::make_shared<const SyntheticTrace>(generate(config));

  std::lock_guard<std::mutex> lock(c.mu);
  for (Entry& e : c.entries) {
    if (sameConfig(e.config, config)) {
      e.lastUse = ++c.clock;
      return e.trace;
    }
  }
  if (c.entries.size() >= kMaxEntries) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < c.entries.size(); ++i)
      if (c.entries[i].lastUse < c.entries[victim].lastUse) victim = i;
    c.entries.erase(c.entries.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  c.entries.push_back(Entry{config, fresh, ++c.clock});
  return fresh;
}

TraceCacheStats traceCacheStats() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  return TraceCacheStats{c.hits, c.misses, c.entries.size()};
}

void clearTraceCache() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.entries.clear();
  c.clock = 0;
  c.hits = 0;
  c.misses = 0;
}

}  // namespace dtncache::trace
