#include "trace/trace_cache.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

namespace dtncache::trace {

namespace {

bool sameConfig(const SyntheticTraceConfig& a, const SyntheticTraceConfig& b) {
  return a.nodeCount == b.nodeCount && a.duration == b.duration && a.model == b.model &&
         a.meanContactsPerPairPerDay == b.meanContactsPerPairPerDay &&
         a.paretoShape == b.paretoShape && a.rateSpread == b.rateSpread &&
         a.communities == b.communities && a.intraCommunityBoost == b.intraCommunityBoost &&
         a.diurnal == b.diurnal && a.nightActivity == b.nightActivity &&
         a.meanContactDuration == b.meanContactDuration && a.meanDegree == b.meanDegree &&
         a.interCommunityFraction == b.interCommunityFraction &&
         a.interContactAlpha == b.interContactAlpha && a.seed == b.seed;
}

struct Entry {
  SyntheticTraceConfig config;
  std::shared_ptr<const SyntheticTrace> trace;
  std::uint64_t lastUse = 0;
};

struct Cache {
  std::mutex mu;
  std::vector<Entry> entries;
  std::uint64_t clock = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

Cache& cache() {
  static Cache c;
  return c;
}

/// A sweep holds at most (world + warm-up) traces per live seed; eight seeds
/// of headroom covers the distance between one scheme arm's use of a seed
/// and the next arm's reuse for typical grids, while bounding memory.
constexpr std::size_t kMaxEntries = 16;

}  // namespace

std::shared_ptr<const SyntheticTrace> generateShared(const SyntheticTraceConfig& config) {
  Cache& c = cache();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    for (Entry& e : c.entries) {
      if (sameConfig(e.config, config)) {
        e.lastUse = ++c.clock;
        ++c.hits;
        return e.trace;
      }
    }
    ++c.misses;
  }

  // Generate outside the lock so concurrent sweep workers are not
  // serialized behind one another's generation. Two workers racing on the
  // same config may both generate; the results are identical, so the
  // duplicate insert below is harmless (the loser's copy is dropped).
  auto fresh = std::make_shared<const SyntheticTrace>(generate(config));

  std::lock_guard<std::mutex> lock(c.mu);
  for (Entry& e : c.entries) {
    if (sameConfig(e.config, config)) {
      e.lastUse = ++c.clock;
      return e.trace;
    }
  }
  if (c.entries.size() >= kMaxEntries) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < c.entries.size(); ++i)
      if (c.entries[i].lastUse < c.entries[victim].lastUse) victim = i;
    c.entries.erase(c.entries.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  c.entries.push_back(Entry{config, fresh, ++c.clock});
  return fresh;
}

namespace {

/// Identity + content fingerprint of an external trace. The address alone
/// is unsafe (a reloaded trace can land on a recycled allocation), so mix
/// in the cheap invariants and a strided FNV-1a sample of the contact
/// records; any in-place edit of a sampled record, the size, or the
/// duration changes the key.
struct ExternalKey {
  const ContactTrace* ptr = nullptr;
  std::size_t nodeCount = 0;
  std::size_t contactCount = 0;
  std::uint64_t durationBits = 0;
  std::uint64_t digest = 0;

  bool operator==(const ExternalKey& o) const {
    return ptr == o.ptr && nodeCount == o.nodeCount && contactCount == o.contactCount &&
           durationBits == o.durationBits && digest == o.digest;
  }
};

std::uint64_t bitsOf(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

ExternalKey externalKeyOf(const ContactTrace& trace) {
  ExternalKey key;
  key.ptr = &trace;
  key.nodeCount = trace.nodeCount();
  key.contactCount = trace.contacts().size();
  key.durationBits = bitsOf(trace.duration());
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over sampled contacts
  const auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 1099511628211ull;
  };
  const auto& contacts = trace.contacts();
  const std::size_t samples = std::min<std::size_t>(contacts.size(), 64);
  const std::size_t stride = samples > 0 ? std::max<std::size_t>(contacts.size() / samples, 1) : 1;
  for (std::size_t i = 0; i < contacts.size(); i += stride) {
    const Contact& c = contacts[i];
    mix((static_cast<std::uint64_t>(c.a) << 32) | c.b);
    mix(bitsOf(c.start));
    mix(bitsOf(c.duration));
  }
  key.digest = h;
  return key;
}

struct ExternalEntry {
  ExternalKey key;
  std::shared_ptr<const SyntheticTrace> trace;
  std::uint64_t lastUse = 0;
};

struct ExternalCache {
  std::mutex mu;
  std::vector<ExternalEntry> entries;
  std::uint64_t clock = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

ExternalCache& externalCache() {
  static ExternalCache c;
  return c;
}

/// A process rarely juggles more than a couple of loaded traces at once.
constexpr std::size_t kMaxExternalEntries = 4;

}  // namespace

std::shared_ptr<const SyntheticTrace> externalShared(const ContactTrace& trace) {
  const ExternalKey key = externalKeyOf(trace);
  ExternalCache& c = externalCache();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    for (ExternalEntry& e : c.entries) {
      if (e.key == key) {
        e.lastUse = ++c.clock;
        ++c.hits;
        return e.trace;
      }
    }
    ++c.misses;
  }

  // Copy + fit outside the lock (same racing-duplicates tolerance as
  // generateShared: both losers produce identical objects).
  auto fresh = std::make_shared<SyntheticTrace>();
  fresh->trace = trace;
  fresh->rates = RateMatrix::fitFromTrace(fresh->trace);
  std::shared_ptr<const SyntheticTrace> result = std::move(fresh);

  std::lock_guard<std::mutex> lock(c.mu);
  for (ExternalEntry& e : c.entries) {
    if (e.key == key) {
      e.lastUse = ++c.clock;
      return e.trace;
    }
  }
  if (c.entries.size() >= kMaxExternalEntries) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < c.entries.size(); ++i)
      if (c.entries[i].lastUse < c.entries[victim].lastUse) victim = i;
    c.entries.erase(c.entries.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  c.entries.push_back(ExternalEntry{key, result, ++c.clock});
  return result;
}

TraceCacheStats externalTraceCacheStats() {
  ExternalCache& c = externalCache();
  std::lock_guard<std::mutex> lock(c.mu);
  return TraceCacheStats{c.hits, c.misses, c.entries.size()};
}

void clearExternalTraceCache() {
  ExternalCache& c = externalCache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.entries.clear();
  c.clock = 0;
  c.hits = 0;
  c.misses = 0;
}

TraceCacheStats traceCacheStats() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  return TraceCacheStats{c.hits, c.misses, c.entries.size()};
}

void clearTraceCache() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.entries.clear();
  c.clock = 0;
  c.hits = 0;
  c.misses = 0;
}

}  // namespace dtncache::trace
