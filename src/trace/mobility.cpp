#include "trace/mobility.hpp"

#include <cmath>
#include <utility>

#include "core/pair_key.hpp"
#include "core/slot_index.hpp"
#include "sim/assert.hpp"

namespace dtncache::trace {

SyntheticMobility::SyntheticMobility(const SyntheticTraceConfig& config)
    : config_(config), streamRng_(sim::Rng(config.seed).fork(2)) {
  DTNCACHE_CHECK(config.model == RateModel::kMobilityCommunity ||
                 config.model == RateModel::kMobilityPowerLaw);
  DTNCACHE_CHECK(config.nodeCount >= 2);
  DTNCACHE_CHECK(config.duration > 0.0);
  DTNCACHE_CHECK(config.meanContactsPerPairPerDay > 0.0);
  DTNCACHE_CHECK(config.meanDegree > 0.0);
  if (config.model == RateModel::kMobilityCommunity) {
    DTNCACHE_CHECK(config.communities >= 1);
    DTNCACHE_CHECK(config.interCommunityFraction >= 0.0 &&
                   config.interCommunityFraction <= 1.0);
  }
  if (config.model == RateModel::kMobilityPowerLaw)
    DTNCACHE_CHECK_MSG(config.interContactAlpha > 1.0,
                       "Pareto inter-contact gaps need shape > 1 for a finite mean");
  buildGraph();
  assignRates();
  scheduleInitial();
}

void SyntheticMobility::buildGraph() {
  const std::size_t n = config_.nodeCount;
  const std::size_t communities =
      config_.model == RateModel::kMobilityCommunity ? config_.communities : 0;
  if (communities > 0) {
    // Round-robin assignment, matching the dense kCommunity generator.
    community_.resize(n);
    for (std::size_t i = 0; i < n; ++i) community_[i] = i % communities;
  }

  // Each node initiates ~meanDegree/2 edges; every edge raises the degree
  // of both endpoints, so the mean degree lands near the target. Collisions
  // (self, duplicate pair) are skipped rather than redrawn — the degree
  // target is approximate and skipping keeps the draw count, and therefore
  // the stream, a deterministic function of the config.
  sim::Rng graphRng = sim::Rng(config_.seed).fork(1);
  const std::size_t attempts = static_cast<std::size_t>(
      std::llround(std::max(1.0, config_.meanDegree / 2.0)));
  core::SlotIndex seen(n * attempts);
  edges_.reserve(n * attempts);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t t = 0; t < attempts; ++t) {
      NodeId v;
      if (communities > 0 && !graphRng.bernoulli(config_.interCommunityFraction)) {
        // Uniform member of u's community: ids ≡ u (mod C).
        const std::size_t r = community_[u];
        const std::size_t members = (n - r + communities - 1) / communities;
        v = static_cast<NodeId>(
            r + communities * static_cast<std::size_t>(
                                  graphRng.uniformInt(0, static_cast<std::int64_t>(members) - 1)));
      } else {
        v = static_cast<NodeId>(graphRng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
      }
      if (v == u) continue;
      const std::uint64_t key = core::packSymmetricPair(u, v);
      if (seen.find(key) != core::SlotIndex::kNoSlot) continue;
      seen.insert(key, static_cast<std::uint32_t>(edges_.size()));
      // Store endpoints normalized (a < b) so the stream emits contacts in
      // the same orientation ContactTrace normalizes to — materialize()
      // must byte-match the stream.
      edges_.push_back(Edge{std::min(u, v), std::max(u, v), 0.0});
    }
  }
}

void SyntheticMobility::assignRates() {
  // Truncated-Pareto weight skew, renormalized so the mean rate over linked
  // pairs hits the configured contacts/pair/day (dense models target the
  // all-pairs mean; on a sparse graph only linked pairs can meet, so the
  // target naturally applies to them).
  sim::Rng rateRng = sim::Rng(config_.seed).fork(3);
  double weightSum = 0.0;
  for (Edge& e : edges_) {
    e.rate = rateRng.paretoTruncated(1.0, config_.paretoShape, config_.rateSpread);
    weightSum += e.rate;
  }
  if (edges_.empty()) return;
  const double meanWeight = weightSum / static_cast<double>(edges_.size());
  const double targetRate = config_.meanContactsPerPairPerDay / sim::days(1);
  const double perWeight = targetRate / meanWeight;
  for (Edge& e : edges_) e.rate *= perWeight;
}

double SyntheticMobility::drawGap(const Edge& e) {
  if (config_.model == RateModel::kMobilityPowerLaw) {
    // Pareto(x_m, α) with x_m = (α-1)/(α·λ) has mean x_m·α/(α-1) = 1/λ:
    // same long-run contact rate as the exponential model, heavier tail.
    const double alpha = config_.interContactAlpha;
    const double xm = (alpha - 1.0) / (alpha * e.rate);
    return streamRng_.pareto(xm, alpha);
  }
  return streamRng_.exponential(e.rate);
}

void SyntheticMobility::scheduleInitial() {
  for (std::uint32_t idx = 0; idx < edges_.size(); ++idx) {
    const double t = drawGap(edges_[idx]);
    if (t < config_.duration) heap_.emplace(t, idx);
  }
}

bool SyntheticMobility::next(Contact& out) {
  if (heap_.empty()) return false;
  const auto [t, idx] = heap_.top();
  heap_.pop();
  const Edge& e = edges_[idx];
  out.start = t;
  out.duration = streamRng_.exponential(1.0 / config_.meanContactDuration);
  out.a = e.a;
  out.b = e.b;
  const double nextT = t + drawGap(e);
  if (nextT < config_.duration) heap_.emplace(nextT, idx);
  return true;
}

double SyntheticMobility::pairSparsity() const {
  const std::size_t n = config_.nodeCount;
  const std::size_t triangle = n >= 2 ? n * (n - 1) / 2 : 0;
  return triangle > 0 ? static_cast<double>(edges_.size()) / static_cast<double>(triangle)
                      : 0.0;
}

RateMatrix SyntheticMobility::groundTruthRates() const {
  RateMatrix m(config_.nodeCount, PairBackend::kSparse);
  for (const Edge& e : edges_) m.setRate(e.a, e.b, e.rate);
  return m;
}

SyntheticTrace SyntheticMobility::materialize() {
  SyntheticTrace out;
  out.rates = groundTruthRates();
  out.community = community_;
  std::vector<Contact> contacts;
  Contact c;
  while (next(c)) contacts.push_back(c);
  out.trace = ContactTrace(config_.nodeCount, std::move(contacts));
  return out;
}

SyntheticTraceConfig mobilityConfig(std::size_t nodes, std::uint64_t seed) {
  SyntheticTraceConfig c;
  c.nodeCount = nodes;
  c.duration = sim::days(14);
  c.model = RateModel::kMobilityCommunity;
  c.meanContactsPerPairPerDay = 0.10;  // Reality-scale per-linked-pair density
  c.paretoShape = 1.5;
  c.rateSpread = 300.0;
  c.communities = std::max<std::size_t>(1, nodes / 64);
  c.interCommunityFraction = 0.05;
  c.meanDegree = 40.0;
  c.diurnal = false;  // ignored by mobility models; set for clarity
  c.meanContactDuration = 300.0;
  c.seed = seed;
  return c;
}

}  // namespace dtncache::trace
