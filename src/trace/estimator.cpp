#include "trace/estimator.hpp"

#include <algorithm>

#include "core/pair_key.hpp"
#include "sim/assert.hpp"
#include "sim/shard_context.hpp"

namespace dtncache::trace {

ContactRateEstimator::ContactRateEstimator(std::size_t nodeCount, EstimatorConfig config,
                                           sim::SimTime startTime)
    : nodeCount_(nodeCount),
      config_(config),
      startTime_(startTime),
      sparse_(useSparsePairs(nodeCount, config.backend)) {
  DTNCACHE_CHECK(config.window > 0.0);
  DTNCACHE_CHECK(config.ewmaAlpha > 0.0 && config.ewmaAlpha <= 1.0);
  DTNCACHE_CHECK(config.priorRate >= 0.0);
  if (sparse_) {
    nodeNbrs_.resize(nodeCount);
  } else {
    pairs_.resize(triangleCount());
    if (config.mode == EstimatorMode::kSlidingWindow) recent_.resize(pairs_.size());
    dirtyBits_ = core::DenseBitset(pairs_.size());
    varyingBits_ = core::DenseBitset(pairs_.size());
  }
  changedRowBits_ = core::DenseBitset(nodeCount);
}

std::size_t ContactRateEstimator::pairIndex(NodeId i, NodeId j) const {
  DTNCACHE_CHECK(i != j && i < nodeCount_ && j < nodeCount_);
  if (i > j) std::swap(i, j);
  return static_cast<std::size_t>(i) * (2 * nodeCount_ - i - 1) / 2 + (j - i - 1);
}

std::uint32_t ContactRateEstimator::findPair(NodeId i, NodeId j) const {
  if (!sparse_) return static_cast<std::uint32_t>(pairIndex(i, j));
  DTNCACHE_CHECK(i != j && i < nodeCount_ && j < nodeCount_);
  return pairSlots_.find(core::packSymmetricPair(i, j));
}

std::uint32_t ContactRateEstimator::findOrCreatePair(NodeId a, NodeId b) {
  if (!sparse_) return static_cast<std::uint32_t>(pairIndex(a, b));
  DTNCACHE_CHECK(a != b && a < nodeCount_ && b < nodeCount_);
  const std::uint64_t key = core::packSymmetricPair(a, b);
  std::uint32_t idx = pairSlots_.find(key);
  if (idx == core::SlotIndex::kNoSlot) {
    idx = static_cast<std::uint32_t>(pairs_.size());
    pairs_.emplace_back();
    if (config_.mode == EstimatorMode::kSlidingWindow) recent_.emplace_back();
    pairSlots_.insert(key, idx);
    const auto insertNbr = [&](NodeId u, NodeId v) {
      auto& row = nodeNbrs_[u];
      const auto pos = std::lower_bound(
          row.begin(), row.end(), v,
          [](const NodeNbr& nb, NodeId id) { return nb.id < id; });
      row.insert(pos, NodeNbr{v, idx});
    };
    insertNbr(a, b);
    insertNbr(b, a);
  }
  return idx;
}

std::uint32_t ContactRateEstimator::indexOfKey(std::uint64_t key) const {
  if (!sparse_) return static_cast<std::uint32_t>(pairIndex(core::pairHigh(key), core::pairLow(key)));
  const std::uint32_t idx = pairSlots_.find(key);
  DTNCACHE_CHECK(idx != core::SlotIndex::kNoSlot);
  return idx;
}

void ContactRateEstimator::recordContact(NodeId a, NodeId b, sim::SimTime t) {
  std::uint32_t idx;
  if (shardMode_) {
    // Workers never create state: the pair was pre-created by
    // enterShardMode. Dirty marking goes to this context's sink, tagged
    // with the recording event's key for the drain-time merge.
    idx = findPair(a, b);
    DTNCACHE_CHECK(idx != kNoPair);
    ShardSink& sink = shardSinks_[sim::tlsShard.ctx];
    if (sink.bits.set(idx))
      sink.entries.push_back(ShardSink::Entry{sim::tlsShard.evTime, sim::tlsShard.evSeq,
                                              idx, core::packSymmetricPair(a, b)});
  } else {
    idx = findOrCreatePair(a, b);
    if (dirtyBits_.set(idx)) dirtyKeys_.push_back(core::packSymmetricPair(a, b));
  }
  PairState& s = pairs_[idx];
  ++s.totalCount;
  if (s.lastContact != sim::kNever) {
    const double interval = t - s.lastContact;
    if (interval > 0.0) {
      s.ewmaInterval = s.ewmaInterval == 0.0
                           ? interval
                           : config_.ewmaAlpha * interval +
                                 (1.0 - config_.ewmaAlpha) * s.ewmaInterval;
    }
  }
  s.lastContact = t;
  if (config_.mode == EstimatorMode::kSlidingWindow) {
    auto& recent = recent_[idx];
    recent.push_back(t);
    while (s.recentStart < recent.size() && recent[s.recentStart] < t - config_.window)
      ++s.recentStart;
    // Compact once the dead prefix dominates, keeping appends amortized O(1).
    if (s.recentStart > recent.size() / 2 && s.recentStart > 16) {
      recent.erase(recent.begin(), recent.begin() + s.recentStart);
      s.recentStart = 0;
    }
  }
}

double ContactRateEstimator::rateOf(std::uint32_t idx, sim::SimTime now) const {
  if (idx == kNoPair) return config_.priorRate;
  const PairState* s = &pairs_[idx];
  if (s->totalCount == 0) return config_.priorRate;

  switch (config_.mode) {
    case EstimatorMode::kCumulative: {
      const double elapsed = now - startTime_;
      if (elapsed <= 0.0) return config_.priorRate;
      return static_cast<double>(s->totalCount) / elapsed;
    }
    case EstimatorMode::kSlidingWindow: {
      // Count contacts inside the window ending at `now`; the row is
      // pruned relative to the *recording* times, so prune again here.
      const auto& recent = recent_[idx];
      std::size_t inWindow = 0;
      for (std::size_t k = recent.size(); k > s->recentStart; --k) {
        const sim::SimTime at = recent[k - 1];
        if (at < now - config_.window) break;
        if (at <= now) ++inWindow;
      }
      const double span = std::min(config_.window, now - startTime_);
      if (span <= 0.0) return config_.priorRate;
      if (inWindow == 0) return config_.priorRate;
      return static_cast<double>(inWindow) / span;
    }
    case EstimatorMode::kEwma: {
      if (s->ewmaInterval <= 0.0) {
        // Only one contact so far: fall back to the cumulative estimate.
        const double elapsed = now - startTime_;
        return elapsed > 0.0 ? static_cast<double>(s->totalCount) / elapsed
                             : config_.priorRate;
      }
      return 1.0 / s->ewmaInterval;
    }
  }
  return config_.priorRate;
}

double ContactRateEstimator::rate(NodeId i, NodeId j, sim::SimTime now) const {
  if (i == j) return 0.0;
  return rateOf(findPair(i, j), now);
}

double ContactRateEstimator::meetingProbability(NodeId i, NodeId j, sim::SimTime window,
                                                sim::SimTime now) const {
  return contactProbability(rate(i, j, now), window);
}

double ContactRateEstimator::nodeRateSum(NodeId i, sim::SimTime now) const {
  if (!sparse_) {
    double sum = 0.0;
    for (NodeId j = 0; j < nodeCount_; ++j)
      if (j != i) sum += rate(i, j, now);
    return sum;
  }
  DTNCACHE_CHECK(i < nodeCount_);
  // Observed peers in ascending order (matching the dense iteration on the
  // pairs that exist), then the closed-form prior for the never-met rest.
  // Note a *seen* pair can still evaluate to priorRate (e.g. an expired
  // sliding window) — that term is summed explicitly, same as dense.
  // Pre-created zero-count pairs (shard mode) count as never-met: folding
  // them into the closed-form term keeps the summation order — and thus the
  // FP result — identical to a lazily-built table.
  double sum = 0.0;
  std::size_t unseen = 0;
  for (const NodeNbr& nb : nodeNbrs_[i]) {
    if (pairs_[nb.idx].totalCount == 0) {
      ++unseen;
      continue;
    }
    sum += rateOf(nb.idx, now);
  }
  if (config_.priorRate > 0.0 && nodeCount_ >= 1)
    sum += config_.priorRate *
           static_cast<double>(nodeCount_ - 1 - (nodeNbrs_[i].size() - unseen));
  return sum;
}

std::size_t ContactRateEstimator::observedPairCount() const {
  // Both backends: pairs with at least one recorded contact. The sparse
  // table can hold zero-count state (shard-mode pre-creation), which does
  // not count as observed.
  std::size_t n = 0;
  for (const PairState& s : pairs_)
    if (s.totalCount > 0) ++n;
  return n;
}

RateMatrix ContactRateEstimator::snapshot(sim::SimTime now) const {
  RateMatrix m(nodeCount_, sparse_ ? PairBackend::kSparse : PairBackend::kDense,
               sparse_ ? config_.priorRate : 0.0);
  if (!sparse_) {
    for (NodeId i = 0; i < nodeCount_; ++i)
      for (NodeId j = i + 1; j < nodeCount_; ++j) m.setRate(i, j, rate(i, j, now));
    return m;
  }
  // Observed pairs only, in canonical (i, ascending j) order; never-met
  // pairs — including zero-count pre-created state — read as the matrix's
  // default rate (== priorRate).
  for (NodeId i = 0; i < nodeCount_; ++i)
    for (const NodeNbr& nb : nodeNbrs_[i])
      if (nb.id > i && pairs_[nb.idx].totalCount > 0)
        m.setRate(i, nb.id, rateOf(nb.idx, now));
  return m;
}

bool ContactRateEstimator::rateStable(const PairState& s, sim::SimTime now) const {
  if (s.totalCount == 0) return true;  // priorRate forever until a contact
  switch (config_.mode) {
    case EstimatorMode::kCumulative:
      return false;  // count / elapsed shrinks as `now` advances
    case EstimatorMode::kSlidingWindow:
      // Once the last contact has left the window the estimate is priorRate
      // at every later time; while anything is in the window the count (and
      // possibly the span) still depends on `now`.
      return s.lastContact < now - config_.window;
    case EstimatorMode::kEwma:
      // 1 / ewma is time-free; the single-contact fallback is cumulative.
      return s.ewmaInterval > 0.0;
  }
  return false;
}

void ContactRateEstimator::evaluateBatch(sim::SimTime now) {
  const std::size_t n = batchIdx_.size();
  batchVal_.resize(n);
  if (n == 0) return;
  const double prior = config_.priorRate;
  if (config_.mode == EstimatorMode::kSlidingWindow) {
    // Window membership walks the per-pair recent row — stays scalar.
    for (std::size_t k = 0; k < n; ++k) batchVal_[k] = rateOf(batchIdx_[k], now);
    return;
  }
  batchCount_.resize(n);
  for (std::size_t k = 0; k < n; ++k)
    batchCount_[k] = static_cast<double>(pairs_[batchIdx_[k]].totalCount);
  const double elapsed = now - startTime_;
  if (config_.mode == EstimatorMode::kCumulative) {
    // rateOf: totalCount == 0 or elapsed <= 0 -> prior, else count / elapsed.
    if (elapsed <= 0.0) {
      std::fill(batchVal_.begin(), batchVal_.end(), prior);
      return;
    }
    for (std::size_t k = 0; k < n; ++k) {
      const double c = batchCount_[k];
      batchVal_[k] = c == 0.0 ? prior : c / elapsed;
    }
    return;
  }
  // kEwma: 1 / ewma, with rateOf's single-contact cumulative fallback.
  batchEwma_.resize(n);
  for (std::size_t k = 0; k < n; ++k)
    batchEwma_[k] = pairs_[batchIdx_[k]].ewmaInterval;
  for (std::size_t k = 0; k < n; ++k) {
    const double c = batchCount_[k];
    const double e = batchEwma_[k];
    batchVal_[k] = c == 0.0        ? prior
                   : e > 0.0       ? 1.0 / e
                   : elapsed > 0.0 ? c / elapsed
                                   : prior;
  }
}

SnapshotStats ContactRateEstimator::snapshotInto(RateMatrix& out, sim::SimTime now,
                                                 std::vector<NodeId>* changedNodes,
                                                 bool force) {
  if (out.nodeCount() != nodeCount_ || out.isSparse() != sparse_ ||
      (sparse_ && out.defaultRate() != config_.priorRate)) {
    out = RateMatrix(nodeCount_, sparse_ ? PairBackend::kSparse : PairBackend::kDense,
                     sparse_ ? config_.priorRate : 0.0);
    snapshotPrimed_ = false;
  }
  SnapshotStats stats;
  if (!snapshotPrimed_) {
    // The whole triangle, computed arithmetically: both backends report the
    // same count even though the sparse pass only touches observed pairs
    // (never-met entries are trivially "re-evaluated" to the prior).
    stats.dirtyPairs = triangleCount();
  } else if (force) {
    // A forced full rewrite still reports the LOGICAL dirty count — what the
    // incremental pass would have re-evaluated — so the full-recompute
    // escape hatch stays counter-identical to the incremental engine (the
    // IncrementalMaintenance equivalence tests diff this).
    stats.dirtyPairs = dirtyKeys_.size();
    for (const std::uint64_t key : varyingKeys_)
      if (!dirtyBits_.test(indexOfKey(key))) ++stats.dirtyPairs;
  }

  changedRowBits_.clear();
  const auto updatePair = [&](NodeId i, NodeId j) {
    const double v = rate(i, j, now);
    if (v != out.rate(i, j)) {
      out.setRate(i, j, v);
      ++stats.changedPairs;
      changedRowBits_.set(i);
      changedRowBits_.set(j);
    }
  };

  if (force || !snapshotPrimed_) {
    // Full rewrite, in the canonical row-major order. Entries outside the
    // dirty/varying lists compare equal to their stored value, so stats and
    // changedNodes match what the incremental pass would have produced.
    // Sparse: only observed pairs can differ from the default the matrix
    // already reads for the rest, so the walk covers adjacency rows only.
    if (!sparse_) {
      for (NodeId i = 0; i < nodeCount_; ++i)
        for (NodeId j = i + 1; j < nodeCount_; ++j) updatePair(i, j);
    } else {
      // Zero-count pre-created pairs evaluate to the prior the matrix
      // already reads by default; skipping them avoids the probe without
      // changing values, stats, or changedNodes.
      for (NodeId i = 0; i < nodeCount_; ++i)
        for (const NodeNbr& nb : nodeNbrs_[i])
          if (nb.id > i && pairs_[nb.idx].totalCount > 0) updatePair(i, nb.id);
    }
  } else {
    // Data-oriented incremental pass. Gather (key, storage index) for the
    // dirty list then the non-dirty time-varying list — the same pair order
    // the scalar loop used — lift the state fields into contiguous columns,
    // evaluate the mode arithmetic over them, and compare-and-scatter the
    // results. The per-pair work in the middle loop is pure double math the
    // compiler can vectorize; the hash probe happens once per pair here
    // instead of inside every rate() call.
    batchKeys_.clear();
    batchIdx_.clear();
    for (const std::uint64_t key : dirtyKeys_) {
      batchKeys_.push_back(key);
      batchIdx_.push_back(indexOfKey(key));
    }
    for (const std::uint64_t key : varyingKeys_) {
      const std::uint32_t idx = indexOfKey(key);
      if (!dirtyBits_.test(idx)) {
        batchKeys_.push_back(key);
        batchIdx_.push_back(idx);
      }
    }
    stats.dirtyPairs = batchKeys_.size();
    evaluateBatch(now);
    for (std::size_t k = 0; k < batchKeys_.size(); ++k) {
      const NodeId i = core::pairHigh(batchKeys_[k]);
      const NodeId j = core::pairLow(batchKeys_[k]);
      const double v = batchVal_[k];
      if (v != out.rate(i, j)) {
        out.setRate(i, j, v);
        ++stats.changedPairs;
        changedRowBits_.set(i);
        changedRowBits_.set(j);
      }
    }
  }

  // Advance the bookkeeping: compact the time-varying list in place, then
  // fold in dirty pairs that are still time-dependent. Both loops reuse the
  // existing vectors — steady-state snapshots allocate nothing.
  std::size_t kept = 0;
  for (const std::uint64_t key : varyingKeys_) {
    const std::uint32_t idx = indexOfKey(key);
    if (rateStable(pairs_[idx], now))
      varyingBits_.reset(idx);
    else
      varyingKeys_[kept++] = key;
  }
  varyingKeys_.resize(kept);
  for (const std::uint64_t key : dirtyKeys_) {
    const std::uint32_t idx = indexOfKey(key);
    dirtyBits_.reset(idx);
    if (!rateStable(pairs_[idx], now) && varyingBits_.set(idx))
      varyingKeys_.push_back(key);
  }
  dirtyKeys_.clear();
  snapshotPrimed_ = true;

  if (changedNodes != nullptr) {
    changedNodes->clear();
    if (stats.changedPairs > 0)
      for (NodeId n = 0; n < nodeCount_; ++n)
        if (changedRowBits_.test(n)) changedNodes->push_back(n);
  }
  return stats;
}

void ContactRateEstimator::enterShardMode(std::size_t contexts,
                                          const std::vector<Contact>& contacts,
                                          std::size_t first, std::size_t end) {
  DTNCACHE_CHECK(!shardMode_);
  DTNCACHE_CHECK(contexts >= 1 && first <= end && end <= contacts.size());
  // Pre-create every pair the run can touch, in trace order — the same
  // first-sight order lazy creation would use, so the adjacency rows and
  // slot layout match a plain run on the delivered subset (zero-count
  // extras are skipped by every read path).
  if (sparse_)
    for (std::size_t c = first; c < end; ++c)
      findOrCreatePair(contacts[c].a, contacts[c].b);
  shardSinks_.resize(contexts);
  for (ShardSink& sink : shardSinks_) {
    sink.bits = core::DenseBitset(pairs_.size());
    sink.entries.clear();
  }
  shardMode_ = true;
}

void ContactRateEstimator::drainShardDirty() {
  bool any = false;
  for (const ShardSink& sink : shardSinks_)
    if (!sink.entries.empty()) {
      any = true;
      break;
    }
  if (!any) return;
  drainScratch_.clear();
  for (ShardSink& sink : shardSinks_) {
    drainScratch_.insert(drainScratch_.end(), sink.entries.begin(), sink.entries.end());
    for (const ShardSink::Entry& e : sink.entries) sink.bits.reset(e.idx);
    sink.entries.clear();
  }
  // One entry per recording event, and an event runs on exactly one
  // context, so keys never tie: sorting by (t, seq) is the total
  // single-threaded recording order.
  std::sort(drainScratch_.begin(), drainScratch_.end(),
            [](const ShardSink::Entry& a, const ShardSink::Entry& b) {
              if (a.t != b.t) return a.t < b.t;
              return a.seq < b.seq;
            });
  for (const ShardSink::Entry& e : drainScratch_)
    if (dirtyBits_.set(e.idx)) dirtyKeys_.push_back(e.key);
}

void ContactRateEstimator::exitShardMode() {
  DTNCACHE_CHECK(shardMode_);
  drainShardDirty();
  shardSinks_.clear();
  shardMode_ = false;
}

}  // namespace dtncache::trace
