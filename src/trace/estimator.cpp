#include "trace/estimator.hpp"

#include <algorithm>

#include "sim/assert.hpp"

namespace dtncache::trace {

ContactRateEstimator::ContactRateEstimator(std::size_t nodeCount, EstimatorConfig config,
                                           sim::SimTime startTime)
    : nodeCount_(nodeCount), config_(config), startTime_(startTime) {
  DTNCACHE_CHECK(nodeCount >= 2);
  DTNCACHE_CHECK(config.window > 0.0);
  DTNCACHE_CHECK(config.ewmaAlpha > 0.0 && config.ewmaAlpha <= 1.0);
  DTNCACHE_CHECK(config.priorRate >= 0.0);
}

std::uint64_t ContactRateEstimator::key(NodeId i, NodeId j) const {
  DTNCACHE_CHECK(i != j && i < nodeCount_ && j < nodeCount_);
  if (i > j) std::swap(i, j);
  return (static_cast<std::uint64_t>(i) << 32) | j;
}

const ContactRateEstimator::PairState* ContactRateEstimator::find(NodeId i, NodeId j) const {
  const auto it = pairs_.find(key(i, j));
  return it == pairs_.end() ? nullptr : &it->second;
}

void ContactRateEstimator::recordContact(NodeId a, NodeId b, sim::SimTime t) {
  PairState& s = pairs_[key(a, b)];
  ++s.totalCount;
  if (s.lastContact != sim::kNever) {
    const double interval = t - s.lastContact;
    if (interval > 0.0) {
      s.ewmaInterval = s.ewmaInterval == 0.0
                           ? interval
                           : config_.ewmaAlpha * interval +
                                 (1.0 - config_.ewmaAlpha) * s.ewmaInterval;
    }
  }
  s.lastContact = t;
  if (config_.mode == EstimatorMode::kSlidingWindow) {
    s.recent.push_back(t);
    while (!s.recent.empty() && s.recent.front() < t - config_.window) s.recent.pop_front();
  }
}

double ContactRateEstimator::rate(NodeId i, NodeId j, sim::SimTime now) const {
  if (i == j) return 0.0;
  const PairState* s = find(i, j);
  if (s == nullptr || s->totalCount == 0) return config_.priorRate;

  switch (config_.mode) {
    case EstimatorMode::kCumulative: {
      const double elapsed = now - startTime_;
      if (elapsed <= 0.0) return config_.priorRate;
      return static_cast<double>(s->totalCount) / elapsed;
    }
    case EstimatorMode::kSlidingWindow: {
      // Count contacts inside the window ending at `now`; the deque is
      // pruned relative to the *recording* times, so prune again here.
      std::size_t inWindow = 0;
      for (auto it = s->recent.rbegin(); it != s->recent.rend(); ++it) {
        if (*it < now - config_.window) break;
        if (*it <= now) ++inWindow;
      }
      const double span = std::min(config_.window, now - startTime_);
      if (span <= 0.0) return config_.priorRate;
      if (inWindow == 0) return config_.priorRate;
      return static_cast<double>(inWindow) / span;
    }
    case EstimatorMode::kEwma: {
      if (s->ewmaInterval <= 0.0) {
        // Only one contact so far: fall back to the cumulative estimate.
        const double elapsed = now - startTime_;
        return elapsed > 0.0 ? static_cast<double>(s->totalCount) / elapsed
                             : config_.priorRate;
      }
      return 1.0 / s->ewmaInterval;
    }
  }
  return config_.priorRate;
}

double ContactRateEstimator::meetingProbability(NodeId i, NodeId j, sim::SimTime window,
                                                sim::SimTime now) const {
  return contactProbability(rate(i, j, now), window);
}

double ContactRateEstimator::nodeRateSum(NodeId i, sim::SimTime now) const {
  double sum = 0.0;
  for (NodeId j = 0; j < nodeCount_; ++j)
    if (j != i) sum += rate(i, j, now);
  return sum;
}

RateMatrix ContactRateEstimator::snapshot(sim::SimTime now) const {
  RateMatrix m(nodeCount_);
  for (NodeId i = 0; i < nodeCount_; ++i)
    for (NodeId j = i + 1; j < nodeCount_; ++j) m.setRate(i, j, rate(i, j, now));
  return m;
}

}  // namespace dtncache::trace
