#pragma once

/// \file contact.hpp
/// Contact events and contact traces.
///
/// A contact trace is the ground truth a trace-driven DTN simulation runs
/// on: a time-ordered list of pairwise node encounters, each with a start
/// time and a duration. Traces come from a synthetic generator (trace/
/// generators.hpp) or from a CSV file in the simple
/// `start,duration,node_a,node_b` format, so real traces (Reality,
/// Infocom'06) can be dropped in when available.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/pair_key.hpp"
#include "sim/time.hpp"

namespace dtncache {

/// Dense node identifier in [0, nodeCount).
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

}  // namespace dtncache

namespace dtncache::trace {

/// Packed symmetric pair key: min(a,b) in the high word. Hashes in one op
/// and sorts exactly like the (min, max) tuple, so open-addressed maps
/// keyed by it can be drained in deterministic pair order by sorting the
/// keys. The packing itself lives in core/pair_key.hpp, shared with every
/// other layer that flat-keys id pairs (estimator pair table, cooperative
/// cache reply dedup).
inline std::uint64_t pairKey(NodeId a, NodeId b) { return core::packSymmetricPair(a, b); }
inline NodeId pairKeyLo(std::uint64_t key) { return core::pairHigh(key); }
inline NodeId pairKeyHi(std::uint64_t key) { return core::pairLow(key); }

/// One pairwise encounter. `a < b` is normalized on insertion.
struct Contact {
  sim::SimTime start = 0.0;
  sim::SimTime duration = 0.0;
  NodeId a = 0;
  NodeId b = 0;

  sim::SimTime end() const { return start + duration; }
  bool involves(NodeId n) const { return a == n || b == n; }
  NodeId peerOf(NodeId n) const { return a == n ? b : a; }
};

/// Aggregate statistics of a trace (the T1 "trace characteristics" table).
struct TraceStats {
  std::size_t nodeCount = 0;
  std::size_t contactCount = 0;
  sim::SimTime duration = 0.0;
  double meanContactsPerPairPerDay = 0.0;
  double meanContactDuration = 0.0;
  double meanPairwiseRate = 0.0;    ///< contacts per second, over pairs that met
  std::size_t pairsThatMet = 0;
};

/// An immutable, time-sorted contact trace.
class ContactTrace {
 public:
  ContactTrace() = default;

  /// Build from an arbitrary-order contact list; normalizes endpoints and
  /// sorts by start time. `nodeCount` must exceed every endpoint id.
  ContactTrace(std::size_t nodeCount, std::vector<Contact> contacts);

  std::size_t nodeCount() const { return nodeCount_; }
  const std::vector<Contact>& contacts() const { return contacts_; }
  bool empty() const { return contacts_.empty(); }

  /// End time of the last contact (0 for an empty trace).
  sim::SimTime duration() const;

  TraceStats stats() const;

  /// Number of contacts between the pair (i, j).
  std::size_t pairContactCount(NodeId i, NodeId j) const;

  /// Empirical contact rate of pair (i, j): contacts / trace duration.
  double pairRate(NodeId i, NodeId j) const;

  /// Keep only contacts with start < cutoff.
  ContactTrace truncated(sim::SimTime cutoff) const;

  /// CSV round-trip. Format: header line then `start,duration,a,b` rows.
  static ContactTrace loadCsv(const std::string& path);
  void saveCsv(const std::string& path) const;
  static ContactTrace readCsv(std::istream& in);
  void writeCsv(std::ostream& out) const;

 private:
  std::size_t nodeCount_ = 0;
  std::vector<Contact> contacts_;
};

}  // namespace dtncache::trace
