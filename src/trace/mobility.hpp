#pragma once

/// \file mobility.hpp
/// Streamed synthetic mobility: large-N contact generation without the
/// O(N²) pair enumeration.
///
/// The dense generators (trace/generators.hpp) draw one Poisson process per
/// node pair — exactly the paper's model, but quadratic in node count and
/// hopeless past a few thousand nodes. The mobility models keep the same
/// pairwise-Poisson analytics on a *sparse contact graph*: each node gets
/// ~meanDegree partners it can ever meet (community-biased or uniform), and
/// only those edges carry a contact process. Real opportunistic traces are
/// exactly this sparse — almost all of the n²/2 device pairs never meet —
/// so the restriction is a fidelity feature, not just a cost dodge.
///
/// Two models:
///  - RateModel::kMobilityCommunity: partners drawn from the node's own
///    community (round-robin assignment, communities = config.communities)
///    except an interCommunityFraction of global "bridge" picks;
///    exponential inter-contact gaps (pairwise Poisson, the paper's model).
///  - RateModel::kMobilityPowerLaw: partners drawn uniformly; inter-contact
///    gaps are Pareto(shape = interContactAlpha > 1) with the scale chosen
///    per edge so the mean gap still equals 1/λ_e — the heavy-tailed
///    inter-contact behavior reported for human mobility, as a
///    model-mismatch stressor for the exponential-assumption estimators.
///
/// Per-edge rates are truncated-Pareto skewed (paretoShape / rateSpread)
/// and renormalized so the mean rate over *linked* pairs hits
/// meanContactsPerPairPerDay. Diurnal modulation is not applied (thinning
/// would break the O(1)-per-contact streaming); `diurnal` is ignored.
///
/// Generation streams: a min-heap over edges keyed by (next contact time,
/// edge id) yields contacts one at a time in nondecreasing start order,
/// with O(nodes + edges) memory and O(log edges) per contact. All
/// randomness is drawn from substreams of config.seed in deterministic
/// construction/heap-pop order, so a config reproduces its trace exactly —
/// streamed or materialized.

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/rng.hpp"
#include "trace/generators.hpp"

namespace dtncache::trace {

class SyntheticMobility {
 public:
  /// `config.model` must be one of the mobility models. Deterministic in
  /// config (seed included): same config, same edge set, same stream.
  explicit SyntheticMobility(const SyntheticTraceConfig& config);

  /// Produce the next contact (start < config.duration, nondecreasing
  /// start). Returns false when the stream is exhausted.
  bool next(Contact& out);

  std::size_t nodeCount() const { return config_.nodeCount; }
  /// Linked pairs in the contact graph (pairs that can ever meet).
  std::size_t edgeCount() const { return edges_.size(); }
  /// Observed-pair fraction: edgeCount / (n(n-1)/2).
  double pairSparsity() const;
  /// Community of each node (empty for kMobilityPowerLaw).
  const std::vector<std::size_t>& community() const { return community_; }

  /// Ground-truth rate matrix of the contact graph (sparse backend;
  /// never-linked pairs read as rate 0).
  RateMatrix groundTruthRates() const;

  /// Drain the whole stream into a SyntheticTrace (trace + ground-truth
  /// rates + communities), the drop-in equivalent of generate(). Call on a
  /// freshly constructed instance; contacts already taken via next() are
  /// not replayed.
  SyntheticTrace materialize();

 private:
  struct Edge {
    NodeId a;
    NodeId b;
    double rate;  ///< λ_e: mean contacts per second on this edge
  };

  void buildGraph();
  void assignRates();
  /// Gap to an edge's next contact (exponential or Pareto per the model).
  double drawGap(const Edge& e);
  void scheduleInitial();

  SyntheticTraceConfig config_;
  sim::Rng streamRng_;  ///< one shared stream, consumed in heap-pop order
  std::vector<Edge> edges_;
  std::vector<std::size_t> community_;
  /// Min-heap of (next contact time, edge id); the id tie-break makes the
  /// pop order — and therefore the RNG consumption order — deterministic.
  std::priority_queue<std::pair<double, std::uint32_t>,
                      std::vector<std::pair<double, std::uint32_t>>,
                      std::greater<std::pair<double, std::uint32_t>>>
      heap_;
};

/// Large-N preset: community-structured sparse mobility sized by `nodes`
/// (≈64 nodes per community, degree 40, Reality-like per-pair density).
/// The scaling recipe in docs/scaling.md builds on this.
SyntheticTraceConfig mobilityConfig(std::size_t nodes, std::uint64_t seed = 1);

}  // namespace dtncache::trace
