#pragma once

/// \file estimator.hpp
/// Online estimation of pairwise contact rates from observed contacts.
///
/// Nodes in the paper's scheme do not know the true λ_ij; each maintains an
/// estimate from its own contact history (and from histories gossiped on
/// contact — the simulation feeds every observed contact of a pair into one
/// shared estimator per run, which models the paper's metadata exchange
/// without simulating the gossip bytes; the bytes are accounted as control
/// overhead by the protocol layer).
///
/// Three estimation modes:
///  - kCumulative: MLE over the whole history, count / elapsed. Converges to
///    the truth, slow to track change.
///  - kSlidingWindow: count in the last W seconds / W. The window length is
///    the knob of the F9 estimator-sensitivity ablation.
///  - kEwma: exponentially weighted mean of inter-contact intervals,
///    rate = 1 / ewma. Reacts fastest, noisiest.

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "trace/contact.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::trace {

enum class EstimatorMode { kCumulative, kSlidingWindow, kEwma };

struct EstimatorConfig {
  EstimatorMode mode = EstimatorMode::kCumulative;
  sim::SimTime window = sim::days(7);  ///< kSlidingWindow only
  double ewmaAlpha = 0.3;              ///< kEwma only: weight of the newest interval
  /// Rate assumed for a pair never seen (0 disables such pairs entirely;
  /// a small floor keeps "no information yet" pairs selectable early on).
  double priorRate = 0.0;
};

class ContactRateEstimator {
 public:
  ContactRateEstimator(std::size_t nodeCount, EstimatorConfig config,
                       sim::SimTime startTime = 0.0);

  /// Feed one observed contact (call at its start time).
  void recordContact(NodeId a, NodeId b, sim::SimTime t);

  /// Current estimate of λ_ij given observations up to `now`.
  double rate(NodeId i, NodeId j, sim::SimTime now) const;

  /// P(i meets j within `window` of `now`) under the current estimate.
  double meetingProbability(NodeId i, NodeId j, sim::SimTime window,
                            sim::SimTime now) const;

  /// Estimated activity of node i: sum over peers of rate(i, ·).
  double nodeRateSum(NodeId i, sim::SimTime now) const;

  /// Snapshot all estimates into a RateMatrix (for centrality computation).
  RateMatrix snapshot(sim::SimTime now) const;

  std::size_t nodeCount() const { return nodeCount_; }
  const EstimatorConfig& config() const { return config_; }

 private:
  /// Pair states live in a dense upper-triangular array — the estimator is
  /// probed for every forwarding decision at every contact (rate() is by
  /// far its hottest entry point), and with a few hundred nodes the full
  /// triangle is smaller than the hash map it replaces, with one indexed
  /// load per lookup instead of a hash probe.
  struct PairState {
    std::size_t totalCount = 0;
    sim::SimTime lastContact = sim::kNever;
    double ewmaInterval = 0.0;   ///< 0 = uninitialized
    std::uint32_t recentStart = 0;  ///< live prefix offset into recent_ row
  };

  /// Triangular index of the normalized pair (i < j after swap).
  std::size_t pairIndex(NodeId i, NodeId j) const;

  std::size_t nodeCount_;
  EstimatorConfig config_;
  sim::SimTime startTime_;
  std::vector<PairState> pairs_;  ///< n(n-1)/2 entries, triangular
  /// Per-pair recent contact times (kSlidingWindow only; rows are pruned
  /// via PairState::recentStart and compacted amortized-O(1)).
  std::vector<std::vector<sim::SimTime>> recent_;
};

}  // namespace dtncache::trace
