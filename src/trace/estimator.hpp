#pragma once

/// \file estimator.hpp
/// Online estimation of pairwise contact rates from observed contacts.
///
/// Nodes in the paper's scheme do not know the true λ_ij; each maintains an
/// estimate from its own contact history (and from histories gossiped on
/// contact — the simulation feeds every observed contact of a pair into one
/// shared estimator per run, which models the paper's metadata exchange
/// without simulating the gossip bytes; the bytes are accounted as control
/// overhead by the protocol layer).
///
/// Three estimation modes:
///  - kCumulative: MLE over the whole history, count / elapsed. Converges to
///    the truth, slow to track change.
///  - kSlidingWindow: count in the last W seconds / W. The window length is
///    the knob of the F9 estimator-sensitivity ablation.
///  - kEwma: exponentially weighted mean of inter-contact intervals,
///    rate = 1 / ewma. Reacts fastest, noisiest.
///
/// Pair state is stored dense (triangular array) at paper scale and sparse
/// (observed pairs only, SlotIndex-keyed) at large N — see
/// trace/pair_backend.hpp for the selection rule and the cross-backend
/// equivalence contract. Both backends return identical estimates; with
/// priorRate == 0 (the entire sweep surface) snapshots, stats, and changed-
/// node lists are bit-identical too. The one documented deviation: with a
/// nonzero priorRate the dense backend's *first* snapshot materializes the
/// prior into every never-met cell (counting them as changed), while the
/// sparse backend leaves them implicit as the matrix's default rate — same
/// values on read, different changed-pair accounting on that first call.

#include <cstdint>
#include <vector>

#include "core/dense_bitset.hpp"
#include "core/slot_index.hpp"
#include "sim/time.hpp"
#include "trace/contact.hpp"
#include "trace/pair_backend.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::trace {

/// What an in-place snapshot actually did (see
/// ContactRateEstimator::snapshotInto).
struct SnapshotStats {
  /// Pairs the incremental path re-evaluated this snapshot: the dirty list
  /// (touched by recordContact since the last snapshot) plus the
  /// time-varying list (pairs whose estimate depends on `now` even without
  /// new contacts). A full/first snapshot reports the whole triangle
  /// (never-met pairs are trivially re-evaluated to the prior, so both
  /// backends report the same number).
  std::size_t dirtyPairs = 0;
  /// Pairs whose written value actually differs from the previous snapshot.
  std::size_t changedPairs = 0;
};

enum class EstimatorMode { kCumulative, kSlidingWindow, kEwma };

struct EstimatorConfig {
  EstimatorMode mode = EstimatorMode::kCumulative;
  sim::SimTime window = sim::days(7);  ///< kSlidingWindow only
  double ewmaAlpha = 0.3;              ///< kEwma only: weight of the newest interval
  /// Rate assumed for a pair never seen (0 disables such pairs entirely;
  /// a small floor keeps "no information yet" pairs selectable early on).
  double priorRate = 0.0;
  /// Pair-state storage: dense triangle, sparse observed-pair table, or
  /// size-based auto selection (trace/pair_backend.hpp).
  PairBackend backend = PairBackend::kAuto;
};

class ContactRateEstimator {
 public:
  /// `nodeCount` may be 0 or 1 (degenerate estimators with no pairs).
  ContactRateEstimator(std::size_t nodeCount, EstimatorConfig config,
                       sim::SimTime startTime = 0.0);

  /// Feed one observed contact (call at its start time).
  void recordContact(NodeId a, NodeId b, sim::SimTime t);

  /// Current estimate of λ_ij given observations up to `now`.
  double rate(NodeId i, NodeId j, sim::SimTime now) const;

  /// P(i meets j within `window` of `now`) under the current estimate.
  double meetingProbability(NodeId i, NodeId j, sim::SimTime window,
                            sim::SimTime now) const;

  /// Estimated activity of node i: sum over peers of rate(i, ·). Sparse
  /// backend: observed peers in ascending order plus the closed-form prior
  /// contribution for the rest.
  double nodeRateSum(NodeId i, sim::SimTime now) const;

  /// Snapshot all estimates into a RateMatrix (for centrality computation).
  /// The matrix uses the estimator's backend; a sparse snapshot stores only
  /// observed pairs and reads `priorRate` for the rest.
  RateMatrix snapshot(sim::SimTime now) const;

  /// Incrementally refresh `out` in place so it equals `snapshot(now)`
  /// bit-for-bit, rewriting only pairs that can have changed since the last
  /// snapshotInto call: pairs touched by recordContact (the dirty list) and
  /// pairs whose estimate is a function of `now` (the time-varying list —
  /// e.g. every seen pair under kCumulative, single-contact pairs under
  /// kEwma, pairs with live window contents under kSlidingWindow). Each
  /// rewritten entry is recomputed by the exact same rate() evaluation a
  /// full snapshot performs, so incremental and full snapshots are
  /// bit-identical; untouched entries are provably stable in `now`.
  ///
  /// `changedNodes`, when non-null, receives the ascending list of node ids
  /// with at least one changed row entry. With `force` every pair is
  /// rewritten (same values, same stats, same changedNodes — the
  /// full-recompute escape hatch), and the dirty/time-varying bookkeeping
  /// advances identically.
  ///
  /// The first call (or a call after a node-count/backend mismatch) resizes
  /// `out` and performs a full rewrite. The dirty list is consumed by the
  /// call, so the incremental contract holds for a single target matrix
  /// only. Steady-state calls allocate nothing once the bookkeeping is warm.
  SnapshotStats snapshotInto(RateMatrix& out, sim::SimTime now,
                             std::vector<NodeId>* changedNodes = nullptr,
                             bool force = false);

  /// Pairs currently on the dirty list (touched since the last snapshotInto).
  std::size_t dirtyPairCount() const { return dirtyKeys_.size(); }

  /// Pairs currently tracked as time-varying (re-evaluated every snapshot).
  std::size_t timeVaryingPairCount() const { return varyingKeys_.size(); }

  /// Pairs with at least one observed contact.
  std::size_t observedPairCount() const;

  std::size_t nodeCount() const { return nodeCount_; }
  bool isSparse() const { return sparse_; }
  const EstimatorConfig& config() const { return config_; }

  /// Sharded-kernel support (runner/shard_driver). Between enterShardMode
  /// and exitShardMode, recordContact may run on worker threads — distinct
  /// pairs concurrently; cross-thread ordering comes from the driver's
  /// epoch protocol, never from this class. Two things change:
  ///  - pair creation is disabled: every pair appearing in
  ///    `contacts[first, end)` is pre-created here (in trace order), so
  ///    workers never grow the pair table or the adjacency rows. Pre-created
  ///    pairs that never record a contact (e.g. churn-suppressed) stay
  ///    invisible: every read path skips totalCount == 0 state.
  ///  - dirty marking goes to a per-context sink, each entry tagged with the
  ///    recording event's (time, sequence) key from sim::tlsShard.
  /// drainShardDirty(), called by the coordinator with workers quiescent,
  /// merges the sinks in tag order into the regular dirty list — the exact
  /// single-threaded first-touch order, which matters because it fixes the
  /// sparse snapshot's insertion order and therefore downstream FP sums.
  void enterShardMode(std::size_t contexts, const std::vector<Contact>& contacts,
                      std::size_t first, std::size_t end);
  void drainShardDirty();
  void exitShardMode();

 private:
  /// Dense backend: pair states live in an upper-triangular array — the
  /// estimator is probed for every forwarding decision at every contact
  /// (rate() is by far its hottest entry point), and with a few hundred
  /// nodes the full triangle is smaller than the hash map it replaces, with
  /// one indexed load per lookup instead of a hash probe. Sparse backend:
  /// states live in an insertion-ordered slot vector reached through an
  /// open-addressing SlotIndex (one probe per lookup), so memory follows
  /// observed pairs, not n².
  struct PairState {
    std::size_t totalCount = 0;
    sim::SimTime lastContact = sim::kNever;
    double ewmaInterval = 0.0;   ///< 0 = uninitialized
    std::uint32_t recentStart = 0;  ///< live prefix offset into recent_ row
  };

  /// Sparse adjacency entry: peer id + index of the pair's state in pairs_.
  struct NodeNbr {
    NodeId id;
    std::uint32_t idx;
  };

  static constexpr std::uint32_t kNoPair = static_cast<std::uint32_t>(-1);

  /// Triangular index of the normalized pair (i < j after swap); dense only.
  std::size_t pairIndex(NodeId i, NodeId j) const;

  /// Storage index of the pair (triangular index or sparse slot), or kNoPair
  /// if the sparse backend has never seen it.
  std::uint32_t findPair(NodeId i, NodeId j) const;

  /// Like findPair, but creates sparse state on first sight.
  std::uint32_t findOrCreatePair(NodeId a, NodeId b);

  /// Storage index for a packed pair key (pairs on the dirty/varying lists
  /// always exist).
  std::uint32_t indexOfKey(std::uint64_t key) const;

  /// Estimate for a pair state (kNoPair reads as priorRate).
  double rateOf(std::uint32_t idx, sim::SimTime now) const;

  /// Evaluate rates for every pair in batchIdx_ into batchVal_, using the
  /// gathered contiguous columns (batchCount_/batchEwma_) so the per-mode
  /// arithmetic runs as a straight-line loop over doubles instead of a
  /// hash-probe + mode-switch per pair. Exactly the rateOf() expressions —
  /// results are bit-identical. kSlidingWindow needs the per-pair recent
  /// row and stays scalar.
  void evaluateBatch(sim::SimTime now);

  /// Number of pairs a full snapshot conceptually re-evaluates (the whole
  /// triangle, identical across backends).
  std::size_t triangleCount() const {
    return nodeCount_ >= 2 ? nodeCount_ * (nodeCount_ - 1) / 2 : 0;
  }

  /// True when this pair's estimate no longer depends on `now` — it will
  /// return the same value at every later time until a new contact arrives.
  /// Per mode: kCumulative is never stable once seen (count / elapsed);
  /// kSlidingWindow is stable once the last contact has left the window
  /// (priorRate from then on); kEwma is stable once an inter-contact
  /// interval exists (1 / ewma), unstable on the single-contact cumulative
  /// fallback.
  bool rateStable(const PairState& s, sim::SimTime now) const;

  std::size_t nodeCount_;
  EstimatorConfig config_;
  sim::SimTime startTime_;
  bool sparse_ = false;

  /// Dense: n(n-1)/2 entries, triangular. Sparse: one entry per observed
  /// pair, insertion order, addressed through pairSlots_.
  std::vector<PairState> pairs_;
  core::SlotIndex pairSlots_;            ///< sparse: packed pair -> index into pairs_
  std::vector<std::vector<NodeNbr>> nodeNbrs_;  ///< sparse: per node, ascending peers

  /// Per-pair recent contact times (kSlidingWindow only; rows are pruned
  /// via PairState::recentStart and compacted amortized-O(1)). Indexed like
  /// pairs_.
  std::vector<std::vector<sim::SimTime>> recent_;

  /// Incremental-snapshot bookkeeping: dedup'd packed-pair lists, with
  /// membership bits over the pair storage index space (triangular index
  /// or sparse slot). `dirty` = touched by recordContact since the last
  /// snapshotInto (one bit test + rare push on the contact hot path);
  /// `varying` = seen pairs whose estimate still depends on `now`,
  /// recompacted at each snapshot.
  core::DenseBitset dirtyBits_;
  std::vector<std::uint64_t> dirtyKeys_;
  core::DenseBitset varyingBits_;
  std::vector<std::uint64_t> varyingKeys_;
  core::DenseBitset changedRowBits_;  ///< per-snapshot scratch, node ids
  bool snapshotPrimed_ = false;

  /// snapshotInto's data-oriented scratch: the incremental pass gathers
  /// (key, storage index) for the dirty + time-varying lists once, lifts
  /// the fields the mode needs into contiguous columns, evaluates, then
  /// compare-and-scatters. Members (not locals) so steady-state snapshots
  /// stay allocation-free.
  std::vector<std::uint64_t> batchKeys_;
  std::vector<std::uint32_t> batchIdx_;
  std::vector<double> batchCount_;
  std::vector<double> batchEwma_;
  std::vector<double> batchVal_;

  /// Shard mode: per-context dirty sink (selected by sim::tlsShard). `bits`
  /// dedups within the sink between drains; entries carry the event key the
  /// drain sorts by.
  struct ShardSink {
    struct Entry {
      sim::SimTime t;
      std::uint64_t seq;
      std::uint32_t idx;
      std::uint64_t key;
    };
    core::DenseBitset bits;
    std::vector<Entry> entries;
  };
  bool shardMode_ = false;
  std::vector<ShardSink> shardSinks_;
  std::vector<ShardSink::Entry> drainScratch_;
};

}  // namespace dtncache::trace
