#pragma once

/// \file estimator.hpp
/// Online estimation of pairwise contact rates from observed contacts.
///
/// Nodes in the paper's scheme do not know the true λ_ij; each maintains an
/// estimate from its own contact history (and from histories gossiped on
/// contact — the simulation feeds every observed contact of a pair into one
/// shared estimator per run, which models the paper's metadata exchange
/// without simulating the gossip bytes; the bytes are accounted as control
/// overhead by the protocol layer).
///
/// Three estimation modes:
///  - kCumulative: MLE over the whole history, count / elapsed. Converges to
///    the truth, slow to track change.
///  - kSlidingWindow: count in the last W seconds / W. The window length is
///    the knob of the F9 estimator-sensitivity ablation.
///  - kEwma: exponentially weighted mean of inter-contact intervals,
///    rate = 1 / ewma. Reacts fastest, noisiest.

#include <cstdint>
#include <vector>

#include "core/dense_bitset.hpp"
#include "sim/time.hpp"
#include "trace/contact.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::trace {

/// What an in-place snapshot actually did (see
/// ContactRateEstimator::snapshotInto).
struct SnapshotStats {
  /// Pairs the incremental path re-evaluated this snapshot: the dirty list
  /// (touched by recordContact since the last snapshot) plus the
  /// time-varying list (pairs whose estimate depends on `now` even without
  /// new contacts). A full/first snapshot reports the whole triangle.
  std::size_t dirtyPairs = 0;
  /// Pairs whose written value actually differs from the previous snapshot.
  std::size_t changedPairs = 0;
};

enum class EstimatorMode { kCumulative, kSlidingWindow, kEwma };

struct EstimatorConfig {
  EstimatorMode mode = EstimatorMode::kCumulative;
  sim::SimTime window = sim::days(7);  ///< kSlidingWindow only
  double ewmaAlpha = 0.3;              ///< kEwma only: weight of the newest interval
  /// Rate assumed for a pair never seen (0 disables such pairs entirely;
  /// a small floor keeps "no information yet" pairs selectable early on).
  double priorRate = 0.0;
};

class ContactRateEstimator {
 public:
  ContactRateEstimator(std::size_t nodeCount, EstimatorConfig config,
                       sim::SimTime startTime = 0.0);

  /// Feed one observed contact (call at its start time).
  void recordContact(NodeId a, NodeId b, sim::SimTime t);

  /// Current estimate of λ_ij given observations up to `now`.
  double rate(NodeId i, NodeId j, sim::SimTime now) const;

  /// P(i meets j within `window` of `now`) under the current estimate.
  double meetingProbability(NodeId i, NodeId j, sim::SimTime window,
                            sim::SimTime now) const;

  /// Estimated activity of node i: sum over peers of rate(i, ·).
  double nodeRateSum(NodeId i, sim::SimTime now) const;

  /// Snapshot all estimates into a RateMatrix (for centrality computation).
  RateMatrix snapshot(sim::SimTime now) const;

  /// Incrementally refresh `out` in place so it equals `snapshot(now)`
  /// bit-for-bit, rewriting only pairs that can have changed since the last
  /// snapshotInto call: pairs touched by recordContact (the dirty list) and
  /// pairs whose estimate is a function of `now` (the time-varying list —
  /// e.g. every seen pair under kCumulative, single-contact pairs under
  /// kEwma, pairs with live window contents under kSlidingWindow). Each
  /// rewritten entry is recomputed by the exact same rate() evaluation a
  /// full snapshot performs, so incremental and full snapshots are
  /// bit-identical; untouched entries are provably stable in `now`.
  ///
  /// `changedNodes`, when non-null, receives the ascending list of node ids
  /// with at least one changed row entry. With `force` every pair is
  /// rewritten (same values, same stats, same changedNodes — the
  /// full-recompute escape hatch), and the dirty/time-varying bookkeeping
  /// advances identically.
  ///
  /// The first call (or a call after a node-count mismatch) resizes `out`
  /// and performs a full rewrite. The dirty list is consumed by the call,
  /// so the incremental contract holds for a single target matrix only.
  /// Steady-state calls allocate nothing once the bookkeeping is warm.
  SnapshotStats snapshotInto(RateMatrix& out, sim::SimTime now,
                             std::vector<NodeId>* changedNodes = nullptr,
                             bool force = false);

  /// Pairs currently on the dirty list (touched since the last snapshotInto).
  std::size_t dirtyPairCount() const { return dirtyKeys_.size(); }

  /// Pairs currently tracked as time-varying (re-evaluated every snapshot).
  std::size_t timeVaryingPairCount() const { return varyingKeys_.size(); }

  std::size_t nodeCount() const { return nodeCount_; }
  const EstimatorConfig& config() const { return config_; }

 private:
  /// Pair states live in a dense upper-triangular array — the estimator is
  /// probed for every forwarding decision at every contact (rate() is by
  /// far its hottest entry point), and with a few hundred nodes the full
  /// triangle is smaller than the hash map it replaces, with one indexed
  /// load per lookup instead of a hash probe.
  struct PairState {
    std::size_t totalCount = 0;
    sim::SimTime lastContact = sim::kNever;
    double ewmaInterval = 0.0;   ///< 0 = uninitialized
    std::uint32_t recentStart = 0;  ///< live prefix offset into recent_ row
  };

  /// Triangular index of the normalized pair (i < j after swap).
  std::size_t pairIndex(NodeId i, NodeId j) const;

  /// True when this pair's estimate no longer depends on `now` — it will
  /// return the same value at every later time until a new contact arrives.
  /// Per mode: kCumulative is never stable once seen (count / elapsed);
  /// kSlidingWindow is stable once the last contact has left the window
  /// (priorRate from then on); kEwma is stable once an inter-contact
  /// interval exists (1 / ewma), unstable on the single-contact cumulative
  /// fallback.
  bool rateStable(const PairState& s, sim::SimTime now) const;

  std::size_t nodeCount_;
  EstimatorConfig config_;
  sim::SimTime startTime_;
  std::vector<PairState> pairs_;  ///< n(n-1)/2 entries, triangular
  /// Per-pair recent contact times (kSlidingWindow only; rows are pruned
  /// via PairState::recentStart and compacted amortized-O(1)).
  std::vector<std::vector<sim::SimTime>> recent_;

  /// Incremental-snapshot bookkeeping: dedup'd packed-pair lists over the
  /// triangular index space. `dirty` = touched by recordContact since the
  /// last snapshotInto (one bit test + rare push on the contact hot path);
  /// `varying` = seen pairs whose estimate still depends on `now`,
  /// recompacted at each snapshot.
  core::DenseBitset dirtyBits_;
  std::vector<std::uint64_t> dirtyKeys_;
  core::DenseBitset varyingBits_;
  std::vector<std::uint64_t> varyingKeys_;
  core::DenseBitset changedRowBits_;  ///< per-snapshot scratch, node ids
  bool snapshotPrimed_ = false;
};

}  // namespace dtncache::trace
