#pragma once

/// \file generators.hpp
/// Synthetic contact-trace generators.
///
/// The paper evaluates on the MIT Reality and Haggle Infocom'06 Bluetooth
/// traces, which are not redistributable here. Following the substitution
/// rule in DESIGN.md we generate traces from the same statistical model the
/// authors use to analyze those traces: heterogeneous pairwise Poisson
/// contact processes. The generator supports
///   - heavy-tailed (truncated Pareto) pairwise rates — the strong rate skew
///     real traces exhibit;
///   - community structure — intra-community pairs meet far more often;
///   - diurnal activity modulation — day/night cycles (Reality) or
///     conference-session bursts (Infocom).
/// Two presets, realityLike() and infocomLike(), match the node counts and
/// qualitative density/duration regimes of the originals.

#include <cstdint>

#include "sim/rng.hpp"
#include "trace/contact.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::trace {

enum class RateModel {
  kHomogeneous,  ///< every pair shares one rate
  kPareto,       ///< i.i.d. truncated-Pareto pairwise rates
  kCommunity,    ///< Pareto rates, boosted within communities, damped across
  /// Streamed mobility models (trace/mobility.hpp): contacts occur only on
  /// a sparse contact graph (meanDegree edges per node) instead of every
  /// pair, so generation cost and memory are O(nodes + edges + contacts)
  /// and node counts of 10^5–10^6 are practical. Diurnal modulation is not
  /// applied by these models (the thinning pass would defeat streaming);
  /// `diurnal` is ignored.
  kMobilityCommunity,  ///< community-biased sparse graph, exponential gaps
  kMobilityPowerLaw,   ///< uniform sparse graph, Pareto inter-contact gaps
};

struct SyntheticTraceConfig {
  std::size_t nodeCount = 50;
  sim::SimTime duration = sim::days(14);
  RateModel model = RateModel::kCommunity;

  /// Target mean contacts per pair per day (over all pairs, after
  /// community/diurnal adjustments — the generator renormalizes to hit it).
  double meanContactsPerPairPerDay = 0.2;

  /// Pareto shape for the pairwise-rate distribution; smaller = more skew.
  /// 1.5 reproduces the heavy skew of Bluetooth encounter traces.
  double paretoShape = 1.5;
  /// Ratio of the largest to smallest pairwise rate (truncation cap).
  double rateSpread = 200.0;

  std::size_t communities = 6;
  /// Multiplier applied to intra-community pair rates before renormalizing.
  double intraCommunityBoost = 8.0;

  /// Diurnal modulation: rate is scaled by `nightActivity` during the night
  /// third of each day. Disabled when nightActivity == 1.
  bool diurnal = true;
  double nightActivity = 0.15;

  /// Contact durations are exponential with this mean (seconds).
  double meanContactDuration = 120.0;

  // --- mobility models only (kMobilityCommunity / kMobilityPowerLaw) ---

  /// Target mean number of contact-graph neighbors per node. The pair
  /// sparsity of the generated trace is ~meanDegree / (nodeCount - 1).
  double meanDegree = 40.0;
  /// kMobilityCommunity: probability an edge endpoint is drawn from the
  /// whole network instead of the node's own community (the bridges that
  /// keep the graph connected across communities).
  double interCommunityFraction = 0.05;
  /// kMobilityPowerLaw: Pareto shape of the inter-contact gap distribution;
  /// must be > 1 so the mean gap is finite (2.0 ≈ the 1+α exponents
  /// reported for human inter-contact times). Ignored by the exponential
  /// model.
  double interContactAlpha = 2.0;

  std::uint64_t seed = 1;
};

struct SyntheticTrace {
  ContactTrace trace;
  /// Ground-truth average pairwise rates (diurnal modulation averaged in);
  /// the "oracle knowledge" arm of the estimator ablation.
  RateMatrix rates;
  /// Community assignment of each node (empty unless kCommunity).
  std::vector<std::size_t> community;
};

/// Generate a trace from the config. Deterministic in config.seed.
SyntheticTrace generate(const SyntheticTraceConfig& config);

/// 97 nodes / 30 days / strong communities / day-night cycle: a scaled
/// stand-in for the MIT Reality Mining campus trace (97 devices, 9 months;
/// we shorten to 30 days and keep per-day density, which preserves every
/// rate-driven decision while keeping runs laptop-sized).
SyntheticTraceConfig realityLikeConfig(std::uint64_t seed = 1);

/// 78 nodes / 4 days / dense mixing / weak communities: a stand-in for the
/// Haggle Infocom'06 conference trace (78 iMotes, ~4 days, very dense).
SyntheticTraceConfig infocomLikeConfig(std::uint64_t seed = 1);

/// Homogeneous helper for unit tests and analytical cross-checks.
SyntheticTraceConfig homogeneousConfig(std::size_t nodes, double contactsPerPairPerDay,
                                       sim::SimTime duration, std::uint64_t seed = 1);

}  // namespace dtncache::trace
