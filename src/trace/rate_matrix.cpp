#include "trace/rate_matrix.hpp"

namespace dtncache::trace {

RateMatrix RateMatrix::fitFromTrace(const ContactTrace& trace) {
  RateMatrix m(trace.nodeCount());
  const sim::SimTime d = trace.duration();
  if (d <= 0.0) return m;
  // Accumulate counts in one pass, then normalize.
  for (const auto& c : trace.contacts())
    m.rates_[m.index(c.a, c.b)] += 1.0;
  for (auto& r : m.rates_) r /= d;
  return m;
}

}  // namespace dtncache::trace
