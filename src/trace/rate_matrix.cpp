#include "trace/rate_matrix.hpp"

#include <algorithm>

namespace dtncache::trace {

double& RateMatrix::slotOf(NodeId i, NodeId j) {
  const std::uint64_t key = core::packSymmetricPair(i, j);
  std::uint32_t slot = index_.find(key);
  if (slot == core::SlotIndex::kNoSlot) {
    slot = static_cast<std::uint32_t>(values_.size());
    values_.push_back(defaultRate_);
    index_.insert(key, slot);
    insertNeighbor(i, j, slot);
    insertNeighbor(j, i, slot);
  }
  return values_[slot];
}

void RateMatrix::insertNeighbor(NodeId i, NodeId j, std::uint32_t slot) {
  auto& row = neighbors_[i];
  const auto pos = std::lower_bound(
      row.begin(), row.end(), j,
      [](const Neighbor& nb, NodeId id) { return nb.id < id; });
  row.insert(pos, Neighbor{j, slot});
}

RateMatrix RateMatrix::fitFromTrace(const ContactTrace& trace, PairBackend backend) {
  RateMatrix m(trace.nodeCount(), backend);
  const sim::SimTime d = trace.duration();
  if (d <= 0.0) return m;
  // Accumulate counts in one pass, then normalize. Per-pair counts are
  // order-free, so both backends produce identical values.
  if (!m.sparse_) {
    for (const auto& c : trace.contacts()) m.rates_[m.index(c.a, c.b)] += 1.0;
    for (auto& r : m.rates_) r /= d;
  } else {
    for (const auto& c : trace.contacts()) m.slotOf(c.a, c.b) += 1.0;
    for (auto& r : m.values_) r /= d;
  }
  return m;
}

}  // namespace dtncache::trace
