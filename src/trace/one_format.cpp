#include "trace/one_format.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <sstream>
#include <unordered_map>

#include "sim/assert.hpp"

namespace dtncache::trace {

OneImportResult loadOneConnectivity(std::istream& in) {
  OneImportResult result;
  std::unordered_map<std::string, NodeId> ids;
  std::vector<Contact> contacts;
  std::unordered_map<std::uint64_t, sim::SimTime> open;  // pair -> up time

  auto idOf = [&](const std::string& host) {
    const auto [it, inserted] = ids.emplace(host, static_cast<NodeId>(ids.size()));
    if (inserted) result.hostNames.push_back(host);
    return it->second;
  };

  std::string line;
  sim::SimTime lastTime = 0.0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    double time = 0.0;
    std::string kind, h1, h2, state;
    if (!(ls >> time >> kind >> h1 >> h2 >> state)) {
      ++result.ignoredLines;
      continue;
    }
    if (kind != "CONN") {
      ++result.ignoredLines;
      continue;
    }
    DTNCACHE_CHECK_MSG(time >= 0.0, "negative timestamp in ONE trace: " << line);
    lastTime = std::max(lastTime, time);
    const NodeId a = idOf(h1);
    const NodeId b = idOf(h2);
    if (a == b) {
      ++result.ignoredLines;  // self-connection artifacts exist in the wild
      continue;
    }
    const std::uint64_t key = pairKey(a, b);
    if (state == "up") {
      // A re-`up` of an already-open pair restarts the contact; close the
      // previous one at the new up time (zero loss of connected time).
      if (const auto it = open.find(key); it != open.end()) {
        contacts.push_back({it->second, time - it->second, a, b});
        it->second = time;
      } else {
        open.emplace(key, time);
      }
    } else if (state == "down") {
      const auto it = open.find(key);
      if (it == open.end()) {
        ++result.unmatchedDowns;
        continue;
      }
      contacts.push_back({it->second, time - it->second, a, b});
      open.erase(it);
    } else {
      ++result.ignoredLines;
    }
  }

  for (const auto& [key, start] : open) {
    const auto a = static_cast<NodeId>(key >> 32);
    const auto b = static_cast<NodeId>(key & 0xffffffff);
    contacts.push_back({start, std::max(0.0, lastTime - start), a, b});
    ++result.unterminatedUps;
  }

  result.trace = ContactTrace(ids.size(), std::move(contacts));
  return result;
}

OneImportResult loadOneConnectivityFile(const std::string& path) {
  std::ifstream in(path);
  DTNCACHE_CHECK_MSG(in.good(), "cannot open ONE trace file " << path);
  return loadOneConnectivity(in);
}

}  // namespace dtncache::trace
