#pragma once

/// \file rate_matrix.hpp
/// Symmetric matrix of pairwise contact rates λ_ij, dense or sparse.
///
/// The exponential pairwise inter-contact model — contacts of pair (i,j)
/// arriving as a Poisson process with rate λ_ij — is the analytical backbone
/// of the paper: every refresh-probability and replication decision reduces
/// to functions of λ_ij. A RateMatrix is either ground truth (driving a
/// synthetic generator, or fit from a whole trace) or a node's local
/// estimate (trace/estimator.hpp).
///
/// Two storage backends behind one interface (trace/pair_backend.hpp):
///  - dense: the classic n(n-1)/2 upper-triangular array — one indexed load
///    per lookup, ideal at paper scale (tens to hundreds of nodes);
///  - sparse: observed pairs only, in an open-addressing SlotIndex keyed by
///    packed pair plus per-node ascending adjacency rows. Pairs never
///    stored read as `defaultRate()` (0 unless constructed otherwise), and
///    row iteration / rate sums touch only stored neighbors — the
///    representation that makes 10^5–10^6-node scenarios fit in memory.
/// Backend choice never changes values: with defaultRate == 0 every derived
/// quantity is bit-identical across backends (skipping a 0.0 term of a
/// non-negative ascending sum cannot change the accumulation); a nonzero
/// default is folded in closed form, mathematically equal but associating
/// differently (see pair_backend.hpp for the full contract).

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "core/slot_index.hpp"
#include "sim/assert.hpp"
#include "trace/contact.hpp"
#include "trace/pair_backend.hpp"

namespace dtncache::trace {

/// P(at least one contact of a Poisson(rate) process within window t).
inline double contactProbability(double rate, sim::SimTime window) {
  DTNCACHE_CHECK(rate >= 0.0 && window >= 0.0);
  return 1.0 - std::exp(-rate * window);
}

/// Expected delay until the next contact of a Poisson(rate) process;
/// infinity when rate == 0.
inline double expectedContactDelay(double rate) {
  return rate > 0.0 ? 1.0 / rate : std::numeric_limits<double>::infinity();
}

class RateMatrix {
 public:
  RateMatrix() = default;

  /// Auto-selected backend (dense at paper scale, sparse above the
  /// threshold or under the DTNCACHE_SPARSE_PAIRS override). n == 0 and
  /// n == 1 are valid degenerate matrices with no pairs.
  explicit RateMatrix(std::size_t n) : RateMatrix(n, PairBackend::kAuto) {}

  /// Explicit backend; `defaultRate` is what never-stored pairs read as
  /// (sparse backend only — the dense triangle starts at 0 and a nonzero
  /// default would have to be materialized, defeating its point).
  RateMatrix(std::size_t n, PairBackend backend, double defaultRate = 0.0)
      : n_(n), sparse_(useSparsePairs(n, backend)), defaultRate_(defaultRate) {
    DTNCACHE_CHECK(defaultRate >= 0.0);
    if (sparse_) {
      neighbors_.resize(n);
    } else {
      DTNCACHE_CHECK_MSG(defaultRate == 0.0,
                         "dense RateMatrix supports only defaultRate == 0");
      rates_.assign(n >= 2 ? n * (n - 1) / 2 : 0, 0.0);
    }
  }

  std::size_t nodeCount() const { return n_; }
  bool isSparse() const { return sparse_; }
  double defaultRate() const { return defaultRate_; }

  /// Pairs with a stored entry: every observed pair for the sparse backend,
  /// the whole triangle for the dense one.
  std::size_t observedPairCount() const {
    return sparse_ ? values_.size() : rates_.size();
  }

  /// Stored neighbors of node i (n-1 for the dense backend).
  std::size_t neighborCount(NodeId i) const {
    DTNCACHE_CHECK(i < n_);
    if (sparse_) return neighbors_[i].size();
    return n_ >= 1 ? n_ - 1 : 0;
  }

  double rate(NodeId i, NodeId j) const {
    if (i == j) return 0.0;
    if (!sparse_) return rates_[index(i, j)];
    DTNCACHE_CHECK(i < n_ && j < n_);
    const std::uint32_t slot = index_.find(core::packSymmetricPair(i, j));
    return slot == core::SlotIndex::kNoSlot ? defaultRate_ : values_[slot];
  }

  void setRate(NodeId i, NodeId j, double lambda) {
    DTNCACHE_CHECK(i != j);
    DTNCACHE_CHECK(lambda >= 0.0);
    if (!sparse_) {
      rates_[index(i, j)] = lambda;
      return;
    }
    DTNCACHE_CHECK(i < n_ && j < n_);
    slotOf(i, j) = lambda;
  }

  /// P(i meets j at least once within `window`).
  double meetingProbability(NodeId i, NodeId j, sim::SimTime window) const {
    return contactProbability(rate(i, j), window);
  }

  /// Sum of rates from node i to all others (its total contact activity).
  /// Sparse: stored neighbors in ascending order plus the closed-form
  /// default contribution for the rest.
  double nodeRateSum(NodeId i) const {
    double s = 0.0;
    if (!sparse_) {
      for (NodeId j = 0; j < n_; ++j)
        if (j != i) s += rate(i, j);
      return s;
    }
    DTNCACHE_CHECK(i < n_);
    for (const Neighbor& nb : neighbors_[i]) s += values_[nb.slot];
    if (defaultRate_ > 0.0 && n_ >= 1)
      s += defaultRate_ * static_cast<double>(n_ - 1 - neighbors_[i].size());
    return s;
  }

  /// Visit node i's stored neighbors as f(NodeId j, double rate), in
  /// ascending j. Dense backend: every j != i (stored by definition).
  template <typename F>
  void forEachNeighbor(NodeId i, F&& f) const {
    DTNCACHE_CHECK(i < n_);
    if (sparse_) {
      for (const Neighbor& nb : neighbors_[i]) f(nb.id, values_[nb.slot]);
      return;
    }
    for (NodeId j = 0; j < n_; ++j)
      if (j != i) f(j, rates_[index(i, j)]);
  }

  /// Fit the maximum-likelihood rate matrix from a trace:
  /// λ_ij = (#contacts of pair) / (trace duration).
  static RateMatrix fitFromTrace(const ContactTrace& trace,
                                 PairBackend backend = PairBackend::kAuto);

 private:
  struct Neighbor {
    NodeId id;
    std::uint32_t slot;  ///< into values_
  };

  std::size_t index(NodeId i, NodeId j) const {
    DTNCACHE_CHECK(i < n_ && j < n_);
    if (i > j) std::swap(i, j);
    // Row-major upper triangle, row i holds (n-1-i) entries.
    const std::size_t row = i;
    const std::size_t offset = row * (2 * n_ - row - 1) / 2;
    return offset + (j - i - 1);
  }

  /// Sparse backend: value slot of pair (i, j), created (at defaultRate_,
  /// with both adjacency rows updated) if absent.
  double& slotOf(NodeId i, NodeId j);

  /// Ascending insert of (j, slot) into row i (no-op if already present —
  /// callers only insert fresh pairs).
  void insertNeighbor(NodeId i, NodeId j, std::uint32_t slot);

  std::size_t n_ = 0;
  bool sparse_ = false;
  double defaultRate_ = 0.0;

  // Dense backend.
  std::vector<double> rates_;

  // Sparse backend.
  core::SlotIndex index_;                       ///< packed pair -> slot
  std::vector<double> values_;                  ///< slot -> λ
  std::vector<std::vector<Neighbor>> neighbors_;  ///< per node, ascending j
};

}  // namespace dtncache::trace
