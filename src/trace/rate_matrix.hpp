#pragma once

/// \file rate_matrix.hpp
/// Symmetric matrix of pairwise contact rates λ_ij.
///
/// The exponential pairwise inter-contact model — contacts of pair (i,j)
/// arriving as a Poisson process with rate λ_ij — is the analytical backbone
/// of the paper: every refresh-probability and replication decision reduces
/// to functions of λ_ij. A RateMatrix is either ground truth (driving a
/// synthetic generator, or fit from a whole trace) or a node's local
/// estimate (trace/estimator.hpp).

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "sim/assert.hpp"
#include "trace/contact.hpp"

namespace dtncache::trace {

/// P(at least one contact of a Poisson(rate) process within window t).
inline double contactProbability(double rate, sim::SimTime window) {
  DTNCACHE_CHECK(rate >= 0.0 && window >= 0.0);
  return 1.0 - std::exp(-rate * window);
}

/// Expected delay until the next contact of a Poisson(rate) process;
/// infinity when rate == 0.
inline double expectedContactDelay(double rate) {
  return rate > 0.0 ? 1.0 / rate : std::numeric_limits<double>::infinity();
}

class RateMatrix {
 public:
  RateMatrix() = default;
  explicit RateMatrix(std::size_t n) : n_(n), rates_(n * (n - 1) / 2, 0.0) {
    DTNCACHE_CHECK(n >= 1);
  }

  std::size_t nodeCount() const { return n_; }

  double rate(NodeId i, NodeId j) const {
    if (i == j) return 0.0;
    return rates_[index(i, j)];
  }

  void setRate(NodeId i, NodeId j, double lambda) {
    DTNCACHE_CHECK(i != j);
    DTNCACHE_CHECK(lambda >= 0.0);
    rates_[index(i, j)] = lambda;
  }

  /// P(i meets j at least once within `window`).
  double meetingProbability(NodeId i, NodeId j, sim::SimTime window) const {
    return contactProbability(rate(i, j), window);
  }

  /// Sum of rates from node i to all others (its total contact activity).
  double nodeRateSum(NodeId i) const {
    double s = 0.0;
    for (NodeId j = 0; j < n_; ++j)
      if (j != i) s += rate(i, j);
    return s;
  }

  /// Fit the maximum-likelihood rate matrix from a trace:
  /// λ_ij = (#contacts of pair) / (trace duration).
  static RateMatrix fitFromTrace(const ContactTrace& trace);

 private:
  std::size_t index(NodeId i, NodeId j) const {
    DTNCACHE_CHECK(i < n_ && j < n_);
    if (i > j) std::swap(i, j);
    // Row-major upper triangle, row i holds (n-1-i) entries.
    const std::size_t row = i;
    const std::size_t offset = row * (2 * n_ - row - 1) / 2;
    return offset + (j - i - 1);
  }

  std::size_t n_ = 0;
  std::vector<double> rates_;
};

}  // namespace dtncache::trace
