#pragma once

/// \file one_format.hpp
/// Import connectivity traces in the ONE simulator's event format.
///
/// The ONE (Opportunistic Network Environment) simulator is the de-facto
/// standard DTN research tool, and most public contact datasets (Haggle /
/// Reality exports on CRAWDAD) circulate in its connectivity-event format:
///
///     <time> CONN <host1> <host2> up
///     <time> CONN <host1> <host2> down
///
/// Host names may be arbitrary tokens ("n12", "34"); they are mapped to
/// dense NodeIds in first-appearance order. An `up` without a matching
/// `down` is closed at the end of the trace; a `down` without a prior `up`
/// is counted and skipped (these occur in truncated exports). Non-CONN
/// lines (the format interleaves message events) are ignored.

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/contact.hpp"

namespace dtncache::trace {

struct OneImportResult {
  ContactTrace trace;
  /// Original host token for each dense NodeId.
  std::vector<std::string> hostNames;
  std::size_t unmatchedDowns = 0;   ///< `down` with no open `up`
  std::size_t unterminatedUps = 0;  ///< `up` closed at trace end
  std::size_t ignoredLines = 0;     ///< non-CONN events
};

OneImportResult loadOneConnectivity(std::istream& in);
OneImportResult loadOneConnectivityFile(const std::string& path);

}  // namespace dtncache::trace
