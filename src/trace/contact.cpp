#include "trace/contact.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/assert.hpp"

namespace dtncache::trace {

ContactTrace::ContactTrace(std::size_t nodeCount, std::vector<Contact> contacts)
    : nodeCount_(nodeCount), contacts_(std::move(contacts)) {
  for (auto& c : contacts_) {
    DTNCACHE_CHECK_MSG(c.a < nodeCount_ && c.b < nodeCount_,
                       "contact endpoint out of range: " << c.a << "," << c.b);
    DTNCACHE_CHECK_MSG(c.a != c.b, "self-contact at node " << c.a);
    DTNCACHE_CHECK(c.start >= 0.0 && c.duration >= 0.0);
    if (c.a > c.b) std::swap(c.a, c.b);
  }
  std::stable_sort(contacts_.begin(), contacts_.end(),
                   [](const Contact& x, const Contact& y) { return x.start < y.start; });
}

sim::SimTime ContactTrace::duration() const {
  sim::SimTime end = 0.0;
  for (const auto& c : contacts_) end = std::max(end, c.end());
  return end;
}

TraceStats ContactTrace::stats() const {
  TraceStats s;
  s.nodeCount = nodeCount_;
  s.contactCount = contacts_.size();
  s.duration = duration();

  // Flat-keyed counting: one hash per contact instead of a tree walk. The
  // rate sum below still runs in sorted-pair order (packed keys order like
  // (a, b) tuples) so the floating-point accumulation matches the old
  // std::map traversal bit for bit.
  std::unordered_map<std::uint64_t, std::size_t> perPair;
  double durSum = 0.0;
  for (const auto& c : contacts_) {
    ++perPair[pairKey(c.a, c.b)];
    durSum += c.duration;
  }
  s.pairsThatMet = perPair.size();
  if (!contacts_.empty()) s.meanContactDuration = durSum / static_cast<double>(contacts_.size());
  if (s.duration > 0.0 && s.pairsThatMet > 0) {
    std::vector<std::uint64_t> keys;
    keys.reserve(perPair.size());
    for (const auto& [key, count] : perPair) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    double rateSum = 0.0;
    for (const std::uint64_t key : keys)
      rateSum += static_cast<double>(perPair[key]) / s.duration;
    s.meanPairwiseRate = rateSum / static_cast<double>(s.pairsThatMet);
    const auto totalPairs = static_cast<double>(nodeCount_ * (nodeCount_ - 1) / 2);
    s.meanContactsPerPairPerDay =
        static_cast<double>(s.contactCount) / totalPairs / sim::toDays(s.duration);
  }
  return s;
}

std::size_t ContactTrace::pairContactCount(NodeId i, NodeId j) const {
  if (i > j) std::swap(i, j);
  std::size_t n = 0;
  for (const auto& c : contacts_)
    if (c.a == i && c.b == j) ++n;
  return n;
}

double ContactTrace::pairRate(NodeId i, NodeId j) const {
  const sim::SimTime d = duration();
  if (d <= 0.0) return 0.0;
  return static_cast<double>(pairContactCount(i, j)) / d;
}

ContactTrace ContactTrace::truncated(sim::SimTime cutoff) const {
  std::vector<Contact> kept;
  for (const auto& c : contacts_)
    if (c.start < cutoff) kept.push_back(c);
  return ContactTrace(nodeCount_, std::move(kept));
}

ContactTrace ContactTrace::loadCsv(const std::string& path) {
  std::ifstream in(path);
  DTNCACHE_CHECK_MSG(in.good(), "cannot open trace file " << path);
  return readCsv(in);
}

void ContactTrace::saveCsv(const std::string& path) const {
  std::ofstream out(path);
  DTNCACHE_CHECK_MSG(out.good(), "cannot write trace file " << path);
  writeCsv(out);
}

ContactTrace ContactTrace::readCsv(std::istream& in) {
  std::string line;
  std::vector<Contact> contacts;
  std::size_t maxNode = 0;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {  // skip header
      first = false;
      if (line.rfind("start", 0) == 0) continue;
    }
    std::istringstream ls(line);
    Contact c;
    char comma = 0;
    ls >> c.start >> comma >> c.duration >> comma >> c.a >> comma >> c.b;
    DTNCACHE_CHECK_MSG(!ls.fail(), "malformed trace line: " << line);
    contacts.push_back(c);
    maxNode = std::max<std::size_t>(maxNode, std::max(c.a, c.b));
  }
  return ContactTrace(maxNode + 1, std::move(contacts));
}

void ContactTrace::writeCsv(std::ostream& out) const {
  out << "start,duration,a,b\n";
  for (const auto& c : contacts_)
    out << c.start << ',' << c.duration << ',' << c.a << ',' << c.b << '\n';
}

}  // namespace dtncache::trace
