#include "trace/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "core/pair_key.hpp"
#include "sim/assert.hpp"

namespace dtncache::trace {

std::vector<double> interContactTimes(const ContactTrace& trace, NodeId i, NodeId j) {
  if (i > j) std::swap(i, j);
  std::vector<double> gaps;
  double last = -1.0;
  for (const auto& c : trace.contacts()) {
    if (c.a != i || c.b != j) continue;
    if (last >= 0.0) gaps.push_back(c.start - last);
    last = c.start;
  }
  return gaps;
}

std::vector<double> allInterContactTimes(const ContactTrace& trace,
                                         std::size_t minContactsPerPair) {
  // One pass into a flat-keyed hash map (no per-insert tree rebalancing),
  // then drain in sorted-key order — packed keys (core/pair_key.hpp) sort
  // like (a, b) pairs, so the gap order (and any downstream floating-point
  // accumulation) is identical to the old std::map<pair> traversal.
  std::unordered_map<std::uint64_t, std::vector<double>> perPairStarts;
  for (const auto& c : trace.contacts())
    perPairStarts[core::packSymmetricPair(c.a, c.b)].push_back(c.start);
  std::vector<std::uint64_t> keys;
  keys.reserve(perPairStarts.size());
  for (const auto& [key, starts] : perPairStarts) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  std::vector<double> gaps;
  for (const std::uint64_t key : keys) {
    const auto& starts = perPairStarts[key];
    if (starts.size() < minContactsPerPair) continue;
    for (std::size_t k = 1; k < starts.size(); ++k) gaps.push_back(starts[k] - starts[k - 1]);
  }
  return gaps;
}

ExponentialFit fitExponential(std::vector<double> samples) {
  ExponentialFit fit;
  fit.samples = samples.size();
  if (samples.size() < 2) return fit;
  double sum = 0.0;
  for (double s : samples) {
    DTNCACHE_CHECK_MSG(s > 0.0, "non-positive inter-contact sample");
    sum += s;
  }
  fit.meanGap = sum / static_cast<double>(samples.size());
  fit.rate = 1.0 / fit.meanGap;

  double var = 0.0;
  for (double s : samples) var += (s - fit.meanGap) * (s - fit.meanGap);
  var /= static_cast<double>(samples.size());
  fit.cv = std::sqrt(var) / fit.meanGap;

  // KS distance against the fitted exponential, evaluated at the sorted
  // samples (the supremum of the difference occurs at jump points).
  std::sort(samples.begin(), samples.end());
  double ks = 0.0;
  const auto n = static_cast<double>(samples.size());
  for (std::size_t k = 0; k < samples.size(); ++k) {
    const double model = 1.0 - std::exp(-fit.rate * samples[k]);
    const double empiricalHi = static_cast<double>(k + 1) / n;
    const double empiricalLo = static_cast<double>(k) / n;
    ks = std::max({ks, std::abs(empiricalHi - model), std::abs(model - empiricalLo)});
  }
  fit.ksDistance = ks;
  return fit;
}

std::vector<NodeActivity> nodeActivity(const ContactTrace& trace) {
  std::vector<NodeActivity> out(trace.nodeCount());
  std::vector<std::vector<NodeId>> peers(trace.nodeCount());
  for (NodeId n = 0; n < trace.nodeCount(); ++n) out[n].node = n;
  for (const auto& c : trace.contacts()) {
    ++out[c.a].contacts;
    ++out[c.b].contacts;
    peers[c.a].push_back(c.b);
    peers[c.b].push_back(c.a);
  }
  const double days = sim::toDays(trace.duration());
  for (NodeId n = 0; n < trace.nodeCount(); ++n) {
    auto& p = peers[n];
    std::sort(p.begin(), p.end());
    out[n].distinctPeers =
        static_cast<std::size_t>(std::unique(p.begin(), p.end()) - p.begin());
    if (days > 0.0)
      out[n].contactsPerDay = static_cast<double>(out[n].contacts) / days;
  }
  std::stable_sort(out.begin(), out.end(), [](const NodeActivity& a, const NodeActivity& b) {
    return a.contacts > b.contacts;
  });
  return out;
}

std::vector<std::pair<double, double>> ccdf(std::vector<double> samples, std::size_t points) {
  std::vector<std::pair<double, double>> out;
  if (samples.empty() || points == 0) return out;
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  for (std::size_t p = 0; p < points; ++p) {
    const auto idx = static_cast<std::size_t>(
        std::llround(static_cast<double>(p) * (n - 1) / std::max<double>(1, points - 1)));
    out.push_back({samples[idx], 1.0 - static_cast<double>(idx) / n});
  }
  return out;
}

}  // namespace dtncache::trace
