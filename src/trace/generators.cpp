#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "trace/mobility.hpp"

namespace dtncache::trace {
namespace {

/// Activity level at absolute time t under the day/night profile:
/// full rate for 16 h, `nightActivity` for the 8 h night block.
double diurnalActivity(sim::SimTime t, double nightActivity) {
  const double hourOfDay = std::fmod(sim::toHours(t), 24.0);
  const bool night = hourOfDay < 4.0 || hourOfDay >= 20.0;
  return night ? nightActivity : 1.0;
}

/// Mean of the diurnal profile over a whole day.
double diurnalMeanActivity(double nightActivity) {
  return (16.0 + 8.0 * nightActivity) / 24.0;
}

}  // namespace

SyntheticTrace generate(const SyntheticTraceConfig& config) {
  // Sparse-graph mobility models stream from trace/mobility.hpp; the dense
  // per-pair enumeration below would be O(N²) in both time and rate storage.
  if (config.model == RateModel::kMobilityCommunity ||
      config.model == RateModel::kMobilityPowerLaw)
    return SyntheticMobility(config).materialize();

  DTNCACHE_CHECK(config.nodeCount >= 2);
  DTNCACHE_CHECK(config.duration > 0.0);
  DTNCACHE_CHECK(config.meanContactsPerPairPerDay > 0.0);

  sim::Rng root(config.seed);
  sim::Rng rateRng = root.fork(1);
  sim::Rng arrivalRng = root.fork(2);
  sim::Rng durationRng = root.fork(3);
  sim::Rng thinRng = root.fork(4);

  const std::size_t n = config.nodeCount;

  SyntheticTrace out;
  out.rates = RateMatrix(n);

  // Community assignment: round-robin gives equal-sized communities, which
  // keeps the preset reproducible without another random process.
  if (config.model == RateModel::kCommunity) {
    DTNCACHE_CHECK(config.communities >= 1);
    out.community.resize(n);
    for (std::size_t i = 0; i < n; ++i) out.community[i] = i % config.communities;
  }

  // Draw unnormalized pairwise weights, then renormalize so the mean
  // *effective* rate (diurnal modulation included) hits the target.
  std::vector<double> weights;
  weights.reserve(n * (n - 1) / 2);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      double w = 1.0;
      switch (config.model) {
        case RateModel::kHomogeneous:
          w = 1.0;
          break;
        case RateModel::kPareto:
          w = rateRng.paretoTruncated(1.0, config.paretoShape, config.rateSpread);
          break;
        case RateModel::kCommunity:
          w = rateRng.paretoTruncated(1.0, config.paretoShape, config.rateSpread);
          if (out.community[i] == out.community[j]) w *= config.intraCommunityBoost;
          break;
      }
      weights.push_back(w);
    }
  }
  const double meanWeight =
      std::accumulate(weights.begin(), weights.end(), 0.0) / static_cast<double>(weights.size());

  const double activityMean =
      config.diurnal ? diurnalMeanActivity(config.nightActivity) : 1.0;
  // Peak (daytime) rate per unit weight such that the time-averaged rate per
  // pair equals the configured target.
  const double targetRate = config.meanContactsPerPairPerDay / sim::days(1);
  const double peakPerWeight = targetRate / (meanWeight * activityMean);

  std::vector<Contact> contacts;
  std::size_t w = 0;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j, ++w) {
      const double peakRate = weights[w] * peakPerWeight;
      out.rates.setRate(i, j, peakRate * activityMean);
      if (peakRate <= 0.0) continue;
      // Thinned Poisson process: generate at the peak rate, keep each
      // arrival with probability activity(t) (exact for piecewise-constant
      // modulation).
      sim::SimTime t = arrivalRng.exponential(peakRate);
      while (t < config.duration) {
        const double keepP =
            config.diurnal ? diurnalActivity(t, config.nightActivity) : 1.0;
        if (keepP >= 1.0 || thinRng.bernoulli(keepP)) {
          Contact c;
          c.start = t;
          c.duration = durationRng.exponential(1.0 / config.meanContactDuration);
          c.a = i;
          c.b = j;
          contacts.push_back(c);
        }
        t += arrivalRng.exponential(peakRate);
      }
    }
  }

  out.trace = ContactTrace(n, std::move(contacts));
  return out;
}

SyntheticTraceConfig realityLikeConfig(std::uint64_t seed) {
  SyntheticTraceConfig c;
  c.nodeCount = 97;
  c.duration = sim::days(30);
  c.model = RateModel::kCommunity;
  c.meanContactsPerPairPerDay = 0.10;  // Reality-scale sparsity
  c.paretoShape = 1.5;
  c.rateSpread = 300.0;
  c.communities = 8;
  c.intraCommunityBoost = 10.0;
  c.diurnal = true;
  c.nightActivity = 0.10;
  c.meanContactDuration = 300.0;
  c.seed = seed;
  return c;
}

SyntheticTraceConfig infocomLikeConfig(std::uint64_t seed) {
  SyntheticTraceConfig c;
  c.nodeCount = 78;
  c.duration = sim::days(4);
  c.model = RateModel::kCommunity;
  c.meanContactsPerPairPerDay = 4.0;  // conference-scale density
  c.paretoShape = 2.0;
  c.rateSpread = 50.0;
  c.communities = 4;
  c.intraCommunityBoost = 3.0;
  c.diurnal = true;
  c.nightActivity = 0.05;  // conference venue empties at night
  c.meanContactDuration = 180.0;
  c.seed = seed;
  return c;
}

SyntheticTraceConfig homogeneousConfig(std::size_t nodes, double contactsPerPairPerDay,
                                       sim::SimTime duration, std::uint64_t seed) {
  SyntheticTraceConfig c;
  c.nodeCount = nodes;
  c.duration = duration;
  c.model = RateModel::kHomogeneous;
  c.meanContactsPerPairPerDay = contactsPerPairPerDay;
  c.diurnal = false;
  c.seed = seed;
  return c;
}

}  // namespace dtncache::trace
