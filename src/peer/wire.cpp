#include "peer/wire.hpp"

#include <cstring>

#include "sim/assert.hpp"

namespace dtncache::peer {
namespace {

// ---- little-endian writers ---------------------------------------------------

void putU8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void putU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

// ---- bounds-checked little-endian reader ------------------------------------

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > size_) return false;
    v = data_[pos_++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > size_) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > size_) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return true;
  }
  bool bytes(std::vector<std::uint8_t>& out, std::size_t n) {
    if (pos_ + n > size_) return false;
    out.assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return true;
  }
  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

DecodeResult reject(const char* why) {
  DecodeResult r;
  r.status = DecodeStatus::kReject;
  r.error = why;
  return r;
}

constexpr std::size_t kVvEntryBytes = 4 + 8;

bool decodeBody(FrameType type, Reader& in, FrameBody& out, const char*& error) {
  switch (type) {
    case FrameType::kHello: {
      Hello h;
      if (!in.u32(h.node) || !in.u32(h.nodeCount) || !in.u32(h.itemCount)) {
        error = "hello: truncated payload";
        return false;
      }
      out = h;
      return true;
    }
    case FrameType::kVersionVector: {
      VersionVector vv;
      std::uint32_t count = 0;
      if (!in.u32(count)) {
        error = "version_vector: truncated count";
        return false;
      }
      // Count must match the bytes actually present — a huge count with a
      // short payload must not turn into a giant reserve().
      if (static_cast<std::uint64_t>(count) * kVvEntryBytes != in.remaining()) {
        error = "version_vector: entry count disagrees with payload length";
        return false;
      }
      vv.entries.resize(count);
      for (VersionVectorEntry& e : vv.entries) {
        if (!in.u32(e.item) || !in.u64(e.version)) {
          error = "version_vector: truncated entry";
          return false;
        }
      }
      out = std::move(vv);
      return true;
    }
    case FrameType::kRefreshPush: {
      RefreshPush p;
      std::uint32_t payloadLen = 0;
      if (!in.u32(p.item) || !in.u64(p.version) || !in.u32(payloadLen)) {
        error = "refresh_push: truncated header";
        return false;
      }
      if (payloadLen != in.remaining()) {
        error = "refresh_push: payload length disagrees with frame length";
        return false;
      }
      if (!in.bytes(p.payload, payloadLen)) {
        error = "refresh_push: truncated payload";
        return false;
      }
      out = std::move(p);
      return true;
    }
    case FrameType::kQuery: {
      Query q;
      if (!in.u64(q.queryId) || !in.u32(q.item)) {
        error = "query: truncated payload";
        return false;
      }
      out = q;
      return true;
    }
    case FrameType::kReply: {
      Reply r;
      std::uint8_t hasCopy = 0;
      if (!in.u64(r.queryId) || !in.u32(r.item) || !in.u64(r.version) || !in.u8(hasCopy)) {
        error = "reply: truncated payload";
        return false;
      }
      if (hasCopy > 1) {
        error = "reply: non-boolean hasCopy";
        return false;
      }
      r.hasCopy = hasCopy != 0;
      out = r;
      return true;
    }
    case FrameType::kReparent: {
      Reparent r;
      if (!in.u32(r.item) || !in.u32(r.child) || !in.u32(r.newParent)) {
        error = "reparent: truncated payload";
        return false;
      }
      out = r;
      return true;
    }
    case FrameType::kBye:
      out = Bye{};
      return true;
  }
  error = "unknown frame type";
  return false;
}

}  // namespace

FrameType frameTypeOf(const FrameBody& body) {
  struct Visitor {
    FrameType operator()(const Hello&) const { return FrameType::kHello; }
    FrameType operator()(const VersionVector&) const { return FrameType::kVersionVector; }
    FrameType operator()(const RefreshPush&) const { return FrameType::kRefreshPush; }
    FrameType operator()(const Query&) const { return FrameType::kQuery; }
    FrameType operator()(const Reply&) const { return FrameType::kReply; }
    FrameType operator()(const Reparent&) const { return FrameType::kReparent; }
    FrameType operator()(const Bye&) const { return FrameType::kBye; }
  };
  return std::visit(Visitor{}, body);
}

const char* frameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kVersionVector: return "version_vector";
    case FrameType::kRefreshPush: return "refresh_push";
    case FrameType::kQuery: return "query";
    case FrameType::kReply: return "reply";
    case FrameType::kReparent: return "reparent";
    case FrameType::kBye: return "bye";
  }
  return "?";
}

std::vector<std::uint8_t> encodeFrame(const FrameBody& body) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + 64);
  putU32(out, kWireMagic);
  putU8(out, kWireVersion);
  putU8(out, static_cast<std::uint8_t>(frameTypeOf(body)));
  putU16(out, 0);   // reserved
  putU32(out, 0);   // payload length, patched below

  struct Visitor {
    std::vector<std::uint8_t>& out;
    void operator()(const Hello& h) const {
      putU32(out, h.node);
      putU32(out, h.nodeCount);
      putU32(out, h.itemCount);
    }
    void operator()(const VersionVector& vv) const {
      putU32(out, static_cast<std::uint32_t>(vv.entries.size()));
      for (const VersionVectorEntry& e : vv.entries) {
        putU32(out, e.item);
        putU64(out, e.version);
      }
    }
    void operator()(const RefreshPush& p) const {
      putU32(out, p.item);
      putU64(out, p.version);
      putU32(out, static_cast<std::uint32_t>(p.payload.size()));
      out.insert(out.end(), p.payload.begin(), p.payload.end());
    }
    void operator()(const Query& q) const {
      putU64(out, q.queryId);
      putU32(out, q.item);
    }
    void operator()(const Reply& r) const {
      putU64(out, r.queryId);
      putU32(out, r.item);
      putU64(out, r.version);
      putU8(out, r.hasCopy ? 1 : 0);
    }
    void operator()(const Reparent& r) const {
      putU32(out, r.item);
      putU32(out, r.child);
      putU32(out, r.newParent);
    }
    void operator()(const Bye&) const {}
  };
  std::visit(Visitor{out}, body);

  const std::size_t payload = out.size() - kFrameHeaderBytes;
  DTNCACHE_CHECK_MSG(payload <= kMaxPayloadBytes, "encoded frame exceeds payload cap");
  for (int i = 0; i < 4; ++i)
    out[8 + i] = static_cast<std::uint8_t>(payload >> (8 * i));
  return out;
}

DecodeResult decodeFrame(const std::uint8_t* data, std::size_t size) {
  DecodeResult result;
  if (size < kFrameHeaderBytes) return result;  // kNeedMore

  Reader header(data, kFrameHeaderBytes);
  std::uint32_t magic = 0, length = 0;
  std::uint8_t version = 0, type = 0;
  std::uint8_t reservedLo = 0, reservedHi = 0;
  header.u32(magic);
  header.u8(version);
  header.u8(type);
  header.u8(reservedLo);
  header.u8(reservedHi);
  header.u32(length);

  if (magic != kWireMagic) return reject("bad magic");
  if (version != kWireVersion) return reject("unsupported protocol version");
  if (reservedLo != 0 || reservedHi != 0) return reject("nonzero reserved bits");
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kBye))
    return reject("unknown frame type");
  if (length > kMaxPayloadBytes) return reject("payload length exceeds cap");

  if (size < kFrameHeaderBytes + length) return result;  // kNeedMore

  Reader payload(data + kFrameHeaderBytes, length);
  FrameBody body = Bye{};
  const char* error = nullptr;
  if (!decodeBody(static_cast<FrameType>(type), payload, body, error))
    return reject(error);
  if (!payload.done()) return reject("trailing bytes in payload");

  result.status = DecodeStatus::kFrame;
  result.consumed = kFrameHeaderBytes + length;
  result.frame = std::move(body);
  return result;
}

}  // namespace dtncache::peer
