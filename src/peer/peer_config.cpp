#include "peer/peer_config.hpp"

#include <cstdlib>

#include "runner/flat_json.hpp"
#include "sim/assert.hpp"

namespace dtncache::peer {

namespace {

void bindAll(const runner::FieldBinder& b, PeerdConfig& c) {
  b.numeric("peer.node", c.node);
  b.numeric("peer.nodeCount", c.nodeCount);
  b.numeric("peer.itemCount", c.itemCount);
  b.numeric("peer.listenPort", c.listenPort);
  b.text("peer.peers", c.peers);

  b.text("peer.storePath", c.storePath);
  b.numeric("peer.memoryCapacityBytes", c.memoryCapacityBytes);
  b.numeric("peer.compactThresholdBytes", c.compactThresholdBytes);

  b.numeric("peer.vvIntervalSeconds", c.vvIntervalSeconds);
  b.numeric("peer.maintenanceIntervalSeconds", c.maintenanceIntervalSeconds);
  b.numeric("peer.bumpIntervalSeconds", c.bumpIntervalSeconds);
  b.numeric("peer.bumpLimit", c.bumpLimit);
  b.numeric("peer.payloadBytes", c.payloadBytes);
  b.numeric("peer.queryIntervalSeconds", c.queryIntervalSeconds);

  b.numeric("peer.tauSeconds", c.tauSeconds);
  b.numeric("peer.fanoutBound", c.fanoutBound);
  b.numeric("peer.priorRate", c.priorRate);
  b.enumeration("peer.pushPolicy", c.pushPolicy,
                {{PushPolicy::kHierarchy, "hierarchy"}, {PushPolicy::kAny, "any"}});

  b.numeric("peer.helloTimeoutSeconds", c.helloTimeoutSeconds);
  b.numeric("peer.idleTimeoutSeconds", c.idleTimeoutSeconds);
  b.numeric("peer.reconnectBaseSeconds", c.reconnectBaseSeconds);
  b.numeric("peer.reconnectMaxSeconds", c.reconnectMaxSeconds);

  b.numeric("peer.runSeconds", c.runSeconds);
  b.text("peer.tracePath", c.tracePath);
}

}  // namespace

std::string dumpPeerConfigJson(const PeerdConfig& config) {
  std::ostringstream out;
  out << "{\n";
  runner::FieldBinder b;
  b.mode = runner::FieldBinder::Mode::kDump;
  b.out = &out;
  bindAll(b, const_cast<PeerdConfig&>(config));
  out << "\n}\n";
  return out.str();
}

void applyPeerConfigJson(PeerdConfig& config, const std::string& text) {
  const std::map<std::string, runner::JsonValue> values = runner::parseFlatJson(text);
  runner::FieldBinder b;
  b.mode = runner::FieldBinder::Mode::kLoad;
  b.values = &values;
  bindAll(b, config);
  b.requireAllKnown();
}

void validatePeerConfig(const PeerdConfig& config) {
  DTNCACHE_CHECK_MSG(config.nodeCount >= 2,
                     "peer.nodeCount must be >= 2 (a peer needs peers)");
  DTNCACHE_CHECK_MSG(config.node < config.nodeCount,
                     "peer.node must be < peer.nodeCount");
  DTNCACHE_CHECK_MSG(config.itemCount >= 1, "peer.itemCount must be >= 1");
  DTNCACHE_CHECK_MSG(config.listenPort <= 65535, "peer.listenPort must fit a port");
  DTNCACHE_CHECK_MSG(config.vvIntervalSeconds > 0.0,
                     "peer.vvIntervalSeconds must be positive");
  DTNCACHE_CHECK_MSG(config.maintenanceIntervalSeconds > 0.0,
                     "peer.maintenanceIntervalSeconds must be positive");
  DTNCACHE_CHECK_MSG(config.bumpIntervalSeconds > 0.0,
                     "peer.bumpIntervalSeconds must be positive");
  DTNCACHE_CHECK_MSG(config.fanoutBound >= 1, "peer.fanoutBound must be >= 1");
  DTNCACHE_CHECK_MSG(config.tauSeconds > 0.0, "peer.tauSeconds must be positive");
  DTNCACHE_CHECK_MSG(config.priorRate >= 0.0, "peer.priorRate must be >= 0");
  DTNCACHE_CHECK_MSG(config.reconnectBaseSeconds > 0.0,
                     "peer.reconnectBaseSeconds must be positive");
  DTNCACHE_CHECK_MSG(config.reconnectMaxSeconds >= config.reconnectBaseSeconds,
                     "peer.reconnectMaxSeconds must be >= the base");
  parsePeerList(config.peers);  // throws on malformed entries
}

std::vector<PeerAddr> parsePeerList(const std::string& spec) {
  std::vector<PeerAddr> out;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;

    const std::size_t colon = entry.rfind(':');
    DTNCACHE_CHECK_MSG(colon != std::string::npos && colon > 0 &&
                           colon + 1 < entry.size(),
                       "peer.peers entry '" << entry << "' is not host:port");
    char* parseEnd = nullptr;
    const long port = std::strtol(entry.c_str() + colon + 1, &parseEnd, 10);
    DTNCACHE_CHECK_MSG(parseEnd != nullptr && *parseEnd == '\0' && port > 0 &&
                           port <= 65535,
                       "peer.peers entry '" << entry << "' has a bad port");
    out.push_back(PeerAddr{entry.substr(0, colon), static_cast<std::uint16_t>(port)});
  }
  return out;
}

}  // namespace dtncache::peer
