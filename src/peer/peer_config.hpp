#pragma once

/// \file peer_config.hpp
/// Configuration for one `dtncache_peerd` daemon instance, bound to the
/// same flat-JSON machinery as the experiment config (`peer.*` namespace,
/// same dump/load symmetry, same unknown-key-with-suggestion diagnostics).

#include <cstdint>
#include <string>
#include <vector>

#include "trace/contact.hpp"

namespace dtncache::peer {

/// Who a daemon pushes fresher versions to.
enum class PushPolicy : std::uint8_t {
  kHierarchy,  ///< only to nodes this daemon is responsible for (tree edges)
  kAny,        ///< to any connected stale peer (flooding baseline)
};

struct PeerAddr {
  std::string host;
  std::uint16_t port = 0;
};

struct PeerdConfig {
  // -- identity and topology ------------------------------------------------
  NodeId node = 0;                 ///< this daemon's node id
  std::uint32_t nodeCount = 1;     ///< agreed network size (hello-validated)
  std::uint32_t itemCount = 1;     ///< agreed catalog size (hello-validated)
  std::uint32_t listenPort = 0;    ///< TCP listen port (0 = kernel-assigned)
  /// Comma-separated "host:port" list of peers this daemon dials.
  std::string peers;

  // -- storage ---------------------------------------------------------------
  /// Append-only log path; empty disables the disk tier (memory only).
  std::string storePath;
  std::uint64_t memoryCapacityBytes = 16 * 1024 * 1024;
  std::uint64_t compactThresholdBytes = 4 * 1024 * 1024;

  // -- protocol cadence (wall-clock seconds) --------------------------------
  double vvIntervalSeconds = 1.0;           ///< version-vector exchange period
  double maintenanceIntervalSeconds = 5.0;  ///< hierarchy rebuild + fsync period
  double bumpIntervalSeconds = 1.0;         ///< source version production period
  std::uint32_t bumpLimit = 0;              ///< stop bumping after K (0 = never)
  std::uint32_t payloadBytes = 64;          ///< generated item payload size
  double queryIntervalSeconds = 0.0;        ///< periodic query probe (0 = off)

  // -- freshness scheme ------------------------------------------------------
  double tauSeconds = 10.0;       ///< freshness window for hierarchy quality
  std::uint32_t fanoutBound = 3;  ///< responsibility-set bound
  double priorRate = 0.05;        ///< estimator prior for unseen pairs
  PushPolicy pushPolicy = PushPolicy::kHierarchy;

  // -- transport tuning ------------------------------------------------------
  double helloTimeoutSeconds = 5.0;
  double idleTimeoutSeconds = 30.0;
  double reconnectBaseSeconds = 0.5;  ///< exponential backoff base
  double reconnectMaxSeconds = 15.0;  ///< backoff cap

  // -- run control -----------------------------------------------------------
  double runSeconds = 0.0;   ///< stop after this long (0 = until signal)
  std::string tracePath;     ///< JSONL trace output (empty = no trace file)
};

/// Render the full config as one flat JSON object (every key present).
std::string dumpPeerConfigJson(const PeerdConfig& config);

/// Apply a flat JSON object over `config`. Unknown keys throw with a
/// nearest-key suggestion; missing keys keep their current values.
void applyPeerConfigJson(PeerdConfig& config, const std::string& text);

/// Cross-field sanity; throws InvariantViolation with a message.
void validatePeerConfig(const PeerdConfig& config);

/// Parse the comma-separated "host:port" peer list. Throws on bad entries.
std::vector<PeerAddr> parsePeerList(const std::string& spec);

}  // namespace dtncache::peer
