#include "peer/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>

#include "sim/assert.hpp"

namespace dtncache::peer {

namespace {
void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  DTNCACHE_CHECK(flags >= 0);
  DTNCACHE_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}
}  // namespace

EventLoop::EventLoop() : epoch_(std::chrono::steady_clock::now()) {
  DTNCACHE_CHECK_MSG(::pipe(wakePipe_) == 0, "self-pipe creation failed");
  setNonBlocking(wakePipe_[0]);
  setNonBlocking(wakePipe_[1]);
}

EventLoop::~EventLoop() {
  ::close(wakePipe_[0]);
  ::close(wakePipe_[1]);
}

void EventLoop::addFd(int fd, std::uint32_t interest, FdCallback callback) {
  DTNCACHE_CHECK_MSG(fds_.count(fd) == 0, "fd already registered");
  fds_[fd] = FdEntry{interest, std::move(callback), nextFdGeneration_++};
}

void EventLoop::setInterest(int fd, std::uint32_t interest) {
  const auto it = fds_.find(fd);
  DTNCACHE_CHECK_MSG(it != fds_.end(), "setInterest on unregistered fd");
  it->second.interest = interest;
}

void EventLoop::removeFd(int fd) { fds_.erase(fd); }

EventLoop::TimerId EventLoop::runAfter(double delaySeconds, TimerCallback callback) {
  const TimerId id = nextTimerId_++;
  timers_[id] = std::move(callback);
  timerHeap_.push(TimerEntry{now() + std::max(delaySeconds, 0.0), id});
  return id;
}

void EventLoop::cancelTimer(TimerId id) { timers_.erase(id); }

double EventLoop::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

void EventLoop::wakeup() {
  const char byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wakePipe_[1], &byte, 1);
}

void EventLoop::dispatchTimers() {
  const double t = now();
  while (!timerHeap_.empty() && timerHeap_.top().deadline <= t) {
    const TimerEntry entry = timerHeap_.top();
    timerHeap_.pop();
    const auto it = timers_.find(entry.id);
    if (it == timers_.end()) continue;  // cancelled; heap entry was stale
    TimerCallback cb = std::move(it->second);
    timers_.erase(it);
    cb();
  }
}

int EventLoop::msUntilNextTimer() const {
  // Skip over cancelled heads without mutating (const): the heap may hold
  // stale entries, but a stale head only causes one early poll return.
  if (timerHeap_.empty()) return 250;  // idle tick so stop() is honored
  const double delta = timerHeap_.top().deadline - now();
  if (delta <= 0.0) return 0;
  return static_cast<int>(std::min(std::ceil(delta * 1000.0), 60000.0));
}

void EventLoop::run() {
  running_ = true;
  std::vector<pollfd> pollSet;
  std::vector<std::uint64_t> pollGens;
  std::vector<int> readyFds;
  std::vector<std::uint32_t> readyEvents;
  std::vector<std::uint64_t> readyGens;
  while (running_) {
    dispatchTimers();
    if (!running_) break;

    pollSet.clear();
    pollGens.clear();
    pollSet.push_back(pollfd{wakePipe_[0], POLLIN, 0});
    pollGens.push_back(0);
    for (const auto& [fd, entry] : fds_) {
      short events = 0;
      if (entry.interest & kReadable) events |= POLLIN;
      if (entry.interest & kWritable) events |= POLLOUT;
      pollSet.push_back(pollfd{fd, events, 0});
      pollGens.push_back(entry.generation);
    }

    const int rc = ::poll(pollSet.data(), pollSet.size(), msUntilNextTimer());
    if (rc < 0) {
      DTNCACHE_CHECK_MSG(errno == EINTR, "poll failed: errno " << errno);
      continue;
    }

    if (pollSet[0].revents & POLLIN) {  // drain the self-pipe
      char buf[64];
      while (::read(wakePipe_[0], buf, sizeof buf) > 0) {
      }
    }

    // Collect first, then dispatch: a callback may add or remove fds, and
    // the registration map is the source of truth for still-live entries.
    readyFds.clear();
    readyEvents.clear();
    readyGens.clear();
    for (std::size_t i = 1; i < pollSet.size(); ++i) {
      if (pollSet[i].revents == 0) continue;
      std::uint32_t events = 0;
      if (pollSet[i].revents & (POLLIN | POLLPRI)) events |= kReadable;
      if (pollSet[i].revents & POLLOUT) events |= kWritable;
      if (pollSet[i].revents & (POLLERR | POLLHUP | POLLNVAL)) events |= kError;
      readyFds.push_back(pollSet[i].fd);
      readyEvents.push_back(events);
      readyGens.push_back(pollGens[i]);
    }
    for (std::size_t i = 0; i < readyFds.size(); ++i) {
      if (!running_) break;
      const auto it = fds_.find(readyFds[i]);
      if (it == fds_.end()) continue;  // removed by an earlier callback
      // Same fd number, different registration: an earlier callback closed
      // the polled fd and a new descriptor reused its number. The collected
      // readiness belongs to the old socket — drop it.
      if (it->second.generation != readyGens[i]) continue;
      // Copy the callback: the entry may be erased (session close) while
      // the callback is still on the stack.
      FdCallback cb = it->second.callback;
      cb(readyEvents[i]);
    }
  }
}

}  // namespace dtncache::peer
