#pragma once

/// \file event_loop.hpp
/// A poll(2) reactor for the peer daemon: non-blocking fd readiness
/// callbacks plus a monotonic-clock timer heap, single-threaded.
///
/// poll over epoll on purpose: a peer daemon talks to a handful of
/// neighbors (opportunistic contacts, not a datacenter fan-in), so the
/// O(fds) scan is noise while poll stays portable and trivially correct.
/// The interest set is rebuilt from the registration table each iteration
/// — callbacks may add/remove fds freely, including their own.
///
/// Timers use CLOCK_MONOTONIC via steady_clock; `now()` is seconds since
/// loop construction, which the daemon uses as its trace timestamp so a
/// live trace reads like a simulation trace starting at t = 0.
///
/// `wakeup()` is the only async-signal-safe entry point: it writes one
/// byte to a self-pipe, so a signal handler can nudge the loop out of
/// poll() and into a clean shutdown.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

namespace dtncache::peer {

/// Readiness bits passed to fd callbacks (and accepted as interest).
inline constexpr std::uint32_t kReadable = 1u << 0;
inline constexpr std::uint32_t kWritable = 1u << 1;
/// Error/hangup — always delivered, never part of the interest mask.
inline constexpr std::uint32_t kError = 1u << 2;

class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t events)>;
  using TimerCallback = std::function<void()>;
  using TimerId = std::uint64_t;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` (must be non-blocking; not already registered).
  void addFd(int fd, std::uint32_t interest, FdCallback callback);
  /// Change the interest mask of a registered fd.
  void setInterest(int fd, std::uint32_t interest);
  /// Deregister. Safe from inside the fd's own callback; the loop skips
  /// pending readiness for removed fds. Does not close the fd.
  void removeFd(int fd);
  bool hasFd(int fd) const { return fds_.count(fd) != 0; }

  /// One-shot timer `delaySeconds` from now; returns an id for cancel.
  TimerId runAfter(double delaySeconds, TimerCallback callback);
  void cancelTimer(TimerId id);

  /// Seconds since loop construction (monotonic).
  double now() const;

  /// Run until stop(). Dispatches expired timers, then fd readiness.
  void run();
  /// Request run() to return after the current iteration. Safe from a
  /// signal handler (atomic store) — pair with wakeup() there so the loop
  /// leaves poll() promptly.
  void stop() { running_.store(false, std::memory_order_relaxed); }
  bool stopped() const { return !running_.load(std::memory_order_relaxed); }

  /// Async-signal-safe: make poll() return immediately.
  void wakeup();

 private:
  struct FdEntry {
    std::uint32_t interest = 0;
    FdCallback callback;
    /// Registration stamp: fd numbers are reused by the kernel, so a
    /// callback that closes one fd can see the same number re-registered
    /// (for a brand-new socket) within the same poll round. Readiness
    /// collected for the old registration must not be dispatched to the
    /// new one; the dispatch loop compares this stamp.
    std::uint64_t generation = 0;
  };
  struct TimerEntry {
    double deadline = 0.0;
    TimerId id = 0;
    bool operator>(const TimerEntry& other) const {
      return deadline != other.deadline ? deadline > other.deadline : id > other.id;
    }
  };

  void dispatchTimers();
  int msUntilNextTimer() const;

  std::chrono::steady_clock::time_point epoch_;
  std::map<int, FdEntry> fds_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<TimerEntry>>
      timerHeap_;
  std::map<TimerId, TimerCallback> timers_;  ///< cancel = erase; heap is lazy
  TimerId nextTimerId_ = 1;
  std::uint64_t nextFdGeneration_ = 1;
  int wakePipe_[2] = {-1, -1};
  std::atomic<bool> running_{false};
};

}  // namespace dtncache::peer
