#include "peer/peerd.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>

#include "cache/contact_protocol.hpp"
#include "sim/assert.hpp"

namespace dtncache::peer {

namespace {

trace::EstimatorConfig estimatorConfigFor(const PeerdConfig& config) {
  trace::EstimatorConfig e;
  e.mode = trace::EstimatorMode::kCumulative;
  e.priorRate = config.priorRate;
  return e;
}

std::uint64_t overrideKey(data::ItemId item, NodeId child) {
  return (static_cast<std::uint64_t>(item) << 32) | child;
}

}  // namespace

Peerd::Peerd(PeerdConfig config, obs::Tracer* tracer, obs::Registry* registry,
             EventLoop* externalLoop)
    : config_(std::move(config)),
      tracer_(tracer),
      registry_(registry),
      ownedLoop_(externalLoop == nullptr ? std::make_unique<EventLoop>() : nullptr),
      loop_(externalLoop == nullptr ? ownedLoop_.get() : externalLoop),
      estimator_(config_.nodeCount, estimatorConfigFor(config_), 0.0),
      sourceVersions_(config_.itemCount, 0) {
  if (registry_ != nullptr) {
    ctrReconnects_ = &registry_->counter("peer.net.reconnects");
    ctrFramesRejected_ = &registry_->counter("peer.net.frames_rejected");
    ctrCompactions_ = &registry_->counter("peer.store.compactions");
    ctrPushSent_ = &registry_->counter("peer.push.sent");
    ctrInstalls_ = &registry_->counter("peer.push.installed");
    ctrSessions_ = &registry_->counter("peer.net.sessions");
  }
}

Peerd::~Peerd() {
  loop_->cancelTimer(vvTimer_);
  loop_->cancelTimer(bumpTimer_);
  loop_->cancelTimer(maintenanceTimer_);
  loop_->cancelTimer(queryTimer_);
  loop_->cancelTimer(stopTimer_);
  loop_->cancelTimer(drainTimer_);
  for (const Dial& dial : dials_) loop_->cancelTimer(dial.retryTimer);
  sessions_.clear();
  if (listenFd_ >= 0) {
    if (loop_->hasFd(listenFd_)) loop_->removeFd(listenFd_);
    ::close(listenFd_);
    listenFd_ = -1;
  }
}

bool Peerd::start() {
  validatePeerConfig(config_);

  store_ = std::make_unique<PeerStore>(
      static_cast<std::size_t>(config_.memoryCapacityBytes),
      DiskStore::Config{config_.storePath,
                        static_cast<std::size_t>(config_.compactThresholdBytes)});
  if (!config_.storePath.empty() && !store_->diskOk()) return false;

  // A restarted source resumes from its last persisted version instead of
  // re-issuing version 1 — the disk tier is what makes this correct.
  for (data::ItemId item = 0; item < config_.itemCount; ++item)
    if (sourceOf(item) == config_.node)
      sourceVersions_[item] = store_->heldVersion(item).value_or(0);

  if (!openListenSocket()) return false;

  const std::vector<PeerAddr> addrs = parsePeerList(config_.peers);
  dials_.reserve(addrs.size());
  for (const PeerAddr& addr : addrs) dials_.push_back(Dial{addr, nullptr, 0, 0});
  for (std::size_t i = 0; i < dials_.size(); ++i) dialPeer(i);

  rebuildHierarchies();  // prior-rate trees until real contacts accumulate

  vvTimer_ = loop_->runAfter(config_.vvIntervalSeconds, [this] { vvTick(); });
  bumpTimer_ = loop_->runAfter(config_.bumpIntervalSeconds, [this] { bumpTick(); });
  maintenanceTimer_ =
      loop_->runAfter(config_.maintenanceIntervalSeconds, [this] { maintenanceTick(); });
  if (config_.queryIntervalSeconds > 0.0)
    queryTimer_ = loop_->runAfter(config_.queryIntervalSeconds, [this] { queryTick(); });
  if (config_.runSeconds > 0.0)
    stopTimer_ = loop_->runAfter(config_.runSeconds, [this] { shutdown(); });
  return true;
}

void Peerd::run() {
  DTNCACHE_CHECK_MSG(ownedLoop_ != nullptr, "Peerd::run needs an owned loop");
  loop_->run();
}

void Peerd::shutdown() {
  if (stopping_) return;
  stopping_ = true;
  // sendFrame can close a session synchronously (dead socket on the eager
  // flush); onClosed only dead-marks the entry, so this loop stays valid.
  for (const auto& state : sessions_)
    if (state->session->established()) state->session->sendFrame(Bye{});
  loop_->stop();
}

std::size_t Peerd::establishedCount() const {
  std::size_t n = 0;
  for (const auto& state : sessions_)
    if (state->session->established()) ++n;
  return n;
}

// ---- transport wiring --------------------------------------------------------

bool Peerd::openListenSocket() {
  // Non-blocking is load-bearing: the accept loop drains until EAGAIN, and
  // a blocking listen fd would park the whole reactor inside accept().
  listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listenFd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.listenPort));
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listenFd_, 64) != 0) {
    ::close(listenFd_);
    listenFd_ = -1;
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    boundPort_ = ntohs(bound.sin_port);

  loop_->addFd(listenFd_, kReadable, [this](std::uint32_t) { acceptReady(); });
  return true;
}

void Peerd::acceptReady() {
  while (true) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; the listen socket stays armed
    }
    auto state = std::make_unique<SessionState>();
    state->session = std::make_unique<PeerSession>(
        *loop_, *this,
        PeerSession::Config{config_.node, config_.nodeCount, config_.itemCount,
                            config_.helloTimeoutSeconds, config_.idleTimeoutSeconds});
    state->known.assign(config_.itemCount, 0);
    PeerSession* session = state->session.get();
    sessions_.push_back(std::move(state));
    session->adopt(fd);
  }
}

void Peerd::dialPeer(std::size_t dialIndex) {
  Dial& dial = dials_[dialIndex];
  if (dial.session != nullptr || stopping_) return;
  if (dial.failures > 0 && ctrReconnects_ != nullptr) ctrReconnects_->add();

  auto state = std::make_unique<SessionState>();
  state->session = std::make_unique<PeerSession>(
      *loop_, *this,
      PeerSession::Config{config_.node, config_.nodeCount, config_.itemCount,
                          config_.helloTimeoutSeconds, config_.idleTimeoutSeconds});
  state->known.assign(config_.itemCount, 0);
  state->dialIndex = dialIndex;
  PeerSession* session = state->session.get();
  dial.session = session;
  const PeerAddr addr = dial.addr;
  sessions_.push_back(std::move(state));
  // connectTo can fail synchronously, which re-enters onClosed — the state
  // is already registered above so the close path finds it.
  session->connectTo(addr.host, addr.port);
}

void Peerd::scheduleRedial(std::size_t dialIndex) {
  Dial& dial = dials_[dialIndex];
  loop_->cancelTimer(dial.retryTimer);
  const double exponent =
      static_cast<double>(std::min<std::uint32_t>(dial.failures - 1, 16));
  const double delay = std::min(config_.reconnectBaseSeconds * std::pow(2.0, exponent),
                                config_.reconnectMaxSeconds);
  dial.retryTimer = loop_->runAfter(delay, [this, dialIndex] {
    dials_[dialIndex].retryTimer = 0;
    dialPeer(dialIndex);
  });
}

Peerd::SessionState* Peerd::stateOf(PeerSession& session) {
  for (const auto& state : sessions_)
    if (state->session.get() == &session) return state.get();
  return nullptr;
}

void Peerd::armDrain() {
  // Closed sessions are swept on a deferred timer, never erased in place:
  // onClosed can fire while sessions_ is under iteration (any sendFrame may
  // flush into a dead socket), and an in-place erase would invalidate the
  // iterating loop. The timer context has no session callback on the stack,
  // so destroying the PeerSession there is safe.
  if (drainArmed_) return;
  drainArmed_ = true;
  drainTimer_ = loop_->runAfter(0.0, [this] {
    drainArmed_ = false;
    drainTimer_ = 0;
    sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                   [](const std::unique_ptr<SessionState>& s) {
                                     return s->dead;
                                   }),
                    sessions_.end());
  });
}

void Peerd::resumeDialSoon(std::size_t dialIndex) {
  Dial& dial = dials_[dialIndex];
  if (dial.session != nullptr || dial.retryTimer != 0) return;
  dial.failures = 0;  // the parked connection was healthy; restart fresh
  // Deferred: dialPeer pushes into sessions_, and this can be reached from
  // onClosed while sessions_ is under iteration.
  dial.retryTimer = loop_->runAfter(0.0, [this, dialIndex] {
    dials_[dialIndex].retryTimer = 0;
    dialPeer(dialIndex);
  });
}

// ---- session handler ---------------------------------------------------------

void Peerd::onEstablished(PeerSession& session) {
  const NodeId peer = session.peerNode();

  // Simultaneous open: both ends dialed each other. Keep the canonical
  // session (the one dialed by the lower-id node) so both sides drop the
  // same duplicate. A losing outbound dial is parked on the winner — were
  // it redialed, it would reconnect, lose the race again, and churn
  // forever at the backoff cap, each churned handshake feeding a phantom
  // contact into the rate estimator. The winner revives the dial when it
  // closes, so losing the canonical session still heals.
  for (const auto& state : sessions_) {
    PeerSession* other = state->session.get();
    if (other == &session || !other->established() || other->peerNode() != peer)
      continue;
    const bool newCanonical = session.outbound() == (config_.node < peer);
    PeerSession* loser = newCanonical ? other : &session;
    PeerSession* winner = newCanonical ? &session : other;
    SessionState* loserState = stateOf(*loser);
    SessionState* winnerState = stateOf(*winner);
    if (loserState != nullptr && loserState->dialIndex != kNoDial &&
        winnerState != nullptr && winnerState->resumeDial == kNoDial) {
      winnerState->resumeDial = loserState->dialIndex;
      loserState->parked = true;
    }
    loser->close("duplicate session");
    if (loser == &session) return;
    break;
  }

  if (ctrSessions_ != nullptr) ctrSessions_->add();
  const double now = loop_->now();
  estimator_.recordContact(config_.node, peer, now);
  DTNCACHE_EVENT(tracer_, obs::EventKind::kContact, now, {"a", config_.node},
                 {"b", peer});

  SessionState* state = stateOf(session);
  if (state != nullptr && state->dialIndex != kNoDial)
    dials_[state->dialIndex].failures = 0;
  if (state != nullptr) sendVersionVector(*state);
}

void Peerd::onFrame(PeerSession& session, const FrameBody& frame) {
  SessionState* state = stateOf(session);
  if (state == nullptr) return;
  if (const auto* vv = std::get_if<VersionVector>(&frame)) {
    handleVersionVector(*state, *vv);
  } else if (const auto* push = std::get_if<RefreshPush>(&frame)) {
    handlePush(*state, *push);
  } else if (const auto* query = std::get_if<Query>(&frame)) {
    handleQuery(*state, *query);
  } else if (const auto* reply = std::get_if<Reply>(&frame)) {
    handleReply(*state, *reply);
  } else if (const auto* reparent = std::get_if<Reparent>(&frame)) {
    handleReparent(*state, *reparent);
  } else if (std::holds_alternative<Bye>(frame)) {
    session.close("peer said bye");
  }
}

void Peerd::onClosed(PeerSession& session, const char* reason, bool wasReject) {
  (void)reason;
  if (wasReject && ctrFramesRejected_ != nullptr) ctrFramesRejected_->add();
  SessionState* state = stateOf(session);
  if (state == nullptr || state->dead) return;
  state->dead = true;
  armDrain();

  const std::size_t dialIndex = state->dialIndex;
  if (dialIndex != kNoDial && !stopping_) {
    dials_[dialIndex].session = nullptr;
    if (!state->parked) {
      ++dials_[dialIndex].failures;
      scheduleRedial(dialIndex);
    }
    // A parked dial stays down on purpose: the canonical session to the
    // same peer carries it in resumeDial and revives it on close.
  }
  if (state->resumeDial != kNoDial && !stopping_) resumeDialSoon(state->resumeDial);
}

// ---- the freshness protocol over live sessions -------------------------------

void Peerd::sendVersionVector(SessionState& state) {
  VersionVector vv;
  for (data::ItemId item = 0; item < config_.itemCount; ++item)
    if (const auto held = store_->heldVersion(item))
      vv.entries.push_back(VersionVectorEntry{item, *held});
  state.session->sendFrame(std::move(vv));
}

void Peerd::sendPush(SessionState& state, data::ItemId item, data::Version version) {
  RefreshPush push;
  push.item = item;
  push.version = version;
  if (const DiskStore::StoredItem* stored = store_->fetch(item, loop_->now());
      stored != nullptr && stored->version == version)
    push.payload = stored->payload;
  else
    push.payload = makePayload(item, version);
  state.known[item] = std::max(state.known[item], version);
  if (ctrPushSent_ != nullptr) ctrPushSent_->add();
  DTNCACHE_EVENT(tracer_, obs::EventKind::kPush, loop_->now(), {"from", config_.node},
                 {"to", state.session->peerNode()}, {"item", item},
                 {"version", version}, {"cat", "refresh"});
  state.session->sendFrame(std::move(push));
}

bool Peerd::mayPushTo(data::ItemId item, NodeId peer) const {
  if (config_.pushPolicy == PushPolicy::kAny) return true;
  return parentFor(item, peer) == config_.node;
}

NodeId Peerd::parentFor(data::ItemId item, NodeId node) const {
  const std::uint32_t slot = overrideIndex_.find(overrideKey(item, node));
  if (slot != core::SlotIndex::kNoSlot) return overrideParents_[slot];
  if (item >= hierarchies_.size()) return kNoNode;
  return hierarchies_[item].parentOf(node);
}

std::vector<std::uint8_t> Peerd::makePayload(data::ItemId item,
                                             data::Version version) const {
  std::vector<std::uint8_t> payload(config_.payloadBytes);
  for (std::size_t k = 0; k < payload.size(); ++k)
    payload[k] = static_cast<std::uint8_t>(item * 131 + version * 31 + k);
  return payload;
}

void Peerd::handleVersionVector(SessionState& state, const VersionVector& vv) {
  const double now = loop_->now();
  const NodeId peer = state.session->peerNode();
  // Each periodic exchange is one observed contact opportunity — this is
  // what feeds the hierarchy's rate estimates, exactly as recorded contacts
  // feed the simulated estimator.
  estimator_.recordContact(config_.node, peer, now);

  // The vector is authoritative for what the peer holds right now.
  std::fill(state.known.begin(), state.known.end(), 0);
  for (const VersionVectorEntry& e : vv.entries)
    if (e.item < config_.itemCount)
      state.known[e.item] = std::max(state.known[e.item], e.version);

  for (data::ItemId item = 0; item < config_.itemCount; ++item) {
    const auto ours = store_->heldVersion(item);
    if (!ours || !mayPushTo(item, peer)) continue;
    const std::optional<data::Version> theirs =
        state.known[item] == 0 ? std::nullopt
                               : std::make_optional(state.known[item]);
    if (cache::ContactProtocol::decidePush(theirs, *ours, true) ==
        cache::PushVerdict::kSend)
      sendPush(state, item, *ours);
  }
}

void Peerd::handlePush(SessionState& state, const RefreshPush& push) {
  if (push.item >= config_.itemCount) {
    state.session->close("push for out-of-catalog item");
    return;
  }
  const double now = loop_->now();
  state.known[push.item] = std::max(state.known[push.item], push.version);

  const auto before = store_->heldVersion(push.item);
  if (!store_->install(push.item, push.version, push.payload, now)) return;
  if (ctrInstalls_ != nullptr) ctrInstalls_->add();
  DTNCACHE_EVENT(tracer_, obs::EventKind::kInstall, now, {"at", config_.node},
                 {"item", push.item}, {"version", push.version},
                 {"how", before.has_value() ? "upgrade" : "insert"});

  // Relay down the refresh tree: the push that reached us is our cue to
  // refresh the nodes we are responsible for.
  for (const auto& other : sessions_) {
    if (other.get() == &state || !other->session->established()) continue;
    const NodeId peer = other->session->peerNode();
    if (!mayPushTo(push.item, peer)) continue;
    if (cache::ContactProtocol::decidePush(
            other->known[push.item] == 0
                ? std::nullopt
                : std::make_optional(other->known[push.item]),
            push.version, true) == cache::PushVerdict::kSend)
      sendPush(*other, push.item, push.version);
  }
}

void Peerd::handleQuery(SessionState& state, const Query& query) {
  Reply reply;
  reply.queryId = query.queryId;
  reply.item = query.item;
  if (query.item < config_.itemCount) {
    if (const auto held = store_->heldVersion(query.item)) {
      reply.version = *held;
      reply.hasCopy = true;
      if (store_->memory().find(query.item) != nullptr)
        store_->memory().recordAccess(query.item, loop_->now());
    }
  }
  state.session->sendFrame(reply);
}

void Peerd::handleReply(SessionState& state, const Reply& reply) {
  (void)state;
  if (!reply.hasCopy) return;
  DTNCACHE_EVENT(tracer_, obs::EventKind::kReplyDelivered, loop_->now(),
                 {"node", config_.node}, {"item", reply.item},
                 {"version", reply.version}, {"query", reply.queryId});
}

void Peerd::handleReparent(SessionState& state, const Reparent& reparent) {
  // Only the item's source broadcasts authoritative edges; ignore others.
  if (state.session->peerNode() != sourceOf(reparent.item)) return;
  if (reparent.item >= config_.itemCount || reparent.child >= config_.nodeCount ||
      reparent.newParent >= config_.nodeCount)
    return;
  const std::uint64_t key = overrideKey(reparent.item, reparent.child);
  const std::uint32_t slot = overrideIndex_.find(key);
  if (slot != core::SlotIndex::kNoSlot) {
    overrideParents_[slot] = reparent.newParent;
  } else {
    overrideIndex_.insert(key, static_cast<std::uint32_t>(overrideParents_.size()));
    overrideParents_.push_back(reparent.newParent);
  }
  DTNCACHE_EVENT(tracer_, obs::EventKind::kReparent, loop_->now(),
                 {"item", reparent.item}, {"node", reparent.child},
                 {"parent", reparent.newParent});
}

// ---- wall-clock maintenance --------------------------------------------------

void Peerd::vvTick() {
  if (stopping_) return;
  for (const auto& state : sessions_)
    if (state->session->established()) sendVersionVector(*state);
  vvTimer_ = loop_->runAfter(config_.vvIntervalSeconds, [this] { vvTick(); });
}

void Peerd::bumpTick() {
  if (stopping_) return;
  const double now = loop_->now();
  for (data::ItemId item = 0; item < config_.itemCount; ++item) {
    if (sourceOf(item) != config_.node) continue;
    if (config_.bumpLimit > 0 && sourceVersions_[item] >= config_.bumpLimit) continue;
    const data::Version version = ++sourceVersions_[item];
    store_->install(item, version, makePayload(item, version), now);
    DTNCACHE_EVENT(tracer_, obs::EventKind::kVersionBump, now, {"item", item},
                   {"version", version});
    for (const auto& state : sessions_) {
      if (!state->session->established()) continue;
      const NodeId peer = state->session->peerNode();
      if (!mayPushTo(item, peer)) continue;
      if (cache::ContactProtocol::decidePush(
              state->known[item] == 0 ? std::nullopt
                                      : std::make_optional(state->known[item]),
              version, true) == cache::PushVerdict::kSend)
        sendPush(*state, item, version);
    }
  }
  bumpTimer_ = loop_->runAfter(config_.bumpIntervalSeconds, [this] { bumpTick(); });
}

void Peerd::maintenanceTick() {
  if (stopping_) return;
  rebuildHierarchies();
  store_->disk().sync();
  const std::uint64_t compactions = store_->disk().compactions();
  if (ctrCompactions_ != nullptr && compactions > lastCompactions_)
    ctrCompactions_->add(compactions - lastCompactions_);
  lastCompactions_ = compactions;
  maintenanceTimer_ =
      loop_->runAfter(config_.maintenanceIntervalSeconds, [this] { maintenanceTick(); });
}

void Peerd::queryTick() {
  if (stopping_) return;
  const data::ItemId item =
      static_cast<data::ItemId>(queryTicks_++ % config_.itemCount);
  for (const auto& state : sessions_) {
    if (!state->session->established()) continue;
    Query query;
    query.queryId = nextQueryId_++;
    query.item = item;
    DTNCACHE_EVENT(tracer_, obs::EventKind::kQuery, loop_->now(),
                   {"node", config_.node}, {"item", item}, {"query", query.queryId});
    state->session->sendFrame(query);
    break;
  }
  queryTimer_ = loop_->runAfter(config_.queryIntervalSeconds, [this] { queryTick(); });
}

void Peerd::rebuildHierarchies() {
  const double now = loop_->now();
  const core::RateFn rate = [this, now](NodeId a, NodeId b) {
    return estimator_.rate(a, b, now);
  };
  const core::HierarchyConfig hconfig{config_.fanoutBound, true};

  std::size_t reparents = 0;
  std::vector<core::RefreshHierarchy> next;
  next.reserve(config_.itemCount);
  for (data::ItemId item = 0; item < config_.itemCount; ++item) {
    const NodeId root = sourceOf(item);
    std::vector<NodeId> members;
    members.reserve(config_.nodeCount - 1);
    for (NodeId n = 0; n < config_.nodeCount; ++n)
      if (n != root) members.push_back(n);
    next.push_back(core::RefreshHierarchy::build(root, members, rate,
                                                 config_.tauSeconds, hconfig));

    if (item < hierarchies_.size()) {
      for (const NodeId child : members) {
        const NodeId oldParent = hierarchies_[item].parentOf(child);
        const NodeId newParent = next[item].parentOf(child);
        if (oldParent == newParent) continue;
        ++reparents;
        DTNCACHE_EVENT(tracer_, obs::EventKind::kReparent, now, {"item", item},
                       {"node", child}, {"parent", newParent});
        if (config_.node == root)
          for (const auto& state : sessions_)
            if (state->session->established())
              state->session->sendFrame(Reparent{item, child, newParent});
      }
    }
  }
  hierarchies_ = std::move(next);
  // A fresh local build supersedes any source overlays received earlier.
  overrideIndex_ = core::SlotIndex();
  overrideParents_.clear();
  DTNCACHE_EVENT(tracer_, obs::EventKind::kMaintenance, now,
                 {"items", config_.itemCount}, {"reparented", reparents});
}

}  // namespace dtncache::peer
