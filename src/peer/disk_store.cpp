#include "peer/disk_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "core/crc32.hpp"
#include "sim/assert.hpp"

namespace dtncache::peer {

namespace {

// Record guarding (CRC-32 + LE integer framing) comes from core/crc32.hpp,
// shared with the sweep engine's result fragments.
using core::crc32;
using core::putU32;
using core::putU64;
using core::readU32;
using core::readU64;

constexpr std::uint8_t kRecordPut = 1;
constexpr std::uint8_t kRecordRemove = 2;
constexpr std::size_t kRecordHeaderBytes = 8;           // length + crc
constexpr std::size_t kBodyFixedBytes = 1 + 4 + 8 + 4;  // kind|item|version|payloadLen

bool writeAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

std::vector<std::uint8_t> encodeBody(std::uint8_t kind, data::ItemId item,
                                     data::Version version,
                                     const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> body;
  body.reserve(kBodyFixedBytes + payload.size());
  body.push_back(kind);
  putU32(body, item);
  putU64(body, version);
  putU32(body, static_cast<std::uint32_t>(payload.size()));
  body.insert(body.end(), payload.begin(), payload.end());
  return body;
}

}  // namespace

DiskStore::~DiskStore() { close(); }

bool DiskStore::open(Config config) {
  DTNCACHE_CHECK_MSG(fd_ < 0, "DiskStore::open: already open");
  config_ = std::move(config);
  fd_ = ::open(config_.path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return false;
  if (!replay()) {
    close();
    return false;
  }
  return true;
}

void DiskStore::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  index_ = core::SlotIndex();
  items_.clear();
  live_.clear();
  freeSlots_.clear();
  logBytes_ = liveBytes_ = 0;
}

bool DiskStore::replay() {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) return false;
  const std::size_t fileBytes = static_cast<std::size_t>(st.st_size);

  std::vector<std::uint8_t> raw(fileBytes);
  std::size_t got = 0;
  while (got < fileBytes) {
    const ssize_t n = ::pread(fd_, raw.data() + got, fileBytes - got,
                              static_cast<off_t>(got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) break;
    got += static_cast<std::size_t>(n);
  }

  std::size_t offset = 0;
  while (offset + kRecordHeaderBytes <= got) {
    const std::uint32_t length = readU32(raw.data() + offset);
    const std::uint32_t crc = readU32(raw.data() + offset + 4);
    if (length < kBodyFixedBytes || offset + kRecordHeaderBytes + length > got)
      break;  // torn tail: length field half-written or body incomplete
    const std::uint8_t* body = raw.data() + offset + kRecordHeaderBytes;
    if (crc32(body, length) != crc) break;  // torn tail: body half-written

    const std::uint8_t kind = body[0];
    const data::ItemId item = readU32(body + 1);
    const data::Version version = readU64(body + 5);
    const std::uint32_t payloadLen = readU32(body + 13);
    if (kBodyFixedBytes + payloadLen != length) break;

    if (kind == kRecordPut) {
      applyPut(item, version,
               std::vector<std::uint8_t>(body + kBodyFixedBytes,
                                         body + kBodyFixedBytes + payloadLen));
    } else if (kind == kRecordRemove) {
      applyRemove(item);
    } else {
      break;  // unknown kind: treat as corruption boundary
    }
    offset += kRecordHeaderBytes + length;
  }

  if (offset < got) {
    // Drop the torn tail so the next append starts on a clean boundary.
    ++truncatedOnReplay_;
    if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) return false;
  }
  logBytes_ = offset;
  return true;
}

void DiskStore::applyPut(data::ItemId item, data::Version version,
                         std::vector<std::uint8_t> payload) {
  const std::uint32_t existing = index_.find(item);
  if (existing != core::SlotIndex::kNoSlot) {
    StoredItem& s = items_[existing];
    if (s.version >= version) return;
    liveBytes_ -= s.payload.size();
    s.version = version;
    s.payload = std::move(payload);
    liveBytes_ += s.payload.size();
    return;
  }
  std::uint32_t slot;
  if (!freeSlots_.empty()) {
    slot = freeSlots_.back();
    freeSlots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(items_.size());
    items_.emplace_back();
    live_.push_back(false);
  }
  items_[slot] = StoredItem{item, version, std::move(payload)};
  live_[slot] = true;
  liveBytes_ += items_[slot].payload.size();
  index_.insert(item, slot);
}

void DiskStore::applyRemove(data::ItemId item) {
  const std::uint32_t slot = index_.erase(item);
  if (slot == core::SlotIndex::kNoSlot) return;
  liveBytes_ -= items_[slot].payload.size();
  items_[slot] = StoredItem{};
  live_[slot] = false;
  freeSlots_.push_back(slot);
}

bool DiskStore::appendRecord(std::uint8_t kind, data::ItemId item, data::Version version,
                             const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> body = encodeBody(kind, item, version, payload);
  std::vector<std::uint8_t> record;
  record.reserve(kRecordHeaderBytes + body.size());
  putU32(record, static_cast<std::uint32_t>(body.size()));
  putU32(record, crc32(body.data(), body.size()));
  record.insert(record.end(), body.begin(), body.end());
  if (!writeAll(fd_, record.data(), record.size())) return false;
  logBytes_ += record.size();
  return true;
}

bool DiskStore::put(data::ItemId item, data::Version version,
                    const std::vector<std::uint8_t>& payload) {
  DTNCACHE_CHECK_MSG(fd_ >= 0, "DiskStore::put: store not open");
  const std::uint32_t slot = index_.find(item);
  if (slot != core::SlotIndex::kNoSlot && items_[slot].version >= version) return false;
  if (!appendRecord(kRecordPut, item, version, payload)) return false;
  applyPut(item, version, payload);
  maybeCompact();
  return true;
}

const DiskStore::StoredItem* DiskStore::get(data::ItemId item) const {
  const std::uint32_t slot = index_.find(item);
  return slot == core::SlotIndex::kNoSlot ? nullptr : &items_[slot];
}

bool DiskStore::remove(data::ItemId item) {
  DTNCACHE_CHECK_MSG(fd_ >= 0, "DiskStore::remove: store not open");
  if (index_.find(item) == core::SlotIndex::kNoSlot) return false;
  if (!appendRecord(kRecordRemove, item, 0, {})) return false;
  applyRemove(item);
  maybeCompact();
  return true;
}

void DiskStore::sync() {
  if (fd_ >= 0) ::fsync(fd_);
}

void DiskStore::maybeCompact() {
  if (logBytes_ < config_.compactThresholdBytes) return;
  // Only worth rewriting when at least half the file is dead bytes.
  const std::size_t liveRecordBytes =
      liveBytes_ + size() * (kRecordHeaderBytes + kBodyFixedBytes);
  if (liveRecordBytes * 2 > logBytes_) return;

  const std::string tmpPath = config_.path + ".compact";
  // O_APPEND matches open(): tmpFd becomes fd_ after the rename, and the
  // log's append-only discipline must not depend on where the file offset
  // happens to sit.
  const int tmpFd = ::open(tmpPath.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (tmpFd < 0) return;  // compaction is an optimization; skip on failure

  std::size_t written = 0;
  bool ok = true;
  for (std::size_t i = 0; i < items_.size() && ok; ++i) {
    if (!live_[i]) continue;
    const StoredItem& s = items_[i];
    const std::vector<std::uint8_t> body =
        encodeBody(kRecordPut, s.item, s.version, s.payload);
    std::vector<std::uint8_t> record;
    putU32(record, static_cast<std::uint32_t>(body.size()));
    putU32(record, crc32(body.data(), body.size()));
    record.insert(record.end(), body.begin(), body.end());
    ok = writeAll(tmpFd, record.data(), record.size());
    written += record.size();
  }
  if (!ok || ::fsync(tmpFd) != 0 ||
      ::rename(tmpPath.c_str(), config_.path.c_str()) != 0) {
    ::close(tmpFd);
    ::unlink(tmpPath.c_str());
    return;
  }
  ::close(fd_);
  fd_ = tmpFd;  // tmpFd now refers to config_.path (rename kept the inode)
  logBytes_ = written;
  ++compactions_;
}

}  // namespace dtncache::peer
