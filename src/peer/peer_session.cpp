#include "peer/peer_session.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "sim/assert.hpp"

namespace dtncache::peer {

namespace {
bool setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}
}  // namespace

PeerSession::PeerSession(EventLoop& loop, Handler& handler, Config config)
    : loop_(loop), handler_(handler), config_(config), peerNode_(kNoNode) {}

PeerSession::~PeerSession() {
  if (fd_ >= 0) {
    if (loop_.hasFd(fd_)) loop_.removeFd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  loop_.cancelTimer(helloTimer_);
  loop_.cancelTimer(idleTimer_);
}

void PeerSession::connectTo(const std::string& host, std::uint16_t port) {
  DTNCACHE_CHECK(state_ == State::kIdle);
  outbound_ = true;

  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0 || !setNonBlocking(fd_)) {
    closeInternal("socket setup failed", false);
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    closeInternal("bad peer address", false);
    return;
  }

  const int rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc == 0) {
    startHandshake();
    return;
  }
  if (errno != EINPROGRESS) {
    closeInternal("connect failed", false);
    return;
  }
  state_ = State::kConnecting;
  loop_.addFd(fd_, kWritable, [this](std::uint32_t events) { handleIo(events); });
  armHelloTimer();
}

void PeerSession::adopt(int fd) {
  DTNCACHE_CHECK(state_ == State::kIdle);
  fd_ = fd;
  if (!setNonBlocking(fd_)) {
    closeInternal("socket setup failed", false);
    return;
  }
  loop_.addFd(fd_, kReadable, [this](std::uint32_t events) { handleIo(events); });
  startHandshake();
}

void PeerSession::startHandshake() {
  state_ = State::kHelloWait;
  if (!loop_.hasFd(fd_))
    loop_.addFd(fd_, kReadable, [this](std::uint32_t events) { handleIo(events); });
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  armHelloTimer();
  sendFrame(Hello{config_.localNode, config_.nodeCount, config_.itemCount});
}

void PeerSession::sendFrame(const FrameBody& frame) {
  if (state_ == State::kClosed) return;
  writeQueue_.push(encodeFrame(frame));
  ++framesOut_;
  // Try an eager flush: most frames fit the socket buffer, and waiting for
  // the next poll round would add latency for nothing.
  if (state_ != State::kConnecting && !handleWritable()) return;
  updateInterest();
}

void PeerSession::handleIo(std::uint32_t events) {
  if (state_ == State::kClosed) return;

  if (state_ == State::kConnecting) {
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0 ||
        (events & kError) != 0) {
      closeInternal("connect failed", false);
      return;
    }
    startHandshake();
    if (state_ == State::kClosed) return;
    updateInterest();
    return;
  }

  if (events & kError) {
    closeInternal("socket error", false);
    return;
  }
  if ((events & kWritable) != 0 && !handleWritable()) return;
  if ((events & kReadable) != 0 && !handleReadable()) return;
  updateInterest();
}

bool PeerSession::handleReadable() {
  std::uint8_t chunk[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      bytesIn_ += static_cast<std::uint64_t>(n);
      readBuffer_.insert(readBuffer_.end(), chunk, chunk + n);
      if (!processFrames()) return false;
      continue;
    }
    if (n == 0) {
      closeInternal("peer closed connection", false);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    closeInternal("read error", false);
    return false;
  }
}

bool PeerSession::processFrames() {
  std::size_t offset = 0;
  while (offset < readBuffer_.size()) {
    const DecodeResult r = decodeFrame(readBuffer_.data() + offset,
                                       readBuffer_.size() - offset);
    if (r.status == DecodeStatus::kNeedMore) break;
    if (r.status == DecodeStatus::kReject) {
      closeInternal(r.error, true);
      return false;
    }
    offset += r.consumed;
    ++framesIn_;
    armIdleTimer();

    const FrameBody& frame = *r.frame;
    if (state_ == State::kHelloWait) {
      if (!consumeHello(frame)) return false;
      continue;
    }
    if (std::holds_alternative<Hello>(frame)) {
      closeInternal("unexpected second hello", true);
      return false;
    }
    handler_.onFrame(*this, frame);
    if (state_ == State::kClosed) return false;
  }
  readBuffer_.erase(readBuffer_.begin(),
                    readBuffer_.begin() + static_cast<std::ptrdiff_t>(offset));
  return true;
}

bool PeerSession::consumeHello(const FrameBody& frame) {
  const Hello* hello = std::get_if<Hello>(&frame);
  if (hello == nullptr) {
    closeInternal("first frame was not a hello", true);
    return false;
  }
  if (hello->itemCount != config_.itemCount || hello->nodeCount != config_.nodeCount) {
    closeInternal("hello catalog mismatch", false);
    return false;
  }
  if (hello->node >= config_.nodeCount || hello->node == config_.localNode) {
    closeInternal("hello with invalid node id", false);
    return false;
  }
  peerNode_ = hello->node;
  state_ = State::kEstablished;
  loop_.cancelTimer(helloTimer_);
  helloTimer_ = 0;
  armIdleTimer();
  handler_.onEstablished(*this);
  return state_ != State::kClosed;
}

bool PeerSession::handleWritable() {
  while (!writeQueue_.empty()) {
    const std::vector<std::uint8_t>& head = writeQueue_.front();
    const ssize_t n = ::send(fd_, head.data() + writeOffset_, head.size() - writeOffset_,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      closeInternal("write error", false);
      return false;
    }
    bytesOut_ += static_cast<std::uint64_t>(n);
    writeOffset_ += static_cast<std::size_t>(n);
    if (writeOffset_ == head.size()) {
      writeQueue_.popFront();
      writeOffset_ = 0;
    }
  }
  return true;
}

void PeerSession::updateInterest() {
  if (state_ == State::kClosed || fd_ < 0 || !loop_.hasFd(fd_)) return;
  std::uint32_t interest = kReadable;
  if (!writeQueue_.empty()) interest |= kWritable;
  loop_.setInterest(fd_, interest);
}

void PeerSession::armHelloTimer() {
  loop_.cancelTimer(helloTimer_);
  helloTimer_ = loop_.runAfter(config_.helloTimeoutSeconds,
                               [this] { closeInternal("handshake timeout", false); });
}

void PeerSession::armIdleTimer() {
  loop_.cancelTimer(idleTimer_);
  idleTimer_ = loop_.runAfter(config_.idleTimeoutSeconds,
                              [this] { closeInternal("idle timeout", false); });
}

void PeerSession::closeInternal(const char* reason, bool wasReject) {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  loop_.cancelTimer(helloTimer_);
  loop_.cancelTimer(idleTimer_);
  helloTimer_ = idleTimer_ = 0;
  if (fd_ >= 0) {
    if (loop_.hasFd(fd_)) loop_.removeFd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  handler_.onClosed(*this, reason, wasReject);
}

}  // namespace dtncache::peer
