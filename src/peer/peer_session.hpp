#pragma once

/// \file peer_session.hpp
/// One TCP connection between two peer daemons: non-blocking connect /
/// accept, stream reassembly into wire frames, and a pooled outbound frame
/// queue — the live-transport counterpart of one simulated contact.
///
/// Lifecycle: kConnecting (outbound only) → kHelloWait (both sides send a
/// Hello immediately) → kEstablished (hellos validated; version vectors
/// and pushes may flow) → kClosed. Closing is idempotent and always ends
/// in exactly one Handler::onClosed call; the handler may destroy the
/// session from inside that callback *only* via deferred deletion (the
/// daemon parks closed sessions in a graveyard drained from a timer),
/// because the close may be reported from inside the session's own fd
/// callback.
///
/// The outbound queue follows the pooled-slot + intrusive-FIFO pattern of
/// `net::MessageBuffer`: encoded frames live in recycled slots threaded
/// into a FIFO list, so a busy session enqueues and drains without
/// per-frame container churn. A malformed inbound stream (decodeFrame
/// kReject) closes the session — length framing is unrecoverable — and is
/// reported with `wasReject = true` so the daemon can count it.

#include <cstdint>
#include <string>
#include <vector>

#include "peer/event_loop.hpp"
#include "peer/wire.hpp"
#include "trace/contact.hpp"

namespace dtncache::peer {

/// Pending-write queue: encoded frames in pooled slots, FIFO order via
/// intrusive links (the net::MessageBuffer idiom, minus byte caps — TCP
/// backpressure is handled by the session's watermark instead).
class FrameQueue {
 public:
  static constexpr std::uint32_t kNil = static_cast<std::uint32_t>(-1);

  void push(std::vector<std::uint8_t> frame) {
    const std::uint32_t slot = allocSlot();
    slots_[slot].bytes = std::move(frame);
    linkTail(slot);
    queuedBytes_ += slots_[slot].bytes.size();
    ++size_;
  }

  bool empty() const { return head_ == kNil; }
  std::size_t size() const { return size_; }
  std::size_t queuedBytes() const { return queuedBytes_; }

  const std::vector<std::uint8_t>& front() const { return slots_[head_].bytes; }

  void popFront() {
    const std::uint32_t slot = head_;
    queuedBytes_ -= slots_[slot].bytes.size();
    --size_;
    head_ = slots_[slot].next;
    if (head_ == kNil) tail_ = kNil;
    slots_[slot].bytes.clear();
    slots_[slot].bytes.shrink_to_fit();
    freeSlots_.push_back(slot);
  }

 private:
  struct Slot {
    std::vector<std::uint8_t> bytes;
    std::uint32_t next = kNil;
  };

  std::uint32_t allocSlot() {
    if (!freeSlots_.empty()) {
      const std::uint32_t slot = freeSlots_.back();
      freeSlots_.pop_back();
      return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void linkTail(std::uint32_t slot) {
    slots_[slot].next = kNil;
    if (tail_ != kNil)
      slots_[tail_].next = slot;
    else
      head_ = slot;
    tail_ = slot;
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> freeSlots_;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::size_t size_ = 0;
  std::size_t queuedBytes_ = 0;
};

class PeerSession {
 public:
  struct Config {
    NodeId localNode = 0;
    std::uint32_t nodeCount = 0;
    std::uint32_t itemCount = 0;
    double helloTimeoutSeconds = 5.0;  ///< connect + hello exchange deadline
    double idleTimeoutSeconds = 30.0;  ///< no-frame deadline once established
  };

  /// Daemon-side hooks. All calls happen on the event-loop thread.
  class Handler {
   public:
    virtual ~Handler() = default;
    /// Hellos exchanged and validated; frames may now be sent.
    virtual void onEstablished(PeerSession& session) = 0;
    /// One decoded frame (never Hello — the session consumes those).
    virtual void onFrame(PeerSession& session, const FrameBody& frame) = 0;
    /// Terminal; exactly once. `wasReject` = closed on a malformed frame.
    virtual void onClosed(PeerSession& session, const char* reason, bool wasReject) = 0;
  };

  PeerSession(EventLoop& loop, Handler& handler, Config config);
  ~PeerSession();
  PeerSession(const PeerSession&) = delete;
  PeerSession& operator=(const PeerSession&) = delete;

  /// Start an outbound connection (non-blocking). Failure to even create
  /// the socket reports through onClosed.
  void connectTo(const std::string& host, std::uint16_t port);

  /// Take ownership of an accepted fd (made non-blocking here).
  void adopt(int fd);

  /// Queue one frame (encoded immediately) and arm the write path.
  void sendFrame(const FrameBody& frame);

  /// Idempotent close; fires onClosed on the first call.
  void close(const char* reason) { closeInternal(reason, false); }

  bool established() const { return state_ == State::kEstablished; }
  bool closed() const { return state_ == State::kClosed; }
  /// Peer identity from its Hello (kNoNode before the handshake).
  NodeId peerNode() const { return peerNode_; }
  bool outbound() const { return outbound_; }

  std::uint64_t bytesIn() const { return bytesIn_; }
  std::uint64_t bytesOut() const { return bytesOut_; }
  std::uint64_t framesIn() const { return framesIn_; }
  std::uint64_t framesOut() const { return framesOut_; }

 private:
  enum class State : std::uint8_t { kIdle, kConnecting, kHelloWait, kEstablished, kClosed };

  void startHandshake();  ///< send our Hello, move to kHelloWait
  void handleIo(std::uint32_t events);
  bool handleReadable();  ///< false when the session closed underneath
  bool handleWritable();
  bool processFrames();
  bool consumeHello(const FrameBody& frame);
  void updateInterest();
  void armHelloTimer();
  void armIdleTimer();
  void closeInternal(const char* reason, bool wasReject);

  EventLoop& loop_;
  Handler& handler_;
  Config config_;
  int fd_ = -1;
  State state_ = State::kIdle;
  bool outbound_ = false;
  NodeId peerNode_;
  std::vector<std::uint8_t> readBuffer_;
  FrameQueue writeQueue_;
  std::size_t writeOffset_ = 0;  ///< bytes of the head frame already sent
  EventLoop::TimerId helloTimer_ = 0;
  EventLoop::TimerId idleTimer_ = 0;
  std::uint64_t bytesIn_ = 0;
  std::uint64_t bytesOut_ = 0;
  std::uint64_t framesIn_ = 0;
  std::uint64_t framesOut_ = 0;
};

}  // namespace dtncache::peer
