#pragma once

/// \file disk_store.hpp
/// Persistent backing for a peer daemon's cache: an append-only record log
/// with CRC-guarded records, replayed into a `core::SlotIndex`-backed map
/// on open. A peer that is killed and restarted recovers every fully
/// written record and serves its held versions again — freshness state
/// survives the process, which is what makes kill-and-restart demos (and
/// real deployments) honest.
///
/// Log format, per record (all integers little-endian):
///
///     length u32   byte count of the body that follows the crc
///     crc    u32   CRC-32 of the body
///     body         kind u8 | item u32 | version u64 | payloadLen u32 | payload
///
/// Writes are append-only; a crash can only truncate the tail. Replay
/// stops at the first record whose length or CRC does not check out and
/// truncates the file there — a torn final record is expected after a
/// kill, everything before it is intact. Updates and removes are new
/// records (last one wins), so the log accumulates dead bytes; when the
/// file exceeds the compaction threshold and live data is under half of
/// it, the store rewrites only the live records to a temp file and
/// renames it into place (atomic on POSIX).
///
/// `PeerStore` stacks the simulation's byte-bounded LRU `cache::CacheStore`
/// over a DiskStore the way fs123 stacks its in-memory cache over a disk
/// backend: the memory tier gives O(1) hot lookups and enforces the cache
/// budget, the disk tier gives durability and serves misses that fell out
/// of the memory tier.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache_store.hpp"
#include "core/slot_index.hpp"
#include "data/item.hpp"

namespace dtncache::peer {

class DiskStore {
 public:
  struct Config {
    std::string path;  ///< log file; created if absent
    /// Compaction trigger: log file above this size *and* live payload
    /// under half of it.
    std::size_t compactThresholdBytes = 4 * 1024 * 1024;
  };

  struct StoredItem {
    data::ItemId item = 0;
    data::Version version = 0;
    std::vector<std::uint8_t> payload;
  };

  DiskStore() = default;
  ~DiskStore();
  DiskStore(const DiskStore&) = delete;
  DiskStore& operator=(const DiskStore&) = delete;

  /// Open (creating if needed) and replay the log. Returns false if the
  /// file cannot be opened; a corrupt tail is repaired, not an error.
  bool open(Config config);
  void close();
  bool isOpen() const { return fd_ >= 0; }

  /// Record `version` of `item`. Returns false (and writes nothing) when
  /// the store already holds the same or a newer version.
  bool put(data::ItemId item, data::Version version,
           const std::vector<std::uint8_t>& payload);

  /// Latest stored copy of `item`, or nullptr.
  const StoredItem* get(data::ItemId item) const;

  /// Append a removal record and drop the in-memory entry.
  bool remove(data::ItemId item);

  /// fsync the log (called by the daemon on its maintenance timer rather
  /// than per-record — a lost tail is a cache miss, not data loss).
  void sync();

  /// Live item count (dead slots awaiting reuse are not items).
  std::size_t size() const { return items_.size() - freeSlots_.size(); }
  std::size_t logBytes() const { return logBytes_; }
  std::size_t liveBytes() const { return liveBytes_; }
  std::uint64_t compactions() const { return compactions_; }
  /// Records dropped during replay because of a torn/corrupt tail.
  std::uint64_t truncatedOnReplay() const { return truncatedOnReplay_; }

  /// Visit every stored item (unspecified order).
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::size_t i = 0; i < items_.size(); ++i)
      if (live_[i]) fn(items_[i]);
  }

 private:
  bool appendRecord(std::uint8_t kind, data::ItemId item, data::Version version,
                    const std::vector<std::uint8_t>& payload);
  void applyPut(data::ItemId item, data::Version version,
                std::vector<std::uint8_t> payload);
  void applyRemove(data::ItemId item);
  bool replay();
  void maybeCompact();

  Config config_;
  int fd_ = -1;
  core::SlotIndex index_;
  std::vector<StoredItem> items_;
  std::vector<bool> live_;
  std::vector<std::uint32_t> freeSlots_;
  std::size_t logBytes_ = 0;
  std::size_t liveBytes_ = 0;  ///< payload bytes of live records
  std::uint64_t compactions_ = 0;
  std::uint64_t truncatedOnReplay_ = 0;
};

/// Memory-over-disk two-tier store for the peer daemon. All writes go to
/// both tiers; reads hit the LRU tier first and repopulate it from disk on
/// a miss. The disk tier keeps everything (subject to its own compaction),
/// the memory tier keeps the hot set within the configured byte budget.
class PeerStore {
 public:
  PeerStore(std::size_t memoryCapacityBytes, DiskStore::Config diskConfig)
      : memory_(memoryCapacityBytes) {
    diskOk_ = disk_.open(std::move(diskConfig));
  }

  bool diskOk() const { return diskOk_; }
  DiskStore& disk() { return disk_; }
  const DiskStore& disk() const { return disk_; }
  cache::CacheStore& memory() { return memory_; }
  const cache::CacheStore& memory() const { return memory_; }

  /// Install `version` of `item`. Returns true when this was news (either
  /// tier advanced its version).
  bool install(data::ItemId item, data::Version version,
               const std::vector<std::uint8_t>& payload, double now) {
    const bool diskNews = diskOk_ && disk_.put(item, version, payload);
    const auto r = memory_.insert(item, version,
                                  static_cast<std::uint32_t>(payload.size()), now);
    const bool memNews = r.kind == cache::InsertResult::Kind::kInserted ||
                         r.kind == cache::InsertResult::Kind::kUpgraded;
    return diskNews || memNews;
  }

  /// Version currently held, consulting memory first, then disk.
  std::optional<data::Version> heldVersion(data::ItemId item) const {
    if (const cache::CacheEntry* e = memory_.find(item)) return e->version;
    if (diskOk_)
      if (const DiskStore::StoredItem* s = disk_.get(item)) return s->version;
    return std::nullopt;
  }

  /// Fetch the payload (memory tier is metadata-only, so bytes always come
  /// from disk); promotes the entry back into the memory tier.
  const DiskStore::StoredItem* fetch(data::ItemId item, double now) {
    if (!diskOk_) return nullptr;
    const DiskStore::StoredItem* s = disk_.get(item);
    if (s == nullptr) return nullptr;
    memory_.insert(item, s->version, static_cast<std::uint32_t>(s->payload.size()), now);
    memory_.recordAccess(item, now);
    return s;
  }

 private:
  cache::CacheStore memory_;
  DiskStore disk_;
  bool diskOk_ = false;
};

}  // namespace dtncache::peer
