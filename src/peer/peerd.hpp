#pragma once

/// \file peerd.hpp
/// The peer daemon core: the paper's cache-freshness scheme driven by
/// wall-clock timers and real TCP sessions instead of a simulated contact
/// trace. One Peerd is one node.
///
/// The daemon reuses the simulation's machinery wholesale — that is the
/// point of the layering:
///   - `cache::ContactProtocol` decides what a contact pushes (shared with
///     `cache::CooperativeCache`, so sim and live make identical calls);
///   - `trace::ContactRateEstimator` learns pairwise contact rates from
///     the version-vector exchanges the daemon actually performs;
///   - `core::RefreshHierarchy::build` turns those rates into per-item
///     refresh trees on the maintenance timer, exactly as the simulated
///     hierarchical scheme does per maintenance event;
///   - `obs::Tracer` / `obs::Registry` emit the same JSONL events and
///     `ctr.*` counters as a simulation run, so scripts/trace_summarize.py
///     reads a live trace unchanged (timestamps are seconds since daemon
///     start, the live analogue of sim time).
///
/// Timer cadence maps the simulation's event stream onto wall-clock:
/// version-vector exchanges with each connected peer every
/// `vvIntervalSeconds` (each is an opportunistic "contact"), source
/// version bumps every `bumpIntervalSeconds`, hierarchy rebuild + disk
/// fsync + compaction accounting every `maintenanceIntervalSeconds`.
///
/// Push policy: `kHierarchy` pushes a fresher version only to nodes this
/// daemon is responsible for in the item's refresh tree (the paper's
/// bounded responsibility sets); received pushes relay down the tree the
/// same way. `kAny` floods to every stale connected peer (baseline).
/// Hierarchy views are per-daemon (each builds from its own estimator);
/// the item's source broadcasts Reparent frames when its authoritative
/// rebuild moves an edge, and receivers overlay those edges on their local
/// view until their own next rebuild.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/hierarchy.hpp"
#include "core/slot_index.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "peer/disk_store.hpp"
#include "peer/event_loop.hpp"
#include "peer/peer_config.hpp"
#include "peer/peer_session.hpp"
#include "trace/estimator.hpp"

namespace dtncache::peer {

class Peerd : public PeerSession::Handler {
 public:
  /// `tracer`/`registry` may be null (no tracing / no counters). When
  /// `externalLoop` is given the daemon shares it (tests drive several
  /// daemons single-threaded on one loop); otherwise it owns one.
  Peerd(PeerdConfig config, obs::Tracer* tracer, obs::Registry* registry,
        EventLoop* externalLoop = nullptr);
  ~Peerd() override;
  Peerd(const Peerd&) = delete;
  Peerd& operator=(const Peerd&) = delete;

  /// Bind + listen, arm all timers, schedule dials. Returns false when the
  /// listen socket or the disk store cannot be set up.
  bool start();

  /// Run the owned event loop until stop (SIGINT/SIGTERM via
  /// EventLoop::stop + wakeup, or the runSeconds timer).
  void run();

  /// Graceful shutdown: Bye to every peer, stop the loop.
  void shutdown();

  EventLoop& loop() { return *loop_; }

  /// Actual listening port (after bind; differs from config when 0 was
  /// requested to let the kernel pick).
  std::uint16_t boundPort() const { return boundPort_; }

  const PeerdConfig& config() const { return config_; }
  const PeerStore& store() const { return *store_; }
  std::optional<data::Version> heldVersion(data::ItemId item) const {
    return store_->heldVersion(item);
  }
  std::size_t establishedCount() const;

  /// The node that produces versions of `item` (its root in the tree).
  NodeId sourceOf(data::ItemId item) const {
    return static_cast<NodeId>(item % config_.nodeCount);
  }

  // -- PeerSession::Handler ---------------------------------------------------
  void onEstablished(PeerSession& session) override;
  void onFrame(PeerSession& session, const FrameBody& frame) override;
  void onClosed(PeerSession& session, const char* reason, bool wasReject) override;

 private:
  /// One live session plus what we know the peer holds (updated from its
  /// version vectors and from pushes in either direction — the live
  /// analogue of the handshake's version-metadata exchange).
  struct SessionState {
    std::unique_ptr<PeerSession> session;
    std::vector<data::Version> known;     ///< itemCount entries; 0 = none known
    std::size_t dialIndex = kNoDial;      ///< owning dial slot, inbound otherwise
    /// Closed but not yet swept out of sessions_. Closes can happen while
    /// sessions_ is under iteration (an eager flush inside sendFrame hits a
    /// dead socket), so removal is deferred to a drain timer instead of
    /// erasing in place.
    bool dead = false;
    /// This session won a duplicate-session race against an outbound dial;
    /// park that dial (no redial churn) and revive it when this session —
    /// the canonical one to the peer — drops.
    std::size_t resumeDial = kNoDial;
    /// Set when this session lost a duplicate race and its dial was parked
    /// on the winner: the close handler must not schedule a redial.
    bool parked = false;
  };
  static constexpr std::size_t kNoDial = static_cast<std::size_t>(-1);

  /// One configured outbound peer and its reconnect backoff.
  struct Dial {
    PeerAddr addr;
    PeerSession* session = nullptr;  ///< live attempt/connection, if any
    std::uint32_t failures = 0;      ///< consecutive, resets on establish
    EventLoop::TimerId retryTimer = 0;
  };

  bool openListenSocket();
  void acceptReady();
  void dialPeer(std::size_t dialIndex);
  void scheduleRedial(std::size_t dialIndex);

  SessionState* stateOf(PeerSession& session);
  void armDrain();
  void resumeDialSoon(std::size_t dialIndex);

  void sendVersionVector(SessionState& state);
  void sendPush(SessionState& state, data::ItemId item, data::Version version);
  /// May this daemon push `item` to `peer` under the configured policy?
  bool mayPushTo(data::ItemId item, NodeId peer) const;
  NodeId parentFor(data::ItemId item, NodeId node) const;
  std::vector<std::uint8_t> makePayload(data::ItemId item, data::Version version) const;

  void handleVersionVector(SessionState& state, const VersionVector& vv);
  void handlePush(SessionState& state, const RefreshPush& push);
  void handleQuery(SessionState& state, const Query& query);
  void handleReply(SessionState& state, const Reply& reply);
  void handleReparent(SessionState& state, const Reparent& reparent);

  void vvTick();
  void bumpTick();
  void maintenanceTick();
  void queryTick();
  void rebuildHierarchies();

  PeerdConfig config_;
  obs::Tracer* tracer_;
  obs::Registry* registry_;
  std::unique_ptr<EventLoop> ownedLoop_;
  EventLoop* loop_;

  std::unique_ptr<PeerStore> store_;
  trace::ContactRateEstimator estimator_;
  std::vector<core::RefreshHierarchy> hierarchies_;  ///< per item; empty pre-build
  /// Reparent overlays from the item's source: packed (item, child) →
  /// parent, consulted before the local tree until the next local rebuild.
  core::SlotIndex overrideIndex_;
  std::vector<NodeId> overrideParents_;

  int listenFd_ = -1;
  std::uint16_t boundPort_ = 0;
  std::vector<Dial> dials_;
  /// May hold dead-marked entries between a close and the next drain; every
  /// iteration must skip on `dead`/`established()` rather than assume all
  /// entries are live.
  std::vector<std::unique_ptr<SessionState>> sessions_;
  bool drainArmed_ = false;
  EventLoop::TimerId drainTimer_ = 0;

  // Self-rescheduling tick timers, tracked so the destructor can cancel
  // them: a Peerd on a shared loop must not leave `this`-capturing timers
  // behind when it is destroyed (tests tear daemons down mid-run).
  EventLoop::TimerId vvTimer_ = 0;
  EventLoop::TimerId bumpTimer_ = 0;
  EventLoop::TimerId maintenanceTimer_ = 0;
  EventLoop::TimerId queryTimer_ = 0;
  EventLoop::TimerId stopTimer_ = 0;

  std::vector<data::Version> sourceVersions_;  ///< per item; we bump our own
  std::uint64_t nextQueryId_ = 1;
  std::uint64_t queryTicks_ = 0;
  std::uint64_t lastCompactions_ = 0;
  bool stopping_ = false;

  obs::Counter* ctrReconnects_ = nullptr;
  obs::Counter* ctrFramesRejected_ = nullptr;
  obs::Counter* ctrCompactions_ = nullptr;
  obs::Counter* ctrPushSent_ = nullptr;
  obs::Counter* ctrInstalls_ = nullptr;
  obs::Counter* ctrSessions_ = nullptr;
};

}  // namespace dtncache::peer
