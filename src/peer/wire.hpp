#pragma once

/// \file wire.hpp
/// The dtncache peer wire protocol: versioned, length-prefixed binary
/// frames carrying the contact handshake (hello + version-metadata vector,
/// per docs/protocol.md step 2), refresh pushes, query/reply, and
/// hierarchy reparent notifications between live peer daemons.
///
/// Layout (all integers little-endian, serialized explicitly — no struct
/// punning, so the format is identical on every host):
///
///     magic   u32   0x434E5444 (the bytes "DTNC" on the wire)
///     version u8    kWireVersion
///     type    u8    FrameType
///     reserved u16  must be zero
///     length  u32   payload byte count (bounded by kMaxPayloadBytes)
///     payload …     type-specific, see the table in docs/peerd.md
///
/// `decodeFrame` is fuzz-friendly by contract: any byte sequence either
/// yields kNeedMore (a frame prefix), a decoded frame, or kReject with a
/// reason — it never asserts, throws, or reads out of bounds, so a
/// malicious or corrupted peer stream cannot take the daemon down. A
/// rejected stream is unrecoverable (length framing is lost) and the
/// session must be closed.

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "data/item.hpp"
#include "trace/contact.hpp"

namespace dtncache::peer {

inline constexpr std::uint32_t kWireMagic = 0x434E5444u;  // bytes "DTNC" on the wire
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Frames above this payload size are rejected outright: version metadata
/// and single-item pushes are small, so a huge length prefix is corruption
/// or an attack, not data.
inline constexpr std::uint32_t kMaxPayloadBytes = 16u * 1024 * 1024;

enum class FrameType : std::uint8_t {
  kHello = 1,          ///< session handshake: identity + catalog shape
  kVersionVector = 2,  ///< per-item version metadata (the contact handshake)
  kRefreshPush = 3,    ///< one item version with payload bytes
  kQuery = 4,          ///< request for an item
  kReply = 5,          ///< answer to a query
  kReparent = 6,       ///< hierarchy maintenance moved a child's parent
  kBye = 7,            ///< graceful close
};

/// Session handshake. Peers must agree on the catalog size; a mismatched
/// hello is a configuration error and closes the session.
struct Hello {
  NodeId node = 0;
  std::uint32_t nodeCount = 0;
  std::uint32_t itemCount = 0;
};

struct VersionVectorEntry {
  data::ItemId item = 0;
  data::Version version = 0;
};

/// The version-metadata exchange: what the sender currently holds. A node
/// with no copy of an item omits the entry.
struct VersionVector {
  std::vector<VersionVectorEntry> entries;
};

struct RefreshPush {
  data::ItemId item = 0;
  data::Version version = 0;
  std::vector<std::uint8_t> payload;
};

struct Query {
  std::uint64_t queryId = 0;
  data::ItemId item = 0;
};

struct Reply {
  std::uint64_t queryId = 0;
  data::ItemId item = 0;
  data::Version version = 0;
  bool hasCopy = false;
};

struct Reparent {
  data::ItemId item = 0;
  NodeId child = 0;
  NodeId newParent = 0;
};

struct Bye {};

using FrameBody =
    std::variant<Hello, VersionVector, RefreshPush, Query, Reply, Reparent, Bye>;

FrameType frameTypeOf(const FrameBody& body);
const char* frameTypeName(FrameType type);

/// Serialize one frame (header + payload). Total size is bounded by the
/// payload cap, which encodeFrame enforces with a check — encoding is
/// driven by our own code, so an oversized frame is a programming error.
std::vector<std::uint8_t> encodeFrame(const FrameBody& body);

enum class DecodeStatus : std::uint8_t {
  kNeedMore,  ///< `data` is a valid proper prefix; read more bytes
  kFrame,     ///< one frame decoded; `consumed` bytes were used
  kReject,    ///< malformed stream; close the session (see `error`)
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  std::size_t consumed = 0;           ///< kFrame only
  std::optional<FrameBody> frame;     ///< kFrame only
  const char* error = nullptr;        ///< kReject only (static string)
};

/// Decode the first frame of `data`. Never throws; never reads beyond
/// `size`. Trailing bytes after the first frame are left for the next
/// call (stream framing).
DecodeResult decodeFrame(const std::uint8_t* data, std::size_t size);

}  // namespace dtncache::peer
