#pragma once

/// \file simulator.hpp
/// The discrete-event simulation kernel.
///
/// Owns the clock and the pending-event set. Protocol code schedules
/// callbacks at absolute times or relative delays; run()/runUntil() drive
/// the event loop. Periodic activities (source refresh, maintenance timers,
/// metric sampling) are expressed with schedulePeriodic(), which re-arms
/// itself until cancelled.

#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace dtncache::sim {

class Simulator {
 public:
  /// Current simulation time. Starts at 0.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now()).
  EventId scheduleAt(SimTime at, EventFn fn) {
    DTNCACHE_CHECK_MSG(at >= now_, "scheduleAt in the past: " << at << " < " << now_);
    return queue_.schedule(at, std::move(fn));
  }

  /// Schedule `fn` after a non-negative delay from now().
  EventId scheduleAfter(SimTime delay, EventFn fn) {
    DTNCACHE_CHECK_MSG(delay >= 0.0, "negative delay " << delay);
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` to fire every `period` seconds. The first firing is at
  /// now()+phase, or now()+period when phase is kDefaultPhase. The callback
  /// keeps firing until the returned id is cancelled; the re-arm happens
  /// before the callback runs, so a callback may cancel its own series via
  /// the handle it captured.
  static constexpr SimTime kDefaultPhase = -1.0;
  EventId schedulePeriodic(SimTime period, EventFn fn, SimTime phase = kDefaultPhase) {
    DTNCACHE_CHECK(period > 0.0);
    if (phase == kDefaultPhase) phase = period;
    DTNCACHE_CHECK(phase >= 0.0);
    auto series = std::make_shared<PeriodicSeries>();
    series->fn = std::move(fn);
    const EventId id = nextSeriesId_++;
    armPeriodic(series, id, now_ + phase, period);
    return id;
  }

  /// Cancel a pending (or periodic) event; no-op for fired/unknown ids.
  void cancel(EventId id) {
    if (auto it = periodicArm_.find(id); it != periodicArm_.end()) {
      queue_.cancel(it->second);
      periodicArm_.erase(it);
    } else {
      queue_.cancel(id);
    }
  }

  /// Run until the event set is exhausted.
  void run() {
    while (!queue_.empty() && !stopped_) {
      // Advance the clock before firing, so now() is correct inside the
      // callback (scheduleAfter from a handler must measure from the
      // handler's own firing time).
      now_ = queue_.peekTime();
      queue_.runNext();
    }
  }

  /// Run events with time <= `until`, then advance the clock to `until`.
  void runUntil(SimTime until) {
    DTNCACHE_CHECK(until >= now_);
    while (!stopped_) {
      const SimTime t = queue_.peekTime();
      if (t == kNever || t > until) break;
      now_ = t;
      queue_.runNext();
    }
    if (!stopped_) now_ = until;
  }

  /// Request the current run()/runUntil() to return after the active event.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::size_t pendingEvents() const { return queue_.size(); }

  /// Drop all pending events and reset the stop flag; the clock is kept
  /// (a simulator's clock never moves backwards).
  void clearPending() {
    queue_.clear();
    periodicArm_.clear();
    stopped_ = false;
  }

 private:
  struct PeriodicSeries {
    EventFn fn;
  };

  void armPeriodic(std::shared_ptr<PeriodicSeries> series, EventId seriesId,
                   SimTime at, SimTime period) {
    const EventId armed =
        queue_.schedule(at, [this, series, seriesId, period](SimTime t) {
          // Re-arm first so the callback can cancel the series.
          armPeriodic(series, seriesId, t + period, period);
          series->fn(t);
        });
    periodicArm_[seriesId] = armed;
  }

  EventQueue queue_;
  SimTime now_ = 0.0;
  bool stopped_ = false;
  // Periodic series ids live in a separate (odd, high-bit) space so they never
  // collide with EventQueue ids handed to users.
  EventId nextSeriesId_ = (EventId{1} << 62) + 1;
  std::unordered_map<EventId, EventId> periodicArm_;
};

}  // namespace dtncache::sim
