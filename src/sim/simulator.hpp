#pragma once

/// \file simulator.hpp
/// The discrete-event simulation kernel.
///
/// Owns the clock and the pending-event set. Protocol code schedules
/// callbacks at absolute times or relative delays; run()/runUntil() drive
/// the event loop. Periodic activities (source refresh, maintenance timers,
/// metric sampling) are expressed with schedulePeriodic(), which re-arms
/// itself until cancelled.

#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace dtncache::sim {

class Simulator {
 public:
  /// Current simulation time. Starts at 0.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now()). The scope is the
  /// scheduler's promise about the callback (see EventScope); default to
  /// kFence unless the callback provably commutes with worker-run contacts.
  EventId scheduleAt(SimTime at, EventFn fn, EventScope scope = EventScope::kFence) {
    DTNCACHE_CHECK_MSG(at >= now_, "scheduleAt in the past: " << at << " < " << now_);
    return queue_.schedule(at, std::move(fn), scope);
  }

  /// Schedule `fn` after a non-negative delay from now().
  EventId scheduleAfter(SimTime delay, EventFn fn, EventScope scope = EventScope::kFence) {
    DTNCACHE_CHECK_MSG(delay >= 0.0, "negative delay " << delay);
    return queue_.schedule(now_ + delay, std::move(fn), scope);
  }

  /// Claim `n` consecutive FIFO ranks for later scheduleAtSequence calls.
  /// A streaming producer (net::Network's contact cursor) reserves one rank
  /// per future event upfront; events it then schedules lazily interleave
  /// with simultaneous events exactly as if all had been scheduled at
  /// reservation time. See docs/performance.md.
  EventQueue::Sequence reserveSequences(std::size_t n) {
    return queue_.reserveSequences(n);
  }

  /// Schedule `fn` at `at` (>= now()) with a reserved FIFO rank.
  EventId scheduleAtSequence(SimTime at, EventQueue::Sequence seq, EventFn fn) {
    DTNCACHE_CHECK_MSG(at >= now_, "scheduleAtSequence in the past: " << at << " < " << now_);
    return queue_.scheduleAtSequence(at, seq, std::move(fn));
  }

  /// Schedule `fn` to fire every `period` seconds. The first firing is at
  /// now()+phase, or now()+period when phase is kDefaultPhase. The callback
  /// keeps firing until the returned id is cancelled; the re-arm happens
  /// before the callback runs, so a callback may cancel its own series via
  /// the handle it captured.
  static constexpr SimTime kDefaultPhase = -1.0;
  EventId schedulePeriodic(SimTime period, EventFn fn, SimTime phase = kDefaultPhase,
                           EventScope scope = EventScope::kFence) {
    DTNCACHE_CHECK(period > 0.0);
    if (phase == kDefaultPhase) phase = period;
    DTNCACHE_CHECK(phase >= 0.0);
    auto series = std::make_shared<PeriodicSeries>();
    series->fn = std::move(fn);
    series->scope = scope;
    const EventId id = nextSeriesId_++;
    armPeriodic(series, now_ + phase, period);
    periodic_[id] = std::move(series);
    return id;
  }

  /// Cancel a pending (or periodic) event; no-op for fired/unknown ids.
  void cancel(EventId id) {
    if (auto it = periodic_.find(id); it != periodic_.end()) {
      queue_.cancel(it->second->armed);
      periodic_.erase(it);
    } else {
      queue_.cancel(id);
    }
  }

  /// Run until the event set is exhausted.
  void run() {
    while (!queue_.empty() && !stopped_) {
      // Advance the clock before firing, so now() is correct inside the
      // callback (scheduleAfter from a handler must measure from the
      // handler's own firing time).
      now_ = queue_.peekTime();
      queue_.runNext();
    }
  }

  /// Run events with time <= `until`, then advance the clock to `until`.
  void runUntil(SimTime until) {
    DTNCACHE_CHECK(until >= now_);
    while (!stopped_) {
      const SimTime t = queue_.peekTime();
      if (t == kNever || t > until) break;
      now_ = t;
      queue_.runNext();
    }
    if (!stopped_) now_ = until;
  }

  /// (time, sequence) key of the earliest pending event, or false when the
  /// queue is empty. The sharded runner uses this to choose each merge
  /// barrier's bound without popping anything.
  bool peekNextKey(SimTime& t, EventQueue::Sequence& seq) { return queue_.peekKey(t, seq); }

  /// peekNextKey plus the head event's scope, so the sharded runner knows
  /// whether running it requires quiescing the workers first.
  bool peekNextKey(SimTime& t, EventQueue::Sequence& seq, EventScope& scope) {
    return queue_.peekKey(t, seq, scope);
  }

  /// Pop and run exactly the earliest pending event, advancing the clock to
  /// its time first (same clock discipline as runUntil's loop body).
  /// Precondition: the queue is non-empty.
  void runOneEvent() {
    now_ = queue_.peekTime();
    queue_.runNext();
  }

  /// Advance the clock to `t` without running anything — the sharded
  /// runner's equivalent of runUntil's trailing `now_ = until`. The clock
  /// never moves backwards.
  void advanceClockTo(SimTime t) {
    if (t > now_) now_ = t;
  }

  /// Request the current run()/runUntil() to return after the active event.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::size_t pendingEvents() const { return queue_.size(); }

  /// Count `n` phantom pending events in peak tracking. The sharded runner
  /// delivers contacts outside the queue; plain mode keeps one cursor event
  /// pending while contacts remain, and this bias stands in for it so
  /// peakPendingEvents() is byte-identical across kernels. Scheduling a real
  /// dummy event instead would burn a sequence number and reorder
  /// simultaneous events — the bias must stay out of the FIFO rank space.
  void setPendingBias(std::size_t n) { queue_.setPeakBias(n); }

  /// High-water mark of the pending-event set over the simulator's lifetime
  /// — the kernel's memory footprint driver (see docs/performance.md).
  std::size_t peakPendingEvents() const { return queue_.peakSize(); }

  /// Total events fired so far (throughput denominator for benchmarks).
  std::uint64_t eventsProcessed() const { return queue_.processed(); }

  /// Drop all pending events and reset the stop flag; the clock is kept
  /// (a simulator's clock never moves backwards).
  void clearPending() {
    queue_.clear();
    periodic_.clear();
    stopped_ = false;
  }

 private:
  struct PeriodicSeries {
    EventFn fn;
    EventId armed = 0;  ///< the currently scheduled instance
    EventScope scope = EventScope::kFence;
  };

  void armPeriodic(std::shared_ptr<PeriodicSeries> series, SimTime at, SimTime period) {
    // The armed id is written into the series itself, so re-arming on each
    // firing touches no map — cancel() is the only map lookup.
    PeriodicSeries* raw = series.get();
    raw->armed = queue_.schedule(
        at,
        [this, series, period](SimTime t) {
          // Re-arm first so the callback can cancel the series.
          armPeriodic(series, t + period, period);
          series->fn(t);
        },
        raw->scope);
  }

  EventQueue queue_;
  SimTime now_ = 0.0;
  bool stopped_ = false;
  // Periodic series ids live in a separate (high-bit) space so they never
  // collide with EventQueue ids (which stay below 2^62).
  EventId nextSeriesId_ = (EventId{1} << 62) + 1;
  std::unordered_map<EventId, std::shared_ptr<PeriodicSeries>> periodic_;
};

}  // namespace dtncache::sim
