#pragma once

/// \file event_callback.hpp
/// Small-buffer move-only callable for simulation events.
///
/// The discrete-event kernel fires millions of callbacks per sweep job, and
/// std::function heap-allocates any capture larger than its
/// implementation-defined inline buffer (16 bytes on libstdc++). Protocol
/// callbacks in this tree capture `this` plus a few scalars; the largest —
/// the periodic re-arm closure (this + shared_ptr + id + period) — is 40
/// bytes. EventCallback therefore inlines any callable up to 48 bytes and
/// only heap-allocates beyond that, so scheduling a typical event performs
/// no allocation at all. Move-only: events fire once and the queue never
/// copies them (periodic series re-invoke one stored callback instead).

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/time.hpp"

namespace dtncache::sim {

class EventCallback {
 public:
  /// Largest capture stored inline. Grep for `scheduleAt`/`schedulePeriodic`
  /// call sites before shrinking this — a silent fallback to the heap is
  /// exactly the regression this class exists to prevent.
  static constexpr std::size_t kInlineSize = 48;

  EventCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&, SimTime>>>
  EventCallback(F&& f) {  // NOLINT: implicit like std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventCallback(EventCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  /// Destroy the held callable (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invoke the callable. May be called repeatedly; precondition: non-empty.
  void operator()(SimTime t) { ops_->invoke(buf_, t); }

 private:
  struct Ops {
    void (*invoke)(unsigned char*, SimTime);
    void (*relocate)(unsigned char* src, unsigned char* dst);  // move; destroys src
    void (*destroy)(unsigned char*);
  };

  template <typename Fn>
  static Fn* inlinePtr(unsigned char* buf) {
    return std::launder(reinterpret_cast<Fn*>(buf));
  }
  template <typename Fn>
  static Fn* heapPtr(unsigned char* buf) {
    return *std::launder(reinterpret_cast<Fn**>(buf));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](unsigned char* buf, SimTime t) { (*inlinePtr<Fn>(buf))(t); },
      [](unsigned char* src, unsigned char* dst) {
        Fn* f = inlinePtr<Fn>(src);
        ::new (static_cast<void*>(dst)) Fn(std::move(*f));
        f->~Fn();
      },
      [](unsigned char* buf) { inlinePtr<Fn>(buf)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](unsigned char* buf, SimTime t) { (*heapPtr<Fn>(buf))(t); },
      [](unsigned char* src, unsigned char* dst) {
        ::new (static_cast<void*>(dst)) Fn*(heapPtr<Fn>(src));
      },
      [](unsigned char* buf) { delete heapPtr<Fn>(buf); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace dtncache::sim
