#pragma once

/// \file assert.hpp
/// Invariant checking that stays on in release builds.
///
/// Simulation correctness bugs (a cycle in a refresh hierarchy, an event
/// scheduled in the past) silently corrupt results rather than crashing, so
/// the cost of always-on checks is well worth it: all checks are O(1) or
/// amortized into code paths that are far from the hot loop.

#include <sstream>
#include <stdexcept>
#include <string>

namespace dtncache {

/// Thrown when a DTNCACHE_CHECK fails; carries the failing expression text.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void checkFailed(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace dtncache

/// Always-on invariant check. Throws InvariantViolation on failure.
#define DTNCACHE_CHECK(expr)                                                \
  do {                                                                      \
    if (!(expr)) ::dtncache::detail::checkFailed(#expr, __FILE__, __LINE__, \
                                                 std::string{});            \
  } while (0)

/// Always-on invariant check with a context message (streamed expression).
#define DTNCACHE_CHECK_MSG(expr, msg)                              \
  do {                                                             \
    if (!(expr)) {                                                 \
      std::ostringstream os_;                                      \
      os_ << msg; /* NOLINT */                                     \
      ::dtncache::detail::checkFailed(#expr, __FILE__, __LINE__,   \
                                      os_.str());                  \
    }                                                              \
  } while (0)
