#pragma once

/// \file event_queue.hpp
/// Pending-event set for the discrete-event engine.
///
/// A binary heap keyed on (time, sequence). The sequence number makes
/// ordering of simultaneous events deterministic (FIFO in scheduling order),
/// which in turn makes whole simulation runs reproducible bit-for-bit for a
/// given seed. Cancellation is lazy: a cancelled event stays in the heap but
/// is skipped on pop, which keeps both schedule and cancel O(log n) without
/// the bookkeeping of an indexed heap.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/assert.hpp"
#include "sim/time.hpp"

namespace dtncache::sim {

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

/// Callback invoked when an event fires. Receives the firing time.
using EventFn = std::function<void(SimTime)>;

class EventQueue {
 public:
  /// Insert an event at absolute time `at`. Returns an id usable with
  /// cancel(). `at` may equal the time of the most recently popped event
  /// (zero-delay follow-ups) but must never be earlier.
  EventId schedule(SimTime at, EventFn fn) {
    DTNCACHE_CHECK_MSG(at >= lastPopped_, "event scheduled in the past: at="
                                              << at << " now=" << lastPopped_);
    const EventId id = nextId_++;
    heap_.push(Entry{at, id, std::move(fn)});
    pending_.insert(id);
    return id;
  }

  /// Cancel a pending event. Cancelling an already-fired or already-cancelled
  /// id is a harmless no-op (the id space is never reused, so this is safe).
  void cancel(EventId id) {
    if (pending_.erase(id) > 0) cancelled_.insert(id);
  }

  bool empty() const { return pending_.empty(); }

  std::size_t size() const { return pending_.size(); }

  /// Time of the earliest live event; kNever when empty.
  SimTime peekTime() {
    skipCancelled();
    return heap_.empty() ? kNever : heap_.top().time;
  }

  /// Pop and run the earliest live event. Precondition: !empty().
  /// Returns the time the event fired at.
  SimTime runNext() {
    skipCancelled();
    DTNCACHE_CHECK(!heap_.empty());
    Entry e = heap_.top();
    heap_.pop();
    pending_.erase(e.id);
    lastPopped_ = e.time;
    e.fn(e.time);
    return e.time;
  }

  /// Remove every pending event.
  void clear() {
    heap_ = {};
    cancelled_.clear();
    pending_.clear();
  }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  void skipCancelled() {
    while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;  ///< lazily skipped heap entries
  std::unordered_set<EventId> pending_;    ///< scheduled, not yet fired/cancelled
  EventId nextId_ = 1;
  SimTime lastPopped_ = 0.0;
};

}  // namespace dtncache::sim
