#pragma once

/// \file event_queue.hpp
/// Pending-event set for the discrete-event engine.
///
/// Two-level structure tuned for throughput (measured in bench_kernel; see
/// docs/performance.md):
///
///   - a binary heap of 24-byte POD entries (time, sequence, id). The
///     sequence number makes simultaneous events fire FIFO in scheduling
///     order, which keeps whole runs reproducible bit-for-bit for a given
///     seed. Sift operations move only these PODs, never callables.
///   - a slot table owning the callbacks. Heap entries name their slot via
///     a generation-stamped id; cancellation frees the slot and bumps its
///     generation (O(1), no hashing), and the stale heap entry is discarded
///     when it surfaces at the top. Freed slots are recycled through a free
///     list, so a steady-state simulation allocates nothing per event.
///
/// Callables are sim::EventCallback (48-byte small-buffer optimization), so
/// typical protocol callbacks never touch the heap either.

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/assert.hpp"
#include "sim/event_callback.hpp"
#include "sim/time.hpp"

namespace dtncache::sim {

/// Identifies a scheduled event so it can be cancelled. Encodes slot-index+1
/// (low 32 bits, so 0 is never a valid id and works as a "none" sentinel)
/// and the slot's generation at allocation (next 30 bits). Ids therefore
/// stay below 2^62: Simulator's periodic-series id space (bit 62 upward)
/// never collides. A slot's generation wraps after 2^30 reuses — cancelling
/// an id retained across a billion reuses of its slot could alias, which no
/// real caller does (ids are cancelled promptly or dropped).
using EventId = std::uint64_t;

/// Callback invoked when an event fires. Receives the firing time.
using EventFn = EventCallback;

/// Execution scope of a queued event under the sharded kernel
/// (runner/shard_driver). The scope is a *scheduling-time promise* about the
/// callback, not something the queue enforces:
///   - kFence (default): the callback may touch any protocol state, so the
///     coordinator must quiesce worker threads before running it.
///   - kShardLocal: the callback commutes with worker-executed boring
///     contacts — it writes only coordinator-owned state (collector, its own
///     scheme structures, per-context sinks) and reads nothing workers write
///     (estimator pair state), and it does not change any node's
///     protocol-activity status. The coordinator may run it without a
///     barrier, which is what makes timer-heavy schemes shardable.
/// Plain single-threaded runs ignore the scope entirely.
enum class EventScope : std::uint8_t {
  kFence = 0,
  kShardLocal = 1,
};

class EventQueue {
 public:
  /// FIFO rank among simultaneous events. Assigned internally by
  /// schedule(); reserveSequences() hands out a contiguous block so a
  /// streaming producer (net::Network's contact cursor) can schedule events
  /// lazily that still fire exactly as if they had all been scheduled at
  /// reservation time.
  using Sequence = std::uint64_t;

  /// Insert an event at absolute time `at`. Returns an id usable with
  /// cancel(). `at` may equal the time of the most recently popped event
  /// (zero-delay follow-ups) but must never be earlier.
  EventId schedule(SimTime at, EventFn fn, EventScope scope = EventScope::kFence) {
    return scheduleImpl(at, nextSeq_++, std::move(fn), scope);
  }

  /// Claim the next `n` FIFO ranks without scheduling anything.
  Sequence reserveSequences(std::size_t n) {
    const Sequence first = nextSeq_;
    nextSeq_ += n;
    return first;
  }

  /// Schedule with a previously reserved FIFO rank.
  EventId scheduleAtSequence(SimTime at, Sequence seq, EventFn fn,
                             EventScope scope = EventScope::kFence) {
    DTNCACHE_CHECK_MSG(seq < nextSeq_, "sequence " << seq << " was never reserved");
    return scheduleImpl(at, seq, std::move(fn), scope);
  }

  /// Cancel a pending event: O(1) — frees the slot and bumps its
  /// generation, leaving the heap entry to be lazily discarded. Cancelling
  /// an already-fired or already-cancelled id is a harmless no-op (the
  /// generation no longer matches).
  void cancel(EventId id) {
    const std::uint32_t slot = slotOf(id);
    if (slot >= slots_.size() || slots_[slot].generation != generationOf(id)) return;
    freeSlot(slot);
    --live_;
  }

  bool empty() const { return live_ == 0; }

  std::size_t size() const { return live_; }

  /// Time of the earliest live event; kNever when empty.
  SimTime peekTime() {
    purgeStale();
    return heap_.empty() ? kNever : heap_.top().time;
  }

  /// Full (time, sequence) ordering key of the earliest live event. The
  /// sharded runner publishes this key as the merge bound: every stream
  /// entry strictly below it fires before the queue event would, exactly
  /// as the single-threaded loop interleaves them. Returns false when empty.
  bool peekKey(SimTime& time, Sequence& seq) {
    purgeStale();
    if (heap_.empty()) return false;
    time = heap_.top().time;
    seq = heap_.top().seq;
    return true;
  }

  /// peekKey plus the head event's declared scope, so the sharded runner can
  /// decide whether the event needs a worker barrier before it runs.
  bool peekKey(SimTime& time, Sequence& seq, EventScope& scope) {
    purgeStale();
    if (heap_.empty()) return false;
    time = heap_.top().time;
    seq = heap_.top().seq;
    scope = slots_[slotOf(heap_.top().id)].scope;
    return true;
  }

  /// Pop and run the earliest live event. Precondition: !empty().
  /// Returns the time the event fired at.
  SimTime runNext() {
    purgeStale();
    DTNCACHE_CHECK(!heap_.empty());
    const HeapEntry e = heap_.top();
    heap_.pop();
    const std::uint32_t slot = slotOf(e.id);
    EventCallback fn = std::move(slots_[slot].fn);
    // Free before invoking: the callback may schedule (reusing the slot
    // under a fresh generation) or cancel its own id (a no-op, as before).
    freeSlot(slot);
    --live_;
    ++processed_;
    lastPopped_ = e.time;
    fn(e.time);
    return e.time;
  }

  /// Remove every pending event. Outstanding ids stay safely cancellable
  /// (their generations are bumped); the clock floor is kept.
  void clear() {
    heap_ = {};
    for (std::uint32_t s = 0; s < slots_.size(); ++s)
      if (slots_[s].fn) freeSlot(s);
    live_ = 0;
  }

  /// Lifetime high-water mark of the pending set (not reset by clear()).
  std::size_t peakSize() const { return peakSize_; }

  /// Phantom events included in peak tracking (see Simulator::setPendingBias).
  /// Applying a bias performs the same high-water check a schedule() of that
  /// many events would, so raising it is equivalent to the elided schedule.
  void setPeakBias(std::size_t n) {
    peakBias_ = n;
    if (live_ + peakBias_ > peakSize_) peakSize_ = live_ + peakBias_;
  }
  /// Total events fired over the queue's lifetime.
  std::uint64_t processed() const { return processed_; }

 private:
  struct HeapEntry {
    SimTime time;
    Sequence seq;
    EventId id;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };
  struct Slot {
    EventCallback fn;
    std::uint32_t generation = 0;
    EventScope scope = EventScope::kFence;
  };

  static constexpr std::uint32_t kGenerationMask = (1u << 30) - 1;

  static EventId makeId(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | (slot + 1);
  }
  static std::uint32_t slotOf(EventId id) { return static_cast<std::uint32_t>(id) - 1; }
  static std::uint32_t generationOf(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  EventId scheduleImpl(SimTime at, Sequence seq, EventCallback fn, EventScope scope) {
    DTNCACHE_CHECK_MSG(at >= lastPopped_, "event scheduled in the past: at="
                                              << at << " now=" << lastPopped_);
    DTNCACHE_CHECK(static_cast<bool>(fn));
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
      slot = freeSlots_.back();
      freeSlots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[slot].fn = std::move(fn);
    slots_[slot].scope = scope;
    const EventId id = makeId(slot, slots_[slot].generation);
    heap_.push(HeapEntry{at, seq, id});
    ++live_;
    if (live_ + peakBias_ > peakSize_) peakSize_ = live_ + peakBias_;
    return id;
  }

  void freeSlot(std::uint32_t slot) {
    slots_[slot].fn.reset();
    slots_[slot].generation = (slots_[slot].generation + 1) & kGenerationMask;
    freeSlots_.push_back(slot);
  }

  /// A heap entry is stale when its slot moved on to a new generation
  /// (the event was cancelled, or the slot was freed by clear()).
  bool stale(const HeapEntry& e) const {
    return slots_[slotOf(e.id)].generation != generationOf(e.id);
  }

  void purgeStale() {
    while (!heap_.empty() && stale(heap_.top())) heap_.pop();
  }

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> freeSlots_;
  std::size_t live_ = 0;
  Sequence nextSeq_ = 1;
  SimTime lastPopped_ = 0.0;
  std::size_t peakSize_ = 0;
  std::size_t peakBias_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace dtncache::sim
