#pragma once

/// \file time.hpp
/// Simulation time representation and human-friendly duration helpers.
///
/// Simulation time is a double counting seconds since the start of the run.
/// Contact traces in this domain span hours to months, and the granularity
/// of interest (contact durations, refresh periods) is seconds, so a double
/// gives more than enough precision while keeping arithmetic trivial.

namespace dtncache::sim {

/// Seconds since the beginning of the simulation.
using SimTime = double;

/// Sentinel meaning "never" / "not scheduled".
inline constexpr SimTime kNever = -1.0;

inline constexpr SimTime seconds(double s) { return s; }
inline constexpr SimTime minutes(double m) { return m * 60.0; }
inline constexpr SimTime hours(double h) { return h * 3600.0; }
inline constexpr SimTime days(double d) { return d * 86400.0; }

/// Convert a SimTime to fractional hours/days for reporting.
inline constexpr double toHours(SimTime t) { return t / 3600.0; }
inline constexpr double toDays(SimTime t) { return t / 86400.0; }

}  // namespace dtncache::sim
