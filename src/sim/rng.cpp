#include "sim/rng.hpp"

#include <algorithm>
#include <cmath>

namespace dtncache::sim {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  DTNCACHE_CHECK(n > 0);
  DTNCACHE_CHECK(exponent >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail short
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t k) const {
  DTNCACHE_CHECK(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

std::size_t Rng::zipfOnce(std::size_t n, double s) {
  return ZipfSampler(n, s).sample(*this);
}

}  // namespace dtncache::sim
