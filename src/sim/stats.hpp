#pragma once

/// \file stats.hpp
/// Statistics accumulators used throughout metrics collection and benches.
///
/// - Accumulator: streaming count/mean/variance/min/max (Welford).
/// - TimeWeightedMean: average of a piecewise-constant signal over sim time
///   (the right notion for "fraction of fresh copies").
/// - Histogram: fixed-bin counts with percentile queries.
/// - TimeSeries: (t, value) samples for time plots.

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "sim/assert.hpp"
#include "sim/time.hpp"

namespace dtncache::sim {

/// The repo-wide empty-denominator convention: a ratio over zero events is
/// 0, not NaN. Every "x per y" metric (query success ratios, per-node
/// loads, CSV/JSONL sink cells) funnels through here so that sweep output
/// never contains `nan` cells and all callers agree on the convention.
inline double ratio(double numerator, double denominator) {
  return denominator == 0.0 ? 0.0 : numerator / denominator;
}

inline double ratio(std::size_t numerator, std::size_t denominator) {
  return denominator == 0 ? 0.0
                          : static_cast<double>(numerator) / static_cast<double>(denominator);
}

/// Streaming moments over a sequence of samples.
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const { return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1); }
  double stddev() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

  void reset() { *this = Accumulator{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted mean of a piecewise-constant signal. Call update(t, v)
/// whenever the signal changes; the value v holds from t until the next
/// update. mean(tEnd) integrates up to tEnd.
class TimeWeightedMean {
 public:
  explicit TimeWeightedMean(SimTime start = 0.0)
      : startTime_(start), lastTime_(start) {}

  void update(SimTime t, double value) {
    DTNCACHE_CHECK_MSG(t >= lastTime_, "time went backwards: " << t << " < " << lastTime_);
    integral_ += current_ * (t - lastTime_);
    lastTime_ = t;
    current_ = value;
  }

  double currentValue() const { return current_; }

  /// Mean over [start, tEnd]. tEnd must be >= the last update time.
  double mean(SimTime tEnd) const {
    DTNCACHE_CHECK(tEnd >= lastTime_);
    const double span = tEnd - start();
    if (span <= 0.0) return current_;
    return (integral_ + current_ * (tEnd - lastTime_)) / span;
  }

 private:
  double start() const { return startTime_; }

  SimTime startTime_;
  SimTime lastTime_;
  double current_ = 0.0;
  double integral_ = 0.0;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp to
/// the edge bins so percentiles remain meaningful.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t count() const { return total_; }

  /// Value below which fraction q of samples fall (bin-midpoint estimate).
  double percentile(double q) const;

  double binLow(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  std::size_t binCount(std::size_t i) const { return counts_[i]; }
  std::size_t bins() const { return counts_.size(); }

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Sequence of (time, value) samples for plotting a signal over time.
class TimeSeries {
 public:
  void record(SimTime t, double v) { points_.push_back({t, v}); }

  struct Point {
    SimTime time;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Downsample to at most `n` evenly spaced points (for compact printing).
  std::vector<Point> resampled(std::size_t n) const;

 private:
  std::vector<Point> points_;
};

}  // namespace dtncache::sim
