#pragma once

/// \file rng.hpp
/// Deterministic random-number source for simulations.
///
/// One Rng per independent random process (trace generation, workload,
/// protocol tie-breaks); fork() derives uncorrelated substreams so that
/// changing how much randomness one component consumes does not perturb the
/// others — essential for paired comparisons between schemes on the same
/// trace.

#include <cstdint>
#include <random>
#include <vector>

#include "sim/assert.hpp"

namespace dtncache::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// Derive an independent substream. Deterministic: fork(k) of an Rng with
  /// a given seed always yields the same substream, regardless of how many
  /// variates were drawn from the parent.
  Rng fork(std::uint64_t salt) const {
    // SplitMix64 finalizer mixes seed and salt; good avalanche keeps
    // substreams decorrelated even for adjacent salts.
    std::uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * (salt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return Rng(z);
  }

  /// Uniform in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    DTNCACHE_CHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    DTNCACHE_CHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  bool bernoulli(double p) {
    DTNCACHE_CHECK(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    DTNCACHE_CHECK(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  double normal(double mean, double stddev) {
    DTNCACHE_CHECK(stddev >= 0.0);
    if (stddev == 0.0) return mean;
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  int poisson(double mean) {
    DTNCACHE_CHECK(mean >= 0.0);
    if (mean == 0.0) return 0;
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Pareto (type I) with scale x_m > 0 and shape alpha > 0.
  /// Heavy-tailed; used for heterogeneous pairwise contact rates.
  double pareto(double xm, double alpha) {
    DTNCACHE_CHECK(xm > 0.0 && alpha > 0.0);
    return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

  /// Pareto truncated to [xm, cap]: rejection-free via inverse CDF of the
  /// truncated distribution.
  double paretoTruncated(double xm, double alpha, double cap) {
    DTNCACHE_CHECK(cap > xm);
    const double fCap = 1.0 - std::pow(xm / cap, alpha);
    const double u = uniform() * fCap;
    return xm / std::pow(1.0 - u, 1.0 / alpha);
  }

  /// Zipf over {0, .., n-1} with exponent s (s=0 is uniform). Item 0 is the
  /// most popular. O(n) setup per call is avoided by the caller caching a
  /// ZipfSampler; this helper is for one-off draws in tests.
  std::size_t zipfOnce(std::size_t n, double s);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

/// Precomputed-CDF Zipf sampler: O(n) construction, O(log n) per draw.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Draw an index in [0, n); index 0 is most popular.
  std::size_t sample(Rng& rng) const;

  /// P(draw == k).
  double probability(std::size_t k) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace dtncache::sim
