#pragma once

/// \file shard_context.hpp
/// Thread-local execution context for the sharded simulation kernel.
///
/// The sharded runner (runner/shard_driver.*) executes shard-local contacts
/// on worker threads while every simulator-queue event runs on the
/// coordinator between merge barriers. Shared observability sinks (counters,
/// trace lines, metric ops, estimator dirty keys) cannot be written
/// concurrently without either locks (slow, and lock order would perturb
/// nothing — but contention would dominate) or per-thread buffers. This
/// context is the per-thread buffer selector: each instrumented component
/// keeps one sink per context and folds them deterministically at merge
/// time, keyed by the (time, sequence) tag of the event that produced each
/// record — the same total order the single-threaded kernel executes in,
/// which is what makes the merged output byte-identical.
///
/// Context ids: 0 = the coordinator (and the only context that exists in
/// plain single-threaded runs — `tlsShard` zero-initializes, so untouched
/// code paths behave exactly as before); shard s's worker is context s+1.

#include <cstdint>

#include "sim/time.hpp"

namespace dtncache::sim {

struct ShardContext {
  /// Sink selector: 0 on the coordinator / in plain runs, shard+1 on workers.
  std::uint32_t ctx = 0;
  /// (time, sequence) key of the event currently executing on this thread —
  /// the deterministic merge tag for everything the event emits.
  SimTime evTime = 0.0;
  std::uint64_t evSeq = 0;
};

inline thread_local ShardContext tlsShard{};

}  // namespace dtncache::sim
