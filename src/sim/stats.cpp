#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dtncache::sim {

double Accumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  DTNCACHE_CHECK(hi > lo);
  DTNCACHE_CHECK(bins > 0);
}

void Histogram::add(double x) {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::percentile(double q) const {
  DTNCACHE_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const auto target = static_cast<double>(total_) * q;
  double running = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += static_cast<double>(counts_[i]);
    if (running >= target) return binLow(i) + width_ / 2.0;
  }
  return hi_;
}

std::vector<TimeSeries::Point> TimeSeries::resampled(std::size_t n) const {
  if (points_.size() <= n || n == 0) return points_;
  std::vector<Point> out;
  out.reserve(n);
  const double step = static_cast<double>(points_.size() - 1) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(std::llround(static_cast<double>(i) * step));
    out.push_back(points_[std::min(idx, points_.size() - 1)]);
  }
  return out;
}

}  // namespace dtncache::sim
