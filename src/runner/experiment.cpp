#include "runner/experiment.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <thread>

#include "data/source.hpp"
#include "net/network.hpp"
#include "runner/shard_plan.hpp"
#include "sim/assert.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_cache.hpp"

namespace dtncache::runner {

const char* schemeName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kHierarchical: return "Hierarchical";
    case SchemeKind::kNoRefresh: return "NoRefresh";
    case SchemeKind::kSourceDirect: return "SourceDirect";
    case SchemeKind::kEpidemic: return "Epidemic";
    case SchemeKind::kFlooding: return "Flooding";
    case SchemeKind::kPull: return "Pull";
    case SchemeKind::kInvalidation: return "Invalidation";
  }
  return "?";
}

std::vector<SchemeKind> allSchemes() {
  return {SchemeKind::kHierarchical, SchemeKind::kNoRefresh,
          SchemeKind::kSourceDirect, SchemeKind::kPull,
          SchemeKind::kInvalidation, SchemeKind::kEpidemic,
          SchemeKind::kFlooding};
}

namespace {

// Every standard counter/timer, pre-registered before the run so that all
// schemes (which touch different subsets) snapshot the identical sorted
// name set — result-sink columns then line up across rows. Keep in sync
// with docs/observability.md.
void preregisterObservables(obs::Registry& registry) {
  static const char* const kCounters[] = {
      "net.contact.delivered",   "net.contact.suppressed", "net.contact.lost",
      "cache.handshake.truncated", "cache.push.delivered", "cache.push.noop",
      "cache.push.denied",       "cache.install.inserted", "cache.install.upgraded",
      "cache.install.evicted",   "cache.query.local_hit",  "cache.query.sprayed",
      "cache.reply.delivered",   "core.maintenance.runs",  "core.reparent.count",
      "core.relay.injected",     "core.churn.repairs",     "core.plan.helpers",
      "core.plan.unmet",         "core.maintenance.dirty_pairs",
      "core.maintenance.skipped", "core.plan.cache_hits",
      "shard.fence_contacts",    "shard.boring_contacts",
      "shard.fence_from_expired_only",
  };
  static const char* const kTimers[] = {"core.maintenance", "runner.start", "runner.run"};
  for (const char* name : kCounters) registry.counter(name);
  for (const char* name : kTimers) registry.timer(name);
}

}  // namespace

ExperimentOutput runExperiment(const ExperimentConfig& config) {
  // --- traces ---------------------------------------------------------------
  trace::SyntheticTraceConfig traceCfg = config.trace;
  traceCfg.seed = traceCfg.seed * 1000003 + config.seed;
  std::shared_ptr<const trace::SyntheticTrace> worldShared;
  sim::SimTime horizon = 0.0;
  if (config.externalTrace != nullptr) {
    // Memoized: every job of a sweep arm points at the same loaded trace;
    // copying it and refitting the full MLE rate matrix per job was the
    // dominant per-job setup cost on the external-trace path.
    worldShared = trace::externalShared(*config.externalTrace);
    horizon = worldShared->trace.duration();
  } else {
    // Memoized: sweep grids and bench reps replay identical (config, seed)
    // traces many times; generation is RNG-bound and worth sharing.
    worldShared = trace::generateShared(traceCfg);
    horizon = traceCfg.duration;
  }
  const trace::SyntheticTrace& world = *worldShared;

  // Estimator, pre-fed with a warm-up trace at negative times.
  trace::ContactRateEstimator estimator(world.trace.nodeCount(), config.estimator,
                                        -config.estimatorWarmup);
  if (config.estimatorWarmup > 0.0) {
    if (config.externalTrace != nullptr) {
      for (const auto& c : world.trace.contacts()) {
        if (c.start >= config.estimatorWarmup) break;
        estimator.recordContact(c.a, c.b, c.start - config.estimatorWarmup);
      }
    } else {
      trace::SyntheticTraceConfig warmCfg = traceCfg;
      warmCfg.duration = config.estimatorWarmup;
      warmCfg.seed = traceCfg.seed + 777;
      const auto warmShared = trace::generateShared(warmCfg);
      const trace::SyntheticTrace& warm = *warmShared;
      for (const auto& c : warm.trace.contacts())
        estimator.recordContact(c.a, c.b, c.start - config.estimatorWarmup);
    }
  }

  // --- substrate --------------------------------------------------------------
  data::CatalogConfig catalogCfg = config.catalog;
  catalogCfg.nodeCount = world.trace.nodeCount();
  const data::Catalog catalog = data::makeUniformCatalog(catalogCfg);

  sim::Simulator simulator;
  net::NetworkConfig netCfg = config.network;
  netCfg.lossSeed = netCfg.lossSeed * 7919 + config.seed;
  net::Network network(simulator, world.trace, netCfg);
  metrics::MetricsCollector collector(catalog, 0.0);

  cache::CoopCacheConfig cacheCfg = config.cache;
  if (config.allocation != cache::AllocationPolicy::kUniform) {
    const sim::ZipfSampler zipf(catalog.size(), config.workload.zipfExponent);
    std::vector<double> popularity(catalog.size());
    for (std::size_t i = 0; i < catalog.size(); ++i) popularity[i] = zipf.probability(i);
    const std::size_t total = catalog.size() * cacheCfg.cachingNodesPerItem;
    const std::size_t maxPerItem =
        std::min<std::size_t>(world.trace.nodeCount() - 1, 3 * cacheCfg.cachingNodesPerItem);
    cacheCfg.cachingNodesPerItemOverride =
        cache::allocateCacheSlots(popularity, total, /*minPerItem=*/2, maxPerItem,
                                  config.allocation);
  }
  cache::CooperativeCache coop(simulator, network, catalog, estimator, collector,
                               world.rates, cacheCfg);

  // --- observability ----------------------------------------------------------
  obs::Registry registry;
  preregisterObservables(registry);
  network.setObservability(config.tracer, &registry);
  coop.setObservability(config.tracer, &registry);

  // --- scheme -----------------------------------------------------------------
  std::unique_ptr<cache::RefreshScheme> scheme;
  core::HierarchicalRefreshScheme* hierarchical = nullptr;
  baselines::PullScheme* pullScheme = nullptr;
  baselines::InvalidationScheme* invalidationScheme = nullptr;
  switch (config.scheme) {
    case SchemeKind::kHierarchical: {
      auto s = std::make_unique<core::HierarchicalRefreshScheme>(config.hierarchical,
                                                                 &world.rates);
      hierarchical = s.get();
      scheme = std::move(s);
      break;
    }
    case SchemeKind::kNoRefresh:
      scheme = std::make_unique<baselines::NoRefreshScheme>();
      break;
    case SchemeKind::kSourceDirect:
      scheme = std::make_unique<baselines::SourceDirectScheme>();
      break;
    case SchemeKind::kEpidemic:
      scheme = std::make_unique<baselines::EpidemicScheme>();
      break;
    case SchemeKind::kFlooding:
      scheme = std::make_unique<baselines::FloodingScheme>();
      break;
    case SchemeKind::kPull: {
      auto s = std::make_unique<baselines::PullScheme>(config.pull);
      pullScheme = s.get();
      scheme = std::move(s);
      break;
    }
    case SchemeKind::kInvalidation: {
      auto s = std::make_unique<baselines::InvalidationScheme>(config.invalidation);
      invalidationScheme = s.get();
      scheme = std::move(s);
      break;
    }
  }
  coop.setScheme(scheme.get());
  if (hierarchical != nullptr)
    hierarchical->setObservability(config.tracer, &registry);

  // --- churn and energy ---------------------------------------------------------
  std::unique_ptr<net::ChurnProcess> churn;
  if (config.churnEnabled) {
    std::vector<NodeId> protectedNodes;
    for (data::ItemId item = 0; item < catalog.size(); ++item)
      protectedNodes.push_back(catalog.spec(item).source);
    churn = std::make_unique<net::ChurnProcess>(simulator, world.trace.nodeCount(),
                                                config.churn, horizon, protectedNodes);
    coop.setUpPredicate([c = churn.get()](NodeId n) { return c->isUp(n); });
    if (hierarchical != nullptr && config.churnRepairEnabled) {
      hierarchical->setLivenessPredicate([c = churn.get()](NodeId n) { return c->isUp(n); });
      churn->addListener([hierarchical, &coop](NodeId n, bool up, sim::SimTime t) {
        hierarchical->onNodeStateChanged(coop, n, up, t);
      });
    }
  }
  std::unique_ptr<net::EnergyModel> energy;
  if (config.energyEnabled) {
    energy = std::make_unique<net::EnergyModel>(world.trace.nodeCount(), config.energy);
    network.setEnergyModel(energy.get());
    if (hierarchical != nullptr && config.energyAwarePlanning) {
      // Planning state lives inside the scheme's copied config; route the
      // battery weight in through a fresh replication config.
      hierarchical->setEnergyWeight(
          [e = energy.get()](NodeId n) { return e->remainingFraction(n); });
    }
  }
  if (churn != nullptr || energy != nullptr) {
    network.setContactFilter(
        [c = churn.get(), e = energy.get()](NodeId a, NodeId b, sim::SimTime) {
          if (e != nullptr && (e->depleted(a) || e->depleted(b))) return false;
          if (c != nullptr && !c->contactAllowed(a, b)) return false;
          return true;
        });
  }

  // --- sharded kernel gating --------------------------------------------------
  std::size_t shards = config.shards;
  if (const char* env = std::getenv("DTNCACHE_SHARDS"); env != nullptr && *env != '\0')
    shards = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  if (shards == 0) {
    // Auto: only large runs amortize the epoch coordination; use half the
    // cores, capped at 4 (fence scans are serial, Amdahl bites early).
    const std::size_t hw = std::thread::hardware_concurrency();
    shards = world.trace.nodeCount() >= 16384
                 ? std::min<std::size_t>(4, std::max<std::size_t>(1, hw / 2))
                 : 1;
  }
  // Energy models charge batteries inside worker-side transfers, and
  // non-shardable schemes mutate protocol state on every contact: both get
  // the plain kernel (identical output either way).
  if (config.energyEnabled || !scheme->shardable()) shards = 1;
  const bool sharded = shards > 1;
  if (sharded) network.setShardedDelivery(true);

  // --- drive ------------------------------------------------------------------
  data::SourceProcess sources(simulator, catalog, horizon,
                              scheme->timerScope(cache::TimerKind::kNewVersion));

  std::unique_ptr<data::QueryWorkload> workload;
  if (config.workload.queriesPerNodePerDay > 0.0) {
    data::WorkloadConfig w = config.workload;
    w.start = 0.0;
    w.end = horizon;
    w.seed = w.seed * 131 + config.seed;
    workload = std::make_unique<data::QueryWorkload>(simulator, catalog,
                                                     world.trace.nodeCount(), w);
  }

  {
    obs::ScopedTimer timed(&registry.timer("runner.start"));
    coop.start(sources, workload.get(), horizon);
  }
  ShardStats shardStats;
  {
    obs::ScopedTimer timed(&registry.timer("runner.run"));
    if (sharded) {
      ShardPlanConfig plan;
      plan.shards = shards;
      plan.shardMap = config.shardMapOverride.empty()
                          ? makeShardMap(world.trace.nodeCount(), shards, world.community)
                          : config.shardMapOverride;
      shardStats = runSharded(simulator, network, coop, estimator, config.tracer,
                              registry, horizon, plan);
    } else {
      simulator.runUntil(horizon);
    }
  }

  // --- results ----------------------------------------------------------------
  ExperimentOutput out;
  out.scheme = scheme->name();
  out.results = collector.finalize(horizon, network.transfers());
  out.traceStats = world.trace.stats();

  if (hierarchical != nullptr) {
    double sumP = 0.0;
    double minP = 1.0;
    std::size_t nodes = 0;
    for (data::ItemId item = 0; item < catalog.size(); ++item) {
      const auto& plan = hierarchical->planOf(item);
      out.replicationAssignments += plan.totalAssignments();
      out.unmetNodes += plan.unmetNodes().size();
      const auto& h = hierarchical->hierarchyOf(item);
      out.maxHierarchyDepth = std::max(out.maxHierarchyDepth, h.maxDepth());
      for (NodeId n : h.membersBelowRoot()) {
        const double p = plan.predictedProbability(n);
        sumP += p;
        minP = std::min(minP, p);
        ++nodes;
      }
    }
    out.meanPredictedProbability = sim::ratio(sumP, static_cast<double>(nodes));
    out.minPredictedProbability = nodes == 0 ? 0.0 : minP;
    out.reparentCount = hierarchical->reparentCount();
  }
  if (pullScheme != nullptr) out.pullsIssued = pullScheme->pullsIssued();
  if (invalidationScheme != nullptr) out.pullsIssued = invalidationScheme->pullsIssued();
  if (hierarchical != nullptr) out.churnRepairs = hierarchical->churnRepairs();
  if (churn != nullptr) out.churnTransitions = churn->transitions();
  out.contactsSuppressed = network.contactsSuppressed();
  if (energy != nullptr) {
    energy->advanceTo(horizon);
    out.depletedNodes = energy->depletedCount();
    out.firstDepletionTime = energy->firstDepletionTime();
    out.meanRemainingBattery = energy->meanRemainingFraction();
    out.minRemainingBattery = energy->minRemainingFraction();
  }
  out.peakPendingEvents = simulator.peakPendingEvents();
  // The sharded driver delivers contacts outside the queue; adding them back
  // keeps the throughput denominator identical to the plain kernel's.
  out.eventsProcessed = simulator.eventsProcessed() + shardStats.contactsProcessed;
  out.shardStats = shardStats;
  out.counters = registry.counterSnapshot();
  out.timers = registry.timerSnapshot();
  return out;
}

std::vector<ExperimentOutput> runSchemeComparison(ExperimentConfig config,
                                                  std::vector<SchemeKind> schemes) {
  if (schemes.empty()) schemes = allSchemes();
  std::vector<ExperimentOutput> out;
  out.reserve(schemes.size());
  for (SchemeKind kind : schemes) {
    config.scheme = kind;
    out.push_back(runExperiment(config));
  }
  return out;
}

}  // namespace dtncache::runner
