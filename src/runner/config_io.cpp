#include "runner/config_io.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <variant>

#include "sim/assert.hpp"

namespace dtncache::runner {
namespace {

using JsonValue = std::variant<double, bool, std::string>;

// ---- flat-JSON reader --------------------------------------------------------

class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& text) : text_(text) {}

  std::map<std::string, JsonValue> parse() {
    std::map<std::string, JsonValue> out;
    skipWs();
    expect('{');
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skipWs();
      const std::string key = parseString();
      skipWs();
      expect(':');
      skipWs();
      out[key] = parseValue();
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    skipWs();
    DTNCACHE_CHECK_MSG(pos_ >= text_.size(), "trailing characters after JSON object");
    return out;
  }

 private:
  char peek() const {
    DTNCACHE_CHECK_MSG(pos_ < text_.size(), "unexpected end of JSON");
    return text_[pos_];
  }
  void expect(char c) {
    DTNCACHE_CHECK_MSG(peek() == c, "expected '" << c << "' at offset " << pos_);
    ++pos_;
  }
  void skipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }
  std::string parseString() {
    expect('"');
    std::string s;
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default:
            DTNCACHE_CHECK_MSG(false, "unsupported escape \\" << esc);
        }
      }
      s += c;
    }
    ++pos_;
    return s;
  }
  JsonValue parseValue() {
    const char c = peek();
    if (c == '"') return parseString();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    // Number.
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) || text_[end] == '-' ||
            text_[end] == '+' || text_[end] == '.' || text_[end] == 'e' ||
            text_[end] == 'E'))
      ++end;
    DTNCACHE_CHECK_MSG(end > pos_, "expected a JSON value at offset " << pos_);
    const std::string num = text_.substr(pos_, end - pos_);
    std::size_t used = 0;
    const double v = std::stod(num, &used);
    DTNCACHE_CHECK_MSG(used == num.size(), "malformed number '" << num << "'");
    pos_ = end;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- field registry ----------------------------------------------------------

/// One registration pass drives dump, load, and key validation.
struct FieldBinder {
  enum class Mode { kDump, kLoad } mode;
  ExperimentConfig* config = nullptr;
  std::ostringstream* out = nullptr;
  const std::map<std::string, JsonValue>* values = nullptr;
  mutable std::size_t consumed = 0;
  mutable bool first = true;

  template <typename T>
  void numeric(const std::string& key, T& field) const {
    if (mode == Mode::kDump) {
      emit(key, static_cast<double>(field));
      return;
    }
    if (const auto it = values->find(key); it != values->end()) {
      DTNCACHE_CHECK_MSG(std::holds_alternative<double>(it->second),
                         "key '" << key << "' must be a number");
      const double v = std::get<double>(it->second);
      if constexpr (std::is_integral_v<T>) {
        DTNCACHE_CHECK_MSG(std::nearbyint(v) == v, "key '" << key << "' must be integral");
      }
      field = static_cast<T>(v);
      ++consumed;
    }
  }

  void boolean(const std::string& key, bool& field) const {
    if (mode == Mode::kDump) {
      emitRaw(key, field ? "true" : "false");
      return;
    }
    if (const auto it = values->find(key); it != values->end()) {
      DTNCACHE_CHECK_MSG(std::holds_alternative<bool>(it->second),
                         "key '" << key << "' must be a boolean");
      field = std::get<bool>(it->second);
      ++consumed;
    }
  }

  template <typename Enum>
  void enumeration(const std::string& key, Enum& field,
                   const std::vector<std::pair<Enum, std::string>>& names) const {
    if (mode == Mode::kDump) {
      for (const auto& [value, name] : names)
        if (value == field) {
          emitRaw(key, '"' + name + '"');
          return;
        }
      DTNCACHE_CHECK_MSG(false, "unnamed enum value for key '" << key << "'");
    }
    if (const auto it = values->find(key); it != values->end()) {
      DTNCACHE_CHECK_MSG(std::holds_alternative<std::string>(it->second),
                         "key '" << key << "' must be a string");
      const std::string& s = std::get<std::string>(it->second);
      for (const auto& [value, name] : names)
        if (name == s) {
          field = value;
          ++consumed;
          return;
        }
      DTNCACHE_CHECK_MSG(false, "unknown value '" << s << "' for key '" << key << "'");
    }
  }

 private:
  void emit(const std::string& key, double v) const {
    std::ostringstream num;
    num.precision(17);
    num << v;
    emitRaw(key, num.str());
  }
  void emitRaw(const std::string& key, const std::string& v) const {
    if (!first) *out << ",\n";
    first = false;
    *out << "  \"" << key << "\": " << v;
  }
};

const std::vector<std::pair<SchemeKind, std::string>>& schemeNames() {
  static const std::vector<std::pair<SchemeKind, std::string>> names = {
      {SchemeKind::kHierarchical, "hierarchical"}, {SchemeKind::kNoRefresh, "norefresh"},
      {SchemeKind::kSourceDirect, "sourcedirect"}, {SchemeKind::kEpidemic, "epidemic"},
      {SchemeKind::kFlooding, "flooding"},         {SchemeKind::kPull, "pull"},
      {SchemeKind::kInvalidation, "invalidation"}};
  return names;
}

void bindAll(const FieldBinder& b, ExperimentConfig& c) {
  // trace
  b.numeric("trace.nodeCount", c.trace.nodeCount);
  b.numeric("trace.durationSeconds", c.trace.duration);
  b.enumeration<trace::RateModel>(
      "trace.model", c.trace.model,
      {{trace::RateModel::kHomogeneous, "homogeneous"},
       {trace::RateModel::kPareto, "pareto"},
       {trace::RateModel::kCommunity, "community"}});
  b.numeric("trace.meanContactsPerPairPerDay", c.trace.meanContactsPerPairPerDay);
  b.numeric("trace.paretoShape", c.trace.paretoShape);
  b.numeric("trace.rateSpread", c.trace.rateSpread);
  b.numeric("trace.communities", c.trace.communities);
  b.numeric("trace.intraCommunityBoost", c.trace.intraCommunityBoost);
  b.boolean("trace.diurnal", c.trace.diurnal);
  b.numeric("trace.nightActivity", c.trace.nightActivity);
  b.numeric("trace.meanContactDuration", c.trace.meanContactDuration);
  b.numeric("trace.seed", c.trace.seed);
  // catalog
  b.numeric("catalog.itemCount", c.catalog.itemCount);
  b.numeric("catalog.itemSizeBytes", c.catalog.itemSizeBytes);
  b.numeric("catalog.refreshPeriodSeconds", c.catalog.refreshPeriod);
  b.numeric("catalog.lifetimeFactor", c.catalog.lifetimeFactor);
  b.boolean("catalog.staggerBirths", c.catalog.staggerBirths);
  // workload
  b.numeric("workload.queriesPerNodePerDay", c.workload.queriesPerNodePerDay);
  b.numeric("workload.zipfExponent", c.workload.zipfExponent);
  b.numeric("workload.queryDeadlineSeconds", c.workload.queryDeadline);
  b.numeric("workload.seed", c.workload.seed);
  // cache + network
  b.numeric("cache.cachingNodesPerItem", c.cache.cachingNodesPerItem);
  b.numeric("cache.cacheCapacityBytes", c.cache.cacheCapacityBytes);
  b.numeric("cache.bufferCapacityBytes", c.cache.bufferCapacityBytes);
  b.boolean("cache.warmStart", c.cache.warmStart);
  b.numeric("cache.forwarding.initialCopies", c.cache.forwarding.initialCopies);
  b.numeric("cache.forwarding.improvementFactor", c.cache.forwarding.improvementFactor);
  b.numeric("network.bandwidthBytesPerSec", c.network.bandwidthBytesPerSec);
  b.numeric("network.contactLossRate", c.network.contactLossRate);
  // estimator
  b.enumeration<trace::EstimatorMode>(
      "estimator.mode", c.estimator.mode,
      {{trace::EstimatorMode::kCumulative, "cumulative"},
       {trace::EstimatorMode::kSlidingWindow, "window"},
       {trace::EstimatorMode::kEwma, "ewma"}});
  b.numeric("estimator.windowSeconds", c.estimator.window);
  b.numeric("estimator.ewmaAlpha", c.estimator.ewmaAlpha);
  b.numeric("estimatorWarmupSeconds", c.estimatorWarmup);
  // allocation + scheme
  b.enumeration<cache::AllocationPolicy>(
      "allocation", c.allocation,
      {{cache::AllocationPolicy::kUniform, "uniform"},
       {cache::AllocationPolicy::kProportional, "proportional"},
       {cache::AllocationPolicy::kSqrt, "sqrt"}});
  b.enumeration<SchemeKind>("scheme", c.scheme, schemeNames());
  // hierarchical
  b.numeric("hierarchical.fanoutBound", c.hierarchical.hierarchy.fanoutBound);
  b.boolean("hierarchical.depthAware", c.hierarchical.hierarchy.depthAware);
  b.boolean("hierarchical.replication.enabled", c.hierarchical.replication.enabled);
  b.numeric("hierarchical.replication.theta", c.hierarchical.replication.theta);
  b.numeric("hierarchical.replication.maxHelpersPerNode",
            c.hierarchical.replication.maxHelpersPerNode);
  b.enumeration<core::MaintenanceMode>(
      "hierarchical.maintenance", c.hierarchical.maintenance,
      {{core::MaintenanceMode::kRebuild, "rebuild"},
       {core::MaintenanceMode::kLocalRepair, "local-repair"},
       {core::MaintenanceMode::kStatic, "static"}});
  b.numeric("hierarchical.maintenancePeriodSeconds", c.hierarchical.maintenancePeriod);
  b.boolean("hierarchical.useOracleRates", c.hierarchical.useOracleRates);
  b.boolean("hierarchical.relayAssisted", c.hierarchical.relayAssisted);
  b.numeric("hierarchical.relayCopiesPerVersion", c.hierarchical.relayCopiesPerVersion);
  // churn + energy
  b.boolean("churn.enabled", c.churnEnabled);
  b.boolean("churn.repairEnabled", c.churnRepairEnabled);
  b.numeric("churn.meanUptimeSeconds", c.churn.meanUptime);
  b.numeric("churn.meanDowntimeSeconds", c.churn.meanDowntime);
  b.boolean("energy.enabled", c.energyEnabled);
  b.boolean("energy.awarePlanning", c.energyAwarePlanning);
  b.numeric("energy.batteryJoules", c.energy.batteryJoules);
  b.numeric("energy.txJoulesPerMB", c.energy.txJoulesPerMB);
  b.numeric("energy.rxJoulesPerMB", c.energy.rxJoulesPerMB);
  b.numeric("energy.idleJoulesPerHour", c.energy.idleJoulesPerHour);
  // master seed
  b.numeric("seed", c.seed);
}

}  // namespace

std::string dumpConfig(const ExperimentConfig& config) {
  std::ostringstream out;
  out << "{\n";
  FieldBinder b;
  b.mode = FieldBinder::Mode::kDump;
  b.out = &out;
  bindAll(b, const_cast<ExperimentConfig&>(config));  // dump never mutates
  out << "\n}\n";
  return out.str();
}

ExperimentConfig loadConfig(const std::string& json) {
  ExperimentConfig config;
  applyConfigJson(config, json);
  return config;
}

void applyConfigJson(ExperimentConfig& config, const std::string& json) {
  FlatJsonParser parser(json);
  const auto values = parser.parse();

  FieldBinder b;
  b.mode = FieldBinder::Mode::kLoad;
  b.values = &values;
  bindAll(b, config);
  DTNCACHE_CHECK_MSG(b.consumed == values.size(),
                     "config contains " << values.size() - b.consumed
                                        << " unknown key(s)");
}

ExperimentConfig loadConfigFile(const std::string& path) {
  std::ifstream in(path);
  DTNCACHE_CHECK_MSG(in.good(), "cannot open config file " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return loadConfig(buf.str());
}

void saveConfigFile(const ExperimentConfig& config, const std::string& path) {
  std::ofstream out(path);
  DTNCACHE_CHECK_MSG(out.good(), "cannot write config file " << path);
  out << dumpConfig(config);
}

}  // namespace dtncache::runner
