#include "runner/config_io.hpp"

#include <fstream>
#include <sstream>

#include "runner/flat_json.hpp"
#include "sim/assert.hpp"

namespace dtncache::runner {
namespace {

const std::vector<std::pair<SchemeKind, std::string>>& schemeNames() {
  static const std::vector<std::pair<SchemeKind, std::string>> names = {
      {SchemeKind::kHierarchical, "hierarchical"}, {SchemeKind::kNoRefresh, "norefresh"},
      {SchemeKind::kSourceDirect, "sourcedirect"}, {SchemeKind::kEpidemic, "epidemic"},
      {SchemeKind::kFlooding, "flooding"},         {SchemeKind::kPull, "pull"},
      {SchemeKind::kInvalidation, "invalidation"}};
  return names;
}

void bindAll(const FieldBinder& b, ExperimentConfig& c) {
  // trace
  b.numeric("trace.nodeCount", c.trace.nodeCount);
  b.numeric("trace.durationSeconds", c.trace.duration);
  b.enumeration<trace::RateModel>(
      "trace.model", c.trace.model,
      {{trace::RateModel::kHomogeneous, "homogeneous"},
       {trace::RateModel::kPareto, "pareto"},
       {trace::RateModel::kCommunity, "community"},
       {trace::RateModel::kMobilityCommunity, "mobility-community"},
       {trace::RateModel::kMobilityPowerLaw, "mobility-powerlaw"}});
  b.numeric("trace.meanContactsPerPairPerDay", c.trace.meanContactsPerPairPerDay);
  b.numeric("trace.paretoShape", c.trace.paretoShape);
  b.numeric("trace.rateSpread", c.trace.rateSpread);
  b.numeric("trace.communities", c.trace.communities);
  b.numeric("trace.intraCommunityBoost", c.trace.intraCommunityBoost);
  b.boolean("trace.diurnal", c.trace.diurnal);
  b.numeric("trace.nightActivity", c.trace.nightActivity);
  b.numeric("trace.meanContactDuration", c.trace.meanContactDuration);
  b.numeric("trace.meanDegree", c.trace.meanDegree);
  b.numeric("trace.interCommunityFraction", c.trace.interCommunityFraction);
  b.numeric("trace.interContactAlpha", c.trace.interContactAlpha);
  b.numeric("trace.seed", c.trace.seed);
  // catalog
  b.numeric("catalog.itemCount", c.catalog.itemCount);
  b.numeric("catalog.itemSizeBytes", c.catalog.itemSizeBytes);
  b.numeric("catalog.refreshPeriodSeconds", c.catalog.refreshPeriod);
  b.numeric("catalog.lifetimeFactor", c.catalog.lifetimeFactor);
  b.boolean("catalog.staggerBirths", c.catalog.staggerBirths);
  // workload
  b.numeric("workload.queriesPerNodePerDay", c.workload.queriesPerNodePerDay);
  b.numeric("workload.zipfExponent", c.workload.zipfExponent);
  b.numeric("workload.queryDeadlineSeconds", c.workload.queryDeadline);
  b.numeric("workload.seed", c.workload.seed);
  // cache + network
  b.numeric("cache.cachingNodesPerItem", c.cache.cachingNodesPerItem);
  b.numeric("cache.cacheCapacityBytes", c.cache.cacheCapacityBytes);
  b.numeric("cache.bufferCapacityBytes", c.cache.bufferCapacityBytes);
  b.boolean("cache.warmStart", c.cache.warmStart);
  b.numeric("cache.forwarding.initialCopies", c.cache.forwarding.initialCopies);
  b.numeric("cache.forwarding.improvementFactor", c.cache.forwarding.improvementFactor);
  b.numeric("network.bandwidthBytesPerSec", c.network.bandwidthBytesPerSec);
  b.numeric("network.contactLossRate", c.network.contactLossRate);
  // estimator
  b.enumeration<trace::EstimatorMode>(
      "estimator.mode", c.estimator.mode,
      {{trace::EstimatorMode::kCumulative, "cumulative"},
       {trace::EstimatorMode::kSlidingWindow, "window"},
       {trace::EstimatorMode::kEwma, "ewma"}});
  b.numeric("estimator.windowSeconds", c.estimator.window);
  b.numeric("estimator.ewmaAlpha", c.estimator.ewmaAlpha);
  b.numeric("estimatorWarmupSeconds", c.estimatorWarmup);
  // allocation + scheme
  b.enumeration<cache::AllocationPolicy>(
      "allocation", c.allocation,
      {{cache::AllocationPolicy::kUniform, "uniform"},
       {cache::AllocationPolicy::kProportional, "proportional"},
       {cache::AllocationPolicy::kSqrt, "sqrt"}});
  b.enumeration<SchemeKind>("scheme", c.scheme, schemeNames());
  // hierarchical
  b.numeric("hierarchical.fanoutBound", c.hierarchical.hierarchy.fanoutBound);
  b.boolean("hierarchical.depthAware", c.hierarchical.hierarchy.depthAware);
  b.boolean("hierarchical.replication.enabled", c.hierarchical.replication.enabled);
  b.numeric("hierarchical.replication.theta", c.hierarchical.replication.theta);
  b.numeric("hierarchical.replication.maxHelpersPerNode",
            c.hierarchical.replication.maxHelpersPerNode);
  b.enumeration<core::MaintenanceMode>(
      "hierarchical.maintenance", c.hierarchical.maintenance,
      {{core::MaintenanceMode::kRebuild, "rebuild"},
       {core::MaintenanceMode::kLocalRepair, "local-repair"},
       {core::MaintenanceMode::kStatic, "static"}});
  b.numeric("hierarchical.maintenancePeriodSeconds", c.hierarchical.maintenancePeriod);
  b.boolean("hierarchical.useOracleRates", c.hierarchical.useOracleRates);
  b.numeric("hierarchical.centralityNeighborCap", c.hierarchical.centralityNeighborCap);
  b.boolean("hierarchical.relayAssisted", c.hierarchical.relayAssisted);
  b.numeric("hierarchical.relayCopiesPerVersion", c.hierarchical.relayCopiesPerVersion);
  // churn + energy
  b.boolean("churn.enabled", c.churnEnabled);
  b.boolean("churn.repairEnabled", c.churnRepairEnabled);
  b.numeric("churn.meanUptimeSeconds", c.churn.meanUptime);
  b.numeric("churn.meanDowntimeSeconds", c.churn.meanDowntime);
  b.boolean("energy.enabled", c.energyEnabled);
  b.boolean("energy.awarePlanning", c.energyAwarePlanning);
  b.numeric("energy.batteryJoules", c.energy.batteryJoules);
  b.numeric("energy.txJoulesPerMB", c.energy.txJoulesPerMB);
  b.numeric("energy.rxJoulesPerMB", c.energy.rxJoulesPerMB);
  b.numeric("energy.idleJoulesPerHour", c.energy.idleJoulesPerHour);
  // master seed
  b.numeric("seed", c.seed);
  // sharded kernel (0 = auto; output is shard-count-invariant)
  b.numeric("sim.shards", c.shards);
}

}  // namespace

std::string dumpConfig(const ExperimentConfig& config) {
  std::ostringstream out;
  out << "{\n";
  FieldBinder b;
  b.mode = FieldBinder::Mode::kDump;
  b.out = &out;
  bindAll(b, const_cast<ExperimentConfig&>(config));  // dump never mutates
  out << "\n}\n";
  return out.str();
}

ExperimentConfig loadConfig(const std::string& json) {
  ExperimentConfig config;
  applyConfigJson(config, json);
  return config;
}

void applyConfigJson(ExperimentConfig& config, const std::string& json) {
  const auto values = parseFlatJson(json);

  FieldBinder b;
  b.mode = FieldBinder::Mode::kLoad;
  b.values = &values;
  bindAll(b, config);
  b.requireAllKnown();
}

ExperimentConfig loadConfigFile(const std::string& path) {
  std::ifstream in(path);
  DTNCACHE_CHECK_MSG(in.good(), "cannot open config file " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return loadConfig(buf.str());
}

void saveConfigFile(const ExperimentConfig& config, const std::string& path) {
  std::ofstream out(path);
  DTNCACHE_CHECK_MSG(out.good(), "cannot write config file " << path);
  out << dumpConfig(config);
}

}  // namespace dtncache::runner
