#pragma once

/// \file experiment.hpp
/// One-call experiment assembly: trace → substrate → scheme → results.
///
/// Every bench binary and example builds an ExperimentConfig, calls
/// runExperiment(), and formats the returned numbers. Keeping assembly in
/// one place guarantees all schemes are compared under identical traces,
/// catalogs, workloads, and estimator state (paired comparison: same seeds
/// everywhere except the scheme).
///
/// Estimator warm-up: nodes in the paper know their contact rates from
/// history. We reproduce that by pre-feeding the estimator with a warm-up
/// trace drawn from the *same* mobility model with a *different* seed
/// (time-shifted to negative times), so planning knowledge is realistic
/// without reusing the evaluation trace.

#include <memory>
#include <string>

#include "baselines/baselines.hpp"
#include "cache/allocation.hpp"
#include "cache/coop_cache.hpp"
#include "core/hierarchical_scheme.hpp"
#include "net/churn.hpp"
#include "net/energy.hpp"
#include "data/item.hpp"
#include "data/workload.hpp"
#include "metrics/collector.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "runner/shard_driver.hpp"
#include "trace/estimator.hpp"
#include "trace/generators.hpp"

namespace dtncache::runner {

enum class SchemeKind {
  kHierarchical,
  kNoRefresh,
  kSourceDirect,
  kEpidemic,
  kFlooding,
  kPull,
  kInvalidation,
};

const char* schemeName(SchemeKind kind);

/// All schemes, comparison order (ours first, ceiling last).
std::vector<SchemeKind> allSchemes();

struct ExperimentConfig {
  trace::SyntheticTraceConfig trace = trace::realityLikeConfig();
  /// When set, run on this (caller-owned) trace instead of generating one:
  /// planning rates are fit from the whole trace, and the estimator is
  /// pre-fed the first `estimatorWarmup` span (time-shifted; the same span
  /// is still simulated — the warm-up only gives estimates a head start,
  /// matching nodes that carry history into the measured window).
  const trace::ContactTrace* externalTrace = nullptr;
  data::CatalogConfig catalog;          ///< nodeCount is synced from trace
  data::WorkloadConfig workload;        ///< end synced from trace; rate 0 = no queries
  cache::CoopCacheConfig cache;
  net::NetworkConfig network;  ///< bandwidth, contact-loss rate
  trace::EstimatorConfig estimator;
  sim::SimTime estimatorWarmup = sim::days(7);

  /// Popularity-aware division of the cache-slot budget (total stays
  /// itemCount × cache.cachingNodesPerItem): per-item counts follow the
  /// workload's Zipf weights under the chosen policy (experiment F13).
  cache::AllocationPolicy allocation = cache::AllocationPolicy::kUniform;

  SchemeKind scheme = SchemeKind::kHierarchical;
  core::HierarchicalConfig hierarchical;
  baselines::PullConfig pull;
  baselines::InvalidationConfig invalidation;

  /// Node churn (failure injection). Sources are always protected; the
  /// hierarchical scheme repairs membership on flips when
  /// `churnRepairEnabled` (baselines never react — they have no structure
  /// to repair).
  bool churnEnabled = false;
  bool churnRepairEnabled = true;
  net::ChurnConfig churn;

  /// Battery accounting; depleted nodes drop out of the network for good.
  /// With `energyAwarePlanning`, the hierarchical scheme's helper selection
  /// is weighted by remaining battery (extension experiment F12).
  bool energyEnabled = false;
  bool energyAwarePlanning = false;
  net::EnergyConfig energy;

  /// Master seed, mixed into the trace/workload seeds so that replications
  /// (seed sweep) change every random process coherently.
  std::uint64_t seed = 1;

  /// Sharded kernel (shard_driver.hpp): worker-thread count for the event
  /// loop. 0 = auto — runs of >= 16384 nodes get min(4, hw_concurrency/2)
  /// workers, smaller runs stay single-threaded (coordination does not
  /// amortize). 1 forces the plain kernel. The DTNCACHE_SHARDS environment
  /// variable overrides this field. Energy runs and non-shardable schemes
  /// (invalidation) always fall back to the plain kernel. Output is
  /// byte-identical at every setting — see tests/runner/shard_equivalence.
  std::size_t shards = 0;
  /// Test hook: explicit node→shard map (size = node count). The
  /// equivalence suite passes adversarial partitions here; empty selects
  /// the community-aware plan (shard_plan.hpp).
  std::vector<std::uint32_t> shardMapOverride;

  /// Structured event tracing (runtime-only, like `externalTrace`): when
  /// set, every instrumented seam emits typed JSONL events into this
  /// caller-owned tracer. Null (the default) keeps the hot paths at a
  /// single pointer compare per site. Counters are always collected — see
  /// ExperimentOutput::counters.
  obs::Tracer* tracer = nullptr;
};

struct ExperimentOutput {
  std::string scheme;
  metrics::RunResults results;
  trace::TraceStats traceStats;

  // Hierarchical-scheme internals (zero for baselines).
  std::size_t replicationAssignments = 0;
  double meanPredictedProbability = 0.0;
  double minPredictedProbability = 0.0;
  std::size_t unmetNodes = 0;
  std::size_t maxHierarchyDepth = 0;
  std::size_t reparentCount = 0;
  std::size_t pullsIssued = 0;       ///< Pull baseline only
  std::size_t churnTransitions = 0;  ///< churn runs only
  std::size_t churnRepairs = 0;      ///< hierarchical scheme under churn
  std::size_t contactsSuppressed = 0;

  // Energy runs only.
  std::size_t depletedNodes = 0;
  sim::SimTime firstDepletionTime = 0.0;  ///< +inf while everyone lives
  double meanRemainingBattery = 0.0;
  double minRemainingBattery = 0.0;

  // Simulation-kernel health (perf trajectory, not protocol results —
  // deterministic, but excluded from result-sink columns; see
  // docs/performance.md and bench/bench_kernel.cpp).
  std::size_t peakPendingEvents = 0;
  std::uint64_t eventsProcessed = 0;

  /// Sharded-kernel coordination stats (all zero for plain runs). Kept out
  /// of `counters` so registry snapshots stay byte-identical across shard
  /// counts.
  ShardStats shardStats;

  /// Observability registry snapshot: every standard counter (name → value,
  /// sorted by name; the full set is pre-registered so all schemes report
  /// identical columns) and the wall-clock timers (nondeterministic — result
  /// sinks only render them alongside the other wall-clock fields).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<obs::TimerSnapshot> timers;
};

ExperimentOutput runExperiment(const ExperimentConfig& config);

/// Convenience: same config, each scheme in `schemes` (default all).
std::vector<ExperimentOutput> runSchemeComparison(ExperimentConfig config,
                                                  std::vector<SchemeKind> schemes = {});

}  // namespace dtncache::runner
