#pragma once

/// \file shard_plan.hpp
/// Node→shard and contact→shard assignment for the sharded kernel.
///
/// Any deterministic map is *correct* — the driver's fence protocol, not the
/// partition, guarantees byte-identical output — so the plan only chases
/// locality: contacts whose endpoints share a shard are processed by that
/// shard's worker with no cross-shard pair traffic. Synthetic traces carry a
/// community label per node and their contact generators are strongly
/// intra-community, so community-aware mapping keeps most contacts local;
/// external traces fall back to contiguous node ranges.

#include <cstdint>
#include <vector>

#include "trace/contact.hpp"

namespace dtncache::runner {

/// Deterministic node→shard map. When `community` has one entry per node
/// (synthetic traces), communities are assigned to shards round-robin so
/// intra-community contacts — the bulk of synthetic mobility — stay local.
/// Otherwise nodes are split into `shards` contiguous ranges. `shards <= 1`
/// yields the all-zero map.
std::vector<std::uint32_t> makeShardMap(std::size_t nodeCount, std::size_t shards,
                                        const std::vector<std::size_t>& community);

/// Owning worker of a contact. Same-shard pairs stay on their shard; a
/// cross-shard pair hashes its symmetric pair key so *every* contact of a
/// given pair lands on one worker — the estimator's per-pair EWMA then sees
/// its contacts in trace order with no synchronization.
std::uint32_t contactShard(const std::vector<std::uint32_t>& map, std::size_t shards,
                           NodeId a, NodeId b);

}  // namespace dtncache::runner
