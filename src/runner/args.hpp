#pragma once

/// \file args.hpp
/// Minimal command-line flag parser for the CLI tools.
///
/// Accepts `--key=value`, `--key value`, and bare `--flag` forms. Every
/// lookup registers the option (with its help text) so `helpText()` is
/// always complete and `unknownFlags()` can reject typos — an unknown
/// `--shceme` silently running the default experiment would be worse than
/// an error.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dtncache::runner {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// Typed lookups; each registers the option for help/validation.
  std::string getString(const std::string& flag, const std::string& defaultValue,
                        const std::string& help);
  double getDouble(const std::string& flag, double defaultValue, const std::string& help);
  std::int64_t getInt(const std::string& flag, std::int64_t defaultValue,
                      const std::string& help);
  bool getBool(const std::string& flag, const std::string& help);  ///< bare flag

  bool helpRequested() const { return helpRequested_; }

  /// Was the flag explicitly supplied on the command line? (Use to layer
  /// flags over a loaded config file: only explicit flags override.)
  bool provided(const std::string& flag) const { return values_.count(flag) > 0; }

  /// Flags supplied on the command line that no lookup claimed, plus
  /// values that failed to parse. Call after all lookups.
  std::vector<std::string> errors() const;

  /// Usage text from the registered options.
  std::string helpText(const std::string& programName) const;

 private:
  struct Option {
    std::string help;
    std::string defaultValue;
    bool isFlag = false;
  };

  std::optional<std::string> raw(const std::string& flag);

  std::map<std::string, std::string> values_;   // flag -> raw value
  std::map<std::string, Option> registered_;    // in help order (sorted)
  std::vector<std::string> consumed_;
  std::vector<std::string> parseErrors_;
  bool helpRequested_ = false;
};

}  // namespace dtncache::runner
