#pragma once

/// \file shard_driver.hpp
/// Fence-based sharded simulation kernel: intra-experiment parallelism with
/// a deterministic cross-shard merge.
///
/// The single-threaded kernel interleaves two streams in (time, sequence)
/// key order: queue events (timers, queries, churn flips) and trace contacts
/// (which hold pre-reserved FIFO ranks, so their keys are known without
/// scheduling anything). The sharded kernel exploits one structural fact:
/// a contact whose endpoints are both *protocol-inert* — not a source, no
/// cached items, no buffered messages, not active in the refresh scheme
/// (cache::CooperativeCache::nodeProtocolActive) — touches only its own
/// pair's estimator state and per-context observability sinks. Those
/// "boring" contacts commute with each other and can run on worker threads;
/// everything else (queue events and "fence" contacts with at least one
/// active endpoint) runs serially on the coordinator, and the inert set only
/// changes at those serial points.
///
/// Protocol, per epoch:
///   1. The coordinator scans contacts forward, classifying each against
///      the node-activity fence frozen since the last serial event —
///      evaluated at the contact's own time through the expiry watermarks
///      (cache_store/buffer), so activity may *decay* by pure expiry without
///      forcing a fence — until it finds the next serial event: min(earliest
///      queue-event key, next fence contact's key).
///   2. It hands off the boring contacts below that key. Large batches are
///      published as the epoch bound (release); workers deliver their
///      assigned boring contacts below the bound (tagging sim::tlsShard with
///      each contact's (time, seq)) and acknowledge (release). Batches too
///      small to amortize a wake-up are executed by the coordinator itself
///      ("stolen") — sinks merge by event key, not by context, so where a
///      boring contact runs never shows in the output.
///   3. What happens next depends on the serial event's scope:
///      - fence contacts and kFence queue events: the coordinator quiesces
///        every worker holding published work (acquire), drains the
///        estimator's per-context dirty sinks in key order, then executes
///        the event on context 0;
///      - kShardLocal queue events (sim::EventScope — scheme ticks whose
///        callbacks commute with boring contacts, classified by
///        cache::RefreshScheme::timerScope): the coordinator runs them
///        immediately, concurrently with whatever the workers still hold.
///        No quiesce, no drain (the dirty-sink merge sorts by key, so
///        draining later is identical); small hand-offs that cannot be
///        stolen safely are simply deferred to the next hand-off.
/// Because every state a worker reads is only written at fence-scoped serial
/// points and every write lands in per-context or per-pair state merged in
/// key order, the merged run is byte-identical to the single-threaded one at
/// any shard count — the equivalence suite
/// (tests/runner/shard_equivalence_test) compares traces byte for byte at
/// shards 1/2/4/7, including timer-heavy (hierarchical oracle-rates) and
/// expired-heavy configurations.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cache/coop_cache.hpp"
#include "net/network.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"
#include "trace/estimator.hpp"

namespace dtncache::runner {

/// Coordination counters surfaced in ExperimentOutput (deliberately outside
/// the obs::Registry so counter snapshots stay byte-identical across shard
/// counts).
struct ShardStats {
  std::size_t shards = 0;             ///< worker count actually used
  std::size_t contactsProcessed = 0;  ///< contacts delivered by the driver
  std::size_t localContacts = 0;      ///< both endpoints on one shard
  std::size_t crossContacts = 0;      ///< endpoints on different shards
  std::size_t fenceContacts = 0;      ///< executed serially on the coordinator
  std::size_t boringContacts = 0;     ///< executed on worker threads
  std::size_t stolenContacts = 0;     ///< boring but coordinator-executed (small epochs)
  std::size_t serialEvents = 0;       ///< queue events run by the coordinator
  std::size_t localTimerEvents = 0;   ///< of those, kShardLocal (no barrier needed)
  std::size_t barrierWaits = 0;       ///< epochs where the coordinator blocked
};

struct ShardPlanConfig {
  std::size_t shards = 1;
  /// Node→shard map (size == node count); see shard_plan.hpp.
  std::vector<std::uint32_t> shardMap;
};

/// Run the experiment's event loop with `plan.shards` worker threads,
/// replacing `sim.runUntil(horizon)`. Requires network.setShardedDelivery
/// (true) before Network::start, no energy model, and a shardable scheme.
/// On return the clock sits at `horizon` and all per-context state has been
/// merged back; output is byte-identical to the single-threaded kernel.
ShardStats runSharded(sim::Simulator& sim, net::Network& network,
                      cache::CooperativeCache& coop,
                      trace::ContactRateEstimator& estimator, obs::Tracer* tracer,
                      obs::Registry& registry, sim::SimTime horizon,
                      const ShardPlanConfig& plan);

}  // namespace dtncache::runner
