#include "runner/replicate.hpp"

#include "metrics/report.hpp"
#include "sim/assert.hpp"

namespace dtncache::runner {

ReplicatedResults runReplicated(ExperimentConfig config, std::size_t runs) {
  DTNCACHE_CHECK(runs >= 1);
  ReplicatedResults agg;
  agg.runs = runs;
  const std::uint64_t baseSeed = config.seed;
  for (std::size_t i = 0; i < runs; ++i) {
    config.seed = baseSeed + i;
    auto out = runExperiment(config);
    const auto& r = out.results;
    agg.meanFresh.add(r.meanFreshFraction);
    agg.meanValid.add(r.meanValidFraction);
    agg.refreshWithinTau.add(r.refreshWithinPeriodRatio);
    agg.validAnswerRatio.add(r.queries.successRatio());
    agg.answeredRatio.add(r.queries.answeredRatio());
    agg.meanDelaySeconds.add(r.queries.delay.mean());
    agg.refreshMegabytes.add(
        static_cast<double>(r.transfers.of(net::Traffic::kRefresh).bytes) / (1024.0 * 1024.0));
    agg.predictedProbability.add(out.meanPredictedProbability);
    agg.last = std::move(out);
  }
  return agg;
}

std::string formatMeanSd(const sim::Accumulator& a, int precision) {
  if (a.count() <= 1) return metrics::fmt(a.mean(), precision);
  return metrics::fmt(a.mean(), precision) + "±" + metrics::fmt(a.stddev(), precision);
}

}  // namespace dtncache::runner
