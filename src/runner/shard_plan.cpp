#include "runner/shard_plan.hpp"

#include "core/pair_key.hpp"

namespace dtncache::runner {

std::vector<std::uint32_t> makeShardMap(std::size_t nodeCount, std::size_t shards,
                                        const std::vector<std::size_t>& community) {
  std::vector<std::uint32_t> map(nodeCount, 0);
  if (shards <= 1) return map;
  if (community.size() == nodeCount) {
    for (std::size_t i = 0; i < nodeCount; ++i)
      map[i] = static_cast<std::uint32_t>(community[i] % shards);
  } else {
    for (std::size_t i = 0; i < nodeCount; ++i)
      map[i] = static_cast<std::uint32_t>(i * shards / nodeCount);
  }
  return map;
}

std::uint32_t contactShard(const std::vector<std::uint32_t>& map, std::size_t shards,
                           NodeId a, NodeId b) {
  const std::uint32_t sa = map[a];
  const std::uint32_t sb = map[b];
  if (sa == sb) return sa;
  // splitmix64 finalizer over the symmetric pair key: deterministic,
  // platform-independent, and spreads adjacent pairs across shards.
  std::uint64_t x = core::packSymmetricPair(a, b) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x % shards);
}

}  // namespace dtncache::runner
