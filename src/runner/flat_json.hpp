#pragma once

/// \file flat_json.hpp
/// The flat-JSON config machinery shared by every dotted-key namespace.
///
/// Extracted from config_io so the peer daemon's `peer.*` config speaks the
/// same format (and produces the same diagnostics) as the experiment
/// config: a deliberately minimal flat-JSON reader (strings, numbers,
/// booleans; no nesting or arrays — the format is ours, and a third-party
/// JSON dependency would be heavier than the feature), plus a field binder
/// whose one registration pass drives dump, load, and key validation.
///
/// Unknown keys are hard errors *with a suggestion*: the binder remembers
/// every key it bound, so a typo reports the nearest valid key by edit
/// distance ("unknown config key 'cache.warmStarts'; did you mean
/// 'cache.warmStart'?") instead of silently running the defaults.

#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "sim/assert.hpp"

namespace dtncache::runner {

using JsonValue = std::variant<double, bool, std::string>;

/// Parse one flat JSON object ({"dotted.key": value, ...}). Throws
/// InvariantViolation on malformed input or trailing characters.
std::map<std::string, JsonValue> parseFlatJson(const std::string& text);

/// Levenshtein distance — small strings, classic DP; used only on the
/// error path so clarity beats cleverness.
std::size_t editDistance(const std::string& a, const std::string& b);

/// The valid key closest to `key` by edit distance, or empty when nothing
/// is within a plausible-typo radius (half the key length).
std::string nearestKey(const std::string& key, const std::vector<std::string>& known);

/// One registration pass drives dump, load, and key validation: bindAll-
/// style functions call numeric/boolean/text/enumeration once per field,
/// and the binder either emits JSON (kDump) or consumes parsed values
/// (kLoad) while recording every valid key for diagnostics.
struct FieldBinder {
  enum class Mode { kDump, kLoad } mode = Mode::kDump;
  std::ostringstream* out = nullptr;
  const std::map<std::string, JsonValue>* values = nullptr;
  mutable std::vector<std::string> knownKeys;
  mutable bool first = true;

  template <typename T>
  void numeric(const std::string& key, T& field) const {
    knownKeys.push_back(key);
    if (mode == Mode::kDump) {
      emitNumber(key, static_cast<double>(field));
      return;
    }
    if (const auto it = values->find(key); it != values->end()) {
      DTNCACHE_CHECK_MSG(std::holds_alternative<double>(it->second),
                         "key '" << key << "' must be a number");
      const double v = std::get<double>(it->second);
      if constexpr (std::is_integral_v<T>) {
        DTNCACHE_CHECK_MSG(integral(v), "key '" << key << "' must be integral");
      }
      field = static_cast<T>(v);
    }
  }

  void boolean(const std::string& key, bool& field) const {
    knownKeys.push_back(key);
    if (mode == Mode::kDump) {
      emitRaw(key, field ? "true" : "false");
      return;
    }
    if (const auto it = values->find(key); it != values->end()) {
      DTNCACHE_CHECK_MSG(std::holds_alternative<bool>(it->second),
                         "key '" << key << "' must be a boolean");
      field = std::get<bool>(it->second);
    }
  }

  void text(const std::string& key, std::string& field) const {
    knownKeys.push_back(key);
    if (mode == Mode::kDump) {
      emitRaw(key, quoted(field));
      return;
    }
    if (const auto it = values->find(key); it != values->end()) {
      DTNCACHE_CHECK_MSG(std::holds_alternative<std::string>(it->second),
                         "key '" << key << "' must be a string");
      field = std::get<std::string>(it->second);
    }
  }

  template <typename Enum>
  void enumeration(const std::string& key, Enum& field,
                   const std::vector<std::pair<Enum, std::string>>& names) const {
    knownKeys.push_back(key);
    if (mode == Mode::kDump) {
      for (const auto& [value, name] : names)
        if (value == field) {
          emitRaw(key, quoted(name));
          return;
        }
      DTNCACHE_CHECK_MSG(false, "unnamed enum value for key '" << key << "'");
    }
    if (const auto it = values->find(key); it != values->end()) {
      DTNCACHE_CHECK_MSG(std::holds_alternative<std::string>(it->second),
                         "key '" << key << "' must be a string");
      const std::string& s = std::get<std::string>(it->second);
      for (const auto& [value, name] : names)
        if (name == s) {
          field = value;
          return;
        }
      DTNCACHE_CHECK_MSG(false, "unknown value '" << s << "' for key '" << key << "'");
    }
  }

  /// Load-mode epilogue: every parsed key must have been bound. Reports
  /// each stranger with its nearest valid key.
  void requireAllKnown() const;

 private:
  static bool integral(double v);
  static std::string quoted(const std::string& s);
  void emitNumber(const std::string& key, double v) const;
  void emitRaw(const std::string& key, const std::string& v) const;
};

}  // namespace dtncache::runner
