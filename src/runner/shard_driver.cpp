#include "runner/shard_driver.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <memory>
#include <thread>

#include "runner/shard_plan.hpp"
#include "sim/assert.hpp"
#include "sim/shard_context.hpp"

namespace dtncache::runner {

namespace {

/// Worker acknowledgement slot, padded so each worker's publish lands on its
/// own cache line.
struct alignas(64) AckSlot {
  std::atomic<std::size_t> v{0};
};

}  // namespace

ShardStats runSharded(sim::Simulator& sim, net::Network& network,
                      cache::CooperativeCache& coop,
                      trace::ContactRateEstimator& estimator, obs::Tracer* tracer,
                      obs::Registry& registry, sim::SimTime horizon,
                      const ShardPlanConfig& plan) {
  const auto& contacts = network.trace().contacts();
  const std::size_t first = network.firstContactIndex();
  const sim::EventQueue::Sequence seqBase = network.sequenceBase();
  // Contacts at exactly the horizon still fire (runUntil runs t <= until).
  const std::size_t end = static_cast<std::size_t>(
      std::upper_bound(contacts.begin() + static_cast<std::ptrdiff_t>(first),
                       contacts.end(), horizon,
                       [](sim::SimTime t, const trace::Contact& c) { return t < c.start; }) -
      contacts.begin());
  const std::size_t K = plan.shards;
  DTNCACHE_CHECK(K >= 1 && plan.shardMap.size() == network.nodeCount());

  ShardStats stats;
  stats.shards = K;
  stats.contactsProcessed = end - first;

  // Static contact ownership: every contact of a pair goes to one worker
  // (shard_plan.hpp), so per-pair estimator updates need no locks.
  std::vector<std::vector<std::size_t>> lists(K);
  for (std::size_t i = first; i < end; ++i) {
    const trace::Contact& c = contacts[i];
    if (plan.shardMap[c.a] == plan.shardMap[c.b])
      ++stats.localContacts;
    else
      ++stats.crossContacts;
    lists[contactShard(plan.shardMap, K, c.a, c.b)].push_back(i);
  }

  // Per-context state fans out before any worker exists and folds back after
  // they join; the worker threads themselves only ever touch their own slot.
  const std::size_t contexts = K + 1;  // context 0 is the coordinator
  registry.enterShardMode(contexts);
  if (tracer != nullptr) tracer->enterShardMode(contexts);
  estimator.enterShardMode(contexts, contacts, first, end);
  network.enterShardMode(contexts);

  // Fence contacts are executed by the coordinator; their owning worker must
  // skip them. The flag is always written before the bound that exposes the
  // index is published (release), so workers read it settled.
  std::vector<char> serialFlag(end - first, 0);

  std::atomic<std::size_t> bound{first};  // workers may run contacts < bound
  std::atomic<bool> stop{false};
  std::unique_ptr<AckSlot[]> acks(new AckSlot[K]);
  for (std::size_t w = 0; w < K; ++w) acks[w].v.store(first, std::memory_order_relaxed);
  const std::size_t sentinel = contacts.size() + 1;  // > any published bound

  auto workerFn = [&](std::size_t w) {
    sim::tlsShard.ctx = static_cast<std::uint32_t>(w + 1);
    const std::vector<std::size_t>& list = lists[w];
    std::size_t pos = 0;
    std::size_t seen = first;
    for (;;) {
      const std::size_t b = bound.load(std::memory_order_acquire);
      if (b != seen) {
        while (pos < list.size() && list[pos] < b) {
          const std::size_t i = list[pos];
          if (serialFlag[i - first] == 0) {
            sim::tlsShard.evTime = contacts[i].start;
            sim::tlsShard.evSeq = seqBase + (i - first);
            network.deliverSharded(i);
          }
          ++pos;
        }
        seen = b;
        acks[w].v.store(b, std::memory_order_release);
        acks[w].v.notify_one();
      }
      // The sentinel bound is stored after the stop flag, so observing
      // bound == seen == sentinel here implies stop is visible too.
      if (stop.load(std::memory_order_acquire) &&
          bound.load(std::memory_order_acquire) == seen)
        break;
      bound.wait(seen, std::memory_order_acquire);
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(K);
  for (std::size_t w = 0; w < K; ++w) workers.emplace_back(workerFn, w);

  // Coordinator-side mirror of each worker's cursor: lets an epoch skip the
  // publish (and its futex round-trip) when no worker holds real work below
  // the bound — the common case on fence-heavy stretches.
  std::vector<std::size_t> mirror(K, 0);
  std::vector<char> needAck(K, 0);
  std::size_t published = first;
  std::size_t handed = first;  // everything below is executed or delegated

  // Below this many boring contacts per epoch the barrier round-trip costs
  // more than just running them, so the coordinator steals the batch. On
  // fence-dense workloads (an active endpoint every few contacts) this is
  // nearly every epoch; workers only see the long inert stretches that can
  // actually amortize a wake-up.
  constexpr std::size_t kStealMax = 16;
  // On a host that cannot run a worker beside the coordinator there is no
  // parallelism to buy: every published batch is a guaranteed blocking
  // quiesce at the next fence. Steal every epoch instead — the win there is
  // boring contacts bypassing the event heap, not the threads. Output is
  // placement-invariant either way (sinks merge by event key), so the
  // threshold is a pure scheduling knob; DTNCACHE_SHARD_STEAL_MAX overrides
  // it for tests that want to force the worker hand-off (0 = publish
  // everything) or the steal path (large) regardless of core count.
  std::size_t stealCap = std::thread::hardware_concurrency() >= 2
                             ? kStealMax
                             : std::numeric_limits<std::size_t>::max();
  if (const char* env = std::getenv("DTNCACHE_SHARD_STEAL_MAX");
      env != nullptr && *env != '\0') {
    stealCap = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }

  // needAck[w] set means worker w was handed real work at some published
  // bound and has not been awaited since — it may still be executing. Steals
  // are only legal while no flag is set (the stolen range must be provably
  // untouched and the flag writes unracing), and fences must quiesce every
  // flagged worker. Whether a flag is set depends only on the event/contact
  // sequence, never on thread timing, so stolen counts stay deterministic.
  auto anyOutstanding = [&]() {
    for (std::size_t w = 0; w < K; ++w)
      if (needAck[w] != 0) return true;
    return false;
  };

  // Await every flagged worker's ack of the last published bound (workers
  // ack exactly the bounds they observe, so `published` is the fixpoint).
  auto quiesce = [&]() {
    bool waited = false;
    for (std::size_t w = 0; w < K; ++w) {
      if (needAck[w] == 0) continue;
      std::size_t a = acks[w].v.load(std::memory_order_acquire);
      while (a < published) {
        waited = true;
        acks[w].v.wait(a, std::memory_order_acquire);
        a = acks[w].v.load(std::memory_order_acquire);
      }
      needAck[w] = 0;
    }
    if (waited) ++stats.barrierWaits;
  };

  // Run [from, newBound)'s unflagged contacts on the coordinator. Legal only
  // with no outstanding needAck: workers are then idle at `published` <=
  // `handed`, and the next bound publish (release) sequences the flag writes
  // before any worker resumes. Sinks merge by (time, seq) key, not by
  // context, so where a boring contact runs never shows in the output.
  auto stealRange = [&](std::size_t from, std::size_t newBound, std::size_t pending) {
    for (std::size_t i = from; i < newBound; ++i) {
      if (serialFlag[i - first] != 0) continue;
      serialFlag[i - first] = 1;
      sim::tlsShard.evTime = contacts[i].start;
      sim::tlsShard.evSeq = seqBase + (i - first);
      network.deliverSharded(i);
    }
    stats.stolenContacts += pending;
  };

  // Publish `newBound` to the workers without waiting, flagging every worker
  // that gains real work.
  auto publishRange = [&](std::size_t newBound) {
    for (std::size_t w = 0; w < K; ++w) {
      const std::vector<std::size_t>& list = lists[w];
      std::size_t& p = mirror[w];
      while (p < list.size() && list[p] < newBound) {
        if (serialFlag[list[p] - first] == 0) needAck[w] = 1;
        ++p;
      }
    }
    if (anyOutstanding() && newBound > published) {
      bound.store(newBound, std::memory_order_release);
      bound.notify_all();
      published = newBound;
    }
  };

  // Delegate all boring contacts below `newBound`, then — iff `mustComplete`
  // (a fence or kFence queue event is about to run) — wait until every one
  // of them has executed. Without `mustComplete` (a kShardLocal event) the
  // hand-off is fire-and-forget: large batches are published and left
  // running while the coordinator proceeds, and batches too small to steal
  // safely (outstanding acks) are simply deferred to a later hand-off —
  // that's what cuts barrier_waits on timer-heavy schemes.
  auto handOff = [&](std::size_t newBound, bool mustComplete) {
    if (newBound > handed) {
      std::size_t pending = 0;
      for (std::size_t i = handed; i < newBound; ++i)
        if (serialFlag[i - first] == 0) ++pending;
      if (pending == 0) {
        handed = newBound;
      } else if (pending <= stealCap) {
        if (!anyOutstanding()) {
          stealRange(handed, newBound, pending);
          handed = newBound;
        } else if (mustComplete) {
          quiesce();  // workers idle again: stealing is legal
          stealRange(handed, newBound, pending);
          handed = newBound;
        }
        // else: deferred — the range stays below a future hand-off (or the
        // shutdown sentinel), which delegates it with everything else.
      } else {
        publishRange(newBound);
        handed = newBound;
      }
    }
    if (mustComplete) quiesce();
  };

  std::size_t scan = first;  // next unclassified contact
  bool biasCleared = false;
  sim::tlsShard.ctx = 0;
  for (;;) {
    sim::SimTime qt = 0.0;
    sim::EventQueue::Sequence qs = 0;
    sim::EventScope qscope = sim::EventScope::kFence;
    bool haveQ = sim.peekNextKey(qt, qs, qscope);
    if (haveQ && qt > horizon) haveQ = false;

    // Hand off boring contacts until the next serial event: the earlier of
    // the pending queue event and the next fence contact, in (time, seq)
    // order. A contact handed off here has every serial event below its key
    // already executed or (when shard-local) started-and-finished on this
    // thread, so the fence it was classified against is exactly the state it
    // logically runs under. Classification reads the expiry watermarks at
    // the contact's own time: activity only *decays* between serial events
    // (expiry is a pure function of time), never appears.
    std::ptrdiff_t fence = -1;
    while (scan < end) {
      const trace::Contact& c = contacts[scan];
      const sim::EventQueue::Sequence cseq = seqBase + (scan - first);
      if (haveQ && (qt < c.start || (qt == c.start && qs < cseq))) break;
      if (coop.nodeProtocolActive(c.a, c.start) || coop.nodeProtocolActive(c.b, c.start)) {
        serialFlag[scan - first] = 1;
        fence = static_cast<std::ptrdiff_t>(scan);
        break;
      }
      ++scan;
    }

    if (fence >= 0) {
      handOff(static_cast<std::size_t>(fence), /*mustComplete=*/true);
      estimator.drainShardDirty();
      const trace::Contact& c = contacts[static_cast<std::size_t>(fence)];
      sim::tlsShard.ctx = 0;
      sim::tlsShard.evTime = c.start;
      sim::tlsShard.evSeq = seqBase + (static_cast<std::size_t>(fence) - first);
      sim.advanceClockTo(c.start);
      network.deliverSharded(static_cast<std::size_t>(fence));
      ++stats.fenceContacts;
      ++scan;
    } else if (haveQ && qscope == sim::EventScope::kShardLocal) {
      // Shard-local timer lane: the callback commutes with boring contacts
      // (the scheduler's EventScope promise), so run it concurrently with
      // whatever the workers still hold — no quiesce, no dirty-sink drain
      // (the merge sorts by key, so draining later is identical). This is
      // what keeps timer-heavy schemes off the barrier.
      handOff(scan, /*mustComplete=*/false);
      sim::tlsShard.ctx = 0;
      sim::tlsShard.evTime = qt;
      sim::tlsShard.evSeq = qs;
      sim.runOneEvent();
      ++stats.serialEvents;
      ++stats.localTimerEvents;
    } else if (haveQ) {
      handOff(scan, /*mustComplete=*/true);
      estimator.drainShardDirty();
      sim::tlsShard.ctx = 0;
      sim::tlsShard.evTime = qt;
      sim::tlsShard.evSeq = qs;
      sim.runOneEvent();
      ++stats.serialEvents;
    } else {
      break;  // queue drained past the horizon, remaining contacts all boring
    }

    if (!biasCleared && scan == end && end == contacts.size()) {
      // The last trace contact is handed off or executed: plain mode's
      // cursor pops here, so the phantom pending slot goes with it. Contact
      // callbacks schedule nothing, so the hand-off-to-execution gap cannot
      // move any high-water check.
      sim.setPendingBias(0);
      biasCleared = true;
    }
  }

  // Release the tail of boring contacts and shut the workers down. stop is
  // stored before the sentinel bound so a worker that drains to the sentinel
  // always observes it.
  stop.store(true, std::memory_order_release);
  bound.store(sentinel, std::memory_order_release);
  bound.notify_all();
  for (std::thread& t : workers) t.join();
  if (!biasCleared && end == contacts.size()) sim.setPendingBias(0);

  stats.boringContacts =
      stats.contactsProcessed - stats.fenceContacts - stats.stolenContacts;

  estimator.exitShardMode();
  network.exitShardMode();
  if (tracer != nullptr) tracer->exitShardMode();
  registry.exitShardMode();

  sim.advanceClockTo(horizon);
  return stats;
}

}  // namespace dtncache::runner
