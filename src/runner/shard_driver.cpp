#include "runner/shard_driver.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "runner/shard_plan.hpp"
#include "sim/assert.hpp"
#include "sim/shard_context.hpp"

namespace dtncache::runner {

namespace {

/// Worker acknowledgement slot, padded so each worker's publish lands on its
/// own cache line.
struct alignas(64) AckSlot {
  std::atomic<std::size_t> v{0};
};

}  // namespace

ShardStats runSharded(sim::Simulator& sim, net::Network& network,
                      cache::CooperativeCache& coop,
                      trace::ContactRateEstimator& estimator, obs::Tracer* tracer,
                      obs::Registry& registry, sim::SimTime horizon,
                      const ShardPlanConfig& plan) {
  const auto& contacts = network.trace().contacts();
  const std::size_t first = network.firstContactIndex();
  const sim::EventQueue::Sequence seqBase = network.sequenceBase();
  // Contacts at exactly the horizon still fire (runUntil runs t <= until).
  const std::size_t end = static_cast<std::size_t>(
      std::upper_bound(contacts.begin() + static_cast<std::ptrdiff_t>(first),
                       contacts.end(), horizon,
                       [](sim::SimTime t, const trace::Contact& c) { return t < c.start; }) -
      contacts.begin());
  const std::size_t K = plan.shards;
  DTNCACHE_CHECK(K >= 1 && plan.shardMap.size() == network.nodeCount());

  ShardStats stats;
  stats.shards = K;
  stats.contactsProcessed = end - first;

  // Static contact ownership: every contact of a pair goes to one worker
  // (shard_plan.hpp), so per-pair estimator updates need no locks.
  std::vector<std::vector<std::size_t>> lists(K);
  for (std::size_t i = first; i < end; ++i) {
    const trace::Contact& c = contacts[i];
    if (plan.shardMap[c.a] == plan.shardMap[c.b])
      ++stats.localContacts;
    else
      ++stats.crossContacts;
    lists[contactShard(plan.shardMap, K, c.a, c.b)].push_back(i);
  }

  // Per-context state fans out before any worker exists and folds back after
  // they join; the worker threads themselves only ever touch their own slot.
  const std::size_t contexts = K + 1;  // context 0 is the coordinator
  registry.enterShardMode(contexts);
  if (tracer != nullptr) tracer->enterShardMode(contexts);
  estimator.enterShardMode(contexts, contacts, first, end);
  network.enterShardMode(contexts);

  // Fence contacts are executed by the coordinator; their owning worker must
  // skip them. The flag is always written before the bound that exposes the
  // index is published (release), so workers read it settled.
  std::vector<char> serialFlag(end - first, 0);

  std::atomic<std::size_t> bound{first};  // workers may run contacts < bound
  std::atomic<bool> stop{false};
  std::unique_ptr<AckSlot[]> acks(new AckSlot[K]);
  for (std::size_t w = 0; w < K; ++w) acks[w].v.store(first, std::memory_order_relaxed);
  const std::size_t sentinel = contacts.size() + 1;  // > any published bound

  auto workerFn = [&](std::size_t w) {
    sim::tlsShard.ctx = static_cast<std::uint32_t>(w + 1);
    const std::vector<std::size_t>& list = lists[w];
    std::size_t pos = 0;
    std::size_t seen = first;
    for (;;) {
      const std::size_t b = bound.load(std::memory_order_acquire);
      if (b != seen) {
        while (pos < list.size() && list[pos] < b) {
          const std::size_t i = list[pos];
          if (serialFlag[i - first] == 0) {
            sim::tlsShard.evTime = contacts[i].start;
            sim::tlsShard.evSeq = seqBase + (i - first);
            network.deliverSharded(i);
          }
          ++pos;
        }
        seen = b;
        acks[w].v.store(b, std::memory_order_release);
        acks[w].v.notify_one();
      }
      // The sentinel bound is stored after the stop flag, so observing
      // bound == seen == sentinel here implies stop is visible too.
      if (stop.load(std::memory_order_acquire) &&
          bound.load(std::memory_order_acquire) == seen)
        break;
      bound.wait(seen, std::memory_order_acquire);
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(K);
  for (std::size_t w = 0; w < K; ++w) workers.emplace_back(workerFn, w);

  // Coordinator-side mirror of each worker's cursor: lets an epoch skip the
  // publish (and its futex round-trip) when no worker holds real work below
  // the bound — the common case on fence-heavy stretches.
  std::vector<std::size_t> mirror(K, 0);
  std::vector<char> needAck(K, 0);
  std::size_t published = first;
  std::size_t handed = first;  // everything below is executed or delegated

  // Below this many boring contacts per epoch the barrier round-trip costs
  // more than just running them, so the coordinator steals the batch. On
  // fence-dense workloads (an active endpoint every few contacts) this is
  // nearly every epoch; workers only see the long inert stretches that can
  // actually amortize a wake-up.
  constexpr std::size_t kStealMax = 16;

  auto publishAndWait = [&](std::size_t newBound) {
    if (newBound <= handed) return;
    std::size_t pending = 0;
    for (std::size_t i = handed; i < newBound; ++i)
      if (serialFlag[i - first] == 0) ++pending;
    if (pending == 0) {
      handed = newBound;
      return;
    }
    if (pending <= kStealMax) {
      // Safe to run these here: every prior epoch with worker work ended in
      // an ack wait, so all workers are idle below `published`, and the next
      // bound publish (release) sequences these writes before any worker
      // resumes. The owning worker skips the flagged entries; sinks merge by
      // (time, seq) key, not by context, so output is unchanged.
      for (std::size_t i = handed; i < newBound; ++i) {
        if (serialFlag[i - first] != 0) continue;
        serialFlag[i - first] = 1;
        sim::tlsShard.evTime = contacts[i].start;
        sim::tlsShard.evSeq = seqBase + (i - first);
        network.deliverSharded(i);
      }
      stats.stolenContacts += pending;
      handed = newBound;
      return;
    }
    handed = newBound;
    bool anyNeed = false;
    for (std::size_t w = 0; w < K; ++w) {
      const std::vector<std::size_t>& list = lists[w];
      std::size_t& p = mirror[w];
      while (p < list.size() && list[p] < newBound) {
        if (serialFlag[list[p] - first] == 0) needAck[w] = 1;
        ++p;
      }
      anyNeed = anyNeed || needAck[w] != 0;
    }
    if (!anyNeed || newBound <= published) return;
    bound.store(newBound, std::memory_order_release);
    bound.notify_all();
    published = newBound;
    bool waited = false;
    for (std::size_t w = 0; w < K; ++w) {
      if (needAck[w] == 0) continue;
      std::size_t a = acks[w].v.load(std::memory_order_acquire);
      while (a < newBound) {
        waited = true;
        acks[w].v.wait(a, std::memory_order_acquire);
        a = acks[w].v.load(std::memory_order_acquire);
      }
      needAck[w] = 0;
    }
    if (waited) ++stats.barrierWaits;
  };

  std::size_t scan = first;  // next unclassified contact
  bool biasCleared = false;
  sim::tlsShard.ctx = 0;
  for (;;) {
    sim::SimTime qt = 0.0;
    sim::EventQueue::Sequence qs = 0;
    bool haveQ = sim.peekNextKey(qt, qs);
    if (haveQ && qt > horizon) haveQ = false;

    // Hand off boring contacts until the next serial event: the earlier of
    // the pending queue event and the next fence contact, in (time, seq)
    // order. A contact handed off here has every serial event below its key
    // already executed, so the fence it was classified against is exactly
    // the state it logically runs under.
    std::ptrdiff_t fence = -1;
    while (scan < end) {
      const trace::Contact& c = contacts[scan];
      const sim::EventQueue::Sequence cseq = seqBase + (scan - first);
      if (haveQ && (qt < c.start || (qt == c.start && qs < cseq))) break;
      if (coop.nodeProtocolActive(c.a) || coop.nodeProtocolActive(c.b)) {
        serialFlag[scan - first] = 1;
        fence = static_cast<std::ptrdiff_t>(scan);
        break;
      }
      ++scan;
    }

    if (fence >= 0) {
      publishAndWait(static_cast<std::size_t>(fence));
      estimator.drainShardDirty();
      const trace::Contact& c = contacts[static_cast<std::size_t>(fence)];
      sim::tlsShard.ctx = 0;
      sim::tlsShard.evTime = c.start;
      sim::tlsShard.evSeq = seqBase + (static_cast<std::size_t>(fence) - first);
      sim.advanceClockTo(c.start);
      network.deliverSharded(static_cast<std::size_t>(fence));
      ++stats.fenceContacts;
      ++scan;
    } else if (haveQ) {
      publishAndWait(scan);
      estimator.drainShardDirty();
      sim::tlsShard.ctx = 0;
      sim::tlsShard.evTime = qt;
      sim::tlsShard.evSeq = qs;
      sim.runOneEvent();
      ++stats.serialEvents;
    } else {
      break;  // queue drained past the horizon, remaining contacts all boring
    }

    if (!biasCleared && scan == end && end == contacts.size()) {
      // The last trace contact is handed off or executed: plain mode's
      // cursor pops here, so the phantom pending slot goes with it. Contact
      // callbacks schedule nothing, so the hand-off-to-execution gap cannot
      // move any high-water check.
      sim.setPendingBias(0);
      biasCleared = true;
    }
  }

  // Release the tail of boring contacts and shut the workers down. stop is
  // stored before the sentinel bound so a worker that drains to the sentinel
  // always observes it.
  stop.store(true, std::memory_order_release);
  bound.store(sentinel, std::memory_order_release);
  bound.notify_all();
  for (std::thread& t : workers) t.join();
  if (!biasCleared && end == contacts.size()) sim.setPendingBias(0);

  stats.boringContacts =
      stats.contactsProcessed - stats.fenceContacts - stats.stolenContacts;

  estimator.exitShardMode();
  network.exitShardMode();
  if (tracer != nullptr) tracer->exitShardMode();
  registry.exitShardMode();

  sim.advanceClockTo(horizon);
  return stats;
}

}  // namespace dtncache::runner
