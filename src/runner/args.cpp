#include "runner/args.hpp"

#include <algorithm>
#include <sstream>

namespace dtncache::runner {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      helpRequested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      parseErrors_.push_back("unexpected positional argument: " + arg);
      continue;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[i + 1];
      ++i;
    } else {
      values_[arg] = "";  // bare flag
    }
  }
}

std::optional<std::string> ArgParser::raw(const std::string& flag) {
  consumed_.push_back(flag);
  const auto it = values_.find(flag);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::getString(const std::string& flag, const std::string& defaultValue,
                                 const std::string& help) {
  registered_[flag] = Option{help, defaultValue, false};
  return raw(flag).value_or(defaultValue);
}

double ArgParser::getDouble(const std::string& flag, double defaultValue,
                            const std::string& help) {
  std::ostringstream def;
  def << defaultValue;
  registered_[flag] = Option{help, def.str(), false};
  const auto v = raw(flag);
  if (!v) return defaultValue;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing");
    return parsed;
  } catch (const std::exception&) {
    parseErrors_.push_back("bad numeric value for " + flag + ": '" + *v + "'");
    return defaultValue;
  }
}

std::int64_t ArgParser::getInt(const std::string& flag, std::int64_t defaultValue,
                               const std::string& help) {
  registered_[flag] = Option{help, std::to_string(defaultValue), false};
  const auto v = raw(flag);
  if (!v) return defaultValue;
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing");
    return parsed;
  } catch (const std::exception&) {
    parseErrors_.push_back("bad integer value for " + flag + ": '" + *v + "'");
    return defaultValue;
  }
}

bool ArgParser::getBool(const std::string& flag, const std::string& help) {
  registered_[flag] = Option{help, "false", true};
  return raw(flag).has_value();
}

std::vector<std::string> ArgParser::errors() const {
  std::vector<std::string> out = parseErrors_;
  for (const auto& [flag, value] : values_) {
    if (std::find(consumed_.begin(), consumed_.end(), flag) == consumed_.end())
      out.push_back("unknown flag: " + flag);
  }
  return out;
}

std::string ArgParser::helpText(const std::string& programName) const {
  std::ostringstream os;
  os << "usage: " << programName << " [options]\n\noptions:\n";
  for (const auto& [flag, opt] : registered_) {
    os << "  " << flag;
    if (!opt.isFlag) os << "=<value>";
    os << "\n      " << opt.help;
    if (!opt.isFlag) os << " (default: " << opt.defaultValue << ")";
    os << "\n";
  }
  os << "  --help\n      print this message\n";
  return os.str();
}

}  // namespace dtncache::runner
