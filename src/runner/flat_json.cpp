#include "runner/flat_json.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace dtncache::runner {
namespace {

class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& text) : text_(text) {}

  std::map<std::string, JsonValue> parse() {
    std::map<std::string, JsonValue> out;
    skipWs();
    expect('{');
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skipWs();
      const std::string key = parseString();
      skipWs();
      expect(':');
      skipWs();
      out[key] = parseValue();
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    skipWs();
    DTNCACHE_CHECK_MSG(pos_ >= text_.size(), "trailing characters after JSON object");
    return out;
  }

 private:
  char peek() const {
    DTNCACHE_CHECK_MSG(pos_ < text_.size(), "unexpected end of JSON");
    return text_[pos_];
  }
  void expect(char c) {
    DTNCACHE_CHECK_MSG(peek() == c, "expected '" << c << "' at offset " << pos_);
    ++pos_;
  }
  void skipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }
  std::string parseString() {
    expect('"');
    std::string s;
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default:
            DTNCACHE_CHECK_MSG(false, "unsupported escape \\" << esc);
        }
      }
      s += c;
    }
    ++pos_;
    return s;
  }
  JsonValue parseValue() {
    const char c = peek();
    if (c == '"') return parseString();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    // Number.
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) || text_[end] == '-' ||
            text_[end] == '+' || text_[end] == '.' || text_[end] == 'e' ||
            text_[end] == 'E'))
      ++end;
    DTNCACHE_CHECK_MSG(end > pos_, "expected a JSON value at offset " << pos_);
    const std::string num = text_.substr(pos_, end - pos_);
    std::size_t used = 0;
    const double v = std::stod(num, &used);
    DTNCACHE_CHECK_MSG(used == num.size(), "malformed number '" << num << "'");
    pos_ = end;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::map<std::string, JsonValue> parseFlatJson(const std::string& text) {
  FlatJsonParser parser(text);
  return parser.parse();
}

std::size_t editDistance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
      diag = up;
    }
  }
  return row[b.size()];
}

std::string nearestKey(const std::string& key, const std::vector<std::string>& known) {
  std::string best;
  std::size_t bestDistance = std::max<std::size_t>(key.size() / 2, 2) + 1;
  for (const std::string& candidate : known) {
    const std::size_t d = editDistance(key, candidate);
    if (d < bestDistance) {
      bestDistance = d;
      best = candidate;
    }
  }
  return best;
}

void FieldBinder::requireAllKnown() const {
  DTNCACHE_CHECK(mode == Mode::kLoad && values != nullptr);
  for (const auto& [key, value] : *values) {
    (void)value;
    if (std::find(knownKeys.begin(), knownKeys.end(), key) != knownKeys.end()) continue;
    const std::string suggestion = nearestKey(key, knownKeys);
    DTNCACHE_CHECK_MSG(false, "unknown config key '"
                                  << key << "'"
                                  << (suggestion.empty()
                                          ? std::string{}
                                          : "; did you mean '" + suggestion + "'?"));
  }
}

bool FieldBinder::integral(double v) { return std::nearbyint(v) == v; }

std::string FieldBinder::quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

void FieldBinder::emitNumber(const std::string& key, double v) const {
  std::ostringstream num;
  num.precision(17);
  num << v;
  emitRaw(key, num.str());
}

void FieldBinder::emitRaw(const std::string& key, const std::string& v) const {
  if (!first) *out << ",\n";
  first = false;
  *out << "  \"" << key << "\": " << v;
}

}  // namespace dtncache::runner
