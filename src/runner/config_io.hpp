#pragma once

/// \file config_io.hpp
/// Experiment configuration as JSON — the reproducibility interface.
///
/// `dumpConfig` writes every tunable of an ExperimentConfig as a flat JSON
/// object with dotted keys ("trace.nodeCount": 97, "hierarchical.theta":
/// 0.9); `loadConfig` parses the same format back, rejecting unknown keys
/// with a nearest-valid-key suggestion (a typo silently running the
/// defaults would fabricate results). The CLI exposes these as
/// `--dump-config` / `--config=<file>`, so any run can be archived and
/// replayed exactly.
///
/// The parser and the field-binder machinery live in flat_json.hpp, shared
/// with the peer daemon's `peer.*` config namespace (src/peer/peer_config).

#include <string>

#include "runner/experiment.hpp"

namespace dtncache::runner {

/// Serialize all tunable fields (pointer-valued fields like externalTrace
/// are runtime-only and excluded).
std::string dumpConfig(const ExperimentConfig& config);

/// Parse a dumped config. Throws InvariantViolation on malformed JSON,
/// unknown keys, or type mismatches. Keys may be omitted (defaults apply),
/// so hand-written partial configs work.
ExperimentConfig loadConfig(const std::string& json);

/// Apply a flat-JSON fragment on top of an existing config — the override
/// mechanism behind sweep axes (`{"hierarchical.replication.theta": 0.7}`
/// patches just that knob). Same key set and validation as loadConfig.
void applyConfigJson(ExperimentConfig& config, const std::string& json);

ExperimentConfig loadConfigFile(const std::string& path);
void saveConfigFile(const ExperimentConfig& config, const std::string& path);

}  // namespace dtncache::runner
