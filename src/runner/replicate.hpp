#pragma once

/// \file replicate.hpp
/// Multi-seed replication of experiments: run the same configuration under
/// several master seeds (every random process — trace, workload, churn —
/// re-drawn coherently) and aggregate the headline metrics with mean and
/// sample standard deviation. Benches use this where a single-trace number
/// would be noise-dominated.
///
/// The implementation rides the sweep engine (src/sweep/replicate.cpp, in
/// the dtncache_sweep library): seeds fan out across a thread pool and are
/// aggregated in seed order, so the numbers are identical at any `jobs`.

#include <cstdint>
#include <vector>

#include "runner/experiment.hpp"
#include "sim/stats.hpp"

namespace dtncache::runner {

/// Mean ± stddev summaries of the metrics benches report.
struct ReplicatedResults {
  std::size_t runs = 0;
  sim::Accumulator meanFresh;
  sim::Accumulator meanValid;
  sim::Accumulator refreshWithinTau;
  sim::Accumulator validAnswerRatio;
  sim::Accumulator answeredRatio;
  sim::Accumulator meanDelaySeconds;
  sim::Accumulator refreshMegabytes;
  sim::Accumulator predictedProbability;

  /// The last run's full output (for fields that do not aggregate).
  ExperimentOutput last;
};

/// Run `config` under seeds config.seed, config.seed+1, ... (count = runs)
/// on `jobs` worker threads (0 = one per hardware core). Aggregation is in
/// seed order regardless of jobs, so results are deterministic.
ReplicatedResults runReplicated(ExperimentConfig config, std::size_t runs,
                                std::size_t jobs = 0);

/// "mean±sd" with the given precision — compact table cell.
std::string formatMeanSd(const sim::Accumulator& a, int precision = 3);

}  // namespace dtncache::runner
