#include "metrics/load.hpp"

#include <algorithm>
#include <numeric>

namespace dtncache::metrics {

LoadStats loadStats(const std::vector<std::uint64_t>& perNodeBytes) {
  LoadStats s;
  if (perNodeBytes.empty()) return s;
  const std::size_t n = perNodeBytes.size();

  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += perNodeBytes[i];
    if (perNodeBytes[i] > s.maxBytes) {
      s.maxBytes = perNodeBytes[i];
      s.busiestNode = static_cast<NodeId>(i);
    }
    if (perNodeBytes[i] > 0) ++s.activeNodes;
  }
  s.meanBytes = static_cast<double>(total) / static_cast<double>(n);
  if (total == 0) return s;
  s.peakToMean = static_cast<double>(s.maxBytes) / s.meanBytes;

  // Gini via the sorted-rank formula: G = (2·Σ i·x_(i) / (n·Σx)) − (n+1)/n.
  std::vector<std::uint64_t> sorted = perNodeBytes;
  std::sort(sorted.begin(), sorted.end());
  double weighted = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    weighted += static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
  s.gini = 2.0 * weighted / (static_cast<double>(n) * static_cast<double>(total)) -
           (static_cast<double>(n) + 1.0) / static_cast<double>(n);

  const std::size_t top = std::max<std::size_t>(1, n / 10);
  std::uint64_t topSum = 0;
  for (std::size_t i = n - top; i < n; ++i) topSum += sorted[i];
  s.top10Share = static_cast<double>(topSum) / static_cast<double>(total);
  return s;
}

}  // namespace dtncache::metrics
