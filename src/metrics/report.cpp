#include "metrics/report.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/assert.hpp"
#include "sim/time.hpp"

namespace dtncache::metrics {

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DTNCACHE_CHECK(!headers_.empty());
}

Table& Table::addRow(std::vector<std::string> cells) {
  DTNCACHE_CHECK_MSG(cells.size() == headers_.size(),
                     "row has " << cells.size() << " cells, table has "
                                << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  " << std::left << std::setw(static_cast<int>(width[c])) << row[c];
    }
    out << '\n';
  };
  printRow(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule += "  " + std::string(width[c], '-');
  out << rule << '\n';
  for (const auto& row : rows_) printRow(row);
}

void writeTimeSeriesCsv(const std::string& path,
                        const std::vector<std::pair<std::string, sim::TimeSeries>>& series,
                        std::size_t points) {
  DTNCACHE_CHECK(!series.empty());
  std::ofstream out(path);
  DTNCACHE_CHECK_MSG(out.good(), "cannot write " << path);

  std::vector<std::vector<sim::TimeSeries::Point>> sampled;
  sampled.reserve(series.size());
  for (const auto& [name, s] : series) sampled.push_back(s.resampled(points));

  out << "time_days";
  for (const auto& [name, s] : series) out << ',' << name;
  out << '\n';
  const std::size_t rows = sampled.front().size();
  for (std::size_t r = 0; r < rows; ++r) {
    out << sim::toDays(sampled.front()[r].time);
    for (const auto& col : sampled)
      out << ',' << (r < col.size() ? col[r].value : 0.0);
    out << '\n';
  }
}

void Table::printCsv(std::ostream& out) const {
  auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  printRow(headers_);
  for (const auto& row : rows_) printRow(row);
}

}  // namespace dtncache::metrics
