#pragma once

/// \file report.hpp
/// Aligned-column table printing for the bench harnesses. Every experiment
/// binary prints a paper-style table through this; `--csv`-minded users get
/// the same rows via printCsv.

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hpp"

namespace dtncache::metrics {

/// Format a double with fixed precision, trimming to a compact width.
std::string fmt(double value, int precision = 3);

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& addRow(std::vector<std::string> cells);
  std::size_t rowCount() const { return rows_.size(); }

  void print(std::ostream& out) const;
  void printCsv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Write labeled time series as a plot-ready CSV file (`time_days` column
/// followed by one column per series; series are resampled to a common
/// point count). The benches use this to leave plottable artifacts next
/// to their printed tables.
void writeTimeSeriesCsv(const std::string& path,
                        const std::vector<std::pair<std::string, sim::TimeSeries>>& series,
                        std::size_t points = 200);

}  // namespace dtncache::metrics
