#pragma once

/// \file collector.hpp
/// Run-wide metrics: cache freshness, query validity/delay, overhead.
///
/// Freshness bookkeeping is event-driven and exact: the cache layer reports
/// every copy install/upgrade/evict and the source process reports every
/// version bump; the collector maintains per-item fresh/total copy counts
/// and integrates the aggregate fresh fraction over time (TimeWeightedMean).
/// A periodic sampler additionally records the fresh and valid fractions as
/// a time series for the freshness-vs-time plots (experiment F2).

#include <cstdint>
#include <vector>

#include "data/item.hpp"
#include "data/workload.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace dtncache::metrics {

/// Final numbers of one simulation run.
struct QueryStats {
  std::size_t issued = 0;
  std::size_t answered = 0;        ///< first reply arrived before deadline
  std::size_t answeredValid = 0;   ///< the answering copy was unexpired on arrival
  std::size_t answeredFresh = 0;   ///< the answering copy was the current version
  std::size_t localHits = 0;
  sim::Accumulator delay;          ///< seconds, answered queries only

  double successRatio() const { return sim::ratio(answeredValid, issued); }
  double answeredRatio() const { return sim::ratio(answered, issued); }
  double freshAnswerRatio() const { return sim::ratio(answeredFresh, answered); }
};

struct RunResults {
  double meanFreshFraction = 0.0;   ///< time-weighted, aggregate over items
  double finalFreshFraction = 0.0;
  double meanValidFraction = 0.0;   ///< from periodic samples
  QueryStats queries;
  net::TransferLog transfers;
  std::size_t copiesTracked = 0;
  std::size_t refreshPushes = 0;    ///< successful version upgrades delivered
  /// Fraction of (version, copy) slots where the copy received the version
  /// while it was still current — the empirical P(refresh within τ) that the
  /// freshness requirement θ constrains (experiment F5).
  double refreshWithinPeriodRatio = 0.0;
  sim::TimeSeries freshOverTime;
  sim::TimeSeries validOverTime;
  sim::SimTime simulatedTime = 0.0;
};

class MetricsCollector {
 public:
  MetricsCollector(const data::Catalog& catalog, sim::SimTime start);

  // -- copy lifecycle (reported by the cache layer) ------------------------
  void copyInstalled(data::ItemId item, data::Version v, sim::SimTime t);
  void copyUpgraded(data::ItemId item, data::Version oldV, data::Version newV, sim::SimTime t);
  void copyEvicted(data::ItemId item, data::Version v, sim::SimTime t);
  void versionBumped(data::ItemId item, sim::SimTime t);

  // -- queries --------------------------------------------------------------
  void queryIssued(const data::Query& q);
  /// First answer wins; later answers for the same query are ignored.
  void queryAnswered(data::QueryId id, sim::SimTime answeredAt, bool fresh, bool valid,
                     bool localHit);

  // -- periodic sampling -----------------------------------------------------
  /// Record the current exact fresh fraction and the supplied valid fraction
  /// (the cache layer computes validity by scanning its stores).
  void samplePoint(sim::SimTime t, double validFraction);

  /// Freeze and return the results. `transfers` is copied in from the
  /// network at the end of the run.
  RunResults finalize(sim::SimTime end, const net::TransferLog& transfers);

  double currentFreshFraction() const;
  std::size_t totalCopies() const { return totalCopies_; }

 private:
  struct ItemCounters {
    std::size_t copies = 0;
    std::size_t fresh = 0;
  };

  void freshnessChanged(sim::SimTime t);
  bool isFresh(data::ItemId item, data::Version v, sim::SimTime t) const;

  const data::Catalog& catalog_;
  std::vector<ItemCounters> perItem_;
  std::size_t totalCopies_ = 0;
  std::size_t totalFresh_ = 0;
  std::size_t refreshPushes_ = 0;
  std::size_t freshSlots_ = 0;     ///< copies alive at each version bump
  std::size_t freshUpgrades_ = 0;  ///< upgrades that landed while current
  sim::TimeWeightedMean freshMean_;
  sim::TimeSeries freshSeries_;
  sim::TimeSeries validSeries_;
  sim::Accumulator validSamples_;

  struct PendingQuery {
    sim::SimTime issueTime = 0.0;
    sim::SimTime deadline = 0.0;
    bool issued = false;
    bool answered = false;
  };
  /// Indexed directly by QueryId — the workload assigns ids densely from 1,
  /// and the first-answer-wins protocol probes this on every reply
  /// delivery, so a flat vector (one indexed load) replaces the hash map.
  /// Never iterated: query statistics accumulate at answer events in event
  /// order, so the layout cannot perturb FP accumulation.
  std::vector<PendingQuery> pending_;
  QueryStats queries_;
};

}  // namespace dtncache::metrics
