#include "metrics/collector.hpp"

#include "sim/assert.hpp"

namespace dtncache::metrics {

MetricsCollector::MetricsCollector(const data::Catalog& catalog, sim::SimTime start)
    : catalog_(catalog), perItem_(catalog.size()), freshMean_(start) {}

bool MetricsCollector::isFresh(data::ItemId item, data::Version v, sim::SimTime t) const {
  return catalog_.clock(item).isFresh(v, t);
}

void MetricsCollector::freshnessChanged(sim::SimTime t) {
  freshMean_.update(t, currentFreshFraction());
}

double MetricsCollector::currentFreshFraction() const {
  if (totalCopies_ == 0) return 0.0;
  return static_cast<double>(totalFresh_) / static_cast<double>(totalCopies_);
}

void MetricsCollector::copyInstalled(data::ItemId item, data::Version v, sim::SimTime t) {
  auto& c = perItem_[item];
  ++c.copies;
  ++totalCopies_;
  if (isFresh(item, v, t)) {
    ++c.fresh;
    ++totalFresh_;
  }
  freshnessChanged(t);
}

void MetricsCollector::copyUpgraded(data::ItemId item, data::Version oldV, data::Version newV,
                                    sim::SimTime t) {
  DTNCACHE_CHECK(newV > oldV);
  auto& c = perItem_[item];
  DTNCACHE_CHECK(c.copies > 0);
  ++refreshPushes_;
  const bool wasFresh = isFresh(item, oldV, t);
  const bool nowFresh = isFresh(item, newV, t);
  if (nowFresh) ++freshUpgrades_;
  if (nowFresh && !wasFresh) {
    ++c.fresh;
    ++totalFresh_;
    freshnessChanged(t);
  }
}

void MetricsCollector::copyEvicted(data::ItemId item, data::Version v, sim::SimTime t) {
  auto& c = perItem_[item];
  DTNCACHE_CHECK(c.copies > 0);
  --c.copies;
  --totalCopies_;
  if (isFresh(item, v, t)) {
    DTNCACHE_CHECK(c.fresh > 0);
    --c.fresh;
    --totalFresh_;
  }
  freshnessChanged(t);
}

void MetricsCollector::versionBumped(data::ItemId item, sim::SimTime t) {
  // No existing copy can hold the just-created version. Each live copy is
  // one slot for the "refresh within the period" statistic.
  auto& c = perItem_[item];
  freshSlots_ += c.copies;
  totalFresh_ -= c.fresh;
  c.fresh = 0;
  freshnessChanged(t);
}

void MetricsCollector::queryIssued(const data::Query& q) {
  ++queries_.issued;
  if (q.id >= pending_.size()) pending_.resize(q.id + 1);
  pending_[q.id] = PendingQuery{q.issueTime, q.deadline, true, false};
}

void MetricsCollector::queryAnswered(data::QueryId id, sim::SimTime answeredAt, bool fresh,
                                     bool valid, bool localHit) {
  if (id >= pending_.size()) return;
  PendingQuery& p = pending_[id];
  if (!p.issued || p.answered) return;
  if (answeredAt > p.deadline) return;  // too late: counts as unanswered
  p.answered = true;
  ++queries_.answered;
  if (valid) ++queries_.answeredValid;
  if (fresh) ++queries_.answeredFresh;
  if (localHit) ++queries_.localHits;
  queries_.delay.add(answeredAt - p.issueTime);
}

void MetricsCollector::samplePoint(sim::SimTime t, double validFraction) {
  freshSeries_.record(t, currentFreshFraction());
  validSeries_.record(t, validFraction);
  validSamples_.add(validFraction);
}

RunResults MetricsCollector::finalize(sim::SimTime end, const net::TransferLog& transfers) {
  RunResults r;
  r.meanFreshFraction = freshMean_.mean(end);
  r.finalFreshFraction = currentFreshFraction();
  r.meanValidFraction = validSamples_.mean();
  r.queries = queries_;
  r.transfers = transfers;
  r.copiesTracked = totalCopies_;
  r.refreshPushes = refreshPushes_;
  r.refreshWithinPeriodRatio = sim::ratio(freshUpgrades_, freshSlots_);
  r.freshOverTime = freshSeries_;
  r.validOverTime = validSeries_;
  r.simulatedTime = end;
  return r;
}

}  // namespace dtncache::metrics
