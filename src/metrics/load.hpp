#pragma once

/// \file load.hpp
/// Load-distribution statistics over per-node byte counters.
///
/// The hierarchical scheme's fanout bound exists precisely to bound each
/// node's refresh duty; these statistics quantify that (experiment F10).
/// Gini ∈ [0,1): 0 = perfectly even, →1 = one node does everything.

#include <cstdint>
#include <vector>

#include "trace/contact.hpp"

namespace dtncache::metrics {

struct LoadStats {
  double meanBytes = 0.0;
  std::uint64_t maxBytes = 0;
  NodeId busiestNode = kNoNode;
  /// Max over mean: 1 = even, large = concentrated.
  double peakToMean = 0.0;
  /// Gini coefficient of the per-node byte distribution.
  double gini = 0.0;
  /// Fraction of all bytes sent by the busiest 10% of nodes.
  double top10Share = 0.0;
  std::size_t activeNodes = 0;  ///< nodes that sent anything
};

LoadStats loadStats(const std::vector<std::uint64_t>& perNodeBytes);

}  // namespace dtncache::metrics
