#include "baselines/baselines.hpp"

#include <algorithm>

#include "sim/assert.hpp"

namespace dtncache::baselines {

void SourceDirectScheme::onContact(cache::CooperativeCache& cache, NodeId a, NodeId b,
                                   sim::SimTime t, net::ContactChannel& channel) {
  const std::size_t items = cache.catalog().size();
  for (data::ItemId item = 0; item < items; ++item) {
    const NodeId source = cache.sourceOf(item);
    if (a == source)
      cache.pushVersion(a, b, item, t, channel, net::Traffic::kRefresh);
    else if (b == source)
      cache.pushVersion(b, a, item, t, channel, net::Traffic::kRefresh);
  }
}

void EpidemicScheme::onContact(cache::CooperativeCache& cache, NodeId a, NodeId b,
                               sim::SimTime t, net::ContactChannel& channel) {
  const std::size_t items = cache.catalog().size();
  for (data::ItemId item = 0; item < items; ++item) {
    const auto va = cache.heldVersion(a, item, t);
    const auto vb = cache.heldVersion(b, item, t);
    if (va && (!vb || *va > *vb))
      cache.pushVersion(a, b, item, t, channel, net::Traffic::kRefresh);
    else if (vb && (!va || *vb > *va))
      cache.pushVersion(b, a, item, t, channel, net::Traffic::kRefresh);
  }
}

void FloodingScheme::onStart(cache::CooperativeCache& cache) {
  relay_.assign(cache.nodeCount(), {});
}

void FloodingScheme::onContact(cache::CooperativeCache& cache, NodeId a, NodeId b,
                               sim::SimTime t, net::ContactChannel& channel) {
  const std::size_t items = cache.catalog().size();
  auto effectiveVersion = [&](NodeId n, data::ItemId item) -> std::optional<data::Version> {
    auto held = cache.heldVersion(n, item, t);
    const auto it = relay_[n].find(item);
    if (it != relay_[n].end() && (!held || it->second > *held)) return it->second;
    return held;
  };
  auto push = [&](NodeId from, NodeId to, data::ItemId item, data::Version v) {
    if (cache.isCachingNode(to, item)) {
      // Installs into the cache (pushSpecificVersion accounts the bytes).
      cache.pushSpecificVersion(from, to, item, v, t, channel, net::Traffic::kRefresh);
      return;
    }
    // Non-member: keep a relay copy. Same bytes on the air.
    const std::uint32_t bytes = net::kHeaderBytes + cache.catalog().spec(item).sizeBytes;
    if (!channel.transfer(net::Traffic::kRefresh, bytes, from)) return;
    relay_[to][item] = v;
  };

  for (data::ItemId item = 0; item < items; ++item) {
    const auto va = effectiveVersion(a, item);
    const auto vb = effectiveVersion(b, item);
    if (va && (!vb || *va > *vb))
      push(a, b, item, *va);
    else if (vb && (!va || *vb > *va))
      push(b, a, item, *vb);
  }
}

std::size_t FloodingScheme::relayCopies() const {
  std::size_t n = 0;
  for (const auto& m : relay_) n += m.size();
  return n;
}

void PullScheme::onStart(cache::CooperativeCache& cache) {
  DTNCACHE_CHECK(config_.checkPeriod > 0.0);
  cache.simulator().schedulePeriodic(
      config_.checkPeriod, [this, &cache](sim::SimTime t) { checkAges(cache, t); },
      config_.checkPeriod);
}

void PullScheme::checkAges(cache::CooperativeCache& cache, sim::SimTime t) {
  const std::size_t items = cache.catalog().size();
  for (data::ItemId item = 0; item < items; ++item) {
    const sim::SimTime tau = cache.catalog().spec(item).refreshPeriod;
    const sim::SimTime trigger = config_.ageTriggerFraction * tau;
    for (NodeId n : cache.cachingNodesOf(item)) {
      const cache::CacheEntry* e = cache.storeOf(n).find(item);
      if (e == nullptr || t - e->receivedAt < trigger) continue;

      const std::uint64_t key =
          static_cast<std::uint64_t>(n) * items + item;
      if (const auto it = outstanding_.find(key);
          it != outstanding_.end() && it->second > t)
        continue;  // a pull is already in flight

      net::Message m;
      m.kind = net::MessageKind::kPull;
      m.item = item;
      m.dst = cache.sourceOf(item);
      m.origin = n;
      m.createdAt = t;
      m.deadline = t + config_.pullTtl;
      m.copiesLeft = cache.config().forwarding.initialCopies;
      cache.injectMessage(n, m, t);
      outstanding_[key] = m.deadline;
      ++pullsIssued_;
    }
  }
}

void InvalidationScheme::onStart(cache::CooperativeCache& cache) {
  known_.assign(cache.nodeCount(),
                std::vector<data::Version>(cache.catalog().size(), 0));
}

data::Version InvalidationScheme::knownVersion(NodeId n, data::ItemId item) const {
  return known_[n][item];
}

void InvalidationScheme::maybePull(cache::CooperativeCache& cache, NodeId n,
                                   data::ItemId item, sim::SimTime t) {
  if (!cache.isCachingNode(n, item)) return;
  const auto held = cache.heldVersion(n, item, t);
  if (held && *held >= known_[n][item]) return;  // copy is as new as rumor

  const std::uint64_t key =
      static_cast<std::uint64_t>(n) * cache.catalog().size() + item;
  if (const auto it = outstanding_.find(key); it != outstanding_.end() && it->second > t)
    return;

  net::Message m;
  m.kind = net::MessageKind::kPull;
  m.item = item;
  m.dst = cache.sourceOf(item);
  m.origin = n;
  m.createdAt = t;
  m.deadline = t + config_.pullTtl;
  m.copiesLeft = cache.config().forwarding.initialCopies;
  cache.injectMessage(n, m, t);
  outstanding_[key] = m.deadline;
  ++pullsIssued_;
}

void InvalidationScheme::onContact(cache::CooperativeCache& cache, NodeId a, NodeId b,
                                   sim::SimTime t, net::ContactChannel& channel) {
  const std::size_t items = cache.catalog().size();
  // Version-number gossip, both directions; tiny but accounted.
  const std::uint64_t gossipBytes =
      static_cast<std::uint64_t>(config_.gossipBytesPerItem) * items;
  if (!channel.transfer(net::Traffic::kControl, gossipBytes, a)) return;
  if (!channel.transfer(net::Traffic::kControl, gossipBytes, b)) return;

  for (data::ItemId item = 0; item < items; ++item) {
    // Each side's knowledge: rumors heard + what it actually holds (the
    // source always knows the live version).
    data::Version ka = known_[a][item];
    if (const auto held = cache.heldVersion(a, item, t)) ka = std::max(ka, *held);
    data::Version kb = known_[b][item];
    if (const auto held = cache.heldVersion(b, item, t)) kb = std::max(kb, *held);
    const data::Version merged = std::max(ka, kb);
    known_[a][item] = merged;
    known_[b][item] = merged;

    maybePull(cache, a, item, t);
    maybePull(cache, b, item, t);
  }
}

}  // namespace dtncache::baselines
