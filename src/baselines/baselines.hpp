#pragma once

/// \file baselines.hpp
/// Baseline refresh schemes the paper's scheme is compared against.
///
/// - NoRefresh:    copies are never updated after placement; they go stale
///                 at the first version bump and expire at their lifetime —
///                 what plain cooperative caching (INFOCOM'11) does.
/// - SourceDirect: only the source pushes new versions, to caching nodes it
///                 meets in person. The "flat" non-hierarchical design —
///                 cheap, but a source that rarely meets a caching node
///                 leaves it permanently stale.
/// - Epidemic:     any caching node (or the source) with a newer version
///                 pushes it to any stale caching node it meets. The
///                 freshness ceiling among member-only schemes, with
///                 unbounded per-node responsibility.
/// - Flooding:     every node in the network relays new versions (non-
///                 members keep relay copies). The absolute freshness
///                 ceiling and the overhead worst case.
/// - Pull:         caching nodes detect their copy's age exceeding the
///                 refresh period and send pull requests routed to the
///                 source, which answers with a routed data copy —
///                 client-driven validation, as in classic Web caching,
///                 transplanted onto a DTN.
/// - Invalidation: version *numbers* gossip epidemically among all nodes
///                 (bytes are negligible — they ride the contact
///                 handshake); a caching node that learns a newer version
///                 exists pulls the data from the source. The classic
///                 cache-invalidation design: staleness is detected almost
///                 as fast as flooding detects it, but the heavy data
///                 still has to travel on demand.

#include <unordered_map>
#include <vector>

#include "cache/coop_cache.hpp"
#include "cache/refresh_scheme.hpp"

namespace dtncache::baselines {

class NoRefreshScheme : public cache::RefreshScheme {
 public:
  std::string name() const override { return "NoRefresh"; }
  void onContact(cache::CooperativeCache&, NodeId, NodeId, sim::SimTime,
                 net::ContactChannel&) override {}
};

class SourceDirectScheme : public cache::RefreshScheme {
 public:
  std::string name() const override { return "SourceDirect"; }
  void onContact(cache::CooperativeCache& cache, NodeId a, NodeId b, sim::SimTime t,
                 net::ContactChannel& channel) override;
};

class EpidemicScheme : public cache::RefreshScheme {
 public:
  std::string name() const override { return "Epidemic"; }
  void onContact(cache::CooperativeCache& cache, NodeId a, NodeId b, sim::SimTime t,
                 net::ContactChannel& channel) override;
};

class FloodingScheme : public cache::RefreshScheme {
 public:
  std::string name() const override { return "Flooding"; }
  void onStart(cache::CooperativeCache& cache) override;
  void onContact(cache::CooperativeCache& cache, NodeId a, NodeId b, sim::SimTime t,
                 net::ContactChannel& channel) override;

  /// A node carrying relay copies can hand them over on any contact.
  bool contactActive(NodeId n) const override {
    return n < relay_.size() && !relay_[n].empty();
  }

  /// Relay copies held outside caches (diagnostics).
  std::size_t relayCopies() const;

 private:
  /// relay_[node][item] = newest version this non-holder node carries.
  std::vector<std::unordered_map<data::ItemId, data::Version>> relay_;
};

struct PullConfig {
  /// A holder suspects staleness once its copy's age exceeds this fraction
  /// of the item's refresh period.
  double ageTriggerFraction = 1.0;
  /// How often holders check their copies' ages.
  sim::SimTime checkPeriod = sim::hours(1);
  /// Relative validity of an issued pull (gives up after this).
  sim::SimTime pullTtl = sim::hours(12);
};

class PullScheme : public cache::RefreshScheme {
 public:
  explicit PullScheme(PullConfig config = {}) : config_(config) {}

  std::string name() const override { return "Pull"; }
  void onStart(cache::CooperativeCache& cache) override;
  void onContact(cache::CooperativeCache&, NodeId, NodeId, sim::SimTime,
                 net::ContactChannel&) override {}

  std::size_t pullsIssued() const { return pullsIssued_; }

 private:
  void checkAges(cache::CooperativeCache& cache, sim::SimTime t);

  PullConfig config_;
  /// (node, item) → absolute expiry of the outstanding pull, to rate-limit.
  std::unordered_map<std::uint64_t, sim::SimTime> outstanding_;
  std::size_t pullsIssued_ = 0;
};

struct InvalidationConfig {
  /// Per-item bytes of the gossiped version vector (rides every contact).
  std::uint32_t gossipBytesPerItem = 8;
  /// Validity of an issued pull (re-pull allowed after it expires).
  sim::SimTime pullTtl = sim::hours(12);
};

class InvalidationScheme : public cache::RefreshScheme {
 public:
  explicit InvalidationScheme(InvalidationConfig config = {}) : config_(config) {}

  std::string name() const override { return "Invalidation"; }
  void onStart(cache::CooperativeCache& cache) override;
  void onContact(cache::CooperativeCache& cache, NodeId a, NodeId b, sim::SimTime t,
                 net::ContactChannel& channel) override;
  /// Version vectors gossip (and merge) on every contact: no inert contacts.
  bool shardable() const override { return false; }

  std::size_t pullsIssued() const { return pullsIssued_; }
  /// Highest version node `n` has *heard of* for `item` (diagnostics).
  data::Version knownVersion(NodeId n, data::ItemId item) const;

 private:
  void maybePull(cache::CooperativeCache& cache, NodeId n, data::ItemId item,
                 sim::SimTime t);

  InvalidationConfig config_;
  /// known_[node][item]: newest version number the node has heard of.
  std::vector<std::vector<data::Version>> known_;
  std::unordered_map<std::uint64_t, sim::SimTime> outstanding_;
  std::size_t pullsIssued_ = 0;
};

}  // namespace dtncache::baselines
