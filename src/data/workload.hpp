#pragma once

/// \file workload.hpp
/// Query workload: who asks for what, when.
///
/// Each node issues queries as a Poisson process; the queried item follows a
/// Zipf popularity distribution (item 0 most popular), the standard model
/// for content popularity in the cooperative-caching literature. A query is
/// satisfied when any node returns a *valid* copy before the deadline; the
/// copy's freshness at answer time is what the paper's "validity of data
/// access" metric measures.

#include <cstdint>
#include <functional>
#include <vector>

#include "data/item.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace dtncache::data {

using QueryId = std::uint64_t;

struct Query {
  QueryId id = 0;
  NodeId requester = 0;
  ItemId item = 0;
  sim::SimTime issueTime = 0.0;
  sim::SimTime deadline = 0.0;  ///< absolute; unanswered past this = failed
};

struct WorkloadConfig {
  /// Mean queries per node per day.
  double queriesPerNodePerDay = 2.0;
  /// Zipf exponent over the catalog (0 = uniform).
  double zipfExponent = 0.8;
  /// Relative deadline for each query.
  sim::SimTime queryDeadline = sim::hours(12);
  /// Workload is generated on [start, end).
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
  std::uint64_t seed = 7;
};

/// Called when a node issues a query.
using QueryListener = std::function<void(const Query&)>;

class QueryWorkload {
 public:
  /// Pre-generates the full arrival sequence (deterministic in the seed)
  /// and schedules it onto the simulator.
  QueryWorkload(sim::Simulator& simulator, const Catalog& catalog, std::size_t nodeCount,
                const WorkloadConfig& config);

  void addListener(QueryListener listener) { listeners_.push_back(std::move(listener)); }

  std::size_t issuedCount() const { return issued_; }
  const std::vector<Query>& plannedQueries() const { return planned_; }

 private:
  std::vector<Query> planned_;
  std::vector<QueryListener> listeners_;
  std::size_t issued_ = 0;
};

}  // namespace dtncache::data
