#include "data/item.hpp"

namespace dtncache::data {

Catalog::Catalog(std::vector<ItemSpec> specs) {
  clocks_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    DTNCACHE_CHECK_MSG(specs[i].id == i, "catalog ids must be dense, 0..n-1");
    clocks_.emplace_back(specs[i]);
  }
}

std::vector<ItemId> Catalog::itemsOf(NodeId node) const {
  std::vector<ItemId> out;
  for (ItemId id = 0; id < clocks_.size(); ++id)
    if (clocks_[id].spec().source == node) out.push_back(id);
  return out;
}

Catalog makeUniformCatalog(const CatalogConfig& config) {
  DTNCACHE_CHECK(config.nodeCount > 0);
  std::vector<ItemSpec> specs;
  specs.reserve(config.itemCount);
  // Spread sources across the node space rather than clustering at low ids:
  // node ids carry no meaning, but a deterministic stride keeps sources
  // apart in community-structured traces (communities are id % k).
  const std::size_t stride = std::max<std::size_t>(1, config.nodeCount / 7);
  for (ItemId id = 0; id < config.itemCount; ++id) {
    ItemSpec s;
    s.id = id;
    s.source = static_cast<NodeId>((1 + id * stride) % config.nodeCount);
    s.sizeBytes = config.itemSizeBytes;
    s.refreshPeriod = config.refreshPeriod;
    s.lifetime = config.lifetimeFactor * config.refreshPeriod;
    if (config.staggerBirths && config.itemCount > 0) {
      s.birth = config.refreshPeriod * static_cast<double>(id) /
                static_cast<double>(config.itemCount);
    }
    specs.push_back(s);
  }
  return Catalog(std::move(specs));
}

}  // namespace dtncache::data
