#pragma once

/// \file item.hpp
/// Data items, versions, and the catalog.
///
/// A data item is produced by a single source node and refreshed
/// periodically: the source creates version v at time t0 + v·τ. A copy of
/// version v is
///   - *fresh*  while v is still the version current at the source, and
///   - *valid* (usable to answer queries) until it expires `lifetime`
///     seconds after v was created (lifetime ≥ τ, default 2τ: a copy stays
///     usable for one period past the next refresh, but is stale for it).
/// This is the abstract's "data which may be refreshed periodically and is
/// subject to expiration".

#include <cstdint>
#include <vector>

#include "sim/assert.hpp"
#include "sim/time.hpp"
#include "trace/contact.hpp"

namespace dtncache::data {

using ItemId = std::uint32_t;
using Version = std::uint64_t;

/// Static description of one data item.
struct ItemSpec {
  ItemId id = 0;
  NodeId source = 0;
  std::uint32_t sizeBytes = 10 * 1024;
  sim::SimTime refreshPeriod = sim::hours(6);  ///< τ: time between versions
  sim::SimTime lifetime = sim::hours(12);      ///< validity span of a version
  sim::SimTime birth = 0.0;                    ///< creation time of version 0
};

/// Pure-function view of an item's version timeline. The source is strictly
/// periodic, so freshness/expiry are closed-form — no per-version state.
class VersionClock {
 public:
  explicit VersionClock(const ItemSpec& spec) : spec_(spec) {
    DTNCACHE_CHECK(spec.refreshPeriod > 0.0);
    DTNCACHE_CHECK_MSG(spec.lifetime >= spec.refreshPeriod,
                       "a version must live at least one period, or no copy "
                       "could ever be both cached and valid");
  }

  const ItemSpec& spec() const { return spec_; }

  /// Version current at the source at time t (0 before any refresh).
  Version currentVersion(sim::SimTime t) const {
    if (t <= spec_.birth) return 0;
    return static_cast<Version>((t - spec_.birth) / spec_.refreshPeriod);
  }

  /// Creation time of version v.
  sim::SimTime creationTime(Version v) const {
    return spec_.birth + static_cast<double>(v) * spec_.refreshPeriod;
  }

  /// Time of the next version bump strictly after t.
  sim::SimTime nextRefreshAfter(sim::SimTime t) const {
    return creationTime(currentVersion(t) + 1);
  }

  bool isFresh(Version v, sim::SimTime t) const { return v == currentVersion(t); }

  /// Instant version v stops being valid (closed-form, like everything here).
  sim::SimTime expiryTime(Version v) const { return creationTime(v) + spec_.lifetime; }

  /// Expired copies cannot answer queries.
  bool isExpired(Version v, sim::SimTime t) const { return t >= expiryTime(v); }

  bool isValid(Version v, sim::SimTime t) const { return !isExpired(v, t); }

 private:
  ItemSpec spec_;
};

/// The set of items in a run.
class Catalog {
 public:
  Catalog() = default;
  explicit Catalog(std::vector<ItemSpec> specs);

  std::size_t size() const { return clocks_.size(); }
  bool empty() const { return clocks_.empty(); }

  const ItemSpec& spec(ItemId id) const { return clock(id).spec(); }
  const VersionClock& clock(ItemId id) const {
    DTNCACHE_CHECK(id < clocks_.size());
    return clocks_[id];
  }

  /// All item ids whose source is `node`.
  std::vector<ItemId> itemsOf(NodeId node) const;

 private:
  std::vector<VersionClock> clocks_;
};

/// Config for the common catalog shape: `count` items assigned to distinct
/// (round-robin) source nodes, identical τ/lifetime/size.
struct CatalogConfig {
  std::size_t itemCount = 10;
  std::size_t nodeCount = 50;
  std::uint32_t itemSizeBytes = 10 * 1024;
  sim::SimTime refreshPeriod = sim::hours(6);
  /// lifetime = lifetimeFactor * refreshPeriod.
  double lifetimeFactor = 2.0;
  /// Stagger item births across one period so refreshes do not all fire at
  /// the same instant (synchronized staleness waves are a simulation
  /// artifact, not a property of real feeds).
  bool staggerBirths = true;
};

Catalog makeUniformCatalog(const CatalogConfig& config);

}  // namespace dtncache::data
