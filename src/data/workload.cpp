#include "data/workload.hpp"

#include <algorithm>

namespace dtncache::data {

QueryWorkload::QueryWorkload(sim::Simulator& simulator, const Catalog& catalog,
                             std::size_t nodeCount, const WorkloadConfig& config) {
  DTNCACHE_CHECK(config.end > config.start);
  DTNCACHE_CHECK(config.queriesPerNodePerDay >= 0.0);
  DTNCACHE_CHECK(!catalog.empty());

  sim::Rng root(config.seed);
  sim::Rng arrivalRng = root.fork(1);
  sim::Rng itemRng = root.fork(2);
  const sim::ZipfSampler zipf(catalog.size(), config.zipfExponent);

  // Superpose the per-node Poisson processes into one aggregate process of
  // rate N·r and assign each arrival a uniform requester — statistically
  // identical and a single stream of events.
  const double aggregateRate =
      config.queriesPerNodePerDay * static_cast<double>(nodeCount) / sim::days(1);
  QueryId nextId = 1;
  if (aggregateRate > 0.0) {
    sim::SimTime t = config.start + arrivalRng.exponential(aggregateRate);
    while (t < config.end) {
      Query q;
      q.id = nextId++;
      q.requester = static_cast<NodeId>(
          arrivalRng.uniformInt(0, static_cast<std::int64_t>(nodeCount) - 1));
      q.item = static_cast<ItemId>(zipf.sample(itemRng));
      q.issueTime = t;
      q.deadline = t + config.queryDeadline;
      planned_.push_back(q);
      t += arrivalRng.exponential(aggregateRate);
    }
  }

  // Capture an index into planned_ rather than the 32-byte Query itself:
  // planned_ is immutable after construction, and the slim capture keeps
  // every workload event inside the kernel's inline callable buffer.
  for (std::size_t i = 0; i < planned_.size(); ++i) {
    simulator.scheduleAt(planned_[i].issueTime, [this, i](sim::SimTime) {
      ++issued_;
      for (const auto& listener : listeners_) listener(planned_[i]);
    });
  }
}

}  // namespace dtncache::data
