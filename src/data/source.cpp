#include "data/source.hpp"

namespace dtncache::data {

SourceProcess::SourceProcess(sim::Simulator& simulator, const Catalog& catalog,
                             sim::SimTime horizon, sim::EventScope scope)
    : simulator_(simulator), catalog_(catalog), horizon_(horizon), scope_(scope) {
  for (ItemId id = 0; id < catalog_.size(); ++id)
    scheduleNext(id, simulator_.now());
}

void SourceProcess::scheduleNext(ItemId item, sim::SimTime after) {
  const sim::SimTime at = catalog_.clock(item).nextRefreshAfter(after);
  if (at > horizon_) return;
  simulator_.scheduleAt(
      at,
      [this, item](sim::SimTime t) {
        ++refreshCount_;
        const Version v = catalog_.clock(item).currentVersion(t);
        for (const auto& listener : listeners_) listener(item, v, t);
        scheduleNext(item, t);
      },
      scope_);
}

}  // namespace dtncache::data
