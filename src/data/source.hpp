#pragma once

/// \file source.hpp
/// The source-refresh process: drives version bumps on the simulator and
/// notifies listeners (refresh schemes, metrics) when a new version exists.
///
/// Freshness is defined against the VersionClock, so the process carries no
/// version state of its own; its job is purely to turn the periodic
/// timeline into simulation events.

#include <functional>
#include <vector>

#include "data/item.hpp"
#include "sim/simulator.hpp"

namespace dtncache::data {

/// Called when `item` gains a new version at time t.
using RefreshListener = std::function<void(ItemId item, Version newVersion, sim::SimTime t)>;

class SourceProcess {
 public:
  /// Schedules a version-bump event for every item in the catalog, from the
  /// current simulator time until `horizon`. Listeners added before run()
  /// observe every bump. `scope` is the bump events' sharded-kernel scope:
  /// pass the installed scheme's timerScope(TimerKind::kNewVersion) — bumps
  /// only touch the collector, the tracer, and the scheme's onNewVersion
  /// hook, so the base-class no-op hook makes them shard-local.
  SourceProcess(sim::Simulator& simulator, const Catalog& catalog, sim::SimTime horizon,
                sim::EventScope scope = sim::EventScope::kFence);

  void addListener(RefreshListener listener) { listeners_.push_back(std::move(listener)); }

  /// Total version bumps fired so far (across items).
  std::size_t refreshCount() const { return refreshCount_; }

 private:
  void scheduleNext(ItemId item, sim::SimTime after);

  sim::Simulator& simulator_;
  const Catalog& catalog_;
  sim::SimTime horizon_;
  sim::EventScope scope_;
  std::vector<RefreshListener> listeners_;
  std::size_t refreshCount_ = 0;
};

}  // namespace dtncache::data
