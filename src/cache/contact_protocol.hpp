#pragma once

/// \file contact_protocol.hpp
/// Transport-agnostic contact decisions: the handshake/push/install rules
/// two peers apply when they meet, factored out of the simulator substrate
/// so the live daemon (src/peer) runs the *same* logic over real sockets.
///
/// `cache::CooperativeCache` drives these rules through a simulated
/// `net::ContactChannel`; `peer::Peerd` drives them through TCP sessions.
/// Everything transport-specific (byte budgets, frame encoding, timers)
/// stays with the caller — this header is pure decision logic, and the
/// regression bar for refactors here is byte-identical simulator output.

#include <cstdint>
#include <optional>

#include "data/item.hpp"
#include "net/message.hpp"

namespace dtncache::cache {

/// Outcome of the "should `from` push version v of `item` to `to`?"
/// decision, taken after a metadata handshake told both sides what the
/// other holds (pushes are exact, never speculative).
enum class PushVerdict : std::uint8_t {
  kSend,            ///< receiver is a caching node and strictly behind
  kReceiverCurrent, ///< receiver already holds this version or newer
  kNotCachingNode,  ///< receiver does not cache this item at all
};

struct ContactProtocol {
  /// Per-direction metadata-handshake cost: one message header plus a
  /// version-vector entry per catalog item. Both directions must fit
  /// before anything else moves in a contact.
  static constexpr std::uint64_t handshakeBytes(std::size_t catalogSize,
                                                std::uint32_t vvBytesPerItem) {
    return net::kHeaderBytes +
           static_cast<std::uint64_t>(vvBytesPerItem) * catalogSize;
  }

  /// Does a holder of `offered` improve on `held` (nullopt = no copy)?
  /// The single freshness-comparison rule shared by the push decision and
  /// the receiving store's install decision.
  static constexpr bool wantsVersion(std::optional<data::Version> held,
                                     data::Version offered) {
    return !held.has_value() || *held < offered;
  }

  /// Full push decision from handshake knowledge.
  static constexpr PushVerdict decidePush(std::optional<data::Version> receiverHeld,
                                          data::Version offered,
                                          bool receiverIsCachingNode) {
    if (!receiverIsCachingNode) return PushVerdict::kNotCachingNode;
    return wantsVersion(receiverHeld, offered) ? PushVerdict::kSend
                                               : PushVerdict::kReceiverCurrent;
  }

  /// Wire cost of one version push: header plus the item payload.
  static constexpr std::uint32_t pushWireBytes(std::uint32_t itemSizeBytes) {
    return net::kHeaderBytes + itemSizeBytes;
  }
};

}  // namespace dtncache::cache
