#include "cache/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/assert.hpp"

namespace dtncache::cache {

std::vector<std::size_t> allocateCacheSlots(const std::vector<double>& popularity,
                                            std::size_t totalSlots, std::size_t minPerItem,
                                            std::size_t maxPerItem, AllocationPolicy policy) {
  const std::size_t n = popularity.size();
  DTNCACHE_CHECK(n > 0);
  DTNCACHE_CHECK(minPerItem <= maxPerItem);
  DTNCACHE_CHECK_MSG(totalSlots >= n * minPerItem && totalSlots <= n * maxPerItem,
                     "slot budget " << totalSlots << " infeasible for " << n
                                    << " items in [" << minPerItem << ", " << maxPerItem
                                    << "]");

  std::vector<double> weight(n);
  for (std::size_t i = 0; i < n; ++i) {
    DTNCACHE_CHECK_MSG(popularity[i] > 0.0, "non-positive popularity for item " << i);
    switch (policy) {
      case AllocationPolicy::kUniform: weight[i] = 1.0; break;
      case AllocationPolicy::kProportional: weight[i] = popularity[i]; break;
      case AllocationPolicy::kSqrt: weight[i] = std::sqrt(popularity[i]); break;
    }
  }

  // Iterate: assign ∝ weight within [min, max]; items pinned at a bound
  // leave the loop and their slots are re-split among the rest.
  std::vector<std::size_t> out(n, 0);
  std::vector<bool> pinned(n, false);
  double weightLeft = std::accumulate(weight.begin(), weight.end(), 0.0);
  std::size_t slotsLeft = totalSlots;
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (pinned[i]) continue;
      const double share =
          weightLeft > 0.0 ? static_cast<double>(slotsLeft) * weight[i] / weightLeft
                           : static_cast<double>(slotsLeft) / static_cast<double>(n);
      if (share <= static_cast<double>(minPerItem)) {
        out[i] = minPerItem;
      } else if (share >= static_cast<double>(maxPerItem)) {
        out[i] = maxPerItem;
      } else {
        continue;
      }
      pinned[i] = true;
      weightLeft -= weight[i];
      slotsLeft -= out[i];
      changed = true;
    }
  }

  // Largest-remainder rounding of the free items.
  std::vector<std::size_t> freeItems;
  for (std::size_t i = 0; i < n; ++i)
    if (!pinned[i]) freeItems.push_back(i);
  if (!freeItems.empty()) {
    std::vector<double> exact(freeItems.size());
    std::size_t assigned = 0;
    for (std::size_t k = 0; k < freeItems.size(); ++k) {
      exact[k] = static_cast<double>(slotsLeft) * weight[freeItems[k]] / weightLeft;
      out[freeItems[k]] = static_cast<std::size_t>(std::floor(exact[k]));
      assigned += out[freeItems[k]];
    }
    std::vector<std::size_t> order(freeItems.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double ra = exact[a] - std::floor(exact[a]);
      const double rb = exact[b] - std::floor(exact[b]);
      if (ra != rb) return ra > rb;
      return freeItems[a] < freeItems[b];
    });
    const std::size_t maxScans = order.size() * (maxPerItem + 1);
    for (std::size_t k = 0; assigned < slotsLeft && k < maxScans; ++k) {
      const std::size_t idx = freeItems[order[k % order.size()]];
      if (out[idx] >= maxPerItem) continue;
      ++out[idx];
      ++assigned;
    }
  }

  // Correction pass: pinning can strand slots (e.g. every share ≤ min pins
  // the whole set at min). Move single slots to the heaviest under-max /
  // from the lightest over-min item until the sum is exact; feasibility
  // guarantees termination.
  std::size_t total = std::accumulate(out.begin(), out.end(), std::size_t{0});
  while (total < totalSlots) {
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i)
      if (out[i] < maxPerItem && (best == n || weight[i] > weight[best])) best = i;
    DTNCACHE_CHECK(best < n);
    ++out[best];
    ++total;
  }
  while (total > totalSlots) {
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i)
      if (out[i] > minPerItem && (best == n || weight[i] < weight[best])) best = i;
    DTNCACHE_CHECK(best < n);
    --out[best];
    --total;
  }
  return out;
}

}  // namespace dtncache::cache
