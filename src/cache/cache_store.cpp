#include "cache/cache_store.hpp"

#include <algorithm>

namespace dtncache::cache {

InsertResult CacheStore::insert(data::ItemId item, data::Version version,
                                std::uint32_t sizeBytes, sim::SimTime now) {
  InsertResult result;
  if (sizeBytes > capacityBytes_) {
    result.kind = InsertResult::Kind::kRejected;
    return result;
  }

  if (auto it = entries_.find(item); it != entries_.end()) {
    if (it->second.version >= version) {
      result.kind = InsertResult::Kind::kAlreadyCurrent;
      return result;
    }
    result.kind = InsertResult::Kind::kUpgraded;
    result.previousVersion = it->second.version;
    // Same item: occupancy may change if the item size changed between
    // versions (it does not in our catalogs, but stay correct).
    usedBytes_ -= it->second.sizeBytes;
    usedBytes_ += sizeBytes;
    it->second.version = version;
    it->second.sizeBytes = sizeBytes;
    it->second.receivedAt = now;
    while (usedBytes_ > capacityBytes_) evictLru(result.evicted);
    return result;
  }

  while (usedBytes_ + sizeBytes > capacityBytes_) evictLru(result.evicted);
  CacheEntry e;
  e.item = item;
  e.version = version;
  e.sizeBytes = sizeBytes;
  e.receivedAt = now;
  e.lastAccess = now;
  entries_.emplace(item, e);
  usedBytes_ += sizeBytes;
  result.kind = InsertResult::Kind::kInserted;
  return result;
}

const CacheEntry* CacheStore::find(data::ItemId item) const {
  const auto it = entries_.find(item);
  return it == entries_.end() ? nullptr : &it->second;
}

void CacheStore::recordAccess(data::ItemId item, sim::SimTime now) {
  if (auto it = entries_.find(item); it != entries_.end()) {
    it->second.lastAccess = now;
    ++it->second.accessCount;
  }
}

std::optional<CacheEntry> CacheStore::remove(data::ItemId item) {
  const auto it = entries_.find(item);
  if (it == entries_.end()) return std::nullopt;
  CacheEntry e = it->second;
  usedBytes_ -= e.sizeBytes;
  entries_.erase(it);
  return e;
}

std::vector<const CacheEntry*> CacheStore::entries() const {
  std::vector<const CacheEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const CacheEntry* a, const CacheEntry* b) { return a->item < b->item; });
  return out;
}

void CacheStore::evictLru(std::vector<CacheEntry>& out) {
  DTNCACHE_CHECK(!entries_.empty());
  auto victim = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.lastAccess < victim->second.lastAccess) victim = it;
  }
  out.push_back(victim->second);
  usedBytes_ -= victim->second.sizeBytes;
  entries_.erase(victim);
}

}  // namespace dtncache::cache
