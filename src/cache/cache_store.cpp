#include "cache/cache_store.hpp"

#include <algorithm>

namespace dtncache::cache {

std::uint32_t CacheStore::allocSlot() {
  if (!freeSlots_.empty()) {
    const std::uint32_t slot = freeSlots_.back();
    freeSlots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void CacheStore::linkMru(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.lruPrev = lruTail_;
  s.lruNext = kNil;
  if (lruTail_ != kNil) slots_[lruTail_].lruNext = slot;
  lruTail_ = slot;
  if (lruHead_ == kNil) lruHead_ = slot;
}

void CacheStore::unlink(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.lruPrev != kNil) slots_[s.lruPrev].lruNext = s.lruNext;
  else lruHead_ = s.lruNext;
  if (s.lruNext != kNil) slots_[s.lruNext].lruPrev = s.lruPrev;
  else lruTail_ = s.lruPrev;
  s.lruPrev = s.lruNext = kNil;
}

void CacheStore::releaseSlot(std::uint32_t slot) {
  slots_[slot].live = false;
  freeSlots_.push_back(slot);
}

InsertResult CacheStore::insert(data::ItemId item, data::Version version,
                                std::uint32_t sizeBytes, sim::SimTime now,
                                sim::SimTime expiresAt) {
  InsertResult result;
  if (sizeBytes > capacityBytes_) {
    result.kind = InsertResult::Kind::kRejected;
    return result;
  }

  if (const std::uint32_t slot = index_.find(item); slot != core::SlotIndex::kNoSlot) {
    CacheEntry& e = slots_[slot].entry;
    if (e.version >= version) {
      result.kind = InsertResult::Kind::kAlreadyCurrent;
      return result;
    }
    result.kind = InsertResult::Kind::kUpgraded;
    result.previousVersion = e.version;
    // Same item: occupancy may change if the item size changed between
    // versions (it does not in our catalogs, but stay correct). Recency is
    // untouched — an upgrade is a push, not a local access.
    usedBytes_ -= e.sizeBytes;
    usedBytes_ += sizeBytes;
    e.version = version;
    e.sizeBytes = sizeBytes;
    e.receivedAt = now;
    const sim::SimTime oldExpiry = e.expiresAt;
    e.expiresAt = expiresAt;
    if (expiresAt > latestExpiry_) latestExpiry_ = expiresAt;
    else if (expiresAt < oldExpiry) noteExpiryChanged(oldExpiry);
    while (usedBytes_ > capacityBytes_) evictLru(result.evicted);
    settleExpiryBound();
    return result;
  }

  while (usedBytes_ + sizeBytes > capacityBytes_) evictLru(result.evicted);
  const std::uint32_t slot = allocSlot();
  Slot& s = slots_[slot];
  s.entry = CacheEntry{};
  s.entry.item = item;
  s.entry.version = version;
  s.entry.sizeBytes = sizeBytes;
  s.entry.receivedAt = now;
  s.entry.lastAccess = now;
  s.entry.expiresAt = expiresAt;
  s.live = true;
  index_.insert(item, slot);
  linkMru(slot);
  usedBytes_ += sizeBytes;
  if (expiresAt > latestExpiry_) latestExpiry_ = expiresAt;
  result.kind = InsertResult::Kind::kInserted;
  settleExpiryBound();
  return result;
}

void CacheStore::recordAccess(data::ItemId item, sim::SimTime now) {
  const std::uint32_t slot = index_.find(item);
  if (slot == core::SlotIndex::kNoSlot) return;
  Slot& s = slots_[slot];
  s.entry.lastAccess = now;
  ++s.entry.accessCount;
  if (lruTail_ != slot) {
    unlink(slot);
    linkMru(slot);
  }
}

std::optional<CacheEntry> CacheStore::remove(data::ItemId item) {
  const std::uint32_t slot = index_.erase(item);
  if (slot == core::SlotIndex::kNoSlot) return std::nullopt;
  const CacheEntry e = slots_[slot].entry;
  usedBytes_ -= e.sizeBytes;
  unlink(slot);
  releaseSlot(slot);
  noteExpiryChanged(e.expiresAt);
  settleExpiryBound();
  return e;
}

std::vector<const CacheEntry*> CacheStore::entries() const {
  std::vector<const CacheEntry*> out;
  out.reserve(index_.size());
  for (const Slot& s : slots_)
    if (s.live) out.push_back(&s.entry);
  std::sort(out.begin(), out.end(),
            [](const CacheEntry* a, const CacheEntry* b) { return a->item < b->item; });
  return out;
}

void CacheStore::evictLru(std::vector<CacheEntry>& out) {
  DTNCACHE_CHECK(lruHead_ != kNil);
  // Sim time is nondecreasing, so the list head is an entry with the
  // minimum lastAccess — the same victim class the old timestamp scan
  // picked, found in O(1).
  const std::uint32_t victim = lruHead_;
  out.push_back(slots_[victim].entry);
  usedBytes_ -= slots_[victim].entry.sizeBytes;
  index_.erase(slots_[victim].entry.item);
  noteExpiryChanged(slots_[victim].entry.expiresAt);
  unlink(victim);
  releaseSlot(victim);
}

void CacheStore::noteExpiryChanged(sim::SimTime oldExpiry) {
  // Only losing the entry that held the max can lower the bound; everything
  // else leaves it exact. Ties rescan too (the max may survive in a twin).
  if (oldExpiry == latestExpiry_) expiryDirty_ = true;
}

void CacheStore::settleExpiryBound() {
  if (!expiryDirty_) return;
  expiryDirty_ = false;
  latestExpiry_ = -std::numeric_limits<sim::SimTime>::infinity();
  for (const Slot& s : slots_)
    if (s.live && s.entry.expiresAt > latestExpiry_) latestExpiry_ = s.entry.expiresAt;
}

}  // namespace dtncache::cache
