#pragma once

/// \file centrality.hpp
/// Contact-capability centrality and Network Central Location selection.
///
/// The cooperative-caching substrate (Gao et al., INFOCOM 2011) caches data
/// at Network Central Locations: the nodes best able to meet the rest of
/// the network. A node's metric is its expected reach within a window T,
///     C_i(T) = (1 / (N-1)) · Σ_{j≠i} (1 − e^{−λ_ij·T}),
/// i.e. the mean probability of meeting a random other node within T.
/// NCLs are the top-K nodes by this metric, greedily de-clustered: picking
/// two NCLs that mostly meet the *same* nodes wastes a slot, so after the
/// first pick each candidate's marginal coverage is what counts.

#include <vector>

#include "sim/time.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::cache {

/// C_i(T) for every node.
std::vector<double> contactCapability(const trace::RateMatrix& rates, sim::SimTime window);

/// Top-k nodes by raw capability (ties broken by node id for determinism).
std::vector<NodeId> selectTopCapability(const trace::RateMatrix& rates, sim::SimTime window,
                                        std::size_t k);

/// Greedy marginal-coverage NCL selection: each pick maximizes the increase
/// of E[#nodes covered within T by at least one NCL]. Reduces to top-k when
/// coverage overlaps are negligible; differs (better) in community-
/// structured networks where top-k piles into one community.
std::vector<NodeId> selectNcls(const trace::RateMatrix& rates, sim::SimTime window,
                               std::size_t k);

}  // namespace dtncache::cache
