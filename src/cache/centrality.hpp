#pragma once

/// \file centrality.hpp
/// Contact-capability centrality and Network Central Location selection.
///
/// The cooperative-caching substrate (Gao et al., INFOCOM 2011) caches data
/// at Network Central Locations: the nodes best able to meet the rest of
/// the network. A node's metric is its expected reach within a window T,
///     C_i(T) = (1 / (N-1)) · Σ_{j≠i} (1 − e^{−λ_ij·T}),
/// i.e. the mean probability of meeting a random other node within T.
/// NCLs are the top-K nodes by this metric, greedily de-clustered: picking
/// two NCLs that mostly meet the *same* nodes wastes a slot, so after the
/// first pick each candidate's marginal coverage is what counts.

#include <vector>

#include "sim/time.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::cache {

/// C_i(T) for every node.
std::vector<double> contactCapability(const trace::RateMatrix& rates, sim::SimTime window);

/// Top-k nodes by raw capability (ties broken by node id for determinism).
std::vector<NodeId> selectTopCapability(const trace::RateMatrix& rates, sim::SimTime window,
                                        std::size_t k);

/// Greedy marginal-coverage NCL selection: each pick maximizes the increase
/// of E[#nodes covered within T by at least one NCL]. Reduces to top-k when
/// coverage overlaps are negligible; differs (better) in community-
/// structured networks where top-k piles into one community.
std::vector<NodeId> selectNcls(const trace::RateMatrix& rates, sim::SimTime window,
                               std::size_t k);

/// Incrementally-maintained centrality inputs: the triangular
/// meeting-probability cache, per-node capability, and the last NCL set.
/// The incremental contactCapability/selectNcls overloads update it from a
/// list of changed nodes (every node with at least one changed rate-matrix
/// row entry — ContactRateEstimator::snapshotInto emits exactly that), so a
/// maintenance tick re-derives only what its dirty rows can affect and
/// short-circuits entirely when nothing changed. Results are bit-identical
/// to the batch functions: probabilities are cached from the same
/// meetingProbability calls and every sum runs in the same j-order.
class CentralityState {
 public:
  bool primed() const { return primed_; }
  const std::vector<double>& capability() const { return capability_; }
  const std::vector<NodeId>& ncls() const { return ncls_; }
  /// Force a full re-derivation on the next incremental call.
  void invalidate() { primed_ = false; }

 private:
  friend const std::vector<double>& contactCapability(
      CentralityState& state, const trace::RateMatrix& rates, sim::SimTime window,
      const std::vector<NodeId>& changedNodes);
  friend bool selectNcls(CentralityState& state, const trace::RateMatrix& rates,
                         sim::SimTime window, std::size_t k,
                         const std::vector<NodeId>& changedNodes);

  double& prob(NodeId i, NodeId j);
  double prob(NodeId i, NodeId j) const;
  void refresh(const trace::RateMatrix& rates, sim::SimTime window,
               const std::vector<NodeId>& changedNodes);

  std::size_t n_ = 0;
  sim::SimTime window_ = 0.0;
  std::size_t k_ = 0;
  bool primed_ = false;
  std::vector<double> probs_;       ///< upper-triangular P(i meets j in T)
  std::vector<double> capability_;  ///< C_i(T), kept current per refresh
  std::vector<NodeId> ncls_;        ///< NCL set from the last selectNcls
  std::vector<double> notCovered_;  ///< greedy scratch
  std::vector<char> isChosen_;      ///< greedy scratch
  std::vector<NodeId> scratchNcls_;
};

/// Incremental C_i(T): refresh the cached probabilities/capabilities for
/// `changedNodes` only (full derivation when unprimed or the matrix size /
/// window differ) and return the capability vector. Bit-identical to the
/// batch overload.
const std::vector<double>& contactCapability(CentralityState& state,
                                             const trace::RateMatrix& rates,
                                             sim::SimTime window,
                                             const std::vector<NodeId>& changedNodes);

/// Incremental NCL selection: when the state is primed and `changedNodes`
/// is empty (and n/window/k are unchanged) the greedy pass is skipped
/// outright; otherwise the cached probabilities are refreshed and the
/// greedy selection re-runs over them. Returns true when the resulting NCL
/// set differs from the previous call (the first call on an unprimed state
/// reports true). The set itself is `state.ncls()`.
bool selectNcls(CentralityState& state, const trace::RateMatrix& rates,
                sim::SimTime window, std::size_t k,
                const std::vector<NodeId>& changedNodes);

}  // namespace dtncache::cache
