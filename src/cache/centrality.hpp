#pragma once

/// \file centrality.hpp
/// Contact-capability centrality and Network Central Location selection.
///
/// The cooperative-caching substrate (Gao et al., INFOCOM 2011) caches data
/// at Network Central Locations: the nodes best able to meet the rest of
/// the network. A node's metric is its expected reach within a window T,
///     C_i(T) = (1 / (N-1)) · Σ_{j≠i} (1 − e^{−λ_ij·T}),
/// i.e. the mean probability of meeting a random other node within T.
/// NCLs are the top-K nodes by this metric, greedily de-clustered: picking
/// two NCLs that mostly meet the *same* nodes wastes a slot, so after the
/// first pick each candidate's marginal coverage is what counts.
///
/// Sparse rate matrices (trace/pair_backend.hpp) get a sparse evaluation
/// path throughout: capability sums and greedy coverage updates iterate a
/// node's stored neighbors only, so centrality costs O(E + nk) instead of
/// O(n²k). With a zero default (never-met) rate this is bit-identical to
/// the dense evaluation — a never-met pair contributes exactly
/// 1 − e⁰ = 0.0 to every sum and multiplies coverage by exactly 1.0, so
/// skipping it cannot change any accumulation, comparison, or tie-break.
/// A nonzero default rate keeps the sparse path correct (closed-form
/// default contribution for capability, per-pair lookup for the greedy
/// pass) but no longer byte-identical in association order.

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::cache {

/// C_i(T) for every node.
std::vector<double> contactCapability(const trace::RateMatrix& rates, sim::SimTime window);

/// Top-k nodes by raw capability (ties broken by node id for determinism).
std::vector<NodeId> selectTopCapability(const trace::RateMatrix& rates, sim::SimTime window,
                                        std::size_t k);

/// Greedy marginal-coverage NCL selection: each pick maximizes the increase
/// of E[#nodes covered within T by at least one NCL]. Reduces to top-k when
/// coverage overlaps are negligible; differs (better) in community-
/// structured networks where top-k piles into one community.
std::vector<NodeId> selectNcls(const trace::RateMatrix& rates, sim::SimTime window,
                               std::size_t k);

/// Incrementally-maintained centrality inputs: the meeting-probability
/// cache (dense triangle, or per-node sparse rows mirroring a sparse rate
/// matrix), per-node capability, and the last NCL set. The incremental
/// contactCapability/selectNcls overloads update it from a list of changed
/// nodes (every node with at least one changed rate-matrix row entry —
/// ContactRateEstimator::snapshotInto emits exactly that), so a maintenance
/// tick re-derives only what its dirty rows can affect and short-circuits
/// entirely when nothing changed. Results are bit-identical to the batch
/// functions: probabilities are cached from the same meetingProbability
/// calls and every sum runs in the same j-order.
class CentralityState {
 public:
  bool primed() const { return primed_; }
  const std::vector<double>& capability() const { return capability_; }
  const std::vector<NodeId>& ncls() const { return ncls_; }
  /// Force a full re-derivation on the next incremental call.
  void invalidate() { primed_ = false; }

  /// Approximation knob for very large sparse networks: when nonzero, a
  /// node's capability sums only its `cap` highest meeting probabilities
  /// (descending order, deterministic) instead of its whole neighbor row.
  /// Hub rows in power-law contact graphs hold most of the row mass in the
  /// head, so a few hundred terms recover the ranking at a fraction of the
  /// cost. Applies to the sparse row cache only (the dense triangle has no
  /// long rows to truncate) and never to the greedy coverage pass, which
  /// stays exact. 0 (default) = exact sums. Changing the cap invalidates.
  void setNeighborCap(std::size_t cap) {
    if (cap != neighborCap_) {
      neighborCap_ = cap;
      primed_ = false;
    }
  }
  std::size_t neighborCap() const { return neighborCap_; }

 private:
  friend const std::vector<double>& contactCapability(
      CentralityState& state, const trace::RateMatrix& rates, sim::SimTime window,
      const std::vector<NodeId>& changedNodes);
  friend bool selectNcls(CentralityState& state, const trace::RateMatrix& rates,
                         sim::SimTime window, std::size_t k,
                         const std::vector<NodeId>& changedNodes);

  double& prob(NodeId i, NodeId j);
  double prob(NodeId i, NodeId j) const;
  /// Sparse row lookup: cached P(i meets j in T), defaultP_ if not stored.
  double rowProb(NodeId i, NodeId j) const;
  void rebuildRow(NodeId i, const trace::RateMatrix& rates, sim::SimTime window);
  double rowCapability(NodeId i) const;
  void refresh(const trace::RateMatrix& rates, sim::SimTime window,
               const std::vector<NodeId>& changedNodes);

  std::size_t n_ = 0;
  sim::SimTime window_ = 0.0;
  std::size_t k_ = 0;
  bool primed_ = false;
  bool sparse_ = false;      ///< mirrors the source matrix's backend
  double defaultP_ = 0.0;    ///< sparse: P for never-stored pairs
  std::size_t neighborCap_ = 0;
  std::vector<double> probs_;  ///< dense: upper-triangular P(i meets j in T)
  /// Sparse: per node, ascending (j, P(i meets j in T)) for stored pairs.
  std::vector<std::vector<std::pair<NodeId, double>>> rowProbs_;
  std::vector<double> capability_;  ///< C_i(T), kept current per refresh
  std::vector<NodeId> ncls_;        ///< NCL set from the last selectNcls
  std::vector<double> notCovered_;  ///< greedy scratch
  std::vector<char> isChosen_;      ///< greedy scratch
  std::vector<NodeId> scratchNcls_;
  mutable std::vector<double> capScratch_;  ///< top-cap truncation scratch
};

/// Incremental C_i(T): refresh the cached probabilities/capabilities for
/// `changedNodes` only (full derivation when unprimed or the matrix size /
/// backend / window differ) and return the capability vector. Bit-identical
/// to the batch overload when the neighbor cap is 0.
const std::vector<double>& contactCapability(CentralityState& state,
                                             const trace::RateMatrix& rates,
                                             sim::SimTime window,
                                             const std::vector<NodeId>& changedNodes);

/// Incremental NCL selection: when the state is primed and `changedNodes`
/// is empty (and n/window/k are unchanged) the greedy pass is skipped
/// outright; otherwise the cached probabilities are refreshed and the
/// greedy selection re-runs over them. Returns true when the resulting NCL
/// set differs from the previous call (the first call on an unprimed state
/// reports true). The set itself is `state.ncls()`.
bool selectNcls(CentralityState& state, const trace::RateMatrix& rates,
                sim::SimTime window, std::size_t k,
                const std::vector<NodeId>& changedNodes);

}  // namespace dtncache::cache
