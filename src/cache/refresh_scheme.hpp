#pragma once

/// \file refresh_scheme.hpp
/// Extension point for cache-freshness maintenance schemes.
///
/// The cooperative-caching substrate owns caches, queries, and forwarding;
/// a RefreshScheme decides *which contacts carry which version pushes*.
/// The paper's hierarchical scheme (core/), and every baseline (baselines/),
/// implement this interface; a run wires exactly one scheme into the stack.

#include <string>

#include "data/item.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "trace/contact.hpp"

namespace dtncache::cache {

class CooperativeCache;

/// The recurring timers a scheme can own, for timerScope() classification.
enum class TimerKind {
  kMaintenance,  ///< the scheme's periodic tick (onStart-scheduled)
  kNewVersion,   ///< source version bumps (data::SourceProcess + onNewVersion)
};

class RefreshScheme {
 public:
  virtual ~RefreshScheme() = default;

  /// Scheme name for reports ("Hierarchical", "Epidemic", ...).
  virtual std::string name() const = 0;

  /// Called once, after the substrate has computed caching-node sets and
  /// (optionally) warm-started caches, before any contact is processed.
  virtual void onStart(CooperativeCache& cache) { (void)cache; }

  /// Source created a new version of `item` at time t.
  virtual void onNewVersion(CooperativeCache& cache, data::ItemId item, data::Version v,
                            sim::SimTime t) {
    (void)cache;
    (void)item;
    (void)v;
    (void)t;
  }

  /// Nodes a and b are in contact; push whatever the scheme's rules allow,
  /// through `channel` (which enforces the contact's byte budget).
  virtual void onContact(CooperativeCache& cache, NodeId a, NodeId b, sim::SimTime t,
                         net::ContactChannel& channel) = 0;

  /// Sharded-kernel contract (runner/shard_driver): a scheme is shardable
  /// when onContact neither writes shared state nor reads the estimator
  /// whenever *neither* endpoint is active — holds cached copies, buffers
  /// messages, is a source, or satisfies contactActive(). Invalidation
  /// gossips version vectors on every contact regardless of activity, so it
  /// opts out and always runs on the plain single-threaded path.
  virtual bool shardable() const { return true; }

  /// Scheme-specific half of the driver's activity predicate: true when the
  /// scheme keeps per-node state at `n` that a contact could touch even
  /// though `n` caches and buffers nothing (Flooding's relay copies).
  /// Queried by the coordinator's fence scan and — read-only — by worker
  /// threads classifying inside handleContact; implementations must not
  /// mutate on query.
  virtual bool contactActive(NodeId n) const {
    (void)n;
    return false;
  }

  /// Sharded-kernel scope of the scheme's recurring timers. kShardLocal lets
  /// the coordinator run the timer without quiescing workers, so return it
  /// only when the callback provably commutes with worker-executed boring
  /// contacts: it must not mutate stores, buffers, churn up-state, or
  /// anything contactActive()/nodeProtocolActive reads, and must not read
  /// estimator pair state (which workers write). Defaults: version bumps are
  /// shard-local (the base onNewVersion is a no-op and the source's own
  /// bookkeeping is coordinator-only — a scheme that overrides onNewVersion
  /// with state-touching work MUST also override this to return kFence for
  /// kNewVersion); maintenance ticks are fences unless a scheme proves
  /// otherwise (core::HierarchicalScheme does, in oracle-rates mode).
  virtual sim::EventScope timerScope(TimerKind kind) const {
    return kind == TimerKind::kNewVersion ? sim::EventScope::kShardLocal
                                          : sim::EventScope::kFence;
  }
};

}  // namespace dtncache::cache
