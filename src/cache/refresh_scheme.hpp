#pragma once

/// \file refresh_scheme.hpp
/// Extension point for cache-freshness maintenance schemes.
///
/// The cooperative-caching substrate owns caches, queries, and forwarding;
/// a RefreshScheme decides *which contacts carry which version pushes*.
/// The paper's hierarchical scheme (core/), and every baseline (baselines/),
/// implement this interface; a run wires exactly one scheme into the stack.

#include <string>

#include "data/item.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"
#include "trace/contact.hpp"

namespace dtncache::cache {

class CooperativeCache;

class RefreshScheme {
 public:
  virtual ~RefreshScheme() = default;

  /// Scheme name for reports ("Hierarchical", "Epidemic", ...).
  virtual std::string name() const = 0;

  /// Called once, after the substrate has computed caching-node sets and
  /// (optionally) warm-started caches, before any contact is processed.
  virtual void onStart(CooperativeCache& cache) { (void)cache; }

  /// Source created a new version of `item` at time t.
  virtual void onNewVersion(CooperativeCache& cache, data::ItemId item, data::Version v,
                            sim::SimTime t) {
    (void)cache;
    (void)item;
    (void)v;
    (void)t;
  }

  /// Nodes a and b are in contact; push whatever the scheme's rules allow,
  /// through `channel` (which enforces the contact's byte budget).
  virtual void onContact(CooperativeCache& cache, NodeId a, NodeId b, sim::SimTime t,
                         net::ContactChannel& channel) = 0;

  /// Sharded-kernel contract (runner/shard_driver): a scheme is shardable
  /// when onContact neither writes shared state nor reads the estimator
  /// whenever *neither* endpoint is active — holds cached copies, buffers
  /// messages, is a source, or satisfies contactActive(). Invalidation
  /// gossips version vectors on every contact regardless of activity, so it
  /// opts out and always runs on the plain single-threaded path.
  virtual bool shardable() const { return true; }

  /// Scheme-specific half of the driver's activity predicate: true when the
  /// scheme keeps per-node state at `n` that a contact could touch even
  /// though `n` caches and buffers nothing (Flooding's relay copies).
  /// Queried only between events, with worker threads quiescent.
  virtual bool contactActive(NodeId n) const {
    (void)n;
    return false;
  }
};

}  // namespace dtncache::cache
