#pragma once

/// \file refresh_scheme.hpp
/// Extension point for cache-freshness maintenance schemes.
///
/// The cooperative-caching substrate owns caches, queries, and forwarding;
/// a RefreshScheme decides *which contacts carry which version pushes*.
/// The paper's hierarchical scheme (core/), and every baseline (baselines/),
/// implement this interface; a run wires exactly one scheme into the stack.

#include <string>

#include "data/item.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"
#include "trace/contact.hpp"

namespace dtncache::cache {

class CooperativeCache;

class RefreshScheme {
 public:
  virtual ~RefreshScheme() = default;

  /// Scheme name for reports ("Hierarchical", "Epidemic", ...).
  virtual std::string name() const = 0;

  /// Called once, after the substrate has computed caching-node sets and
  /// (optionally) warm-started caches, before any contact is processed.
  virtual void onStart(CooperativeCache& cache) { (void)cache; }

  /// Source created a new version of `item` at time t.
  virtual void onNewVersion(CooperativeCache& cache, data::ItemId item, data::Version v,
                            sim::SimTime t) {
    (void)cache;
    (void)item;
    (void)v;
    (void)t;
  }

  /// Nodes a and b are in contact; push whatever the scheme's rules allow,
  /// through `channel` (which enforces the contact's byte budget).
  virtual void onContact(CooperativeCache& cache, NodeId a, NodeId b, sim::SimTime t,
                         net::ContactChannel& channel) = 0;
};

}  // namespace dtncache::cache
