#include "cache/centrality.hpp"

#include <algorithm>
#include <numeric>

#include "sim/assert.hpp"

namespace dtncache::cache {

std::vector<double> contactCapability(const trace::RateMatrix& rates, sim::SimTime window) {
  DTNCACHE_CHECK(window > 0.0);
  const std::size_t n = rates.nodeCount();
  std::vector<double> cap(n, 0.0);
  for (NodeId i = 0; i < n; ++i) {
    double sum = 0.0;
    for (NodeId j = 0; j < n; ++j)
      if (j != i) sum += rates.meetingProbability(i, j, window);
    cap[i] = n > 1 ? sum / static_cast<double>(n - 1) : 0.0;
  }
  return cap;
}

std::vector<NodeId> selectTopCapability(const trace::RateMatrix& rates, sim::SimTime window,
                                        std::size_t k) {
  const auto cap = contactCapability(rates, window);
  std::vector<NodeId> ids(rates.nodeCount());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&cap](NodeId a, NodeId b) {
    if (cap[a] != cap[b]) return cap[a] > cap[b];
    return a < b;
  });
  ids.resize(std::min(k, ids.size()));
  return ids;
}

std::vector<NodeId> selectNcls(const trace::RateMatrix& rates, sim::SimTime window,
                               std::size_t k) {
  const std::size_t n = rates.nodeCount();
  k = std::min(k, n);
  std::vector<NodeId> chosen;
  chosen.reserve(k);
  // notCovered[j] = P(no chosen NCL meets j within the window).
  std::vector<double> notCovered(n, 1.0);
  std::vector<bool> isChosen(n, false);

  for (std::size_t pick = 0; pick < k; ++pick) {
    NodeId best = kNoNode;
    double bestGain = -1.0;
    for (NodeId cand = 0; cand < n; ++cand) {
      if (isChosen[cand]) continue;
      double gain = 0.0;
      for (NodeId j = 0; j < n; ++j) {
        if (j == cand || isChosen[j]) continue;
        gain += notCovered[j] * rates.meetingProbability(cand, j, window);
      }
      if (gain > bestGain) {
        bestGain = gain;
        best = cand;
      }
    }
    DTNCACHE_CHECK(best != kNoNode);
    isChosen[best] = true;
    chosen.push_back(best);
    for (NodeId j = 0; j < n; ++j) {
      if (j == best) continue;
      notCovered[j] *= 1.0 - rates.meetingProbability(best, j, window);
    }
  }
  return chosen;
}

double& CentralityState::prob(NodeId i, NodeId j) {
  if (i > j) std::swap(i, j);
  return probs_[static_cast<std::size_t>(i) * (2 * n_ - i - 1) / 2 + (j - i - 1)];
}

double CentralityState::prob(NodeId i, NodeId j) const {
  if (i > j) std::swap(i, j);
  return probs_[static_cast<std::size_t>(i) * (2 * n_ - i - 1) / 2 + (j - i - 1)];
}

void CentralityState::refresh(const trace::RateMatrix& rates, sim::SimTime window,
                              const std::vector<NodeId>& changedNodes) {
  DTNCACHE_CHECK(window > 0.0);
  const std::size_t n = rates.nodeCount();
  const bool reprime = !primed_ || n_ != n || window_ != window;
  if (reprime) {
    n_ = n;
    window_ = window;
    probs_.assign(n >= 2 ? n * (n - 1) / 2 : 0, 0.0);
    capability_.assign(n, 0.0);
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = i + 1; j < n; ++j)
        prob(i, j) = rates.meetingProbability(i, j, window);
    for (NodeId i = 0; i < n; ++i) {
      double sum = 0.0;
      for (NodeId j = 0; j < n; ++j)
        if (j != i) sum += prob(i, j);
      capability_[i] = n > 1 ? sum / static_cast<double>(n - 1) : 0.0;
    }
    return;
  }
  if (changedNodes.empty()) return;
  // A changed pair reports both endpoints, so refreshing every (i, *) row
  // for i in changedNodes rewrites every stale probability (shared pairs
  // twice, to the same value) and every stale capability.
  for (const NodeId i : changedNodes)
    for (NodeId j = 0; j < n; ++j)
      if (j != i) prob(i, j) = rates.meetingProbability(i, j, window);
  for (const NodeId i : changedNodes) {
    double sum = 0.0;
    for (NodeId j = 0; j < n; ++j)
      if (j != i) sum += prob(i, j);
    capability_[i] = n > 1 ? sum / static_cast<double>(n - 1) : 0.0;
  }
}

const std::vector<double>& contactCapability(CentralityState& state,
                                             const trace::RateMatrix& rates,
                                             sim::SimTime window,
                                             const std::vector<NodeId>& changedNodes) {
  state.refresh(rates, window, changedNodes);
  state.primed_ = true;
  return state.capability_;
}

bool selectNcls(CentralityState& state, const trace::RateMatrix& rates,
                sim::SimTime window, std::size_t k,
                const std::vector<NodeId>& changedNodes) {
  const std::size_t n = rates.nodeCount();
  const bool sameShape =
      state.primed_ && state.n_ == n && state.window_ == window && state.k_ == k;
  if (sameShape && changedNodes.empty()) return false;  // short-circuit

  state.refresh(rates, window, changedNodes);
  state.k_ = k;
  k = std::min(k, n);

  // The batch greedy pass, verbatim, over the cached probabilities (same
  // doubles, same iteration order => identical picks and tie-breaks).
  auto& chosen = state.scratchNcls_;
  chosen.clear();
  state.notCovered_.assign(n, 1.0);
  state.isChosen_.assign(n, 0);
  for (std::size_t pick = 0; pick < k; ++pick) {
    NodeId best = kNoNode;
    double bestGain = -1.0;
    for (NodeId cand = 0; cand < n; ++cand) {
      if (state.isChosen_[cand]) continue;
      double gain = 0.0;
      for (NodeId j = 0; j < n; ++j) {
        if (j == cand || state.isChosen_[j]) continue;
        gain += state.notCovered_[j] * state.prob(cand, j);
      }
      if (gain > bestGain) {
        bestGain = gain;
        best = cand;
      }
    }
    DTNCACHE_CHECK(best != kNoNode);
    state.isChosen_[best] = 1;
    chosen.push_back(best);
    for (NodeId j = 0; j < n; ++j) {
      if (j == best) continue;
      state.notCovered_[j] *= 1.0 - state.prob(best, j);
    }
  }

  const bool changed = !state.primed_ || chosen != state.ncls_;
  state.ncls_.swap(chosen);
  state.primed_ = true;
  return changed;
}

}  // namespace dtncache::cache
