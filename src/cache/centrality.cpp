#include "cache/centrality.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "sim/assert.hpp"

namespace dtncache::cache {

std::vector<double> contactCapability(const trace::RateMatrix& rates, sim::SimTime window) {
  DTNCACHE_CHECK(window > 0.0);
  const std::size_t n = rates.nodeCount();
  std::vector<double> cap(n, 0.0);
  if (!rates.isSparse()) {
    for (NodeId i = 0; i < n; ++i) {
      double sum = 0.0;
      for (NodeId j = 0; j < n; ++j)
        if (j != i) sum += rates.meetingProbability(i, j, window);
      cap[i] = n > 1 ? sum / static_cast<double>(n - 1) : 0.0;
    }
    return cap;
  }
  // Sparse: stored neighbors (ascending, matching the dense j-order on the
  // pairs that exist) plus the closed-form default term for the rest. With
  // defaultRate == 0 the default term is exactly 0.0 and the two paths are
  // bit-identical.
  const double defaultP = trace::contactProbability(rates.defaultRate(), window);
  for (NodeId i = 0; i < n; ++i) {
    double sum = 0.0;
    rates.forEachNeighbor(i, [&](NodeId, double r) {
      sum += trace::contactProbability(r, window);
    });
    if (defaultP > 0.0)
      sum += defaultP * static_cast<double>(n - 1 - rates.neighborCount(i));
    cap[i] = n > 1 ? sum / static_cast<double>(n - 1) : 0.0;
  }
  return cap;
}

std::vector<NodeId> selectTopCapability(const trace::RateMatrix& rates, sim::SimTime window,
                                        std::size_t k) {
  const auto cap = contactCapability(rates, window);
  std::vector<NodeId> ids(rates.nodeCount());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&cap](NodeId a, NodeId b) {
    if (cap[a] != cap[b]) return cap[a] > cap[b];
    return a < b;
  });
  ids.resize(std::min(k, ids.size()));
  return ids;
}

std::vector<NodeId> selectNcls(const trace::RateMatrix& rates, sim::SimTime window,
                               std::size_t k) {
  const std::size_t n = rates.nodeCount();
  k = std::min(k, n);
  std::vector<NodeId> chosen;
  chosen.reserve(k);
  // notCovered[j] = P(no chosen NCL meets j within the window).
  std::vector<double> notCovered(n, 1.0);
  std::vector<bool> isChosen(n, false);

  // Sparse fast path: with a zero default rate a candidate's gain has
  // nonzero terms only at stored neighbors (P == 0.0 elsewhere), and the
  // coverage update multiplies non-neighbors by exactly 1.0 — both loops
  // shrink to the adjacency row without changing a single bit. A nonzero
  // default keeps the generic per-pair loop (correct, dense-cost).
  const bool sparseFast =
      rates.isSparse() && trace::contactProbability(rates.defaultRate(), window) == 0.0;

  for (std::size_t pick = 0; pick < k; ++pick) {
    NodeId best = kNoNode;
    double bestGain = -1.0;
    for (NodeId cand = 0; cand < n; ++cand) {
      if (isChosen[cand]) continue;
      double gain = 0.0;
      if (sparseFast) {
        rates.forEachNeighbor(cand, [&](NodeId j, double r) {
          if (!isChosen[j])
            gain += notCovered[j] * trace::contactProbability(r, window);
        });
      } else {
        for (NodeId j = 0; j < n; ++j) {
          if (j == cand || isChosen[j]) continue;
          gain += notCovered[j] * rates.meetingProbability(cand, j, window);
        }
      }
      if (gain > bestGain) {
        bestGain = gain;
        best = cand;
      }
    }
    DTNCACHE_CHECK(best != kNoNode);
    isChosen[best] = true;
    chosen.push_back(best);
    if (sparseFast) {
      rates.forEachNeighbor(best, [&](NodeId j, double r) {
        notCovered[j] *= 1.0 - trace::contactProbability(r, window);
      });
    } else {
      for (NodeId j = 0; j < n; ++j) {
        if (j == best) continue;
        notCovered[j] *= 1.0 - rates.meetingProbability(best, j, window);
      }
    }
  }
  return chosen;
}

double& CentralityState::prob(NodeId i, NodeId j) {
  if (i > j) std::swap(i, j);
  return probs_[static_cast<std::size_t>(i) * (2 * n_ - i - 1) / 2 + (j - i - 1)];
}

double CentralityState::prob(NodeId i, NodeId j) const {
  if (i > j) std::swap(i, j);
  return probs_[static_cast<std::size_t>(i) * (2 * n_ - i - 1) / 2 + (j - i - 1)];
}

double CentralityState::rowProb(NodeId i, NodeId j) const {
  const auto& row = rowProbs_[i];
  const auto it = std::lower_bound(
      row.begin(), row.end(), j,
      [](const std::pair<NodeId, double>& e, NodeId id) { return e.first < id; });
  return (it != row.end() && it->first == j) ? it->second : defaultP_;
}

void CentralityState::rebuildRow(NodeId i, const trace::RateMatrix& rates,
                                 sim::SimTime window) {
  auto& row = rowProbs_[i];
  row.clear();
  rates.forEachNeighbor(i, [&](NodeId j, double r) {
    row.emplace_back(j, trace::contactProbability(r, window));
  });
}

double CentralityState::rowCapability(NodeId i) const {
  const auto& row = rowProbs_[i];
  double sum = 0.0;
  if (neighborCap_ > 0 && row.size() > neighborCap_) {
    // Truncated sum: the cap highest probabilities, added in descending
    // order (deterministic — equal values commute bit-exactly).
    capScratch_.clear();
    for (const auto& e : row) capScratch_.push_back(e.second);
    std::nth_element(capScratch_.begin(), capScratch_.begin() + neighborCap_,
                     capScratch_.end(), std::greater<double>());
    std::sort(capScratch_.begin(), capScratch_.begin() + neighborCap_,
              std::greater<double>());
    for (std::size_t t = 0; t < neighborCap_; ++t) sum += capScratch_[t];
  } else {
    for (const auto& e : row) sum += e.second;
  }
  if (defaultP_ > 0.0)
    sum += defaultP_ * static_cast<double>(n_ - 1 - row.size());
  return n_ > 1 ? sum / static_cast<double>(n_ - 1) : 0.0;
}

void CentralityState::refresh(const trace::RateMatrix& rates, sim::SimTime window,
                              const std::vector<NodeId>& changedNodes) {
  DTNCACHE_CHECK(window > 0.0);
  const std::size_t n = rates.nodeCount();
  const double defaultP =
      rates.isSparse() ? trace::contactProbability(rates.defaultRate(), window) : 0.0;
  const bool reprime = !primed_ || n_ != n || window_ != window ||
                       sparse_ != rates.isSparse() || defaultP_ != defaultP;
  if (reprime) {
    n_ = n;
    window_ = window;
    sparse_ = rates.isSparse();
    defaultP_ = defaultP;
    capability_.assign(n, 0.0);
    if (sparse_) {
      probs_.clear();
      probs_.shrink_to_fit();
      rowProbs_.resize(n);
      for (NodeId i = 0; i < n; ++i) rebuildRow(i, rates, window);
      for (NodeId i = 0; i < n; ++i) capability_[i] = rowCapability(i);
      return;
    }
    rowProbs_.clear();
    rowProbs_.shrink_to_fit();
    probs_.assign(n >= 2 ? n * (n - 1) / 2 : 0, 0.0);
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = i + 1; j < n; ++j)
        prob(i, j) = rates.meetingProbability(i, j, window);
    for (NodeId i = 0; i < n; ++i) {
      double sum = 0.0;
      for (NodeId j = 0; j < n; ++j)
        if (j != i) sum += prob(i, j);
      capability_[i] = n > 1 ? sum / static_cast<double>(n - 1) : 0.0;
    }
    return;
  }
  if (changedNodes.empty()) return;
  // A changed pair reports both endpoints, so refreshing every (i, *) row
  // for i in changedNodes rewrites every stale probability (shared pairs
  // twice, to the same value) and every stale capability.
  if (sparse_) {
    for (const NodeId i : changedNodes) rebuildRow(i, rates, window);
    for (const NodeId i : changedNodes) capability_[i] = rowCapability(i);
    return;
  }
  for (const NodeId i : changedNodes)
    for (NodeId j = 0; j < n; ++j)
      if (j != i) prob(i, j) = rates.meetingProbability(i, j, window);
  for (const NodeId i : changedNodes) {
    double sum = 0.0;
    for (NodeId j = 0; j < n; ++j)
      if (j != i) sum += prob(i, j);
    capability_[i] = n > 1 ? sum / static_cast<double>(n - 1) : 0.0;
  }
}

const std::vector<double>& contactCapability(CentralityState& state,
                                             const trace::RateMatrix& rates,
                                             sim::SimTime window,
                                             const std::vector<NodeId>& changedNodes) {
  state.refresh(rates, window, changedNodes);
  state.primed_ = true;
  return state.capability_;
}

bool selectNcls(CentralityState& state, const trace::RateMatrix& rates,
                sim::SimTime window, std::size_t k,
                const std::vector<NodeId>& changedNodes) {
  const std::size_t n = rates.nodeCount();
  const bool sameShape =
      state.primed_ && state.n_ == n && state.window_ == window && state.k_ == k;
  if (sameShape && changedNodes.empty()) return false;  // short-circuit

  state.refresh(rates, window, changedNodes);
  state.k_ = k;
  k = std::min(k, n);

  // The batch greedy pass, verbatim, over the cached probabilities (same
  // doubles, same iteration order => identical picks and tie-breaks). The
  // sparse row cache with a zero default shrinks both inner loops to the
  // adjacency rows without changing a bit — see the batch selectNcls note.
  const bool sparseFast = state.sparse_ && state.defaultP_ == 0.0;
  auto& chosen = state.scratchNcls_;
  chosen.clear();
  state.notCovered_.assign(n, 1.0);
  state.isChosen_.assign(n, 0);
  for (std::size_t pick = 0; pick < k; ++pick) {
    NodeId best = kNoNode;
    double bestGain = -1.0;
    for (NodeId cand = 0; cand < n; ++cand) {
      if (state.isChosen_[cand]) continue;
      double gain = 0.0;
      if (sparseFast) {
        for (const auto& e : state.rowProbs_[cand])
          if (!state.isChosen_[e.first]) gain += state.notCovered_[e.first] * e.second;
      } else if (state.sparse_) {
        for (NodeId j = 0; j < n; ++j) {
          if (j == cand || state.isChosen_[j]) continue;
          gain += state.notCovered_[j] * state.rowProb(cand, j);
        }
      } else {
        for (NodeId j = 0; j < n; ++j) {
          if (j == cand || state.isChosen_[j]) continue;
          gain += state.notCovered_[j] * state.prob(cand, j);
        }
      }
      if (gain > bestGain) {
        bestGain = gain;
        best = cand;
      }
    }
    DTNCACHE_CHECK(best != kNoNode);
    state.isChosen_[best] = 1;
    chosen.push_back(best);
    if (sparseFast) {
      for (const auto& e : state.rowProbs_[best])
        state.notCovered_[e.first] *= 1.0 - e.second;
    } else if (state.sparse_) {
      for (NodeId j = 0; j < n; ++j) {
        if (j == best) continue;
        state.notCovered_[j] *= 1.0 - state.rowProb(best, j);
      }
    } else {
      for (NodeId j = 0; j < n; ++j) {
        if (j == best) continue;
        state.notCovered_[j] *= 1.0 - state.prob(best, j);
      }
    }
  }

  const bool changed = !state.primed_ || chosen != state.ncls_;
  state.ncls_.swap(chosen);
  state.primed_ = true;
  return changed;
}

}  // namespace dtncache::cache
