#include "cache/centrality.hpp"

#include <algorithm>
#include <numeric>

#include "sim/assert.hpp"

namespace dtncache::cache {

std::vector<double> contactCapability(const trace::RateMatrix& rates, sim::SimTime window) {
  DTNCACHE_CHECK(window > 0.0);
  const std::size_t n = rates.nodeCount();
  std::vector<double> cap(n, 0.0);
  for (NodeId i = 0; i < n; ++i) {
    double sum = 0.0;
    for (NodeId j = 0; j < n; ++j)
      if (j != i) sum += rates.meetingProbability(i, j, window);
    cap[i] = n > 1 ? sum / static_cast<double>(n - 1) : 0.0;
  }
  return cap;
}

std::vector<NodeId> selectTopCapability(const trace::RateMatrix& rates, sim::SimTime window,
                                        std::size_t k) {
  const auto cap = contactCapability(rates, window);
  std::vector<NodeId> ids(rates.nodeCount());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&cap](NodeId a, NodeId b) {
    if (cap[a] != cap[b]) return cap[a] > cap[b];
    return a < b;
  });
  ids.resize(std::min(k, ids.size()));
  return ids;
}

std::vector<NodeId> selectNcls(const trace::RateMatrix& rates, sim::SimTime window,
                               std::size_t k) {
  const std::size_t n = rates.nodeCount();
  k = std::min(k, n);
  std::vector<NodeId> chosen;
  chosen.reserve(k);
  // notCovered[j] = P(no chosen NCL meets j within the window).
  std::vector<double> notCovered(n, 1.0);
  std::vector<bool> isChosen(n, false);

  for (std::size_t pick = 0; pick < k; ++pick) {
    NodeId best = kNoNode;
    double bestGain = -1.0;
    for (NodeId cand = 0; cand < n; ++cand) {
      if (isChosen[cand]) continue;
      double gain = 0.0;
      for (NodeId j = 0; j < n; ++j) {
        if (j == cand || isChosen[j]) continue;
        gain += notCovered[j] * rates.meetingProbability(cand, j, window);
      }
      if (gain > bestGain) {
        bestGain = gain;
        best = cand;
      }
    }
    DTNCACHE_CHECK(best != kNoNode);
    isChosen[best] = true;
    chosen.push_back(best);
    for (NodeId j = 0; j < n; ++j) {
      if (j == best) continue;
      notCovered[j] *= 1.0 - rates.meetingProbability(best, j, window);
    }
  }
  return chosen;
}

}  // namespace dtncache::cache
