#include "cache/coop_cache.hpp"

#include <algorithm>

#include "cache/centrality.hpp"
#include "cache/contact_protocol.hpp"
#include "obs/alloc_hook.hpp"
#include "sim/assert.hpp"

namespace dtncache::cache {

CooperativeCache::CooperativeCache(sim::Simulator& simulator, net::Network& network,
                                   const data::Catalog& catalog,
                                   trace::ContactRateEstimator& estimator,
                                   metrics::MetricsCollector& collector,
                                   const trace::RateMatrix& planningRates,
                                   CoopCacheConfig config)
    : simulator_(simulator),
      network_(network),
      catalog_(catalog),
      estimator_(estimator),
      collector_(collector),
      config_(config),
      nodeCount_(network.nodeCount()) {
  DTNCACHE_CHECK(nodeCount_ >= 2);
  DTNCACHE_CHECK(!catalog_.empty());

  auto itemSetSize = [this](data::ItemId item) {
    return config_.cachingNodesPerItemOverride.empty()
               ? config_.cachingNodesPerItem
               : config_.cachingNodesPerItemOverride[item];
  };
  if (!config_.cachingNodesPerItemOverride.empty()) {
    DTNCACHE_CHECK_MSG(config_.cachingNodesPerItemOverride.size() == catalog_.size(),
                       "per-item caching-node override must cover every item");
  }
  std::size_t maxSetSize = 0;
  for (data::ItemId item = 0; item < catalog_.size(); ++item)
    maxSetSize = std::max(maxSetSize, itemSetSize(item));
  DTNCACHE_CHECK(maxSetSize >= 1);
  DTNCACHE_CHECK_MSG(maxSetSize < nodeCount_,
                     "need at least one non-caching node as the source");

  stores_.reserve(nodeCount_);
  buffers_.reserve(nodeCount_);
  for (std::size_t i = 0; i < nodeCount_; ++i) {
    stores_.emplace_back(config_.cacheCapacityBytes);
    buffers_.emplace_back(config_.bufferCapacityBytes);
  }

  // Central ordering once; +1 head-room in case a source must be skipped.
  centralOrder_ = selectNcls(planningRates, config_.centralityWindow,
                             std::min(nodeCount_, maxSetSize + 1));

  cachingNodes_.resize(catalog_.size());
  for (data::ItemId item = 0; item < catalog_.size(); ++item) {
    const NodeId source = catalog_.spec(item).source;
    auto& set = cachingNodes_[item];
    for (NodeId n : centralOrder_) {
      if (n == source) continue;
      set.push_back(n);
      if (set.size() == itemSetSize(item)) break;
    }
    DTNCACHE_CHECK(set.size() == itemSetSize(item));
  }

  handshakeHalf_ = ContactProtocol::handshakeBytes(catalog_.size(),
                                                   config_.versionVectorBytesPerItem);

  sourceNode_ = core::DenseBitset(nodeCount_);
  for (data::ItemId item = 0; item < catalog_.size(); ++item)
    sourceNode_.set(catalog_.spec(item).source);
}

void CooperativeCache::setScheme(RefreshScheme* scheme) {
  DTNCACHE_CHECK(!started_);
  scheme_ = scheme;
}

void CooperativeCache::setObservability(obs::Tracer* tracer, obs::Registry* registry) {
  tracer_ = tracer;
  if (registry == nullptr) {
    ctrHandshakeTruncated_ = ctrPushDelivered_ = ctrPushNoop_ = ctrPushDenied_ =
        ctrInstallInserted_ = ctrInstallUpgraded_ = ctrInstallEvicted_ =
            ctrQueryLocalHit_ = ctrQuerySprayed_ = ctrReplyDelivered_ =
                ctrFenceContacts_ = ctrBoringContacts_ = ctrFenceFromExpiredOnly_ =
                    ctrHotPathAllocs_ = nullptr;
    return;
  }
  ctrHandshakeTruncated_ = &registry->counter("cache.handshake.truncated");
  ctrPushDelivered_ = &registry->counter("cache.push.delivered");
  ctrPushNoop_ = &registry->counter("cache.push.noop");
  ctrPushDenied_ = &registry->counter("cache.push.denied");
  ctrInstallInserted_ = &registry->counter("cache.install.inserted");
  ctrInstallUpgraded_ = &registry->counter("cache.install.upgraded");
  ctrInstallEvicted_ = &registry->counter("cache.install.evicted");
  ctrQueryLocalHit_ = &registry->counter("cache.query.local_hit");
  ctrQuerySprayed_ = &registry->counter("cache.query.sprayed");
  ctrReplyDelivered_ = &registry->counter("cache.reply.delivered");
  ctrFenceContacts_ = &registry->counter("shard.fence_contacts");
  ctrBoringContacts_ = &registry->counter("shard.boring_contacts");
  ctrFenceFromExpiredOnly_ = &registry->counter("shard.fence_from_expired_only");
  if (obs::allocHookEnabled())
    ctrHotPathAllocs_ = &registry->counter("cache.hot_path.allocs");
}

void CooperativeCache::start(data::SourceProcess& sources, data::QueryWorkload* workload,
                             sim::SimTime horizon) {
  DTNCACHE_CHECK_MSG(!started_, "CooperativeCache::start called twice");
  DTNCACHE_CHECK_MSG(scheme_ != nullptr, "no refresh scheme installed");
  started_ = true;

  const sim::SimTime now = simulator_.now();
  if (config_.warmStart) {
    for (data::ItemId item = 0; item < catalog_.size(); ++item) {
      const data::Version v = catalog_.clock(item).currentVersion(now);
      for (NodeId n : cachingNodes_[item]) installCopy(n, item, v, now);
    }
  } else {
    emitPlacement(now);
  }

  sources.addListener([this](data::ItemId item, data::Version v, sim::SimTime t) {
    handleNewVersion(item, v, t);
  });
  if (workload != nullptr) {
    workload->addListener([this](const data::Query& q) { issueQuery(q); });
  }
  network_.start([this](NodeId a, NodeId b, sim::SimTime t, sim::SimTime duration,
                        net::ContactChannel& channel) {
    handleContact(a, b, t, duration, channel);
  });
  scheduleSampling(horizon);
  scheme_->onStart(*this);
}

const std::vector<NodeId>& CooperativeCache::cachingNodesOf(data::ItemId item) const {
  DTNCACHE_CHECK(item < cachingNodes_.size());
  return cachingNodes_[item];
}

bool CooperativeCache::isCachingNode(NodeId node, data::ItemId item) const {
  const auto& set = cachingNodesOf(item);
  return std::find(set.begin(), set.end(), node) != set.end();
}

std::optional<data::Version> CooperativeCache::heldVersion(NodeId n, data::ItemId item,
                                                           sim::SimTime t) const {
  if (n == sourceOf(item)) return catalog_.clock(item).currentVersion(t);
  // An expired copy cannot answer queries and (being strictly older than any
  // valid version — constant lifetime) could never win a push, so it is not
  // a version the node "can provide". Filtering it here keeps heldVersion
  // consistent with the activity fence, which classifies expired-only
  // holders as inert.
  if (const CacheEntry* e = stores_[n].find(item);
      e != nullptr && catalog_.clock(item).isValid(e->version, t))
    return e->version;
  return std::nullopt;
}

bool CooperativeCache::pushVersion(NodeId from, NodeId to, data::ItemId item, sim::SimTime t,
                                   net::ContactChannel& channel, net::Traffic category) {
  const auto have = heldVersion(from, item, t);
  if (!have) return false;
  return pushSpecificVersion(from, to, item, *have, t, channel, category);
}

bool CooperativeCache::pushSpecificVersion(NodeId from, NodeId to, data::ItemId item,
                                           data::Version version, sim::SimTime t,
                                           net::ContactChannel& channel,
                                           net::Traffic category) {
  DTNCACHE_CHECK_MSG(version <= catalog_.clock(item).currentVersion(t),
                     "scheme pushed a version from the future");
  // Expired content is dead weight (it can answer nothing downstream);
  // refusing it here also keeps this path consistent with heldVersion's
  // filter, so a receiver's own expired copy never blocks a valid push.
  if (!catalog_.clock(item).isValid(version, t)) return false;
  switch (ContactProtocol::decidePush(heldVersion(to, item, t), version,
                                      isCachingNode(to, item))) {
    case PushVerdict::kNotCachingNode:
      return false;
    case PushVerdict::kReceiverCurrent:  // handshake told us: no-op
      if (ctrPushNoop_ != nullptr) ctrPushNoop_->add();
      return false;
    case PushVerdict::kSend:
      break;
  }
  const std::uint32_t bytes = ContactProtocol::pushWireBytes(catalog_.spec(item).sizeBytes);
  if (!channel.transfer(category, bytes, from)) {
    if (ctrPushDenied_ != nullptr) ctrPushDenied_->add();
    DTNCACHE_EVENT(tracer_, obs::EventKind::kPushDenied, t, {"from", from}, {"to", to},
                   {"item", item}, {"version", version}, {"bytes", bytes});
    return false;
  }
  if (ctrPushDelivered_ != nullptr) ctrPushDelivered_->add();
  DTNCACHE_EVENT(tracer_, obs::EventKind::kPush, t, {"from", from}, {"to", to},
                 {"item", item}, {"version", version},
                 {"cat", net::trafficName(category)});
  installCopy(to, item, version, t);
  return true;
}

void CooperativeCache::injectMessage(NodeId at, net::Message m, sim::SimTime now) {
  DTNCACHE_CHECK(at < nodeCount_);
  if (m.id == 0) m.id = nextMessageId();
  buffers_[at].add(m, now);
}

CacheStore& CooperativeCache::storeOf(NodeId n) {
  DTNCACHE_CHECK(n < nodeCount_);
  return stores_[n];
}

const CacheStore& CooperativeCache::storeOf(NodeId n) const {
  DTNCACHE_CHECK(n < nodeCount_);
  return stores_[n];
}

net::MessageBuffer& CooperativeCache::bufferOf(NodeId n) {
  DTNCACHE_CHECK(n < nodeCount_);
  return buffers_[n];
}

const net::MessageBuffer& CooperativeCache::bufferOf(NodeId n) const {
  DTNCACHE_CHECK(n < nodeCount_);
  return buffers_[n];
}

double CooperativeCache::validFraction(sim::SimTime t) const {
  std::size_t total = 0;
  std::size_t valid = 0;
  for (NodeId n = 0; n < nodeCount_; ++n) {
    stores_[n].forEachEntry([&](const CacheEntry& e) {
      ++total;
      if (catalog_.clock(e.item).isValid(e.version, t)) ++valid;
    });
  }
  return sim::ratio(valid, total);
}

// ---- internals --------------------------------------------------------------

void CooperativeCache::installCopy(NodeId at, data::ItemId item, data::Version v,
                                   sim::SimTime t) {
  const auto result = stores_[at].insert(item, v, catalog_.spec(item).sizeBytes, t,
                                         catalog_.clock(item).expiryTime(v));
  switch (result.kind) {
    case InsertResult::Kind::kInserted:
      collector_.copyInstalled(item, v, t);
      if (ctrInstallInserted_ != nullptr) ctrInstallInserted_->add();
      DTNCACHE_EVENT(tracer_, obs::EventKind::kInstall, t, {"at", at}, {"item", item},
                     {"version", v}, {"how", "insert"});
      break;
    case InsertResult::Kind::kUpgraded:
      collector_.copyUpgraded(item, result.previousVersion, v, t);
      if (ctrInstallUpgraded_ != nullptr) ctrInstallUpgraded_->add();
      DTNCACHE_EVENT(tracer_, obs::EventKind::kInstall, t, {"at", at}, {"item", item},
                     {"version", v}, {"how", "upgrade"});
      break;
    case InsertResult::Kind::kAlreadyCurrent:
    case InsertResult::Kind::kRejected:
      break;
  }
  for (const CacheEntry& victim : result.evicted) {
    collector_.copyEvicted(victim.item, victim.version, t);
    if (ctrInstallEvicted_ != nullptr) ctrInstallEvicted_->add();
  }
}

void CooperativeCache::handleNewVersion(data::ItemId item, data::Version v, sim::SimTime t) {
  collector_.versionBumped(item, t);
  DTNCACHE_EVENT(tracer_, obs::EventKind::kVersionBump, t, {"item", item}, {"version", v});
  scheme_->onNewVersion(*this, item, v, t);
}

void CooperativeCache::handleQuery(const data::Query& q) {
  collector_.queryIssued(q);
  const sim::SimTime t = q.issueTime;
  const auto& clock = catalog_.clock(q.item);
  DTNCACHE_EVENT(tracer_, obs::EventKind::kQuery, t, {"node", q.requester},
                 {"item", q.item}, {"query", q.id});

  // Local answer: own source, or a valid cached copy.
  if (q.requester == sourceOf(q.item)) {
    collector_.queryAnswered(q.id, t, true, true, true);
    if (ctrQueryLocalHit_ != nullptr) ctrQueryLocalHit_->add();
    DTNCACHE_EVENT(tracer_, obs::EventKind::kQueryLocalHit, t, {"node", q.requester},
                   {"item", q.item}, {"query", q.id}, {"fresh", true});
    return;
  }
  if (const CacheEntry* e = stores_[q.requester].find(q.item);
      e != nullptr && clock.isValid(e->version, t)) {
    stores_[q.requester].recordAccess(q.item, t);
    const bool fresh = clock.isFresh(e->version, t);
    collector_.queryAnswered(q.id, t, fresh, true, true);
    if (ctrQueryLocalHit_ != nullptr) ctrQueryLocalHit_->add();
    DTNCACHE_EVENT(tracer_, obs::EventKind::kQueryLocalHit, t, {"node", q.requester},
                   {"item", q.item}, {"query", q.id}, {"fresh", fresh});
    return;
  }
  if (ctrQuerySprayed_ != nullptr) ctrQuerySprayed_->add();

  net::Message m;
  m.id = nextMessageId();
  m.kind = net::MessageKind::kQuery;
  m.item = q.item;
  m.origin = q.requester;
  m.requester = q.requester;
  m.queryId = q.id;
  m.createdAt = t;
  m.deadline = q.deadline;
  m.copiesLeft = config_.forwarding.initialCopies;
  buffers_[q.requester].add(m, t);
}

namespace {
/// Accumulates the allocations a handleContact performs into the hot-path
/// counter on scope exit (covers the truncated-handshake early return).
/// No-op outside DTNCACHE_ALLOC_HOOK builds: the counter is never
/// registered there and threadAllocCount() is constant 0.
struct HotPathAllocProbe {
  explicit HotPathAllocProbe(obs::Counter* ctr)
      : ctr_(ctr), start_(obs::threadAllocCount()) {}
  ~HotPathAllocProbe() {
    if (ctr_ != nullptr) ctr_->add(obs::threadAllocCount() - start_);
  }
  obs::Counter* ctr_;
  std::uint64_t start_;
};
}  // namespace

void CooperativeCache::handleContact(NodeId a, NodeId b, sim::SimTime t,
                                     sim::SimTime duration, net::ContactChannel& channel) {
  (void)duration;
  const HotPathAllocProbe allocProbe(ctrHotPathAllocs_);
  estimator_.recordContact(a, b, t);

  // Fence-density accounting, computed here — not in the sharded driver — so
  // both kernels count the identical contact population (lost/suppressed
  // contacts reach neither) and the ctr.* columns stay byte-identical across
  // shard counts. On worker threads this reads only watermarks and bitsets
  // frozen since the last serial event at key < this contact's key, which is
  // exactly the state the classification is defined against.
  if (ctrFenceContacts_ != nullptr) {
    if (nodeProtocolActive(a, t) || nodeProtocolActive(b, t)) {
      ctrFenceContacts_->add();
    } else {
      ctrBoringContacts_->add();
      // Boring *because* the watermarks see through expired-only content —
      // the contacts the fence no longer serializes.
      if (holdsOnlyExpiredContent(a, t) || holdsOnlyExpiredContent(b, t))
        ctrFenceFromExpiredOnly_->add();
    }
  }

  // Metadata handshake: both sides exchange version vectors (and piggyback
  // rate gossip). Accounted per direction (cost precomputed at construction
  // — it depends only on the catalog size), and must fit before anything
  // else moves.
  if (!channel.transfer(net::Traffic::kControl, handshakeHalf_, a) ||
      !channel.transfer(net::Traffic::kControl, handshakeHalf_, b)) {
    if (ctrHandshakeTruncated_ != nullptr) ctrHandshakeTruncated_->add();
    DTNCACHE_EVENT(tracer_, obs::EventKind::kHandshakeTruncated, t, {"a", a}, {"b", b},
                   {"need", handshakeHalf_});
    return;
  }

  // Freshness maintenance gets priority on the contact's bytes: stale data
  // serves nobody, and the paper's schemes are all push-on-contact.
  scheme_->onContact(*this, a, b, t, channel);

  // Two rounds so a reply (or pull response) generated while processing one
  // side's buffer is handed over before the contact ends — contacts last
  // minutes, easily enough for a request/response round trip.
  for (int round = 0; round < 2; ++round) {
    forwardBuffered(a, b, t, channel);
    forwardBuffered(b, a, t, channel);
  }
}

bool CooperativeCache::canAnswer(NodeId node, data::ItemId item, sim::SimTime t) const {
  if (node == sourceOf(item)) return true;
  const CacheEntry* e = stores_[node].find(item);
  return e != nullptr && catalog_.clock(item).isValid(e->version, t);
}

void CooperativeCache::makeReply(NodeId answerer, const net::Message& query, sim::SimTime t) {
  const auto held = heldVersion(answerer, query.item, t);
  DTNCACHE_CHECK(held.has_value());
  if (answerer != sourceOf(query.item)) stores_[answerer].recordAccess(query.item, t);

  net::Message r;
  r.id = nextMessageId();
  r.kind = net::MessageKind::kReply;
  r.item = query.item;
  r.version = *held;
  r.dst = query.requester;
  r.origin = answerer;
  r.requester = query.requester;
  r.queryId = query.queryId;
  r.createdAt = t;
  r.deadline = query.deadline;
  r.copiesLeft = config_.forwarding.initialCopies;
  r.payloadBytes = catalog_.spec(query.item).sizeBytes;
  buffers_[answerer].add(r, t);
}

void CooperativeCache::deliverReply(const net::Message& reply, sim::SimTime t) {
  const auto& clock = catalog_.clock(reply.item);
  const bool fresh = clock.isFresh(reply.version, t);
  const bool valid = clock.isValid(reply.version, t);
  collector_.queryAnswered(reply.queryId, t, fresh, valid, false);
  if (ctrReplyDelivered_ != nullptr) ctrReplyDelivered_->add();
  DTNCACHE_EVENT(tracer_, obs::EventKind::kReplyDelivered, t, {"node", reply.requester},
                 {"item", reply.item}, {"version", reply.version},
                 {"query", reply.queryId}, {"fresh", fresh}, {"valid", valid},
                 {"delay", t - reply.createdAt});
  satisfied_.set(reply.queryId);
  // A requester that is itself a caching node keeps the data it just got.
  if (isCachingNode(reply.requester, reply.item))
    installCopy(reply.requester, reply.item, reply.version, t);
}

double CooperativeCache::utilityToNode(NodeId from, NodeId dst, sim::SimTime t) const {
  return estimator_.rate(from, dst, t);
}

double CooperativeCache::utilityToCachingSet(NodeId from, data::ItemId item,
                                             sim::SimTime t) const {
  double best = estimator_.rate(from, sourceOf(item), t);
  for (NodeId n : cachingNodesOf(item)) best = std::max(best, estimator_.rate(from, n, t));
  return best;
}

void CooperativeCache::forwardBuffered(NodeId from, NodeId to, sim::SimTime t,
                                       net::ContactChannel& channel) {
  auto& buf = buffers_[from];
  // Nothing live: done, *without* purging. The watermark check keeps this
  // path free of any mutation — the sharded kernel runs contacts between
  // inert nodes (empty or expired-only buffers) on worker threads
  // (runner/shard_driver), and lingering expired messages are invisible to
  // every predicate below. Purge only when there is real work to walk.
  if (!buf.hasLive(t)) return;
  buf.purgeExpired(t);

  toRemoveScratch_.clear();
  auto& toRemove = toRemoveScratch_;
  // Walk by slot cursor: new messages land in the *peer's* buffer, and
  // removals are deferred, so the walk is stable during the loop.
  for (std::uint32_t slot = buf.firstSlot(); slot != net::MessageBuffer::kNil;
       slot = buf.nextSlot(slot)) {
    net::Message& m = buf.at(slot);
    switch (m.kind) {
      case net::MessageKind::kQuery: {
        // Note: even when the requester has already been answered, in-flight
        // query copies keep propagating — the carriers cannot know — and
        // purge at the deadline. The collector ignores duplicate answers.
        const bool answeredHere = answeredAt_.test(answeredKey(m.queryId, to));
        if (!answeredHere && canAnswer(to, m.item, t) && to != m.requester) {
          if (!channel.transfer(net::Traffic::kQuery, m.wireBytes(), from)) break;
          answeredAt_.set(answeredKey(m.queryId, to));
          makeReply(to, m, t);
          toRemove.push_back(m.id);  // this copy's job is done
          continue;
        }
        // Spray toward the item's caching set.
        const double mine = utilityToCachingSet(from, m.item, t);
        const double theirs = utilityToCachingSet(to, m.item, t);
        const bool better = theirs > mine * config_.forwarding.improvementFactor && theirs > 0.0;
        if (better && m.copiesLeft >= 1 && m.hopCount < config_.forwarding.maxHops &&
            !buffers_[to].contains(m.id)) {
          if (!channel.transfer(net::Traffic::kQuery, m.wireBytes(), from)) break;
          const std::uint32_t share = net::sprayShare(m.copiesLeft);
          net::Message copy = m;
          copy.copiesLeft = share;
          ++copy.hopCount;
          buffers_[to].add(copy, t);
          m.copiesLeft -= share;
          if (m.copiesLeft == 0) toRemove.push_back(m.id);
        }
        break;
      }
      case net::MessageKind::kReply:
      case net::MessageKind::kDataCopy: {
        const net::Traffic cat =
            m.kind == net::MessageKind::kReply ? net::Traffic::kReply : m.category;
        if (to == m.dst) {
          if (!channel.transfer(cat, m.wireBytes(), from)) break;
          if (m.kind == net::MessageKind::kReply) {
            deliverReply(m, t);
          } else {
            installCopy(m.dst, m.item, m.version, t);
          }
          toRemove.push_back(m.id);
          continue;
        }
        if (net::betterCarrier(estimator_, from, to, m.dst, t,
                               config_.forwarding.improvementFactor) &&
            m.hopCount < config_.forwarding.maxHops && !buffers_[to].contains(m.id)) {
          if (!channel.transfer(cat, m.wireBytes(), from)) break;
          const std::uint32_t share = net::sprayShare(m.copiesLeft);
          net::Message copy = m;
          copy.copiesLeft = share;
          ++copy.hopCount;
          buffers_[to].add(copy, t);
          m.copiesLeft -= share;
          if (m.copiesLeft == 0) toRemove.push_back(m.id);
        }
        break;
      }
      case net::MessageKind::kPull: {
        if (to == m.dst) {  // reached the source: answer with the live version
          if (!channel.transfer(net::Traffic::kPull, m.wireBytes(), from)) break;
          net::Message r;
          r.id = nextMessageId();
          r.kind = net::MessageKind::kDataCopy;
          r.item = m.item;
          r.version = catalog_.clock(m.item).currentVersion(t);
          r.dst = m.origin;
          r.origin = to;
          r.createdAt = t;
          r.deadline = m.deadline;
          r.copiesLeft = config_.forwarding.initialCopies;
          r.payloadBytes = catalog_.spec(m.item).sizeBytes;
          r.category = net::Traffic::kRefresh;  // pull responses are refresh traffic
          buffers_[to].add(r, t);
          toRemove.push_back(m.id);
          continue;
        }
        if (net::betterCarrier(estimator_, from, to, m.dst, t,
                               config_.forwarding.improvementFactor) &&
            m.hopCount < config_.forwarding.maxHops && !buffers_[to].contains(m.id)) {
          if (!channel.transfer(net::Traffic::kPull, m.wireBytes(), from)) break;
          const std::uint32_t share = net::sprayShare(m.copiesLeft);
          net::Message copy = m;
          copy.copiesLeft = share;
          ++copy.hopCount;
          buffers_[to].add(copy, t);
          m.copiesLeft -= share;
          if (m.copiesLeft == 0) toRemove.push_back(m.id);
        }
        break;
      }
    }
  }

  for (net::MessageId id : toRemove) buf.removeById(id);
}

void CooperativeCache::emitPlacement(sim::SimTime t) {
  for (data::ItemId item = 0; item < catalog_.size(); ++item) {
    const NodeId source = sourceOf(item);
    const data::Version v = catalog_.clock(item).currentVersion(t);
    for (NodeId target : cachingNodes_[item]) {
      net::Message m;
      m.id = nextMessageId();
      m.kind = net::MessageKind::kDataCopy;
      m.item = item;
      m.version = v;
      m.dst = target;
      m.origin = source;
      m.createdAt = t;
      m.copiesLeft = config_.forwarding.initialCopies;
      m.payloadBytes = catalog_.spec(item).sizeBytes;
      buffers_[source].add(m, t);
    }
  }
}

void CooperativeCache::scheduleSampling(sim::SimTime horizon) {
  DTNCACHE_CHECK(config_.sampleInterval > 0.0);
  const sim::SimTime start = simulator_.now();
  for (sim::SimTime at = start; at <= horizon; at += config_.sampleInterval) {
    // Shard-local: sampling reads stores (which only serial events mutate)
    // and writes the collector (coordinator-owned) — it commutes with
    // worker-executed boring contacts, so the sharded driver runs it without
    // a barrier.
    simulator_.scheduleAt(
        at, [this](sim::SimTime t) { collector_.samplePoint(t, validFraction(t)); },
        sim::EventScope::kShardLocal);
  }
}

}  // namespace dtncache::cache
