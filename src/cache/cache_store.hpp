#pragma once

/// \file cache_store.hpp
/// Per-node cache of data-item copies.
///
/// Byte-bounded; when an insert does not fit, least-recently-accessed
/// entries are evicted (classic LRU — the paper's focus is freshness, not
/// replacement, so the substrate uses the standard policy). Upgrading an
/// entry to a newer version of the same item never changes occupancy or
/// recency.
///
/// Storage is flat: entries live in a dense slot vector (freed slots are
/// recycled through a free list), an open-addressing index maps item id to
/// slot, and LRU order is an intrusive doubly-linked list threaded through
/// the slots. find/insert/recordAccess are O(1) with no per-entry heap
/// nodes, and eviction pops the list head instead of scanning for the
/// minimum timestamp — the store appears in every contact handshake and
/// every query, so these are among the hottest ops in a simulation.

#include <limits>
#include <optional>
#include <vector>

#include "core/slot_index.hpp"
#include "data/item.hpp"
#include "sim/assert.hpp"
#include "sim/time.hpp"

namespace dtncache::cache {

/// Expiry sentinel for entries whose validity is not time-bounded.
inline constexpr sim::SimTime kNeverExpires = std::numeric_limits<sim::SimTime>::infinity();

struct CacheEntry {
  data::ItemId item = 0;
  data::Version version = 0;
  std::uint32_t sizeBytes = 0;
  sim::SimTime receivedAt = 0.0;   ///< when this version arrived here
  sim::SimTime lastAccess = 0.0;   ///< insert or last recordAccess time
  sim::SimTime expiresAt = kNeverExpires;  ///< when this version stops being valid
  std::size_t accessCount = 0;
};

/// Outcome of an insert/upgrade attempt, with any LRU victims so the caller
/// can report evictions to the metrics layer.
struct InsertResult {
  enum class Kind {
    kInserted,       ///< item was not present; copy added
    kUpgraded,       ///< present with an older version; version replaced
    kAlreadyCurrent, ///< present with the same or newer version; no change
    kRejected,       ///< larger than the whole cache
  };
  Kind kind = Kind::kRejected;
  data::Version previousVersion = 0;  ///< kUpgraded only
  std::vector<CacheEntry> evicted;
};

class CacheStore {
 public:
  explicit CacheStore(std::size_t capacityBytes = 64 * 1024 * 1024)
      : capacityBytes_(capacityBytes) {}

  /// Insert a copy or upgrade an existing one to a newer version.
  /// `expiresAt` is the instant the copy stops being valid (the version's
  /// creation time plus the item lifetime); callers that do not track
  /// validity pass nothing and the copy counts as live forever.
  InsertResult insert(data::ItemId item, data::Version version, std::uint32_t sizeBytes,
                      sim::SimTime now, sim::SimTime expiresAt = kNeverExpires);

  /// Entry for `item`, or nullptr.
  const CacheEntry* find(data::ItemId item) const {
    const std::uint32_t slot = index_.find(item);
    return slot == core::SlotIndex::kNoSlot ? nullptr : &slots_[slot].entry;
  }

  /// Record a cache hit (updates LRU recency).
  void recordAccess(data::ItemId item, sim::SimTime now);

  /// Remove an entry; returns it if present.
  std::optional<CacheEntry> remove(data::ItemId item);

  std::size_t usedBytes() const { return usedBytes_; }
  std::size_t capacityBytes() const { return capacityBytes_; }
  std::size_t size() const { return index_.size(); }

  /// True iff at least one cached copy is still valid at `now` — i.e. a full
  /// scan would find an entry with expiresAt > now. O(1) via the exact
  /// latest-expiry watermark, no mutation: safe from sharded-kernel worker
  /// threads and the coordinator's activity fence.
  bool hasUnexpired(sim::SimTime now) const { return size() > 0 && now < latestExpiry_; }

  /// Stable iteration (item-id order) for metric scans.
  std::vector<const CacheEntry*> entries() const;

  /// Visit every entry without allocating, in unspecified order. For scans
  /// whose accumulation is order-independent (counting valid copies).
  template <typename Fn>
  void forEachEntry(Fn&& fn) const {
    for (const Slot& s : slots_)
      if (s.live) fn(s.entry);
  }

 private:
  static constexpr std::uint32_t kNil = static_cast<std::uint32_t>(-1);

  struct Slot {
    CacheEntry entry;
    std::uint32_t lruPrev = kNil;  ///< toward least recently used
    std::uint32_t lruNext = kNil;  ///< toward most recently used
    bool live = false;
  };

  std::uint32_t allocSlot();
  void linkMru(std::uint32_t slot);
  void unlink(std::uint32_t slot);
  void releaseSlot(std::uint32_t slot);
  void evictLru(std::vector<CacheEntry>& out);
  void noteExpiryChanged(sim::SimTime oldExpiry);
  void settleExpiryBound();

  std::size_t capacityBytes_;
  std::size_t usedBytes_ = 0;
  core::SlotIndex index_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> freeSlots_;
  std::uint32_t lruHead_ = kNil;  ///< least recently used
  std::uint32_t lruTail_ = kNil;  ///< most recently used
  /// Exact max of expiresAt over live entries (-inf when empty); kept exact
  /// by rescanning whenever the entry holding the max is removed or lowered.
  sim::SimTime latestExpiry_ = -std::numeric_limits<sim::SimTime>::infinity();
  bool expiryDirty_ = false;
};

}  // namespace dtncache::cache
