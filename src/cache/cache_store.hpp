#pragma once

/// \file cache_store.hpp
/// Per-node cache of data-item copies.
///
/// Byte-bounded; when an insert does not fit, least-recently-accessed
/// entries are evicted (classic LRU — the paper's focus is freshness, not
/// replacement, so the substrate uses the standard policy). Upgrading an
/// entry to a newer version of the same item never changes occupancy.

#include <optional>
#include <unordered_map>
#include <vector>

#include "data/item.hpp"
#include "sim/assert.hpp"
#include "sim/time.hpp"

namespace dtncache::cache {

struct CacheEntry {
  data::ItemId item = 0;
  data::Version version = 0;
  std::uint32_t sizeBytes = 0;
  sim::SimTime receivedAt = 0.0;   ///< when this version arrived here
  sim::SimTime lastAccess = 0.0;   ///< for LRU
  std::size_t accessCount = 0;
};

/// Outcome of an insert/upgrade attempt, with any LRU victims so the caller
/// can report evictions to the metrics layer.
struct InsertResult {
  enum class Kind {
    kInserted,       ///< item was not present; copy added
    kUpgraded,       ///< present with an older version; version replaced
    kAlreadyCurrent, ///< present with the same or newer version; no change
    kRejected,       ///< larger than the whole cache
  };
  Kind kind = Kind::kRejected;
  data::Version previousVersion = 0;  ///< kUpgraded only
  std::vector<CacheEntry> evicted;
};

class CacheStore {
 public:
  explicit CacheStore(std::size_t capacityBytes = 64 * 1024 * 1024)
      : capacityBytes_(capacityBytes) {}

  /// Insert a copy or upgrade an existing one to a newer version.
  InsertResult insert(data::ItemId item, data::Version version, std::uint32_t sizeBytes,
                      sim::SimTime now);

  /// Entry for `item`, or nullptr.
  const CacheEntry* find(data::ItemId item) const;

  /// Record a cache hit (updates LRU recency).
  void recordAccess(data::ItemId item, sim::SimTime now);

  /// Remove an entry; returns it if present.
  std::optional<CacheEntry> remove(data::ItemId item);

  std::size_t usedBytes() const { return usedBytes_; }
  std::size_t capacityBytes() const { return capacityBytes_; }
  std::size_t size() const { return entries_.size(); }

  /// Stable iteration (item-id order) for metric scans.
  std::vector<const CacheEntry*> entries() const;

 private:
  void evictLru(std::vector<CacheEntry>& out);

  std::size_t capacityBytes_;
  std::size_t usedBytes_ = 0;
  std::unordered_map<data::ItemId, CacheEntry> entries_;
};

}  // namespace dtncache::cache
