#pragma once

/// \file coop_cache.hpp
/// The cooperative-caching protocol stack (the INFOCOM'11 substrate).
///
/// Responsibilities:
///   - choose the caching-node set of every item (NCL greedy-coverage
///     ordering of the network, first R non-source nodes per item);
///   - keep per-node CacheStores and per-node store-carry-forward buffers;
///   - serve queries: local hit, or spray a query toward the item's caching
///     set, generate a reply at the first valid holder, route it back;
///   - account every transferred byte by traffic category;
///   - report all copy/query events to the MetricsCollector;
///   - delegate *freshness maintenance* to the plugged-in RefreshScheme via
///     pushVersion(), the single API through which any scheme moves new
///     versions between nodes.
///
/// One CooperativeCache instance = one simulation run.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache_store.hpp"
#include "core/dense_bitset.hpp"
#include "cache/refresh_scheme.hpp"
#include "data/item.hpp"
#include "data/source.hpp"
#include "data/workload.hpp"
#include "metrics/collector.hpp"
#include "net/buffer.hpp"
#include "net/forwarding.hpp"
#include "net/network.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"
#include "trace/estimator.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::cache {

struct CoopCacheConfig {
  /// R: caching nodes per item (the refresh hierarchy's member count).
  std::size_t cachingNodesPerItem = 8;
  /// Per-item override of R (popularity-aware allocation, experiment F13);
  /// empty = uniform. Size must equal the catalog size when set.
  std::vector<std::size_t> cachingNodesPerItemOverride;
  std::size_t cacheCapacityBytes = 64ull * 1024 * 1024;
  std::size_t bufferCapacityBytes = 16ull * 1024 * 1024;
  /// Pre-populate caches with the current version at start (the paper
  /// studies freshness *maintenance*; initial dissemination is exercised
  /// when this is false, via placement messages).
  bool warmStart = true;
  net::ForwardingConfig forwarding;
  /// Window T of the contact-capability metric C_i(T).
  sim::SimTime centralityWindow = sim::hours(24);
  /// Metrics sampling period (valid-fraction scans, time series).
  sim::SimTime sampleInterval = sim::hours(1);
  /// Control-plane accounting: per-item version-vector entry exchanged in
  /// each contact handshake.
  std::uint32_t versionVectorBytesPerItem = 16;
};

class CooperativeCache {
 public:
  CooperativeCache(sim::Simulator& simulator, net::Network& network,
                   const data::Catalog& catalog, trace::ContactRateEstimator& estimator,
                   metrics::MetricsCollector& collector,
                   const trace::RateMatrix& planningRates, CoopCacheConfig config);

  /// Install the refresh scheme (not owned). Call before start().
  void setScheme(RefreshScheme* scheme);

  /// Wire everything to the simulator: contacts, version bumps, queries,
  /// sampling. `workload` may be null (freshness-only runs). Call once.
  void start(data::SourceProcess& sources, data::QueryWorkload* workload,
             sim::SimTime horizon);

  // ---- scheme-facing API --------------------------------------------------

  const std::vector<NodeId>& cachingNodesOf(data::ItemId item) const;
  bool isCachingNode(NodeId node, data::ItemId item) const;
  NodeId sourceOf(data::ItemId item) const { return catalog_.spec(item).source; }

  /// Version of `item` node `n` can currently provide: the live version for
  /// the source, the cached version for a holder, nullopt otherwise.
  std::optional<data::Version> heldVersion(NodeId n, data::ItemId item, sim::SimTime t) const;

  /// Move the newest version `from` holds to `to` (a caching node of the
  /// item), if it is newer than what `to` holds and the channel budget
  /// allows. Returns true when a copy was transferred and installed.
  /// `category` is kRefresh for maintenance pushes, kPlacement for initial
  /// dissemination.
  bool pushVersion(NodeId from, NodeId to, data::ItemId item, sim::SimTime t,
                   net::ContactChannel& channel, net::Traffic category);

  /// As pushVersion, but the pushed version is supplied by the caller
  /// (for schemes whose carriers hold relay copies outside any cache).
  bool pushSpecificVersion(NodeId from, NodeId to, data::ItemId item, data::Version version,
                           sim::SimTime t, net::ContactChannel& channel,
                           net::Traffic category);

  /// Drop a store-carry-forward message into a node's buffer (pull
  /// requests from the pull baseline, custom probes from examples).
  void injectMessage(NodeId at, net::Message m, sim::SimTime now);

  /// Issue a query right now (the workload listener routes through this;
  /// examples and tests may issue queries directly). The query id must be
  /// unique within the run. Queries from down nodes (per the up-predicate)
  /// are silently dropped — a powered-off device makes no requests.
  void issueQuery(const data::Query& q) {
    if (upPredicate_ && !upPredicate_(q.requester)) return;
    handleQuery(q);
  }

  /// Churn hook: nodes for which this returns false issue no queries.
  void setUpPredicate(std::function<bool(NodeId)> pred) { upPredicate_ = std::move(pred); }

  /// Attach the observability layer (neither owned; both may be null).
  /// Events: handshake_truncated, push / push_denied, install,
  /// version_bump, query / query_local_hit, reply_delivered. Counters
  /// under cache.* (see docs/observability.md).
  void setObservability(obs::Tracer* tracer, obs::Registry* registry);

  /// The run's tracer (null when tracing is off) — schemes emit their own
  /// events through this.
  obs::Tracer* tracer() const { return tracer_; }

  // ---- accessors ----------------------------------------------------------

  sim::Simulator& simulator() { return simulator_; }
  const data::Catalog& catalog() const { return catalog_; }
  trace::ContactRateEstimator& estimator() { return estimator_; }
  metrics::MetricsCollector& collector() { return collector_; }
  const CoopCacheConfig& config() const { return config_; }
  std::size_t nodeCount() const { return nodeCount_; }
  CacheStore& storeOf(NodeId n);
  const CacheStore& storeOf(NodeId n) const;
  net::MessageBuffer& bufferOf(NodeId n);
  const net::MessageBuffer& bufferOf(NodeId n) const;

  /// Fence predicate for the sharded kernel (runner/shard_driver): a
  /// contact at time `now` can touch shared protocol state only if at least
  /// one endpoint is active — sources always (they hold the live version),
  /// holders of at least one *unexpired* cached copy, nodes buffering at
  /// least one *live* message, and scheme-active nodes
  /// (RefreshScheme::contactActive). Expired-only nodes are inert: every
  /// contact-path predicate (canAnswer, heldVersion, forwardBuffered) already
  /// ignores expired content, so a node holding nothing else cannot act.
  /// Evaluated against the expiry watermarks — O(1), no mutation — so lazily
  /// purged leftovers stop forcing fences. Activity can *decay* between
  /// serial events (expiry is a pure function of time), which is safe: the
  /// predicate is monotone-narrowing in `now`, and boring-contact handlers
  /// re-evaluate everything at the contact's own time.
  bool nodeProtocolActive(NodeId n, sim::SimTime now) const {
    return sourceNode_.test(n) || stores_[n].hasUnexpired(now) || buffers_[n].hasLive(now) ||
           (scheme_ != nullptr && scheme_->contactActive(n));
  }

  /// True when `n` holds cached copies or buffered messages but all of them
  /// are expired at `now` — the nodes the watermarks reclassify as inert.
  bool holdsOnlyExpiredContent(NodeId n, sim::SimTime now) const {
    return (stores_[n].size() > 0 && !stores_[n].hasUnexpired(now)) ||
           (!buffers_[n].empty() && !buffers_[n].hasLive(now));
  }
  /// Greedy-coverage central ordering of all nodes (NCL list).
  const std::vector<NodeId>& centralOrder() const { return centralOrder_; }

  /// Fraction of cached copies currently valid (unexpired); full scan.
  double validFraction(sim::SimTime t) const;

 private:
  void handleContact(NodeId a, NodeId b, sim::SimTime t, sim::SimTime duration,
                     net::ContactChannel& channel);
  void handleQuery(const data::Query& q);
  void handleNewVersion(data::ItemId item, data::Version v, sim::SimTime t);
  /// Process `from`'s buffer against peer `to` (answer, deliver, spray).
  void forwardBuffered(NodeId from, NodeId to, sim::SimTime t, net::ContactChannel& channel);
  /// Can `node` answer a query for `item` right now with a valid copy?
  bool canAnswer(NodeId node, data::ItemId item, sim::SimTime t) const;
  void makeReply(NodeId answerer, const net::Message& query, sim::SimTime t);
  void deliverReply(const net::Message& reply, sim::SimTime t);
  /// Install a copy into a caching node's store, reporting to metrics.
  void installCopy(NodeId at, data::ItemId item, data::Version v, sim::SimTime t);
  double utilityToNode(NodeId from, NodeId dst, sim::SimTime t) const;
  double utilityToCachingSet(NodeId from, data::ItemId item, sim::SimTime t) const;
  void scheduleSampling(sim::SimTime horizon);
  void emitPlacement(sim::SimTime t);
  net::MessageId nextMessageId() { return nextMessageId_++; }
  /// Dense bit number for the (query, node) reply-dedup set: query ids are
  /// assigned sequentially from 1, so this packs without gaps.
  std::uint64_t answeredKey(data::QueryId q, NodeId n) const {
    return q * static_cast<std::uint64_t>(nodeCount_) + n;
  }

  sim::Simulator& simulator_;
  net::Network& network_;
  const data::Catalog& catalog_;
  trace::ContactRateEstimator& estimator_;
  metrics::MetricsCollector& collector_;
  CoopCacheConfig config_;
  std::size_t nodeCount_;

  RefreshScheme* scheme_ = nullptr;
  std::vector<CacheStore> stores_;
  std::vector<net::MessageBuffer> buffers_;
  std::vector<NodeId> centralOrder_;
  std::vector<std::vector<NodeId>> cachingNodes_;  ///< per item

  core::DenseBitset sourceNode_;  ///< nodes that are the source of some item
  core::DenseBitset answeredAt_;  ///< (query, node) reply-dedup, answeredKey bits
  core::DenseBitset satisfied_;   ///< delivered to requester, query-id bits
  /// Deferred-removal scratch for forwardBuffered: reused across contacts so
  /// the steady-state contact path does not allocate.
  std::vector<net::MessageId> toRemoveScratch_;
  /// Per-direction handshake cost (header + version vector), fixed by the
  /// catalog size; precomputed so handleContact does no arithmetic setup.
  std::uint64_t handshakeHalf_ = 0;
  std::function<bool(NodeId)> upPredicate_;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* ctrHandshakeTruncated_ = nullptr;
  obs::Counter* ctrPushDelivered_ = nullptr;
  obs::Counter* ctrPushNoop_ = nullptr;
  obs::Counter* ctrPushDenied_ = nullptr;
  obs::Counter* ctrInstallInserted_ = nullptr;
  obs::Counter* ctrInstallUpgraded_ = nullptr;
  obs::Counter* ctrInstallEvicted_ = nullptr;
  obs::Counter* ctrQueryLocalHit_ = nullptr;
  obs::Counter* ctrQuerySprayed_ = nullptr;
  obs::Counter* ctrReplyDelivered_ = nullptr;
  /// Fence-density classification, bumped per contact inside handleContact
  /// (identically in both kernels — lost/suppressed contacts reach neither).
  obs::Counter* ctrFenceContacts_ = nullptr;
  obs::Counter* ctrBoringContacts_ = nullptr;
  obs::Counter* ctrFenceFromExpiredOnly_ = nullptr;
  /// Allocation-hook builds only (never registered otherwise, so counter
  /// columns in result sinks are unchanged): global allocations observed
  /// inside handleContact, asserted flat in steady state by tests.
  obs::Counter* ctrHotPathAllocs_ = nullptr;
  net::MessageId nextMessageId_ = 1;
  bool started_ = false;
};

}  // namespace dtncache::cache
