#pragma once

/// \file allocation.hpp
/// Dividing a global budget of cache slots among items by popularity.
///
/// With R caching nodes per item and I items, the network maintains R·I
/// copies. Uniform allocation wastes slots on cold items; proportional
/// allocation starves the tail. The square-root rule (allocate ∝ √w_i,
/// the classic result for minimizing total miss cost under Zipf demand)
/// sits between them. Counts are rounded largest-remainder so they sum
/// exactly to the budget, then clamped to [min, max] with the residue
/// redistributed by the same rule.

#include <cstddef>
#include <vector>

namespace dtncache::cache {

enum class AllocationPolicy {
  kUniform,       ///< every item gets budget / items
  kProportional,  ///< ∝ popularity weight
  kSqrt,          ///< ∝ √popularity (square-root rule)
};

constexpr const char* allocationName(AllocationPolicy p) {
  switch (p) {
    case AllocationPolicy::kUniform: return "uniform";
    case AllocationPolicy::kProportional: return "proportional";
    case AllocationPolicy::kSqrt: return "sqrt";
  }
  return "?";
}

/// Split `totalSlots` among items with the given positive popularity
/// weights. Every item gets at least `minPerItem` and at most `maxPerItem`
/// slots; totalSlots must be feasible within those bounds.
std::vector<std::size_t> allocateCacheSlots(const std::vector<double>& popularity,
                                            std::size_t totalSlots, std::size_t minPerItem,
                                            std::size_t maxPerItem, AllocationPolicy policy);

}  // namespace dtncache::cache
