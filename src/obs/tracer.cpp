#include "obs/tracer.hpp"

#include <ostream>
#include <sstream>

#include "sim/assert.hpp"
#include "sim/shard_context.hpp"

namespace dtncache::obs {

std::string jsonNumber(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

std::optional<EventKind> parseEventKind(const std::string& name) {
  for (std::size_t k = 0; k < static_cast<std::size_t>(EventKind::kKindCount); ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (name == eventKindName(kind)) return kind;
  }
  return std::nullopt;
}

KindMask parseKindFilter(const std::string& spec) {
  if (spec.empty()) return kAllKinds;
  KindMask mask = 0;
  std::istringstream in(spec);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    const auto kind = parseEventKind(token);
    DTNCACHE_CHECK_MSG(kind.has_value(), "unknown trace event kind '" << token << "'");
    mask |= kindBit(*kind);
  }
  return mask;
}

namespace {

void appendEscaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out += '\\';
    out += *p;
  }
}

}  // namespace

void Tracer::emit(EventKind kind, sim::SimTime t, std::initializer_list<Field> fields) {
  // Fixed leading keys (run identity, sim time, kind) then the payload in
  // emission-site order — one object per line, keys never reordered, so
  // the schema in docs/observability.md holds byte-for-byte.
  ShardSink* sink = shardMode_ ? &shardSinks_[sim::tlsShard.ctx] : nullptr;
  std::string& out = sink != nullptr ? sink->buf : buffer_;
  out += "{\"run\": \"";
  out += run_;
  out += "\", \"t\": ";
  out += jsonNumber(t);
  out += ", \"kind\": \"";
  out += eventKindName(kind);
  out += '"';
  for (const Field& f : fields) {
    out += ", \"";
    out += f.key;
    out += "\": ";
    switch (f.type) {
      case Field::Type::kUInt:
        out += std::to_string(f.u);
        break;
      case Field::Type::kDouble:
        out += jsonNumber(f.d);
        break;
      case Field::Type::kBool:
        out += f.b ? "true" : "false";
        break;
      case Field::Type::kText:
        out += '"';
        appendEscaped(out, f.s);
        out += '"';
        break;
    }
  }
  out += "}\n";
  if (sink != nullptr) {
    // events_ is merged at exitShardMode (no concurrent increments here).
    sink->tags.push_back({sim::tlsShard.evTime, sim::tlsShard.evSeq, out.size()});
    return;
  }
  ++events_;
}

void Tracer::enterShardMode(std::size_t contexts) {
  DTNCACHE_CHECK(!shardMode_);
  shardSinks_.assign(contexts, {});
  shardMode_ = true;
}

void Tracer::exitShardMode() {
  DTNCACHE_CHECK(shardMode_);
  shardMode_ = false;
  // K-way merge of the per-context line streams by (t, seq). Each stream is
  // already sorted (a context executes its events in key order), and a key
  // occurs in exactly one context, so the merge is a total order.
  std::vector<std::size_t> next(shardSinks_.size(), 0);   // next tag index
  std::vector<std::size_t> start(shardSinks_.size(), 0);  // line start offset
  for (;;) {
    std::size_t best = shardSinks_.size();
    for (std::size_t c = 0; c < shardSinks_.size(); ++c) {
      if (next[c] >= shardSinks_[c].tags.size()) continue;
      const auto& tag = shardSinks_[c].tags[next[c]];
      if (best == shardSinks_.size()) {
        best = c;
        continue;
      }
      const auto& bt = shardSinks_[best].tags[next[best]];
      if (tag.t < bt.t || (tag.t == bt.t && tag.seq < bt.seq)) best = c;
    }
    if (best == shardSinks_.size()) break;
    ShardSink& sink = shardSinks_[best];
    const auto& tag = sink.tags[next[best]];
    buffer_.append(sink.buf, start[best], tag.end - start[best]);
    ++events_;
    start[best] = tag.end;
    ++next[best];
  }
  shardSinks_.clear();
}

void Tracer::flushTo(std::ostream& out) {
  out << buffer_;
  buffer_.clear();
}

}  // namespace dtncache::obs
