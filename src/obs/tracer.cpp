#include "obs/tracer.hpp"

#include <ostream>
#include <sstream>

#include "sim/assert.hpp"

namespace dtncache::obs {

std::string jsonNumber(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

std::optional<EventKind> parseEventKind(const std::string& name) {
  for (std::size_t k = 0; k < static_cast<std::size_t>(EventKind::kKindCount); ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (name == eventKindName(kind)) return kind;
  }
  return std::nullopt;
}

KindMask parseKindFilter(const std::string& spec) {
  if (spec.empty()) return kAllKinds;
  KindMask mask = 0;
  std::istringstream in(spec);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    const auto kind = parseEventKind(token);
    DTNCACHE_CHECK_MSG(kind.has_value(), "unknown trace event kind '" << token << "'");
    mask |= kindBit(*kind);
  }
  return mask;
}

namespace {

void appendEscaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out += '\\';
    out += *p;
  }
}

}  // namespace

void Tracer::emit(EventKind kind, sim::SimTime t, std::initializer_list<Field> fields) {
  // Fixed leading keys (run identity, sim time, kind) then the payload in
  // emission-site order — one object per line, keys never reordered, so
  // the schema in docs/observability.md holds byte-for-byte.
  buffer_ += "{\"run\": \"";
  buffer_ += run_;
  buffer_ += "\", \"t\": ";
  buffer_ += jsonNumber(t);
  buffer_ += ", \"kind\": \"";
  buffer_ += eventKindName(kind);
  buffer_ += '"';
  for (const Field& f : fields) {
    buffer_ += ", \"";
    buffer_ += f.key;
    buffer_ += "\": ";
    switch (f.type) {
      case Field::Type::kUInt:
        buffer_ += std::to_string(f.u);
        break;
      case Field::Type::kDouble:
        buffer_ += jsonNumber(f.d);
        break;
      case Field::Type::kBool:
        buffer_ += f.b ? "true" : "false";
        break;
      case Field::Type::kText:
        buffer_ += '"';
        appendEscaped(buffer_, f.s);
        buffer_ += '"';
        break;
    }
  }
  buffer_ += "}\n";
  ++events_;
}

void Tracer::flushTo(std::ostream& out) {
  out << buffer_;
  buffer_.clear();
}

}  // namespace dtncache::obs
