#pragma once

/// \file alloc_hook.hpp
/// Debug-only global allocation counting for zero-allocation assertions.
///
/// The contact data path promises zero heap allocations in steady state
/// (scratch buffers, pooled message slots, flat stores). That contract is
/// asserted, not just claimed: when the build enables DTNCACHE_ALLOC_HOOK
/// (cmake -DDTNCACHE_ALLOC_HOOK=ON), global operator new/delete are
/// replaced with counting versions, the cache layer registers a
/// `cache.hot_path.allocs` counter that accumulates allocations observed
/// inside handleContact, and tests assert the counter stays flat across
/// steady-state contacts.
///
/// In normal builds everything here compiles to nothing: threadAllocCount()
/// returns 0 and the counter is never registered, so result-sink counter
/// columns are identical to builds without the hook.

#include <cstdint>

namespace dtncache::obs {

/// True when the build replaces global new/delete with counting versions.
constexpr bool allocHookEnabled() {
#ifdef DTNCACHE_ALLOC_HOOK
  return true;
#else
  return false;
#endif
}

/// Monotone count of global allocations performed by this thread since it
/// started (hook builds; always 0 otherwise). Snapshot before and after a
/// region to count its allocations.
std::uint64_t threadAllocCount();

}  // namespace dtncache::obs
