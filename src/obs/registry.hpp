#pragma once

/// \file registry.hpp
/// Named counter/timer registry — the aggregate side of the observability
/// layer (the tracer is the per-event side).
///
/// A Registry belongs to one run: runner::runExperiment creates (or is
/// handed) one, the instrumented layers cache `Counter*` references at
/// wiring time (no name lookups on hot paths — incrementing is one add
/// through a pointer, or a no-op branch when observability is off), and
/// the final snapshot lands in ExperimentOutput.counters, from where the
/// sweep result sinks render it as `ctr.*` columns.
///
/// Naming convention: dotted lowercase `layer.noun.verb`
/// ("cache.push.denied", "net.contact.lost"). Snapshots are sorted by
/// name, so counter columns have a stable order independent of first-use
/// order — part of the sweep layer's byte-identical-output contract.
/// Timers accumulate wall-clock and are therefore nondeterministic; the
/// sinks only render them when wall-clock fields are on (`--no-wall` off).

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/shard_context.hpp"

namespace dtncache::obs {

/// A monotonically increasing named count. Stable address for the life of
/// its Registry (std::map nodes never move), so callers cache the pointer.
///
/// Sharded runs split every counter into per-context slots (one per worker
/// thread + coordinator, selected through sim::tlsShard) so concurrent adds
/// from shard workers are race-free without atomics; Registry::exitShardMode
/// folds the slots back. Addition commutes, so the folded totals equal the
/// single-threaded values exactly. Plain runs pay one pointer null-check.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    if (shardSlots_ != nullptr) {
      (*shardSlots_)[sim::tlsShard.ctx].v += delta;
      return;
    }
    value_ += delta;
  }
  std::uint64_t value() const { return value_; }

 private:
  friend class Registry;
  /// Cache-line-sized slots: two workers bumping the same counter must not
  /// share a line (different counters already have separate allocations).
  struct alignas(64) Slot {
    std::uint64_t v = 0;
  };
  std::uint64_t value_ = 0;
  std::unique_ptr<std::vector<Slot>> shardStorage_;
  std::vector<Slot>* shardSlots_ = nullptr;
};

/// Accumulated wall-clock spent in a named activity.
class Timer {
 public:
  void add(double seconds) {
    ++count_;
    seconds_ += seconds;
  }
  std::uint64_t count() const { return count_; }
  double seconds() const { return seconds_; }

 private:
  std::uint64_t count_ = 0;
  double seconds_ = 0.0;
};

struct TimerSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double seconds = 0.0;
};

class Registry {
 public:
  /// Get-or-create. The returned reference stays valid for the registry's
  /// lifetime — cache it where the increment is hot.
  Counter& counter(const std::string& name) {
    Counter& c = counters_[name];
    splitCounter(c);  // no-op outside shard mode
    return c;
  }
  Timer& timer(const std::string& name) { return timers_[name]; }

  /// All counters, sorted by name (map order).
  std::vector<std::pair<std::string, std::uint64_t>> counterSnapshot() const;
  std::vector<TimerSnapshot> timerSnapshot() const;

  /// Split every registered counter into `contexts` per-thread slots (see
  /// Counter). Call with worker threads parked (the sharded runner enters
  /// before spawning workers); counters registered while shard mode is
  /// active are split on creation.
  void enterShardMode(std::size_t contexts) {
    shardContexts_ = contexts;
    for (auto& [name, c] : counters_) splitCounter(c);
  }

  /// Fold all per-context slots back into the plain values and return to
  /// single-threaded counting. Call after worker threads joined.
  void exitShardMode() {
    shardContexts_ = 0;
    for (auto& [name, c] : counters_) {
      if (c.shardSlots_ == nullptr) continue;
      for (const Counter::Slot& s : *c.shardSlots_) c.value_ += s.v;
      c.shardSlots_ = nullptr;
      c.shardStorage_.reset();
    }
  }

 private:
  void splitCounter(Counter& c) {
    if (shardContexts_ == 0 || c.shardSlots_ != nullptr) return;
    c.shardStorage_ = std::make_unique<std::vector<Counter::Slot>>(shardContexts_);
    c.shardSlots_ = c.shardStorage_.get();
  }

  std::map<std::string, Counter> counters_;
  std::map<std::string, Timer> timers_;
  std::size_t shardContexts_ = 0;
};

/// RAII wall-clock accumulation into a Timer:
///   { ScopedTimer scope(registry.timer("plan"));  ...work...  }
/// Null-safe: a default-constructed / nullptr scope does nothing, so call
/// sites need no branching when observability is off.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer)
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  explicit ScopedTimer(Timer& timer) : ScopedTimer(&timer) {}
  ~ScopedTimer() {
    if (timer_ == nullptr) return;
    timer_->add(std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                    .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dtncache::obs
