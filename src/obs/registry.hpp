#pragma once

/// \file registry.hpp
/// Named counter/timer registry — the aggregate side of the observability
/// layer (the tracer is the per-event side).
///
/// A Registry belongs to one run: runner::runExperiment creates (or is
/// handed) one, the instrumented layers cache `Counter*` references at
/// wiring time (no name lookups on hot paths — incrementing is one add
/// through a pointer, or a no-op branch when observability is off), and
/// the final snapshot lands in ExperimentOutput.counters, from where the
/// sweep result sinks render it as `ctr.*` columns.
///
/// Naming convention: dotted lowercase `layer.noun.verb`
/// ("cache.push.denied", "net.contact.lost"). Snapshots are sorted by
/// name, so counter columns have a stable order independent of first-use
/// order — part of the sweep layer's byte-identical-output contract.
/// Timers accumulate wall-clock and are therefore nondeterministic; the
/// sinks only render them when wall-clock fields are on (`--no-wall` off).

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dtncache::obs {

/// A monotonically increasing named count. Stable address for the life of
/// its Registry (std::map nodes never move), so callers cache the pointer.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Accumulated wall-clock spent in a named activity.
class Timer {
 public:
  void add(double seconds) {
    ++count_;
    seconds_ += seconds;
  }
  std::uint64_t count() const { return count_; }
  double seconds() const { return seconds_; }

 private:
  std::uint64_t count_ = 0;
  double seconds_ = 0.0;
};

struct TimerSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double seconds = 0.0;
};

class Registry {
 public:
  /// Get-or-create. The returned reference stays valid for the registry's
  /// lifetime — cache it where the increment is hot.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Timer& timer(const std::string& name) { return timers_[name]; }

  /// All counters, sorted by name (map order).
  std::vector<std::pair<std::string, std::uint64_t>> counterSnapshot() const;
  std::vector<TimerSnapshot> timerSnapshot() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Timer> timers_;
};

/// RAII wall-clock accumulation into a Timer:
///   { ScopedTimer scope(registry.timer("plan"));  ...work...  }
/// Null-safe: a default-constructed / nullptr scope does nothing, so call
/// sites need no branching when observability is off.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer)
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  explicit ScopedTimer(Timer& timer) : ScopedTimer(&timer) {}
  ~ScopedTimer() {
    if (timer_ == nullptr) return;
    timer_->add(std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                    .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dtncache::obs
