#include "obs/alloc_hook.hpp"

#ifdef DTNCACHE_ALLOC_HOOK

#include <cstdlib>
#include <new>

namespace {
// Not zero-initialized lazily: thread_local of scalar type has constant
// initialization, so the hook is safe even for allocations before main().
thread_local std::uint64_t g_threadAllocCount = 0;

void* countedAlloc(std::size_t n) {
  ++g_threadAllocCount;
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* countedAlignedAlloc(std::size_t n, std::size_t align) {
  ++g_threadAllocCount;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n != 0 ? n : 1) != 0)
    throw std::bad_alloc();
  return p;
}
}  // namespace

namespace dtncache::obs {
std::uint64_t threadAllocCount() { return g_threadAllocCount; }
}  // namespace dtncache::obs

void* operator new(std::size_t n) { return countedAlloc(n); }
void* operator new[](std::size_t n) { return countedAlloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_threadAllocCount;
  return std::malloc(n != 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_threadAllocCount;
  return std::malloc(n != 0 ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return countedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return countedAlignedAlloc(n, static_cast<std::size_t>(a));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#else

namespace dtncache::obs {
std::uint64_t threadAllocCount() { return 0; }
}  // namespace dtncache::obs

#endif  // DTNCACHE_ALLOC_HOOK
