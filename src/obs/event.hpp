#pragma once

/// \file event.hpp
/// The trace-event vocabulary: every structured event kind the simulator
/// can emit, with stable wire names and a bitmask type for filtering.
///
/// Kinds are closed and enumerated here on purpose: the JSONL schema in
/// docs/observability.md is a contract with external tooling
/// (scripts/trace_summarize.py, ad-hoc jq pipelines), and an open-ended
/// string kind would let instrumentation sites silently fork the schema.
/// Adding a kind means adding it here, to eventKindName(), and to the
/// schema reference — the docs/observability.md table is generated from
/// the same list.

#include <cstdint>
#include <optional>
#include <string>

namespace dtncache::obs {

/// Every structured event the instrumented layers can emit. Grouped by the
/// emitting layer; docs/observability.md documents each kind's payload.
enum class EventKind : std::uint8_t {
  // -- net::Network: contact admission and budget spend ---------------------
  kContact = 0,        ///< contact delivered to the protocol (budget + spend)
  kContactSuppressed,  ///< filtered out (churn-down endpoint, depleted battery)
  kContactLost,        ///< whole-contact loss (failed pairing)

  // -- cache::CooperativeCache: handshake, pushes, queries ------------------
  kHandshakeTruncated,  ///< contact budget could not fit the metadata exchange
  kPush,                ///< a version push was transferred and installed
  kPushDenied,          ///< a push failed on the contact's byte budget
  kInstall,             ///< a copy entered (or upgraded in) a cache store
  kVersionBump,         ///< the source produced a new version
  kQuery,               ///< a query was issued
  kQueryLocalHit,       ///< ... and answered from the requester's own store
  kReplyDelivered,      ///< a reply reached its requester

  // -- core: refresh propagation and replication planning -------------------
  kPlan,         ///< per-item replication plan (re)computed
  kHelperAssign, ///< replication assigned a helper to a target node
  kReparent,     ///< local repair moved a node under a better parent
  kRelayInject,  ///< a relay copy was handed to a third-party carrier
  kChurnRepair,  ///< hierarchy membership repaired after a churn flip
  kMaintenance,  ///< a periodic maintenance pass ran

  // -- sweep::SweepEngine: job lifecycle ------------------------------------
  kJobStart,  ///< a sweep job began (identity fields, sim time 0)
  kJobDone,   ///< ... and finished (sim time = simulated horizon)

  kKindCount,
};

/// Stable wire name (the JSONL "kind" field and the --trace-filter token).
constexpr const char* eventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kContact: return "contact";
    case EventKind::kContactSuppressed: return "contact_suppressed";
    case EventKind::kContactLost: return "contact_lost";
    case EventKind::kHandshakeTruncated: return "handshake_truncated";
    case EventKind::kPush: return "push";
    case EventKind::kPushDenied: return "push_denied";
    case EventKind::kInstall: return "install";
    case EventKind::kVersionBump: return "version_bump";
    case EventKind::kQuery: return "query";
    case EventKind::kQueryLocalHit: return "query_local_hit";
    case EventKind::kReplyDelivered: return "reply_delivered";
    case EventKind::kPlan: return "plan";
    case EventKind::kHelperAssign: return "helper_assign";
    case EventKind::kReparent: return "reparent";
    case EventKind::kRelayInject: return "relay_inject";
    case EventKind::kChurnRepair: return "churn_repair";
    case EventKind::kMaintenance: return "maintenance";
    case EventKind::kJobStart: return "job_start";
    case EventKind::kJobDone: return "job_done";
    case EventKind::kKindCount: break;
  }
  return "?";
}

/// Bitmask over EventKind — the runtime trace filter. Fits easily: the
/// enum is capped at 64 kinds by static_assert below.
using KindMask = std::uint64_t;

static_assert(static_cast<std::size_t>(EventKind::kKindCount) <= 64,
              "KindMask is a 64-bit bitmask");

constexpr KindMask kindBit(EventKind kind) {
  return KindMask{1} << static_cast<std::size_t>(kind);
}

inline constexpr KindMask kAllKinds =
    (KindMask{1} << static_cast<std::size_t>(EventKind::kKindCount)) - 1;

/// Wire name → kind (for --trace-filter parsing); nullopt on unknown names.
std::optional<EventKind> parseEventKind(const std::string& name);

/// "kind1,kind2,..." → mask. Throws InvariantViolation on an unknown kind
/// name (a typo'd filter silently tracing nothing would be worse). An
/// empty spec means "all kinds".
KindMask parseKindFilter(const std::string& spec);

}  // namespace dtncache::obs
