#pragma once

/// \file tracer.hpp
/// Structured event tracing: typed JSONL events through a buffered,
/// thread-confined sink — zero-cost when compiled out, one pointer
/// compare per site when compiled in but unsinked.
///
/// Emission is always through the DTNCACHE_EVENT macro:
///
///     DTNCACHE_EVENT(tracer_, obs::EventKind::kPush, t,
///                    {"from", from}, {"to", to}, {"item", item});
///
/// Cost model, from cold to hot:
///   - `cmake -DDTNCACHE_TRACE=OFF`: the macro expands to nothing — field
///     expressions are never evaluated, the tracer pointer is unused, and
///     the binary carries no tracing code on the instrumented paths.
///   - compiled in, no tracer installed (the default): one null-pointer
///     compare per site — the acceptance bar is < 3% on the contact path.
///   - tracer installed, kind filtered out: one additional bitmask test.
///   - kind wanted: fields are rendered to one JSONL line into the
///     tracer's in-memory buffer (no I/O on the hot path; the owner
///     flushes after the run).
///
/// Determinism contract: a Tracer is thread-confined (each sweep job owns
/// one; no locks), doubles render through the same fixed 17-significant-
/// digit formatter as the result sinks, and buffers are flushed in job-
/// index order — so a merged trace is byte-identical at any --jobs count.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "sim/time.hpp"

#ifndef DTNCACHE_TRACE_ENABLED
#define DTNCACHE_TRACE_ENABLED 1
#endif

namespace dtncache::obs {

/// Deterministic double rendering shared by the tracer and the sweep
/// result sinks: 17 significant digits round-trips any double, and one
/// fixed formatter keeps serial and parallel output byte-equal.
std::string jsonNumber(double v);

/// One typed key/value of an event payload. Keys are string literals at
/// the emission site; values are integers (node/item/version ids, counts),
/// doubles (probabilities, byte budgets), booleans, or short strings.
struct Field {
  enum class Type : std::uint8_t { kUInt, kDouble, kBool, kText };

  // Builtin unsigned types (not the fixed-width aliases, which collide on
  // LP64) so every id/count type converts without a cast at the call site.
  constexpr Field(const char* k, unsigned int v) : key(k), type(Type::kUInt), u(v) {}
  constexpr Field(const char* k, unsigned long v) : key(k), type(Type::kUInt), u(v) {}
  constexpr Field(const char* k, unsigned long long v)
      : key(k), type(Type::kUInt), u(v) {}
  constexpr Field(const char* k, int v)
      : key(k), type(Type::kUInt), u(static_cast<std::uint64_t>(v)) {}
  constexpr Field(const char* k, double v) : key(k), type(Type::kDouble), d(v) {}
  constexpr Field(const char* k, bool v) : key(k), type(Type::kBool), b(v) {}
  constexpr Field(const char* k, const char* v)
      : key(k), type(Type::kText), s(v) {}

  const char* key;
  Type type;
  union {
    std::uint64_t u;
    double d;
    bool b;
    const char* s;
  };
};

/// A buffered event sink for one run. Construct with the run's identity
/// label (the config fingerprint in sweep runs) and a kind filter; install
/// its pointer into the instrumented layers; flush the buffer wherever the
/// trace should land once the run is over.
class Tracer {
 public:
  explicit Tracer(std::string runLabel, KindMask filter = kAllKinds)
      : run_(std::move(runLabel)), filter_(filter) {}

  /// The macro's guard: is this kind being collected?
  bool wants(EventKind kind) const { return (filter_ & kindBit(kind)) != 0; }

  /// Render one event as a JSONL line into the buffer. Callers go through
  /// DTNCACHE_EVENT, which checks wants() first — emit() itself does not
  /// filter, so a direct call always records.
  void emit(EventKind kind, sim::SimTime t, std::initializer_list<Field> fields);

  /// Lines buffered so far.
  std::size_t eventCount() const { return events_; }

  /// The buffered JSONL text (tests; flushTo for real output).
  const std::string& buffer() const { return buffer_; }

  /// Append the buffer to `out` and clear it.
  void flushTo(std::ostream& out);

  const std::string& runLabel() const { return run_; }
  KindMask filter() const { return filter_; }

  /// Sharded-kernel support: between enterShardMode(contexts) and
  /// exitShardMode(), each emitting thread renders into its own
  /// sim::tlsShard-selected buffer, tagging every line with the (time,
  /// sequence) key of the event that produced it. exitShardMode k-way
  /// merges the per-context buffers by tag into the main buffer — the
  /// single-threaded emission order, byte for byte (an event executes on
  /// exactly one context, so tags never tie across contexts, and one
  /// event's lines keep their emission order within its context).
  void enterShardMode(std::size_t contexts);
  void exitShardMode();

 private:
  struct ShardSink {
    struct Tag {
      sim::SimTime t;
      std::uint64_t seq;
      std::size_t end;  ///< buffer offset one past this line
    };
    std::string buf;
    std::vector<Tag> tags;  ///< nondecreasing (t, seq): per-context events are ordered
  };

  std::string run_;
  KindMask filter_;
  std::string buffer_;
  std::size_t events_ = 0;
  bool shardMode_ = false;
  std::vector<ShardSink> shardSinks_;
};

}  // namespace dtncache::obs

/// Emit a structured event iff tracing is compiled in AND `tracer` is
/// non-null AND its filter wants `kind`. Field expressions are not
/// evaluated unless all three hold (and never when compiled out).
#if DTNCACHE_TRACE_ENABLED
#define DTNCACHE_EVENT(tracer, kind, t, ...)                                 \
  do {                                                                       \
    ::dtncache::obs::Tracer* dtncacheEventTracer_ = (tracer);                \
    if (dtncacheEventTracer_ != nullptr && dtncacheEventTracer_->wants(kind)) \
      dtncacheEventTracer_->emit((kind), (t), {__VA_ARGS__});                \
  } while (0)
#else
#define DTNCACHE_EVENT(tracer, kind, t, ...) \
  do {                                       \
  } while (0)
#endif
