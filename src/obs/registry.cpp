#include "obs/registry.hpp"

namespace dtncache::obs {

std::vector<std::pair<std::string, std::uint64_t>> Registry::counterSnapshot() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) out.emplace_back(name, counter.value());
  return out;
}

std::vector<TimerSnapshot> Registry::timerSnapshot() const {
  std::vector<TimerSnapshot> out;
  out.reserve(timers_.size());
  for (const auto& [name, timer] : timers_)
    out.push_back({name, timer.count(), timer.seconds()});
  return out;
}

}  // namespace dtncache::obs
