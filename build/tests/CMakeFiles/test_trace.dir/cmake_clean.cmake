file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/analysis_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/analysis_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/contact_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/contact_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/estimator_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/estimator_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/generators_property_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/generators_property_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/generators_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/generators_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/one_format_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/one_format_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/rate_matrix_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/rate_matrix_test.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
