file(REMOVE_RECURSE
  "CMakeFiles/bench_freshness_ncl.dir/bench_freshness_ncl.cpp.o"
  "CMakeFiles/bench_freshness_ncl.dir/bench_freshness_ncl.cpp.o.d"
  "bench_freshness_ncl"
  "bench_freshness_ncl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_freshness_ncl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
