# Empty dependencies file for bench_freshness_ncl.
# This may be replaced when dependencies are built.
