# Empty dependencies file for bench_theta_guarantee.
# This may be replaced when dependencies are built.
