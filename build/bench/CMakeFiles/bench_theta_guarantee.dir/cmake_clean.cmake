file(REMOVE_RECURSE
  "CMakeFiles/bench_theta_guarantee.dir/bench_theta_guarantee.cpp.o"
  "CMakeFiles/bench_theta_guarantee.dir/bench_theta_guarantee.cpp.o.d"
  "bench_theta_guarantee"
  "bench_theta_guarantee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theta_guarantee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
