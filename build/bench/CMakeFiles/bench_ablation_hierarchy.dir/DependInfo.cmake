
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_hierarchy.cpp" "bench/CMakeFiles/bench_ablation_hierarchy.dir/bench_ablation_hierarchy.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_hierarchy.dir/bench_ablation_hierarchy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runner/CMakeFiles/dtncache_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dtncache_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dtncache_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dtncache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dtncache_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dtncache_net.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dtncache_data.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dtncache_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dtncache_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
