# Empty compiler generated dependencies file for bench_query_validity.
# This may be replaced when dependencies are built.
