file(REMOVE_RECURSE
  "CMakeFiles/bench_query_validity.dir/bench_query_validity.cpp.o"
  "CMakeFiles/bench_query_validity.dir/bench_query_validity.cpp.o.d"
  "bench_query_validity"
  "bench_query_validity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_validity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
