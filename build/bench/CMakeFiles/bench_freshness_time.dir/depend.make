# Empty dependencies file for bench_freshness_time.
# This may be replaced when dependencies are built.
