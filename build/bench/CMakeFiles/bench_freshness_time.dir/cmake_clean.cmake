file(REMOVE_RECURSE
  "CMakeFiles/bench_freshness_time.dir/bench_freshness_time.cpp.o"
  "CMakeFiles/bench_freshness_time.dir/bench_freshness_time.cpp.o.d"
  "bench_freshness_time"
  "bench_freshness_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_freshness_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
