file(REMOVE_RECURSE
  "CMakeFiles/bench_freshness_tau.dir/bench_freshness_tau.cpp.o"
  "CMakeFiles/bench_freshness_tau.dir/bench_freshness_tau.cpp.o.d"
  "bench_freshness_tau"
  "bench_freshness_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_freshness_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
