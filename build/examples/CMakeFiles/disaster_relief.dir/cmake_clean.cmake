file(REMOVE_RECURSE
  "CMakeFiles/disaster_relief.dir/disaster_relief.cpp.o"
  "CMakeFiles/disaster_relief.dir/disaster_relief.cpp.o.d"
  "disaster_relief"
  "disaster_relief.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaster_relief.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
