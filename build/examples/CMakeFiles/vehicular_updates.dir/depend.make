# Empty dependencies file for vehicular_updates.
# This may be replaced when dependencies are built.
