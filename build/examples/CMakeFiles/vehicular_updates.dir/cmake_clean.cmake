file(REMOVE_RECURSE
  "CMakeFiles/vehicular_updates.dir/vehicular_updates.cpp.o"
  "CMakeFiles/vehicular_updates.dir/vehicular_updates.cpp.o.d"
  "vehicular_updates"
  "vehicular_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vehicular_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
