file(REMOVE_RECURSE
  "CMakeFiles/dtncache_cli.dir/dtncache_sim.cpp.o"
  "CMakeFiles/dtncache_cli.dir/dtncache_sim.cpp.o.d"
  "dtncache"
  "dtncache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtncache_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
