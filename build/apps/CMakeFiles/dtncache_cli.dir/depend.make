# Empty dependencies file for dtncache_cli.
# This may be replaced when dependencies are built.
