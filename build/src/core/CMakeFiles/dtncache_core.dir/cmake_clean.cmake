file(REMOVE_RECURSE
  "CMakeFiles/dtncache_core.dir/freshness.cpp.o"
  "CMakeFiles/dtncache_core.dir/freshness.cpp.o.d"
  "CMakeFiles/dtncache_core.dir/hierarchical_scheme.cpp.o"
  "CMakeFiles/dtncache_core.dir/hierarchical_scheme.cpp.o.d"
  "CMakeFiles/dtncache_core.dir/hierarchy.cpp.o"
  "CMakeFiles/dtncache_core.dir/hierarchy.cpp.o.d"
  "CMakeFiles/dtncache_core.dir/hierarchy_dot.cpp.o"
  "CMakeFiles/dtncache_core.dir/hierarchy_dot.cpp.o.d"
  "CMakeFiles/dtncache_core.dir/replication.cpp.o"
  "CMakeFiles/dtncache_core.dir/replication.cpp.o.d"
  "libdtncache_core.a"
  "libdtncache_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtncache_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
