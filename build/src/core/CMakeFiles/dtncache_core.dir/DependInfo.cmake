
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/freshness.cpp" "src/core/CMakeFiles/dtncache_core.dir/freshness.cpp.o" "gcc" "src/core/CMakeFiles/dtncache_core.dir/freshness.cpp.o.d"
  "/root/repo/src/core/hierarchical_scheme.cpp" "src/core/CMakeFiles/dtncache_core.dir/hierarchical_scheme.cpp.o" "gcc" "src/core/CMakeFiles/dtncache_core.dir/hierarchical_scheme.cpp.o.d"
  "/root/repo/src/core/hierarchy.cpp" "src/core/CMakeFiles/dtncache_core.dir/hierarchy.cpp.o" "gcc" "src/core/CMakeFiles/dtncache_core.dir/hierarchy.cpp.o.d"
  "/root/repo/src/core/hierarchy_dot.cpp" "src/core/CMakeFiles/dtncache_core.dir/hierarchy_dot.cpp.o" "gcc" "src/core/CMakeFiles/dtncache_core.dir/hierarchy_dot.cpp.o.d"
  "/root/repo/src/core/replication.cpp" "src/core/CMakeFiles/dtncache_core.dir/replication.cpp.o" "gcc" "src/core/CMakeFiles/dtncache_core.dir/replication.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dtncache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dtncache_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dtncache_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dtncache_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dtncache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dtncache_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
