# Empty dependencies file for dtncache_core.
# This may be replaced when dependencies are built.
