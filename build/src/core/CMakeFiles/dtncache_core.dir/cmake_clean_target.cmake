file(REMOVE_RECURSE
  "libdtncache_core.a"
)
