file(REMOVE_RECURSE
  "libdtncache_cache.a"
)
