
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/allocation.cpp" "src/cache/CMakeFiles/dtncache_cache.dir/allocation.cpp.o" "gcc" "src/cache/CMakeFiles/dtncache_cache.dir/allocation.cpp.o.d"
  "/root/repo/src/cache/cache_store.cpp" "src/cache/CMakeFiles/dtncache_cache.dir/cache_store.cpp.o" "gcc" "src/cache/CMakeFiles/dtncache_cache.dir/cache_store.cpp.o.d"
  "/root/repo/src/cache/centrality.cpp" "src/cache/CMakeFiles/dtncache_cache.dir/centrality.cpp.o" "gcc" "src/cache/CMakeFiles/dtncache_cache.dir/centrality.cpp.o.d"
  "/root/repo/src/cache/coop_cache.cpp" "src/cache/CMakeFiles/dtncache_cache.dir/coop_cache.cpp.o" "gcc" "src/cache/CMakeFiles/dtncache_cache.dir/coop_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dtncache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dtncache_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dtncache_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dtncache_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dtncache_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
