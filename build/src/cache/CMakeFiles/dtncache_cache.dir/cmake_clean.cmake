file(REMOVE_RECURSE
  "CMakeFiles/dtncache_cache.dir/allocation.cpp.o"
  "CMakeFiles/dtncache_cache.dir/allocation.cpp.o.d"
  "CMakeFiles/dtncache_cache.dir/cache_store.cpp.o"
  "CMakeFiles/dtncache_cache.dir/cache_store.cpp.o.d"
  "CMakeFiles/dtncache_cache.dir/centrality.cpp.o"
  "CMakeFiles/dtncache_cache.dir/centrality.cpp.o.d"
  "CMakeFiles/dtncache_cache.dir/coop_cache.cpp.o"
  "CMakeFiles/dtncache_cache.dir/coop_cache.cpp.o.d"
  "libdtncache_cache.a"
  "libdtncache_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtncache_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
