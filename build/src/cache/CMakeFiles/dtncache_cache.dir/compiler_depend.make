# Empty compiler generated dependencies file for dtncache_cache.
# This may be replaced when dependencies are built.
