# Empty dependencies file for dtncache_runner.
# This may be replaced when dependencies are built.
