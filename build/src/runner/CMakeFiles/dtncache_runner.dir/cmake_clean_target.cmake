file(REMOVE_RECURSE
  "libdtncache_runner.a"
)
