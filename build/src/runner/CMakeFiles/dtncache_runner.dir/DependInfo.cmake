
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runner/args.cpp" "src/runner/CMakeFiles/dtncache_runner.dir/args.cpp.o" "gcc" "src/runner/CMakeFiles/dtncache_runner.dir/args.cpp.o.d"
  "/root/repo/src/runner/config_io.cpp" "src/runner/CMakeFiles/dtncache_runner.dir/config_io.cpp.o" "gcc" "src/runner/CMakeFiles/dtncache_runner.dir/config_io.cpp.o.d"
  "/root/repo/src/runner/experiment.cpp" "src/runner/CMakeFiles/dtncache_runner.dir/experiment.cpp.o" "gcc" "src/runner/CMakeFiles/dtncache_runner.dir/experiment.cpp.o.d"
  "/root/repo/src/runner/replicate.cpp" "src/runner/CMakeFiles/dtncache_runner.dir/replicate.cpp.o" "gcc" "src/runner/CMakeFiles/dtncache_runner.dir/replicate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dtncache_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dtncache_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dtncache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dtncache_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dtncache_net.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dtncache_data.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dtncache_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dtncache_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
