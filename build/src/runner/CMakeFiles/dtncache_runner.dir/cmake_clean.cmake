file(REMOVE_RECURSE
  "CMakeFiles/dtncache_runner.dir/args.cpp.o"
  "CMakeFiles/dtncache_runner.dir/args.cpp.o.d"
  "CMakeFiles/dtncache_runner.dir/config_io.cpp.o"
  "CMakeFiles/dtncache_runner.dir/config_io.cpp.o.d"
  "CMakeFiles/dtncache_runner.dir/experiment.cpp.o"
  "CMakeFiles/dtncache_runner.dir/experiment.cpp.o.d"
  "CMakeFiles/dtncache_runner.dir/replicate.cpp.o"
  "CMakeFiles/dtncache_runner.dir/replicate.cpp.o.d"
  "libdtncache_runner.a"
  "libdtncache_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtncache_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
