
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analysis.cpp" "src/trace/CMakeFiles/dtncache_trace.dir/analysis.cpp.o" "gcc" "src/trace/CMakeFiles/dtncache_trace.dir/analysis.cpp.o.d"
  "/root/repo/src/trace/contact.cpp" "src/trace/CMakeFiles/dtncache_trace.dir/contact.cpp.o" "gcc" "src/trace/CMakeFiles/dtncache_trace.dir/contact.cpp.o.d"
  "/root/repo/src/trace/estimator.cpp" "src/trace/CMakeFiles/dtncache_trace.dir/estimator.cpp.o" "gcc" "src/trace/CMakeFiles/dtncache_trace.dir/estimator.cpp.o.d"
  "/root/repo/src/trace/generators.cpp" "src/trace/CMakeFiles/dtncache_trace.dir/generators.cpp.o" "gcc" "src/trace/CMakeFiles/dtncache_trace.dir/generators.cpp.o.d"
  "/root/repo/src/trace/one_format.cpp" "src/trace/CMakeFiles/dtncache_trace.dir/one_format.cpp.o" "gcc" "src/trace/CMakeFiles/dtncache_trace.dir/one_format.cpp.o.d"
  "/root/repo/src/trace/rate_matrix.cpp" "src/trace/CMakeFiles/dtncache_trace.dir/rate_matrix.cpp.o" "gcc" "src/trace/CMakeFiles/dtncache_trace.dir/rate_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dtncache_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
