file(REMOVE_RECURSE
  "libdtncache_trace.a"
)
