file(REMOVE_RECURSE
  "CMakeFiles/dtncache_trace.dir/analysis.cpp.o"
  "CMakeFiles/dtncache_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/dtncache_trace.dir/contact.cpp.o"
  "CMakeFiles/dtncache_trace.dir/contact.cpp.o.d"
  "CMakeFiles/dtncache_trace.dir/estimator.cpp.o"
  "CMakeFiles/dtncache_trace.dir/estimator.cpp.o.d"
  "CMakeFiles/dtncache_trace.dir/generators.cpp.o"
  "CMakeFiles/dtncache_trace.dir/generators.cpp.o.d"
  "CMakeFiles/dtncache_trace.dir/one_format.cpp.o"
  "CMakeFiles/dtncache_trace.dir/one_format.cpp.o.d"
  "CMakeFiles/dtncache_trace.dir/rate_matrix.cpp.o"
  "CMakeFiles/dtncache_trace.dir/rate_matrix.cpp.o.d"
  "libdtncache_trace.a"
  "libdtncache_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtncache_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
