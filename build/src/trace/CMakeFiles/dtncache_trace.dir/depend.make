# Empty dependencies file for dtncache_trace.
# This may be replaced when dependencies are built.
