file(REMOVE_RECURSE
  "libdtncache_data.a"
)
