# Empty compiler generated dependencies file for dtncache_data.
# This may be replaced when dependencies are built.
