
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/item.cpp" "src/data/CMakeFiles/dtncache_data.dir/item.cpp.o" "gcc" "src/data/CMakeFiles/dtncache_data.dir/item.cpp.o.d"
  "/root/repo/src/data/source.cpp" "src/data/CMakeFiles/dtncache_data.dir/source.cpp.o" "gcc" "src/data/CMakeFiles/dtncache_data.dir/source.cpp.o.d"
  "/root/repo/src/data/workload.cpp" "src/data/CMakeFiles/dtncache_data.dir/workload.cpp.o" "gcc" "src/data/CMakeFiles/dtncache_data.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dtncache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dtncache_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
