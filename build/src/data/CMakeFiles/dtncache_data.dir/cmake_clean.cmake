file(REMOVE_RECURSE
  "CMakeFiles/dtncache_data.dir/item.cpp.o"
  "CMakeFiles/dtncache_data.dir/item.cpp.o.d"
  "CMakeFiles/dtncache_data.dir/source.cpp.o"
  "CMakeFiles/dtncache_data.dir/source.cpp.o.d"
  "CMakeFiles/dtncache_data.dir/workload.cpp.o"
  "CMakeFiles/dtncache_data.dir/workload.cpp.o.d"
  "libdtncache_data.a"
  "libdtncache_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtncache_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
