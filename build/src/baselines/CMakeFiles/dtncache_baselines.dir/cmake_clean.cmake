file(REMOVE_RECURSE
  "CMakeFiles/dtncache_baselines.dir/baselines.cpp.o"
  "CMakeFiles/dtncache_baselines.dir/baselines.cpp.o.d"
  "libdtncache_baselines.a"
  "libdtncache_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtncache_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
