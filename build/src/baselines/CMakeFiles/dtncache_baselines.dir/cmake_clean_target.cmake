file(REMOVE_RECURSE
  "libdtncache_baselines.a"
)
