# Empty compiler generated dependencies file for dtncache_baselines.
# This may be replaced when dependencies are built.
