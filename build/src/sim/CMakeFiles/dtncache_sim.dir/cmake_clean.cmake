file(REMOVE_RECURSE
  "CMakeFiles/dtncache_sim.dir/rng.cpp.o"
  "CMakeFiles/dtncache_sim.dir/rng.cpp.o.d"
  "CMakeFiles/dtncache_sim.dir/stats.cpp.o"
  "CMakeFiles/dtncache_sim.dir/stats.cpp.o.d"
  "libdtncache_sim.a"
  "libdtncache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtncache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
