file(REMOVE_RECURSE
  "libdtncache_sim.a"
)
