# Empty dependencies file for dtncache_sim.
# This may be replaced when dependencies are built.
