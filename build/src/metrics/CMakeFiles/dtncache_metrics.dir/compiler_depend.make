# Empty compiler generated dependencies file for dtncache_metrics.
# This may be replaced when dependencies are built.
