
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/collector.cpp" "src/metrics/CMakeFiles/dtncache_metrics.dir/collector.cpp.o" "gcc" "src/metrics/CMakeFiles/dtncache_metrics.dir/collector.cpp.o.d"
  "/root/repo/src/metrics/load.cpp" "src/metrics/CMakeFiles/dtncache_metrics.dir/load.cpp.o" "gcc" "src/metrics/CMakeFiles/dtncache_metrics.dir/load.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/metrics/CMakeFiles/dtncache_metrics.dir/report.cpp.o" "gcc" "src/metrics/CMakeFiles/dtncache_metrics.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dtncache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dtncache_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dtncache_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dtncache_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
