file(REMOVE_RECURSE
  "CMakeFiles/dtncache_metrics.dir/collector.cpp.o"
  "CMakeFiles/dtncache_metrics.dir/collector.cpp.o.d"
  "CMakeFiles/dtncache_metrics.dir/load.cpp.o"
  "CMakeFiles/dtncache_metrics.dir/load.cpp.o.d"
  "CMakeFiles/dtncache_metrics.dir/report.cpp.o"
  "CMakeFiles/dtncache_metrics.dir/report.cpp.o.d"
  "libdtncache_metrics.a"
  "libdtncache_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtncache_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
