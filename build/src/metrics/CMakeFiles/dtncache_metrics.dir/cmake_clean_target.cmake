file(REMOVE_RECURSE
  "libdtncache_metrics.a"
)
