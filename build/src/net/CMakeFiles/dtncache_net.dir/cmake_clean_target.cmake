file(REMOVE_RECURSE
  "libdtncache_net.a"
)
