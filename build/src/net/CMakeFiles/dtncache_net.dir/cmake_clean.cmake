file(REMOVE_RECURSE
  "CMakeFiles/dtncache_net.dir/churn.cpp.o"
  "CMakeFiles/dtncache_net.dir/churn.cpp.o.d"
  "CMakeFiles/dtncache_net.dir/energy.cpp.o"
  "CMakeFiles/dtncache_net.dir/energy.cpp.o.d"
  "CMakeFiles/dtncache_net.dir/network.cpp.o"
  "CMakeFiles/dtncache_net.dir/network.cpp.o.d"
  "libdtncache_net.a"
  "libdtncache_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtncache_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
