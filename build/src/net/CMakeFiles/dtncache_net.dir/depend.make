# Empty dependencies file for dtncache_net.
# This may be replaced when dependencies are built.
