#!/usr/bin/env bash
# Capture a kernel benchmark snapshot and merge it into BENCH_kernel.json.
#
#   scripts/bench_baseline.sh [--label NAME] [--quick] [--fresh]
#
# Configures (if needed) and builds a Release tree in build-bench/, runs
# bench_kernel, and appends the labelled snapshot to BENCH_kernel.json at
# the repo root (replacing any existing snapshot with the same label).
#
#   --label NAME  snapshot label (default: git describe of HEAD)
#   --quick       reduced repetitions — for smoke checks, not baselines
#   --fresh       drop the existing BENCH_kernel.json snapshot list first
#
# Compare two snapshots with scripts/bench_compare.py.
set -euo pipefail
cd "$(dirname "$0")/.."

label="$(git describe --always --dirty 2>/dev/null || echo local)"
quick=""
fresh=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --label)   label="$2"; shift 2 ;;
    --label=*) label="${1#--label=}"; shift ;;
    --quick)   quick="--quick"; shift ;;
    --fresh)   fresh=1; shift ;;
    *) echo "usage: $0 [--label NAME] [--quick] [--fresh]" >&2; exit 2 ;;
  esac
done

cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release ||
  { echo "error: cmake configure of build-bench/ failed (exit $?)" >&2; exit 1; }
cmake --build build-bench -j "$(nproc)" --target bench_kernel ||
  { echo "error: bench_kernel build failed (exit $?)" >&2; exit 1; }

snapshot="$(mktemp)"
trap 'rm -f "$snapshot"' EXIT
./build-bench/bench/bench_kernel --json="$snapshot" --label="$label" $quick || {
  rc=$?
  echo "error: bench_kernel run failed (exit $rc); BENCH_kernel.json left untouched" >&2
  exit "$rc"
}

FRESH="$fresh" SNAPSHOT="$snapshot" python3 - <<'EOF'
import json, os

snapshot = json.load(open(os.environ["SNAPSHOT"]))
path = "BENCH_kernel.json"
if os.path.exists(path) and os.environ["FRESH"] != "1":
    doc = json.load(open(path))
else:
    doc = {
        "schema": 1,
        "description": "Kernel benchmark baseline (bench_kernel --json). "
                       "Regenerate with scripts/bench_baseline.sh.",
        "snapshots": [],
    }
doc["snapshots"] = [s for s in doc["snapshots"] if s.get("label") != snapshot["label"]]
doc["snapshots"].append(snapshot)
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"BENCH_kernel.json: {len(doc['snapshots'])} snapshot(s), "
      f"added {snapshot['label']!r}")
EOF
