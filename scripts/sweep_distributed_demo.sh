#!/usr/bin/env bash
# Exercise the distributed sweep's crash story end to end (docs/sweep.md):
#
#   1. reference run: single-process `dtncache_sweep --jobs 4 --no-wall`;
#   2. coordinator + 2 TCP workers on localhost; once a few fragments are
#      durable, SIGKILL one worker AND the coordinator mid-sweep;
#   3. restart the coordinator with --resume plus a replacement worker and
#      let it finish + merge;
#   4. byte-compare JSONL/CSV/trace against the reference (cmp);
#   5. repeat the sweep in spool mode (shared directory, no networking)
#      with two concurrent workers and byte-compare the merge too.
#
# Exits non-zero the moment any step diverges — CI runs this as the
# `sweep-distributed` job, and it doubles as a local demo of the recipes
# in docs/sweep.md.
#
#   scripts/sweep_distributed_demo.sh [--bin PATH] [--workdir DIR]
#
#   --bin PATH     dtncache_sweep binary (default: build/apps/dtncache_sweep)
#   --workdir DIR  scratch directory (default: mktemp -d; kept on failure,
#                  removed on success unless explicitly provided)
set -euo pipefail
cd "$(dirname "$0")/.."

bin="build/apps/dtncache_sweep"
workdir=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --bin)       bin="$2"; shift 2 ;;
    --bin=*)     bin="${1#--bin=}"; shift ;;
    --workdir)   workdir="$2"; shift 2 ;;
    --workdir=*) workdir="${1#--workdir=}"; shift ;;
    *) echo "usage: $0 [--bin PATH] [--workdir DIR]" >&2; exit 2 ;;
  esac
done

[[ -x "$bin" ]] || {
  echo "error: $bin not found/executable — build it first:" >&2
  echo "  cmake -B build && cmake --build build --target dtncache_sweep" >&2
  exit 1
}

keep_workdir=0
if [[ -z "$workdir" ]]; then
  workdir="$(mktemp -d)"
else
  keep_workdir=1
  mkdir -p "$workdir"
fi

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

# The whole point is byte identity, so every run (reference, both
# coordinator generations, spool init) must describe the SAME sweep:
# identical grid, --no-wall, and trace settings — they all feed the
# manifest fingerprint.
sweep_args=(--trace=infocom --days=20 --schemes=all --seeds=4 --no-wall
            --trace-filter=job_start,job_done)
jobs_total=28  # 7 schemes x 4 seeds

wait_for_file() {  # path, tries (50ms each)
  local i
  for ((i = 0; i < $2; ++i)); do
    [[ -s "$1" ]] && return 0
    sleep 0.05
  done
  return 1
}

frag_count() { ls "$1/frags" 2>/dev/null | wc -l; }

echo "== reference: single-process --jobs 4 =="
"$bin" "${sweep_args[@]}" --jobs=4 --quiet \
  --jsonl="$workdir/ref.jsonl" --csv="$workdir/ref.csv" \
  --trace-out="$workdir/ref.trace"

echo "== distributed: coordinator + 2 workers, SIGKILL mid-sweep =="
store="$workdir/store"
"$bin" "${sweep_args[@]}" --store="$store" --coordinator --quiet \
  --jsonl="$workdir/doomed.jsonl" --csv="$workdir/doomed.csv" \
  --trace-out="$workdir/doomed.trace" &
coord=$!; pids+=("$coord")
wait_for_file "$store/coordinator.port" 200 || {
  echo "error: coordinator never published $store/coordinator.port" >&2
  exit 1
}
port="$(cat "$store/coordinator.port")"
"$bin" --worker="127.0.0.1:$port" --quiet & w1=$!; pids+=("$w1")
"$bin" --worker="127.0.0.1:$port" --quiet & w2=$!; pids+=("$w2")

# Let some fragments become durable, then kill one worker and the
# coordinator outright (kill -9: no flush, no goodbye).
for ((i = 0; i < 400; ++i)); do
  [[ "$(frag_count "$store")" -ge 4 ]] && break
  sleep 0.05
done
kill -9 "$w1" "$coord" 2>/dev/null || true
wait "$coord" 2>/dev/null || true
wait "$w1" 2>/dev/null || true
wait "$w2" 2>/dev/null || true  # loses its connection and exits on its own
survivors="$(frag_count "$store")"
echo "   killed with $survivors/$jobs_total fragments durable"
[[ "$survivors" -lt "$jobs_total" ]] || {
  echo "error: sweep finished before the kill — grid too small for this host" >&2
  exit 1
}

echo "== resume: new coordinator + replacement worker =="
rm -f "$store/coordinator.port"
"$bin" "${sweep_args[@]}" --store="$store" --coordinator --resume --quiet \
  --jsonl="$workdir/dist.jsonl" --csv="$workdir/dist.csv" \
  --trace-out="$workdir/dist.trace" &
coord=$!; pids+=("$coord")
wait_for_file "$store/coordinator.port" 200 || {
  echo "error: resumed coordinator never published its port" >&2
  exit 1
}
port="$(cat "$store/coordinator.port")"
"$bin" --worker="127.0.0.1:$port" --quiet & w3=$!; pids+=("$w3")
wait "$coord" || { echo "error: resumed coordinator failed" >&2; exit 1; }
wait "$w3" 2>/dev/null || true

python3 scripts/trace_summarize.py --sweep-store "$store"

for f in jsonl csv trace; do
  cmp "$workdir/ref.$f" "$workdir/dist.$f" || {
    echo "error: distributed $f output differs from the single-process reference" >&2
    exit 1
  }
done
echo "   distributed (killed + resumed) outputs byte-identical to --jobs 4"

echo "== spool mode: shared-directory workers, no networking =="
spool="$workdir/spool"
"$bin" "${sweep_args[@]}" --store="$spool" --spool-init --quiet \
  --trace-out="$workdir/sp.trace"
"$bin" --store="$spool" --spool-worker --quiet & s1=$!; pids+=("$s1")
"$bin" --store="$spool" --spool-worker --quiet & s2=$!; pids+=("$s2")
wait "$s1" || { echo "error: spool worker 1 failed" >&2; exit 1; }
wait "$s2" || { echo "error: spool worker 2 failed" >&2; exit 1; }
"$bin" --store="$spool" --merge --quiet \
  --jsonl="$workdir/sp.jsonl" --csv="$workdir/sp.csv" \
  --trace-out="$workdir/sp.trace"
for f in jsonl csv trace; do
  cmp "$workdir/ref.$f" "$workdir/sp.$f" || {
    echo "error: spool $f output differs from the single-process reference" >&2
    exit 1
  }
done
echo "   spool outputs byte-identical to --jobs 4"

echo "ok: distributed + spool sweeps reproduce the single-process bytes"
[[ "$keep_workdir" -eq 1 ]] || rm -rf "$workdir"
