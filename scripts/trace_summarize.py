#!/usr/bin/env python3
"""Summarize a dtncache structured event trace (JSONL).

Reads the output of `dtncache --trace-out=...` or `dtncache_sweep
--trace-out=...` (see docs/observability.md for the schema) and prints,
per run fingerprint:

  - an event-kind histogram;
  - pair-sparsity stats over contact events: distinct node pairs observed
    vs the n*(n-1)/2 possible, and the degree distribution — the numbers
    that decide whether the sparse pair-state backend pays off (see
    docs/scaling.md);
  - a per-item freshness timeline: for every version_bump, how the new
    version propagated through the caching set (pushes over time, time to
    first/median/last delivery before the next bump);
  - query outcome summary (local hits, delivered replies, fresh replies);
  - with --sweep-store DIR (no trace file needed), a distributed-sweep
    progress readout from the fragment store: jobs completed/total from the
    coordinator's status.jsonl counters, fragment count and bytes on disk,
    throughput in jobs/s from fragment mtimes, and an ETA for the jobs
    still outstanding (see docs/sweep.md);
  - with --shard-map FILE, a shard-plan audit: per-shard node and contact
    load balance plus the cross-shard contact ratio, for sizing the sharded
    kernel (sim.shards, see docs/scaling.md). FILE holds one shard id per
    node in node-id order (whitespace/newline separated; a JSON array also
    works).

Stdlib only; works on partial traces (kinds filtered out are skipped).

Usage:
  python3 scripts/trace_summarize.py trace.jsonl
  python3 scripts/trace_summarize.py --item 0 --per-version trace.jsonl
  python3 scripts/trace_summarize.py --shard-map plan.txt trace.jsonl
  dtncache --trace=infocom --trace-out=- --csv | python3 scripts/trace_summarize.py -
"""

import argparse
import collections
import glob
import json
import os
import sys
import time


def hours(seconds):
    return seconds / 3600.0


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def load_events(stream):
    """Parse JSONL events grouped by run label, preserving order."""
    runs = collections.defaultdict(list)
    for lineno, line in enumerate(stream, 1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as err:
            raise SystemExit(f"line {lineno}: not JSON: {err}")
        runs[event.get("run", "?")].append(event)
    return runs


def pair_sparsity(events):
    """Distinct contact pairs, node footprint, and degree spread.

    Counts every event kind that names a node pair (`a`, `b`): delivered,
    suppressed, and lost contacts all witness that the pair can meet, which
    is what sizes the sparse backend's state (docs/scaling.md).
    """
    pairs = set()
    contacts = 0
    degree = collections.Counter()
    max_node = -1
    for event in events:
        a, b = event.get("a"), event.get("b")
        if a is None or b is None:
            continue
        contacts += 1
        max_node = max(max_node, a, b)
        pair = (a, b) if a < b else (b, a)
        if pair not in pairs:
            pairs.add(pair)
            degree[a] += 1
            degree[b] += 1
    return contacts, pairs, degree, max_node + 1


def load_shard_map(path):
    """Node->shard map: whitespace-separated ints in node-id order.

    Tolerates a JSON array dump (`[0, 0, 1, ...]`) by stripping brackets and
    commas, so both hand-written plans and serialized ones work.
    """
    with open(path) as f:
        text = f.read()
    tokens = text.replace("[", " ").replace("]", " ").replace(",", " ").split()
    shard_map = [int(t) for t in tokens]
    if not shard_map:
        raise SystemExit(f"{path}: empty shard map")
    return shard_map


def shard_summary(events, shard_map):
    """Per-shard load and the cross-shard contact ratio under a given plan.

    Cross-shard contacts are the plan's coordination cost (their pair state
    lands on a hashed shard, and their endpoints' shards both observe the
    meeting); same-shard contacts stay entirely local. A cross ratio near
    zero with balanced per-shard load is what makes a plan worth using.
    """
    shards = max(shard_map) + 1
    same = cross = unmapped = 0
    # Same-shard contacts count fully toward their shard; cross-shard
    # contacts split evenly between the two endpoint shards, approximating
    # where the estimator/observability work lands.
    load = [0.0] * shards
    for event in events:
        a, b = event.get("a"), event.get("b")
        if a is None or b is None:
            continue
        if a >= len(shard_map) or b >= len(shard_map):
            unmapped += 1
            continue
        sa, sb = shard_map[a], shard_map[b]
        if sa == sb:
            same += 1
            load[sa] += 1.0
        else:
            cross += 1
            load[sa] += 0.5
            load[sb] += 0.5
    nodes_per_shard = collections.Counter(shard_map)
    print(f"\n  shard plan: {shards} shard(s) over {len(shard_map)} mapped node(s)")
    counts = [nodes_per_shard.get(s, 0) for s in range(shards)]
    print(f"    nodes/shard: min {min(counts)}, max {max(counts)}, "
          f"mean {len(shard_map) / shards:.1f}")
    total = same + cross
    if total:
        print(f"    contacts: {same} same-shard, {cross} cross-shard "
              f"(cross ratio {cross / total:.3f})")
        mean_load = total / shards
        imbalance = max(load) / mean_load if mean_load else 0.0
        print(f"    contact load/shard (cross split evenly): "
              f"min {min(load):.0f}, max {max(load):.0f}, "
              f"imbalance x{imbalance:.2f}")
    if unmapped:
        print(f"    WARNING: {unmapped} contact(s) touch nodes beyond the map")


def sweep_store_summary(store_dir):
    """Progress/throughput readout for a distributed-sweep fragment store.

    Reads the coordinator's status.jsonl (last counters line wins — the
    coordinator rewrites cumulative totals) for the job ledger, and the
    frags/ directory for on-disk completion. Throughput comes from fragment
    mtimes, so it reflects this run's pace even after a resume: resumed
    fragments keep their old mtimes and fall out of the recent window.
    """
    if not os.path.isdir(store_dir):
        raise SystemExit(f"error: sweep store {store_dir!r} is not a directory")
    counters = {}
    status_path = os.path.join(store_dir, "status.jsonl")
    try:
        with open(status_path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail of a live coordinator write
                if event.get("kind") == "counters":
                    counters = {k: v for k, v in event.items()
                                if k.startswith("ctr.sweep.")}
    except OSError:
        pass  # spool mode has no coordinator, hence no status file

    frags = glob.glob(os.path.join(store_dir, "frags", "*.frag"))
    frag_bytes = 0
    mtimes = []
    for path in frags:
        try:
            st = os.stat(path)
        except OSError:
            continue  # raced a rename/cleanup
        frag_bytes += st.st_size
        mtimes.append(st.st_mtime)

    total = counters.get("ctr.sweep.jobs_total", 0)
    done = len(frags)
    print(f"sweep store {store_dir}:")
    if total:
        pct = 100.0 * done / total
        print(f"  jobs: {done}/{total} complete ({pct:.1f}%)")
    else:
        print(f"  jobs: {done} fragment(s) on disk "
              "(no coordinator status.jsonl — total unknown)")
    for key, label in (("ctr.sweep.jobs_resumed", "resumed from store"),
                       ("ctr.sweep.jobs_released", "leases released"),
                       ("ctr.sweep.results_duplicate", "duplicate results"),
                       ("ctr.sweep.fragments_invalid", "invalid fragments dropped")):
        if counters.get(key):
            print(f"    {label}: {counters[key]}")
    print(f"  fragments: {done} file(s), {frag_bytes / 1024.0:.1f} KiB")

    # Rate over the most recent write window: fragments older than 10x the
    # median inter-arrival gap (or a resumed store's pre-crash work) would
    # drag the estimate; a simple span over the newest half avoids that.
    if len(mtimes) >= 2:
        recent = sorted(mtimes)[len(mtimes) // 2:]
        span = recent[-1] - recent[0]
        if len(recent) >= 2 and span > 0:
            rate = (len(recent) - 1) / span
            print(f"  throughput: {rate:.2f} jobs/s "
                  f"(over the newest {len(recent)} fragments)")
            remaining = total - done
            if remaining > 0:
                print(f"  ETA: {remaining / rate:.0f}s for "
                      f"{remaining} remaining job(s)")
            idle = time.time() - max(mtimes)
            if idle > 60 and 0 < done < total:
                print(f"  WARNING: newest fragment is {idle:.0f}s old — "
                      "workers may be stalled or dead (check leases/)")


def freshness_timelines(events, only_item=None):
    """Per item: version bumps in order, and each version's arrival delays."""
    # Count each copy's arrival once: prefer `install` events (one per copy
    # entering a store) when the trace carries them, else fall back to
    # `push` (they pair up 1:1 on successful transfers).
    arrival_kind = ("install" if any(e["kind"] == "install" for e in events)
                    else "push")
    bumps = {}  # item -> (version, bump time)
    delays = collections.defaultdict(list)  # (item, version) -> arrival delays
    order = []  # (item, version, bump time) in bump order
    for event in events:
        kind = event["kind"]
        if kind == "version_bump":
            item = event["item"]
            if only_item is not None and item != only_item:
                continue
            bumps[item] = (event["version"], event["t"])
            order.append((item, event["version"], event["t"]))
        elif kind == arrival_kind:
            item = event.get("item")
            if item not in bumps:
                continue
            version, bumped_at = bumps[item]
            if event.get("version") != version:
                continue
            delays[(item, version)].append(event["t"] - bumped_at)
    return order, delays


def summarize(run, events, args):
    # Live peer-daemon traces end with `"kind": "counters"` snapshot lines
    # carrying the registry's ctr.* values; split them out of the event
    # stream (they have no timestamp) and report them separately.
    counters = collections.Counter()
    for event in events:
        if event["kind"] == "counters":
            for key, value in event.items():
                if key.startswith("ctr."):
                    counters[key] += value
    events = [e for e in events if e["kind"] != "counters"]
    print(f"run {run}: {len(events)} event(s)")

    histogram = collections.Counter(e["kind"] for e in events)
    for kind, count in histogram.most_common():
        print(f"  {kind:<22} {count}")

    contacts, pairs, degree, nodes = pair_sparsity(events)
    if pairs:
        possible = nodes * (nodes - 1) // 2
        degrees = sorted(degree.values())
        print(f"\n  pair sparsity: {len(pairs)} distinct pair(s) over "
              f"{contacts} contact(s), >= {nodes} node(s)")
        if possible:
            print(f"    observed/possible: {len(pairs)}/{possible} "
                  f"({len(pairs) / possible:.3g})")
        print(f"    degree (nodes with contacts): median {median(degrees):.0f}, "
              f"max {degrees[-1]}, mean {2 * len(pairs) / len(degrees):.1f}")

    if args.shard_map_data is not None:
        shard_summary(events, args.shard_map_data)

    order, delays = freshness_timelines(events, args.item)
    if order:
        print("\n  freshness timelines (per version bump; delays in hours):")
        per_item = collections.defaultdict(list)
        for item, version, bumped_at in order:
            per_item[item].append((version, bumped_at))
        for item in sorted(per_item):
            spreads = []
            for version, bumped_at in per_item[item]:
                arrivals = delays.get((item, version), [])
                if not arrivals:
                    continue
                spreads.append(
                    (version, bumped_at, len(arrivals), min(arrivals),
                     median(arrivals), max(arrivals)))
            if args.per_version:
                print(f"    item {item}:")
                for version, bumped_at, n, lo, mid, hi in spreads:
                    print(f"      v{version} @ {hours(bumped_at):8.1f}h: "
                          f"{n} deliveries, first {hours(lo):6.2f}h, "
                          f"median {hours(mid):6.2f}h, last {hours(hi):6.2f}h")
            elif spreads:
                firsts = [s[3] for s in spreads]
                medians = [s[4] for s in spreads]
                lasts = [s[5] for s in spreads]
                copies = sum(s[2] for s in spreads)
                print(f"    item {item}: {len(spreads)} traced version(s), "
                      f"{copies} deliveries; per-version delay "
                      f"first {hours(median(firsts)):.2f}h / "
                      f"median {hours(median(medians)):.2f}h / "
                      f"last {hours(median(lasts)):.2f}h")

    queries = histogram.get("query", 0)
    if queries:
        replies = [e for e in events if e["kind"] == "reply_delivered"]
        fresh = sum(1 for e in replies if e.get("fresh"))
        local = histogram.get("query_local_hit", 0)
        print(f"\n  queries: {queries} issued, {local} local hits, "
              f"{len(replies)} replies delivered ({fresh} fresh)")
        if replies:
            reply_delays = [e["delay"] for e in replies if "delay" in e]
            if reply_delays:
                print(f"  reply delay: median {hours(median(reply_delays)):.2f}h, "
                      f"max {hours(max(reply_delays)):.2f}h")

    if counters:
        print("\n  counters:")
        for key in sorted(counters):
            print(f"    {key:<32} {counters[key]}")
        # Fence-density readout (docs/scaling.md): what fraction of contacts
        # the activity fence classifies as boring (parallelizable), and how
        # many of the remainder are fenced purely by expired content — the
        # population the expiry watermarks reclaim.
        fence = counters.get("ctr.shard.fence_contacts", 0)
        boring = counters.get("ctr.shard.boring_contacts", 0)
        if fence + boring:
            expired_only = counters.get("ctr.shard.fence_from_expired_only", 0)
            print(f"\n  fence density: {fence} fence / {boring} boring "
                  f"(boring fraction {boring / (fence + boring):.3f}); "
                  f"{expired_only} boring contact(s) had an endpoint holding "
                  f"only expired content")


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", nargs="?", default=None,
                        help="JSONL trace file, or '-' for stdin")
    parser.add_argument("--item", type=int, default=None,
                        help="restrict freshness timelines to one item id")
    parser.add_argument("--per-version", action="store_true",
                        help="print one timeline row per version bump")
    parser.add_argument("--shard-map", metavar="FILE", default=None,
                        help="node->shard map (one shard id per node, "
                             "node-id order): print per-shard balance and "
                             "the cross-shard contact ratio")
    parser.add_argument("--sweep-store", metavar="DIR", default=None,
                        help="distributed-sweep fragment store: print job "
                             "progress, fragment footprint, jobs/s, and ETA")
    args = parser.parse_args()
    args.shard_map_data = (load_shard_map(args.shard_map)
                           if args.shard_map else None)

    if args.sweep_store is not None:
        sweep_store_summary(args.sweep_store)
        if args.trace is None:
            return
        print()
    elif args.trace is None:
        parser.error("need a trace file (or --sweep-store DIR)")

    stream = sys.stdin if args.trace == "-" else open(args.trace)
    with stream:
        runs = load_events(stream)
    if not runs:
        raise SystemExit("no events found")
    for index, (run, events) in enumerate(runs.items()):
        if index:
            print()
        summarize(run, events, args)


if __name__ == "__main__":
    main()
