#!/usr/bin/env bash
# Localhost convergence demo for dtncache_peerd (see docs/peerd.md).
#
# Boots NODES peer daemons on 127.0.0.1, each the source of one catalog
# item, and proves three things end to end:
#
#   1. every peer converges to the freshest version (v$BUMP_LIMIT) of
#      EVERY item, over the real TCP wire protocol;
#   2. a peer killed with SIGKILL mid-propagation and restarted from its
#      append-only store resumes its source versions from disk instead of
#      restarting at v1 (its restart trace never bumps version 1 again),
#      then finishes converging over the wire;
#   3. live traces carry the same JSONL schema as simulation traces, so
#      scripts/trace_summarize.py reads them unchanged.
#
# Usage:
#   scripts/peerd_demo.sh                 # 3 peers, build/ binaries
#   NODES=5 BUILD_DIR=build scripts/peerd_demo.sh
#   OUT_DIR=/tmp/demo scripts/peerd_demo.sh   # keep artifacts there
#
# Exits 0 and prints "peerd demo PASS" only when every check holds.

set -euo pipefail

BUILD_DIR=${BUILD_DIR:-build}
PEERD=$BUILD_DIR/apps/dtncache_peerd
NODES=${NODES:-3}
BUMP_LIMIT=${BUMP_LIMIT:-5}
BASE_PORT=${BASE_PORT:-$((20000 + RANDOM % 20000))}
RUN_SECONDS=${RUN_SECONDS:-8}
KILL_AFTER=${KILL_AFTER:-1}
OUT_DIR=${OUT_DIR:-$(mktemp -d /tmp/peerd-demo.XXXXXX)}
VICTIM=1  # the peer we SIGKILL and restart

[ -x "$PEERD" ] || { echo "error: $PEERD not built (cmake --build $BUILD_DIR --target dtncache_peerd)"; exit 1; }
[ "$NODES" -ge 3 ] || { echo "error: the demo needs at least 3 peers"; exit 1; }
mkdir -p "$OUT_DIR"

pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2> /dev/null || true; done
  wait 2> /dev/null || true
}
trap cleanup EXIT

port_of() { echo $((BASE_PORT + $1)); }

# Each node dials every lower-numbered node; higher ones dial it. The
# resulting contact graph is complete without double-dialing.
peers_of() {
  local i=$1 list="" j
  for ((j = 0; j < i; j++)); do
    list+="${list:+,}127.0.0.1:$(port_of "$j")"
  done
  echo "$list"
}

write_config() {
  local i=$1 run_seconds=$2 trace=$3
  cat > "$OUT_DIR/peer$i.json" <<EOF
{
  "peer.node": $i,
  "peer.nodeCount": $NODES,
  "peer.itemCount": $NODES,
  "peer.listenPort": $(port_of "$i"),
  "peer.peers": "$(peers_of "$i")",
  "peer.storePath": "$OUT_DIR/peer$i.store",
  "peer.tracePath": "$trace",
  "peer.vvIntervalSeconds": 0.2,
  "peer.bumpIntervalSeconds": 0.4,
  "peer.bumpLimit": $BUMP_LIMIT,
  "peer.maintenanceIntervalSeconds": 1.0,
  "peer.reconnectBaseSeconds": 0.2,
  "peer.reconnectMaxSeconds": 1.0,
  "peer.runSeconds": $run_seconds
}
EOF
}

start_peer() {
  local i=$1 config=$2 log=$3
  "$PEERD" --config="$config" >> "$log" 2>&1 &
  pids[i]=$!
}

echo "== peerd demo: $NODES peers on 127.0.0.1:$BASE_PORT+, artifacts in $OUT_DIR"
for ((i = 0; i < NODES; i++)); do
  write_config "$i" "$RUN_SECONDS" "$OUT_DIR/peer$i.jsonl"
  start_peer "$i" "$OUT_DIR/peer$i.json" "$OUT_DIR/peer$i.out"
done

# Sources bump every 0.4 s up to v$BUMP_LIMIT, so the kill lands
# mid-propagation: the victim has persisted a couple of its own versions
# (it must resume from them) but the freshest versions of the other items
# only arrive after its restart (so its restart trace shows live installs).
sleep "$KILL_AFTER"
echo "== kill -9 peer $VICTIM (pid ${pids[$VICTIM]}) and restart it from its store"
kill -9 "${pids[$VICTIM]}"
wait "${pids[$VICTIM]}" 2> /dev/null || true
write_config "$VICTIM" $((RUN_SECONDS - KILL_AFTER)) "$OUT_DIR/peer$VICTIM-restart.jsonl"
start_peer "$VICTIM" "$OUT_DIR/peer$VICTIM.json" "$OUT_DIR/peer$VICTIM-restart.out"

for pid in "${pids[@]}"; do wait "$pid"; done
trap - EXIT

# -- check 1: every peer's exit line reports every item at v$BUMP_LIMIT ------
want=""
for ((i = 0; i < NODES; i++)); do want+=" item$i=v$BUMP_LIMIT"; done
for ((i = 0; i < NODES; i++)); do
  log="$OUT_DIR/peer$i.out"
  [ "$i" = "$VICTIM" ] && log="$OUT_DIR/peer$VICTIM-restart.out"
  grep -qF "$want" "$log" || {
    echo "FAIL: peer $i did not converge; exit line:"; tail -1 "$log"; exit 1; }
done
echo "ok: all $NODES peers report every item at v$BUMP_LIMIT"

# -- check 2: traces show the freshest version arriving over the wire --------
for ((i = 0; i < NODES; i++)); do
  trace="$OUT_DIR/peer$i.jsonl"
  [ "$i" = "$VICTIM" ] && trace="$OUT_DIR/peer$VICTIM-restart.jsonl"
  grep -q "\"kind\": \"install\".*\"version\": $BUMP_LIMIT" "$trace" || {
    echo "FAIL: peer $i trace has no v$BUMP_LIMIT install"; exit 1; }
  grep -q '"kind": "counters"' "$trace" || {
    echo "FAIL: peer $i trace is missing the counters line"; exit 1; }
done
echo "ok: every trace shows a v$BUMP_LIMIT install and a counters snapshot"

# -- check 3: the restarted peer resumed from disk, it did not restart at v1 -
# Before the kill it persisted at least v1 of its own item; a daemon that
# lost its store would re-issue v1 after restart. Resuming means the
# restart trace continues from the persisted version and never bumps v1.
if grep -q '"kind": "version_bump", "item": '"$VICTIM"', "version": 1}' \
    "$OUT_DIR/peer$VICTIM-restart.jsonl"; then
  echo "FAIL: restarted peer $VICTIM re-issued v1 instead of resuming from its store"
  exit 1
fi
echo "ok: peer $VICTIM resumed its source versions from the append-only store after kill -9"

echo "peerd demo PASS: $NODES peers converged, kill-and-restart survived"
