#!/usr/bin/env python3
"""Compare two bench_kernel JSON snapshots and flag regressions.

Usage:
    scripts/bench_compare.py BASE[:LABEL] CAND[:LABEL] [--threshold PCT]
    scripts/bench_compare.py --before BASE[:LABEL] --after CAND[:LABEL]

Each argument is a JSON file written by `bench_kernel --json=...` (a single
snapshot) or a committed BENCH_kernel.json (a `snapshots` list — append
`:LABEL` to pick one; defaults to the last snapshot in the file).

For every metric present in both snapshots the tool prints base, candidate,
and the percentage delta, oriented so positive is always an improvement
(throughput metrics up, latency/footprint metrics down). Exits 1 if any
throughput metric regressed by more than --threshold percent (default 10),
which makes it usable as a CI gate; footprint metrics are informational.

With --gate REGEX, only metrics whose full `bench.metric` name matches the
regex participate in the exit code; everything else is printed for context
but cannot fail the run. CI uses this to hard-gate the end-to-end
experiment throughput (`--gate 'sim_experiment_.*\\.events_per_sec'`) while
leaving the noisier micro-metrics informational on shared runners.

With --before/--after the tool instead prints a report-only per-bench
speedup table (one row per benchmark, ratio of its primary throughput
metric) and always exits 0 — the format used to document optimization PRs,
e.g. the incremental-maintenance before/after pair:

    scripts/bench_compare.py --before BENCH_kernel.json:pr4-maint-before \\
                             --after BENCH_kernel.json:pr5-maint-after

With --shards SNAP, the tool prints a report-only shard-scaling table from a
single snapshot: every benchmark with `_shardsN` variants gets one row per
shard count (1 = the plain-kernel base run) showing wall time, event
throughput, speedup over shards=1, and the fraction of contacts that ran on
worker threads (the Amdahl bound on further scaling). Always exits 0:

    scripts/bench_compare.py --shards BENCH_kernel.json:pr8-shard-after
"""

import argparse
import json
import re
import sys

# metric-name suffix -> direction. "up" means bigger is better.
DIRECTIONS = {
    "per_sec": "up",
    "ns_per_event": "down",
    "ns_per_op": "down",
    "us_per_plan": "down",
    "us_per_tick": "down",
    "us_per_snapshot": "down",
    "wall_ms": "down",
    "peak_pending": "down",
    # Fraction of contacts the sharded kernel ran off the coordinator — a
    # deterministic classification ratio (no runner noise), so CI gates it
    # with a tight threshold on the _shardsN presets (docs/scaling.md).
    "boring_fraction": "up",
}

# Metrics that gate the exit code (throughput + latency, plus the
# deterministic boring_fraction classification ratio). Footprint and
# run-shape counters (contacts, assignments, events_processed) only inform.
GATING_SUFFIXES = ("per_sec", "ns_per_event", "ns_per_op", "us_per_plan",
                   "boring_fraction")


def direction_of(metric: str):
    for suffix, d in DIRECTIONS.items():
        if metric.endswith(suffix):
            return d
    return None


def load_snapshot(spec: str):
    """`file.json` or `file.json:label` -> (label, results dict).

    Every malformation exits with a one-line diagnosis instead of a
    traceback: missing file, invalid JSON, no snapshots, unknown label, or a
    snapshot without a results table.
    """
    path, _, label = spec.partition(":")
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: {path} is not valid JSON ({e})")
    if not isinstance(doc, dict):
        sys.exit(f"error: {path} is not a bench snapshot file (expected a JSON object)")
    snapshots = doc.get("snapshots", [doc] if "results" in doc else [])
    if not isinstance(snapshots, list) or not snapshots:
        sys.exit(f"error: {path} contains no bench snapshots")
    if label:
        matches = [s for s in snapshots if isinstance(s, dict) and s.get("label") == label]
        if not matches:
            known = ", ".join(s.get("label", "?") for s in snapshots
                              if isinstance(s, dict)) or "none"
            sys.exit(f"error: no snapshot labelled {label!r} in {path} (have: {known})")
        snap = matches[-1]
    else:
        snap = snapshots[-1]
    if not isinstance(snap, dict) or not isinstance(snap.get("results"), dict):
        sys.exit(f"error: snapshot {spec!r} has no results table (malformed "
                 "snapshot — regenerate with scripts/bench_baseline.sh)")
    return snap.get("label", path), snap["results"]


def metric_tables(results: dict, bench: str):
    """results[bench] as a metric dict, or None when malformed."""
    table = results.get(bench)
    return table if isinstance(table, dict) else None


def speedup_table(before_spec: str, after_spec: str):
    """Report-only per-bench speedup table: ratio of each benchmark's
    primary throughput metric (first `*_per_sec` in name order)."""
    before_label, before = load_snapshot(before_spec)
    after_label, after = load_snapshot(after_spec)
    print(f"before: {before_label}")
    print(f"after:  {after_label}")
    print(f"{'bench':<28} {'metric':>18} {'before':>14} {'after':>14} {'speedup':>9}")
    for bench in sorted(set(before) & set(after)):
        b_table, a_table = metric_tables(before, bench), metric_tables(after, bench)
        if b_table is None or a_table is None:
            continue
        throughputs = sorted(
            m for m in set(b_table) & set(a_table)
            if m.endswith("per_sec")
            and isinstance(b_table[m], (int, float))
            and isinstance(a_table[m], (int, float)))
        if not throughputs:
            continue
        metric = throughputs[0]
        b, a = b_table[metric], a_table[metric]
        ratio = f"x{a / b:.2f}" if b > 0 else "n/a"
        print(f"{bench:<28} {metric:>18} {b:>14.6g} {a:>14.6g} {ratio:>9}")


def shard_table(spec: str):
    """Report-only shard-scaling table: for each bench with `_shardsN`
    variants, one row per shard count with speedup over the shards=1 base."""
    label, results = load_snapshot(spec)
    print(f"snapshot: {label}")
    groups = {}
    for bench in results:
        if metric_tables(results, bench) is None:
            continue
        m = re.fullmatch(r"(.*)_shards(\d+)", bench)
        if m and metric_tables(results, m.group(1)) is not None:
            groups.setdefault(m.group(1), {})[int(m.group(2))] = bench
    if not groups:
        print("no *_shardsN benchmarks in this snapshot")
        return
    print(f"{'bench':<32} {'shards':>6} {'wall_ms':>10} {'events/s':>12} "
          f"{'speedup':>8} {'boring':>7}")
    for base in sorted(groups):
        variants = {1: base, **groups[base]}
        base_eps = results[base].get("events_per_sec")
        for k in sorted(variants):
            r = results[variants[k]]
            eps = r.get("events_per_sec")
            wall = r.get("wall_ms")
            speed = f"x{eps / base_eps:.2f}" if base_eps and eps else "n/a"
            boring = r.get("boring_fraction")
            boring_s = f"{boring:.2f}" if isinstance(boring, (int, float)) else "-"
            wall_s = f"{wall:.4g}" if isinstance(wall, (int, float)) else "-"
            eps_s = f"{eps:.6g}" if isinstance(eps, (int, float)) else "-"
            print(f"{base:<32} {k:>6} {wall_s:>10} {eps_s:>12} {speed:>8} {boring_s:>7}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("base", nargs="?", help="baseline snapshot: FILE[:LABEL]")
    ap.add_argument("candidate", nargs="?", help="candidate snapshot: FILE[:LABEL]")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="max tolerated regression on gating metrics, in percent")
    ap.add_argument("--gate", metavar="REGEX", default=None,
                    help="restrict the exit-code gate to bench.metric names "
                         "matching this regex (default: gate every "
                         "throughput/latency metric)")
    ap.add_argument("--before", metavar="FILE[:LABEL]", default=None,
                    help="report-only mode: print a per-bench speedup table "
                         "from this snapshot to --after (exit 0 always)")
    ap.add_argument("--after", metavar="FILE[:LABEL]", default=None,
                    help="the 'after' snapshot for --before")
    ap.add_argument("--shards", metavar="FILE[:LABEL]", default=None,
                    help="report-only mode: print a shard-scaling table from "
                         "one snapshot's *_shardsN benchmarks (exit 0 always)")
    args = ap.parse_args()

    if args.shards is not None:
        if args.base or args.candidate or args.before or args.after:
            ap.error("--shards replaces the other snapshot arguments")
        shard_table(args.shards)
        return
    if (args.before is None) != (args.after is None):
        ap.error("--before and --after must be used together")
    if args.before is not None:
        if args.base or args.candidate:
            ap.error("--before/--after replaces the positional snapshots")
        speedup_table(args.before, args.after)
        return
    if args.base is None or args.candidate is None:
        ap.error("need BASE and CANDIDATE snapshots (or --before/--after)")

    base_label, base = load_snapshot(args.base)
    cand_label, cand = load_snapshot(args.candidate)

    print(f"base:      {base_label}")
    print(f"candidate: {cand_label}")
    print(f"{'metric':<44} {'base':>14} {'cand':>14} {'delta':>9}")

    regressions = []
    for bench in sorted(set(base) & set(cand)):
        b_table, c_table = metric_tables(base, bench), metric_tables(cand, bench)
        if b_table is None or c_table is None:
            continue
        for metric in sorted(set(b_table) & set(c_table)):
            b, c = b_table[metric], c_table[metric]
            if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
                continue
            d = direction_of(metric)
            name = f"{bench}.{metric}"
            if d is None or b == 0:
                print(f"{name:<44} {b:>14.6g} {c:>14.6g} {'':>9}")
                continue
            # Positive delta = improvement, regardless of direction.
            delta = (c - b) / b * 100.0 if d == "up" else (b - c) / b * 100.0
            flag = ""
            gated = metric.endswith(GATING_SUFFIXES) and (
                args.gate is None or re.search(args.gate, name))
            if gated and delta < -args.threshold:
                regressions.append((name, delta))
                flag = "  << REGRESSION"
            print(f"{name:<44} {b:>14.6g} {c:>14.6g} {delta:>+8.1f}%{flag}")

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed beyond {args.threshold}%:",
              file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        sys.exit(1)
    print("\nno gating regressions")


if __name__ == "__main__":
    main()
