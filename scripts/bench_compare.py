#!/usr/bin/env python3
"""Compare two bench_kernel JSON snapshots and flag regressions.

Usage:
    scripts/bench_compare.py BASE[:LABEL] CAND[:LABEL] [--threshold PCT]

Each argument is a JSON file written by `bench_kernel --json=...` (a single
snapshot) or a committed BENCH_kernel.json (a `snapshots` list — append
`:LABEL` to pick one; defaults to the last snapshot in the file).

For every metric present in both snapshots the tool prints base, candidate,
and the percentage delta, oriented so positive is always an improvement
(throughput metrics up, latency/footprint metrics down). Exits 1 if any
throughput metric regressed by more than --threshold percent (default 10),
which makes it usable as a CI gate; footprint metrics are informational.

With --gate REGEX, only metrics whose full `bench.metric` name matches the
regex participate in the exit code; everything else is printed for context
but cannot fail the run. CI uses this to hard-gate the end-to-end
experiment throughput (`--gate 'sim_experiment_.*\\.events_per_sec'`) while
leaving the noisier micro-metrics informational on shared runners.
"""

import argparse
import json
import re
import sys

# metric-name suffix -> direction. "up" means bigger is better.
DIRECTIONS = {
    "per_sec": "up",
    "ns_per_event": "down",
    "ns_per_op": "down",
    "us_per_plan": "down",
    "wall_ms": "down",
    "peak_pending": "down",
}

# Metrics that gate the exit code (throughput + latency). Footprint and
# run-shape counters (contacts, assignments, events_processed) only inform.
GATING_SUFFIXES = ("per_sec", "ns_per_event", "ns_per_op", "us_per_plan")


def direction_of(metric: str):
    for suffix, d in DIRECTIONS.items():
        if metric.endswith(suffix):
            return d
    return None


def load_snapshot(spec: str):
    """`file.json` or `file.json:label` -> (label, results dict)."""
    path, _, label = spec.partition(":")
    with open(path) as f:
        doc = json.load(f)
    snapshots = doc.get("snapshots", [doc] if "results" in doc else [])
    if not snapshots:
        sys.exit(f"error: {path} contains no bench snapshots")
    if label:
        matches = [s for s in snapshots if s.get("label") == label]
        if not matches:
            known = ", ".join(s.get("label", "?") for s in snapshots)
            sys.exit(f"error: no snapshot labelled {label!r} in {path} (have: {known})")
        snap = matches[-1]
    else:
        snap = snapshots[-1]
    return snap.get("label", path), snap["results"]


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("base", help="baseline snapshot: FILE[:LABEL]")
    ap.add_argument("candidate", help="candidate snapshot: FILE[:LABEL]")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="max tolerated regression on gating metrics, in percent")
    ap.add_argument("--gate", metavar="REGEX", default=None,
                    help="restrict the exit-code gate to bench.metric names "
                         "matching this regex (default: gate every "
                         "throughput/latency metric)")
    args = ap.parse_args()

    base_label, base = load_snapshot(args.base)
    cand_label, cand = load_snapshot(args.candidate)

    print(f"base:      {base_label}")
    print(f"candidate: {cand_label}")
    print(f"{'metric':<44} {'base':>14} {'cand':>14} {'delta':>9}")

    regressions = []
    for bench in sorted(set(base) & set(cand)):
        for metric in sorted(set(base[bench]) & set(cand[bench])):
            b, c = base[bench][metric], cand[bench][metric]
            if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
                continue
            d = direction_of(metric)
            name = f"{bench}.{metric}"
            if d is None or b == 0:
                print(f"{name:<44} {b:>14.6g} {c:>14.6g} {'':>9}")
                continue
            # Positive delta = improvement, regardless of direction.
            delta = (c - b) / b * 100.0 if d == "up" else (b - c) / b * 100.0
            flag = ""
            gated = metric.endswith(GATING_SUFFIXES) and (
                args.gate is None or re.search(args.gate, name))
            if gated and delta < -args.threshold:
                regressions.append((name, delta))
                flag = "  << REGRESSION"
            print(f"{name:<44} {b:>14.6g} {c:>14.6g} {delta:>+8.1f}%{flag}")

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed beyond {args.threshold}%:",
              file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        sys.exit(1)
    print("\nno gating regressions")


if __name__ == "__main__":
    main()
