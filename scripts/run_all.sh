#!/usr/bin/env bash
# Build, test, and regenerate every experiment table into bench_output.txt.
#
#   scripts/run_all.sh [--jobs N]
#
# --jobs (default: nproc) drives the build, ctest, and the sweep-backed
# benches. Bench tables are deterministic at any jobs count (the sweep
# engine aggregates in grid order), so bench_output.txt is comparable
# across machines and parallelism levels. Bench stderr (progress noise)
# stays on the console; only stdout lands in bench_output.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs)   jobs="$2"; shift 2 ;;
    --jobs=*) jobs="${1#--jobs=}"; shift ;;
    *) echo "usage: $0 [--jobs N]" >&2; exit 2 ;;
  esac
done

cmake -B build -G Ninja ||
  { echo "error: cmake configure failed (exit $?)" >&2; exit 1; }
cmake --build build -j "$jobs" ||
  { echo "error: build failed (exit $?)" >&2; exit 1; }
# `set -o pipefail` already fails the pipeline, but a bare `tee` exit hides
# which side died; say so explicitly and point at the transcript.
if ! ctest --test-dir build -j "$jobs" 2>&1 | tee test_output.txt; then
  echo "error: ctest failed — see test_output.txt for the failing tests" >&2
  exit 1
fi

# Explicit bench order (paper table order), not glob order — a new binary
# appearing mid-alphabet must not reshuffle bench_output.txt.
benches=(
  bench_trace_stats        # T1
  bench_freshness_time     # F2
  bench_freshness_tau      # F3
  bench_freshness_ncl      # F4
  bench_theta_guarantee    # F5
  bench_overhead           # F6
  bench_query_validity     # F7
  bench_ablation_hierarchy # F8
  bench_ablation_estimator # F9
  bench_load_balance       # F10
  bench_churn              # F11
  bench_energy             # F12 (extension)
  bench_allocation         # F13 (extension)
  bench_scaling            # F14 (extension)
)

# Sweep-backed benches accept --jobs; the others ignore argv entirely.
sweep_backed=" bench_freshness_time bench_freshness_tau bench_freshness_ncl bench_theta_guarantee bench_scaling "

# Each bench failure aborts with its name and exit code — a partial
# bench_output.txt must never pass silently as a regenerated table set.
{
  for b in "${benches[@]}"; do
    if [[ "$sweep_backed" == *" $b "* ]]; then
      "build/bench/$b" --jobs "$jobs"
    else
      "build/bench/$b"
    fi || {
      rc=$?
      echo "error: build/bench/$b failed (exit $rc); bench_output.txt is incomplete" >&2
      exit "$rc"
    }
  done
} | tee bench_output.txt
echo "done: test_output.txt, bench_output.txt (jobs=$jobs)"
