#!/usr/bin/env bash
# Build, test, and regenerate every experiment table into bench_output.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/bench_*; do "$b"; done 2>&1 | tee bench_output.txt
echo "done: test_output.txt, bench_output.txt"
