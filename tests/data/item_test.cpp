#include "data/item.hpp"

#include <gtest/gtest.h>

namespace dtncache::data {
namespace {

ItemSpec spec(sim::SimTime tau = 100.0, sim::SimTime lifetime = 200.0,
              sim::SimTime birth = 0.0) {
  ItemSpec s;
  s.id = 0;
  s.source = 3;
  s.refreshPeriod = tau;
  s.lifetime = lifetime;
  s.birth = birth;
  return s;
}

TEST(VersionClock, CurrentVersionAdvancesPeriodically) {
  VersionClock c(spec());
  EXPECT_EQ(c.currentVersion(0.0), 0u);
  EXPECT_EQ(c.currentVersion(99.9), 0u);
  EXPECT_EQ(c.currentVersion(100.0), 1u);
  EXPECT_EQ(c.currentVersion(250.0), 2u);
  EXPECT_EQ(c.currentVersion(1000.0), 10u);
}

TEST(VersionClock, BirthOffset) {
  VersionClock c(spec(100.0, 200.0, 50.0));
  EXPECT_EQ(c.currentVersion(0.0), 0u);
  EXPECT_EQ(c.currentVersion(149.0), 0u);
  EXPECT_EQ(c.currentVersion(150.0), 1u);
  EXPECT_DOUBLE_EQ(c.creationTime(1), 150.0);
}

TEST(VersionClock, CreationTimeInvertsCurrentVersion) {
  VersionClock c(spec());
  for (Version v = 0; v < 20; ++v) {
    EXPECT_EQ(c.currentVersion(c.creationTime(v)), v);
    EXPECT_EQ(c.currentVersion(c.creationTime(v) + 99.0), v);
  }
}

TEST(VersionClock, NextRefreshAfter) {
  VersionClock c(spec());
  EXPECT_DOUBLE_EQ(c.nextRefreshAfter(0.0), 100.0);
  EXPECT_DOUBLE_EQ(c.nextRefreshAfter(100.0), 200.0);
  EXPECT_DOUBLE_EQ(c.nextRefreshAfter(150.0), 200.0);
}

TEST(VersionClock, FreshnessTracksCurrentVersion) {
  VersionClock c(spec());
  EXPECT_TRUE(c.isFresh(0, 50.0));
  EXPECT_FALSE(c.isFresh(0, 150.0));
  EXPECT_TRUE(c.isFresh(1, 150.0));
  EXPECT_FALSE(c.isFresh(2, 150.0));  // future versions are not "fresh now"
}

TEST(VersionClock, ExpiryAtLifetime) {
  VersionClock c(spec(100.0, 150.0));
  EXPECT_TRUE(c.isValid(0, 149.0));
  EXPECT_FALSE(c.isValid(0, 150.0));
  // Version 1 created at 100, expires at 250.
  EXPECT_TRUE(c.isValid(1, 249.0));
  EXPECT_TRUE(c.isExpired(1, 250.0));
}

TEST(VersionClock, StaleButValidWindow) {
  // lifetime = 2τ: a copy is stale for its second period but still valid.
  VersionClock c(spec(100.0, 200.0));
  EXPECT_FALSE(c.isFresh(0, 150.0));
  EXPECT_TRUE(c.isValid(0, 150.0));
  EXPECT_FALSE(c.isValid(0, 200.0));
}

TEST(VersionClock, LifetimeShorterThanPeriodRejected) {
  EXPECT_THROW(VersionClock(spec(100.0, 50.0)), InvariantViolation);
}

TEST(Catalog, DenseIdsEnforced) {
  ItemSpec a = spec();
  a.id = 1;  // should have been 0
  EXPECT_THROW(Catalog({a}), InvariantViolation);
}

TEST(Catalog, ItemsOfFindsSources) {
  CatalogConfig cfg;
  cfg.itemCount = 6;
  cfg.nodeCount = 3;
  const Catalog c = makeUniformCatalog(cfg);
  std::size_t total = 0;
  for (NodeId n = 0; n < 3; ++n) total += c.itemsOf(n).size();
  EXPECT_EQ(total, 6u);
}

TEST(Catalog, UniformCatalogShape) {
  CatalogConfig cfg;
  cfg.itemCount = 10;
  cfg.nodeCount = 50;
  cfg.refreshPeriod = sim::hours(4);
  cfg.lifetimeFactor = 3.0;
  const Catalog c = makeUniformCatalog(cfg);
  ASSERT_EQ(c.size(), 10u);
  for (ItemId id = 0; id < 10; ++id) {
    EXPECT_EQ(c.spec(id).id, id);
    EXPECT_LT(c.spec(id).source, 50u);
    EXPECT_DOUBLE_EQ(c.spec(id).refreshPeriod, sim::hours(4));
    EXPECT_DOUBLE_EQ(c.spec(id).lifetime, sim::hours(12));
  }
}

TEST(Catalog, SourcesAreSpreadAcrossNodes) {
  CatalogConfig cfg;
  cfg.itemCount = 5;
  cfg.nodeCount = 97;
  const Catalog c = makeUniformCatalog(cfg);
  // No two of the first handful of items should share a source.
  for (ItemId i = 0; i < 5; ++i)
    for (ItemId j = i + 1; j < 5; ++j)
      EXPECT_NE(c.spec(i).source, c.spec(j).source);
}

}  // namespace
}  // namespace dtncache::data
