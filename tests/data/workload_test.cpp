#include "data/workload.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dtncache::data {
namespace {

Catalog smallCatalog(std::size_t items = 5) {
  CatalogConfig cfg;
  cfg.itemCount = items;
  cfg.nodeCount = 20;
  return makeUniformCatalog(cfg);
}

WorkloadConfig baseConfig() {
  WorkloadConfig w;
  w.queriesPerNodePerDay = 4.0;
  w.zipfExponent = 1.0;
  w.queryDeadline = sim::hours(6);
  w.start = 0.0;
  w.end = sim::days(10);
  w.seed = 3;
  return w;
}

TEST(QueryWorkload, VolumeMatchesRate) {
  sim::Simulator s;
  const Catalog c = smallCatalog();
  QueryWorkload w(s, c, 20, baseConfig());
  // E[#queries] = 4 * 20 nodes * 10 days = 800.
  const auto n = static_cast<double>(w.plannedQueries().size());
  EXPECT_NEAR(n, 800.0, 90.0);
}

TEST(QueryWorkload, ListenersFireForEveryPlannedQuery) {
  sim::Simulator s;
  const Catalog c = smallCatalog();
  QueryWorkload w(s, c, 20, baseConfig());
  std::size_t fired = 0;
  w.addListener([&](const Query&) { ++fired; });
  s.run();
  EXPECT_EQ(fired, w.plannedQueries().size());
  EXPECT_EQ(w.issuedCount(), w.plannedQueries().size());
}

TEST(QueryWorkload, QueriesAreTimeOrderedWithinWindow) {
  sim::Simulator s;
  const Catalog c = smallCatalog();
  const auto cfg = baseConfig();
  QueryWorkload w(s, c, 20, cfg);
  sim::SimTime last = 0.0;
  for (const Query& q : w.plannedQueries()) {
    EXPECT_GE(q.issueTime, last);
    EXPECT_LT(q.issueTime, cfg.end);
    EXPECT_DOUBLE_EQ(q.deadline, q.issueTime + cfg.queryDeadline);
    last = q.issueTime;
  }
}

TEST(QueryWorkload, RequestersInRangeAndIdsUnique) {
  sim::Simulator s;
  const Catalog c = smallCatalog();
  QueryWorkload w(s, c, 20, baseConfig());
  std::vector<bool> seen(1 + w.plannedQueries().size(), false);
  for (const Query& q : w.plannedQueries()) {
    EXPECT_LT(q.requester, 20u);
    ASSERT_LT(q.id, seen.size());
    EXPECT_FALSE(seen[q.id]);
    seen[q.id] = true;
  }
}

TEST(QueryWorkload, ZipfSkewsItemPopularity) {
  sim::Simulator s;
  const Catalog c = smallCatalog(10);
  auto cfg = baseConfig();
  cfg.zipfExponent = 1.2;
  cfg.end = sim::days(50);
  QueryWorkload w(s, c, 20, cfg);
  std::vector<std::size_t> counts(10, 0);
  for (const Query& q : w.plannedQueries()) ++counts[q.item];
  EXPECT_GT(counts[0], counts[9] * 3);
}

TEST(QueryWorkload, DeterministicInSeed) {
  sim::Simulator s1, s2;
  const Catalog c = smallCatalog();
  QueryWorkload w1(s1, c, 20, baseConfig());
  QueryWorkload w2(s2, c, 20, baseConfig());
  ASSERT_EQ(w1.plannedQueries().size(), w2.plannedQueries().size());
  for (std::size_t i = 0; i < w1.plannedQueries().size(); ++i) {
    EXPECT_DOUBLE_EQ(w1.plannedQueries()[i].issueTime, w2.plannedQueries()[i].issueTime);
    EXPECT_EQ(w1.plannedQueries()[i].item, w2.plannedQueries()[i].item);
    EXPECT_EQ(w1.plannedQueries()[i].requester, w2.plannedQueries()[i].requester);
  }
}

TEST(QueryWorkload, ZeroRateMeansNoQueries) {
  sim::Simulator s;
  const Catalog c = smallCatalog();
  auto cfg = baseConfig();
  cfg.queriesPerNodePerDay = 0.0;
  QueryWorkload w(s, c, 20, cfg);
  EXPECT_TRUE(w.plannedQueries().empty());
}

}  // namespace
}  // namespace dtncache::data
