#include "data/source.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dtncache::data {
namespace {

Catalog twoItems() {
  ItemSpec a;
  a.id = 0;
  a.source = 0;
  a.refreshPeriod = 100.0;
  a.lifetime = 200.0;
  ItemSpec b;
  b.id = 1;
  b.source = 1;
  b.refreshPeriod = 150.0;
  b.lifetime = 300.0;
  return Catalog({a, b});
}

TEST(SourceProcess, FiresEveryPeriodUntilHorizon) {
  sim::Simulator s;
  const Catalog c = twoItems();
  SourceProcess src(s, c, /*horizon=*/500.0);
  std::vector<std::pair<ItemId, Version>> bumps;
  src.addListener([&](ItemId item, Version v, sim::SimTime) { bumps.push_back({item, v}); });
  s.run();
  // Item 0: versions 1..5 at t=100..500; item 1: versions 1..3 at 150,300,450.
  std::size_t item0 = 0;
  std::size_t item1 = 0;
  for (const auto& [item, v] : bumps) (item == 0 ? item0 : item1)++;
  EXPECT_EQ(item0, 5u);
  EXPECT_EQ(item1, 3u);
  EXPECT_EQ(src.refreshCount(), 8u);
}

TEST(SourceProcess, VersionsMatchClockAtBumpTime) {
  sim::Simulator s;
  const Catalog c = twoItems();
  SourceProcess src(s, c, 500.0);
  src.addListener([&](ItemId item, Version v, sim::SimTime t) {
    EXPECT_EQ(v, c.clock(item).currentVersion(t));
    EXPECT_DOUBLE_EQ(c.clock(item).creationTime(v), t);
  });
  s.run();
}

TEST(SourceProcess, VersionsAreSequential) {
  sim::Simulator s;
  const Catalog c = twoItems();
  SourceProcess src(s, c, 1000.0);
  Version last0 = 0;
  src.addListener([&](ItemId item, Version v, sim::SimTime) {
    if (item == 0) {
      EXPECT_EQ(v, last0 + 1);
      last0 = v;
    }
  });
  s.run();
  EXPECT_EQ(last0, 10u);
}

TEST(SourceProcess, MultipleListenersAllNotified) {
  sim::Simulator s;
  const Catalog c = twoItems();
  SourceProcess src(s, c, 100.0);
  int first = 0;
  int second = 0;
  src.addListener([&](ItemId, Version, sim::SimTime) { ++first; });
  src.addListener([&](ItemId, Version, sim::SimTime) { ++second; });
  s.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(SourceProcess, NoEventsPastHorizon) {
  sim::Simulator s;
  const Catalog c = twoItems();
  SourceProcess src(s, c, 99.0);  // before the first bump
  s.run();
  EXPECT_EQ(src.refreshCount(), 0u);
  EXPECT_EQ(s.pendingEvents(), 0u);
}

}  // namespace
}  // namespace dtncache::data
