#include "runner/config_io.hpp"

#include <gtest/gtest.h>

namespace dtncache::runner {
namespace {

TEST(ConfigIo, RoundTripPreservesEveryField) {
  ExperimentConfig original;
  original.trace = trace::infocomLikeConfig(9);
  original.catalog.itemCount = 17;
  original.catalog.refreshPeriod = sim::hours(7);
  original.workload.queriesPerNodePerDay = 3.5;
  original.workload.zipfExponent = 1.3;
  original.cache.cachingNodesPerItem = 11;
  original.network.contactLossRate = 0.25;
  original.estimator.mode = trace::EstimatorMode::kSlidingWindow;
  original.estimator.window = sim::days(2);
  original.allocation = cache::AllocationPolicy::kSqrt;
  original.scheme = SchemeKind::kEpidemic;
  original.hierarchical.hierarchy.fanoutBound = 5;
  original.hierarchical.replication.theta = 0.93;
  original.hierarchical.maintenance = core::MaintenanceMode::kStatic;
  original.hierarchical.relayAssisted = false;
  original.churnEnabled = true;
  original.churn.meanDowntime = sim::hours(13);
  original.energyEnabled = true;
  original.energy.batteryJoules = 432.0;
  original.seed = 77;

  const auto back = loadConfig(dumpConfig(original));

  EXPECT_EQ(back.trace.nodeCount, original.trace.nodeCount);
  EXPECT_DOUBLE_EQ(back.trace.duration, original.trace.duration);
  EXPECT_EQ(back.trace.model, original.trace.model);
  EXPECT_DOUBLE_EQ(back.trace.nightActivity, original.trace.nightActivity);
  EXPECT_EQ(back.catalog.itemCount, 17u);
  EXPECT_DOUBLE_EQ(back.catalog.refreshPeriod, sim::hours(7));
  EXPECT_DOUBLE_EQ(back.workload.queriesPerNodePerDay, 3.5);
  EXPECT_EQ(back.cache.cachingNodesPerItem, 11u);
  EXPECT_DOUBLE_EQ(back.network.contactLossRate, 0.25);
  EXPECT_EQ(back.estimator.mode, trace::EstimatorMode::kSlidingWindow);
  EXPECT_EQ(back.allocation, cache::AllocationPolicy::kSqrt);
  EXPECT_EQ(back.scheme, SchemeKind::kEpidemic);
  EXPECT_EQ(back.hierarchical.hierarchy.fanoutBound, 5u);
  EXPECT_DOUBLE_EQ(back.hierarchical.replication.theta, 0.93);
  EXPECT_EQ(back.hierarchical.maintenance, core::MaintenanceMode::kStatic);
  EXPECT_FALSE(back.hierarchical.relayAssisted);
  EXPECT_TRUE(back.churnEnabled);
  EXPECT_DOUBLE_EQ(back.churn.meanDowntime, sim::hours(13));
  EXPECT_TRUE(back.energyEnabled);
  EXPECT_DOUBLE_EQ(back.energy.batteryJoules, 432.0);
  EXPECT_EQ(back.seed, 77u);
}

TEST(ConfigIo, RoundTripProducesIdenticalRuns) {
  ExperimentConfig original;
  original.trace = trace::homogeneousConfig(12, 5.0, sim::days(4), 3);
  original.catalog.itemCount = 3;
  original.catalog.refreshPeriod = sim::hours(8);
  original.workload.queriesPerNodePerDay = 2.0;
  original.cache.cachingNodesPerItem = 5;
  const auto back = loadConfig(dumpConfig(original));
  const auto a = runExperiment(original);
  const auto b = runExperiment(back);
  EXPECT_DOUBLE_EQ(a.results.meanFreshFraction, b.results.meanFreshFraction);
  EXPECT_EQ(a.results.transfers.total().bytes, b.results.transfers.total().bytes);
}

TEST(ConfigIo, PartialConfigKeepsDefaults) {
  const auto c = loadConfig(R"({"catalog.itemCount": 4, "scheme": "flooding"})");
  EXPECT_EQ(c.catalog.itemCount, 4u);
  EXPECT_EQ(c.scheme, SchemeKind::kFlooding);
  EXPECT_EQ(c.cache.cachingNodesPerItem, ExperimentConfig{}.cache.cachingNodesPerItem);
}

TEST(ConfigIo, EmptyObjectIsAllDefaults) {
  const auto c = loadConfig("{}");
  EXPECT_EQ(c.scheme, ExperimentConfig{}.scheme);
}

TEST(ConfigIo, UnknownKeyRejected) {
  EXPECT_THROW(loadConfig(R"({"catalogg.itemCount": 4})"), InvariantViolation);
}

TEST(ConfigIo, UnknownKeySuggestsNearestValidKey) {
  try {
    loadConfig(R"({"cache.warmStarts": true})");
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown config key 'cache.warmStarts'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("did you mean 'cache.warmStart'"), std::string::npos)
        << message;
  }
}

TEST(ConfigIo, UnknownKeyFarFromEverythingGetsNoSuggestion) {
  try {
    loadConfig(R"({"zzz.qqq": 1})");
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown config key 'zzz.qqq'"), std::string::npos) << message;
    EXPECT_EQ(message.find("did you mean"), std::string::npos) << message;
  }
}

TEST(ConfigIo, TypeMismatchRejected) {
  EXPECT_THROW(loadConfig(R"({"catalog.itemCount": "four"})"), InvariantViolation);
  EXPECT_THROW(loadConfig(R"({"cache.warmStart": 1})"), InvariantViolation);
  EXPECT_THROW(loadConfig(R"({"scheme": true})"), InvariantViolation);
}

TEST(ConfigIo, NonIntegralIntegerRejected) {
  EXPECT_THROW(loadConfig(R"({"catalog.itemCount": 4.5})"), InvariantViolation);
}

TEST(ConfigIo, UnknownEnumValueRejected) {
  EXPECT_THROW(loadConfig(R"({"scheme": "telepathy"})"), InvariantViolation);
}

TEST(ConfigIo, MalformedJsonRejected) {
  EXPECT_THROW(loadConfig(""), InvariantViolation);
  EXPECT_THROW(loadConfig("{"), InvariantViolation);
  EXPECT_THROW(loadConfig(R"({"a": 1,})"), InvariantViolation);
  EXPECT_THROW(loadConfig(R"({"a": 1} trailing)"), InvariantViolation);
}

TEST(ConfigIo, WhitespaceAndEscapesTolerated) {
  const auto c = loadConfig("  {\n\t\"seed\" :\t42 \n}  \n");
  EXPECT_EQ(c.seed, 42u);
}

TEST(ConfigIo, FileRoundTrip) {
  ExperimentConfig original;
  original.seed = 123;
  original.catalog.itemCount = 6;
  const std::string path = "/tmp/dtncache_config_test.json";
  saveConfigFile(original, path);
  const auto back = loadConfigFile(path);
  EXPECT_EQ(back.seed, 123u);
  EXPECT_EQ(back.catalog.itemCount, 6u);
}

TEST(ConfigIo, MissingFileThrows) {
  EXPECT_THROW(loadConfigFile("/nonexistent/cfg.json"), InvariantViolation);
}

}  // namespace
}  // namespace dtncache::runner
