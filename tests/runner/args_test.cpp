#include "runner/args.hpp"

#include <gtest/gtest.h>

namespace dtncache::runner {
namespace {

ArgParser parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, EqualsForm) {
  auto p = parse({"--tau=6.5", "--name=reality"});
  EXPECT_DOUBLE_EQ(p.getDouble("--tau", 1.0, "t"), 6.5);
  EXPECT_EQ(p.getString("--name", "x", "n"), "reality");
  EXPECT_TRUE(p.errors().empty());
}

TEST(Args, SpaceSeparatedForm) {
  auto p = parse({"--tau", "2.5", "--count", "7"});
  EXPECT_DOUBLE_EQ(p.getDouble("--tau", 1.0, "t"), 2.5);
  EXPECT_EQ(p.getInt("--count", 0, "c"), 7);
  EXPECT_TRUE(p.errors().empty());
}

TEST(Args, DefaultsWhenAbsent) {
  auto p = parse({});
  EXPECT_DOUBLE_EQ(p.getDouble("--tau", 42.0, "t"), 42.0);
  EXPECT_EQ(p.getString("--name", "def", "n"), "def");
  EXPECT_FALSE(p.getBool("--verbose", "v"));
}

TEST(Args, BareFlags) {
  auto p = parse({"--csv", "--tau=1"});
  EXPECT_TRUE(p.getBool("--csv", "c"));
  p.getDouble("--tau", 0.0, "t");
  EXPECT_TRUE(p.errors().empty());
}

TEST(Args, UnknownFlagReported) {
  auto p = parse({"--shceme=foo"});
  p.getString("--scheme", "bar", "s");
  const auto errors = p.errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("--shceme"), std::string::npos);
}

TEST(Args, BadNumberReported) {
  auto p = parse({"--tau=abc", "--count=1.5"});
  EXPECT_DOUBLE_EQ(p.getDouble("--tau", 3.0, "t"), 3.0);  // default on error
  EXPECT_EQ(p.getInt("--count", 9, "c"), 9);
  EXPECT_EQ(p.errors().size(), 2u);
}

TEST(Args, HelpRequested) {
  EXPECT_TRUE(parse({"--help"}).helpRequested());
  EXPECT_TRUE(parse({"-h"}).helpRequested());
  EXPECT_FALSE(parse({"--x=1"}).helpRequested());
}

TEST(Args, PositionalArgumentIsError) {
  auto p = parse({"trace.csv"});
  EXPECT_EQ(p.errors().size(), 1u);
}

TEST(Args, HelpTextListsRegisteredOptions) {
  auto p = parse({});
  p.getDouble("--tau", 6.0, "refresh period");
  p.getBool("--csv", "emit csv");
  const std::string help = p.helpText("prog");
  EXPECT_NE(help.find("--tau=<value>"), std::string::npos);
  EXPECT_NE(help.find("refresh period"), std::string::npos);
  EXPECT_NE(help.find("(default: 6)"), std::string::npos);
  EXPECT_NE(help.find("--csv\n"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(Args, ProvidedTracksExplicitFlagsOnly) {
  auto p = parse({"--tau=6.5", "--csv"});
  EXPECT_TRUE(p.provided("--tau"));
  EXPECT_TRUE(p.provided("--csv"));
  EXPECT_FALSE(p.provided("--theta"));
  // provided() does not consume: lookups still needed for validation.
  p.getDouble("--tau", 0.0, "t");
  p.getBool("--csv", "c");
  EXPECT_TRUE(p.errors().empty());
}

TEST(Args, NegativeNumbersAsValues) {
  auto p = parse({"--offset=-5"});
  EXPECT_EQ(p.getInt("--offset", 0, "o"), -5);
  EXPECT_TRUE(p.errors().empty());
}

}  // namespace
}  // namespace dtncache::runner
