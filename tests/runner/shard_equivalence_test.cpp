// Sharded-kernel equivalence: the fence protocol's whole contract is that a
// sharded run is indistinguishable from the single-threaded one — not
// statistically, but byte for byte. Every test here runs the identical
// config at several shard counts and compares the full JSONL event trace
// (doubles at precision 17), the sorted counter snapshot, and the result
// fields exactly. Any estimator-order, admission-order, or merge bug shows
// up as a one-byte diff long before it would move an aggregate.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "obs/tracer.hpp"
#include "runner/experiment.hpp"
#include "runner/shard_plan.hpp"

namespace dtncache::runner {
namespace {

struct Capture {
  ExperimentOutput out;
  std::string trace;
};

Capture runWith(ExperimentConfig cfg, std::size_t shards,
                std::vector<std::uint32_t> mapOverride = {}) {
  obs::Tracer tracer("eq");
  cfg.tracer = &tracer;
  cfg.shards = shards;
  cfg.shardMapOverride = std::move(mapOverride);
  Capture c;
  c.out = runExperiment(cfg);
  c.trace = tracer.buffer();
  return c;
}

void expectIdentical(const Capture& plain, const Capture& sharded, std::size_t shards) {
  SCOPED_TRACE("shards=" + std::to_string(shards));
  // The event trace is the strongest witness: every contact, push, query,
  // and snapshot-driven decision in emission order.
  ASSERT_EQ(plain.trace.size(), sharded.trace.size());
  EXPECT_EQ(plain.trace, sharded.trace);
  EXPECT_EQ(plain.out.counters, sharded.out.counters);

  const auto& a = plain.out.results;
  const auto& b = sharded.out.results;
  EXPECT_EQ(a.meanFreshFraction, b.meanFreshFraction);
  EXPECT_EQ(a.finalFreshFraction, b.finalFreshFraction);
  EXPECT_EQ(a.meanValidFraction, b.meanValidFraction);
  EXPECT_EQ(a.queries.issued, b.queries.issued);
  EXPECT_EQ(a.queries.answered, b.queries.answered);
  EXPECT_EQ(a.queries.answeredFresh, b.queries.answeredFresh);
  EXPECT_EQ(a.queries.localHits, b.queries.localHits);
  EXPECT_EQ(a.refreshPushes, b.refreshPushes);
  EXPECT_EQ(a.refreshWithinPeriodRatio, b.refreshWithinPeriodRatio);
  for (std::size_t k = 0; k < static_cast<std::size_t>(net::Traffic::kCategoryCount); ++k) {
    const auto cat = static_cast<net::Traffic>(k);
    EXPECT_EQ(a.transfers.of(cat).messages, b.transfers.of(cat).messages);
    EXPECT_EQ(a.transfers.of(cat).bytes, b.transfers.of(cat).bytes);
  }
  EXPECT_EQ(a.transfers.perNodeBytes(), b.transfers.perNodeBytes());
  EXPECT_EQ(a.transfers.perNodeRefreshBytes(), b.transfers.perNodeRefreshBytes());

  EXPECT_EQ(plain.out.peakPendingEvents, sharded.out.peakPendingEvents);
  EXPECT_EQ(plain.out.eventsProcessed, sharded.out.eventsProcessed);
  EXPECT_EQ(plain.out.contactsSuppressed, sharded.out.contactsSuppressed);
  EXPECT_EQ(plain.out.replicationAssignments, sharded.out.replicationAssignments);
  EXPECT_EQ(plain.out.meanPredictedProbability, sharded.out.meanPredictedProbability);
  EXPECT_EQ(plain.out.reparentCount, sharded.out.reparentCount);
  EXPECT_EQ(plain.out.pullsIssued, sharded.out.pullsIssued);

  // Coordination stats are real (and internally consistent) only when the
  // sharded kernel actually ran.
  const auto& s = sharded.out.shardStats;
  EXPECT_EQ(s.shards, shards);
  EXPECT_EQ(s.localContacts + s.crossContacts, s.contactsProcessed);
  EXPECT_EQ(s.fenceContacts + s.boringContacts + s.stolenContacts, s.contactsProcessed);
}

ExperimentConfig smallMobilityConfig(trace::RateModel model) {
  ExperimentConfig cfg;
  cfg.trace.model = model;
  cfg.trace.nodeCount = 60;
  cfg.trace.duration = sim::days(3);
  cfg.trace.communities = 5;
  cfg.trace.meanDegree = 12.0;
  cfg.trace.seed = 42;
  cfg.catalog.itemCount = 4;
  cfg.catalog.refreshPeriod = sim::hours(8);
  cfg.workload.queriesPerNodePerDay = 1.5;
  cfg.cache.cachingNodesPerItem = 6;
  cfg.estimatorWarmup = sim::days(1);
  return cfg;
}

TEST(ShardEquivalence, MobilityCommunityHierarchicalAllShardCounts) {
  const auto cfg = smallMobilityConfig(trace::RateModel::kMobilityCommunity);
  const Capture plain = runWith(cfg, 1);
  EXPECT_EQ(plain.out.shardStats.shards, 0u);  // plain kernel ran
  EXPECT_GT(plain.trace.size(), 0u);
  for (const std::size_t shards : {2u, 4u, 7u})
    expectIdentical(plain, runWith(cfg, shards), shards);
}

TEST(ShardEquivalence, MobilityPowerLawWithContactLoss) {
  auto cfg = smallMobilityConfig(trace::RateModel::kMobilityPowerLaw);
  cfg.network.contactLossRate = 0.1;  // exercises the pre-drawn loss stream
  const Capture plain = runWith(cfg, 1);
  for (const std::size_t shards : {2u, 4u})
    expectIdentical(plain, runWith(cfg, shards), shards);
}

TEST(ShardEquivalence, ExternalTraceReplayUsesContiguousFallback) {
  // External traces carry no community labels: the plan falls back to
  // contiguous node ranges. Replay also skips estimator warm-up generation.
  const auto world = trace::generate(trace::homogeneousConfig(40, 4.0, sim::days(3), 7));
  ExperimentConfig cfg;
  cfg.externalTrace = &world.trace;
  cfg.catalog.itemCount = 3;
  cfg.catalog.refreshPeriod = sim::hours(12);
  cfg.workload.queriesPerNodePerDay = 2.0;
  cfg.cache.cachingNodesPerItem = 5;
  cfg.estimatorWarmup = sim::days(1);
  const Capture plain = runWith(cfg, 1);
  for (const std::size_t shards : {2u, 4u, 7u})
    expectIdentical(plain, runWith(cfg, shards), shards);
}

TEST(ShardEquivalence, AdversarialShardMapsCannotChangeOutput) {
  // Correctness must come from the fence protocol, not from a friendly
  // partition: round-robin node->shard maps maximize cross-shard pairs.
  const auto cfg = smallMobilityConfig(trace::RateModel::kMobilityCommunity);
  const Capture plain = runWith(cfg, 1);
  for (const std::size_t shards : {3u, 5u}) {
    std::vector<std::uint32_t> map(cfg.trace.nodeCount);
    for (std::size_t i = 0; i < map.size(); ++i)
      map[i] = static_cast<std::uint32_t>(i % shards);
    expectIdentical(plain, runWith(cfg, shards, map), shards);
  }
}

TEST(ShardEquivalence, FloodingRelayFenceIsHonored) {
  // Flooding marks relay-carrying nodes protocol-active via contactActive;
  // a missed fence would reorder relay handoffs and diverge the trace.
  auto cfg = smallMobilityConfig(trace::RateModel::kMobilityCommunity);
  cfg.scheme = SchemeKind::kFlooding;
  const Capture plain = runWith(cfg, 1);
  for (const std::size_t shards : {2u, 4u})
    expectIdentical(plain, runWith(cfg, shards), shards);
}

TEST(ShardEquivalence, PullSchemeUnderChurn) {
  auto cfg = smallMobilityConfig(trace::RateModel::kMobilityCommunity);
  cfg.scheme = SchemeKind::kPull;
  cfg.churnEnabled = true;
  cfg.churn.meanUptime = sim::hours(20);
  cfg.churn.meanDowntime = sim::hours(4);
  const Capture plain = runWith(cfg, 1);
  for (const std::size_t shards : {2u, 4u})
    expectIdentical(plain, runWith(cfg, shards), shards);
}

TEST(ShardEquivalence, SparsePairBackendPrecreationIsInvisible) {
  // Under the sparse pair backend the estimator pre-creates pair slots for
  // the whole horizon at enterShardMode; zero-count slots must stay
  // invisible to rate sums, snapshots, and observedPairCount.
  ::setenv("DTNCACHE_SPARSE_PAIRS", "1", 1);
  const auto cfg = smallMobilityConfig(trace::RateModel::kMobilityCommunity);
  const Capture plain = runWith(cfg, 1);
  const Capture sharded = runWith(cfg, 4);
  ::unsetenv("DTNCACHE_SPARSE_PAIRS");
  expectIdentical(plain, sharded, 4);
}

TEST(ShardEquivalence, OracleRatesTimerHeavyMaintenanceAllShardCounts) {
  // Under oracle rates the hierarchical maintenance tick reads only the
  // fixed planning matrix, so RefreshScheme::timerScope marks it
  // kShardLocal: the coordinator runs it concurrently with in-flight boring
  // contacts, no quiesce, no estimator drain. A dense tick schedule (1h
  // maintenance, 30min sampling over 3 days) maximizes the interleavings
  // between local timers and worker-held contacts; any state the tick
  // secretly shares with a boring handler diverges the trace.
  auto cfg = smallMobilityConfig(trace::RateModel::kMobilityCommunity);
  cfg.hierarchical.useOracleRates = true;
  cfg.hierarchical.maintenancePeriod = sim::hours(1);
  cfg.cache.sampleInterval = sim::minutes(30);
  const Capture plain = runWith(cfg, 1);
  for (const std::size_t shards : {2u, 4u, 7u}) {
    const Capture sharded = runWith(cfg, shards);
    // The no-quiesce lane must actually carry the tick load, or this test
    // exercises nothing.
    EXPECT_GT(sharded.out.shardStats.localTimerEvents, 0u);
    expectIdentical(plain, sharded, shards);
  }
}

TEST(ShardEquivalence, ExpiredHeavyWorkloadAllShardCounts) {
  // NoRefresh with lifetime == one period: warm-start copies die at 8h and
  // are never replaced, and short query deadlines kill buffered replies
  // fast. Most of the horizon, holders carry only dead bytes — the expiry
  // watermarks must reclassify them inert at each contact's own time
  // (activity decaying between serial events, with no mutation), and the
  // sharded trace must still match the plain kernel byte for byte.
  auto cfg = smallMobilityConfig(trace::RateModel::kMobilityCommunity);
  cfg.scheme = SchemeKind::kNoRefresh;
  cfg.catalog.lifetimeFactor = 1.0;
  cfg.workload.queryDeadline = sim::hours(2);
  const Capture plain = runWith(cfg, 1);
  for (const std::size_t shards : {2u, 4u, 7u}) {
    const Capture sharded = runWith(cfg, shards);
    // Dead-content nodes must be going boring (worker-run or stolen), not
    // pinning fences forever.
    EXPECT_GT(sharded.out.shardStats.boringContacts + sharded.out.shardStats.stolenContacts,
              0u);
    expectIdentical(plain, sharded, shards);
  }
}

TEST(ShardEquivalence, NonShardableSchemeFallsBackToPlainKernel) {
  auto cfg = smallMobilityConfig(trace::RateModel::kMobilityCommunity);
  cfg.scheme = SchemeKind::kInvalidation;
  const Capture requested = runWith(cfg, 4);
  EXPECT_EQ(requested.out.shardStats.shards, 0u);  // gated to plain
  const Capture plain = runWith(cfg, 1);
  EXPECT_EQ(plain.trace, requested.trace);
}

TEST(ShardPlan, CommunityMapKeepsCommunitiesTogether) {
  const std::vector<std::size_t> community = {0, 1, 2, 0, 1, 2, 3, 3};
  const auto map = makeShardMap(community.size(), 2, community);
  for (std::size_t i = 0; i < community.size(); ++i)
    EXPECT_EQ(map[i], community[i] % 2) << "node " << i;
}

TEST(ShardPlan, ContiguousFallbackBalancesRanges) {
  const auto map = makeShardMap(10, 3, {});
  EXPECT_EQ(map.front(), 0u);
  EXPECT_EQ(map.back(), 2u);
  for (std::size_t i = 1; i < map.size(); ++i) EXPECT_GE(map[i], map[i - 1]);
}

TEST(ShardPlan, SingleShardIsAllZero) {
  const auto map = makeShardMap(5, 1, {0, 1, 2, 3, 4});
  EXPECT_EQ(map, std::vector<std::uint32_t>(5, 0));
}

TEST(ShardPlan, ContactShardIsSymmetricAndStable) {
  const auto map = makeShardMap(20, 4, {});
  for (NodeId a = 0; a < 20; ++a)
    for (NodeId b = 0; b < 20; ++b) {
      if (a == b) continue;
      const auto s = contactShard(map, 4, a, b);
      EXPECT_EQ(s, contactShard(map, 4, b, a));
      EXPECT_LT(s, 4u);
      if (map[a] == map[b]) EXPECT_EQ(s, map[a]);
    }
}

}  // namespace
}  // namespace dtncache::runner
