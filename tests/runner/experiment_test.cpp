#include "runner/experiment.hpp"

#include <gtest/gtest.h>

namespace dtncache::runner {
namespace {

TEST(Experiment, SchemeNamesAreDistinctAndComplete) {
  const auto schemes = allSchemes();
  EXPECT_EQ(schemes.size(), 7u);
  std::vector<std::string> names;
  for (const auto k : schemes) names.push_back(schemeName(k));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Experiment, ExternalTraceDrivesTheRun) {
  // Build a small dense trace by generation, then feed it back as external.
  const auto world = trace::generate(trace::homogeneousConfig(15, 6.0, sim::days(5), 9));

  ExperimentConfig cfg;
  cfg.externalTrace = &world.trace;
  cfg.catalog.itemCount = 3;
  cfg.catalog.refreshPeriod = sim::hours(12);
  cfg.workload.queriesPerNodePerDay = 2.0;
  cfg.cache.cachingNodesPerItem = 5;
  cfg.estimatorWarmup = sim::days(1);

  const auto out = runExperiment(cfg);
  EXPECT_EQ(out.traceStats.nodeCount, 15u);
  EXPECT_EQ(out.traceStats.contactCount, world.trace.contacts().size());
  EXPECT_GT(out.results.meanFreshFraction, 0.2);
  EXPECT_GT(out.results.queries.issued, 0u);
}

TEST(Experiment, ExternalTraceMatchesEquivalentGeneratedRun) {
  // Running on the externally supplied copy of the exact same contacts
  // should reproduce the generated-run shape (not exactly: planning rates
  // are fit from the trace rather than ground truth, and the estimator
  // warm-up uses the trace head — but freshness must be in the same band).
  auto gen = trace::homogeneousConfig(15, 6.0, sim::days(5), 9);
  ExperimentConfig cfg;
  cfg.trace = gen;
  cfg.catalog.itemCount = 3;
  cfg.catalog.refreshPeriod = sim::hours(12);
  cfg.workload.queriesPerNodePerDay = 0.0;
  cfg.cache.cachingNodesPerItem = 5;
  const auto generated = runExperiment(cfg);

  gen.seed = gen.seed * 1000003 + cfg.seed;  // mirror the runner's mixing
  const auto world = trace::generate(gen);
  ExperimentConfig ext = cfg;
  ext.externalTrace = &world.trace;
  const auto external = runExperiment(ext);

  EXPECT_NEAR(external.results.meanFreshFraction, generated.results.meanFreshFraction,
              0.15);
}

TEST(Experiment, PullCountsSurfaceForBothPullingSchemes) {
  ExperimentConfig cfg;
  cfg.trace = trace::homogeneousConfig(15, 6.0, sim::days(5), 9);
  cfg.catalog.itemCount = 3;
  cfg.catalog.refreshPeriod = sim::hours(6);
  cfg.workload.queriesPerNodePerDay = 0.0;
  cfg.cache.cachingNodesPerItem = 5;
  cfg.scheme = SchemeKind::kPull;
  EXPECT_GT(runExperiment(cfg).pullsIssued, 0u);
  cfg.scheme = SchemeKind::kInvalidation;
  EXPECT_GT(runExperiment(cfg).pullsIssued, 0u);
  cfg.scheme = SchemeKind::kNoRefresh;
  EXPECT_EQ(runExperiment(cfg).pullsIssued, 0u);
}

}  // namespace
}  // namespace dtncache::runner
