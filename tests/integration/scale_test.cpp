/// Scale guard: a network well beyond the presets must complete in bounded
/// time with sane metrics — a regression trap for accidental quadratic
/// blowups in contact handling or maintenance.

#include <chrono>

#include <gtest/gtest.h>

#include "runner/experiment.hpp"

namespace dtncache::runner {
namespace {

TEST(Scale, TwoHundredNodesSixtyDays) {
  ExperimentConfig c;
  c.trace.nodeCount = 200;
  c.trace.duration = sim::days(60);
  c.trace.model = trace::RateModel::kCommunity;
  c.trace.communities = 10;
  c.trace.meanContactsPerPairPerDay = 0.15;
  c.trace.seed = 5;
  c.catalog.itemCount = 20;
  c.catalog.refreshPeriod = sim::days(2);
  c.workload.queriesPerNodePerDay = 1.0;
  c.workload.queryDeadline = sim::days(1);
  c.cache.cachingNodesPerItem = 12;
  c.hierarchical.useOracleRates = true;

  const auto start = std::chrono::steady_clock::now();
  const auto out = runExperiment(c);
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  EXPECT_EQ(out.traceStats.nodeCount, 200u);
  EXPECT_GT(out.traceStats.contactCount, 100000u);
  EXPECT_GT(out.results.meanFreshFraction, 0.1);
  EXPECT_GT(out.results.queries.issued, 5000u);
  EXPECT_EQ(out.results.copiesTracked, 20u * 12u);
  // Generous wall-clock bound (CI machines vary); the preset runs take
  // well under a second, so 60 s flags only catastrophic regressions.
  EXPECT_LT(elapsed, 60);
}

}  // namespace
}  // namespace dtncache::runner
