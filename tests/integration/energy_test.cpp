/// Full-stack energy runs: batteries drain with traffic, depleted nodes
/// drop out, battery-aware planning steers helper duty.

#include <cmath>

#include <gtest/gtest.h>

#include "runner/experiment.hpp"
#include "runner/replicate.hpp"

namespace dtncache::runner {
namespace {

ExperimentConfig energyConfig(double battery) {
  ExperimentConfig c;
  c.trace = trace::homogeneousConfig(20, 6.0, sim::days(10), 3);
  c.catalog.itemCount = 4;
  c.catalog.refreshPeriod = sim::hours(6);
  c.workload.queriesPerNodePerDay = 2.0;
  c.cache.cachingNodesPerItem = 8;
  c.hierarchical.useOracleRates = true;
  c.energyEnabled = true;
  c.energy.batteryJoules = battery;
  c.energy.idleJoulesPerHour = 0.2;
  return c;
}

TEST(Energy, AmpleBudgetNobodyDies) {
  const auto out = runExperiment(energyConfig(1e6));
  EXPECT_EQ(out.depletedNodes, 0u);
  EXPECT_TRUE(std::isinf(out.firstDepletionTime));
  EXPECT_GT(out.meanRemainingBattery, 0.9);
}

TEST(Energy, TightBudgetKillsNodesAndHurtsFreshness) {
  const auto ample = runExperiment(energyConfig(1e6));
  const auto tight = runExperiment(energyConfig(60.0));
  EXPECT_GT(tight.depletedNodes, 0u);
  EXPECT_FALSE(std::isinf(tight.firstDepletionTime));
  EXPECT_LT(tight.results.meanFreshFraction, ample.results.meanFreshFraction);
  EXPECT_GT(tight.contactsSuppressed, 0u);
}

TEST(Energy, ResidualBatteryTracksBytesSent) {
  // Internal consistency: the scheme that moves more bytes must end with
  // less battery (NoRefresh moves the least by construction).
  auto cfg = energyConfig(1e6);
  cfg.scheme = SchemeKind::kNoRefresh;
  const auto none = runExperiment(cfg);
  cfg.scheme = SchemeKind::kFlooding;
  const auto flood = runExperiment(cfg);
  EXPECT_GT(flood.results.transfers.total().bytes, none.results.transfers.total().bytes);
  EXPECT_LT(flood.meanRemainingBattery, none.meanRemainingBattery);
}

TEST(Energy, BatteryAwarePlanningChangesHelperChoice) {
  auto cfg = energyConfig(120.0);
  cfg.hierarchical.maintenance = core::MaintenanceMode::kRebuild;
  cfg.hierarchical.maintenancePeriod = sim::hours(12);
  cfg.energyAwarePlanning = false;
  const auto blind = runExperiment(cfg);
  cfg.energyAwarePlanning = true;
  const auto aware = runExperiment(cfg);
  // The arms genuinely differ (plans diverge)…
  EXPECT_NE(blind.results.transfers.total().bytes, aware.results.transfers.total().bytes);
  // …and the aware arm must not be materially worse on survival.
  EXPECT_LE(aware.depletedNodes, blind.depletedNodes + 1);
}

TEST(Energy, DeterministicWithEnergyEnabled) {
  const auto a = runExperiment(energyConfig(100.0));
  const auto b = runExperiment(energyConfig(100.0));
  EXPECT_EQ(a.depletedNodes, b.depletedNodes);
  EXPECT_DOUBLE_EQ(a.meanRemainingBattery, b.meanRemainingBattery);
}

TEST(Replicate, AggregatesAcrossSeeds) {
  auto cfg = energyConfig(1e6);
  const auto agg = runReplicated(cfg, 3);
  EXPECT_EQ(agg.runs, 3u);
  EXPECT_EQ(agg.meanFresh.count(), 3u);
  EXPECT_GT(agg.meanFresh.mean(), 0.0);
  EXPECT_GT(agg.meanFresh.stddev(), 0.0);  // different seeds → different traces
  EXPECT_LT(agg.meanFresh.stddev(), 0.2);  // but the same regime
  const std::string cell = formatMeanSd(agg.meanFresh);
  EXPECT_NE(cell.find("±"), std::string::npos);
}

TEST(Replicate, SingleRunHasNoSd) {
  auto cfg = energyConfig(1e6);
  const auto agg = runReplicated(cfg, 1);
  EXPECT_EQ(formatMeanSd(agg.meanFresh).find("±"), std::string::npos);
}

}  // namespace
}  // namespace dtncache::runner
