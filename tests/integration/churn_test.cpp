/// Full-stack churn runs: contacts suppressed, queries gated, hierarchy
/// repaired, metrics sane.

#include <gtest/gtest.h>

#include "runner/experiment.hpp"

namespace dtncache::runner {
namespace {

ExperimentConfig churnConfig(bool repair) {
  ExperimentConfig c;
  c.trace = trace::homogeneousConfig(20, 4.0, sim::days(10), 3);
  c.catalog.itemCount = 4;
  c.catalog.refreshPeriod = sim::hours(12);
  c.workload.queriesPerNodePerDay = 2.0;
  c.cache.cachingNodesPerItem = 8;
  c.hierarchical.useOracleRates = true;
  c.churnEnabled = true;
  c.churnRepairEnabled = repair;
  c.churn.meanUptime = sim::days(1);
  c.churn.meanDowntime = sim::hours(12);
  return c;
}

TEST(Churn, SuppressesContactsAndStillRuns) {
  const auto out = runExperiment(churnConfig(true));
  EXPECT_GT(out.churnTransitions, 10u);
  EXPECT_GT(out.contactsSuppressed, 100u);
  EXPECT_GT(out.results.meanFreshFraction, 0.0);
  EXPECT_LE(out.results.meanFreshFraction, 1.0);
}

TEST(Churn, RepairsFireOnMembershipFlips) {
  const auto out = runExperiment(churnConfig(true));
  EXPECT_GT(out.churnRepairs, 0u);
}

TEST(Churn, NoRepairArmNeverRepairs) {
  const auto out = runExperiment(churnConfig(false));
  EXPECT_EQ(out.churnRepairs, 0u);
  EXPECT_GT(out.contactsSuppressed, 0u);
}

TEST(Churn, ReducesFreshnessVersusNoChurn) {
  auto cfg = churnConfig(true);
  const double withChurn = runExperiment(cfg).results.meanFreshFraction;
  cfg.churnEnabled = false;
  const double without = runExperiment(cfg).results.meanFreshFraction;
  EXPECT_LT(withChurn, without);
}

TEST(Churn, BaselinesRunUnderChurn) {
  for (SchemeKind kind : {SchemeKind::kEpidemic, SchemeKind::kFlooding,
                          SchemeKind::kPull, SchemeKind::kNoRefresh}) {
    auto cfg = churnConfig(false);
    cfg.scheme = kind;
    const auto out = runExperiment(cfg);
    EXPECT_GE(out.results.meanFreshFraction, 0.0) << schemeName(kind);
    EXPECT_GT(out.contactsSuppressed, 0u) << schemeName(kind);
    EXPECT_EQ(out.churnRepairs, 0u) << schemeName(kind);
  }
}

TEST(Churn, DeterministicWithChurnEnabled) {
  const auto a = runExperiment(churnConfig(true));
  const auto b = runExperiment(churnConfig(true));
  EXPECT_DOUBLE_EQ(a.results.meanFreshFraction, b.results.meanFreshFraction);
  EXPECT_EQ(a.churnTransitions, b.churnTransitions);
  EXPECT_EQ(a.churnRepairs, b.churnRepairs);
}

TEST(Churn, DownRequestersIssueNoQueries) {
  // With churn, fewer queries reach the collector than the workload planned.
  auto cfg = churnConfig(true);
  const auto withChurn = runExperiment(cfg);
  cfg.churnEnabled = false;
  const auto without = runExperiment(cfg);
  EXPECT_LT(withChurn.results.queries.issued, without.results.queries.issued);
  EXPECT_GT(withChurn.results.queries.issued, 0u);
}

}  // namespace
}  // namespace dtncache::runner
