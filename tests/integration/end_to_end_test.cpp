/// End-to-end runs through the runner: full stack, generated traces,
/// workload, every scheme. These are the "does the whole system behave"
/// tests; module correctness lives in the per-module suites.

#include <gtest/gtest.h>

#include "runner/experiment.hpp"

namespace dtncache::runner {
namespace {

ExperimentConfig smallConfig(SchemeKind scheme = SchemeKind::kHierarchical) {
  ExperimentConfig c;
  c.trace = trace::homogeneousConfig(20, 4.0, sim::days(10), 3);
  c.catalog.itemCount = 5;
  c.catalog.refreshPeriod = sim::hours(12);
  c.workload.queriesPerNodePerDay = 3.0;
  c.workload.queryDeadline = sim::hours(12);
  c.cache.cachingNodesPerItem = 6;
  c.estimatorWarmup = sim::days(3);
  c.scheme = scheme;
  return c;
}

TEST(EndToEnd, HierarchicalRunProducesSaneMetrics) {
  const auto out = runExperiment(smallConfig());
  const auto& r = out.results;
  EXPECT_EQ(out.scheme, "Hierarchical");
  EXPECT_GT(r.meanFreshFraction, 0.3);
  EXPECT_LE(r.meanFreshFraction, 1.0);
  EXPECT_GT(r.queries.issued, 100u);
  EXPECT_GT(r.queries.answeredRatio(), 0.3);
  EXPECT_GT(r.refreshPushes, 0u);
  EXPECT_GT(r.transfers.of(net::Traffic::kControl).messages, 0u);
  EXPECT_EQ(r.copiesTracked, 5u * 6u);
  EXPECT_FALSE(r.freshOverTime.empty());
  EXPECT_GT(out.maxHierarchyDepth, 0u);
}

TEST(EndToEnd, DeterministicAcrossRuns) {
  const auto a = runExperiment(smallConfig());
  const auto b = runExperiment(smallConfig());
  EXPECT_DOUBLE_EQ(a.results.meanFreshFraction, b.results.meanFreshFraction);
  EXPECT_EQ(a.results.queries.answered, b.results.queries.answered);
  EXPECT_EQ(a.results.transfers.total().bytes, b.results.transfers.total().bytes);
  EXPECT_EQ(a.replicationAssignments, b.replicationAssignments);
}

TEST(EndToEnd, SeedChangesOutcome) {
  auto cfg = smallConfig();
  const auto a = runExperiment(cfg);
  cfg.seed = 2;
  const auto b = runExperiment(cfg);
  EXPECT_NE(a.results.transfers.total().bytes, b.results.transfers.total().bytes);
}

TEST(EndToEnd, EverySchemeRunsToCompletion) {
  for (SchemeKind kind : allSchemes()) {
    const auto out = runExperiment(smallConfig(kind));
    EXPECT_GE(out.results.meanFreshFraction, 0.0) << out.scheme;
    EXPECT_LE(out.results.meanFreshFraction, 1.0) << out.scheme;
    EXPECT_GT(out.results.queries.issued, 0u) << out.scheme;
  }
}

TEST(EndToEnd, FreshnessNeverExceedsFloodingCeiling) {
  auto cfg = smallConfig();
  double flooding = 0.0;
  std::vector<std::pair<std::string, double>> others;
  for (SchemeKind kind : allSchemes()) {
    cfg.scheme = kind;
    const auto out = runExperiment(cfg);
    if (kind == SchemeKind::kFlooding)
      flooding = out.results.meanFreshFraction;
    else
      others.push_back({out.scheme, out.results.meanFreshFraction});
  }
  for (const auto& [name, fresh] : others)
    EXPECT_LE(fresh, flooding + 0.05) << name;
}

TEST(EndToEnd, HierarchicalBeatsNoRefreshAndSourceDirect) {
  auto cfg = smallConfig();
  cfg.scheme = SchemeKind::kHierarchical;
  const double h = runExperiment(cfg).results.meanFreshFraction;
  cfg.scheme = SchemeKind::kNoRefresh;
  const double n = runExperiment(cfg).results.meanFreshFraction;
  cfg.scheme = SchemeKind::kSourceDirect;
  const double s = runExperiment(cfg).results.meanFreshFraction;
  EXPECT_GT(h, n);
  EXPECT_GT(h, s);
}

TEST(EndToEnd, QueryValidityTracksFreshness) {
  // A scheme with much fresher caches must answer at least as many queries
  // with valid data.
  auto cfg = smallConfig();
  cfg.scheme = SchemeKind::kHierarchical;
  const auto h = runExperiment(cfg).results;
  cfg.scheme = SchemeKind::kNoRefresh;
  const auto n = runExperiment(cfg).results;
  EXPECT_GT(h.queries.successRatio(), n.queries.successRatio());
}

TEST(EndToEnd, WorkloadCanBeDisabled) {
  auto cfg = smallConfig();
  cfg.workload.queriesPerNodePerDay = 0.0;
  const auto out = runExperiment(cfg);
  EXPECT_EQ(out.results.queries.issued, 0u);
  EXPECT_GT(out.results.meanFreshFraction, 0.0);
}

TEST(EndToEnd, RunSchemeComparisonCoversAll) {
  const auto outs = runSchemeComparison(smallConfig());
  ASSERT_EQ(outs.size(), allSchemes().size());
  EXPECT_EQ(outs[0].scheme, "Hierarchical");
}

TEST(EndToEnd, ColdStartPlacementEventuallyFillsCaches) {
  auto cfg = smallConfig();
  cfg.cache.warmStart = false;
  const auto out = runExperiment(cfg);
  // Placement traffic must exist and most copies must arrive over 10 days.
  EXPECT_GT(out.results.transfers.of(net::Traffic::kPlacement).bytes, 0u);
  EXPECT_GT(out.results.copiesTracked, 5u * 6u / 2);
}

}  // namespace
}  // namespace dtncache::runner
