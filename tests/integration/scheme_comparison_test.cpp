/// Paired-comparison properties on the preset traces — the qualitative
/// shapes the paper's evaluation rests on, asserted as tests so a
/// regression in any module that would flip a paper conclusion fails CI.

#include <gtest/gtest.h>

#include <algorithm>

#include "runner/experiment.hpp"

namespace dtncache::runner {
namespace {

ExperimentConfig infocomConfig() {
  ExperimentConfig c;
  c.trace = trace::infocomLikeConfig(11);
  c.catalog.itemCount = 8;
  c.catalog.refreshPeriod = sim::hours(6);
  c.workload.queriesPerNodePerDay = 2.0;
  c.workload.queryDeadline = sim::hours(3);
  c.cache.cachingNodesPerItem = 8;
  return c;
}

class InfocomComparison : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    results_ = new std::vector<ExperimentOutput>(runSchemeComparison(infocomConfig()));
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }
  static const ExperimentOutput& of(SchemeKind kind) {
    const auto schemes = allSchemes();
    const auto it = std::find(schemes.begin(), schemes.end(), kind);
    return (*results_)[static_cast<std::size_t>(it - schemes.begin())];
  }
  static std::vector<ExperimentOutput>* results_;
};

std::vector<ExperimentOutput>* InfocomComparison::results_ = nullptr;

TEST_F(InfocomComparison, HierarchicalNearEpidemicFreshness) {
  const double h = of(SchemeKind::kHierarchical).results.meanFreshFraction;
  const double e = of(SchemeKind::kEpidemic).results.meanFreshFraction;
  EXPECT_GT(h, 0.9 * e);
}

TEST_F(InfocomComparison, HierarchicalFarAboveNoRefresh) {
  const double h = of(SchemeKind::kHierarchical).results.meanFreshFraction;
  const double n = of(SchemeKind::kNoRefresh).results.meanFreshFraction;
  EXPECT_GT(h, 3.0 * n);
}

TEST_F(InfocomComparison, HierarchicalMuchCheaperThanFlooding) {
  const auto h = of(SchemeKind::kHierarchical).results.transfers.of(net::Traffic::kRefresh);
  const auto f = of(SchemeKind::kFlooding).results.transfers.of(net::Traffic::kRefresh);
  EXPECT_LT(h.bytes, f.bytes);
  // ...while retaining most of its freshness.
  EXPECT_GT(of(SchemeKind::kHierarchical).results.meanFreshFraction,
            0.75 * of(SchemeKind::kFlooding).results.meanFreshFraction);
}

TEST_F(InfocomComparison, SourceDirectIsWeaker) {
  EXPECT_LT(of(SchemeKind::kSourceDirect).results.meanFreshFraction,
            of(SchemeKind::kHierarchical).results.meanFreshFraction);
}

TEST_F(InfocomComparison, ValidAnswerRatioOrdering) {
  EXPECT_GE(of(SchemeKind::kHierarchical).results.queries.successRatio(),
            of(SchemeKind::kNoRefresh).results.queries.successRatio());
}

TEST_F(InfocomComparison, ReplicationGuaranteeHolds) {
  // The achieved refresh-within-period ratio should not fall far below the
  // analytical prediction (relays only add on top of the chain model).
  const auto& h = of(SchemeKind::kHierarchical);
  EXPECT_GE(h.results.refreshWithinPeriodRatio, h.meanPredictedProbability - 0.05);
}

TEST(RealityComparison, SparseTraceShapes) {
  ExperimentConfig c;
  c.trace = trace::realityLikeConfig(13);
  c.trace.duration = sim::days(21);
  c.catalog.itemCount = 6;
  c.catalog.refreshPeriod = sim::days(2);
  c.workload.queriesPerNodePerDay = 1.0;
  c.workload.queryDeadline = sim::days(1);
  c.cache.cachingNodesPerItem = 8;

  const auto outs = runSchemeComparison(
      c, {SchemeKind::kHierarchical, SchemeKind::kNoRefresh, SchemeKind::kSourceDirect,
          SchemeKind::kFlooding});
  const double h = outs[0].results.meanFreshFraction;
  const double n = outs[1].results.meanFreshFraction;
  const double s = outs[2].results.meanFreshFraction;
  const double f = outs[3].results.meanFreshFraction;
  EXPECT_GT(h, n);
  EXPECT_GT(h, s);
  EXPECT_LE(h, f + 0.05);
  // Overhead: hierarchical must be well below flooding.
  EXPECT_LT(outs[0].results.transfers.of(net::Traffic::kRefresh).bytes,
            outs[3].results.transfers.of(net::Traffic::kRefresh).bytes / 2);
}

}  // namespace
}  // namespace dtncache::runner
