/// Analytical cross-validation: configurations with closed-form answers,
/// checked against the full simulation stack. These are the strongest
/// correctness tests in the repository — a bug anywhere in the pipeline
/// (generator rates, contact replay, version clocks, freshness
/// bookkeeping, scheme logic) shows up as a systematic deviation from
/// the math.

#include <cmath>

#include <gtest/gtest.h>

#include "core/freshness.hpp"
#include "runner/experiment.hpp"

namespace dtncache::runner {
namespace {

ExperimentConfig base(double contactsPerPairPerDay, sim::SimTime tau,
                      sim::SimTime duration, std::uint64_t seed) {
  ExperimentConfig c;
  c.trace = trace::homogeneousConfig(12, contactsPerPairPerDay, duration, seed);
  c.catalog.itemCount = 4;
  c.catalog.refreshPeriod = tau;
  c.workload.queriesPerNodePerDay = 0.0;
  c.cache.cachingNodesPerItem = 6;
  c.hierarchical.useOracleRates = true;
  return c;
}

TEST(AnalyticalValidation, NoRefreshFreshnessEqualsFirstPeriodFraction) {
  // Without maintenance, a copy of item i is fresh exactly during
  // [0, birth_i + τ); the time-averaged aggregate fresh fraction is the
  // mean of (birth_i + τ)/T over items (births staggered across one τ).
  const sim::SimTime tau = sim::hours(12);
  const sim::SimTime T = sim::days(15);
  auto cfg = base(6.0, tau, T, 3);
  cfg.scheme = SchemeKind::kNoRefresh;
  const auto out = runExperiment(cfg);

  double expected = 0.0;
  const std::size_t items = cfg.catalog.itemCount;
  for (std::size_t i = 0; i < items; ++i) {
    const double birth = tau * static_cast<double>(i) / static_cast<double>(items);
    expected += (birth + tau) / T;
  }
  expected /= static_cast<double>(items);
  EXPECT_NEAR(out.results.meanFreshFraction, expected, 0.002);
}

TEST(AnalyticalValidation, SourceDirectMatchesSingleHopModel) {
  // Flat scheme, homogeneous rate λ, no relays: each member is refreshed
  // by the source alone, so P(refresh ≤ τ) = 1 − e^{−λτ} and the long-run
  // fresh fraction is (τ − E[min(Exp(λ), τ)])/τ.
  const sim::SimTime tau = sim::hours(12);
  auto cfg = base(6.0, tau, sim::days(30), 7);
  cfg.scheme = SchemeKind::kSourceDirect;
  const auto out = runExperiment(cfg);

  // Recover λ from the generator's ground truth via a fresh generation.
  auto tc = cfg.trace;
  tc.seed = tc.seed * 1000003 + cfg.seed;
  const auto world = trace::generate(tc);
  const double lambda = world.rates.rate(0, 1);

  const double expectWithin = trace::contactProbability(lambda, tau);
  const double expectFresh = core::expectedFreshFraction({lambda}, tau);
  EXPECT_NEAR(out.results.refreshWithinPeriodRatio, expectWithin, 0.04);
  EXPECT_NEAR(out.results.meanFreshFraction, expectFresh, 0.04);
}

TEST(AnalyticalValidation, HierarchicalStarMatchesSingleHopModel) {
  // Fanout ≥ members on a homogeneous trace builds a star (every chain is
  // one hop), so the hierarchical scheme without relays/replication must
  // match the same closed form as SourceDirect — and the scheme's own
  // prediction must match both.
  const sim::SimTime tau = sim::hours(12);
  auto cfg = base(6.0, tau, sim::days(30), 7);
  cfg.scheme = SchemeKind::kHierarchical;
  cfg.cache.cachingNodesPerItem = 6;
  cfg.hierarchical.hierarchy.fanoutBound = 6;
  cfg.hierarchical.relayAssisted = false;
  cfg.hierarchical.replication.enabled = false;
  cfg.hierarchical.maintenance = core::MaintenanceMode::kStatic;
  const auto out = runExperiment(cfg);

  auto tc = cfg.trace;
  tc.seed = tc.seed * 1000003 + cfg.seed;
  const double lambda = trace::generate(tc).rates.rate(0, 1);
  const double expectWithin = trace::contactProbability(lambda, tau);

  EXPECT_EQ(out.maxHierarchyDepth, 1u);  // it really is a star
  EXPECT_NEAR(out.meanPredictedProbability, expectWithin, 1e-6);
  EXPECT_NEAR(out.results.refreshWithinPeriodRatio, expectWithin, 0.04);
}

TEST(AnalyticalValidation, ChainDepthTwoMatchesHypoexponential) {
  // Fanout 1 on a homogeneous trace builds a chain; depth-2 members see a
  // two-stage hypoexponential refresh delay. The scheme's prediction uses
  // exactly that closed form; simulation must agree.
  const sim::SimTime tau = sim::hours(18);
  auto cfg = base(6.0, tau, sim::days(40), 11);
  cfg.catalog.itemCount = 2;
  cfg.cache.cachingNodesPerItem = 2;  // chain: source -> a -> b
  cfg.scheme = SchemeKind::kHierarchical;
  cfg.hierarchical.hierarchy.fanoutBound = 1;
  cfg.hierarchical.relayAssisted = false;
  cfg.hierarchical.replication.enabled = false;
  cfg.hierarchical.maintenance = core::MaintenanceMode::kStatic;
  const auto out = runExperiment(cfg);

  auto tc = cfg.trace;
  tc.seed = tc.seed * 1000003 + cfg.seed;
  const double lambda = trace::generate(tc).rates.rate(0, 1);
  const double depth1 = core::hypoexponentialCdf({lambda}, tau);
  const double depth2 = core::hypoexponentialCdf({lambda, lambda}, tau);

  EXPECT_EQ(out.maxHierarchyDepth, 2u);
  EXPECT_NEAR(out.meanPredictedProbability, (depth1 + depth2) / 2.0, 1e-6);
  EXPECT_NEAR(out.results.refreshWithinPeriodRatio, (depth1 + depth2) / 2.0, 0.05);
}

TEST(AnalyticalValidation, FloodingSaturatesOnDenseNetworks) {
  // With rates high enough that some contact reaches every node within a
  // small fraction of τ, flooding keeps essentially everything fresh.
  auto cfg = base(60.0, sim::hours(24), sim::days(10), 13);
  cfg.scheme = SchemeKind::kFlooding;
  const auto out = runExperiment(cfg);
  EXPECT_GT(out.results.meanFreshFraction, 0.97);
  // Slots opened by each run's final bumps are unfulfillable (~1/10 of
  // slots at 10 periods), so the ratio saturates just below 1.
  EXPECT_GT(out.results.refreshWithinPeriodRatio, 0.95);
}

}  // namespace
}  // namespace dtncache::runner
