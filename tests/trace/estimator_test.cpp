#include "trace/estimator.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "trace/generators.hpp"

namespace dtncache::trace {
namespace {

TEST(Estimator, UnseenPairUsesPrior) {
  EstimatorConfig cfg;
  cfg.priorRate = 0.001;
  ContactRateEstimator e(5, cfg);
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 100.0), 0.001);
}

TEST(Estimator, DefaultPriorIsZero) {
  ContactRateEstimator e(5, {});
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 100.0), 0.0);
}

TEST(Estimator, CumulativeIsCountOverElapsed) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kCumulative;
  ContactRateEstimator e(4, cfg, 0.0);
  e.recordContact(0, 1, 10.0);
  e.recordContact(0, 1, 20.0);
  e.recordContact(1, 0, 90.0);  // symmetric pair key
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 100.0), 3.0 / 100.0);
  EXPECT_DOUBLE_EQ(e.rate(1, 0, 100.0), 3.0 / 100.0);
}

TEST(Estimator, CumulativeRespectsStartTime) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kCumulative;
  ContactRateEstimator e(4, cfg, -100.0);  // pre-fed warm-up history
  e.recordContact(0, 1, -50.0);
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 100.0), 1.0 / 200.0);
}

TEST(Estimator, SlidingWindowForgetsOldContacts) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kSlidingWindow;
  cfg.window = 100.0;
  ContactRateEstimator e(4, cfg, 0.0);
  for (int i = 0; i < 10; ++i) e.recordContact(0, 1, 10.0 * i);
  // At t=150, only contacts in [50, 150] remain: t=50,60,70,80,90 → 5.
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 150.0), 5.0 / 100.0);
  // Far in the future everything is forgotten; falls back to prior (0).
  e.recordContact(2, 3, 1000.0);  // trigger pruning on another pair only
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 10000.0), 0.0);
}

TEST(Estimator, SlidingWindowEarlyPhaseUsesElapsedSpan) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kSlidingWindow;
  cfg.window = 1000.0;
  ContactRateEstimator e(4, cfg, 0.0);
  e.recordContact(0, 1, 10.0);
  e.recordContact(0, 1, 20.0);
  // Only 50s of history exists; divide by 50, not the 1000s window.
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 50.0), 2.0 / 50.0);
}

TEST(Estimator, EwmaTracksIntervals) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kEwma;
  cfg.ewmaAlpha = 1.0;  // newest interval only
  ContactRateEstimator e(4, cfg, 0.0);
  e.recordContact(0, 1, 100.0);
  e.recordContact(0, 1, 150.0);
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 200.0), 1.0 / 50.0);
  e.recordContact(0, 1, 160.0);
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 200.0), 1.0 / 10.0);
}

TEST(Estimator, EwmaSingleContactFallsBackToCumulative) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kEwma;
  ContactRateEstimator e(4, cfg, 0.0);
  e.recordContact(0, 1, 50.0);
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 100.0), 1.0 / 100.0);
}

TEST(Estimator, NodeRateSumAddsPeers) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kCumulative;
  ContactRateEstimator e(4, cfg, 0.0);
  e.recordContact(0, 1, 10.0);
  e.recordContact(0, 2, 10.0);
  e.recordContact(1, 2, 10.0);
  EXPECT_DOUBLE_EQ(e.nodeRateSum(0, 100.0), 2.0 / 100.0);
}

TEST(Estimator, SnapshotMatchesPointQueries) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kCumulative;
  ContactRateEstimator e(5, cfg, 0.0);
  e.recordContact(0, 1, 10.0);
  e.recordContact(2, 4, 20.0);
  const auto m = e.snapshot(100.0);
  for (NodeId i = 0; i < 5; ++i)
    for (NodeId j = i + 1; j < 5; ++j) EXPECT_DOUBLE_EQ(m.rate(i, j), e.rate(i, j, 100.0));
}

TEST(Estimator, ConvergesToTrueRateOnSyntheticTrace) {
  // Feed a long homogeneous trace; cumulative estimates must converge to
  // the generator's ground truth.
  const auto world = generate(homogeneousConfig(8, 4.0, sim::days(60), 3));
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kCumulative;
  ContactRateEstimator e(8, cfg, 0.0);
  for (const auto& c : world.trace.contacts()) e.recordContact(c.a, c.b, c.start);
  const double horizon = sim::days(60);
  double truth = world.rates.rate(0, 1);
  double sumRel = 0.0;
  int pairs = 0;
  for (NodeId i = 0; i < 8; ++i)
    for (NodeId j = i + 1; j < 8; ++j) {
      sumRel += e.rate(i, j, horizon) / truth;
      ++pairs;
    }
  EXPECT_NEAR(sumRel / pairs, 1.0, 0.05);
}

TEST(Estimator, MeetingProbabilityUsesEstimate) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kCumulative;
  ContactRateEstimator e(4, cfg, 0.0);
  e.recordContact(0, 1, 50.0);
  const double r = e.rate(0, 1, 100.0);
  EXPECT_DOUBLE_EQ(e.meetingProbability(0, 1, 30.0, 100.0), contactProbability(r, 30.0));
}

TEST(Estimator, InvalidConfigThrows) {
  EstimatorConfig cfg;
  cfg.ewmaAlpha = 0.0;
  EXPECT_THROW(ContactRateEstimator(4, cfg), InvariantViolation);
  EstimatorConfig cfg2;
  cfg2.window = 0.0;
  EXPECT_THROW(ContactRateEstimator(4, cfg2), InvariantViolation);
}

}  // namespace
}  // namespace dtncache::trace
