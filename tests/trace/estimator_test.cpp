#include "trace/estimator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/rng.hpp"
#include "trace/generators.hpp"

namespace dtncache::trace {
namespace {

TEST(Estimator, UnseenPairUsesPrior) {
  EstimatorConfig cfg;
  cfg.priorRate = 0.001;
  ContactRateEstimator e(5, cfg);
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 100.0), 0.001);
}

TEST(Estimator, DefaultPriorIsZero) {
  ContactRateEstimator e(5, {});
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 100.0), 0.0);
}

TEST(Estimator, CumulativeIsCountOverElapsed) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kCumulative;
  ContactRateEstimator e(4, cfg, 0.0);
  e.recordContact(0, 1, 10.0);
  e.recordContact(0, 1, 20.0);
  e.recordContact(1, 0, 90.0);  // symmetric pair key
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 100.0), 3.0 / 100.0);
  EXPECT_DOUBLE_EQ(e.rate(1, 0, 100.0), 3.0 / 100.0);
}

TEST(Estimator, CumulativeRespectsStartTime) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kCumulative;
  ContactRateEstimator e(4, cfg, -100.0);  // pre-fed warm-up history
  e.recordContact(0, 1, -50.0);
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 100.0), 1.0 / 200.0);
}

TEST(Estimator, SlidingWindowForgetsOldContacts) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kSlidingWindow;
  cfg.window = 100.0;
  ContactRateEstimator e(4, cfg, 0.0);
  for (int i = 0; i < 10; ++i) e.recordContact(0, 1, 10.0 * i);
  // At t=150, only contacts in [50, 150] remain: t=50,60,70,80,90 → 5.
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 150.0), 5.0 / 100.0);
  // Far in the future everything is forgotten; falls back to prior (0).
  e.recordContact(2, 3, 1000.0);  // trigger pruning on another pair only
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 10000.0), 0.0);
}

TEST(Estimator, SlidingWindowEarlyPhaseUsesElapsedSpan) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kSlidingWindow;
  cfg.window = 1000.0;
  ContactRateEstimator e(4, cfg, 0.0);
  e.recordContact(0, 1, 10.0);
  e.recordContact(0, 1, 20.0);
  // Only 50s of history exists; divide by 50, not the 1000s window.
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 50.0), 2.0 / 50.0);
}

TEST(Estimator, EwmaTracksIntervals) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kEwma;
  cfg.ewmaAlpha = 1.0;  // newest interval only
  ContactRateEstimator e(4, cfg, 0.0);
  e.recordContact(0, 1, 100.0);
  e.recordContact(0, 1, 150.0);
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 200.0), 1.0 / 50.0);
  e.recordContact(0, 1, 160.0);
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 200.0), 1.0 / 10.0);
}

TEST(Estimator, EwmaSingleContactFallsBackToCumulative) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kEwma;
  ContactRateEstimator e(4, cfg, 0.0);
  e.recordContact(0, 1, 50.0);
  EXPECT_DOUBLE_EQ(e.rate(0, 1, 100.0), 1.0 / 100.0);
}

TEST(Estimator, NodeRateSumAddsPeers) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kCumulative;
  ContactRateEstimator e(4, cfg, 0.0);
  e.recordContact(0, 1, 10.0);
  e.recordContact(0, 2, 10.0);
  e.recordContact(1, 2, 10.0);
  EXPECT_DOUBLE_EQ(e.nodeRateSum(0, 100.0), 2.0 / 100.0);
}

TEST(Estimator, SnapshotMatchesPointQueries) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kCumulative;
  ContactRateEstimator e(5, cfg, 0.0);
  e.recordContact(0, 1, 10.0);
  e.recordContact(2, 4, 20.0);
  const auto m = e.snapshot(100.0);
  for (NodeId i = 0; i < 5; ++i)
    for (NodeId j = i + 1; j < 5; ++j) EXPECT_DOUBLE_EQ(m.rate(i, j), e.rate(i, j, 100.0));
}

TEST(Estimator, ConvergesToTrueRateOnSyntheticTrace) {
  // Feed a long homogeneous trace; cumulative estimates must converge to
  // the generator's ground truth.
  const auto world = generate(homogeneousConfig(8, 4.0, sim::days(60), 3));
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kCumulative;
  ContactRateEstimator e(8, cfg, 0.0);
  for (const auto& c : world.trace.contacts()) e.recordContact(c.a, c.b, c.start);
  const double horizon = sim::days(60);
  double truth = world.rates.rate(0, 1);
  double sumRel = 0.0;
  int pairs = 0;
  for (NodeId i = 0; i < 8; ++i)
    for (NodeId j = i + 1; j < 8; ++j) {
      sumRel += e.rate(i, j, horizon) / truth;
      ++pairs;
    }
  EXPECT_NEAR(sumRel / pairs, 1.0, 0.05);
}

TEST(Estimator, MeetingProbabilityUsesEstimate) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kCumulative;
  ContactRateEstimator e(4, cfg, 0.0);
  e.recordContact(0, 1, 50.0);
  const double r = e.rate(0, 1, 100.0);
  EXPECT_DOUBLE_EQ(e.meetingProbability(0, 1, 30.0, 100.0), contactProbability(r, 30.0));
}

// ---- Incremental snapshot (snapshotInto) -----------------------------------

/// All three estimation modes, for mode-parameterized equivalence tests.
std::vector<EstimatorConfig> allModeConfigs() {
  EstimatorConfig cumulative;
  cumulative.mode = EstimatorMode::kCumulative;
  EstimatorConfig window;
  window.mode = EstimatorMode::kSlidingWindow;
  window.window = 500.0;  // short, so contacts age out mid-test
  EstimatorConfig ewma;
  ewma.mode = EstimatorMode::kEwma;
  return {cumulative, window, ewma};
}

/// Every entry bit-identical (EXPECT_EQ is exact comparison, not ULP-near).
void expectBitIdentical(const RateMatrix& a, const RateMatrix& b) {
  ASSERT_EQ(a.nodeCount(), b.nodeCount());
  for (NodeId i = 0; i < a.nodeCount(); ++i)
    for (NodeId j = i + 1; j < a.nodeCount(); ++j)
      ASSERT_EQ(a.rate(i, j), b.rate(i, j)) << "pair (" << i << "," << j << ")";
}

TEST(EstimatorSnapshot, IncrementalMatchesFullOnRandomStreamsAllModes) {
  // Random contact streams interleaved with snapshots; after every snapshot
  // the incrementally maintained matrix must equal a from-scratch
  // snapshot() bit for bit, in every mode. This is the core contract the
  // incremental maintenance engine rests on.
  constexpr NodeId kNodes = 14;
  for (const auto& cfg : allModeConfigs()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      ContactRateEstimator e(kNodes, cfg, 0.0);
      RateMatrix m;
      sim::Rng rng(seed * 77);
      double now = 0.0;
      for (int round = 0; round < 40; ++round) {
        const int burst = static_cast<int>(rng.uniformInt(0, 6));
        for (int c = 0; c < burst; ++c) {
          const NodeId a = static_cast<NodeId>(rng.uniformInt(0, kNodes - 1));
          NodeId b = static_cast<NodeId>(rng.uniformInt(0, kNodes - 2));
          if (b >= a) ++b;
          now += rng.uniform(0.0, 30.0);
          e.recordContact(a, b, now);
        }
        now += rng.uniform(1.0, 200.0);  // idle gaps let window pairs expire
        e.snapshotInto(m, now);
        expectBitIdentical(m, e.snapshot(now));
      }
    }
  }
}

TEST(EstimatorSnapshot, BatchedIncrementalMatchesFullOnSparseBackend) {
  // Same contract as above but with the sparse pair backend forced, so the
  // gathered-column batch evaluation (and its per-pair slot probes) is
  // exercised against hash-indexed state in every mode.
  constexpr NodeId kNodes = 16;
  for (auto cfg : allModeConfigs()) {
    cfg.backend = PairBackend::kSparse;
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      ContactRateEstimator e(kNodes, cfg, 0.0);
      ASSERT_TRUE(e.isSparse());
      RateMatrix m;
      sim::Rng rng(seed * 31 + 5);
      double now = 0.0;
      for (int round = 0; round < 30; ++round) {
        const int burst = static_cast<int>(rng.uniformInt(0, 5));
        for (int c = 0; c < burst; ++c) {
          const NodeId a = static_cast<NodeId>(rng.uniformInt(0, kNodes - 1));
          NodeId b = static_cast<NodeId>(rng.uniformInt(0, kNodes - 2));
          if (b >= a) ++b;
          now += rng.uniform(0.0, 25.0);
          e.recordContact(a, b, now);
        }
        now += rng.uniform(1.0, 180.0);
        const auto stats = e.snapshotInto(m, now);
        expectBitIdentical(m, e.snapshot(now));
        // The batch covers exactly the dirty + still-time-varying pairs.
        EXPECT_LE(stats.changedPairs, stats.dirtyPairs);
      }
    }
  }
}

TEST(EstimatorSnapshot, ForceRewriteIsObservationallyIdentical) {
  // The full-recompute escape hatch (force=true) must produce the same
  // matrix, the same changed-node lists, and the same changedPairs count as
  // the incremental path — only dirtyPairs (work done) may differ.
  constexpr NodeId kNodes = 10;
  for (const auto& cfg : allModeConfigs()) {
    ContactRateEstimator inc(kNodes, cfg, 0.0);
    ContactRateEstimator full(kNodes, cfg, 0.0);
    RateMatrix mInc, mFull;
    std::vector<NodeId> changedInc, changedFull;
    sim::Rng rng(99);
    double now = 0.0;
    for (int round = 0; round < 25; ++round) {
      const int burst = static_cast<int>(rng.uniformInt(0, 4));
      for (int c = 0; c < burst; ++c) {
        const NodeId a = static_cast<NodeId>(rng.uniformInt(0, kNodes - 1));
        NodeId b = static_cast<NodeId>(rng.uniformInt(0, kNodes - 2));
        if (b >= a) ++b;
        now += rng.uniform(0.0, 20.0);
        inc.recordContact(a, b, now);
        full.recordContact(a, b, now);
      }
      now += rng.uniform(1.0, 150.0);
      const auto sInc = inc.snapshotInto(mInc, now, &changedInc, /*force=*/false);
      const auto sFull = full.snapshotInto(mFull, now, &changedFull, /*force=*/true);
      expectBitIdentical(mInc, mFull);
      EXPECT_EQ(changedInc, changedFull);
      EXPECT_EQ(sInc.changedPairs, sFull.changedPairs);
    }
  }
}

TEST(EstimatorSnapshot, ChangedNodesListsExactlyTheRowsThatMoved) {
  constexpr NodeId kNodes = 12;
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kEwma;
  ContactRateEstimator e(kNodes, cfg, 0.0);
  RateMatrix m;
  RateMatrix previous;
  std::vector<NodeId> changed;
  sim::Rng rng(7);
  double now = 0.0;
  e.snapshotInto(m, now, &changed);  // prime
  for (int round = 0; round < 30; ++round) {
    previous = m;
    const int burst = static_cast<int>(rng.uniformInt(0, 3));
    for (int c = 0; c < burst; ++c) {
      const NodeId a = static_cast<NodeId>(rng.uniformInt(0, kNodes - 1));
      NodeId b = static_cast<NodeId>(rng.uniformInt(0, kNodes - 2));
      if (b >= a) ++b;
      now += rng.uniform(0.0, 10.0);
      e.recordContact(a, b, now);
    }
    now += rng.uniform(1.0, 100.0);
    e.snapshotInto(m, now, &changed);
    // Recompute the ground truth: rows whose entries differ from before.
    std::vector<NodeId> expected;
    for (NodeId i = 0; i < kNodes; ++i) {
      bool moved = false;
      for (NodeId j = 0; j < kNodes && !moved; ++j)
        if (j != i && m.rate(i, j) != previous.rate(i, j)) moved = true;
      if (moved) expected.push_back(i);
    }
    EXPECT_EQ(changed, expected) << "round " << round;
    EXPECT_TRUE(std::is_sorted(changed.begin(), changed.end()));
  }
}

TEST(EstimatorSnapshot, QuiescentEwmaSnapshotTouchesNothing) {
  // Every pair has >= 2 contacts (rate = 1/ewma, independent of `now`), so
  // after one snapshot consumes the dirty list, further snapshots must do
  // zero work and report zero change — the skip condition the maintenance
  // tick's short-circuit relies on.
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kEwma;
  ContactRateEstimator e(6, cfg, 0.0);
  for (NodeId i = 0; i < 6; ++i)
    for (NodeId j = i + 1; j < 6; ++j) {
      e.recordContact(i, j, 10.0 * (i + j));
      e.recordContact(i, j, 10.0 * (i + j) + 100.0);
    }
  RateMatrix m;
  std::vector<NodeId> changed;
  e.snapshotInto(m, 1000.0, &changed);
  EXPECT_FALSE(changed.empty());
  for (double now : {2000.0, 3000.0, 50000.0}) {
    const auto stats = e.snapshotInto(m, now, &changed);
    EXPECT_EQ(stats.dirtyPairs, 0u);
    EXPECT_EQ(stats.changedPairs, 0u);
    EXPECT_TRUE(changed.empty());
    expectBitIdentical(m, e.snapshot(now));
  }
}

TEST(EstimatorSnapshot, DirtyListDedupsAndDrainsOnSnapshot) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kEwma;
  ContactRateEstimator e(5, cfg, 0.0);
  EXPECT_EQ(e.dirtyPairCount(), 0u);
  e.recordContact(0, 1, 10.0);
  e.recordContact(1, 0, 20.0);  // same pair, symmetric key: no second entry
  EXPECT_EQ(e.dirtyPairCount(), 1u);
  e.recordContact(2, 3, 30.0);
  EXPECT_EQ(e.dirtyPairCount(), 2u);
  RateMatrix m;
  e.snapshotInto(m, 100.0);
  EXPECT_EQ(e.dirtyPairCount(), 0u);
  // (0,1) has an interval (stable under kEwma); (2,3) is single-contact and
  // falls back to cumulative, so it stays on the time-varying list.
  EXPECT_EQ(e.timeVaryingPairCount(), 1u);
}

TEST(EstimatorSnapshot, CumulativeKeepsAllSeenPairsTimeVarying) {
  EstimatorConfig cfg;
  cfg.mode = EstimatorMode::kCumulative;
  ContactRateEstimator e(5, cfg, 0.0);
  e.recordContact(0, 1, 10.0);
  e.recordContact(2, 3, 20.0);
  RateMatrix m;
  e.snapshotInto(m, 100.0);
  EXPECT_EQ(e.timeVaryingPairCount(), 2u);  // count/elapsed moves every tick
  const auto stats = e.snapshotInto(m, 200.0);
  EXPECT_EQ(stats.changedPairs, 2u);
  expectBitIdentical(m, e.snapshot(200.0));
}

TEST(Estimator, InvalidConfigThrows) {
  EstimatorConfig cfg;
  cfg.ewmaAlpha = 0.0;
  EXPECT_THROW(ContactRateEstimator(4, cfg), InvariantViolation);
  EstimatorConfig cfg2;
  cfg2.window = 0.0;
  EXPECT_THROW(ContactRateEstimator(4, cfg2), InvariantViolation);
}

}  // namespace
}  // namespace dtncache::trace
