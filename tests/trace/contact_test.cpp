#include "trace/contact.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/assert.hpp"

namespace dtncache::trace {
namespace {

ContactTrace makeSmallTrace() {
  std::vector<Contact> cs = {
      {10.0, 5.0, 1, 0},  // endpoints deliberately unordered
      {0.0, 2.0, 0, 2},
      {20.0, 1.0, 1, 2},
      {25.0, 3.0, 0, 1},
  };
  return ContactTrace(3, std::move(cs));
}

TEST(ContactTrace, NormalizesAndSorts) {
  const auto t = makeSmallTrace();
  ASSERT_EQ(t.contacts().size(), 4u);
  EXPECT_DOUBLE_EQ(t.contacts().front().start, 0.0);
  EXPECT_DOUBLE_EQ(t.contacts().back().start, 25.0);
  for (const auto& c : t.contacts()) EXPECT_LT(c.a, c.b);
}

TEST(ContactTrace, DurationIsLastContactEnd) {
  const auto t = makeSmallTrace();
  EXPECT_DOUBLE_EQ(t.duration(), 28.0);
}

TEST(ContactTrace, EmptyTrace) {
  ContactTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.duration(), 0.0);
}

TEST(ContactTrace, PairCounts) {
  const auto t = makeSmallTrace();
  EXPECT_EQ(t.pairContactCount(0, 1), 2u);
  EXPECT_EQ(t.pairContactCount(1, 0), 2u);  // symmetric
  EXPECT_EQ(t.pairContactCount(0, 2), 1u);
  EXPECT_EQ(t.pairContactCount(1, 2), 1u);
}

TEST(ContactTrace, PairRate) {
  const auto t = makeSmallTrace();
  EXPECT_DOUBLE_EQ(t.pairRate(0, 1), 2.0 / 28.0);
}

TEST(ContactTrace, StatsAggregates) {
  const auto s = makeSmallTrace().stats();
  EXPECT_EQ(s.nodeCount, 3u);
  EXPECT_EQ(s.contactCount, 4u);
  EXPECT_EQ(s.pairsThatMet, 3u);
  EXPECT_DOUBLE_EQ(s.meanContactDuration, (5.0 + 2.0 + 1.0 + 3.0) / 4.0);
}

TEST(ContactTrace, TruncatedKeepsEarlyContacts) {
  const auto t = makeSmallTrace().truncated(15.0);
  EXPECT_EQ(t.contacts().size(), 2u);
  EXPECT_EQ(t.nodeCount(), 3u);
}

TEST(ContactTrace, RejectsOutOfRangeEndpoint) {
  std::vector<Contact> cs = {{0.0, 1.0, 0, 5}};
  EXPECT_THROW(ContactTrace(3, std::move(cs)), InvariantViolation);
}

TEST(ContactTrace, RejectsSelfContact) {
  std::vector<Contact> cs = {{0.0, 1.0, 2, 2}};
  EXPECT_THROW(ContactTrace(3, std::move(cs)), InvariantViolation);
}

TEST(ContactTrace, CsvRoundTrip) {
  const auto t = makeSmallTrace();
  std::stringstream ss;
  t.writeCsv(ss);
  const auto back = ContactTrace::readCsv(ss);
  ASSERT_EQ(back.contacts().size(), t.contacts().size());
  for (std::size_t i = 0; i < t.contacts().size(); ++i) {
    EXPECT_DOUBLE_EQ(back.contacts()[i].start, t.contacts()[i].start);
    EXPECT_DOUBLE_EQ(back.contacts()[i].duration, t.contacts()[i].duration);
    EXPECT_EQ(back.contacts()[i].a, t.contacts()[i].a);
    EXPECT_EQ(back.contacts()[i].b, t.contacts()[i].b);
  }
}

TEST(ContactTrace, CsvMalformedLineThrows) {
  std::stringstream ss("start,duration,a,b\nnot,a,number,row\n");
  EXPECT_THROW(ContactTrace::readCsv(ss), InvariantViolation);
}

TEST(Contact, PeerOfAndInvolves) {
  Contact c{0.0, 1.0, 3, 7};
  EXPECT_TRUE(c.involves(3));
  EXPECT_TRUE(c.involves(7));
  EXPECT_FALSE(c.involves(5));
  EXPECT_EQ(c.peerOf(3), 7u);
  EXPECT_EQ(c.peerOf(7), 3u);
}

}  // namespace
}  // namespace dtncache::trace
