/// Statistical property sweeps of the trace generators: the ground-truth
/// rate matrix the generator reports must agree with the contacts it
/// emits — the whole analytical pipeline keys off this consistency.

#include <gtest/gtest.h>

#include "trace/analysis.hpp"
#include "trace/generators.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::trace {
namespace {

class GeneratorProperty : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorProperty, ReportedRatesMatchEmittedContacts) {
  SyntheticTraceConfig cfg;
  const int p = GetParam();
  cfg.nodeCount = 10 + p % 10;
  cfg.duration = sim::days(20);
  cfg.model = static_cast<RateModel>(p % 3);
  cfg.communities = 3;
  cfg.diurnal = p % 2 == 0;
  cfg.meanContactsPerPairPerDay = 0.5 + 0.5 * (p % 4);
  cfg.seed = static_cast<std::uint64_t>(p) * 101 + 7;
  const auto world = generate(cfg);

  // Aggregate check (per-pair counts are too noisy at these durations):
  // total contacts vs the sum of ground-truth rates × duration.
  double expected = 0.0;
  for (NodeId i = 0; i < cfg.nodeCount; ++i)
    for (NodeId j = i + 1; j < cfg.nodeCount; ++j)
      expected += world.rates.rate(i, j) * cfg.duration;
  const auto actual = static_cast<double>(world.trace.contacts().size());
  EXPECT_NEAR(actual / expected, 1.0, 0.15) << "model=" << p % 3;

  // The busiest pairs must match their individual rates too.
  const auto empirical = RateMatrix::fitFromTrace(world.trace);
  double bestTruth = 0.0;
  NodeId bi = 0, bj = 1;
  for (NodeId i = 0; i < cfg.nodeCount; ++i)
    for (NodeId j = i + 1; j < cfg.nodeCount; ++j)
      if (world.rates.rate(i, j) > bestTruth) {
        bestTruth = world.rates.rate(i, j);
        bi = i;
        bj = j;
      }
  if (bestTruth * cfg.duration > 50.0) {  // enough samples to compare
    EXPECT_NEAR(empirical.rate(bi, bj) / bestTruth, 1.0, 0.35);
  }

  // Structural sanity.
  EXPECT_EQ(world.trace.nodeCount(), cfg.nodeCount);
  for (const auto& c : world.trace.contacts()) {
    EXPECT_GE(c.start, 0.0);
    EXPECT_LT(c.start, cfg.duration);
    EXPECT_GT(c.duration, 0.0);
  }
}

TEST_P(GeneratorProperty, NonDiurnalPairGapsAreExponential) {
  SyntheticTraceConfig cfg;
  cfg.nodeCount = 6;
  cfg.duration = sim::days(60);
  cfg.model = RateModel::kHomogeneous;
  cfg.diurnal = false;
  cfg.meanContactsPerPairPerDay = 4.0;
  cfg.seed = static_cast<std::uint64_t>(GetParam()) + 50;
  const auto world = generate(cfg);
  const auto fit = fitExponential(allInterContactTimes(world.trace));
  EXPECT_NEAR(fit.cv, 1.0, 0.12);
  EXPECT_LT(fit.ksDistance, 0.06);
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, GeneratorProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace dtncache::trace
