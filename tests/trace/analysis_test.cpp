#include "trace/analysis.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "trace/generators.hpp"

namespace dtncache::trace {
namespace {

ContactTrace pairTrace(const std::vector<double>& starts, NodeId a = 0, NodeId b = 1) {
  std::vector<Contact> cs;
  for (double t : starts) cs.push_back({t, 1.0, a, b});
  return ContactTrace(std::max(a, b) + 1, std::move(cs));
}

TEST(Analysis, InterContactTimesAreGaps) {
  const auto t = pairTrace({10.0, 25.0, 31.0, 60.0});
  const auto gaps = interContactTimes(t, 0, 1);
  EXPECT_EQ(gaps, (std::vector<double>{15.0, 6.0, 29.0}));
  // Symmetric in the pair order.
  EXPECT_EQ(interContactTimes(t, 1, 0), gaps);
}

TEST(Analysis, InterContactTimesEmptyForStrangers) {
  const auto t = pairTrace({10.0, 25.0});
  std::vector<Contact> cs = t.contacts();
  ContactTrace t3(3, std::move(cs));
  EXPECT_TRUE(interContactTimes(t3, 0, 2).empty());
}

TEST(Analysis, AllInterContactTimesPoolsPairs) {
  std::vector<Contact> cs = {
      {0.0, 1.0, 0, 1}, {10.0, 1.0, 0, 1},                      // gap 10
      {5.0, 1.0, 1, 2}, {8.0, 1.0, 1, 2}, {14.0, 1.0, 1, 2},    // gaps 3, 6
      {7.0, 1.0, 0, 2},                                          // single: excluded
  };
  const auto gaps = allInterContactTimes(ContactTrace(3, std::move(cs)));
  EXPECT_EQ(gaps.size(), 3u);
}

TEST(Analysis, ExponentialFitRecoversRate) {
  sim::Rng rng(5);
  std::vector<double> samples;
  const double trueRate = 0.02;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.exponential(trueRate));
  const auto fit = fitExponential(samples);
  EXPECT_NEAR(fit.rate, trueRate, trueRate * 0.05);
  EXPECT_NEAR(fit.cv, 1.0, 0.05);
  EXPECT_LT(fit.ksDistance, 0.02);  // a true exponential fits itself
}

TEST(Analysis, NonExponentialHasHighKs) {
  // Constant gaps: maximally non-exponential.
  std::vector<double> samples(1000, 10.0);
  const auto fit = fitExponential(samples);
  EXPECT_NEAR(fit.cv, 0.0, 1e-9);
  EXPECT_GT(fit.ksDistance, 0.3);
}

TEST(Analysis, TooFewSamplesGiveDefaultFit) {
  EXPECT_EQ(fitExponential({}).samples, 0u);
  const auto one = fitExponential({5.0});
  EXPECT_DOUBLE_EQ(one.rate, 0.0);
  EXPECT_DOUBLE_EQ(one.ksDistance, 1.0);
}

TEST(Analysis, SyntheticHomogeneousTraceFitsExponential) {
  const auto world = generate(homogeneousConfig(10, 6.0, sim::days(30), 2));
  const auto fit = fitExponential(allInterContactTimes(world.trace));
  EXPECT_GT(fit.samples, 1000u);
  EXPECT_NEAR(fit.cv, 1.0, 0.1);
  EXPECT_LT(fit.ksDistance, 0.05);
  // The pooled MLE rate must match the generator's per-pair ground truth.
  EXPECT_NEAR(fit.rate, world.rates.rate(0, 1), world.rates.rate(0, 1) * 0.15);
}

TEST(Analysis, DiurnalTraceDeviatesFromExponential) {
  auto cfg = homogeneousConfig(10, 6.0, sim::days(30), 2);
  cfg.diurnal = true;
  cfg.nightActivity = 0.02;
  const auto world = generate(cfg);
  const auto fit = fitExponential(allInterContactTimes(world.trace));
  // Day/night gating makes gaps bursty: CV > 1, worse KS.
  EXPECT_GT(fit.cv, 1.05);
}

TEST(Analysis, NodeActivityCountsAndSorts) {
  std::vector<Contact> cs = {
      {0.0, 1.0, 0, 1}, {1.0, 1.0, 0, 2}, {2.0, 1.0, 0, 3}, {3.0, 1.0, 1, 2},
  };
  const auto act = nodeActivity(ContactTrace(4, std::move(cs)));
  ASSERT_EQ(act.size(), 4u);
  EXPECT_EQ(act[0].node, 0u);  // busiest first
  EXPECT_EQ(act[0].contacts, 3u);
  EXPECT_EQ(act[0].distinctPeers, 3u);
  EXPECT_EQ(act[3].contacts, 1u);
}

TEST(Analysis, CommunityTraceHasSkewedActivity) {
  SyntheticTraceConfig cfg;
  cfg.nodeCount = 30;
  cfg.duration = sim::days(10);
  cfg.model = RateModel::kCommunity;
  cfg.diurnal = false;
  cfg.meanContactsPerPairPerDay = 1.0;
  cfg.seed = 6;
  const auto act = nodeActivity(generate(cfg).trace);
  EXPECT_GT(act.front().contacts, 2 * act.back().contacts);
}

TEST(Analysis, CcdfIsMonotoneNonIncreasing) {
  sim::Rng rng(9);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.pareto(1.0, 1.5));
  const auto points = ccdf(samples, 15);
  ASSERT_EQ(points.size(), 15u);
  for (std::size_t k = 1; k < points.size(); ++k) {
    EXPECT_GE(points[k].first, points[k - 1].first);
    EXPECT_LE(points[k].second, points[k - 1].second + 1e-12);
  }
  EXPECT_NEAR(points.front().second, 1.0, 0.01);
}

TEST(Analysis, CcdfEdgeCases) {
  EXPECT_TRUE(ccdf({}, 10).empty());
  EXPECT_TRUE(ccdf({1.0, 2.0}, 0).empty());
  EXPECT_EQ(ccdf({1.0}, 5).size(), 5u);
}

}  // namespace
}  // namespace dtncache::trace
