#include "trace/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dtncache::trace {
namespace {

TEST(Generators, DeterministicInSeed) {
  const auto cfg = homogeneousConfig(10, 2.0, sim::days(3), 5);
  const auto a = generate(cfg);
  const auto b = generate(cfg);
  ASSERT_EQ(a.trace.contacts().size(), b.trace.contacts().size());
  for (std::size_t i = 0; i < a.trace.contacts().size(); ++i)
    EXPECT_DOUBLE_EQ(a.trace.contacts()[i].start, b.trace.contacts()[i].start);
}

TEST(Generators, DifferentSeedsProduceDifferentTraces) {
  auto cfg = homogeneousConfig(10, 2.0, sim::days(3), 5);
  const auto a = generate(cfg);
  cfg.seed = 6;
  const auto b = generate(cfg);
  EXPECT_NE(a.trace.contacts().size(), b.trace.contacts().size());
}

TEST(Generators, HomogeneousDensityMatchesTarget) {
  // 20 nodes, 190 pairs, 3 contacts/pair/day over 20 days → E=11400 contacts.
  const auto cfg = homogeneousConfig(20, 3.0, sim::days(20), 1);
  const auto t = generate(cfg);
  const double perPairPerDay = static_cast<double>(t.trace.contacts().size()) / 190.0 / 20.0;
  EXPECT_NEAR(perPairPerDay, 3.0, 0.15);
}

TEST(Generators, GroundTruthRatesMatchEmpirical) {
  const auto cfg = homogeneousConfig(10, 5.0, sim::days(30), 2);
  const auto t = generate(cfg);
  // Every pair shares the same ground-truth rate; empirical counts should
  // agree within sampling noise.
  const double truth = t.rates.rate(0, 1);
  EXPECT_GT(truth, 0.0);
  double empSum = 0.0;
  std::size_t pairs = 0;
  for (NodeId i = 0; i < 10; ++i)
    for (NodeId j = i + 1; j < 10; ++j) {
      empSum += t.trace.pairRate(i, j);
      ++pairs;
    }
  EXPECT_NEAR(empSum / static_cast<double>(pairs), truth, truth * 0.1);
}

TEST(Generators, DiurnalSuppressesNightContacts) {
  auto cfg = homogeneousConfig(20, 4.0, sim::days(10), 3);
  cfg.diurnal = true;
  cfg.nightActivity = 0.05;
  const auto t = generate(cfg);
  std::size_t night = 0;
  std::size_t day = 0;
  for (const auto& c : t.trace.contacts()) {
    const double hour = std::fmod(sim::toHours(c.start), 24.0);
    if (hour < 4.0 || hour >= 20.0) ++night; else ++day;
  }
  // Night block is 8/24 of the day but carries only ~5% activity.
  EXPECT_LT(static_cast<double>(night) / static_cast<double>(night + day), 0.10);
}

TEST(Generators, CommunityBoostSkewsIntraCommunityContacts) {
  SyntheticTraceConfig cfg;
  cfg.nodeCount = 24;
  cfg.duration = sim::days(20);
  cfg.model = RateModel::kCommunity;
  cfg.communities = 4;
  cfg.intraCommunityBoost = 10.0;
  cfg.diurnal = false;
  cfg.meanContactsPerPairPerDay = 1.0;
  cfg.seed = 4;
  const auto t = generate(cfg);
  ASSERT_EQ(t.community.size(), 24u);
  std::size_t intra = 0;
  std::size_t inter = 0;
  for (const auto& c : t.trace.contacts()) {
    if (t.community[c.a] == t.community[c.b]) ++intra; else ++inter;
  }
  // Intra pairs are ~23% of pairs; with a 10x boost they should dominate.
  EXPECT_GT(intra, inter);
}

TEST(Generators, ParetoModelProducesRateSkew) {
  SyntheticTraceConfig cfg;
  cfg.nodeCount = 30;
  cfg.duration = sim::days(10);
  cfg.model = RateModel::kPareto;
  cfg.diurnal = false;
  cfg.meanContactsPerPairPerDay = 1.0;
  cfg.seed = 9;
  const auto t = generate(cfg);
  double minRate = 1e18;
  double maxRate = 0.0;
  for (NodeId i = 0; i < 30; ++i)
    for (NodeId j = i + 1; j < 30; ++j) {
      minRate = std::min(minRate, t.rates.rate(i, j));
      maxRate = std::max(maxRate, t.rates.rate(i, j));
    }
  EXPECT_GT(maxRate / minRate, 10.0);
}

TEST(Generators, RealityPresetShape) {
  const auto cfg = realityLikeConfig(1);
  EXPECT_EQ(cfg.nodeCount, 97u);
  EXPECT_DOUBLE_EQ(cfg.duration, sim::days(30));
  const auto t = generate(cfg);
  EXPECT_EQ(t.trace.nodeCount(), 97u);
  const auto s = t.trace.stats();
  // Reality-scale sparsity: ~0.1 contacts/pair/day within a factor of two.
  EXPECT_GT(s.meanContactsPerPairPerDay, 0.05);
  EXPECT_LT(s.meanContactsPerPairPerDay, 0.2);
}

TEST(Generators, InfocomPresetIsMuchDenser) {
  auto reality = realityLikeConfig(1);
  auto infocom = infocomLikeConfig(1);
  const auto r = generate(reality).trace.stats();
  const auto i = generate(infocom).trace.stats();
  EXPECT_EQ(i.nodeCount, 78u);
  EXPECT_GT(i.meanContactsPerPairPerDay, 10.0 * r.meanContactsPerPairPerDay);
}

TEST(Generators, ContactDurationsAverageToConfig) {
  auto cfg = homogeneousConfig(15, 3.0, sim::days(10), 8);
  cfg.meanContactDuration = 240.0;
  const auto t = generate(cfg);
  EXPECT_NEAR(t.trace.stats().meanContactDuration, 240.0, 20.0);
}

}  // namespace
}  // namespace dtncache::trace
