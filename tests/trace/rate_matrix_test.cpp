#include "trace/rate_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dtncache::trace {
namespace {

TEST(RateMatrix, SymmetricStorage) {
  RateMatrix m(4);
  m.setRate(1, 3, 0.5);
  EXPECT_DOUBLE_EQ(m.rate(1, 3), 0.5);
  EXPECT_DOUBLE_EQ(m.rate(3, 1), 0.5);
}

TEST(RateMatrix, SelfRateIsZero) {
  RateMatrix m(4);
  EXPECT_DOUBLE_EQ(m.rate(2, 2), 0.0);
}

TEST(RateMatrix, DefaultsToZero) {
  RateMatrix m(5);
  for (NodeId i = 0; i < 5; ++i)
    for (NodeId j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(m.rate(i, j), 0.0);
}

TEST(RateMatrix, AllPairsIndependentlyAddressable) {
  const std::size_t n = 7;
  RateMatrix m(n);
  double v = 1.0;
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) m.setRate(i, j, v++);
  v = 1.0;
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) EXPECT_DOUBLE_EQ(m.rate(i, j), v++);
}

TEST(RateMatrix, NodeRateSum) {
  RateMatrix m(3);
  m.setRate(0, 1, 0.2);
  m.setRate(0, 2, 0.3);
  EXPECT_DOUBLE_EQ(m.nodeRateSum(0), 0.5);
  EXPECT_DOUBLE_EQ(m.nodeRateSum(1), 0.2);
}

TEST(RateMatrix, MeetingProbability) {
  RateMatrix m(2);
  m.setRate(0, 1, 0.1);
  EXPECT_NEAR(m.meetingProbability(0, 1, 10.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(ContactProbabilityFn, Basics) {
  EXPECT_DOUBLE_EQ(contactProbability(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(contactProbability(1.0, 0.0), 0.0);
  EXPECT_NEAR(contactProbability(2.0, 1.0), 1.0 - std::exp(-2.0), 1e-12);
}

TEST(ExpectedContactDelayFn, InfiniteForZeroRate) {
  EXPECT_TRUE(std::isinf(expectedContactDelay(0.0)));
  EXPECT_DOUBLE_EQ(expectedContactDelay(0.5), 2.0);
}

TEST(RateMatrix, FitFromTrace) {
  std::vector<Contact> cs;
  for (int i = 0; i < 10; ++i) cs.push_back({static_cast<double>(i * 10), 1.0, 0, 1});
  cs.push_back({50.0, 1.0, 1, 2});
  cs.push_back({99.0, 1.0, 0, 2});
  ContactTrace trace(3, std::move(cs));
  const auto m = RateMatrix::fitFromTrace(trace);
  const double d = trace.duration();
  EXPECT_DOUBLE_EQ(m.rate(0, 1), 10.0 / d);
  EXPECT_DOUBLE_EQ(m.rate(1, 2), 1.0 / d);
  EXPECT_DOUBLE_EQ(m.rate(0, 2), 1.0 / d);
}

TEST(RateMatrix, FitFromEmptyTraceIsZero) {
  const auto m = RateMatrix::fitFromTrace(ContactTrace(3, {}));
  EXPECT_DOUBLE_EQ(m.rate(0, 1), 0.0);
}

}  // namespace
}  // namespace dtncache::trace
