#include "trace/one_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/assert.hpp"

namespace dtncache::trace {
namespace {

TEST(OneFormat, BasicUpDownPairs) {
  std::stringstream in(
      "10.0 CONN n1 n2 up\n"
      "25.0 CONN n1 n2 down\n"
      "30.0 CONN n2 n3 up\n"
      "42.0 CONN n2 n3 down\n");
  const auto r = loadOneConnectivity(in);
  ASSERT_EQ(r.trace.contacts().size(), 2u);
  EXPECT_EQ(r.trace.nodeCount(), 3u);
  EXPECT_DOUBLE_EQ(r.trace.contacts()[0].start, 10.0);
  EXPECT_DOUBLE_EQ(r.trace.contacts()[0].duration, 15.0);
  EXPECT_DOUBLE_EQ(r.trace.contacts()[1].duration, 12.0);
  EXPECT_EQ(r.unmatchedDowns, 0u);
  EXPECT_EQ(r.unterminatedUps, 0u);
}

TEST(OneFormat, HostNamesMappedInFirstAppearanceOrder) {
  std::stringstream in(
      "1 CONN alpha beta up\n"
      "2 CONN alpha beta down\n"
      "3 CONN gamma alpha up\n"
      "4 CONN gamma alpha down\n");
  const auto r = loadOneConnectivity(in);
  ASSERT_EQ(r.hostNames.size(), 3u);
  EXPECT_EQ(r.hostNames[0], "alpha");
  EXPECT_EQ(r.hostNames[1], "beta");
  EXPECT_EQ(r.hostNames[2], "gamma");
}

TEST(OneFormat, NonConnLinesIgnored) {
  std::stringstream in(
      "0.5 C n0 [message created]\n"
      "1 CONN a b up\n"
      "2 M n1 n2 whatever extra\n"
      "3 CONN a b down\n");
  const auto r = loadOneConnectivity(in);
  EXPECT_EQ(r.trace.contacts().size(), 1u);
  EXPECT_EQ(r.ignoredLines, 2u);
}

TEST(OneFormat, UnmatchedDownCountedAndSkipped) {
  std::stringstream in(
      "5 CONN a b down\n"
      "10 CONN a b up\n"
      "20 CONN a b down\n");
  const auto r = loadOneConnectivity(in);
  EXPECT_EQ(r.trace.contacts().size(), 1u);
  EXPECT_EQ(r.unmatchedDowns, 1u);
}

TEST(OneFormat, UnterminatedUpClosedAtTraceEnd) {
  std::stringstream in(
      "10 CONN a b up\n"
      "50 CONN c d up\n"
      "60 CONN c d down\n");
  const auto r = loadOneConnectivity(in);
  ASSERT_EQ(r.trace.contacts().size(), 2u);
  EXPECT_EQ(r.unterminatedUps, 1u);
  // The a-b contact runs from 10 to the last event time (60).
  bool found = false;
  for (const auto& c : r.trace.contacts()) {
    if (c.start == 10.0) {
      EXPECT_DOUBLE_EQ(c.duration, 50.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(OneFormat, ReUpRestartsContact) {
  std::stringstream in(
      "10 CONN a b up\n"
      "20 CONN a b up\n"
      "30 CONN a b down\n");
  const auto r = loadOneConnectivity(in);
  ASSERT_EQ(r.trace.contacts().size(), 2u);
  EXPECT_DOUBLE_EQ(r.trace.contacts()[0].duration, 10.0);
  EXPECT_DOUBLE_EQ(r.trace.contacts()[1].duration, 10.0);
}

TEST(OneFormat, SelfConnectionIgnored) {
  std::stringstream in("1 CONN x x up\n2 CONN x x down\n");
  const auto r = loadOneConnectivity(in);
  EXPECT_TRUE(r.trace.contacts().empty());
  EXPECT_EQ(r.ignoredLines, 2u);  // both the up and the down
}

TEST(OneFormat, EmptyInput) {
  std::stringstream in("");
  const auto r = loadOneConnectivity(in);
  EXPECT_TRUE(r.trace.empty());
  EXPECT_EQ(r.trace.nodeCount(), 0u);
}

TEST(OneFormat, MissingFileThrows) {
  EXPECT_THROW(loadOneConnectivityFile("/nonexistent/path.txt"), InvariantViolation);
}

TEST(OneFormat, SymmetricPairKeysMatchAcrossDirections) {
  // `down` reported with endpoints swapped must still close the contact.
  std::stringstream in(
      "10 CONN a b up\n"
      "25 CONN b a down\n");
  const auto r = loadOneConnectivity(in);
  ASSERT_EQ(r.trace.contacts().size(), 1u);
  EXPECT_DOUBLE_EQ(r.trace.contacts()[0].duration, 15.0);
  EXPECT_EQ(r.unmatchedDowns, 0u);
}

}  // namespace
}  // namespace dtncache::trace
