/// Streamed synthetic mobility (trace/mobility.hpp): determinism, stream
/// ordering, materialize/stream equivalence, sparsity, and rate targets.

#include <gtest/gtest.h>

#include <cmath>

#include "trace/mobility.hpp"
#include "trace/trace_cache.hpp"

namespace dtncache {
namespace {

using trace::RateModel;
using trace::SyntheticMobility;
using trace::SyntheticTraceConfig;

SyntheticTraceConfig smallConfig(RateModel model, std::uint64_t seed = 9) {
  SyntheticTraceConfig c = trace::mobilityConfig(300, seed);
  c.model = model;
  c.duration = sim::days(2);
  c.meanDegree = 12.0;
  return c;
}

TEST(SyntheticMobility, StreamIsDeterministicAndOrdered) {
  const auto config = smallConfig(RateModel::kMobilityCommunity);
  SyntheticMobility a(config);
  SyntheticMobility b(config);
  EXPECT_EQ(a.edgeCount(), b.edgeCount());
  trace::Contact ca;
  trace::Contact cb;
  sim::SimTime last = 0.0;
  std::size_t count = 0;
  while (a.next(ca)) {
    ASSERT_TRUE(b.next(cb));
    EXPECT_EQ(ca.a, cb.a);
    EXPECT_EQ(ca.b, cb.b);
    EXPECT_EQ(ca.start, cb.start);
    EXPECT_EQ(ca.duration, cb.duration);
    EXPECT_GE(ca.start, last);  // nondecreasing
    EXPECT_LT(ca.start, config.duration);
    last = ca.start;
    ++count;
  }
  EXPECT_FALSE(b.next(cb));
  EXPECT_GT(count, 0u);
}

TEST(SyntheticMobility, MaterializeMatchesStream) {
  const auto config = smallConfig(RateModel::kMobilityCommunity);
  SyntheticMobility streamer(config);
  const auto materialized = SyntheticMobility(config).materialize();

  trace::Contact c;
  std::size_t i = 0;
  while (streamer.next(c)) {
    ASSERT_LT(i, materialized.trace.contacts().size());
    const trace::Contact& m = materialized.trace.contacts()[i++];
    EXPECT_EQ(c.a, m.a);
    EXPECT_EQ(c.b, m.b);
    EXPECT_EQ(c.start, m.start);
  }
  EXPECT_EQ(i, materialized.trace.contacts().size());
  EXPECT_EQ(materialized.trace.nodeCount(), config.nodeCount);
  EXPECT_EQ(materialized.community.size(), config.nodeCount);
}

TEST(SyntheticMobility, GenerateDelegatesToMobility) {
  const auto config = smallConfig(RateModel::kMobilityCommunity);
  const auto viaGenerate = trace::generate(config);
  const auto direct = SyntheticMobility(config).materialize();
  ASSERT_EQ(viaGenerate.trace.contacts().size(), direct.trace.contacts().size());
  for (std::size_t i = 0; i < direct.trace.contacts().size(); ++i)
    EXPECT_EQ(viaGenerate.trace.contacts()[i].start, direct.trace.contacts()[i].start);
  // And the memoizing path keys on the mobility fields too.
  trace::clearTraceCache();
  const auto shared1 = trace::generateShared(config);
  auto tweaked = config;
  tweaked.meanDegree += 1.0;
  const auto shared2 = trace::generateShared(tweaked);
  EXPECT_NE(shared1->trace.contacts().size(), shared2->trace.contacts().size());
}

TEST(SyntheticMobility, GraphIsSparseAndRatesNormalized) {
  const auto config = smallConfig(RateModel::kMobilityCommunity);
  SyntheticMobility m(config);
  const std::size_t n = config.nodeCount;
  // Sparsity: edges ≈ n * meanDegree / 2, a tiny fraction of the triangle.
  EXPECT_LT(m.pairSparsity(), 0.2);
  EXPECT_GT(m.edgeCount(), n);  // but not degenerate
  EXPECT_LT(static_cast<double>(m.edgeCount()), 1.2 * static_cast<double>(n) * config.meanDegree / 2.0);

  // Ground-truth mean rate over linked pairs hits the configured target.
  const auto rates = m.groundTruthRates();
  ASSERT_TRUE(rates.isSparse());
  EXPECT_EQ(rates.observedPairCount(), m.edgeCount());
  double sum = 0.0;
  for (NodeId i = 0; i < n; ++i) sum += rates.nodeRateSum(i);
  sum /= 2.0;  // each pair counted from both endpoints
  const double meanPerDay =
      sum / static_cast<double>(m.edgeCount()) * sim::days(1);
  EXPECT_NEAR(meanPerDay, config.meanContactsPerPairPerDay,
              0.05 * config.meanContactsPerPairPerDay);
}

TEST(SyntheticMobility, CommunityModelPrefersIntraCommunityEdges) {
  auto config = smallConfig(RateModel::kMobilityCommunity);
  config.interCommunityFraction = 0.05;
  SyntheticMobility m(config);
  const auto& community = m.community();
  ASSERT_EQ(community.size(), config.nodeCount);
  const auto rates = m.groundTruthRates();
  std::size_t intra = 0;
  std::size_t inter = 0;
  for (NodeId i = 0; i < config.nodeCount; ++i) {
    rates.forEachNeighbor(i, [&](NodeId j, double) {
      if (community[i] == community[j])
        ++intra;
      else
        ++inter;
    });
  }
  EXPECT_GT(intra, 5 * inter);
}

TEST(SyntheticMobility, PowerLawGapsKeepTheMeanRate) {
  auto config = smallConfig(RateModel::kMobilityPowerLaw, 17);
  config.duration = sim::days(30);
  config.meanContactsPerPairPerDay = 2.0;
  config.interContactAlpha = 2.5;
  SyntheticMobility m(config);
  EXPECT_TRUE(m.community().empty());
  std::size_t contacts = 0;
  trace::Contact c;
  while (m.next(c)) ++contacts;
  // Long-run contact volume ≈ edges × rate × duration even with Pareto gaps
  // (the per-edge scale is chosen for mean gap = 1/λ). Generous tolerance:
  // heavy tails converge slowly.
  const double expected = static_cast<double>(m.edgeCount()) *
                          config.meanContactsPerPairPerDay *
                          sim::toDays(config.duration);
  EXPECT_NEAR(static_cast<double>(contacts), expected, 0.15 * expected);
}

TEST(SyntheticMobility, SeedChangesTheTrace) {
  const auto a = SyntheticMobility(smallConfig(RateModel::kMobilityCommunity, 1)).materialize();
  const auto b = SyntheticMobility(smallConfig(RateModel::kMobilityCommunity, 2)).materialize();
  EXPECT_NE(a.trace.contacts().size(), b.trace.contacts().size());
}

}  // namespace
}  // namespace dtncache
