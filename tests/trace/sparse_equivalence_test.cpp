/// Cross-backend equivalence: the sparse pair-state backend must be
/// bit-identical to the dense triangle on every derived quantity when the
/// default (never-met) rate is 0 — the contract stated in
/// trace/pair_backend.hpp. Randomized contact histories drive both backends
/// through the same API calls and compare raw doubles with ==, not
/// tolerances: byte-equality of sweep outputs is the acceptance bar.

#include <gtest/gtest.h>

#include <vector>

#include "cache/centrality.hpp"
#include "trace/estimator.hpp"
#include "trace/generators.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache {
namespace {

using trace::ContactRateEstimator;
using trace::EstimatorConfig;
using trace::EstimatorMode;
using trace::PairBackend;
using trace::RateMatrix;

/// Deterministic pseudo-random contact history over n nodes: returns
/// (a, b, t) triples with strictly increasing t and skewed pair usage.
std::vector<trace::Contact> randomHistory(std::size_t n, std::size_t count,
                                          std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<trace::Contact> out;
  out.reserve(count);
  sim::SimTime t = 0.0;
  for (std::size_t k = 0; k < count; ++k) {
    t += rng.exponential(1.0 / 600.0);
    trace::Contact c;
    // Square the draw to skew toward low ids (hub-like reuse of few pairs).
    const double ua = rng.uniform();
    const double ub = rng.uniform();
    c.a = static_cast<NodeId>(ua * ua * static_cast<double>(n));
    c.b = static_cast<NodeId>(ub * ub * static_cast<double>(n));
    if (c.a >= n) c.a = static_cast<NodeId>(n - 1);
    if (c.b >= n) c.b = static_cast<NodeId>(n - 1);
    if (c.a == c.b) c.b = static_cast<NodeId>((c.b + 1) % n);
    c.start = t;
    c.duration = 60.0;
    out.push_back(c);
  }
  return out;
}

TEST(SparseEquivalence, RateMatrixLookupsAndSums) {
  const std::size_t n = 37;
  RateMatrix dense(n, PairBackend::kDense);
  RateMatrix sparse(n, PairBackend::kSparse);
  ASSERT_FALSE(dense.isSparse());
  ASSERT_TRUE(sparse.isSparse());

  sim::Rng rng(7);
  for (std::size_t k = 0; k < 200; ++k) {
    const NodeId i = static_cast<NodeId>(rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
    NodeId j = static_cast<NodeId>(rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
    if (i == j) j = static_cast<NodeId>((j + 1) % n);
    const double r = rng.uniform(0.0, 1e-3);
    dense.setRate(i, j, r);
    sparse.setRate(i, j, r);
  }

  for (NodeId i = 0; i < n; ++i) {
    EXPECT_EQ(dense.nodeRateSum(i), sparse.nodeRateSum(i)) << "node " << i;
    for (NodeId j = 0; j < n; ++j) {
      EXPECT_EQ(dense.rate(i, j), sparse.rate(i, j));
      EXPECT_EQ(dense.meetingProbability(i, j, sim::hours(6)),
                sparse.meetingProbability(i, j, sim::hours(6)));
    }
  }
  EXPECT_LT(sparse.observedPairCount(), dense.observedPairCount());
}

TEST(SparseEquivalence, FitFromTraceIdentical) {
  auto config = trace::homogeneousConfig(24, 1.5, sim::days(3), 11);
  const auto synth = trace::generate(config);
  const RateMatrix dense = RateMatrix::fitFromTrace(synth.trace, PairBackend::kDense);
  const RateMatrix sparse = RateMatrix::fitFromTrace(synth.trace, PairBackend::kSparse);
  const std::size_t n = synth.trace.nodeCount();
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) EXPECT_EQ(dense.rate(i, j), sparse.rate(i, j));
}

class SparseEstimatorEquivalence : public ::testing::TestWithParam<EstimatorMode> {};

TEST_P(SparseEstimatorEquivalence, RatesSnapshotsAndStatsMatch) {
  const std::size_t n = 25;
  EstimatorConfig cfg;
  cfg.mode = GetParam();
  cfg.window = sim::hours(12);

  EstimatorConfig denseCfg = cfg;
  denseCfg.backend = PairBackend::kDense;
  EstimatorConfig sparseCfg = cfg;
  sparseCfg.backend = PairBackend::kSparse;
  ContactRateEstimator dense(n, denseCfg);
  ContactRateEstimator sparse(n, sparseCfg);
  ASSERT_FALSE(dense.isSparse());
  ASSERT_TRUE(sparse.isSparse());

  RateMatrix denseOut;
  RateMatrix sparseOut;
  std::vector<NodeId> denseChanged;
  std::vector<NodeId> sparseChanged;

  const auto history = randomHistory(n, 600, 0xfeedULL + static_cast<int>(GetParam()));
  std::size_t fed = 0;
  for (std::size_t round = 1; round <= 6; ++round) {
    const std::size_t until = history.size() * round / 6;
    sim::SimTime now = 0.0;
    for (; fed < until; ++fed) {
      dense.recordContact(history[fed].a, history[fed].b, history[fed].start);
      sparse.recordContact(history[fed].a, history[fed].b, history[fed].start);
      now = history[fed].start;
    }
    now += 1.0;

    for (NodeId i = 0; i < n; ++i) {
      EXPECT_EQ(dense.nodeRateSum(i, now), sparse.nodeRateSum(i, now));
      for (NodeId j = i + 1; j < n; ++j)
        EXPECT_EQ(dense.rate(i, j, now), sparse.rate(i, j, now));
    }

    const auto ds = dense.snapshotInto(denseOut, now, &denseChanged);
    const auto ss = sparse.snapshotInto(sparseOut, now, &sparseChanged);
    EXPECT_EQ(ds.dirtyPairs, ss.dirtyPairs) << "round " << round;
    EXPECT_EQ(ds.changedPairs, ss.changedPairs) << "round " << round;
    EXPECT_EQ(denseChanged, sparseChanged) << "round " << round;
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = i + 1; j < n; ++j)
        EXPECT_EQ(denseOut.rate(i, j), sparseOut.rate(i, j));

    // Incremental result must equal a from-scratch snapshot on both.
    const RateMatrix full = sparse.snapshot(now);
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = i + 1; j < n; ++j) EXPECT_EQ(full.rate(i, j), sparseOut.rate(i, j));
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, SparseEstimatorEquivalence,
                         ::testing::Values(EstimatorMode::kCumulative,
                                           EstimatorMode::kSlidingWindow,
                                           EstimatorMode::kEwma));

TEST(SparseEquivalence, CentralityBatchAndIncremental) {
  const std::size_t n = 31;
  const sim::SimTime window = sim::hours(6);
  RateMatrix dense(n, PairBackend::kDense);
  RateMatrix sparse(n, PairBackend::kSparse);
  sim::Rng rng(21);
  for (std::size_t k = 0; k < 150; ++k) {
    const NodeId i = static_cast<NodeId>(rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
    NodeId j = static_cast<NodeId>(rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
    if (i == j) j = static_cast<NodeId>((j + 1) % n);
    const double r = rng.uniform(0.0, 2e-4);
    dense.setRate(i, j, r);
    sparse.setRate(i, j, r);
  }

  EXPECT_EQ(cache::contactCapability(dense, window), cache::contactCapability(sparse, window));
  for (std::size_t k : {1u, 3u, 5u}) {
    EXPECT_EQ(cache::selectTopCapability(dense, window, k),
              cache::selectTopCapability(sparse, window, k));
    EXPECT_EQ(cache::selectNcls(dense, window, k), cache::selectNcls(sparse, window, k));
  }

  // Incremental state over the sparse matrix == batch over either.
  cache::CentralityState denseState;
  cache::CentralityState sparseState;
  const std::vector<NodeId> noChanges;
  EXPECT_EQ(cache::contactCapability(denseState, dense, window, noChanges),
            cache::contactCapability(sparseState, sparse, window, noChanges));
  cache::selectNcls(denseState, dense, window, 4, noChanges);
  cache::selectNcls(sparseState, sparse, window, 4, noChanges);
  EXPECT_EQ(denseState.ncls(), sparseState.ncls());

  // Mutate a few rows, refresh incrementally on both, compare again.
  std::vector<NodeId> changed = {2, 9, 17};
  for (const NodeId i : changed) {
    const NodeId j = static_cast<NodeId>((i + 5) % n);
    const double r = rng.uniform(0.0, 2e-4);
    dense.setRate(i, j, r);
    sparse.setRate(i, j, r);
  }
  // Report both endpoints, ascending, as snapshotInto would.
  changed = {2, 7, 9, 14, 17, 22};
  EXPECT_EQ(cache::contactCapability(denseState, dense, window, changed),
            cache::contactCapability(sparseState, sparse, window, changed));
  cache::selectNcls(denseState, dense, window, 4, changed);
  cache::selectNcls(sparseState, sparse, window, 4, changed);
  EXPECT_EQ(denseState.ncls(), sparseState.ncls());
}

TEST(SparseEquivalence, NeighborCapTruncatesDeterministically) {
  const std::size_t n = 40;
  const sim::SimTime window = sim::hours(6);
  RateMatrix sparse(n, PairBackend::kSparse);
  sim::Rng rng(5);
  for (NodeId j = 1; j < n; ++j)
    sparse.setRate(0, j, rng.uniform(1e-6, 1e-4));  // node 0 is a big hub
  sparse.setRate(1, 2, 5e-5);

  cache::CentralityState exact;
  cache::CentralityState capped;
  capped.setNeighborCap(8);
  const std::vector<NodeId> none;
  const auto& full = cache::contactCapability(exact, sparse, window, none);
  const auto& trunc = cache::contactCapability(capped, sparse, window, none);
  // The hub loses mass under truncation; small rows are unaffected.
  EXPECT_LT(trunc[0], full[0]);
  EXPECT_EQ(trunc[1], full[1]);
  // Re-running with the same cap reproduces the same values.
  cache::CentralityState again;
  again.setNeighborCap(8);
  EXPECT_EQ(trunc, cache::contactCapability(again, sparse, window, none));
}

TEST(SparseEquivalence, DegenerateSizes) {
  // n = 0 and n = 1 matrices and estimators are valid and inert.
  for (const auto backend : {PairBackend::kDense, PairBackend::kSparse}) {
    RateMatrix zero(0, backend);
    EXPECT_EQ(zero.nodeCount(), 0u);
    EXPECT_EQ(zero.observedPairCount(), 0u);

    RateMatrix one(1, backend);
    EXPECT_EQ(one.nodeCount(), 1u);
    EXPECT_EQ(one.rate(0, 0), 0.0);
    EXPECT_EQ(one.nodeRateSum(0), 0.0);
    EXPECT_EQ(one.neighborCount(0), 0u);

    EstimatorConfig cfg;
    cfg.backend = backend;
    ContactRateEstimator est(1, cfg);
    EXPECT_EQ(est.nodeRateSum(0, sim::hours(1)), 0.0);
    RateMatrix out;
    const auto stats = est.snapshotInto(out, sim::hours(1));
    EXPECT_EQ(stats.dirtyPairs, 0u);
    EXPECT_EQ(stats.changedPairs, 0u);
    EXPECT_EQ(out.nodeCount(), 1u);

    ContactRateEstimator empty(0, cfg);
    EXPECT_EQ(empty.observedPairCount(), 0u);
  }
  // fitFromTrace on an empty single-node trace.
  const trace::ContactTrace empty(1, {});
  const RateMatrix fit = RateMatrix::fitFromTrace(empty);
  EXPECT_EQ(fit.nodeCount(), 1u);
}

}  // namespace
}  // namespace dtncache
