/// Memoization of synthetic-trace generation and external-trace adoption.
///
/// Both caches share one contract: a cached result must be byte-identical
/// to an unmemoized computation, and any change to the inputs (config
/// fields, or the content behind a reused trace address) must miss.

#include "trace/trace_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "trace/rate_matrix.hpp"

namespace dtncache::trace {
namespace {

void expectSameRates(const RateMatrix& a, const RateMatrix& b) {
  ASSERT_EQ(a.nodeCount(), b.nodeCount());
  for (NodeId i = 0; i < a.nodeCount(); ++i)
    for (NodeId j = i + 1; j < a.nodeCount(); ++j)
      ASSERT_EQ(a.rate(i, j), b.rate(i, j));
}

ContactTrace smallTrace(double offset = 0.0) {
  std::vector<Contact> contacts;
  for (int k = 0; k < 50; ++k) {
    Contact c;
    c.start = offset + 100.0 * k;
    c.duration = 30.0;
    c.a = static_cast<NodeId>(k % 6);
    c.b = static_cast<NodeId>((k + 1 + k % 3) % 6);
    if (c.a == c.b) c.b = (c.b + 1) % 6;
    contacts.push_back(c);
  }
  return ContactTrace(6, contacts);
}

TEST(ExternalTraceCache, AdoptionIsMemoizedAndByteIdentical) {
  clearExternalTraceCache();
  const ContactTrace t = smallTrace();

  const auto first = externalShared(t);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->trace.contacts().size(), t.contacts().size());
  expectSameRates(first->rates, RateMatrix::fitFromTrace(t));
  auto stats = externalTraceCacheStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);

  // Same object again: a hit returning the same shared result.
  const auto second = externalShared(t);
  EXPECT_EQ(second.get(), first.get());
  stats = externalTraceCacheStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(ExternalTraceCache, MutatedContentAtTheSameAddressMisses) {
  // Re-assigning the trace object keeps its address but changes its
  // content — exactly the reload scenario the fingerprint guards against.
  clearExternalTraceCache();
  ContactTrace t = smallTrace();
  const auto first = externalShared(t);
  t = smallTrace(7.0);  // same address, shifted contact times
  const auto second = externalShared(t);
  EXPECT_NE(second.get(), first.get());
  expectSameRates(second->rates, RateMatrix::fitFromTrace(t));
  const auto stats = externalTraceCacheStats();
  EXPECT_EQ(stats.misses, 2u);
}

TEST(ExternalTraceCache, DistinctTracesGetDistinctEntries) {
  clearExternalTraceCache();
  const ContactTrace a = smallTrace();
  const ContactTrace b = smallTrace(3.5);
  const auto ra = externalShared(a);
  const auto rb = externalShared(b);
  EXPECT_NE(ra.get(), rb.get());
  // Both stay cached; re-requests hit.
  EXPECT_EQ(externalShared(a).get(), ra.get());
  EXPECT_EQ(externalShared(b).get(), rb.get());
  const auto stats = externalTraceCacheStats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ExternalTraceCache, ClearResetsEntriesAndStats) {
  clearExternalTraceCache();
  const ContactTrace t = smallTrace();
  const auto first = externalShared(t);
  clearExternalTraceCache();
  auto stats = externalTraceCacheStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  // The evicted result stays alive through the caller's shared_ptr; a new
  // request refits rather than resurrecting it.
  const auto second = externalShared(t);
  EXPECT_NE(second.get(), first.get());
  expectSameRates(second->rates, first->rates);
}

}  // namespace
}  // namespace dtncache::trace
