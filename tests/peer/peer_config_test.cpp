#include "peer/peer_config.hpp"

#include <gtest/gtest.h>

#include "sim/assert.hpp"

namespace dtncache::peer {
namespace {

TEST(PeerConfig, DumpLoadRoundTrip) {
  PeerdConfig original;
  original.node = 3;
  original.nodeCount = 8;
  original.itemCount = 16;
  original.listenPort = 19999;
  original.peers = "127.0.0.1:19000,peer-host:19001";
  original.storePath = "/tmp/peer3.log";
  original.vvIntervalSeconds = 0.25;
  original.bumpLimit = 12;
  original.pushPolicy = PushPolicy::kAny;
  original.tracePath = "/tmp/peer3.jsonl";

  PeerdConfig loaded;
  applyPeerConfigJson(loaded, dumpPeerConfigJson(original));
  EXPECT_EQ(loaded.node, 3u);
  EXPECT_EQ(loaded.nodeCount, 8u);
  EXPECT_EQ(loaded.itemCount, 16u);
  EXPECT_EQ(loaded.listenPort, 19999u);
  EXPECT_EQ(loaded.peers, original.peers);
  EXPECT_EQ(loaded.storePath, original.storePath);
  EXPECT_DOUBLE_EQ(loaded.vvIntervalSeconds, 0.25);
  EXPECT_EQ(loaded.bumpLimit, 12u);
  EXPECT_EQ(loaded.pushPolicy, PushPolicy::kAny);
  EXPECT_EQ(loaded.tracePath, original.tracePath);
  // And the round-tripped config dumps identically.
  EXPECT_EQ(dumpPeerConfigJson(loaded), dumpPeerConfigJson(original));
}

TEST(PeerConfig, UnknownKeyGetsNearestSuggestion) {
  PeerdConfig config;
  try {
    applyPeerConfigJson(config, "{\"peer.nodeCont\": 4}");
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown config key 'peer.nodeCont'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("did you mean 'peer.nodeCount'"), std::string::npos)
        << message;
  }
}

TEST(PeerConfig, BadEnumValueRejected) {
  PeerdConfig config;
  EXPECT_THROW(applyPeerConfigJson(config, "{\"peer.pushPolicy\": \"flood\"}"),
               InvariantViolation);
}

TEST(PeerConfig, ValidateCatchesCrossFieldErrors) {
  PeerdConfig config;
  config.nodeCount = 1;  // a peer needs peers
  EXPECT_THROW(validatePeerConfig(config), InvariantViolation);

  config.nodeCount = 4;
  config.node = 4;  // out of range
  EXPECT_THROW(validatePeerConfig(config), InvariantViolation);

  config.node = 0;
  config.reconnectMaxSeconds = config.reconnectBaseSeconds / 2.0;
  EXPECT_THROW(validatePeerConfig(config), InvariantViolation);

  config.reconnectMaxSeconds = 15.0;
  validatePeerConfig(config);  // now clean
}

TEST(PeerConfig, ParsePeerListAcceptsHostsAndSkipsEmptyEntries) {
  const std::vector<PeerAddr> peers =
      parsePeerList("127.0.0.1:19000,,host.example:65535,");
  ASSERT_EQ(peers.size(), 2u);
  EXPECT_EQ(peers[0].host, "127.0.0.1");
  EXPECT_EQ(peers[0].port, 19000u);
  EXPECT_EQ(peers[1].host, "host.example");
  EXPECT_EQ(peers[1].port, 65535u);
  EXPECT_TRUE(parsePeerList("").empty());
}

TEST(PeerConfig, ParsePeerListRejectsMalformedEntries) {
  EXPECT_THROW(parsePeerList("nohost"), InvariantViolation);
  EXPECT_THROW(parsePeerList(":19000"), InvariantViolation);
  EXPECT_THROW(parsePeerList("host:"), InvariantViolation);
  EXPECT_THROW(parsePeerList("host:0"), InvariantViolation);
  EXPECT_THROW(parsePeerList("host:65536"), InvariantViolation);
  EXPECT_THROW(parsePeerList("host:12x"), InvariantViolation);
}

}  // namespace
}  // namespace dtncache::peer
