#include "peer/event_loop.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace dtncache::peer {
namespace {

// A pipe with both ends non-blocking, as EventLoop requires.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() {
    EXPECT_EQ(::pipe(fds), 0);
    for (int fd : fds) ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
  }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int readEnd() const { return fds[0]; }
  int writeEnd() const { return fds[1]; }
};

TEST(EventLoop, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.runAfter(0.02, [&] { order.push_back(2); });
  loop.runAfter(0.03, [&] {
    order.push_back(3);
    loop.stop();
  });
  loop.runAfter(0.01, [&] { order.push_back(1); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, CancelledTimerNeverFires) {
  EventLoop loop;
  bool fired = false;
  const EventLoop::TimerId id = loop.runAfter(0.01, [&] { fired = true; });
  loop.cancelTimer(id);
  loop.runAfter(0.03, [&] { loop.stop(); });
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, TimerCallbackMayArmAnotherTimer) {
  EventLoop loop;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks == 3) {
      loop.stop();
      return;
    }
    loop.runAfter(0.005, tick);
  };
  loop.runAfter(0.005, tick);
  loop.run();
  EXPECT_EQ(ticks, 3);
}

TEST(EventLoop, ReadableFdDispatches) {
  EventLoop loop;
  Pipe pipe;
  std::string received;
  loop.addFd(pipe.readEnd(), kReadable, [&](std::uint32_t events) {
    EXPECT_TRUE(events & kReadable);
    char buf[16];
    const ssize_t n = ::read(pipe.readEnd(), buf, sizeof buf);
    ASSERT_GT(n, 0);
    received.assign(buf, static_cast<std::size_t>(n));
    loop.stop();
  });
  ASSERT_EQ(::write(pipe.writeEnd(), "ping", 4), 4);
  loop.runAfter(1.0, [&] { loop.stop(); });  // failure backstop
  loop.run();
  EXPECT_EQ(received, "ping");
}

TEST(EventLoop, InterestMaskGatesDispatch) {
  EventLoop loop;
  Pipe pipe;
  int readableHits = 0;
  // Register with no read interest: data sitting in the pipe must not
  // call back until the mask is widened.
  loop.addFd(pipe.readEnd(), 0, [&](std::uint32_t) { ++readableHits; });
  ASSERT_EQ(::write(pipe.writeEnd(), "x", 1), 1);
  loop.runAfter(0.02, [&] {
    EXPECT_EQ(readableHits, 0);
    loop.setInterest(pipe.readEnd(), kReadable);
  });
  loop.runAfter(0.05, [&] { loop.stop(); });
  loop.run();
  EXPECT_GE(readableHits, 1);
  loop.removeFd(pipe.readEnd());
  EXPECT_FALSE(loop.hasFd(pipe.readEnd()));
}

TEST(EventLoop, CallbackMayRemoveItsOwnFd) {
  EventLoop loop;
  Pipe pipe;
  int hits = 0;
  loop.addFd(pipe.readEnd(), kReadable, [&](std::uint32_t) {
    ++hits;
    char buf[4];
    (void)!::read(pipe.readEnd(), buf, sizeof buf);
    loop.removeFd(pipe.readEnd());
  });
  ASSERT_EQ(::write(pipe.writeEnd(), "a", 1), 1);
  loop.runAfter(0.05, [&] { loop.stop(); });
  loop.run();
  EXPECT_EQ(hits, 1);
  EXPECT_FALSE(loop.hasFd(pipe.readEnd()));
}

TEST(EventLoop, StaleReadinessIsNotDispatchedToAReusedFd) {
  // Both pipes are ready in the same poll round. The first callback closes
  // the second pipe's read fd and immediately re-registers a fresh
  // descriptor that reuses the same fd number; the readiness collected for
  // the dead socket must not be dispatched to the new registration.
  EventLoop loop;
  Pipe first;
  Pipe second;
  ASSERT_LT(first.readEnd(), second.readEnd());  // dispatch order: first, second
  int staleHits = 0;
  int oldHits = 0;
  int reusedFd = -1;
  loop.addFd(second.readEnd(), kReadable, [&](std::uint32_t) { ++oldHits; });
  loop.addFd(first.readEnd(), kReadable, [&](std::uint32_t) {
    char buf[8];
    (void)!::read(first.readEnd(), buf, sizeof buf);
    const int victim = second.readEnd();
    loop.removeFd(victim);
    ::close(victim);
    second.fds[0] = -1;
    reusedFd = ::dup(first.readEnd());  // lowest free fd: the one just closed
    ASSERT_EQ(reusedFd, victim);
    loop.addFd(reusedFd, kReadable, [&](std::uint32_t) { ++staleHits; });
  });
  ASSERT_EQ(::write(first.writeEnd(), "a", 1), 1);
  ASSERT_EQ(::write(second.writeEnd(), "b", 1), 1);
  loop.runAfter(0.05, [&] { loop.stop(); });
  loop.run();
  EXPECT_EQ(staleHits, 0);  // stale readiness must not reach the new fd
  EXPECT_EQ(oldHits, 0);    // the removed registration must not fire either
  if (reusedFd >= 0) {
    loop.removeFd(reusedFd);
    ::close(reusedFd);
  }
}

TEST(EventLoop, NowIsMonotonicAcrossTimers) {
  EventLoop loop;
  const double before = loop.now();
  double atTimer = -1.0;
  loop.runAfter(0.01, [&] {
    atTimer = loop.now();
    loop.stop();
  });
  loop.run();
  EXPECT_GE(atTimer, before + 0.01 - 1e-9);
}

TEST(EventLoop, StopPlusWakeupInterruptsLongPoll) {
  // The shutdown path a signal handler takes: stop() then wakeup() from
  // outside the loop thread, while poll() is parked on a distant timer.
  EventLoop loop;
  bool fired = false;
  loop.runAfter(30.0, [&] { fired = true; });
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    loop.stop();
    loop.wakeup();
  });
  const auto start = std::chrono::steady_clock::now();
  loop.run();
  stopper.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(loop.stopped());
  EXPECT_LT(elapsed, 5.0);  // returned via wakeup, not the 30 s timer
}

}  // namespace
}  // namespace dtncache::peer
