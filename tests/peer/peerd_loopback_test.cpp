#include "peer/peerd.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <string>

namespace dtncache::peer {
namespace {

PeerdConfig fastConfig(NodeId node, std::uint32_t nodeCount, std::uint32_t itemCount) {
  PeerdConfig config;
  config.node = node;
  config.nodeCount = nodeCount;
  config.itemCount = itemCount;
  config.listenPort = 0;  // kernel-assigned; tests never collide
  config.vvIntervalSeconds = 0.02;
  config.bumpIntervalSeconds = 0.02;
  config.maintenanceIntervalSeconds = 0.1;
  config.bumpLimit = 3;
  config.payloadBytes = 16;
  config.reconnectBaseSeconds = 0.02;
  config.reconnectMaxSeconds = 0.2;
  return config;
}

std::string loopbackPeer(const Peerd& daemon) {
  return "127.0.0.1:" + std::to_string(daemon.boundPort());
}

// Poll `done` on the shared loop until it holds or the deadline passes.
void runUntil(EventLoop& loop, const std::function<bool()>& done,
              double deadlineSeconds = 20.0) {
  const double start = loop.now();
  std::function<void()> poll = [&] {
    if (done() || loop.now() - start > deadlineSeconds) {
      loop.stop();
      return;
    }
    loop.runAfter(0.01, poll);
  };
  loop.runAfter(0.01, poll);
  loop.run();
}

TEST(PeerdLoopback, TwoPeersConvergeOverTcp) {
  EventLoop loop;
  obs::Tracer tracerA("loop-a");
  obs::Tracer tracerB("loop-b");
  obs::Registry registry;

  // Item 0 is sourced by node 0, item 1 by node 1; each side must learn
  // the other's bumps over the real socket path to converge.
  Peerd a(fastConfig(0, 2, 2), &tracerA, &registry, &loop);
  ASSERT_TRUE(a.start());

  PeerdConfig configB = fastConfig(1, 2, 2);
  configB.peers = loopbackPeer(a);
  Peerd b(std::move(configB), &tracerB, &registry, &loop);
  ASSERT_TRUE(b.start());

  const auto converged = [&] {
    for (data::ItemId item = 0; item < 2; ++item) {
      if (a.heldVersion(item).value_or(0) != 3) return false;
      if (b.heldVersion(item).value_or(0) != 3) return false;
    }
    return true;
  };
  runUntil(loop, converged);

  EXPECT_TRUE(converged()) << "freshness did not converge within the deadline";
  EXPECT_EQ(a.establishedCount(), 1u);
  EXPECT_EQ(b.establishedCount(), 1u);
  EXPECT_GE(registry.counter("peer.push.installed").value(), 2u);

  // Both traces carry the same install schema a simulation trace uses.
  std::ostringstream traceText;
  tracerB.flushTo(traceText);
  EXPECT_NE(traceText.str().find("\"kind\": \"install\""), std::string::npos);
  EXPECT_NE(traceText.str().find("\"kind\": \"contact\""), std::string::npos);
}

TEST(PeerdLoopback, DiskBackedPeerResumesAfterRestart) {
  const std::string storePath = std::string(::testing::TempDir()) +
                                "dtncache_loopback_store_" +
                                std::to_string(::getpid()) + ".log";
  std::remove(storePath.c_str());

  std::uint16_t firstPort = 0;
  {
    EventLoop loop;
    PeerdConfig config = fastConfig(0, 2, 1);
    config.storePath = storePath;
    Peerd daemon(std::move(config), nullptr, nullptr, &loop);
    ASSERT_TRUE(daemon.start());
    firstPort = daemon.boundPort();
    runUntil(loop, [&] { return daemon.heldVersion(0).value_or(0) >= 3; }, 10.0);
    EXPECT_EQ(daemon.heldVersion(0).value_or(0), 3u);
    // No graceful shutdown on purpose: the log must carry the state alone.
  }
  {
    EventLoop loop;
    PeerdConfig config = fastConfig(0, 2, 1);
    config.storePath = storePath;
    config.bumpLimit = 5;
    Peerd daemon(std::move(config), nullptr, nullptr, &loop);
    ASSERT_TRUE(daemon.start());
    // The restarted source resumed from v3 and kept counting — it must
    // reach 5 without ever re-issuing versions 1..3.
    EXPECT_EQ(daemon.heldVersion(0).value_or(0), 3u);
    runUntil(loop, [&] { return daemon.heldVersion(0).value_or(0) >= 5; }, 10.0);
    EXPECT_EQ(daemon.heldVersion(0).value_or(0), 5u);
  }
  (void)firstPort;
  std::remove(storePath.c_str());
}

TEST(PeerdLoopback, GarbageBytesAreRejectedNotFatal) {
  EventLoop loop;
  obs::Registry registry;
  Peerd daemon(fastConfig(0, 2, 1), nullptr, &registry, &loop);
  ASSERT_TRUE(daemon.start());

  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(daemon.boundPort());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(client, garbage, sizeof garbage, 0),
            static_cast<ssize_t>(sizeof garbage));

  obs::Counter& rejected = registry.counter("peer.net.frames_rejected");
  runUntil(loop, [&] { return rejected.value() >= 1; }, 10.0);
  EXPECT_GE(rejected.value(), 1u);
  EXPECT_EQ(daemon.establishedCount(), 0u);
  ::close(client);
}

}  // namespace
}  // namespace dtncache::peer
